(* The concurrent planning service: JSON plumbing, canonical fingerprints,
   the LRU plan cache, the domain worker pool, and degradation policy. *)

open Etransform

let contains_substring ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let line_milp =
  {
    Service.Job.no_overrides with
    Service.Job.node_limit = Some 2;
    time_limit = Some 20.0;
  }

let small_cfg penalty frac =
  {
    Harness.Line_estate.default with
    Harness.Line_estate.n_groups = 12;
    frac_at_0 = frac;
    latency_penalty = Harness.Line_estate.banded_penalty penalty;
  }

let small_job ?deadline_s ?(degrade = true) penalty frac =
  Service.Job.v ~milp:line_milp ?deadline_s ~degrade
    (Harness.Line_jobs.estate ~penalty (small_cfg penalty frac))

(* ----------------------------------------------------------------- JSON *)

let test_json_roundtrip () =
  let text =
    {|{"a":1,"b":[true,null,"x\n\"y\""],"c":{"d":-2.5e3},"e":""}|}
  in
  let j =
    match Service.Json.parse text with
    | Ok j -> j
    | Error m -> Alcotest.failf "parse: %s" m
  in
  Alcotest.(check (option (float 0.0))) "a" (Some 1.0)
    (Option.bind (Service.Json.member "a" j) Service.Json.to_float);
  (match Service.Json.member "b" j with
  | Some (Service.Json.List [ Service.Json.Bool true; Service.Json.Null; Service.Json.Str s ])
    ->
      Alcotest.(check string) "escapes" "x\n\"y\"" s
  | _ -> Alcotest.fail "array shape");
  let reparsed =
    match Service.Json.parse (Service.Json.to_string j) with
    | Ok j -> j
    | Error m -> Alcotest.failf "reparse: %s" m
  in
  Alcotest.(check bool) "print/parse fixpoint" true (j = reparsed);
  (match Service.Json.parse "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted")

let test_json_non_finite () =
  (* JSON has no NaN/Infinity: all non-finite numbers print as null so
     result and trace lines stay parseable. *)
  let printed =
    Service.Json.to_string
      (Service.Json.List
         [
           Service.Json.Num Float.nan;
           Service.Json.Num Float.infinity;
           Service.Json.Num Float.neg_infinity;
           Service.Json.Num 1.5;
         ])
  in
  Alcotest.(check string) "non-finite as null" "[null,null,null,1.5]" printed;
  match Service.Json.parse printed with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "emitted invalid JSON: %s" m

let test_json_unicode_escapes () =
  let parse_str text =
    match Service.Json.parse text with
    | Ok (Service.Json.Str s) -> s
    | Ok _ -> Alcotest.failf "expected a string from %s" text
    | Error m -> Alcotest.failf "parse %s: %s" text m
  in
  (* Basic multilingual plane scalars decode directly. *)
  Alcotest.(check string) "BMP escape" "\xE2\x82\xAC"
    (parse_str {|"\u20ac"|});
  Alcotest.(check string) "ASCII escape" "A" (parse_str {|"\u0041"|});
  (* A surrogate pair is ONE scalar: U+1F600 as 4-byte UTF-8, not two
     raw-encoded UTF-16 halves. *)
  Alcotest.(check string) "surrogate pair combines"
    "\xF0\x9F\x98\x80"
    (parse_str {|"\ud83d\ude00"|});
  Alcotest.(check string) "pair inside text" "x\xF0\x9F\x98\x80y"
    (parse_str {|"x\uD83D\uDE00y"|});
  (* Print/parse round trip keeps the encoded scalar intact. *)
  let j = Service.Json.Str (parse_str {|"\ud83d\ude00"|}) in
  (match Service.Json.parse (Service.Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error m -> Alcotest.failf "roundtrip: %s" m);
  (* Unpaired or truncated surrogates are invalid JSON text. *)
  let rejects text =
    match Service.Json.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" text
  in
  rejects {|"\ud83d"|};
  rejects {|"\ud83dx"|};
  rejects {|"\ud83dA"|};
  rejects {|"\ude00"|};
  rejects {|"\ud83d\ud83d"|};
  (* int_of_string would take underscores and signs; strict hex must not. *)
  rejects {|"\u00_1"|};
  rejects {|"\u-041"|};
  rejects {|"\u004"|};
  rejects {|"\u004g"|}

(* --------------------------------------------------------------- metrics *)

let test_metrics_concurrent () =
  (* Counter and histogram cells must stay exact under concurrent
     increments from multiple domains sharing one registry. *)
  let m = Service.Metrics.create () in
  let per_domain = 2000 and domains = 3 in
  let work () =
    for i = 1 to per_domain do
      Service.Metrics.incr m "test_total" ~labels:[ ("d", "x") ];
      Service.Metrics.observe m "test_seconds"
        ~buckets:[| 0.5; 1.5 |]
        (if i mod 2 = 0 then 1.0 else 2.0)
    done
  in
  let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn work) in
  work ();
  Array.iter Domain.join spawned;
  Alcotest.(check (option (float 0.0))) "counter exact"
    (Some (float_of_int (domains * per_domain)))
    (Service.Metrics.value m "test_total" ~labels:[ ("d", "x") ]);
  Alcotest.(check (option (float 0.0))) "histogram count exact"
    (Some (float_of_int (domains * per_domain)))
    (Service.Metrics.value m "test_seconds");
  let rendered = Service.Metrics.render m in
  let expect_line line =
    Alcotest.(check bool) ("renders " ^ line) true
      (contains_substring ~affix:line rendered)
  in
  expect_line (Printf.sprintf "test_total{d=\"x\"} %d" (domains * per_domain));
  (* The 1.0 observations (half of them) fall under le=1.5; the 2.0
     observations only under the implicit +Inf bucket. *)
  expect_line
    (Printf.sprintf "test_seconds_bucket{le=\"1.5\"} %d"
       (domains * per_domain / 2));
  expect_line
    (Printf.sprintf "test_seconds_bucket{le=\"+Inf\"} %d"
       (domains * per_domain));
  expect_line
    (Printf.sprintf "test_seconds_count %d" (domains * per_domain))

let test_metrics_trace_feed () =
  (* A pool whose trace is teed into a registry meters its jobs without
     disturbing the primary JSONL sink. *)
  let jsonl = Service.Trace.memory () in
  let m = Service.Metrics.create () in
  let trace =
    Service.Trace.tee jsonl
      (Service.Trace.observer (Service.Metrics.observe_trace m))
  in
  let job = small_job 40.0 0.5 in
  Service.Pool.with_pool ~workers:0 ~trace (fun pool ->
      ignore (Service.Pool.run_batch pool [ job ]);
      ignore (Service.Pool.run_batch pool [ job ]));
  Alcotest.(check (option (float 0.0))) "miss counted" (Some 1.0)
    (Service.Metrics.value m "etransform_jobs_total"
       ~labels:[ ("code", "solved"); ("cache", "miss") ]);
  Alcotest.(check (option (float 0.0))) "hit counted" (Some 1.0)
    (Service.Metrics.value m "etransform_jobs_total"
       ~labels:[ ("code", "solved"); ("cache", "hit") ]);
  Alcotest.(check (option (float 0.0))) "batches counted" (Some 2.0)
    (Service.Metrics.value m "etransform_batches_total");
  Alcotest.(check (option (float 0.0))) "solve time observed" (Some 2.0)
    (Service.Metrics.value m "etransform_job_solve_seconds");
  (* The JSONL sink still saw everything (2 jobs + 2 batch summaries). *)
  let lines =
    String.split_on_char '\n' (Service.Trace.contents jsonl)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "jsonl intact" 4 (List.length lines)

(* ---------------------------------------------------------- fingerprints *)

let parse_job line =
  match
    Service.Batch.job_of_line ~resolve:Harness.Line_jobs.resolve line
  with
  | Ok job -> job
  | Error m -> Alcotest.failf "job_of_line: %s" m

let test_fingerprint_permutation () =
  (* The same scenario with every key order permuted, top-level and
     nested, must hash to the same content address. *)
  let a =
    parse_job
      {|{"id":"a","estate":{"kind":"line","n_groups":12,"penalty":40,"frac_at_0":0.25},"milp":{"nodes":2,"time":20},"dr":false}|}
  in
  let b =
    parse_job
      {|{"dr":false,"milp":{"time":20,"nodes":2},"estate":{"frac_at_0":0.25,"penalty":40,"kind":"line","n_groups":12},"id":"b"}|}
  in
  Alcotest.(check string) "permuted spec, same fingerprint"
    (Service.Job.fingerprint a) (Service.Job.fingerprint b);
  let c =
    parse_job
      {|{"id":"c","estate":{"kind":"line","n_groups":12,"penalty":41,"frac_at_0":0.25},"milp":{"nodes":2,"time":20}}|}
  in
  Alcotest.(check bool) "changed penalty, new fingerprint" true
    (Service.Job.fingerprint a <> Service.Job.fingerprint c)

let test_fingerprint_ignores_delivery () =
  let base = small_job 20.0 0.5 in
  let with_deadline = { base with Service.Job.id = "x"; deadline_s = Some 9.0 } in
  let no_degrade = { base with Service.Job.degrade = false } in
  Alcotest.(check string) "deadline/id excluded"
    (Service.Job.fingerprint base)
    (Service.Job.fingerprint with_deadline);
  Alcotest.(check string) "degrade excluded"
    (Service.Job.fingerprint base)
    (Service.Job.fingerprint no_degrade);
  let dr = { base with Service.Job.dr = true } in
  Alcotest.(check bool) "dr included" true
    (Service.Job.fingerprint base <> Service.Job.fingerprint dr)

(* ----------------------------------------------------------------- cache *)

let test_cache_eviction () =
  let c = Service.Cache.create ~capacity:2 () in
  Service.Cache.add c "a" 1;
  Service.Cache.add c "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Service.Cache.find c "a");
  (* a is now most recent, so inserting c evicts b. *)
  Service.Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Service.Cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Service.Cache.find c "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Service.Cache.find c "c");
  Alcotest.(check int) "one eviction" 1 (Service.Cache.evictions c);
  Alcotest.(check int) "size bounded" 2 (Service.Cache.length c);
  Service.Cache.add c "a" 10;
  Alcotest.(check (option int)) "refresh replaces" (Some 10)
    (Service.Cache.find c "a");
  Alcotest.(check int) "refresh does not evict" 1 (Service.Cache.evictions c)

let test_cache_disabled () =
  let c = Service.Cache.create ~capacity:0 () in
  Service.Cache.add c "a" 1;
  Alcotest.(check (option int)) "nothing stored" None (Service.Cache.find c "a")

(* ------------------------------------------------------------------ pool *)

let check_same_results msg seq par =
  Alcotest.(check int) (msg ^ ": count") (List.length seq) (List.length par);
  List.iter2
    (fun (a : Service.Pool.result) (b : Service.Pool.result) ->
      Alcotest.(check bool) (msg ^ ": both solved") true
        (a.Service.Pool.code = Service.Pool.Solved
        && b.Service.Pool.code = Service.Pool.Solved);
      match (a.Service.Pool.outcome, b.Service.Pool.outcome) with
      | Some oa, Some ob ->
          Alcotest.(check (array int)) (msg ^ ": same placement")
            oa.Solver.placement.Placement.primary
            ob.Solver.placement.Placement.primary;
          Alcotest.(check (float 0.0)) (msg ^ ": same cost")
            (Evaluate.total oa.Solver.summary.Evaluate.cost)
            (Evaluate.total ob.Solver.summary.Evaluate.cost)
      | _ -> Alcotest.fail (msg ^ ": missing outcome"))
    seq par

let sweep_jobs () =
  List.concat_map
    (fun p -> List.map (fun f -> small_job p f) [ 0.0; 0.5; 1.0 ])
    [ 0.0; 80.0 ]

let test_pool_parallel_equals_sequential () =
  let jobs = sweep_jobs () in
  let seq =
    Service.Pool.with_pool ~workers:0 (fun pool ->
        Service.Pool.run_batch pool jobs)
  in
  let par =
    Service.Pool.with_pool ~workers:3 (fun pool ->
        Service.Pool.run_batch pool jobs)
  in
  check_same_results "pool" seq par;
  (* And the sequential pool path equals a direct engine call. *)
  let direct =
    let milp =
      { Solver.default_milp_options with Lp.Milp.node_limit = 2;
        time_limit = 20.0 }
    in
    Solver.consolidate ~milp
      (Harness.Line_estate.make (small_cfg 0.0 0.0))
  in
  match (List.hd seq).Service.Pool.outcome with
  | Some o ->
      Alcotest.(check (array int)) "pool equals direct solve"
        direct.Solver.placement.Placement.primary
        o.Solver.placement.Placement.primary
  | None -> Alcotest.fail "first job has no outcome"

let test_pool_thousand_tiny_jobs () =
  (* Stress the work-stealing pool: 1000 tiny jobs through 4 worker
     domains.  Every ticket must resolve, results must come back in
     submission order, and nothing may be dropped or duplicated.  The
     jobs cycle through 8 distinct specs, so the plan cache carries most
     of the load — which is exactly the small-fast-job regime where a
     scheduler race would surface as a lost wakeup or a misordered
     stream. *)
  let n = 1000 in
  let configs =
    [| (0.0, 0.0); (0.0, 0.5); (0.0, 1.0); (40.0, 0.5);
       (80.0, 0.0); (80.0, 0.5); (80.0, 1.0); (40.0, 1.0) |]
  in
  let jobs =
    List.init n (fun i ->
        let penalty, frac = configs.(i mod Array.length configs) in
        let base = small_job penalty frac in
        { base with Service.Job.id = Printf.sprintf "job-%d" i })
  in
  let results =
    Service.Pool.with_pool ~workers:4 ~queue_capacity:32 (fun pool ->
        Service.Pool.run_batch pool jobs)
  in
  Alcotest.(check int) "every job answered" n (List.length results);
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "slot %d in submission order" i)
        (Printf.sprintf "job-%d" i)
        r.Service.Pool.job.Service.Job.id;
      match r.Service.Pool.code with
      | Service.Pool.Solved | Service.Pool.Degraded -> ()
      | Service.Pool.Failed ->
          Alcotest.failf "job %d failed: %s" i
            (Option.value r.Service.Pool.reason ~default:"?"))
    results;
  let hits =
    List.length (List.filter (fun r -> r.Service.Pool.cache_hit) results)
  in
  Alcotest.(check bool) "cache did the heavy lifting" true
    (hits >= n - (2 * Array.length configs))

let test_cache_hit_on_repeat () =
  let trace = Service.Trace.memory () in
  let job = small_job 40.0 0.5 in
  Service.Pool.with_pool ~workers:0 ~trace (fun pool ->
      let first = List.hd (Service.Pool.run_batch pool [ job ]) in
      let second = List.hd (Service.Pool.run_batch pool [ job ]) in
      Alcotest.(check bool) "first misses" false first.Service.Pool.cache_hit;
      Alcotest.(check bool) "second hits" true second.Service.Pool.cache_hit;
      Alcotest.(check bool) "hit is solved" true
        (second.Service.Pool.code = Service.Pool.Solved);
      match (first.Service.Pool.outcome, second.Service.Pool.outcome) with
      | Some a, Some b ->
          Alcotest.(check (array int)) "hit returns the cached plan"
            a.Solver.placement.Placement.primary
            b.Solver.placement.Placement.primary
      | _ -> Alcotest.fail "missing outcomes");
  let lines =
    String.split_on_char '\n' (Service.Trace.contents trace)
    |> List.filter (fun l -> l <> "")
  in
  (* 2 job events + 2 batch summaries, all parseable JSONL. *)
  Alcotest.(check int) "trace lines" 4 (List.length lines);
  List.iter
    (fun line ->
      match Service.Json.parse line with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "unparseable trace line %S: %s" line m)
    lines;
  Alcotest.(check bool) "trace records the hit" true
    (List.exists
       (fun l -> contains_substring ~affix:{|"cache":"hit"|} l)
       lines)

let test_degraded_deadline () =
  (* A deadline of zero expires before the MILP starts: the job must come
     back tagged degraded with the greedy plan, not fail the batch. *)
  let job = small_job ~deadline_s:0.0 20.0 0.5 in
  let greedy =
    Greedy.plan (Harness.Line_estate.make (small_cfg 20.0 0.5))
  in
  Service.Pool.with_pool ~workers:0 (fun pool ->
      let r = List.hd (Service.Pool.run_batch pool [ job ]) in
      Alcotest.(check bool) "degraded" true
        (r.Service.Pool.code = Service.Pool.Degraded);
      Alcotest.(check bool) "reason given" true (r.Service.Pool.reason <> None);
      (match r.Service.Pool.outcome with
      | Some o ->
          Alcotest.(check (array int)) "greedy fallback plan" greedy.Placement.primary
            o.Solver.placement.Placement.primary;
          Alcotest.(check bool) "status marks the timeout" true
            (o.Solver.milp_status = Lp.Status.Time_limit)
      | None -> Alcotest.fail "degraded job still carries a plan");
      (* Degraded plans must not poison the cache: the same scenario
         without a deadline gets a real solve, not the greedy stand-in. *)
      let clean = { job with Service.Job.deadline_s = None } in
      let r2 = List.hd (Service.Pool.run_batch pool [ clean ]) in
      Alcotest.(check string) "same content address"
        r.Service.Pool.fingerprint r2.Service.Pool.fingerprint;
      Alcotest.(check bool) "clean rerun misses the cache" false
        r2.Service.Pool.cache_hit;
      Alcotest.(check bool) "clean rerun is a full solve" true
        (r2.Service.Pool.code = Service.Pool.Solved))

let test_capped_budget_not_cached () =
  (* A deadline that arrives mid-queue caps the MILP budget to the time
     remaining.  Such a solve can be cut short (Time_limit) yet still be
     coded Solved, and the fingerprint deliberately excludes deadline_s —
     so it must never enter the cache, or a later full-budget job would be
     served the potentially degraded plan as a Solved hit. *)
  let capped = small_job ~deadline_s:5.0 40.0 0.25 in
  Service.Pool.with_pool ~workers:0 (fun pool ->
      let r1 = List.hd (Service.Pool.run_batch pool [ capped ]) in
      Alcotest.(check bool) "capped job solves" true
        (r1.Service.Pool.code = Service.Pool.Solved);
      let clean = { capped with Service.Job.deadline_s = None } in
      let r2 = List.hd (Service.Pool.run_batch pool [ clean ]) in
      Alcotest.(check string) "same content address"
        r1.Service.Pool.fingerprint r2.Service.Pool.fingerprint;
      Alcotest.(check bool) "full-budget rerun misses the cache" false
        r2.Service.Pool.cache_hit;
      (* The full-budget solve is the one that populates the cache. *)
      let r3 = List.hd (Service.Pool.run_batch pool [ clean ]) in
      Alcotest.(check bool) "second full-budget run hits" true
        r3.Service.Pool.cache_hit)

let test_failed_without_degradation () =
  let job = small_job ~deadline_s:0.0 ~degrade:false 20.0 0.5 in
  Service.Pool.with_pool ~workers:0 (fun pool ->
      let r = List.hd (Service.Pool.run_batch pool [ job ]) in
      Alcotest.(check bool) "failed" true
        (r.Service.Pool.code = Service.Pool.Failed);
      Alcotest.(check bool) "no outcome" true (r.Service.Pool.outcome = None))

(* ----------------------------------------------------------------- batch *)

let test_batch_stream_alignment () =
  let input =
    String.concat "\n"
      [
        {|{"id":"j1","estate":{"kind":"line","n_groups":12},"milp":{"nodes":2,"time":20}}|};
        "# a comment between jobs";
        "this is not json";
        {|{"id":"j2","estate":{"n_groups":12,"kind":"line"},"milp":{"time":20,"nodes":2}}|};
        "";
      ]
  in
  let in_file = Filename.temp_file "etransform_batch" ".ndjson" in
  let out_file = Filename.temp_file "etransform_batch" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_file;
      Sys.remove out_file)
    (fun () ->
      let oc = open_out in_file in
      output_string oc input;
      close_out oc;
      let ic = open_in in_file and oc = open_out out_file in
      let ok, degraded, failed =
        Service.Pool.with_pool ~workers:2 (fun pool ->
            Service.Batch.run ~resolve:Harness.Line_jobs.resolve pool ic oc)
      in
      close_in ic;
      close_out oc;
      Alcotest.(check (list int)) "counts" [ 2; 0; 1 ] [ ok; degraded; failed ];
      let ic = open_in out_file in
      let rec read acc =
        match input_line ic with
        | l -> read (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = read [] in
      close_in ic;
      (* Comment and blank skipped; bad line kept in place as invalid. *)
      Alcotest.(check int) "three output lines" 3 (List.length lines);
      let codes =
        List.map
          (fun l ->
            match Service.Json.parse l with
            | Ok j ->
                Option.value ~default:"?"
                  (Option.bind (Service.Json.member "code" j)
                     Service.Json.to_str)
            | Error m -> Alcotest.failf "bad output line: %s" m)
          lines
      in
      Alcotest.(check (list string)) "codes in input order"
        [ "ok"; "invalid"; "ok" ] codes;
      (* j1 and j2 are the same scenario with permuted keys: same content
         address, same cost, whichever worker got there first. *)
      let fp_of l =
        match Service.Json.parse l with
        | Ok j ->
            Option.value ~default:""
              (Option.bind (Service.Json.member "fp" j) Service.Json.to_str)
        | Error _ -> ""
      in
      Alcotest.(check string) "permuted jobs share a fingerprint"
        (fp_of (List.nth lines 0))
        (fp_of (List.nth lines 2)))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: non-finite numbers" `Quick test_json_non_finite;
    Alcotest.test_case "json: \\u escapes and surrogate pairs" `Quick
      test_json_unicode_escapes;
    Alcotest.test_case "metrics: concurrent domains" `Quick
      test_metrics_concurrent;
    Alcotest.test_case "metrics: fed from trace spans" `Quick
      test_metrics_trace_feed;
    Alcotest.test_case "fingerprint: permutation-insensitive" `Quick
      test_fingerprint_permutation;
    Alcotest.test_case "fingerprint: delivery fields excluded" `Quick
      test_fingerprint_ignores_delivery;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache: zero capacity" `Quick test_cache_disabled;
    Alcotest.test_case "pool: parallel equals sequential" `Slow
      test_pool_parallel_equals_sequential;
    Alcotest.test_case "pool: 1000 tiny jobs, 4 workers, in order" `Slow
      test_pool_thousand_tiny_jobs;
    Alcotest.test_case "pool: cache hit on repeat" `Quick
      test_cache_hit_on_repeat;
    Alcotest.test_case "pool: zero deadline degrades" `Quick
      test_degraded_deadline;
    Alcotest.test_case "pool: capped budget not cached" `Quick
      test_capped_budget_not_cached;
    Alcotest.test_case "pool: no degradation means failure" `Quick
      test_failed_without_degradation;
    Alcotest.test_case "batch: NDJSON stream alignment" `Slow
      test_batch_stream_alignment;
  ]
