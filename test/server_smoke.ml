(* End-to-end smoke for the HTTP planning server, run by the
   @server-smoke alias.  Boots an in-process daemon on an ephemeral port,
   then exercises the full surface with a raw loopback client:

   - POST /solve with the first fixture job; the result line must match
     what Service.Batch produces for the same job (byte-identical after
     dropping the wall-clock timing fields queue_s/solve_s, which cannot
     repeat across runs).
   - POST /batch with the whole 3-job fixture; 3 ok result lines, in order.
   - GET /healthz and /metrics; the scrape must report the traffic above.
   - request_stop: the drain must complete well within --drain-timeout and
     leave the port closed. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("server-smoke: " ^ m);
      exit 1)
    fmt

let check cond fmt =
  Printf.ksprintf (fun m -> if not cond then fail "%s" m) fmt

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
  fd

let read_head ic =
  let status_line = input_line ic in
  let status =
    match String.split_on_char ' ' (String.trim status_line) with
    | _ :: code :: _ -> int_of_string code
    | _ -> fail "bad status line %S" status_line
  in
  let rec headers acc =
    match String.trim (input_line ic) with
    | "" -> List.rev acc
    | line -> (
        match String.index_opt line ':' with
        | None -> headers acc
        | Some i ->
            headers
              ((String.lowercase_ascii (String.sub line 0 i),
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
              :: acc))
  in
  (status, headers [])

let read_chunked ic =
  let buf = Buffer.create 1024 in
  let rec go () =
    let n = int_of_string ("0x" ^ String.trim (input_line ic)) in
    if n = 0 then (try ignore (input_line ic) with End_of_file -> ())
    else begin
      Buffer.add_string buf (really_input_string ic n);
      ignore (input_line ic);
      go ()
    end
  in
  go ();
  Buffer.contents buf

let request port text =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd text;
      let ic = Unix.in_channel_of_descr fd in
      let status, headers = read_head ic in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some n -> really_input_string ic (int_of_string n)
        | None -> (
            match List.assoc_opt "transfer-encoding" headers with
            | Some "chunked" -> read_chunked ic
            | _ -> "")
      in
      (status, body))

let post port path body =
  request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body)

let get port path =
  request port
    (Printf.sprintf
       "GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n" path)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* The fields whose values depend on wall-clock time, not on the job. *)
let timing_field = function "queue_s" | "solve_s" -> true | _ -> false

let strip_timing line =
  match Service.Json.parse (String.trim line) with
  | Error m -> fail "unparseable result line %S: %s" line m
  | Ok (Service.Json.Obj fields) ->
      Service.Json.to_string
        (Service.Json.Obj
           (List.filter (fun (k, _) -> not (timing_field k)) fields))
  | Ok _ -> fail "result line %S is not an object" line

let () =
  let fixture = Sys.argv.(1) in
  let lines =
    let ic = open_in fixture in
    let rec go acc =
      match input_line ic with
      | l -> go (if String.trim l = "" || l.[0] = '#' then acc else l :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  check (List.length lines = 3) "fixture must hold 3 jobs, got %d"
    (List.length lines);
  let first_job = List.hd lines in

  (* Reference: the same job through Service.Batch on a private pool —
     the CLI `batch` path without the process boundary. *)
  let reference =
    let out = Buffer.create 256 in
    let fed = ref false in
    Service.Pool.with_pool ~workers:1 ~queue_capacity:4 ~cache_capacity:16
      (fun pool ->
        ignore
          (Service.Batch.run_lines ~resolve:Harness.Line_jobs.resolve pool
             ~read_line:(fun () ->
               if !fed then None
               else begin
                 fed := true;
                 Some first_job
               end)
             ~write:(fun line -> Buffer.add_string out line)));
    strip_timing (Buffer.contents out)
  in

  let metrics = Service.Metrics.create () in
  let trace =
    Service.Trace.observer (Service.Metrics.observe_trace metrics)
  in
  (* A disk cache tier behind the LRU, so the scrape also carries the
     tiered lookup counters and the disk occupancy gauge. *)
  let cache_dir =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "etransform_server_smoke_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir
  in
  let node = Cluster.Node.create ~cache_dir () in
  Service.Pool.with_pool ~workers:2 ~queue_capacity:8 ~cache_capacity:16
    ~tiers:(Cluster.Node.tiers node) ~trace (fun pool ->
      let server =
        Server.Daemon.create ~port:0 ~drain_timeout:10.0
          ~resolve:Harness.Line_jobs.resolve ~metrics ~node ~pool ()
      in
      let th = Thread.create Server.Daemon.run server in
      let port = Server.Daemon.port server in

      (* /healthz *)
      let status, body = get port "/healthz" in
      check (status = 200) "/healthz status %d" status;
      check (contains ~affix:{|"status":"ok"|} body) "/healthz body %S" body;

      (* /solve — must agree with the batch reference byte-for-byte
         (modulo wall-clock timings). *)
      let status, body = post port "/solve" first_job in
      check (status = 200) "/solve status %d" status;
      let via_http = strip_timing body in
      check (via_http = reference)
        "/solve differs from batch: %s vs %s" via_http reference;

      (* /batch — the whole fixture in one request. *)
      let status, body = post port "/batch" (String.concat "\n" lines ^ "\n") in
      check (status = 200) "/batch status %d" status;
      let results =
        List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' body)
      in
      check (List.length results = 3) "/batch returned %d lines"
        (List.length results);
      List.iteri
        (fun i line ->
          let want = Printf.sprintf {|"id":"s%d"|} (i + 1) in
          check (contains ~affix:want line) "line %d is not s%d: %s" i (i + 1)
            line;
          check (contains ~affix:{|"code":"ok"|} line) "line %d not ok: %s" i
            line)
        results;

      (* /metrics — the scrape must reflect the traffic just generated.
         Request counters are incremented after the response bytes are
         written, so a scrape racing the /batch handler's epilogue can
         be one update behind: retry briefly before declaring a miss. *)
      let scrape_until affixes =
        let rec go tries =
          let status, scrape = get port "/metrics" in
          check (status = 200) "/metrics status %d" status;
          if List.for_all (fun affix -> contains ~affix scrape) affixes then
            scrape
          else if tries > 0 then begin
            Unix.sleepf 0.05;
            go (tries - 1)
          end
          else scrape
        in
        go 40
      in
      let scrape = scrape_until
        [
          {|etransform_http_requests_total{route="/batch",status="200"} 1|};
          {|etransform_jobs_total{cache="hit",code="solved"} 2|};
        ]
      in
      List.iter
        (fun affix ->
          check (contains ~affix scrape) "/metrics missing %S" affix)
        [
          {|etransform_http_requests_total{route="/healthz",status="200"} 1|};
          {|etransform_http_requests_total{route="/solve",status="200"} 1|};
          {|etransform_http_requests_total{route="/batch",status="200"} 1|};
          (* 4 jobs total: 1 via /solve, 3 via /batch.  s1 and s3 share
             the /solve job's fingerprint (cache hits); s2 is distinct,
             so 2 misses and 2 hits. *)
          {|etransform_jobs_total{cache="miss",code="solved"} 2|};
          {|etransform_jobs_total{cache="hit",code="solved"} 2|};
          {|etransform_job_solve_seconds_count|};
          {|etransform_http_request_seconds_bucket|};
          "etransform_pool_queue_depth";
          "etransform_cache_hits_total";
          "etransform_cache_misses_total";
          (* Tiered cache: the same 2 hits / 2 misses through the
             memory tier; both misses descend to the (empty) disk tier
             before solving; the disk store then holds those 2 plans. *)
          {|etransform_cache_lookups_total{result="hit",tier="memory"} 2|};
          {|etransform_cache_lookups_total{result="miss",tier="memory"} 2|};
          {|etransform_cache_lookups_total{result="miss",tier="disk"} 2|};
          "etransform_cache_disk_bytes";
        ];

      (* Reactor capacity: hold 1000 concurrent connections open at
         once (well under the default --max-conns of 4096) and prove the
         server still answers while they sit idle.  This runs after the
         metrics assertions above because the probe request would shift
         the exact per-route counters. *)
      let herd = Array.init 1000 (fun _ -> connect port) in
      Fun.protect
        ~finally:(fun () ->
          Array.iter (fun fd -> try Unix.close fd with _ -> ()) herd)
        (fun () ->
          let fd = herd.(Array.length herd - 1) in
          write_all fd
            (Printf.sprintf
               "POST /solve HTTP/1.1\r\nHost: smoke\r\nContent-Length: %d\r\n\r\n%s"
               (String.length first_job) first_job);
          let ic = Unix.in_channel_of_descr fd in
          let status, headers = read_head ic in
          check (status = 200) "solve under 1000 open conns: status %d" status;
          let body =
            match List.assoc_opt "content-length" headers with
            | Some n -> really_input_string ic (int_of_string n)
            | None -> fail "solve under load: missing content-length"
          in
          (* The job was solved earlier in this run, so it now comes
             back as a cache hit — check identity and outcome, not the
             cache bit. *)
          check
            (contains ~affix:{|"id":"s1"|} body
            && contains ~affix:{|"code":"ok"|} body)
            "solve under 1000 open conns: bad body %s" body);

      (* Graceful drain: idle server must stop long before the timeout. *)
      let t0 = Unix.gettimeofday () in
      Server.Daemon.request_stop server;
      Thread.join th;
      let elapsed = Unix.gettimeofday () -. t0 in
      check (elapsed < 5.0) "drain took %.1fs" elapsed;
      (match connect port with
      | fd ->
          (* A TIME_WAIT-free OS may still accept briefly; a successful
             connect with an immediate EOF also counts as closed. *)
          Unix.close fd;
          fail "listener still accepting after drain"
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()));
  Cluster.Node.close node;
  let rec rm_rf path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
        Array.iter
          (fun name -> rm_rf (Filename.concat path name))
          (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error _ -> ()
  in
  rm_rf cache_dir;

  print_endline
    "server-smoke: solve/batch/metrics ok, drain clean, listener closed"
