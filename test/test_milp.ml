(* Branch-and-bound MILP tests, including brute-force cross-checks. *)

open Lp

let le = Model.Linexpr.sum

let test_knapsack_small () =
  (* max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binaries: best is b+c = 20
     (weight 6); a+c only reaches 17. *)
  let m = Model.create ~name:"knapsack" () in
  let a = Model.add_var m ~binary:true "a"
  and b = Model.add_var m ~binary:true "b"
  and c = Model.add_var m ~binary:true "c" in
  Model.add_le m "w"
    (le Model.Linexpr.[ term 3.0 a; term 4.0 b; term 2.0 c ])
    6.0;
  Model.set_objective m ~minimize:false
    (le Model.Linexpr.[ term 10.0 a; term 13.0 b; term 7.0 c ]);
  let r = Milp.solve m in
  Alcotest.(check string) "status" "optimal" (Status.to_string r.Milp.status);
  Alcotest.(check (float 1e-6)) "obj" 20.0 r.Milp.obj;
  Alcotest.(check (float 1e-9)) "gap" 0.0 r.Milp.gap

let test_integer_general () =
  (* max x + y, 2x + y <= 7, x + 3y <= 9, x,y integer >= 0 -> (2.4,2.2) LP,
     integer optimum 5 at e.g. (3,1) or (2,2)... check: 2x+y<=7, x+3y<=9.
     (3,1): 7<=7, 6<=9 ok sum 4. (2,2): 6<=7, 8<=9 sum 4. (1,2): sum 3.
     LP opt: x=2.4,y=2.2 sum 4.6 -> integer best is 4. *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~hi:10.0 "x"
  and y = Model.add_var m ~integer:true ~hi:10.0 "y" in
  Model.add_le m "c1" Model.Linexpr.(add (term 2.0 x) (var y)) 7.0;
  Model.add_le m "c2" Model.Linexpr.(add (var x) (term 3.0 y)) 9.0;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (var x) (var y));
  let r = Milp.solve m in
  Alcotest.(check string) "status" "optimal" (Status.to_string r.Milp.status);
  Alcotest.(check (float 1e-6)) "obj" 4.0 r.Milp.obj

let test_infeasible_integrality () =
  (* 0.4 <= x <= 0.6 with x integer has no integral point. *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~lo:0.4 ~hi:0.6 "x" in
  Model.set_objective m (Model.Linexpr.var x);
  let r = Milp.solve m in
  Alcotest.(check string) "status" "infeasible" (Status.to_string r.Milp.status)

let test_mixed () =
  (* min 3y + x s.t. x >= 1.3, x <= 2.7, y binary, y >= x - 2 (so x > 2
     forces y). Optimum: x = 1.3, y = 0 -> 1.3. *)
  let m = Model.create () in
  let x = Model.add_var m ~lo:1.3 ~hi:2.7 "x" in
  let y = Model.add_var m ~binary:true "y" in
  Model.add_ge m "link" Model.Linexpr.(sub (term 1.0 y) (term 0.5 x)) (-1.0);
  Model.set_objective m Model.Linexpr.(add (term 3.0 y) (var x));
  let r = Milp.solve m in
  Alcotest.(check string) "status" "optimal" (Status.to_string r.Milp.status);
  Alcotest.(check (float 1e-6)) "obj" 1.3 r.Milp.obj

let test_node_limit_returns_feasible () =
  (* With a crippled node budget the dive heuristic must still produce an
     integer-feasible incumbent. *)
  let m = Model.create () in
  let n = 10 in
  let xs =
    Array.init n (fun i -> Model.add_var m ~binary:true (Printf.sprintf "x%d" i))
  in
  let weights = Array.init n (fun i -> float_of_int (((i * 7) mod 5) + 1)) in
  let values = Array.init n (fun i -> float_of_int (((i * 11) mod 7) + 1)) in
  Model.add_le m "w"
    (le (Array.to_list (Array.mapi (fun i x -> Model.Linexpr.term weights.(i) x) xs)))
    12.0;
  Model.set_objective m ~minimize:false
    (le (Array.to_list (Array.mapi (fun i x -> Model.Linexpr.term values.(i) x) xs)));
  let r =
    Milp.solve ~options:{ Milp.default_options with Milp.node_limit = 1 } m
  in
  Alcotest.(check bool) "has point" true (Array.length r.Milp.x > 0);
  Alcotest.(check bool) "integral" true (Milp.integral m r.Milp.x);
  Alcotest.(check bool) "bound sane" true (r.Milp.bound >= r.Milp.obj -. 1e-6)

let brute_force_knapsack weights values cap =
  let n = Array.length weights in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let w = ref 0.0 and v = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        w := !w +. weights.(i);
        v := !v +. values.(i)
      end
    done;
    if !w <= cap && !v > !best then best := !v
  done;
  !best

let prop_knapsack_matches_brute_force =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 3 10 in
      let* ws = list_repeat n (int_range 1 9) in
      let* vs = list_repeat n (int_range 1 9) in
      let* cap = int_range 5 25 in
      return (Array.of_list ws, Array.of_list vs, cap))
  in
  QCheck2.Test.make ~name:"binary knapsack matches brute force" ~count:60 gen
    (fun (ws, vs, cap) ->
      let n = Array.length ws in
      let m = Model.create () in
      let xs =
        Array.init n (fun i ->
            Model.add_var m ~binary:true (Printf.sprintf "x%d" i))
      in
      Model.add_le m "w"
        (le
           (Array.to_list
              (Array.mapi
                 (fun i x -> Model.Linexpr.term (float_of_int ws.(i)) x)
                 xs)))
        (float_of_int cap);
      Model.set_objective m ~minimize:false
        (le
           (Array.to_list
              (Array.mapi
                 (fun i x -> Model.Linexpr.term (float_of_int vs.(i)) x)
                 xs)));
      let expected =
        brute_force_knapsack
          (Array.map float_of_int ws)
          (Array.map float_of_int vs)
          (float_of_int cap)
      in
      (* Both node-LP engines must reach the brute-force optimum. *)
      List.iter
        (fun core ->
          let r =
            Milp.solve ~options:{ Milp.default_options with Milp.core } m
          in
          if r.Milp.status <> Status.Optimal then
            QCheck2.Test.fail_reportf "status %s"
              (Status.to_string r.Milp.status);
          if Float.abs (r.Milp.obj -. expected) > 1e-6 then
            QCheck2.Test.fail_reportf "milp %g, brute force %g" r.Milp.obj
              expected)
        [ Simplex.Dense; Simplex.Sparse ];
      true)

(* Small generalized-assignment instances: the exact shape used by the
   consolidation planner (assignment rows + capacity rows). *)
let prop_assignment_matches_brute_force =
  let gen =
    QCheck2.Gen.(
      let* groups = int_range 2 6 in
      let* dcs = int_range 2 3 in
      let* sizes = list_repeat groups (int_range 1 4) in
      let* costs = list_repeat (groups * dcs) (int_range 1 20) in
      let* cap = int_range 6 14 in
      return (groups, dcs, Array.of_list sizes, Array.of_list costs, float_of_int cap))
  in
  QCheck2.Test.make ~name:"assignment MILP matches brute force" ~count:60 gen
    (fun (groups, dcs, sizes, costs, cap) ->
      let m = Model.create () in
      let x =
        Array.init groups (fun i ->
            Array.init dcs (fun j ->
                Model.add_var m ~binary:true (Printf.sprintf "x_%d_%d" i j)))
      in
      for i = 0 to groups - 1 do
        Model.add_eq m
          (Printf.sprintf "assign%d" i)
          (le (Array.to_list (Array.map Model.Linexpr.var x.(i))))
          1.0
      done;
      for j = 0 to dcs - 1 do
        Model.add_le m
          (Printf.sprintf "cap%d" j)
          (le
             (List.init groups (fun i ->
                  Model.Linexpr.term (float_of_int sizes.(i)) x.(i).(j))))
          cap
      done;
      Model.set_objective m
        (le
           (List.concat_map
              (fun i ->
                List.init dcs (fun j ->
                    Model.Linexpr.term
                      (float_of_int costs.((i * dcs) + j))
                      x.(i).(j)))
              (List.init groups Fun.id)));
      (* Brute force over dcs^groups assignments. *)
      let best = ref infinity in
      let assign = Array.make groups 0 in
      let rec enum i =
        if i = groups then begin
          let load = Array.make dcs 0.0 in
          let cost = ref 0.0 in
          for g = 0 to groups - 1 do
            load.(assign.(g)) <- load.(assign.(g)) +. float_of_int sizes.(g);
            cost := !cost +. float_of_int costs.((g * dcs) + assign.(g))
          done;
          if Array.for_all (fun l -> l <= cap) load && !cost < !best then
            best := !cost
        end
        else
          for j = 0 to dcs - 1 do
            assign.(i) <- j;
            enum (i + 1)
          done
      in
      enum 0;
      List.iter
        (fun core ->
          let r =
            Milp.solve ~options:{ Milp.default_options with Milp.core } m
          in
          match (r.Milp.status, !best = infinity) with
          | Status.Infeasible, true -> ()
          | Status.Infeasible, false ->
              QCheck2.Test.fail_reportf
                "milp infeasible but brute force found %g" !best
          | Status.Optimal, true ->
              QCheck2.Test.fail_reportf
                "milp optimal %g but instance infeasible" r.Milp.obj
          | Status.Optimal, false ->
              if Float.abs (r.Milp.obj -. !best) > 1e-6 then
                QCheck2.Test.fail_reportf "milp %g, brute force %g" r.Milp.obj
                  !best
          | s, _ -> QCheck2.Test.fail_reportf "status %s" (Status.to_string s))
        [ Simplex.Dense; Simplex.Sparse ];
      true)

(* Random generalized-assignment MILPs for the warm-start / parallel
   agreement checks: eq assignment rows + tight capacity rows give
   fractional relaxations, so the branch-and-bound tree is real. *)
let random_gap rng =
  let groups = 3 + Datasets.Prng.int rng 5 in
  let dcs = 2 + Datasets.Prng.int rng 2 in
  let m = Model.create () in
  let x =
    Array.init groups (fun i ->
        Array.init dcs (fun j ->
            Model.add_var m ~binary:true (Printf.sprintf "x_%d_%d" i j)))
  in
  let sizes =
    Array.init groups (fun _ -> 1.0 +. Datasets.Prng.range rng 0.0 4.0)
  in
  for i = 0 to groups - 1 do
    Model.add_eq m
      (Printf.sprintf "assign%d" i)
      (le (Array.to_list (Array.map Model.Linexpr.var x.(i))))
      1.0
  done;
  let total = Array.fold_left ( +. ) 0.0 sizes in
  let cap =
    (* Usually tight but feasible; occasionally infeasible, which both
       solver configurations must classify identically. *)
    total /. float_of_int dcs *. Datasets.Prng.range rng 0.95 1.4
  in
  for j = 0 to dcs - 1 do
    Model.add_le m
      (Printf.sprintf "cap%d" j)
      (le
         (List.init groups (fun i -> Model.Linexpr.term sizes.(i) x.(i).(j))))
      cap
  done;
  Model.set_objective m
    (le
       (List.concat_map
          (fun i ->
            List.init dcs (fun j ->
                Model.Linexpr.term
                  (1.0 +. Datasets.Prng.range rng 0.0 9.0)
                  x.(i).(j)))
          (List.init groups Fun.id)));
  m

let agree name a b =
  if a.Milp.status <> b.Milp.status then
    Alcotest.failf "%s: status mismatch %s vs %s" name
      (Status.to_string a.Milp.status)
      (Status.to_string b.Milp.status);
  if
    a.Milp.status = Status.Optimal
    && Float.abs (a.Milp.obj -. b.Milp.obj)
       > 1e-6 *. (1.0 +. Float.abs a.Milp.obj)
  then Alcotest.failf "%s: objective mismatch %.9g vs %.9g" name a.Milp.obj b.Milp.obj

let test_warm_matches_cold () =
  (* >= 50 seeded random MILPs: the warm-started solver must agree with the
     cold-started one on status and objective.  Diving is off so the tree
     (and with it the dual warm path) is actually exercised. *)
  let rng = Datasets.Prng.create 2024 in
  let trees = ref 0 in
  for case = 1 to 55 do
    let m = random_gap rng in
    let cold =
      Milp.solve
        ~options:
          { Milp.default_options with
            Milp.warm_start = false; dive_first = false }
        m
    in
    let warm =
      Milp.solve
        ~options:{ Milp.default_options with Milp.dive_first = false }
        m
    in
    agree (Printf.sprintf "case %d" case) cold warm;
    if warm.Milp.nodes > 1 then incr trees
  done;
  Alcotest.(check bool) "some instances branched" true (!trees > 0)

let test_parallel_matches_sequential () =
  let rng = Datasets.Prng.create 7_777 in
  for case = 1 to 12 do
    let m = random_gap rng in
    let seq =
      Milp.solve
        ~options:{ Milp.default_options with Milp.dive_first = false }
        m
    in
    Alcotest.(check int) "sequential effective workers" 1 seq.Milp.workers;
    List.iter
      (fun w ->
        let par =
          Milp.solve
            ~options:
              { Milp.default_options with Milp.workers = w;
                dive_first = false }
            m
        in
        agree (Printf.sprintf "case %d w%d" case w) seq par)
      [ 2; 4 ]
  done

let test_effective_workers_reported () =
  (* The worker clamp used to be observable only as a one-shot stderr
     line; now the result reports the effective domain count. *)
  let rng = Datasets.Prng.create 11 in
  let m = random_gap rng in
  let avail = Domain.recommended_domain_count () in
  List.iter
    (fun requested ->
      let r =
        Milp.solve
          ~options:{ Milp.default_options with Milp.workers = requested }
          m
      in
      Alcotest.(check int)
        (Printf.sprintf "requested %d" requested)
        (min requested avail) r.Milp.workers)
    [ 1; 2; 64 ]

let test_deadline_always_joins () =
  (* Every run with a zero / near-zero deadline must terminate and join
     all of its domains — no hang, no leaked domain.  If a domain leaked,
     the raised count would show up here as a stuck process or a crash at
     program exit; we also assert the result is well-formed. *)
  let rng = Datasets.Prng.create 31_337 in
  for case = 1 to 3 do
    let m = random_gap rng in
    List.iter
      (fun w ->
        List.iter
          (fun deadline ->
            let r =
              Milp.solve
                ~options:
                  { Milp.default_options with
                    Milp.workers = w;
                    time_limit = deadline }
                m
            in
            let name =
              Printf.sprintf "case %d w%d deadline %g" case w deadline
            in
            (match r.Milp.status with
            | Status.Optimal | Status.Feasible | Status.Time_limit
            | Status.Node_limit | Status.Infeasible | Status.Iteration_limit
              ->
                ()
            | s ->
                Alcotest.failf "%s: unexpected status %s" name
                  (Status.to_string s));
            Alcotest.(check bool)
              (name ^ ": workers reported") true (r.Milp.workers >= 1))
          [ 0.0; 1e-9; 1e-4 ])
      [ 1; 2; 4 ]
  done

let test_branching_domain_safety () =
  (* Two domains hammer one pseudocost table while this thread reads it:
     every stat snapshot must be finite and non-negative at every
     interleaving, and the final accumulators must account for every
     observation exactly (nothing lost to a torn read-modify-write). *)
  let nvars = 32 in
  let per_domain = 20_000 in
  let t =
    Branching.create ~nvars ~strategy:Branching.Reliability ~sb_nvars:0
      ~sb_nsteps:0
  in
  let worker seed () =
    let rng = Datasets.Prng.create seed in
    for _ = 1 to per_domain do
      let var = Datasets.Prng.int rng nvars in
      let up = Datasets.Prng.int rng 2 = 0 in
      let frac = Datasets.Prng.range rng 0.05 0.95 in
      let degradation = Datasets.Prng.range rng 0.0 5.0 in
      Branching.observe t ~var ~up ~frac ~degradation
    done
  in
  let d1 = Domain.spawn (worker 1) and d2 = Domain.spawn (worker 2) in
  let ok = ref true in
  while Branching.observations t < 2 * per_domain do
    for var = 0 to nvars - 1 do
      let (nd, md), (nu, mu) = Branching.stats t ~var in
      if
        nd < 0 || nu < 0
        || (not (Float.is_finite md))
        || (not (Float.is_finite mu))
        || md < 0.0 || mu < 0.0
      then ok := false
    done
  done;
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check bool) "no NaN/negative pseudocost observed" true !ok;
  Alcotest.(check int) "no observation lost" (2 * per_domain)
    (Branching.observations t);
  let counted = ref 0 in
  for var = 0 to nvars - 1 do
    let (nd, md), (nu, mu) = Branching.stats t ~var in
    counted := !counted + nd + nu;
    Alcotest.(check bool)
      (Printf.sprintf "var %d means sane" var)
      true
      (md >= 0.0 && mu >= 0.0 && Float.is_finite md && Float.is_finite mu)
  done;
  Alcotest.(check int) "per-var counts account for every observation"
    (2 * per_domain) !counted

let test_pump_cycle_terminates () =
  (* Crafted cycling instance: 2x + 2y = 1 over binaries has a fractional
     relaxation (x + y = 1/2) and NO integral point, so the pump can never
     succeed — every distance LP lands on a vertex like (1/2, 0), whose
     rounding repeats an earlier target and trips the rounding-history
     cycle detector.  The run must still terminate (perturbation plus the
     round budget and stall cap), must not report Integral, and must be
     deterministic from round counts down to the returned iterate. *)
  let m = Model.create ~name:"pump_cycle" () in
  let x = Model.add_var m ~binary:true "x"
  and y = Model.add_var m ~binary:true "y" in
  Model.add_eq m "half" Model.Linexpr.(add (term 2.0 x) (term 2.0 y)) 1.0;
  Model.set_objective m ~minimize:true Model.Linexpr.(add (var x) (var y));
  let input = Simplex.of_model m in
  let root = Simplex.solve input in
  Alcotest.(check string) "relaxation solves" "optimal"
    (Status.to_string root.Simplex.status);
  let rounds = ref 0 in
  let solve inp =
    incr rounds;
    if !rounds > 200 then Alcotest.fail "pump did not terminate";
    Simplex.solve inp
  in
  let run () =
    rounds := 0;
    let outcome =
      Fpump.run ~solve ~input ~int_ids:[ 0; 1 ] ~int_tol:1e-9
        ~start:root.Simplex.x
        ~stop:(fun () -> false)
        ~max_rounds:40 ()
    in
    (outcome, !rounds)
  in
  let o1, n1 = run () in
  let o2, n2 = run () in
  (match o1 with
  | Fpump.Integral _ -> Alcotest.fail "no integral point exists"
  | Fpump.Near p ->
      Alcotest.(check bool) "near iterate satisfies the relaxation" true
        (Simplex.feasible input p)
  | Fpump.Failed -> ());
  Alcotest.(check int) "deterministic round count" n1 n2;
  match (o1, o2) with
  | Fpump.Near p1, Fpump.Near p2 ->
      Alcotest.(check bool) "deterministic iterate" true (p1 = p2)
  | Fpump.Failed, Fpump.Failed -> ()
  | _ -> Alcotest.fail "outcome shape differs between identical runs"

let test_relax_reports_fractional () =
  let m = Model.create () in
  let x = Model.add_var m ~binary:true "x" in
  Model.add_le m "c" (Model.Linexpr.term 2.0 x) 1.0;
  Model.set_objective m ~minimize:false (Model.Linexpr.var x);
  let r = Milp.relax m in
  Alcotest.(check (float 1e-9)) "fractional root" 0.5 r.Simplex.x.(0);
  Alcotest.(check bool) "not integral" false (Milp.integral m r.Simplex.x)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "small knapsack" `Quick test_knapsack_small;
    Alcotest.test_case "general integers" `Quick test_integer_general;
    Alcotest.test_case "integrality infeasible" `Quick test_infeasible_integrality;
    Alcotest.test_case "mixed integer-continuous" `Quick test_mixed;
    Alcotest.test_case "node limit still feasible" `Quick test_node_limit_returns_feasible;
    Alcotest.test_case "relaxation is fractional" `Quick test_relax_reports_fractional;
    Alcotest.test_case "pump cycle detection terminates" `Quick
      test_pump_cycle_terminates;
    Alcotest.test_case "warm start matches cold start" `Quick
      test_warm_matches_cold;
    Alcotest.test_case "parallel matches sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "effective workers reported" `Quick
      test_effective_workers_reported;
    Alcotest.test_case "zero deadline still joins all domains" `Quick
      test_deadline_always_joins;
    Alcotest.test_case "branching stats domain-safe" `Quick
      test_branching_domain_safety;
    q prop_knapsack_matches_brute_force;
    q prop_assignment_matches_brute_force;
  ]
