open Lp

let test_singleton_tightening () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:100.0 "x" in
  let y = Model.add_var m ~hi:100.0 "y" in
  Model.add_le m "c1" (Model.Linexpr.term 2.0 x) 10.0;
  Model.add_ge m "c2" (Model.Linexpr.var y) 3.0;
  Model.add_le m "c3" Model.Linexpr.(add (var x) (var y)) 50.0;
  let changed = Presolve.tighten m in
  Alcotest.(check bool) "some bounds changed" true (changed >= 2);
  Alcotest.(check (float 1e-9)) "x hi" 5.0 (Model.vars m).(0).Model.hi;
  Alcotest.(check (float 1e-9)) "y lo" 3.0 (Model.vars m).(1).Model.lo

let test_negative_coefficient_singleton () =
  let m = Model.create () in
  let x = Model.add_var m ~lo:(-50.0) ~hi:50.0 "x" in
  (* -2x <= 10  <=>  x >= -5 *)
  Model.add_le m "c" (Model.Linexpr.term (-2.0) x) 10.0;
  ignore (Presolve.tighten m);
  Alcotest.(check (float 1e-9)) "x lo" (-5.0) (Model.vars m).(0).Model.lo

let test_integer_rounding () =
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~lo:0.3 ~hi:4.7 "x" in
  ignore (Presolve.tighten m);
  Alcotest.(check (float 1e-9)) "lo rounded" 1.0 (Model.vars m).(0).Model.lo;
  Alcotest.(check (float 1e-9)) "hi rounded" 4.0 (Model.vars m).(0).Model.hi;
  ignore x

let test_diagnose_empty_domain () =
  let m = Model.create () in
  let _ = Model.add_var m ~integer:true ~lo:0.4 ~hi:0.6 "x" in
  let issues = Presolve.diagnose m in
  Alcotest.(check bool) "reports empty integral domain" true
    (List.exists
       (fun s -> Astring_contains.contains s "empty integral domain")
       issues)

let test_validate_bad_bounds () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.set_bounds m x ~lo:2.0 ~hi:1.0;
  Alcotest.(check bool) "bound order flagged" true (Model.validate m <> [])

let test_tighten_preserves_optimum () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:100.0 "x" and y = Model.add_var m ~hi:100.0 "y" in
  Model.add_le m "c1" (Model.Linexpr.term 2.0 x) 10.0;
  Model.add_le m "c2" Model.Linexpr.(add (var x) (var y)) 8.0;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (term 3.0 x) (var y));
  let before = (Milp.solve m).Milp.obj in
  ignore (Presolve.tighten m);
  let after = (Milp.solve m).Milp.obj in
  Alcotest.(check (float 1e-6)) "optimum unchanged" before after

let suite =
  [
    Alcotest.test_case "singleton rows tighten bounds" `Quick test_singleton_tightening;
    Alcotest.test_case "negative coefficient" `Quick test_negative_coefficient_singleton;
    Alcotest.test_case "integer bound rounding" `Quick test_integer_rounding;
    Alcotest.test_case "diagnose empty domain" `Quick test_diagnose_empty_domain;
    Alcotest.test_case "validate crossed bounds" `Quick test_validate_bad_bounds;
    Alcotest.test_case "tighten preserves optimum" `Quick test_tighten_preserves_optimum;
  ]

(* ---- presolve/postsolve pipeline ------------------------------------- *)

let status_t = Alcotest.testable
    (fun ppf s -> Fmt.string ppf (Status.to_string s))
    ( = )

(* Presolve + solve + postsolve must agree with a direct solve on status
   and objective, and the reconstructed solution must pass the full KKT
   certificate against the *original* input. *)
let agree_with_direct ?(tol = 1e-6) input =
  let direct = Simplex.solve input in
  let via = Presolve.solve input in
  Alcotest.check status_t "status" direct.Simplex.status via.Simplex.status;
  if direct.Simplex.status = Status.Optimal then begin
    Alcotest.(check (float tol))
      "objective" direct.Simplex.obj_value via.Simplex.obj_value;
    Alcotest.(check int)
      "primal length" input.Simplex.nvars
      (Array.length via.Simplex.x);
    Alcotest.(check int)
      "dual length" (Array.length input.Simplex.rows)
      (Array.length via.Simplex.duals);
    match Simplex.check_certificate input via with
    | [] -> ()
    | errs ->
        Alcotest.failf "postsolved certificate: %s" (String.concat "; " errs)
  end

let test_pipeline_fixed_vars () =
  let m = Model.create () in
  let x = Model.add_var m ~lo:2.0 ~hi:2.0 "x" in
  let y = Model.add_var m ~hi:10.0 "y" in
  let z = Model.add_var m ~lo:(-1.0) ~hi:(-1.0) "z" in
  Model.add_le m "c" Model.Linexpr.(sum [ var x; var y; term 3.0 z ]) 7.0;
  Model.set_objective m ~minimize:false
    Model.Linexpr.(sum [ var x; var y; var z ]);
  agree_with_direct (Simplex.of_model m)

let test_pipeline_singleton_rows () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:100.0 "x" in
  let y = Model.add_var m ~hi:100.0 "y" in
  Model.add_le m "sx" (Model.Linexpr.term 2.0 x) 10.0;
  Model.add_ge m "sy" (Model.Linexpr.var y) 3.0;
  Model.add_le m "joint" Model.Linexpr.(add (var x) (var y)) 6.0;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (term 3.0 x) (var y));
  let input = Simplex.of_model m in
  agree_with_direct input;
  (* The singleton rows must actually be removed by the reduction. *)
  match Presolve.reduce input with
  | `Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | `Reduced red ->
      Alcotest.(check bool)
        "rows were removed" true
        (Array.length (Presolve.reduced_input red).Simplex.rows
        < Array.length input.Simplex.rows)

let test_pipeline_empty_rows () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:4.0 "x" in
  Model.add_le m "vacuous" Model.Linexpr.zero 5.0;
  Model.add_le m "real" (Model.Linexpr.var x) 3.0;
  Model.set_objective m ~minimize:false (Model.Linexpr.var x);
  agree_with_direct (Simplex.of_model m)

let test_pipeline_empty_row_infeasible () =
  let m = Model.create () in
  let _x = Model.add_var m ~hi:4.0 "x" in
  Model.add_ge m "impossible" Model.Linexpr.zero 5.0;
  let input = Simplex.of_model m in
  let via = Presolve.solve input in
  Alcotest.check status_t "status" Status.Infeasible via.Simplex.status

let test_pipeline_crossed_singleton_bounds () =
  (* 2x <= -2 and x >= 0.5 cross: presolve must certify infeasibility, and
     so must the direct solve. *)
  let m = Model.create () in
  let x = Model.add_var m ~lo:0.5 ~hi:10.0 "x" in
  Model.add_le m "neg" (Model.Linexpr.term 2.0 x) (-2.0);
  Model.set_objective m (Model.Linexpr.var x);
  let input = Simplex.of_model m in
  let direct = Simplex.solve input in
  let via = Presolve.solve input in
  Alcotest.check status_t "both infeasible" direct.Simplex.status
    via.Simplex.status;
  Alcotest.check status_t "infeasible" Status.Infeasible via.Simplex.status

(* Randomized: feasible-by-construction LPs seeded with fixed variables,
   singleton rows and empty rows, solved with and without the pipeline. *)
let test_pipeline_random () =
  let rng = Datasets.Prng.create 1234 in
  for _case = 1 to 120 do
    let n = 2 + Datasets.Prng.int rng 6 in
    let rows = 1 + Datasets.Prng.int rng 6 in
    let x0 = Array.init n (fun _ -> Datasets.Prng.range rng 0.0 3.0) in
    let m = Model.create () in
    let vars =
      Array.init n (fun i ->
          (* A fifth of the variables are fixed at their seed value to
             exercise fixed-column elimination through postsolve. *)
          if Datasets.Prng.int rng 5 = 0 then
            Model.add_var m ~lo:x0.(i) ~hi:x0.(i) (Printf.sprintf "f%d" i)
          else Model.add_var m ~hi:5.0 (Printf.sprintf "v%d" i))
    in
    for r = 0 to rows - 1 do
      match Datasets.Prng.int rng 5 with
      | 0 ->
          (* Singleton row around the seed point. *)
          let j = Datasets.Prng.int rng n in
          let c = Datasets.Prng.range rng 0.5 3.0 in
          Model.add_le m (Printf.sprintf "s%d" r)
            (Model.Linexpr.term c vars.(j))
            ((c *. x0.(j)) +. 1.0)
      | 1 when Datasets.Prng.int rng 2 = 0 ->
          Model.add_le m (Printf.sprintf "z%d" r) Model.Linexpr.zero 1.0
      | _ ->
          let e = ref Model.Linexpr.zero in
          let lhs = ref 0.0 in
          for j = 0 to n - 1 do
            let c = Datasets.Prng.range rng (-5.0) 5.0 in
            e := Model.Linexpr.add !e (Model.Linexpr.term c vars.(j));
            lhs := !lhs +. (c *. x0.(j))
          done;
          (match Datasets.Prng.int rng 3 with
          | 0 -> Model.add_le m (Printf.sprintf "r%d" r) !e (!lhs +. 1.0)
          | 1 -> Model.add_ge m (Printf.sprintf "r%d" r) !e (!lhs -. 1.0)
          | _ -> Model.add_eq m (Printf.sprintf "r%d" r) !e !lhs)
    done;
    Model.set_objective m
      (Model.Linexpr.sum
         (List.init n (fun j ->
              Model.Linexpr.term (Datasets.Prng.range rng (-4.0) 4.0) vars.(j))));
    agree_with_direct (Simplex.of_model m)
  done

let test_pipeline_scaling_badly_scaled () =
  (* Coefficients spread over 8 orders of magnitude: equilibration must not
     change the answer. *)
  let m = Model.create () in
  let x = Model.add_var m ~hi:1e6 "x" and y = Model.add_var m ~hi:1e6 "y" in
  Model.add_le m "big" Model.Linexpr.(add (term 1e4 x) (term 2e4 y)) 3e4;
  Model.add_le m "small" Model.Linexpr.(add (term 1e-4 x) (term 3e-4 y)) 4e-4;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (var x) (term 2.0 y));
  agree_with_direct (Simplex.of_model m)

let pipeline_suite =
  [
    Alcotest.test_case "pipeline: fixed variables" `Quick
      test_pipeline_fixed_vars;
    Alcotest.test_case "pipeline: singleton rows removed" `Quick
      test_pipeline_singleton_rows;
    Alcotest.test_case "pipeline: empty rows" `Quick test_pipeline_empty_rows;
    Alcotest.test_case "pipeline: infeasible empty row" `Quick
      test_pipeline_empty_row_infeasible;
    Alcotest.test_case "pipeline: crossed singleton bounds" `Quick
      test_pipeline_crossed_singleton_bounds;
    Alcotest.test_case "pipeline: random models match direct solve" `Quick
      test_pipeline_random;
    Alcotest.test_case "pipeline: badly scaled model" `Quick
      test_pipeline_scaling_badly_scaled;
  ]

let suite = suite @ pipeline_suite
