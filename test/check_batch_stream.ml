(* Validator for the @service-smoke alias: the NDJSON stream produced by
   `etransform batch` over test/service_smoke.ndjson must contain exactly
   one well-formed result line per job, all solved, in input order, and
   the permuted duplicate (s3 vs s1) must share a fingerprint and cost. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("service-smoke: " ^ m); exit 1) fmt

let str_field j name =
  match Option.bind (Service.Json.member name j) Service.Json.to_str with
  | Some s -> s
  | None -> fail "missing string field %S in %s" name (Service.Json.to_string j)

let num_field j name =
  match Option.bind (Service.Json.member name j) Service.Json.to_float with
  | Some v -> v
  | None -> fail "missing numeric field %S in %s" name (Service.Json.to_string j)

let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  if List.length lines <> 3 then
    fail "expected 3 result lines, got %d" (List.length lines);
  let results =
    List.map
      (fun line ->
        match Service.Json.parse line with
        | Ok j -> j
        | Error m -> fail "unparseable result line %S: %s" line m)
      lines
  in
  let ids = List.map (fun j -> str_field j "id") results in
  if ids <> [ "s1"; "s2"; "s3" ] then
    fail "ids out of order: %s" (String.concat "," ids);
  List.iter
    (fun j ->
      if str_field j "code" <> "ok" then
        fail "job %s not ok: %s" (str_field j "id") (Service.Json.to_string j);
      (match Service.Json.member "placement" j with
      | Some (Service.Json.List (_ :: _)) -> ()
      | _ -> fail "job %s has no placement" (str_field j "id"));
      ignore (num_field j "total"))
    results;
  let r1 = List.nth results 0 and r3 = List.nth results 2 in
  if str_field r1 "fp" <> str_field r3 "fp" then
    fail "permuted duplicate changed the fingerprint";
  if num_field r1 "total" <> num_field r3 "total" then
    fail "permuted duplicate changed the cost";
  print_endline "service-smoke: 3 jobs ok, stream aligned, fingerprints stable"
