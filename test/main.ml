let () =
  Alcotest.run "etransform"
    [
      ("pqueue", Test_pqueue.suite);
      ("wsched", Test_wsched.suite);
      ("simplex", Test_simplex.suite);
      ("milp", Test_milp.suite);
      ("lp-format", Test_lp_format.suite);
      ("piecewise", Test_piecewise.suite);
      ("presolve", Test_presolve.suite);
      ("geo", Test_geo.suite);
      ("datasets", Test_datasets.suite);
      ("domain", Test_domain.suite);
      ("evaluate", Test_evaluate.suite);
      ("baselines", Test_baselines.suite);
      ("lp-builder", Test_lp_builder.suite);
      ("solver", Test_solver.suite);
      ("dr", Test_dr.suite);
      ("iterate", Test_iterate.suite);
      ("split", Test_split.suite);
      ("report", Test_report.suite);
      ("harness", Test_harness.suite);
      ("migration", Test_migration.suite);
      ("service", Test_service.suite);
      ("scenario", Test_scenario.suite);
      ("server", Test_server.suite);
      ("cluster", Test_cluster.suite);
      ("check", Test_check.suite);
      ("http-edge", Test_http_edge.suite);
      ("metrics", Test_metrics.suite);
    ]
