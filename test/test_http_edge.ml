(* Chunked-encoding corner cases over the injectable byte source — the
   same seam the fuzz IO oracles replay through, driven here with
   hand-picked edge inputs: the bare zero-length-chunk terminator,
   trailers after the last chunk, chunk-size lines carrying extensions,
   and oversized / malformed chunk headers. *)

let conn_of_string ?limits s =
  let pos = ref 0 in
  Server.Http.conn_of_source ?limits (fun buf off len ->
      let n = min len (String.length s - !pos) in
      if n <= 0 then 0
      else begin
        Bytes.blit_string s !pos buf off n;
        pos := !pos + n;
        n
      end)

let chunked_request body_text =
  "POST /batch HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" ^ body_text

let read_body ?limits body_text =
  let conn = conn_of_string ?limits (chunked_request body_text) in
  match Server.Http.read_request conn with
  | None -> Alcotest.fail "no request parsed"
  | Some req ->
      let body = Server.Http.body_of_request conn req in
      (conn, Server.Http.read_all body)

let test_zero_length_terminator () =
  (* A body that is ONLY the terminating zero chunk: empty, and the
     connection is immediately reusable. *)
  let conn, data = read_body "0\r\n\r\n" in
  Alcotest.(check string) "empty body" "" data;
  Alcotest.(check bool) "clean eof after body" true
    (Server.Http.read_request conn = None)

let test_trailers_after_last_chunk () =
  let conn, data =
    read_body "4\r\nabcd\r\n0\r\nX-Checksum: 99\r\nX-Other: t\r\n\r\n"
  in
  Alcotest.(check string) "body" "abcd" data;
  (* Trailers are consumed as part of the body; a pipelined request
     after them still parses. *)
  Alcotest.(check bool) "eof after trailers" true
    (Server.Http.read_request conn = None)

let test_trailers_then_next_request () =
  let text =
    chunked_request "2\r\nhi\r\n0\r\nX-T: 1\r\n\r\n"
    ^ "GET /healthz HTTP/1.1\r\n\r\n"
  in
  let conn = conn_of_string text in
  (match Server.Http.read_request conn with
  | Some req ->
      let body = Server.Http.body_of_request conn req in
      Alcotest.(check string) "first body" "hi" (Server.Http.read_all body)
  | None -> Alcotest.fail "first request missing");
  match Server.Http.read_request conn with
  | Some req ->
      Alcotest.(check string) "second path survives trailers" "/healthz"
        req.Server.Http.path
  | None -> Alcotest.fail "keep-alive lost after trailers"

let test_chunk_size_extensions () =
  (* Extensions after the size are ignored, with or without a value, in
     any chunk including the last. *)
  let _, data =
    read_body "3;name=value\r\nabc\r\n2;flag\r\nde\r\n0;last=1\r\n\r\n"
  in
  Alcotest.(check string) "extensions ignored" "abcde" data

let test_uppercase_hex_size () =
  let _, data = read_body ("A\r\n0123456789\r\n0\r\n\r\n") in
  Alcotest.(check string) "hex size, uppercase" "0123456789" data

let test_oversized_chunk_header () =
  (* A chunk-size line longer than max_request_line must be a 400, not
     an unbounded buffer. *)
  let limits =
    { Server.Http.default_limits with Server.Http.max_request_line = 64 }
  in
  let huge = "1;" ^ String.make 500 'x' ^ "\r\nA\r\n0\r\n\r\n" in
  match read_body ~limits huge with
  | exception Server.Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "oversized chunk header accepted"

let test_huge_chunk_size_value () =
  (* A size over the parser's hex cap is rejected rather than wrapped
     into a small (or negative) count. *)
  match read_body "FFFFFFFFFFFFFFFF\r\nzz\r\n0\r\n\r\n" with
  | exception Server.Http.Bad_request _ -> ()
  | _ -> Alcotest.fail "64-bit chunk size accepted"

let test_malformed_chunk_sizes () =
  List.iter
    (fun body ->
      match read_body body with
      | exception Server.Http.Bad_request _ -> ()
      | _ -> Alcotest.failf "malformed chunk size %S accepted" body)
    [ "\r\nab\r\n0\r\n\r\n";       (* empty size line *)
      "g1\r\nab\r\n0\r\n\r\n";     (* non-hex digit *)
      ";ext\r\nab\r\n0\r\n\r\n" ]  (* extension without a size *)

let test_eof_inside_chunk () =
  (* Torn write: the peer dies mid-chunk.  Must be a 400-class error,
     not a hang or a partial success. *)
  match read_body "5\r\nab" with
  | exception Server.Http.Bad_request _ -> ()
  | _, data -> Alcotest.failf "truncated chunk read as %S" data

let suite =
  [
    Alcotest.test_case "zero-length chunk terminator" `Quick
      test_zero_length_terminator;
    Alcotest.test_case "trailers after last chunk" `Quick
      test_trailers_after_last_chunk;
    Alcotest.test_case "trailers then next request" `Quick
      test_trailers_then_next_request;
    Alcotest.test_case "chunk-size extensions" `Quick
      test_chunk_size_extensions;
    Alcotest.test_case "uppercase hex size" `Quick test_uppercase_hex_size;
    Alcotest.test_case "oversized chunk header is 400" `Quick
      test_oversized_chunk_header;
    Alcotest.test_case "huge chunk size value is 400" `Quick
      test_huge_chunk_size_value;
    Alcotest.test_case "malformed chunk sizes are 400" `Quick
      test_malformed_chunk_sizes;
    Alcotest.test_case "eof inside chunk is 400" `Quick test_eof_inside_chunk;
  ]
