(* Two-node cluster smoke, run by the @cluster-smoke alias.

   Boots two in-process daemons on ephemeral ports, each with its own
   disk store, with B's --peers pointing at A:

   - POST /solve on A: a fresh solve, persisted to A's disk tier.
   - GET /cache/<fp> on A: the binary plan, decodable by Cluster.Codec.
   - POST /solve of the same scenario on B: B must answer it as a
     peer-tier cache hit (fetched from A, never re-solved), visible in
     B's /metrics as etransform_cache_lookups_total{result="hit",
     tier="peer"} and a jobs_total cache="hit".
   - A gossip round from B installs A's Bloom digest, which covers the
     solved fingerprint.
   - Both nodes expose etransform_cache_disk_bytes, non-zero on A. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("cluster-smoke: " ^ m);
      exit 1)
    fmt

let check cond fmt =
  Printf.ksprintf (fun m -> if not cond then fail "%s" m) fmt

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
  fd

let request port text =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd text;
      let ic = Unix.in_channel_of_descr fd in
      let status_line = input_line ic in
      let status =
        match String.split_on_char ' ' (String.trim status_line) with
        | _ :: code :: _ -> int_of_string code
        | _ -> fail "bad status line %S" status_line
      in
      let rec headers acc =
        match String.trim (input_line ic) with
        | "" -> acc
        | line -> (
            match String.index_opt line ':' with
            | None -> headers acc
            | Some i ->
                headers
                  ((String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1)))
                  :: acc))
      in
      let hs = headers [] in
      let body =
        match List.assoc_opt "content-length" hs with
        | Some n -> really_input_string ic (int_of_string n)
        | None ->
            let buf = Buffer.create 1024 in
            (try
               while true do
                 Buffer.add_channel buf ic 1
               done
             with End_of_file -> ());
            Buffer.contents buf
      in
      (status, body))

let post port path body =
  request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body)

let get port path =
  request port
    (Printf.sprintf
       "GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n" path)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let temp_dir tag =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "etransform_cluster_smoke_%s_%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let json_str_field name body =
  match Service.Json.parse (String.trim body) with
  | Ok j -> Option.bind (Service.Json.member name j) Service.Json.to_str
  | Error m -> fail "unparseable body %S: %s" body m

type node = {
  tag : string;
  dir : string;
  node : Cluster.Node.t;
  pool : Service.Pool.t;
  server : Server.Daemon.t;
  thread : Thread.t;
}

let boot tag ~peers =
  let dir = temp_dir tag in
  let node = Cluster.Node.create ~cache_dir:dir ~peers () in
  let metrics = Service.Metrics.create () in
  let trace =
    Service.Trace.observer (Service.Metrics.observe_trace metrics)
  in
  let pool =
    Service.Pool.create ~workers:1 ~queue_capacity:8 ~cache_capacity:16
      ~tiers:(Cluster.Node.tiers node) ~trace ()
  in
  let server =
    Server.Daemon.create ~port:0 ~drain_timeout:10.0
      ~resolve:Harness.Line_jobs.resolve ~metrics ~node ~pool ()
  in
  Cluster.Node.set_self node
    (Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port server));
  let thread = Thread.create Server.Daemon.run server in
  { tag; dir; node; pool; server; thread }

let shutdown n =
  Server.Daemon.request_stop n.server;
  Thread.join n.thread;
  Cluster.Node.close n.node;
  Service.Pool.shutdown n.pool;
  rm_rf n.dir

let () =
  let fixture = Sys.argv.(1) in
  let job =
    let ic = open_in fixture in
    let rec first () =
      match input_line ic with
      | l when String.trim l = "" || l.[0] = '#' -> first ()
      | l -> l
      | exception End_of_file -> fail "empty fixture"
    in
    let l = first () in
    close_in ic;
    l
  in

  let a = boot "a" ~peers:[] in
  let port_a = Server.Daemon.port a.server in
  let b = boot "b" ~peers:[ Printf.sprintf "127.0.0.1:%d" port_a ] in
  let port_b = Server.Daemon.port b.server in
  Fun.protect
    ~finally:(fun () ->
      shutdown b;
      shutdown a)
    (fun () ->
      (* Solve on A: a fresh solve that lands in A's LRU and disk. *)
      let status, body = post port_a "/solve" job in
      check (status = 200) "A /solve status %d" status;
      check (contains ~affix:{|"code":"ok"|} body) "A /solve body %S" body;
      let fp =
        match json_str_field "fp" body with
        | Some fp -> fp
        | None -> fail "A /solve body carries no fingerprint: %S" body
      in

      (* The peer-transfer endpoint serves the binary plan. *)
      let status, payload = get port_a ("/cache/" ^ fp) in
      check (status = 200) "A /cache/<fp> status %d" status;
      check
        (Cluster.Codec.decode payload <> None)
        "A /cache/<fp> body does not decode (%d bytes)"
        (String.length payload);
      let status, _ = get port_a "/cache/feedfacefeedfacefeedfacefeedface" in
      check (status = 404) "A /cache miss status %d" status;

      (* The same scenario on B: answered from A through the peer tier —
         a cache hit, no local solve. *)
      let status, body_b = post port_b "/solve" job in
      check (status = 200) "B /solve status %d" status;
      check (contains ~affix:{|"code":"ok"|} body_b) "B /solve body %S" body_b;
      check
        (json_str_field "fp" body_b = Some fp)
        "fingerprints diverge across nodes";

      (* B's metrics: the hit was served by the peer tier, counted both
         in the tiered lookup counters and the job-level cache label. *)
      let status, scrape_b = get port_b "/metrics" in
      check (status = 200) "B /metrics status %d" status;
      List.iter
        (fun affix ->
          check (contains ~affix scrape_b) "B /metrics missing %S" affix)
        [
          {|etransform_cache_lookups_total{result="hit",tier="peer"} 1|};
          {|etransform_cache_lookups_total{result="miss",tier="memory"} 1|};
          {|etransform_cache_lookups_total{result="miss",tier="disk"} 1|};
          {|etransform_jobs_total{cache="hit",code="solved"} 1|};
          "etransform_cache_disk_bytes";
        ];

      (* The peer-fetched plan was promoted into B's own tiers: a repeat
         solve on B is now a memory hit, and B's disk store holds it. *)
      let status, _ = post port_b "/solve" job in
      check (status = 200) "B repeat /solve status %d" status;
      let status, scrape_b = get port_b "/metrics" in
      check (status = 200) "B /metrics (repeat) status %d" status;
      check
        (contains
           ~affix:{|etransform_cache_lookups_total{result="hit",tier="memory"} 1|}
           scrape_b)
        "B repeat solve was not a memory hit";
      (match Cluster.Node.store b.node with
      | Some store ->
          check
            (Cluster.Store.mem store fp)
            "promotion did not reach B's disk store"
      | None -> fail "B has no disk store");

      (* One explicit gossip round from B: the exchange must complete
         and install A's digest, which covers the solved fingerprint. *)
      let rounds = Cluster.Node.gossip_now b.node in
      check (rounds = 1) "gossip completed %d/1 exchanges" rounds;
      (match
         Cluster.Peers.digest_of
           (Cluster.Node.peers b.node)
           (Printf.sprintf "127.0.0.1:%d" port_a)
       with
      | None -> fail "gossip installed no digest for A"
      | Some bloom ->
          check (Cluster.Bloom.mem bloom fp)
            "A's gossiped digest does not cover the solved fingerprint");

      (* A's metrics: the disk tier is non-empty and the cache route was
         served. *)
      let status, scrape_a = get port_a "/metrics" in
      check (status = 200) "A /metrics status %d" status;
      List.iter
        (fun affix ->
          check (contains ~affix scrape_a) "A /metrics missing %S" affix)
        [
          (* Two 200s: our direct probe above plus B's peer-tier fetch. *)
          {|etransform_http_requests_total{route="/cache",status="200"} 2|};
          {|etransform_http_requests_total{route="/cache",status="404"} 1|};
          {|etransform_http_requests_total{route="/gossip",status="200"} 1|};
          "etransform_cache_disk_bytes";
        ];
      let disk_bytes_positive =
        List.exists
          (fun line ->
            match String.index_opt line ' ' with
            | Some i
              when String.sub line 0 i = "etransform_cache_disk_bytes" -> (
                match
                  float_of_string_opt
                    (String.trim
                       (String.sub line (i + 1) (String.length line - i - 1)))
                with
                | Some v -> v > 0.0
                | None -> false)
            | _ -> false)
          (String.split_on_char '\n' scrape_a)
      in
      check disk_bytes_positive "A reports zero disk bytes after a solve");

  print_endline
    "cluster-smoke: peer-tier hit on B, disk persistence on A, gossip \
     digest installed"
