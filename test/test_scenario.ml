(* The scenario engine: synthetic geography, failure events, evacuation
   budgets, resilience scoring, Pareto frontiers, estate deltas, and the
   sweep grid algebra (expansion, fingerprint collapse, scoring spec). *)

open Etransform
module F = Scenario.Failure
module P = Scenario.Pareto
module D = Scenario.Delta

(* Three targets at known metros: London and Paris are ~344 km apart,
   Dallas is an ocean away.  Groups are the hand-computable fixture set
   (servers 4, 3, 5, 2 — 14 total). *)
let geo_asis () =
  let targets =
    [|
      Fixtures.dc "London hub" 10 100.0 1e-3 1.0 1300.0 [| 5.0; 20.0 |];
      Fixtures.dc "Paris hub" 10 80.0 2e-3 2.0 2600.0 [| 20.0; 5.0 |];
      Fixtures.dc "Dallas hub" 20 120.0 1e-3 1.0 1300.0 [| 10.0; 10.0 |];
    |]
  in
  let current =
    [|
      Fixtures.dc "east wing" 7 150.0 2e-3 1.0 1300.0 [| 15.0; 25.0 |];
      Fixtures.dc "west wing" 7 160.0 2e-3 2.0 2600.0 [| 25.0; 15.0 |];
    |]
  in
  Asis.v ~params:Fixtures.params ~name:"geo"
    ~groups:
      [| Fixtures.group_0 (); Fixtures.group_1 (); Fixtures.group_2 ();
         Fixtures.group_3 () |]
    ~targets ~user_locations:[| "east"; "west" |] ~current
    ~current_placement:[| 0; 0; 1; 1 |] ()

(* ------------------------------------------------------------ geography *)

let test_sites_named_and_deterministic () =
  let asis = geo_asis () in
  let sites = F.sites asis in
  Alcotest.(check int) "one site per target" 3 (Array.length sites);
  (* Named metros pin the DC to the gazetteer coordinates. *)
  Alcotest.(check (float 1e-9)) "London lat" 51.51 sites.(0).Geo.Location.lat;
  Alcotest.(check (float 1e-9)) "Paris lon" 2.35 sites.(1).Geo.Location.lon;
  (* Anonymous names hash to stable, in-range, distinct coordinates. *)
  let a = F.site_of_name "backend row 7" in
  let b = F.site_of_name "backend row 8" in
  Alcotest.(check bool) "stable" true (a = F.site_of_name "backend row 7");
  Alcotest.(check bool) "distinct" true
    (a.Geo.Location.lat <> b.Geo.Location.lat
    || a.Geo.Location.lon <> b.Geo.Location.lon);
  Alcotest.(check bool) "lat clamped" true
    (Float.abs a.Geo.Location.lat <= 85.0)

let test_events_default_singletons () =
  let sites = F.sites (geo_asis ()) in
  Alcotest.(check (array (list int))) "paper model: one site at a time"
    [| [ 0 ]; [ 1 ]; [ 2 ] |]
    (F.events sites)

let test_events_radius_merges () =
  let sites = F.sites (geo_asis ()) in
  let spec = { F.default with F.radius_km = Some 400.0 } in
  (* London and Paris fall in each other's region; Dallas stays alone.
     The two identical {0,1} regions deduplicate. *)
  Alcotest.(check (array (list int))) "correlated region"
    [| [ 0; 1 ]; [ 2 ] |]
    (F.events ~spec sites)

let test_events_multi_failure () =
  let sites = F.sites (geo_asis ()) in
  let spec = { F.default with F.max_concurrent = 2 } in
  Alcotest.(check (array (list int))) "singletons then pairs"
    [| [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] |]
    (F.events ~spec sites);
  (* The enumeration cap: 9 independent sites at max_concurrent 9 would
     union to 511 events; the compiler stops at the cap, keeping the
     smallest unions. *)
  let many =
    Array.init 9 (fun i ->
        Geo.Location.v
          ~name:(Printf.sprintf "s%d" i)
          ~lat:(float_of_int i *. 5.0) ~lon:0.0)
  in
  let spec = { F.default with F.max_concurrent = 9 } in
  let evs = F.events ~spec many in
  Alcotest.(check int) "capped" 256 (Array.length evs);
  Array.iteri
    (fun i ev ->
      if i < 9 then
        Alcotest.(check (list int)) "singletons survive the cap" [ i ] ev)
    evs

let test_evac_budget () =
  Alcotest.(check (option (float 0.0))) "no warning, no bound" None
    (F.evac_mb F.default);
  Alcotest.(check (option (float 1e-6))) "bandwidth x window"
    (Some 360_000.0)
    (F.evac_mb { F.default with F.warning_s = Some 3600.0; link_mb_s = 100.0 });
  Alcotest.(check (option (float 0.0))) "negative window clamps" (Some 0.0)
    (F.evac_mb { F.default with F.warning_s = Some (-5.0) })

let test_compile () =
  let spec = { F.default with F.warning_s = Some 60.0 } in
  let sc = F.compile spec (geo_asis ()) in
  Alcotest.(check int) "singleton events" 3
    (Array.length sc.Dr_planner.events);
  Alcotest.(check (option (float 1e-6))) "evac budget" (Some 60_000.0)
    sc.Dr_planner.evac_mb

(* ----------------------------------------------------------- resilience *)

let test_score_hand_computed () =
  let asis = geo_asis () in
  let sites = F.sites asis in
  (* No DR: groups die with their primary.  Worst event is London's,
     killing g0 (4 servers) and g3 (2) of the 14 total. *)
  let s = F.score asis sites (Placement.non_dr [| 0; 1; 2; 0 |]) in
  Alcotest.(check int) "total" 14 s.F.total_servers;
  Alcotest.(check int) "worst survivors" 8 s.F.surviving_servers;
  Alcotest.(check (list int)) "worst event" [ 0 ] s.F.worst_event;
  Alcotest.(check (float 1e-9)) "resilience" (8.0 /. 14.0) s.F.resilience;
  (* Distinct secondaries and no evacuation bound: everything survives. *)
  let full =
    Placement.with_dr ~primary:[| 0; 1; 2; 0 |] ~secondary:[| 1; 0; 0; 1 |] ()
  in
  Alcotest.(check (float 1e-9)) "full DR" 1.0 (F.resilience asis sites full);
  (* A secondary equal to the primary protects nothing. *)
  let degenerate =
    Placement.with_dr ~primary:[| 0; 1; 2; 0 |] ~secondary:[| 0; 0; 0; 1 |] ()
  in
  Alcotest.(check (float 1e-9)) "self-backup dies" (10.0 /. 14.0)
    (F.resilience asis sites degenerate)

let test_score_evacuation_budget () =
  let asis = geo_asis () in
  let sites = F.sites asis in
  (* 1500 MB per link: on the 0->1 link, g0 (1000 MB) claims first and
     fits, g1 (2000 MB) cannot, g3 (100 MB) still fits behind g0.  g2
     rides the uncontended 1->0 link. *)
  let spec = { F.default with F.warning_s = Some 1500.0; link_mb_s = 1.0 } in
  let p =
    Placement.with_dr ~primary:[| 0; 0; 1; 0 |] ~secondary:[| 1; 1; 0; 1 |] ()
  in
  let s = F.score ~spec asis sites p in
  Alcotest.(check (list int)) "worst is the shared link's primary" [ 0 ]
    s.F.worst_event;
  Alcotest.(check int) "g1 is stranded" 11 s.F.surviving_servers;
  Alcotest.(check (float 1e-9)) "resilience" (11.0 /. 14.0) s.F.resilience

let test_planner_respects_events () =
  (* A compiled multi-failure scenario must still come back feasible, and
     it can only help the scored resilience relative to the paper's
     single-failure plan evaluated under the same spec. *)
  let asis = Fixtures.synthetic ~seed:23 ~groups:12 ~targets:4 () in
  let spec = { F.default with F.max_concurrent = 2 } in
  let scenario = F.compile spec asis in
  let options =
    { Dr_planner.default_options with Dr_planner.scenario = Some scenario }
  in
  let o = Dr_planner.plan ~options asis in
  Alcotest.(check (list string)) "feasible" []
    (Placement.validate asis o.Solver.placement);
  let sites = F.sites asis in
  let plain = Dr_planner.plan asis in
  let r_scen = F.resilience ~spec asis sites o.Solver.placement in
  let r_plain = F.resilience ~spec asis sites plain.Solver.placement in
  Alcotest.(check bool)
    (Printf.sprintf "scenario plan %.3f >= plain plan %.3f" r_scen r_plain)
    true
    (r_scen >= r_plain -. 1e-9)

(* --------------------------------------------------------------- pareto *)

let test_pareto_frontier () =
  let pt cost resilience tag = { P.cost; resilience; tag } in
  let a = pt 10.0 0.5 "a"
  and b = pt 12.0 0.9 "b"
  and c = pt 11.0 0.4 "c" (* dominated by a *)
  and d = pt 10.0 0.5 "d" (* duplicate of a; tag order keeps a *) in
  Alcotest.(check bool) "a dominates c" true (P.dominates a c);
  Alcotest.(check bool) "a does not dominate its duplicate" false
    (P.dominates a d);
  Alcotest.(check bool) "a does not dominate b" false (P.dominates a b);
  let want = [ a; b ] in
  Alcotest.(check bool) "frontier" true (P.frontier [ a; b; c; d ] = want);
  Alcotest.(check bool) "order-insensitive" true
    (P.frontier [ d; c; b; a ] = want);
  Alcotest.(check bool) "empty" true (P.frontier [] = [])

(* ---------------------------------------------------------------- delta *)

let shared_risk_asis () =
  let asis = geo_asis () in
  let groups = Array.map Fun.id asis.Asis.groups in
  groups.(1) <- { (groups.(1)) with App_group.colocate_avoid = [ 2 ] };
  groups.(2) <- { (groups.(2)) with App_group.colocate_avoid = [ 1 ] };
  { asis with Asis.groups }

let test_delta_apply () =
  let asis = shared_risk_asis () in
  let extra =
    App_group.v ~name:"g9" ~servers:6 ~data_mb_month:300.0
      ~users:[| 5.0; 5.0 |] ()
  in
  let next =
    D.apply asis
      [
        Retire "g0";
        Resize ("g1", 7);
        Scale_data ("g3", 2.0);
        Add (extra, 1);
      ]
  in
  Alcotest.(check (list string)) "still well-formed" [] (Asis.validate next);
  let names = Array.to_list (Array.map (fun g -> g.App_group.name) next.Asis.groups) in
  Alcotest.(check (list string)) "retire drops, add appends"
    [ "g1"; "g2"; "g3"; "g9" ] names;
  Alcotest.(check int) "resize" 7 next.Asis.groups.(0).App_group.servers;
  Alcotest.(check (float 1e-9)) "scale_data" 200.0
    next.Asis.groups.(2).App_group.data_mb_month;
  (* Shared-risk indices survive the retirement: old 1<->2 becomes 0<->1. *)
  Alcotest.(check (list int)) "avoid remapped" [ 1 ]
    next.Asis.groups.(0).App_group.colocate_avoid;
  Alcotest.(check (list int)) "avoid remapped back" [ 0 ]
    next.Asis.groups.(1).App_group.colocate_avoid;
  Alcotest.(check (array int)) "current placement follows"
    [| 0; 1; 1; 1 |] next.Asis.current_placement

let test_delta_fingerprint () =
  let p = Placement.non_dr [| 0; 1; 2 |] in
  Alcotest.(check string) "deterministic" (D.fingerprint p) (D.fingerprint p);
  Alcotest.(check bool) "primary changes it" true
    (D.fingerprint p <> D.fingerprint (Placement.non_dr [| 0; 1; 1 |]));
  let dr =
    Placement.with_dr ~primary:[| 0; 1; 2 |] ~secondary:[| 1; 0; 0 |] ()
  in
  Alcotest.(check bool) "secondaries change it" true
    (D.fingerprint p <> D.fingerprint dr)

let test_delta_pins_and_replan () =
  let asis = geo_asis () in
  let milp =
    { Solver.default_milp_options with Lp.Milp.node_limit = 2000 }
  in
  let cold = Solver.consolidate ~milp ~local_search:false asis in
  (* Unchanged estate: every group is structurally identical, so all pin. *)
  let all = D.pins ~previous:(asis, cold.Solver.placement) asis in
  Alcotest.(check int) "all groups pinned" 4 (List.length all);
  List.iter
    (fun (i, j) ->
      Alcotest.(check int)
        (Printf.sprintf "pin %d keeps the previous primary" i)
        cold.Solver.placement.Placement.primary.(i)
        j)
    all;
  (* Shared-risk groups are never pinned. *)
  let risky = shared_risk_asis () in
  Alcotest.(check int) "colocate_avoid blocks pinning" 2
    (List.length (D.pins ~previous:(risky, cold.Solver.placement) risky));
  (* Resize g1: it re-enters the optimization, the other three stay put. *)
  let next = D.apply asis [ Resize ("g1", 4) ] in
  let r =
    D.replan ~milp ~local_search:false
      ~previous:(asis, cold.Solver.placement) next
  in
  Alcotest.(check int) "three pinned" 3 r.D.pinned;
  Alcotest.(check string) "names the previous plan"
    (D.fingerprint cold.Solver.placement)
    r.D.previous_fingerprint;
  Alcotest.(check (list string)) "replan feasible" []
    (Placement.validate next r.D.outcome.Solver.placement);
  Array.iteri
    (fun i j ->
      if next.Asis.groups.(i).App_group.name <> "g1" then
        Alcotest.(check int)
          (Printf.sprintf "group %d stays put" i)
          cold.Solver.placement.Placement.primary.(i)
          j)
    r.D.outcome.Solver.placement.Placement.primary;
  (* A no-op delta warm-starts to exactly the previous cost. *)
  let same =
    D.replan ~milp ~local_search:false
      ~previous:(asis, cold.Solver.placement) asis
  in
  Alcotest.(check (float 1e-6)) "no-op replan keeps the cost"
    (Evaluate.total cold.Solver.summary.Evaluate.cost)
    (Evaluate.total same.D.outcome.Solver.summary.Evaluate.cost)

(* ---------------------------------------------------------------- sweep *)

let line_milp =
  {
    Service.Job.no_overrides with
    Service.Job.node_limit = Some 2;
    time_limit = Some 20.0;
  }

let line_job ?id ?deadline_s ?(degrade = true) () =
  Service.Job.v ?id ?deadline_s ~degrade ~milp:line_milp
    (Harness.Line_jobs.estate ~penalty:40.0
       {
         Harness.Line_estate.default with
         Harness.Line_estate.n_groups = 12;
         frac_at_0 = 0.5;
       })

let test_sweep_expand () =
  let base = line_job ~id:"s" () in
  let grid =
    {
      Service.Sweep.empty_grid with
      Service.Sweep.radius_km = [ None; Some 400.0 ];
      max_concurrent = [ 1; 2 ];
    }
  in
  Alcotest.(check int) "grid size" 4 (Service.Sweep.grid_points grid base);
  let points = Service.Sweep.expand base grid in
  Alcotest.(check (list string)) "fixed axis order"
    [
      "r=-;c=1;w=-;om=-;l=-";
      "r=-;c=2;w=-;om=-;l=-";
      "r=400;c=1;w=-;om=-;l=-";
      "r=400;c=2;w=-;om=-;l=-";
    ]
    (List.map fst points);
  let job_of i = snd (List.nth points i) in
  Alcotest.(check string) "tag suffixed to the id" "s:r=-;c=2;w=-;om=-;l=-"
    (job_of 1).Service.Job.id;
  (* c=1 normalizes away; c=2 is recorded. *)
  Alcotest.(check bool) "conc 1 normalizes to absent" true
    ((job_of 0).Service.Job.scenario.Service.Job.max_concurrent = None);
  Alcotest.(check bool) "conc 2 kept" true
    ((job_of 1).Service.Job.scenario.Service.Job.max_concurrent = Some 2)

let test_sweep_fingerprint_collapse () =
  let base = line_job ~id:"a" () in
  (* Axis values that coincide with the plain model normalize back to
     no_scenario: the point IS the plain job, same content address. *)
  let plain_grid =
    {
      Service.Sweep.empty_grid with
      Service.Sweep.radius_km = [ None ];
      max_concurrent = [ 1 ];
      warning_s = [ None ];
    }
  in
  (match Service.Sweep.expand base plain_grid with
  | [ (_, job) ] ->
      Alcotest.(check bool) "scenario collapses to no_scenario" true
        (job.Service.Job.scenario = Service.Job.no_scenario);
      Alcotest.(check string) "shares the plain job's fingerprint"
        (Service.Job.fingerprint base)
        (Service.Job.fingerprint job)
  | pts -> Alcotest.failf "expected 1 point, got %d" (List.length pts));
  (* Grid points differing only in delivery fields collapse to one
     fingerprint: the swept id suffix, deadline and degrade are excluded
     from the canonical form. *)
  let scen_grid =
    {
      Service.Sweep.empty_grid with
      Service.Sweep.warning_s = [ Some 3600.0 ];
      max_concurrent = [ 2 ];
    }
  in
  let of_base b =
    List.map
      (fun (_, j) -> Service.Job.fingerprint j)
      (Service.Sweep.expand b scen_grid)
  in
  Alcotest.(check (list string)) "delivery-only deltas share fingerprints"
    (of_base base)
    (of_base (line_job ~id:"b" ~deadline_s:9.0 ~degrade:false ()));
  (* But the scenario itself is load-bearing: a scenario'd point must
     never collide with the plain job (the cache would serve the wrong
     plan to /solve clients). *)
  List.iter
    (fun fp ->
      Alcotest.(check bool) "scenario'd point differs from plain" true
        (fp <> Service.Job.fingerprint base))
    (of_base base);
  (* And each scenario knob is part of the address. *)
  let fp_of scenario =
    Service.Job.fingerprint { base with Service.Job.scenario }
  in
  let s0 = Service.Job.no_scenario in
  let distinct =
    [
      fp_of s0;
      fp_of { s0 with Service.Job.radius_km = Some 100.0 };
      fp_of { s0 with Service.Job.max_concurrent = Some 2 };
      fp_of { s0 with Service.Job.warning_s = Some 60.0 };
      fp_of { s0 with Service.Job.link_mb_s = Some 10.0 };
      fp_of { s0 with Service.Job.max_latency_ms = Some 50.0 };
    ]
  in
  Alcotest.(check int) "every knob is load-bearing"
    (List.length distinct)
    (List.length (List.sort_uniq compare distinct))

let test_sweep_scoring_spec () =
  let base = line_job () in
  let grid =
    {
      Service.Sweep.radius_km = [ None; Some 100.0; Some 400.0 ];
      max_concurrent = [ 1; 2 ];
      warning_s = [ Some 7200.0; None; Some 3600.0 ];
      omega = [ None; Some 0.5 ];
      max_latency_ms = [];
    }
  in
  let spec = Service.Sweep.scoring_spec base grid in
  Alcotest.(check (option (float 0.0))) "largest radius" (Some 400.0)
    spec.F.radius_km;
  Alcotest.(check int) "highest concurrency" 2 spec.F.max_concurrent;
  Alcotest.(check (option (float 0.0))) "tightest warning" (Some 3600.0)
    spec.F.warning_s

let test_sweep_request_of_json () =
  let parse text =
    match Service.Json.parse text with
    | Ok j -> Service.Sweep.request_of_json ~resolve:Harness.Line_jobs.resolve j
    | Error m -> Alcotest.failf "bad JSON: %s" m
  in
  (match
     parse
       {|{"id":"s","estate":{"kind":"line","n_groups":12},"milp":{"nodes":2,"time":20},"grid":{"radius_km":[null,400],"max_concurrent":[1,2]}}|}
   with
  | Ok (job, grid) ->
      Alcotest.(check int) "4 points" 4 (Service.Sweep.grid_points grid job)
  | Error m -> Alcotest.failf "valid request rejected: %s" m);
  (* An oversized grid is rejected up front, before any solve. *)
  let axis =
    String.concat ","
      (List.init (Service.Sweep.max_points + 1) string_of_int)
  in
  (match
     parse
       (Printf.sprintf
          {|{"estate":{"kind":"line","n_groups":12},"grid":{"omega":[%s]}}|}
          axis)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized grid accepted");
  match
    parse {|{"estate":{"kind":"line","n_groups":12},"grid":{"omega":"x"}}|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed axis accepted"

let test_sweep_run_and_cache () =
  (* A 2-point sweep through a real pool: every line parses, the frontier
     is non-empty, and re-sweeping the same grid is served entirely from
     the plan cache.  The radius axis is inert for a non-DR job, which
     keeps this fast while still exercising distinct fingerprints. *)
  let base = line_job ~id:"s" () in
  let grid =
    {
      Service.Sweep.empty_grid with
      Service.Sweep.radius_km = [ None; Some 50.0 ];
    }
  in
  let jsonl = Service.Trace.memory () in
  let m = Service.Metrics.create () in
  let trace =
    Service.Trace.tee jsonl
      (Service.Trace.observer (Service.Metrics.observe_trace m))
  in
  Service.Pool.with_pool ~workers:0 ~trace ~cache_capacity:16 (fun pool ->
      let lines = ref [] in
      let s1 =
        Service.Sweep.run pool base grid ~f:(fun p ->
            lines := Service.Sweep.point_line p :: !lines)
      in
      Alcotest.(check int) "2 points" 2 s1.Service.Sweep.points;
      Alcotest.(check int) "cold run misses" 0 s1.Service.Sweep.cache_hits;
      Alcotest.(check int) "2 lines streamed" 2 (List.length !lines);
      List.iter
        (fun line ->
          match Service.Json.parse line with
          | Error m -> Alcotest.failf "unparseable point line %S: %s" line m
          | Ok j ->
              Alcotest.(check bool) "has tag" true
                (Service.Json.member "tag" j <> None);
              Alcotest.(check bool) "has resilience" true
                (Service.Json.member "resilience" j <> None))
        !lines;
      Alcotest.(check bool) "frontier non-empty" true
        (s1.Service.Sweep.frontier <> []);
      (match Service.Json.parse (Service.Sweep.frontier_line s1) with
      | Error m -> Alcotest.failf "unparseable frontier line: %s" m
      | Ok j ->
          Alcotest.(check bool) "frontier member" true
            (Service.Json.member "frontier" j <> None));
      (* Same grid again: every point is a cache hit. *)
      let s2 = Service.Sweep.run pool base grid ~f:ignore in
      Alcotest.(check int) "repeat sweep all hits" 2
        s2.Service.Sweep.cache_hits);
  (* The trace fed the metrics registry: sweep totals and the
     hit/miss-split point counter. *)
  Alcotest.(check (option (float 0.0))) "sweeps counted" (Some 2.0)
    (Service.Metrics.value m "etransform_sweeps_total");
  Alcotest.(check (option (float 0.0))) "missed points" (Some 2.0)
    (Service.Metrics.value m "etransform_sweep_points_total"
       ~labels:[ ("cache", "miss") ]);
  Alcotest.(check (option (float 0.0))) "hit points" (Some 2.0)
    (Service.Metrics.value m "etransform_sweep_points_total"
       ~labels:[ ("cache", "hit") ]);
  Alcotest.(check (option (float 0.0))) "frontier gauge" (Some 1.0)
    (Service.Metrics.value m "etransform_sweep_frontier_size")

let suite =
  [
    Alcotest.test_case "sites: named metros and stable hashing" `Quick
      test_sites_named_and_deterministic;
    Alcotest.test_case "events: default is the paper's model" `Quick
      test_events_default_singletons;
    Alcotest.test_case "events: failure radius merges regions" `Quick
      test_events_radius_merges;
    Alcotest.test_case "events: multi-failure unions and cap" `Quick
      test_events_multi_failure;
    Alcotest.test_case "evacuation budget" `Quick test_evac_budget;
    Alcotest.test_case "compile to planner scenario" `Quick test_compile;
    Alcotest.test_case "score: hand-computed survival" `Quick
      test_score_hand_computed;
    Alcotest.test_case "score: per-link evacuation budget" `Quick
      test_score_evacuation_budget;
    Alcotest.test_case "planner respects compiled events" `Slow
      test_planner_respects_events;
    Alcotest.test_case "pareto frontier" `Quick test_pareto_frontier;
    Alcotest.test_case "delta: apply changes" `Quick test_delta_apply;
    Alcotest.test_case "delta: plan fingerprint" `Quick test_delta_fingerprint;
    Alcotest.test_case "delta: pins and warm replan" `Slow
      test_delta_pins_and_replan;
    Alcotest.test_case "sweep: grid expansion" `Quick test_sweep_expand;
    Alcotest.test_case "sweep: fingerprint collapse" `Quick
      test_sweep_fingerprint_collapse;
    Alcotest.test_case "sweep: strictest scoring spec" `Quick
      test_sweep_scoring_spec;
    Alcotest.test_case "sweep: request parsing" `Quick
      test_sweep_request_of_json;
    Alcotest.test_case "sweep: run, cache, metrics" `Slow
      test_sweep_run_and_cache;
  ]
