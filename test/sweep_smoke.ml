(* End-to-end smoke for the streaming sweep surface, run by the
   @sweep-smoke alias.

   Stage 1 (driven by the dune rule): `etransform sweep` has already run
   over the sweep_request.json fixture; argv gives us the request and the
   captured output.  The stream must hold one ok point line per grid
   point, in grid order, closed by a frontier line whose tags point back
   into the sweep.

   Stage 2: boot the HTTP daemon on an ephemeral port and POST the same
   request to /sweep: the chunked stream must carry the same points and a
   non-empty frontier; POSTing it again must be served point-for-point
   from the plan cache, and the /metrics scrape must account for both
   sweeps. *)

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("sweep-smoke: " ^ m);
      exit 1)
    fmt

let check cond fmt =
  Printf.ksprintf (fun m -> if not cond then fail "%s" m) fmt

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lines_of s =
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)

let parse_line l =
  match Service.Json.parse l with
  | Ok j -> j
  | Error m -> fail "unparseable line %S: %s" l m

let str_member k j = Option.bind (Service.Json.member k j) Service.Json.to_str

(* The stream contract shared by the CLI and the HTTP route. *)
let check_stream ~what ~tags body =
  let lines = List.map parse_line (lines_of body) in
  check
    (List.length lines = List.length tags + 1)
    "%s: %d lines for %d points" what (List.length lines) (List.length tags);
  let points, frontier =
    match List.rev lines with
    | last :: rev_points -> (List.rev rev_points, last)
    | [] -> fail "%s: empty stream" what
  in
  List.iteri
    (fun i (want, j) ->
      check (str_member "tag" j = Some want) "%s: point %d tag %s" what i want;
      check
        (str_member "code" j = Some "ok")
        "%s: point %d not ok" what i;
      check
        (Service.Json.member "resilience" j <> None)
        "%s: point %d has no resilience" what i)
    (List.combine tags points);
  (match Service.Json.member "frontier" frontier with
  | Some (Service.Json.List (_ :: _ as front)) ->
      List.iter
        (fun p ->
          match str_member "tag" p with
          | Some t ->
              check (List.mem t tags) "%s: frontier tag %S unknown" what t
          | None -> fail "%s: frontier point without tag" what)
        front
  | _ -> fail "%s: missing or empty frontier" what);
  lines_of body

(* ------------------------------------------------------- HTTP plumbing *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
  fd

let read_head ic =
  let status_line = input_line ic in
  let status =
    match String.split_on_char ' ' (String.trim status_line) with
    | _ :: code :: _ -> int_of_string code
    | _ -> fail "bad status line %S" status_line
  in
  let rec headers acc =
    match String.trim (input_line ic) with
    | "" -> List.rev acc
    | line -> (
        match String.index_opt line ':' with
        | None -> headers acc
        | Some i ->
            headers
              ((String.lowercase_ascii (String.sub line 0 i),
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
              :: acc))
  in
  (status, headers [])

let read_chunked ic =
  let buf = Buffer.create 1024 in
  let rec go () =
    let n = int_of_string ("0x" ^ String.trim (input_line ic)) in
    if n = 0 then (try ignore (input_line ic) with End_of_file -> ())
    else begin
      Buffer.add_string buf (really_input_string ic n);
      ignore (input_line ic);
      go ()
    end
  in
  go ();
  Buffer.contents buf

let request port text =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd text;
      let ic = Unix.in_channel_of_descr fd in
      let status, headers = read_head ic in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some n -> really_input_string ic (int_of_string n)
        | None -> (
            match List.assoc_opt "transfer-encoding" headers with
            | Some "chunked" -> read_chunked ic
            | _ -> "")
      in
      (status, headers, body))

let post port path body =
  request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body)

let get port path =
  request port
    (Printf.sprintf
       "GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n" path)

(* ------------------------------------------------------------- the run *)

let () =
  let request_file = Sys.argv.(1) in
  let cli_output = Sys.argv.(2) in
  let body = read_file request_file in

  (* The expected tag sequence, from the same expansion the service uses. *)
  let job, grid =
    match Service.Json.parse body with
    | Error m -> fail "fixture is not JSON: %s" m
    | Ok j -> (
        match
          Service.Sweep.request_of_json ~resolve:Harness.Line_jobs.resolve j
        with
        | Ok r -> r
        | Error m -> fail "fixture rejected: %s" m)
  in
  let tags = List.map fst (Service.Sweep.expand job grid) in
  check (List.length tags >= 2) "fixture grid too small (%d points)"
    (List.length tags);

  (* Stage 1: the CLI stream captured by the dune rule. *)
  ignore (check_stream ~what:"cli" ~tags (read_file cli_output));

  (* Stage 2: the same request over HTTP. *)
  let metrics = Service.Metrics.create () in
  let trace = Service.Trace.observer (Service.Metrics.observe_trace metrics) in
  Service.Pool.with_pool ~workers:1 ~queue_capacity:8 ~cache_capacity:32
    ~trace (fun pool ->
      let server =
        Server.Daemon.create ~port:0 ~drain_timeout:10.0
          ~resolve:Harness.Line_jobs.resolve ~metrics ~pool ()
      in
      let th = Thread.create Server.Daemon.run server in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.request_stop server;
          Thread.join th)
        (fun () ->
          let port = Server.Daemon.port server in
          let status, headers, first = post port "/sweep" body in
          check (status = 200) "/sweep status %d" status;
          check
            (List.assoc_opt "transfer-encoding" headers = Some "chunked")
            "/sweep response not chunked";
          let first_lines = check_stream ~what:"http" ~tags first in
          (* Same request again: the pool must serve every point from the
             plan cache, and the frontier must come out identical. *)
          let status, _, second = post port "/sweep" body in
          check (status = 200) "repeat /sweep status %d" status;
          let second_lines = check_stream ~what:"http-repeat" ~tags second in
          List.iteri
            (fun i l ->
              if i < List.length tags then
                check
                  (contains ~affix:{|"cache":"hit"|} l)
                  "repeat point %d not a cache hit: %s" i l)
            second_lines;
          (* The frontier itself is deterministic; only wall_s may vary. *)
          let frontier_of ls =
            Service.Json.member "frontier"
              (parse_line (List.nth ls (List.length ls - 1)))
          in
          check
            (frontier_of first_lines = frontier_of second_lines)
            "frontier changed across identical sweeps";
          (* The scrape accounts for both sweeps: 2 sweeps, one miss and
             one hit per grid point, and a live frontier-size gauge. *)
          let n = List.length tags in
          let status, _, scrape = get port "/metrics" in
          check (status = 200) "/metrics status %d" status;
          List.iter
            (fun affix ->
              check (contains ~affix scrape) "/metrics missing %S" affix)
            [
              "etransform_sweeps_total 2";
              Printf.sprintf
                {|etransform_sweep_points_total{cache="miss"} %d|} n;
              Printf.sprintf
                {|etransform_sweep_points_total{cache="hit"} %d|} n;
              "etransform_sweep_frontier_size";
              {|etransform_http_requests_total{route="/sweep",status="200"} 2|};
            ]));
  Printf.printf
    "sweep-smoke: %d points ok (cli + http), repeat sweep fully cached, \
     frontier stable\n"
    (List.length tags)
