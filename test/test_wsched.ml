(* The work-stealing scheduler under the MILP tree search and the service
   pool (Lp.Wsdeque / Lp.Wsched): deque laws against a multiset model,
   scripted single-thread chaos schedules through the [steal_order] hook,
   stop/drain semantics, and a real multi-domain tree run with a watchdog
   (the suite must never hang on a scheduler bug). *)

module Prng = Datasets.Prng

(* ------------------------------------------------------------- wsdeque *)

let test_deque_ends () =
  let q = Lp.Wsdeque.create () in
  Alcotest.(check bool) "empty" true (Lp.Wsdeque.is_empty q);
  List.iter
    (fun k -> Lp.Wsdeque.push q ~key:k (int_of_float k))
    [ 5.0; 1.0; 9.0; 3.0; 7.0; 1.0; 9.0 ];
  Alcotest.(check int) "length" 7 (Lp.Wsdeque.length q);
  Alcotest.(check (option (float 0.0))) "min_key" (Some 1.0)
    (Lp.Wsdeque.min_key q);
  (match Lp.Wsdeque.pop_min q with
  | Some (k, _) -> Alcotest.(check (float 0.0)) "pop_min" 1.0 k
  | None -> Alcotest.fail "pop_min on non-empty");
  (match Lp.Wsdeque.pop_max q with
  | Some (k, _) -> Alcotest.(check (float 0.0)) "pop_max" 9.0 k
  | None -> Alcotest.fail "pop_max on non-empty");
  Alcotest.(check int) "length after pops" 5 (Lp.Wsdeque.length q)

(* Random interleavings of push/pop_min/pop_max against a sorted-list
   multiset model.  Only keys are compared: entries with equal keys may
   surface in any order. *)
let test_deque_model () =
  let rng = Prng.create 0xD0E5 in
  for _ = 1 to 50 do
    let q = Lp.Wsdeque.create () in
    let model = ref [] in
    for _ = 1 to 200 do
      match Prng.int rng 4 with
      | 0 | 1 ->
          let k = float_of_int (Prng.int rng 20) in
          Lp.Wsdeque.push q ~key:k ();
          model := List.sort compare (k :: !model)
      | 2 -> (
          match (Lp.Wsdeque.pop_min q, !model) with
          | None, [] -> ()
          | Some (k, ()), m :: rest ->
              Alcotest.(check (float 0.0)) "min matches model" m k;
              model := rest
          | Some _, [] -> Alcotest.fail "pop_min from empty model"
          | None, _ -> Alcotest.fail "pop_min lost an entry")
      | _ -> (
          match (Lp.Wsdeque.pop_max q, List.rev !model) with
          | None, [] -> ()
          | Some (k, ()), m :: rest ->
              Alcotest.(check (float 0.0)) "max matches model" m k;
              model := List.rev rest
          | Some _, [] -> Alcotest.fail "pop_max from empty model"
          | None, _ -> Alcotest.fail "pop_max lost an entry")
    done;
    Alcotest.(check int) "sizes agree" (List.length !model)
      (Lp.Wsdeque.length q);
    (* Drain what's left from alternating ends. *)
    let rec drain lo hi =
      match (lo, hi) with
      | [], [] ->
          Alcotest.(check bool) "drained" true (Lp.Wsdeque.is_empty q)
      | m :: rest, hi -> (
          match Lp.Wsdeque.pop_min q with
          | Some (k, ()) ->
              Alcotest.(check (float 0.0)) "drain min" m k;
              drain rest hi
          | None -> Alcotest.fail "drain min lost an entry")
      | [], m :: rest -> (
          match Lp.Wsdeque.pop_max q with
          | Some (k, ()) ->
              Alcotest.(check (float 0.0)) "drain max" m k;
              drain [] rest
          | None -> Alcotest.fail "drain max lost an entry")
    in
    let n = List.length !model in
    let lo = List.filteri (fun i _ -> i < (n + 1) / 2) !model in
    let hi = List.rev (List.filteri (fun i _ -> i >= (n + 1) / 2) !model) in
    drain lo hi
  done

(* ----------------------------------------------- scripted chaos (1 thread) *)

(* A synthetic branch-and-bound tree: node (key, depth) expands into two
   children with derived keys until [max_depth].  The processed-key
   multiset is schedule-invariant, so any steal interleaving — driven
   here by a seeded [steal_order] hook and random pop ownership — must
   process exactly the sequential multiset. *)
let run_tree ~sched ~rng ~workers ~max_depth =
  let processed = ref [] in
  let expand ~who k depth =
    if depth < max_depth then begin
      Lp.Wsched.push sched ~who ~key:((k *. 1.7) +. 0.3) (depth + 1);
      Lp.Wsched.push sched ~who ~key:((k *. 0.6) +. 1.1) (depth + 1)
    end
  in
  Lp.Wsched.push sched ~who:0 ~key:2.0 0;
  let rec loop () =
    let who = Prng.int rng workers in
    match Lp.Wsched.try_pop sched ~who with
    | Some (k, depth) ->
        processed := k :: !processed;
        expand ~who k depth;
        Lp.Wsched.done_one sched;
        loop ()
    | None ->
        (* A miss is not emptiness: a scripted hook may well have sent
           this thief to itself or to empty victims for a whole sweep.
           Single-threaded driving means nothing is in flight here, so
           [pending] alone decides between retrying and done. *)
        if Lp.Wsched.pending sched > 0 then loop ()
  in
  loop ();
  List.sort compare !processed

let test_sched_scripted_chaos () =
  let max_depth = 6 in
  let reference =
    let rng = Prng.create 1 in
    let sched = Lp.Wsched.create ~workers:1 () in
    run_tree ~sched ~rng ~workers:1 ~max_depth
  in
  Alcotest.(check int) "tree size" 127 (List.length reference);
  let stole = ref false in
  for seed = 1 to 20 do
    let rng = Prng.create seed in
    let hook_rng = Prng.create (seed * 7919) in
    let steal_order ~thief ~round =
      ignore thief;
      ignore round;
      Prng.int hook_rng 4
    in
    let sched = Lp.Wsched.create ~workers:4 ~steal_order () in
    let got = run_tree ~sched ~rng ~workers:4 ~max_depth in
    if Lp.Wsched.steals sched > 0 then stole := true;
    Alcotest.(check (list (float 1e-9)))
      (Printf.sprintf "seed %d multiset" seed)
      reference got;
    Alcotest.(check int) "drained" 0 (Lp.Wsched.queued sched);
    (match Lp.Wsched.next sched ~who:0 with
    | Lp.Wsched.Done -> ()
    | _ -> Alcotest.fail "finite scheduler must report Done")
  done;
  Alcotest.(check bool) "steals exercised across seeds" true !stole

let test_sched_stop_abandons () =
  let sched = Lp.Wsched.create ~workers:2 () in
  Lp.Wsched.push sched ~who:0 ~key:4.0 ();
  Lp.Wsched.push sched ~who:1 ~key:2.0 ();
  Lp.Wsched.push sched ~who:1 ~key:8.0 ();
  (match Lp.Wsched.try_pop sched ~who:0 with
  | Some (k, ()) ->
      Alcotest.(check (float 0.0)) "own best first" 4.0 k;
      Lp.Wsched.done_one sched
  | None -> Alcotest.fail "pop");
  Lp.Wsched.stop sched;
  (match Lp.Wsched.next sched ~who:0 with
  | Lp.Wsched.Stopped -> ()
  | _ -> Alcotest.fail "stop must abandon the queue");
  Alcotest.(check bool) "stopped" true (Lp.Wsched.stopped sched);
  (* The abandoned frontier keeps reporting its best open key. *)
  Alcotest.(check (option (float 0.0))) "open bound" (Some 2.0)
    (Lp.Wsched.min_key sched)

let test_sched_drain () =
  let sched = Lp.Wsched.create ~workers:1 ~finite:false ~drain:true () in
  List.iter
    (fun k -> Lp.Wsched.push sched ~who:0 ~key:k ())
    [ 3.0; 1.0; 2.0 ];
  Lp.Wsched.stop sched;
  let rec drain acc =
    match Lp.Wsched.next sched ~who:0 with
    | Lp.Wsched.Work (k, ()) ->
        Lp.Wsched.done_one sched;
        drain (k :: acc)
    | Lp.Wsched.Stopped -> List.rev acc
    | Lp.Wsched.Done -> Alcotest.fail "infinite scheduler reported Done"
  in
  Alcotest.(check (list (float 0.0)))
    "drain serves backlog in order before stopping" [ 1.0; 2.0; 3.0 ]
    (drain [])

(* ------------------------------------------------------- real domains *)

(* Four domains race over a 511-node synthetic tree.  A watchdog domain
   force-stops the scheduler if the run wedges, so a termination bug
   fails the assertion instead of hanging the suite. *)
let test_sched_domains () =
  let max_depth = 8 in
  let expected = (1 lsl (max_depth + 1)) - 1 in
  let workers = 4 in
  let sched = Lp.Wsched.create ~workers () in
  let processed = Atomic.make 0 in
  let finished = Atomic.make false in
  Lp.Wsched.push sched ~who:0 ~key:1.0 0;
  let worker who () =
    let rec loop () =
      match Lp.Wsched.next sched ~who with
      | Lp.Wsched.Done | Lp.Wsched.Stopped -> ()
      | Lp.Wsched.Work (k, depth) ->
          Atomic.incr processed;
          if depth < max_depth then begin
            Lp.Wsched.push sched ~who ~key:(k +. 1.0) (depth + 1);
            Lp.Wsched.push sched ~who ~key:(k +. 2.0) (depth + 1)
          end;
          Lp.Wsched.done_one sched;
          loop ()
    in
    loop ()
  in
  let watchdog () =
    let deadline = 600 in
    let rec wait n =
      if Atomic.get finished then ()
      else if n >= deadline then Lp.Wsched.stop sched
      else begin
        Unix.sleepf 0.05;
        wait (n + 1)
      end
    in
    wait 0
  in
  let dog = Domain.spawn watchdog in
  let doms = Array.init workers (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join doms;
  Atomic.set finished true;
  Domain.join dog;
  Alcotest.(check bool) "watchdog did not fire" false
    (Lp.Wsched.stopped sched);
  Alcotest.(check int) "every node processed exactly once" expected
    (Atomic.get processed);
  Alcotest.(check int) "nothing left queued" 0 (Lp.Wsched.queued sched);
  Alcotest.(check int) "nothing left pending" 0 (Lp.Wsched.pending sched)

let suite =
  [
    Alcotest.test_case "wsdeque: pop both ends" `Quick test_deque_ends;
    Alcotest.test_case "wsdeque: multiset model" `Quick test_deque_model;
    Alcotest.test_case "scripted steal chaos == sequential" `Quick
      test_sched_scripted_chaos;
    Alcotest.test_case "stop abandons, keeps open bound" `Quick
      test_sched_stop_abandons;
    Alcotest.test_case "drain serves backlog on stop" `Quick test_sched_drain;
    Alcotest.test_case "four domains, watchdogged" `Quick test_sched_domains;
  ]
