(* Service.Metrics unit tests: histogram bucket boundary semantics
   (values exactly on a bucket edge, the implicit +Inf bucket) and
   counter monotonicity under concurrent observers. *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_line rendered line =
  Alcotest.(check bool)
    (Printf.sprintf "render contains %S" line)
    true
    (contains rendered (line ^ "\n"))

let test_bucket_edges () =
  let t = Service.Metrics.create () in
  let obs v =
    Service.Metrics.observe t ~buckets:[| 1.0; 2.0; 5.0 |] "h_test" v
  in
  (* One value strictly inside each bucket, one exactly ON each edge
     (edges are inclusive: v <= upper bound), one beyond the last
     bucket (only +Inf catches it). *)
  List.iter obs [ 0.5; 1.0; 2.0; 2.5; 5.0; 7.0 ];
  let r = Service.Metrics.render t in
  (* Cumulative counts: le=1 gets 0.5 and the edge value 1.0; le=2 adds
     exactly-2.0; le=5 adds 2.5 and exactly-5.0; +Inf adds 7.0. *)
  check_line r {|h_test_bucket{le="1"} 2|};
  check_line r {|h_test_bucket{le="2"} 3|};
  check_line r {|h_test_bucket{le="5"} 5|};
  check_line r {|h_test_bucket{le="+Inf"} 6|};
  check_line r "h_test_count 6";
  check_line r "h_test_sum 18";
  (* The count reported through [value] is the observation count. *)
  Alcotest.(check (option (float 1e-9))) "value = count" (Some 6.0)
    (Service.Metrics.value t "h_test")

let test_inf_bucket_only () =
  (* Every observation above the last finite bucket lands only in +Inf:
     finite cumulative counts stay put. *)
  let t = Service.Metrics.create () in
  let obs v = Service.Metrics.observe t ~buckets:[| 1.0 |] "h_over" v in
  List.iter obs [ 10.0; 100.0; 1000.0 ];
  let r = Service.Metrics.render t in
  check_line r {|h_over_bucket{le="1"} 0|};
  check_line r {|h_over_bucket{le="+Inf"} 3|};
  check_line r "h_over_count 3"

let test_histogram_labels_partition () =
  (* Label sets get independent histograms under one metric name. *)
  let t = Service.Metrics.create () in
  Service.Metrics.observe t ~labels:[ ("route", "a") ] ~buckets:[| 1.0 |]
    "h_lab" 0.5;
  Service.Metrics.observe t ~labels:[ ("route", "b") ] ~buckets:[| 1.0 |]
    "h_lab" 2.0;
  let r = Service.Metrics.render t in
  check_line r {|h_lab_bucket{route="a",le="1"} 1|};
  check_line r {|h_lab_bucket{route="b",le="1"} 0|};
  check_line r {|h_lab_bucket{route="b",le="+Inf"} 1|}

let test_concurrent_counter_monotonic () =
  let t = Service.Metrics.create () in
  let threads = 8 and per_thread = 2000 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  (* A reader polls the counter while writers increment: every sample
     must be >= the previous one (monotonicity is the counter
     contract), and the final total must be exact (no lost updates). *)
  let reader =
    Thread.create
      (fun () ->
        let last = ref 0.0 in
        while not (Atomic.get stop) do
          (match Service.Metrics.value t "c_conc" with
          | Some v ->
              if v < !last then Atomic.incr violations;
              last := v
          | None -> ());
          Thread.yield ()
        done)
      ()
  in
  let writers =
    List.init threads (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              Service.Metrics.incr t "c_conc"
            done)
          ())
  in
  List.iter Thread.join writers;
  Atomic.set stop true;
  Thread.join reader;
  Alcotest.(check int) "no monotonicity violations" 0 (Atomic.get violations);
  Alcotest.(check (option (float 1e-9)))
    "all increments counted"
    (Some (float_of_int (threads * per_thread)))
    (Service.Metrics.value t "c_conc")

let suite =
  [
    Alcotest.test_case "bucket edges are inclusive" `Quick test_bucket_edges;
    Alcotest.test_case "+Inf catches overflow only" `Quick
      test_inf_bucket_only;
    Alcotest.test_case "labels partition histograms" `Quick
      test_histogram_labels_partition;
    Alcotest.test_case "concurrent counter monotonic and exact" `Quick
      test_concurrent_counter_monotonic;
  ]
