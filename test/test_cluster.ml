(* The tiered plan-cache cluster layer: Bloom digests, the consistent
   hash ring, the binary outcome codec, the crash-safe on-disk store
   (including its corruption tolerance and the capped-solve refusal),
   and the pool-level disk tier surviving a restart. *)

open Etransform

let contains_substring ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "etransform_cluster_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let seg dir = Filename.concat dir "plans.seg"
let idx dir = Filename.concat dir "plans.idx"

(* ----------------------------------------------------------------- bloom *)

let test_bloom () =
  let keys =
    List.init 40 (fun i -> Stdlib.Digest.to_hex (Stdlib.Digest.string (string_of_int i)))
  in
  let b = Cluster.Bloom.of_keys keys in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("member " ^ k) true (Cluster.Bloom.mem b k))
    keys;
  (* No false negatives is the contract; false positives are possible
     but at 40 keys in 16k bits must be rare — over 200 fresh keys,
     demand almost all read absent. *)
  let absent =
    List.init 200 (fun i ->
        Stdlib.Digest.to_hex (Stdlib.Digest.string (Printf.sprintf "no-%d" i)))
  in
  let fp = List.length (List.filter (Cluster.Bloom.mem b) absent) in
  Alcotest.(check bool)
    (Printf.sprintf "false positives rare (%d/200)" fp)
    true (fp < 5);
  (* Wire roundtrip preserves membership verdicts exactly. *)
  match Cluster.Bloom.of_hex (Cluster.Bloom.to_hex b) with
  | None -> Alcotest.fail "hex roundtrip failed to parse"
  | Some b' ->
      List.iter
        (fun k ->
          Alcotest.(check bool) "roundtrip member" true (Cluster.Bloom.mem b' k))
        keys;
      List.iter
        (fun k ->
          Alcotest.(check bool) "roundtrip verdicts agree"
            (Cluster.Bloom.mem b k) (Cluster.Bloom.mem b' k))
        absent;
      List.iter
        (fun bad ->
          Alcotest.(check bool) ("rejects " ^ bad) true
            (Cluster.Bloom.of_hex bad = None))
        [ ""; "v1"; "v1:64:4:0:zz"; "v2:64:4:0:00"; "v1:64:4:0:0" ]

(* ------------------------------------------------------------------ ring *)

let test_ring () =
  let peers = [ "a:1"; "b:2"; "c:3"; "b:2"; "" ] in
  let r = Cluster.Ring.create peers in
  Alcotest.(check (list string)) "dedup, empties dropped"
    [ "a:1"; "b:2"; "c:3" ] (Cluster.Ring.peers r);
  let r' = Cluster.Ring.create [ "a:1"; "b:2"; "c:3" ] in
  for i = 0 to 99 do
    let key = Printf.sprintf "fp-%d" i in
    let own = Cluster.Ring.lookup ~n:2 r key in
    Alcotest.(check (list string)) "deterministic across creates" own
      (Cluster.Ring.lookup ~n:2 r' key);
    Alcotest.(check int) "two distinct owners" 2
      (List.length (List.sort_uniq compare own));
    List.iter
      (fun p ->
        Alcotest.(check bool) "owner is a peer" true
          (List.mem p [ "a:1"; "b:2"; "c:3" ]))
      own
  done;
  (* Removing one peer only remaps the keys it owned. *)
  let without = Cluster.Ring.create [ "a:1"; "c:3" ] in
  for i = 0 to 99 do
    let key = Printf.sprintf "fp-%d" i in
    match Cluster.Ring.lookup r key with
    | [ "b:2" ] -> ()
    | [ p ] ->
        Alcotest.(check (list string)) "survivor keeps its keys" [ p ]
          (Cluster.Ring.lookup without key)
    | other ->
        Alcotest.failf "lookup returned %d peers" (List.length other)
  done;
  Alcotest.(check (list string)) "empty ring"
    [] (Cluster.Ring.lookup (Cluster.Ring.create []) "x")

(* ----------------------------------------------------------------- codec *)

let small_outcome =
  lazy
    (let milp =
       { Solver.default_milp_options with Lp.Milp.node_limit = 2;
         time_limit = 20.0 }
     in
     Solver.consolidate ~milp
       (Harness.Line_estate.make
          { Harness.Line_estate.default with Harness.Line_estate.n_groups = 10 }))

let test_codec_roundtrip () =
  let o = Lazy.force small_outcome in
  let encoded = Cluster.Codec.encode o in
  (match Cluster.Codec.decode encoded with
  | None -> Alcotest.fail "decode of a fresh encode failed"
  | Some o' ->
      Alcotest.(check bool) "field-for-field equal" true (o = o'));
  (* Any truncation is a miss, not an exception. *)
  for len = 0 to String.length encoded - 1 do
    match Cluster.Codec.decode (String.sub encoded 0 len) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation to %d bytes decoded" len
  done;
  Alcotest.(check bool) "trailing garbage rejected" true
    (Cluster.Codec.decode (encoded ^ "x") = None);
  Alcotest.(check bool) "foreign magic rejected" true
    (Cluster.Codec.decode ("ETP9" ^ String.sub encoded 4 (String.length encoded - 4))
     = None)

(* ----------------------------------------------------------------- store *)

let test_store_restart () =
  with_dir (fun dir ->
      let s = Cluster.Store.open_ ~dir in
      Cluster.Store.add s "k1" "plan-one";
      Cluster.Store.add s "k2" "plan-two";
      Cluster.Store.add s "k2" "plan-two-v2";
      Alcotest.(check (option string)) "live read" (Some "plan-one")
        (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "last write wins" (Some "plan-two-v2")
        (Cluster.Store.find s "k2");
      Alcotest.(check int) "two live entries" 2 (Cluster.Store.length s);
      Cluster.Store.close s;
      (* Clean restart: index snapshot path. *)
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check (option string)) "k1 survives restart" (Some "plan-one")
        (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "k2 survives restart"
        (Some "plan-two-v2") (Cluster.Store.find s "k2");
      Cluster.Store.close s;
      (* Restart without the snapshot: full-scan path. *)
      Sys.remove (idx dir);
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check (option string)) "k1 survives scan" (Some "plan-one")
        (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "k2 survives scan" (Some "plan-two-v2")
        (Cluster.Store.find s "k2");
      Cluster.Store.close s)

let test_store_capped_not_persisted () =
  (* The PR 3 poisoning rule at the store boundary: a deadline-capped
     solve must not reach disk even when the caller asks directly. *)
  with_dir (fun dir ->
      let s = Cluster.Store.open_ ~dir in
      Cluster.Store.add s ~capped:true "capped-fp" "starved-plan";
      Cluster.Store.add s ~capped:false "clean-fp" "full-plan";
      Alcotest.(check bool) "capped refused" false
        (Cluster.Store.mem s "capped-fp");
      Alcotest.(check (option string)) "clean accepted" (Some "full-plan")
        (Cluster.Store.find s "clean-fp");
      Cluster.Store.close s;
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check bool) "capped absent after restart" false
        (Cluster.Store.mem s "capped-fp");
      Alcotest.(check int) "only the clean entry persisted" 1
        (Cluster.Store.length s);
      Cluster.Store.close s)

let test_store_truncated_tail () =
  with_dir (fun dir ->
      let s = Cluster.Store.open_ ~dir in
      Cluster.Store.add s "k1" "first-plan";
      Cluster.Store.add s "k2" "second-plan";
      Cluster.Store.add s "k3" "third-plan";
      Cluster.Store.close s;
      (* Tear the tail mid-entry (drop the snapshot so the scan runs). *)
      Sys.remove (idx dir);
      let size = (Unix.stat (seg dir)).Unix.st_size in
      let fd = Unix.openfile (seg dir) [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (size - 5);
      Unix.close fd;
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check (option string)) "k1 intact" (Some "first-plan")
        (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "k2 intact" (Some "second-plan")
        (Cluster.Store.find s "k2");
      Alcotest.(check (option string)) "torn k3 is a miss" None
        (Cluster.Store.find s "k3");
      (* The store is healthy: the tail was cut and appends resume. *)
      Cluster.Store.add s "k3" "third-plan-again";
      Alcotest.(check (option string)) "k3 rewritable"
        (Some "third-plan-again") (Cluster.Store.find s "k3");
      Cluster.Store.close s;
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check int) "all three after repair" 3 (Cluster.Store.length s);
      Cluster.Store.close s)

let test_store_flipped_byte () =
  with_dir (fun dir ->
      let s = Cluster.Store.open_ ~dir in
      Cluster.Store.add s "k1" "first-plan";
      Cluster.Store.add s "k2" "second-plan";
      Cluster.Store.close s;
      (* Bit rot in the last entry's value, snapshot intact: the index
         is trusted (size matches) but the read-time checksum must
         catch the damage. *)
      let size = (Unix.stat (seg dir)).Unix.st_size in
      let fd = Unix.openfile (seg dir) [ Unix.O_RDWR ] 0o644 in
      ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
      ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check (option string)) "clean entry readable"
        (Some "first-plan") (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "flipped entry is a miss" None
        (Cluster.Store.find s "k2");
      Alcotest.(check int) "corruption counted" 1 (Cluster.Store.corrupt s);
      Alcotest.(check (option string)) "miss is sticky" None
        (Cluster.Store.find s "k2");
      Cluster.Store.close s;
      (* Same damage through the scan path: the scan drops the bad
         entry at open. *)
      Sys.remove (idx dir);
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check (option string)) "scan keeps the clean prefix"
        (Some "first-plan") (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "scan drops the damage" None
        (Cluster.Store.find s "k2");
      Cluster.Store.close s)

let test_store_zero_length_index () =
  with_dir (fun dir ->
      let s = Cluster.Store.open_ ~dir in
      Cluster.Store.add s "k1" "first-plan";
      Cluster.Store.add s "k2" "second-plan";
      Cluster.Store.close s;
      let oc = open_out (idx dir) in
      close_out oc;
      Alcotest.(check int) "index truncated" 0
        (Unix.stat (idx dir)).Unix.st_size;
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check (option string)) "k1 recovered by scan"
        (Some "first-plan") (Cluster.Store.find s "k1");
      Alcotest.(check (option string)) "k2 recovered by scan"
        (Some "second-plan") (Cluster.Store.find s "k2");
      Cluster.Store.close s)

let test_store_compaction () =
  with_dir (fun dir ->
      let s = Cluster.Store.open_ ~dir in
      let fat = String.make 256 'v' in
      for i = 1 to 64 do
        Cluster.Store.add s "hot" (fat ^ string_of_int i)
      done;
      Cluster.Store.add s "cold" "small-plan";
      let before = Cluster.Store.bytes s in
      Alcotest.(check bool) "dead bytes accumulated" true
        (Cluster.Store.dead_bytes s > before / 2);
      Cluster.Store.close s;
      let s = Cluster.Store.open_ ~dir in
      Alcotest.(check int) "compaction dropped dead bytes" 0
        (Cluster.Store.dead_bytes s);
      Alcotest.(check bool)
        (Printf.sprintf "segment shrank (%d -> %d)" before
           (Cluster.Store.bytes s))
        true
        (Cluster.Store.bytes s < before / 4);
      Alcotest.(check (option string)) "hot survives compaction"
        (Some (fat ^ "64"))
        (Cluster.Store.find s "hot");
      Alcotest.(check (option string)) "cold survives compaction"
        (Some "small-plan") (Cluster.Store.find s "cold");
      Cluster.Store.close s)

(* ---------------------------------------------------------------- tiered *)

let backing_tier ?(remote = false) name table =
  {
    Service.Tiered.name;
    remote;
    find = (fun fp -> Hashtbl.find_opt table fp);
    store =
      (fun ~capped fp o -> if not capped then Hashtbl.replace table fp o);
    bytes = None;
  }

let test_tiered_promotion () =
  let o = Lazy.force small_outcome in
  let back : (string, Solver.outcome) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace back "fp1" o;
  let remote : (string, Solver.outcome) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace remote "fp2" o;
  let t =
    Service.Tiered.create
      ~tiers:[ backing_tier "disk" back; backing_tier ~remote:true "peer" remote ]
      ~cache_capacity:8 ()
  in
  (* A disk hit is promoted into memory: the second lookup stops there. *)
  (match Service.Tiered.find t "fp1" with
  | Some (_, tier) -> Alcotest.(check string) "first hit tier" "disk" tier
  | None -> Alcotest.fail "fp1 missed");
  (match Service.Tiered.find t "fp1" with
  | Some (_, tier) -> Alcotest.(check string) "promoted" "memory" tier
  | None -> Alcotest.fail "fp1 missed after promotion");
  (* A peer hit back-fills every cheaper tier, disk included. *)
  (match Service.Tiered.find t "fp2" with
  | Some (_, tier) -> Alcotest.(check string) "peer hit tier" "peer" tier
  | None -> Alcotest.fail "fp2 missed");
  Alcotest.(check bool) "peer hit landed on disk" true
    (Hashtbl.mem back "fp2");
  (* find_local never consults remote tiers. *)
  Hashtbl.replace remote "fp3" o;
  Alcotest.(check bool) "find_local skips peers" true
    (Service.Tiered.find_local t "fp3" = None);
  (* Capped entries are refused by every tier. *)
  Service.Tiered.add t ~capped:true "fp4" o;
  Alcotest.(check bool) "capped not in memory" true
    (Service.Tiered.find_local t "fp4" = None);
  Alcotest.(check bool) "capped not on disk" false (Hashtbl.mem back "fp4");
  (* The per-tier lookup counters feed the metrics surface. *)
  let counts = Service.Tiered.counts t in
  let get tier result =
    match List.assoc_opt (tier, result) counts with Some n -> n | None -> 0
  in
  Alcotest.(check bool) "memory hits counted" true (get "memory" "hit" >= 1);
  Alcotest.(check bool) "disk misses counted" true (get "disk" "miss" >= 1);
  Alcotest.(check bool) "peer hits counted" true (get "peer" "hit" >= 1)

(* ------------------------------------------------------- pool + disk tier *)

let line_milp =
  {
    Service.Job.no_overrides with
    Service.Job.node_limit = Some 2;
    time_limit = Some 20.0;
  }

let small_job () =
  Service.Job.v ~milp:line_milp
    (Harness.Line_jobs.estate ~penalty:40.0
       {
         Harness.Line_estate.default with
         Harness.Line_estate.n_groups = 12;
         frac_at_0 = 0.5;
         latency_penalty = Harness.Line_estate.banded_penalty 40.0;
       })

let test_pool_disk_tier_restart () =
  (* The acceptance scenario: a restarted server answers a previously
     solved fingerprint from the disk tier without re-solving. *)
  with_dir (fun dir ->
      let job = small_job () in
      (* First life: solve and persist. *)
      let first =
        let node = Cluster.Node.create ~cache_dir:dir () in
        let r =
          Service.Pool.with_pool ~workers:0 ~tiers:(Cluster.Node.tiers node)
            (fun pool -> List.hd (Service.Pool.run_batch pool [ job ]))
        in
        Cluster.Node.close node;
        r
      in
      Alcotest.(check bool) "first life solves fresh" false
        first.Service.Pool.cache_hit;
      (* Second life: fresh pool, fresh LRU, same directory. *)
      let trace = Service.Trace.memory () in
      let node = Cluster.Node.create ~cache_dir:dir () in
      let second =
        Service.Pool.with_pool ~workers:0 ~tiers:(Cluster.Node.tiers node)
          ~trace (fun pool ->
            List.hd (Service.Pool.run_batch pool [ job ]))
      in
      Cluster.Node.close node;
      Alcotest.(check bool) "restart hits" true
        second.Service.Pool.cache_hit;
      Alcotest.(check (option string)) "hit came from disk" (Some "disk")
        second.Service.Pool.cache_tier;
      Alcotest.(check (float 0.0)) "no solver time spent" 0.0
        second.Service.Pool.solve_s;
      (match (first.Service.Pool.outcome, second.Service.Pool.outcome) with
      | Some a, Some b ->
          Alcotest.(check bool) "disk plan equals the solved plan" true
            (a = b)
      | _ -> Alcotest.fail "missing outcomes");
      (* The trace span records the serving tier. *)
      Alcotest.(check bool) "trace carries the tier" true
        (contains_substring ~affix:{|"tier":"disk"|}
           (Service.Trace.contents trace));
      (* Third life, snapshot deleted: the scan path serves the same
         hit. *)
      Sys.remove (idx dir);
      let node = Cluster.Node.create ~cache_dir:dir () in
      let third =
        Service.Pool.with_pool ~workers:0 ~tiers:(Cluster.Node.tiers node)
          (fun pool -> List.hd (Service.Pool.run_batch pool [ job ]))
      in
      Cluster.Node.close node;
      Alcotest.(check (option string)) "scan path hits too" (Some "disk")
        third.Service.Pool.cache_tier)

let test_pool_capped_not_on_disk () =
  (* End-to-end: a deadline-capped solve crosses Pool -> Tiered -> Store
     and must be refused at the end of that chain too. *)
  with_dir (fun dir ->
      let job =
        { (small_job ()) with Service.Job.deadline_s = Some 5.0 }
      in
      let node = Cluster.Node.create ~cache_dir:dir () in
      let r =
        Service.Pool.with_pool ~workers:0 ~tiers:(Cluster.Node.tiers node)
          (fun pool -> List.hd (Service.Pool.run_batch pool [ job ]))
      in
      (let store = Option.get (Cluster.Node.store node) in
       Alcotest.(check bool) "capped solve solved" true
         (r.Service.Pool.code = Service.Pool.Solved);
       Alcotest.(check int) "nothing persisted" 0 (Cluster.Store.length store));
      Cluster.Node.close node;
      let node = Cluster.Node.create ~cache_dir:dir () in
      let r2 =
        Service.Pool.with_pool ~workers:0 ~tiers:(Cluster.Node.tiers node)
          (fun pool -> List.hd (Service.Pool.run_batch pool [ job ]))
      in
      Cluster.Node.close node;
      Alcotest.(check bool) "restart re-solves" false
        r2.Service.Pool.cache_hit)

(* ---------------------------------------------------------------- gossip *)

let test_gossip_exchange () =
  (* Pure-local halves of the gossip protocol: digest JSON shape, the
     receive side installing the sender's Bloom filter, and digest
     gating on lookup candidates. *)
  let node = Cluster.Node.create ~peers:[ "127.0.0.1:1" ] () in
  Cluster.Node.set_self node "127.0.0.1:2";
  Cluster.Node.set_local_keys node (fun () -> [ "fp-a"; "fp-b" ]);
  let body = Cluster.Node.digest_json node in
  Alcotest.(check bool) "body has node" true
    (contains_substring ~affix:{|"node":"127.0.0.1:2"|} body);
  Alcotest.(check bool) "body has count" true
    (contains_substring ~affix:{|"count":2|} body);
  (* A second node receives it and answers with its own digest. *)
  let peer = Cluster.Node.create ~peers:[ "127.0.0.1:2" ] () in
  Cluster.Node.set_self peer "127.0.0.1:1";
  Cluster.Node.set_local_keys peer (fun () -> [ "fp-c" ]);
  (match Cluster.Node.gossip_receive peer body with
  | None -> Alcotest.fail "well-formed gossip rejected"
  | Some reply -> (
      Alcotest.(check bool) "reply names the peer" true
        (contains_substring ~affix:{|"node":"127.0.0.1:1"|} reply);
      (* The sender's digest is installed under its advertised name. *)
      match Cluster.Peers.digest_of (Cluster.Node.peers peer) "127.0.0.1:2" with
      | None -> Alcotest.fail "sender digest not installed"
      | Some bloom ->
          Alcotest.(check bool) "digest holds fp-a" true
            (Cluster.Bloom.mem bloom "fp-a");
          Alcotest.(check bool) "digest gates absent keys" false
            (Cluster.Bloom.mem bloom "fp-zzz")));
  Alcotest.(check bool) "garbage gossip rejected" true
    (Cluster.Node.gossip_receive peer "{not json" = None);
  Cluster.Node.close peer;
  Cluster.Node.close node

let suite =
  [
    Alcotest.test_case "bloom: membership and hex wire form" `Quick test_bloom;
    Alcotest.test_case "ring: deterministic consistent hashing" `Quick
      test_ring;
    Alcotest.test_case "codec: exact roundtrip, total decode" `Quick
      test_codec_roundtrip;
    Alcotest.test_case "store: restart via snapshot and scan" `Quick
      test_store_restart;
    Alcotest.test_case "store: capped budget not persisted" `Quick
      test_store_capped_not_persisted;
    Alcotest.test_case "store: truncated tail reads as misses" `Quick
      test_store_truncated_tail;
    Alcotest.test_case "store: flipped byte reads as miss" `Quick
      test_store_flipped_byte;
    Alcotest.test_case "store: zero-length index recovers" `Quick
      test_store_zero_length_index;
    Alcotest.test_case "store: startup compaction" `Quick test_store_compaction;
    Alcotest.test_case "tiered: promotion, find_local, counters" `Quick
      test_tiered_promotion;
    Alcotest.test_case "pool: disk tier survives restart" `Quick
      test_pool_disk_tier_restart;
    Alcotest.test_case "pool: capped solve never reaches disk" `Quick
      test_pool_capped_not_on_disk;
    Alcotest.test_case "gossip: digest exchange and gating" `Quick
      test_gossip_exchange;
  ]
