(* The property-testing library itself: stream determinism, failure
   reporting, greedy shrink convergence, and seed selection via
   CHECK_SEED. *)

let int_list_arb =
  Check.arb
    ~shrink:(Check.Shrink.list ~elt:Check.Shrink.int)
    ~pp:(fun ppf l ->
      Format.fprintf ppf "[%s]"
        (String.concat ";" (List.map string_of_int l)))
    (Check.Gen.list ~max:20 (Check.Gen.int_range 0 9))

let test_determinism () =
  let prop =
    Check.prop "p" int_list_arb (fun _ -> Ok ())
  in
  let a = Check.run_one ~seed:7 prop in
  let b = Check.run_one ~seed:7 prop in
  Alcotest.(check string) "same seed, same stream" a.Check.stream
    b.Check.stream;
  Alcotest.(check bool) "stream digest is real" true (a.Check.stream <> "-");
  let c = Check.run_one ~seed:8 prop in
  Alcotest.(check bool) "different seed, different stream" true
    (a.Check.stream <> c.Check.stream)

let test_case_rng_isolated_from_count () =
  (* Case [i]'s instance depends only on (seed, name, i): growing the
     count extends the stream without disturbing its prefix, so a
     failure index printed by a big run replays in a small one. *)
  let seen = ref [] in
  let remember =
    Check.prop "q"
      (Check.arb (Check.Gen.int_range 0 1_000_000))
      (fun x ->
        seen := x :: !seen;
        Ok ())
  in
  ignore (Check.run_one ~seed:3 ~count:5 remember);
  let short = List.rev !seen in
  seen := [];
  ignore (Check.run_one ~seed:3 ~count:10 remember);
  let long = List.rev !seen in
  Alcotest.(check (list int)) "prefix stable under count growth" short
    (List.filteri (fun i _ -> i < 5) long)

let test_shrink_convergence () =
  (* sum >= 10 fails; greedy descent over list/element shrinks must
     reach a local minimum: few elements, small sum. *)
  let prop =
    Check.prop ~count:200 "sum" int_list_arb (fun l ->
        if List.fold_left ( + ) 0 l >= 10 then Error "sum too big" else Ok ())
  in
  let o = Check.run_one ~seed:1 prop in
  match o.Check.failure with
  | None -> Alcotest.fail "property should have failed"
  | Some f ->
      Alcotest.(check bool) "shrinking happened" true (f.Check.shrink_steps > 0);
      let ce =
        match f.Check.counterexample with
        | Some s -> s
        | None -> Alcotest.fail "no counterexample printed"
      in
      (* Parse back the printed list and check minimality: removing any
         element or decrementing any element must drop the sum below
         10, i.e. sum in [10, 10 + max element). *)
      let items =
        match String.trim ce with
        | "[]" -> []
        | s ->
            String.sub s 1 (String.length s - 2)
            |> String.split_on_char ';'
            |> List.map int_of_string
      in
      let sum = List.fold_left ( + ) 0 items in
      Alcotest.(check bool) "still failing" true (sum >= 10);
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (Printf.sprintf "element %d is load-bearing" x)
            true
            (sum - x < 10))
        items

let test_failure_carries_replay_data () =
  let prop =
    Check.prop "always"
      (Check.arb ~pp:(fun ppf x -> Format.fprintf ppf "%d" x)
         (Check.Gen.int_range 0 9))
      (fun _ -> Error "no")
  in
  let o = Check.run_one ~seed:42 prop in
  match o.Check.failure with
  | None -> Alcotest.fail "must fail"
  | Some f ->
      Alcotest.(check int) "seed recorded" 42 f.Check.seed;
      Alcotest.(check int) "first case fails" 0 f.Check.case;
      Alcotest.(check string) "reason" "no" f.Check.reason

let test_check_seed_env () =
  let prev = Sys.getenv_opt "CHECK_SEED" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "CHECK_SEED" (Option.value prev ~default:""))
    (fun () ->
      Unix.putenv "CHECK_SEED" "4242";
      Alcotest.(check int) "env seed wins" 4242 (Check.default_seed ());
      Unix.putenv "CHECK_SEED" "not-a-number";
      Alcotest.(check int) "garbage falls back" 0xe7ca5e
        (Check.default_seed ()))

let test_exceptions_are_failures () =
  let prop =
    Check.prop "raises" (Check.arb (Check.Gen.return ())) (fun () ->
        failwith "boom")
  in
  let o = Check.run_one ~seed:0 prop in
  match o.Check.failure with
  | None -> Alcotest.fail "raising body must fail the property"
  | Some f ->
      Alcotest.(check bool) "reason mentions the exception" true
        (String.length f.Check.reason > 0)

let suite =
  [
    Alcotest.test_case "stream determinism" `Quick test_determinism;
    Alcotest.test_case "case rng isolated from count" `Quick
      test_case_rng_isolated_from_count;
    Alcotest.test_case "shrink converges to local minimum" `Quick
      test_shrink_convergence;
    Alcotest.test_case "failure carries replay data" `Quick
      test_failure_carries_replay_data;
    Alcotest.test_case "CHECK_SEED env override" `Quick test_check_seed_env;
    Alcotest.test_case "exceptions are failures" `Quick
      test_exceptions_are_failures;
  ]
