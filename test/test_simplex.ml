(* Unit and property tests for the bounded-variable two-phase simplex. *)

open Lp

let check_float = Alcotest.(check (float 1e-6))

let solve_model m = Simplex.solve (Simplex.of_model m)

(* Every exhaustive check runs against both engines: the dense tableau and
   the sparse revised simplex must agree while both are maintained. *)
let both_cores = [ ("dense", Simplex.Dense); ("sparse", Simplex.Sparse) ]

let assert_optimal ?(tol = 1e-6) m expected =
  let input = Simplex.of_model m in
  List.iter
    (fun (tag, core) ->
      let r = Simplex.solve ~core input in
      Alcotest.(check string)
        (tag ^ " status") "optimal"
        (Status.to_string r.Simplex.status);
      Alcotest.(check (float tol)) (tag ^ " objective") expected r.Simplex.obj_value;
      match Simplex.check_certificate input r with
      | [] -> ()
      | errs ->
          Alcotest.failf "%s certificate: %s" tag (String.concat "; " errs))
    both_cores

(* Classic textbook LP: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. *)
let test_textbook () =
  let m = Model.create ~name:"textbook" () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_le m "c1" (Model.Linexpr.var x) 4.0;
  Model.add_le m "c2" (Model.Linexpr.term 2.0 y) 12.0;
  Model.add_le m "c3"
    (Model.Linexpr.add (Model.Linexpr.term 3.0 x) (Model.Linexpr.term 2.0 y))
    18.0;
  Model.set_objective m ~minimize:false
    (Model.Linexpr.add (Model.Linexpr.term 3.0 x) (Model.Linexpr.term 5.0 y));
  let r = solve_model m in
  check_float "objective" 36.0 r.Simplex.obj_value;
  check_float "x" 2.0 r.Simplex.x.(0);
  check_float "y" 6.0 r.Simplex.x.(1)

let test_equality_rows () =
  (* min x + 2y s.t. x + y = 10, x - y = 2  ->  x=6, y=4, obj=14 *)
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_eq m "sum" Model.Linexpr.(add (var x) (var y)) 10.0;
  Model.add_eq m "diff" Model.Linexpr.(sub (var x) (var y)) 2.0;
  Model.set_objective m Model.Linexpr.(add (var x) (term 2.0 y));
  let r = solve_model m in
  check_float "obj" 14.0 r.Simplex.obj_value;
  check_float "x" 6.0 r.Simplex.x.(0);
  check_float "y" 4.0 r.Simplex.x.(1)

let test_bound_flip () =
  (* max x + y with box [0,1]^2 and x + y <= 1.5: needs a nonbasic var to
     ride to its upper bound. *)
  let m = Model.create () in
  let x = Model.add_var m ~hi:1.0 "x" and y = Model.add_var m ~hi:1.0 "y" in
  Model.add_le m "c" Model.Linexpr.(add (var x) (var y)) 1.5;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (var x) (var y));
  let r = solve_model m in
  check_float "obj" 1.5 r.Simplex.obj_value

let test_negative_lower_bounds () =
  (* min x + y with x,y in [-2, 3] and x + y >= -1 -> obj -1. *)
  let m = Model.create () in
  let x = Model.add_var m ~lo:(-2.0) ~hi:3.0 "x"
  and y = Model.add_var m ~lo:(-2.0) ~hi:3.0 "y" in
  Model.add_ge m "c" Model.Linexpr.(add (var x) (var y)) (-1.0);
  Model.set_objective m Model.Linexpr.(add (var x) (var y));
  assert_optimal m (-1.0)

let test_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:1.0 "x" in
  Model.add_ge m "c" (Model.Linexpr.var x) 5.0;
  Model.set_objective m (Model.Linexpr.var x);
  let r = solve_model m in
  Alcotest.(check string)
    "status" "infeasible"
    (Status.to_string r.Simplex.status)

let test_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.add_ge m "c" (Model.Linexpr.var x) 1.0;
  Model.set_objective m ~minimize:false (Model.Linexpr.var x);
  let r = solve_model m in
  Alcotest.(check string) "status" "unbounded" (Status.to_string r.Simplex.status)

let test_fixed_variable () =
  let m = Model.create () in
  let x = Model.add_var m ~lo:2.0 ~hi:2.0 "x" in
  let y = Model.add_var m ~hi:10.0 "y" in
  Model.add_le m "c" Model.Linexpr.(add (var x) (var y)) 7.0;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (var x) (var y));
  assert_optimal m 7.0

let test_degenerate () =
  (* Multiple constraints tight at the optimum; exercises anti-cycling. *)
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_le m "c1" Model.Linexpr.(add (var x) (var y)) 1.0;
  Model.add_le m "c2" Model.Linexpr.(add (term 2.0 x) (term 2.0 y)) 2.0;
  Model.add_le m "c3" Model.Linexpr.(add (term 3.0 x) (term 3.0 y)) 3.0;
  Model.set_objective m ~minimize:false Model.Linexpr.(add (var x) (var y));
  assert_optimal m 1.0

let test_redundant_equalities () =
  (* Linearly dependent equality rows leave an artificial stuck in the
     basis; the solver must cope. *)
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_eq m "e1" Model.Linexpr.(add (var x) (var y)) 4.0;
  Model.add_eq m "e2" Model.Linexpr.(add (term 2.0 x) (term 2.0 y)) 8.0;
  Model.set_objective m Model.Linexpr.(add (term 3.0 x) (var y));
  assert_optimal m 4.0

let test_objective_constant () =
  let m = Model.create () in
  let x = Model.add_var m ~hi:2.0 "x" in
  Model.set_objective m Model.Linexpr.(add (var x) (constant 100.0));
  assert_optimal m 100.0

let test_free_variable () =
  (* min y s.t. y >= x - 3, y >= -x + 1, x free: optimum x=2, y=-1. *)
  let m = Model.create () in
  let x = Model.add_var m ~lo:neg_infinity ~hi:infinity "x" in
  let y = Model.add_var m ~lo:(-100.0) "y" in
  Model.add_ge m "c1" Model.Linexpr.(sub (var y) (var x)) (-3.0);
  Model.add_ge m "c2" Model.Linexpr.(add (var y) (var x)) 1.0;
  Model.set_objective m (Model.Linexpr.var y);
  assert_optimal m (-1.0)

let test_duals_transportation () =
  (* 2x2 transportation problem: ship 4 at cost 1, 1 at cost 2, 5 at cost 1
     -> 11.  The certificate check exercises dual recovery. *)
  let m = Model.create () in
  let x = Array.init 4 (fun i -> Model.add_var m (Printf.sprintf "x%d" i)) in
  (* supplies 5, 5; demands 4, 6; costs 1 2 / 3 1 *)
  Model.add_le m "s0" Model.Linexpr.(add (var x.(0)) (var x.(1))) 5.0;
  Model.add_le m "s1" Model.Linexpr.(add (var x.(2)) (var x.(3))) 5.0;
  Model.add_ge m "d0" Model.Linexpr.(add (var x.(0)) (var x.(2))) 4.0;
  Model.add_ge m "d1" Model.Linexpr.(add (var x.(1)) (var x.(3))) 6.0;
  Model.set_objective m
    Model.Linexpr.(
      sum [ var x.(0); term 2.0 x.(1); term 3.0 x.(2); var x.(3) ]);
  assert_optimal m 11.0

(* Random feasible-by-construction LPs must solve to optimality with a
   verifiable KKT certificate and beat the seed point. *)
let prop_random_feasible =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* rows = int_range 1 6 in
      let* x0 = list_repeat n (float_bound_inclusive 3.0) in
      let* objc = list_repeat n (float_range (-4.0) 4.0) in
      let* coeffs = list_repeat (rows * n) (float_range (-5.0) 5.0) in
      let* senses = list_repeat rows (int_range 0 2) in
      return (n, rows, Array.of_list x0, Array.of_list objc, Array.of_list coeffs, Array.of_list senses))
  in
  QCheck2.Test.make ~name:"random feasible LPs solve optimally" ~count:150 gen
    (fun (n, rows, x0, objc, coeffs, senses) ->
      let m = Model.create () in
      let vars =
        Array.init n (fun i -> Model.add_var m ~hi:5.0 (Printf.sprintf "v%d" i))
      in
      for r = 0 to rows - 1 do
        let e = ref Model.Linexpr.zero in
        let lhs = ref 0.0 in
        for j = 0 to n - 1 do
          let c = coeffs.((r * n) + j) in
          e := Model.Linexpr.add !e (Model.Linexpr.term c vars.(j));
          lhs := !lhs +. (c *. x0.(j))
        done;
        (match senses.(r) with
        | 0 -> Model.add_le m (Printf.sprintf "r%d" r) !e (!lhs +. 1.0)
        | 1 -> Model.add_ge m (Printf.sprintf "r%d" r) !e (!lhs -. 1.0)
        | _ -> Model.add_eq m (Printf.sprintf "r%d" r) !e !lhs)
      done;
      let obj =
        Model.Linexpr.sum
          (List.init n (fun j -> Model.Linexpr.term objc.(j) vars.(j)))
      in
      Model.set_objective m obj;
      let input = Simplex.of_model m in
      let r = Simplex.solve input in
      if r.Simplex.status <> Status.Optimal then
        QCheck2.Test.fail_reportf "status %s" (Status.to_string r.Simplex.status);
      let obj_at_x0 =
        Array.to_list (Array.mapi (fun j c -> c *. x0.(j)) objc)
        |> List.fold_left ( +. ) 0.0
      in
      if r.Simplex.obj_value > obj_at_x0 +. 1e-6 then
        QCheck2.Test.fail_reportf "optimum %g worse than seed %g"
          r.Simplex.obj_value obj_at_x0;
      (match Simplex.check_certificate input r with
      | [] -> ()
      | errs -> QCheck2.Test.fail_reportf "certificate: %s" (String.concat "; " errs));
      (* The dense engine must reach the same optimum with its own valid
         certificate. *)
      let rd = Simplex.solve ~core:Simplex.Dense input in
      if rd.Simplex.status <> Status.Optimal then
        QCheck2.Test.fail_reportf "dense status %s"
          (Status.to_string rd.Simplex.status);
      if Float.abs (rd.Simplex.obj_value -. r.Simplex.obj_value) > 1e-6 then
        QCheck2.Test.fail_reportf "dense %g vs sparse %g" rd.Simplex.obj_value
          r.Simplex.obj_value;
      (match Simplex.check_certificate input rd with
      | [] -> ()
      | errs ->
          QCheck2.Test.fail_reportf "dense certificate: %s"
            (String.concat "; " errs));
      true)

(* ---- eta-file drift --------------------------------------------------- *)

let test_eta_refactorization_drift () =
  (* A dense equality-constrained LP large enough that the crash basis plus
     the pivot sequence far exceeds the refactorization cadence, so the
     sparse engine rebuilds its eta file mid-solve (and again at the
     optimum).  The returned point must satisfy the rows to tight absolute
     tolerance: any drift the product-form update accumulated and the
     refactorizations failed to kill would show up here. *)
  let rng = Datasets.Prng.create 99 in
  let n = 80 and rows = 50 in
  let x0 = Array.init n (fun _ -> Datasets.Prng.range rng 0.0 3.0) in
  let m = Model.create ~name:"drift" () in
  let vars =
    Array.init n (fun i -> Model.add_var m ~hi:10.0 (Printf.sprintf "v%d" i))
  in
  let coeffs = Array.make_matrix rows n 0.0 in
  for r = 0 to rows - 1 do
    let e = ref Model.Linexpr.zero in
    let lhs = ref 0.0 in
    for j = 0 to n - 1 do
      let c = Datasets.Prng.range rng (-5.0) 5.0 in
      coeffs.(r).(j) <- c;
      e := Model.Linexpr.add !e (Model.Linexpr.term c vars.(j));
      lhs := !lhs +. (c *. x0.(j))
    done;
    if r mod 3 = 0 then Model.add_eq m (Printf.sprintf "r%d" r) !e !lhs
    else if r mod 3 = 1 then
      Model.add_le m (Printf.sprintf "r%d" r) !e (!lhs +. 0.5)
    else Model.add_ge m (Printf.sprintf "r%d" r) !e (!lhs -. 0.5)
  done;
  Model.set_objective m
    (Model.Linexpr.sum
       (List.init n (fun j ->
            Model.Linexpr.term (Datasets.Prng.range rng (-4.0) 4.0) vars.(j))));
  let input = Simplex.of_model m in
  let r = Simplex.solve ~core:Simplex.Sparse input in
  Alcotest.(check string) "status" "optimal" (Status.to_string r.Simplex.status);
  Alcotest.(check bool)
    "pivot sequence is long" true
    (r.Simplex.iterations > 30);
  let residual = ref 0.0 in
  Array.iteri
    (fun ri (terms, sense, rhs) ->
      ignore terms;
      let act = ref 0.0 in
      for j = 0 to n - 1 do
        act := !act +. (coeffs.(ri).(j) *. r.Simplex.x.(j))
      done;
      let v =
        match sense with
        | Model.Eq -> Float.abs (!act -. rhs)
        | Model.Le -> Float.max 0.0 (!act -. rhs)
        | Model.Ge -> Float.max 0.0 (rhs -. !act)
      in
      if v > !residual then residual := v)
    input.Simplex.rows;
  if !residual >= 1e-8 then
    Alcotest.failf "row residual %.3e exceeds 1e-8" !residual

(* ---- dual-simplex warm starts ---------------------------------------- *)

let textbook_input ~hiy =
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m ~hi:hiy "y" in
  Model.add_le m "c1" (Model.Linexpr.var x) 4.0;
  Model.add_le m "c2" (Model.Linexpr.term 2.0 y) 12.0;
  Model.add_le m "c3"
    (Model.Linexpr.add (Model.Linexpr.term 3.0 x) (Model.Linexpr.term 2.0 y))
    18.0;
  Model.set_objective m ~minimize:false
    (Model.Linexpr.add (Model.Linexpr.term 3.0 x) (Model.Linexpr.term 5.0 y));
  Simplex.of_model m

let test_warm_reopt_tightened () =
  (* Solve the textbook LP, save its basis, tighten y's upper bound below
     the optimal y = 6, and reoptimize warm: the dual simplex must land on
     the new optimum x = 10/3, y = 4 -> 30 without a cold restart. *)
  let base = textbook_input ~hiy:infinity in
  let r0 = Simplex.solve ~want_basis:true base in
  Alcotest.(check string) "base status" "optimal"
    (Status.to_string r0.Simplex.status);
  check_float "base obj" 36.0 r0.Simplex.obj_value;
  let basis =
    match r0.Simplex.basis with
    | Some b -> b
    | None -> Alcotest.fail "no basis exported"
  in
  let tightened = textbook_input ~hiy:4.0 in
  let rw = Simplex.solve ~warm:basis tightened in
  let rf = Simplex.solve tightened in
  Alcotest.(check string) "warm status" "optimal"
    (Status.to_string rw.Simplex.status);
  Alcotest.(check bool) "dual path used" true rw.Simplex.warm_started;
  check_float "warm obj" 30.0 rw.Simplex.obj_value;
  check_float "matches fresh" rf.Simplex.obj_value rw.Simplex.obj_value;
  check_float "warm x" rf.Simplex.x.(0) rw.Simplex.x.(0);
  check_float "warm y" rf.Simplex.x.(1) rw.Simplex.x.(1);
  (match Simplex.check_certificate tightened rw with
  | [] -> ()
  | errs -> Alcotest.failf "warm certificate: %s" (String.concat "; " errs))

let test_warm_detects_infeasible () =
  (* min x + y s.t. x + y >= 5 on [0,3]^2 is feasible; shrinking the box to
     [0,1]^2 makes it infeasible, which the warm path must certify. *)
  let build hi =
    let m = Model.create () in
    let x = Model.add_var m ~hi "x" and y = Model.add_var m ~hi "y" in
    Model.add_ge m "c" Model.Linexpr.(add (var x) (var y)) 5.0;
    Model.set_objective m Model.Linexpr.(add (var x) (var y));
    Simplex.of_model m
  in
  let r0 = Simplex.solve ~want_basis:true (build 3.0) in
  Alcotest.(check string) "base status" "optimal"
    (Status.to_string r0.Simplex.status);
  let basis = Option.get r0.Simplex.basis in
  let rw = Simplex.solve ~warm:basis (build 1.0) in
  Alcotest.(check string) "warm status" "infeasible"
    (Status.to_string rw.Simplex.status)

let test_warm_random_bound_changes () =
  (* Feasible-by-construction random LPs: save the optimal basis, tighten a
     random variable's upper bound, and check the warm reoptimization
     agrees with a fresh solve on status and objective.  At least some of
     the cases must actually take the dual path (not fall back cold). *)
  let rng = Datasets.Prng.create 42 in
  let warm_hits = ref 0 in
  for _case = 1 to 60 do
    let n = 2 + Datasets.Prng.int rng 5 in
    let rows = 1 + Datasets.Prng.int rng 5 in
    let x0 = Array.init n (fun _ -> Datasets.Prng.range rng 0.0 3.0) in
    let m = Model.create () in
    let vars =
      Array.init n (fun i -> Model.add_var m ~hi:5.0 (Printf.sprintf "v%d" i))
    in
    for r = 0 to rows - 1 do
      let e = ref Model.Linexpr.zero in
      let lhs = ref 0.0 in
      for j = 0 to n - 1 do
        let c = Datasets.Prng.range rng (-5.0) 5.0 in
        e := Model.Linexpr.add !e (Model.Linexpr.term c vars.(j));
        lhs := !lhs +. (c *. x0.(j))
      done;
      match Datasets.Prng.int rng 3 with
      | 0 -> Model.add_le m (Printf.sprintf "r%d" r) !e (!lhs +. 1.0)
      | 1 -> Model.add_ge m (Printf.sprintf "r%d" r) !e (!lhs -. 1.0)
      | _ -> Model.add_eq m (Printf.sprintf "r%d" r) !e !lhs
    done;
    Model.set_objective m
      (Model.Linexpr.sum
         (List.init n (fun j ->
              Model.Linexpr.term (Datasets.Prng.range rng (-4.0) 4.0) vars.(j))));
    let input = Simplex.of_model m in
    let r0 = Simplex.solve ~want_basis:true input in
    match (r0.Simplex.status, r0.Simplex.basis) with
    | Status.Optimal, Some basis ->
        let j = Datasets.Prng.int rng n in
        let hi' = Array.copy input.Simplex.hi in
        hi'.(j) <- Datasets.Prng.range rng 0.0 4.0;
        let tightened = { input with Simplex.hi = hi' } in
        let rw = Simplex.solve ~warm:basis tightened in
        let rf = Simplex.solve tightened in
        if rw.Simplex.status <> rf.Simplex.status then
          Alcotest.failf "status mismatch: warm %s, fresh %s"
            (Status.to_string rw.Simplex.status)
            (Status.to_string rf.Simplex.status);
        if rw.Simplex.status = Status.Optimal then begin
          if Float.abs (rw.Simplex.obj_value -. rf.Simplex.obj_value) > 1e-6
          then
            Alcotest.failf "objective mismatch: warm %.9g, fresh %.9g"
              rw.Simplex.obj_value rf.Simplex.obj_value;
          match Simplex.check_certificate tightened rw with
          | [] -> ()
          | errs ->
              Alcotest.failf "warm certificate: %s" (String.concat "; " errs)
        end;
        if rw.Simplex.warm_started then incr warm_hits
    | _ -> ()
  done;
  Alcotest.(check bool) "dual path exercised" true (!warm_hits > 0)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "textbook max LP" `Quick test_textbook;
    Alcotest.test_case "equality rows" `Quick test_equality_rows;
    Alcotest.test_case "bound flip to upper" `Quick test_bound_flip;
    Alcotest.test_case "negative lower bounds" `Quick test_negative_lower_bounds;
    Alcotest.test_case "infeasible detection" `Quick test_infeasible;
    Alcotest.test_case "unbounded detection" `Quick test_unbounded;
    Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
    Alcotest.test_case "degenerate constraints" `Quick test_degenerate;
    Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
    Alcotest.test_case "objective constant" `Quick test_objective_constant;
    Alcotest.test_case "free variable" `Quick test_free_variable;
    Alcotest.test_case "transportation duals" `Quick test_duals_transportation;
    Alcotest.test_case "warm reopt after tightening" `Quick
      test_warm_reopt_tightened;
    Alcotest.test_case "warm detects infeasible" `Quick
      test_warm_detects_infeasible;
    Alcotest.test_case "warm random bound changes" `Quick
      test_warm_random_bound_changes;
    Alcotest.test_case "eta refactorization drift" `Quick
      test_eta_refactorization_drift;
    q prop_random_feasible;
  ]
