(* Scale smoke (@scale-smoke): the two-domain equivalence suite.

   Part 1 — solver: seeded random generalized-assignment MILPs solved at
   workers=1 (the deterministic sequential search) and workers=2 under a
   seeded adversarial steal script; statuses and optimal objectives must
   agree on every instance.  On single-core hosts the two-worker request
   clamps down and the check degenerates to determinism — still worth
   running, and on multicore CI it exercises real concurrent stealing.

   Part 2 — pool: one batch of line-estate jobs through Service.Pool at
   workers=0 (inline) and workers=2; the NDJSON result lines must be
   byte-identical once delivery-only fields are stripped.

   Exits non-zero on the first disagreement. *)

module Prng = Datasets.Prng

let le = Lp.Model.Linexpr.sum

let random_gap rng =
  let groups = 3 + Prng.int rng 5 in
  let dcs = 2 + Prng.int rng 2 in
  let m = Lp.Model.create () in
  let x =
    Array.init groups (fun i ->
        Array.init dcs (fun j ->
            Lp.Model.add_var m ~binary:true (Printf.sprintf "x_%d_%d" i j)))
  in
  let sizes = Array.init groups (fun _ -> 1.0 +. Prng.range rng 0.0 4.0) in
  for i = 0 to groups - 1 do
    Lp.Model.add_eq m
      (Printf.sprintf "assign%d" i)
      (le (Array.to_list (Array.map Lp.Model.Linexpr.var x.(i))))
      1.0
  done;
  let total = Array.fold_left ( +. ) 0.0 sizes in
  let cap = total /. float_of_int dcs *. Prng.range rng 0.95 1.4 in
  for j = 0 to dcs - 1 do
    Lp.Model.add_le m
      (Printf.sprintf "cap%d" j)
      (le
         (List.init groups (fun i ->
              Lp.Model.Linexpr.term sizes.(i) x.(i).(j))))
      cap
  done;
  Lp.Model.set_objective m
    (le
       (List.concat_map
          (fun i ->
            List.init dcs (fun j ->
                Lp.Model.Linexpr.term
                  (1.0 +. Prng.range rng 0.0 9.0)
                  x.(i).(j)))
          (List.init groups Fun.id)));
  m

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let solver_part () =
  let rng = Prng.create 0x5CA1E in
  let script_rng = Prng.create 0xBEEF in
  let trees = ref 0 in
  for case = 1 to 40 do
    let m = random_gap rng in
    let opts =
      { Lp.Milp.default_options with Lp.Milp.dive_first = false }
    in
    let seq = Lp.Milp.solve ~options:opts m in
    let script = Array.init 8 (fun _ -> Prng.int script_rng 2) in
    let steal_order ~thief ~round =
      script.((thief + round) mod Array.length script)
    in
    let par =
      Lp.Milp.solve
        ~options:{ opts with Lp.Milp.workers = 2 }
        ~steal_order m
    in
    if par.Lp.Milp.status <> seq.Lp.Milp.status then
      fail "scale-smoke: case %d status %s (w2) vs %s (w1)" case
        (Lp.Status.to_string par.Lp.Milp.status)
        (Lp.Status.to_string seq.Lp.Milp.status);
    if
      seq.Lp.Milp.status = Lp.Status.Optimal
      && Float.abs (par.Lp.Milp.obj -. seq.Lp.Milp.obj)
         > 1e-6 *. (1.0 +. Float.abs seq.Lp.Milp.obj)
    then
      fail "scale-smoke: case %d objective %.9g (w2) vs %.9g (w1)" case
        par.Lp.Milp.obj seq.Lp.Milp.obj;
    if seq.Lp.Milp.nodes > 1 then incr trees
  done;
  if !trees = 0 then fail "scale-smoke: no instance opened a tree";
  !trees

let strip_delivery json =
  match json with
  | Service.Json.Obj fields ->
      Service.Json.Obj
        (List.filter
           (fun (k, _) -> k <> "queue_s" && k <> "solve_s" && k <> "cache")
           fields)
  | j -> j

let pool_part () =
  let jobs =
    List.concat_map
      (fun penalty ->
        List.map
          (fun frac ->
            Service.Job.v
              ~milp:
                {
                  Service.Job.no_overrides with
                  Service.Job.node_limit = Some 2;
                  time_limit = Some 20.0;
                }
              (Harness.Line_jobs.estate ~penalty
                 {
                   Harness.Line_estate.default with
                   Harness.Line_estate.n_groups = 10;
                   frac_at_0 = frac;
                   latency_penalty = Harness.Line_estate.banded_penalty penalty;
                 }))
          [ 0.0; 0.5; 1.0 ])
      [ 0.0; 80.0 ]
  in
  let lines workers =
    Service.Pool.with_pool ~workers ~cache_capacity:16 (fun pool ->
        List.map
          (fun r ->
            Service.Json.to_string
              (strip_delivery (Service.Batch.result_to_json r)))
          (Service.Pool.run_batch pool jobs))
  in
  let seq = lines 0 and par = lines 2 in
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        fail "scale-smoke: pool line %d differs\n  w0: %s\n  w2: %s" i a b)
    (List.combine seq par);
  List.length seq

let () =
  let trees = solver_part () in
  let jobs = pool_part () in
  Printf.printf
    "scale-smoke: 40 MILPs agree at w1/w2 (%d with real trees), %d pool \
     jobs byte-identical at w0/w2 (host domains: %d)\n"
    trees jobs
    (Domain.recommended_domain_count ())
