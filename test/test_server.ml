(* The HTTP layer: wire-protocol parsing over socketpairs, and the full
   server (routes, backpressure, duplex /batch streaming) over loopback
   sockets. *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

(* Parse the request found in [text] (written on one end of a pair, read
   on the other). *)
let parse ?limits text f =
  with_socketpair (fun wr rd ->
      write_all wr text;
      Unix.shutdown wr Unix.SHUTDOWN_SEND;
      let conn = Server.Http.conn_of_fd ?limits rd in
      f conn)

let test_parse_request () =
  parse
    "POST /solve?x=1 HTTP/1.1\r\nHost: h\r\nContent-Type:  application/json \r\nContent-Length: 5\r\n\r\nhello"
    (fun conn ->
      match Server.Http.read_request conn with
      | None -> Alcotest.fail "no request"
      | Some req ->
          Alcotest.(check bool) "method" true (req.Server.Http.meth = Server.Http.POST);
          Alcotest.(check string) "path" "/solve" req.Server.Http.path;
          Alcotest.(check string) "query" "x=1" req.Server.Http.query;
          Alcotest.(check (option string)) "header folded to lowercase"
            (Some "application/json")
            (Server.Http.header req "Content-Type");
          Alcotest.(check bool) "1.1 keep-alive default" true
            (Server.Http.keep_alive req);
          let body = Server.Http.body_of_request conn req in
          Alcotest.(check string) "fixed body" "hello"
            (Server.Http.read_all body);
          (* After the body the connection is cleanly at EOF. *)
          Alcotest.(check bool) "eof" true (Server.Http.read_request conn = None))

let test_parse_chunked () =
  parse
    "POST /batch HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=z\r\nab\ncd\r\n3\r\nef\n\r\n0\r\nX-Trailer: t\r\n\r\n"
    (fun conn ->
      match Server.Http.read_request conn with
      | None -> Alcotest.fail "no request"
      | Some req ->
          let body = Server.Http.body_of_request conn req in
          Alcotest.(check (option string)) "line 1" (Some "ab")
            (Server.Http.read_line body);
          Alcotest.(check (option string)) "line 2" (Some "cdef")
            (Server.Http.read_line body);
          Alcotest.(check (option string)) "end" None
            (Server.Http.read_line body))

let test_keep_alive_negotiation () =
  let req ?(version = "HTTP/1.1") headers =
    { Server.Http.meth = Server.Http.GET; path = "/"; query = "";
      version; headers }
  in
  Alcotest.(check bool) "1.1 default on" true
    (Server.Http.keep_alive (req []));
  Alcotest.(check bool) "1.1 close" false
    (Server.Http.keep_alive (req [ ("connection", "close") ]));
  Alcotest.(check bool) "1.0 default off" false
    (Server.Http.keep_alive (req ~version:"HTTP/1.0" []));
  Alcotest.(check bool) "1.0 keep-alive" true
    (Server.Http.keep_alive
       (req ~version:"HTTP/1.0" [ ("connection", "Keep-Alive") ]))

let test_limits () =
  let limits =
    { Server.Http.default_limits with Server.Http.max_body = 8 }
  in
  (* Declared length over the cap rejects before reading the body. *)
  parse ~limits "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"
    (fun conn ->
      match Server.Http.read_request conn with
      | None -> Alcotest.fail "no request"
      | Some req -> (
          match Server.Http.body_of_request conn req with
          | exception Server.Http.Payload_too_large -> ()
          | _ -> Alcotest.fail "oversized content-length accepted"));
  (* Chunked bodies only reveal their size as they stream: the cap fires
     mid-read. *)
  parse ~limits
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n9\r\n123456789\r\n0\r\n\r\n"
    (fun conn ->
      match Server.Http.read_request conn with
      | None -> Alcotest.fail "no request"
      | Some req -> (
          let body = Server.Http.body_of_request conn req in
          match Server.Http.read_all body with
          | exception Server.Http.Payload_too_large -> ()
          | _ -> Alcotest.fail "oversized chunked body accepted"));
  (* Garbage request lines raise Bad_request, they don't loop. *)
  parse "not an http request at all\r\n\r\n" (fun conn ->
      match Server.Http.read_request conn with
      | exception Server.Http.Bad_request _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

(* ------------------------------------------------- full-server harness *)

let job_line ?(id = "j") ?(penalty = 0) () =
  Printf.sprintf
    {|{"id":"%s","estate":{"kind":"line","n_groups":12,"penalty":%d},"milp":{"nodes":2,"time":20}}|}
    id penalty

let with_server ?(workers = 1) ?(queue = 64) ?max_conns ?idle_timeout f =
  Service.Pool.with_pool ~workers ~queue_capacity:queue (fun pool ->
      let server =
        Server.Daemon.create ~port:0 ~drain_timeout:5.0 ?max_conns
          ?idle_timeout ~resolve:Harness.Line_jobs.resolve ~pool ()
      in
      let th = Thread.create Server.Daemon.run server in
      Fun.protect
        ~finally:(fun () ->
          Server.Daemon.request_stop server;
          Thread.join th)
        (fun () -> f pool server))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* A stuck test should fail with a timeout error, not hang CI. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
  fd

(* Read the response head; returns (status, headers) with the reader
   positioned at the body. *)
let read_head ic =
  let status_line = input_line ic in
  let status =
    match String.split_on_char ' ' (String.trim status_line) with
    | _ :: code :: _ -> int_of_string code
    | _ -> Alcotest.failf "bad status line %S" status_line
  in
  let rec headers acc =
    match String.trim (input_line ic) with
    | "" -> List.rev acc
    | line -> (
        match String.index_opt line ':' with
        | None -> headers acc
        | Some i ->
            headers
              ((String.lowercase_ascii (String.sub line 0 i),
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
              :: acc))
  in
  (status, headers [])

(* One chunk of a chunked response body; [None] on the final 0-chunk. *)
let read_chunk ic =
  let size_line = String.trim (input_line ic) in
  let n = int_of_string ("0x" ^ size_line) in
  if n = 0 then begin
    (try ignore (input_line ic) with End_of_file -> ());
    None
  end
  else begin
    let data = really_input_string ic n in
    ignore (input_line ic);  (* chunk-terminating CRLF *)
    Some data
  end

let simple_request port text =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      write_all fd text;
      let ic = Unix.in_channel_of_descr fd in
      let status, headers = read_head ic in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some n -> really_input_string ic (int_of_string n)
        | None ->
            let buf = Buffer.create 256 in
            let rec go () =
              match read_chunk ic with
              | Some c ->
                  Buffer.add_string buf c;
                  go ()
              | None -> ()
            in
            (match List.assoc_opt "transfer-encoding" headers with
            | Some "chunked" -> go ()
            | _ -> ());
            Buffer.contents buf
      in
      (status, headers, body))

let post port path body =
  simple_request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s"
       path (String.length body) body)

let test_solve_roundtrip () =
  with_server (fun _pool server ->
      let port = Server.Daemon.port server in
      let status, _, body = post port "/solve" (job_line ~id:"http1" ()) in
      Alcotest.(check int) "200" 200 status;
      match Service.Json.parse (String.trim body) with
      | Error m -> Alcotest.failf "bad body %S: %s" body m
      | Ok j ->
          Alcotest.(check (option string)) "solved" (Some "ok")
            (Option.bind (Service.Json.member "code" j) Service.Json.to_str);
          Alcotest.(check (option string)) "id echoed" (Some "http1")
            (Option.bind (Service.Json.member "id" j) Service.Json.to_str);
          Alcotest.(check bool) "has placement" true
            (Service.Json.member "placement" j <> None))

let test_solve_rejects_bad_specs () =
  with_server (fun _pool server ->
      let port = Server.Daemon.port server in
      let status, _, _ = post port "/solve" "this is not json" in
      Alcotest.(check int) "non-JSON body is 400" 400 status;
      let status, _, _ = post port "/solve" {|{"id":"x"}|} in
      Alcotest.(check int) "missing estate is 400" 400 status;
      let status, _, _ = post port "/nowhere" "{}" in
      Alcotest.(check int) "unknown route is 404" 404 status;
      let status, _, _ =
        simple_request port "DELETE /solve HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
      in
      Alcotest.(check int) "wrong method is 405" 405 status)

(* The tentpole streaming property: /batch result lines must arrive
   while the request body is still open — the response cannot wait for
   the final byte of the request. *)
let test_batch_streams_before_eof () =
  with_server ~workers:1 (fun _pool server ->
      let port = Server.Daemon.port server in
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          write_all fd
            "POST /batch HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
          let chunk s =
            write_all fd
              (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)
          in
          (* First two jobs go out; the body stays open. *)
          chunk (job_line ~id:"w1" () ^ "\n");
          chunk (job_line ~id:"w2" ~penalty:40 () ^ "\n");
          let ic = Unix.in_channel_of_descr fd in
          let status, _headers = read_head ic in
          Alcotest.(check int) "200" 200 status;
          let read_result_line () =
            match read_chunk ic with
            | Some data -> String.trim data
            | None -> Alcotest.fail "response ended early"
          in
          (* These two reads would deadlock if the server buffered the
             whole request body before answering: we haven't sent the
             terminating chunk yet. *)
          let l1 = read_result_line () in
          let l2 = read_result_line () in
          let id_of line =
            match Service.Json.parse line with
            | Ok j ->
                Option.value ~default:"?"
                  (Option.bind (Service.Json.member "id" j)
                     Service.Json.to_str)
            | Error m -> Alcotest.failf "bad result line %S: %s" line m
          in
          Alcotest.(check string) "first result before body EOF" "w1"
            (id_of l1);
          Alcotest.(check string) "second result before body EOF" "w2"
            (id_of l2);
          (* Now finish the request and collect the third result. *)
          chunk (job_line ~id:"w3" ~penalty:80 () ^ "\n");
          write_all fd "0\r\n\r\n";
          let l3 = read_result_line () in
          Alcotest.(check string) "third result after resume" "w3" (id_of l3);
          Alcotest.(check (option string)) "stream closed" None
            (read_chunk ic)))

let line_milp =
  {
    Service.Job.no_overrides with
    Service.Job.node_limit = Some 2;
    time_limit = Some 20.0;
  }

let test_solve_backpressure_503 () =
  (* workers=1 and a queue of 1: one slow job on the worker and one in
     the queue leave no room, so /solve must shed with 503 rather than
     block the connection. *)
  with_server ~workers:1 ~queue:1 (fun pool server ->
      let port = Server.Daemon.port server in
      let slow key =
        Service.Job.v ~milp:line_milp
          (Service.Job.Inline
             {
               key;
               build =
                 (fun () ->
                   Unix.sleepf 0.6;
                   Harness.Line_estate.make
                     { Harness.Line_estate.default with
                       Harness.Line_estate.n_groups = 12 });
             })
      in
      let t1 = Service.Pool.submit pool (slow "slow-a") in
      let t2 = Service.Pool.submit pool (slow "slow-b") in
      let status, headers, _ = post port "/solve" (job_line ()) in
      Alcotest.(check int) "503 when queue full" 503 status;
      Alcotest.(check bool) "retry-after set" true
        (List.assoc_opt "retry-after" headers <> None);
      ignore (Service.Pool.await t1);
      ignore (Service.Pool.await t2);
      let status, _, _ = post port "/solve" (job_line ()) in
      Alcotest.(check int) "accepted once drained" 200 status)

(* Two requests in one TCP segment: after answering the first, the
   fiber must find the second already sitting in its connection buffer
   instead of parking for a readiness event that will never come. *)
let test_keepalive_pipelined () =
  with_server (fun _pool server ->
      let port = Server.Daemon.port server in
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          let req id =
            let body = job_line ~id () in
            Printf.sprintf
              "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
              (String.length body) body
          in
          write_all fd (req "p1" ^ req "p2");
          let ic = Unix.in_channel_of_descr fd in
          let read_one expect_id =
            let status, headers = read_head ic in
            Alcotest.(check int) "200" 200 status;
            let body =
              match List.assoc_opt "content-length" headers with
              | Some n -> really_input_string ic (int_of_string n)
              | None -> Alcotest.fail "expected content-length"
            in
            match Service.Json.parse (String.trim body) with
            | Ok j ->
                Alcotest.(check (option string)) "id" (Some expect_id)
                  (Option.bind (Service.Json.member "id" j)
                     Service.Json.to_str)
            | Error m -> Alcotest.failf "bad body: %s" m
          in
          read_one "p1";
          read_one "p2"))

(* Slow-loris defence: a connection stalled mid-request-head is evicted
   at the idle deadline with a 408 (no response bytes were in flight)
   and closed. *)
let test_idle_timeout_evicts () =
  with_server ~idle_timeout:0.3 (fun _pool server ->
      let port = Server.Daemon.port server in
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          write_all fd "POST /solve HTTP/1.1\r\nHost: t\r\n";
          let ic = Unix.in_channel_of_descr fd in
          let status, headers = read_head ic in
          Alcotest.(check int) "408 on idle eviction" 408 status;
          (match List.assoc_opt "content-length" headers with
          | Some n -> ignore (really_input_string ic (int_of_string n))
          | None -> ());
          Alcotest.(check bool) "connection closed after 408" true
            (match input_char ic with
            | _ -> false
            | exception End_of_file -> true)))

(* Connections beyond --max-conns are answered 503 + Retry-After and
   closed without ever reaching a fiber; closing the occupying
   connection frees the slot. *)
let test_max_conns_503 () =
  with_server ~max_conns:1 (fun _pool server ->
      let port = Server.Daemon.port server in
      let fd1 = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd1 with _ -> ())
        (fun () ->
          (* Occupy the only slot with a completed keep-alive request, so
             the connection is adopted and stays live. *)
          let body = job_line ~id:"occupant" () in
          write_all fd1
            (Printf.sprintf
               "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
               (String.length body) body);
          let ic1 = Unix.in_channel_of_descr fd1 in
          let status, headers = read_head ic1 in
          Alcotest.(check int) "occupant 200" 200 status;
          (match List.assoc_opt "content-length" headers with
          | Some n -> ignore (really_input_string ic1 (int_of_string n))
          | None -> Alcotest.fail "expected content-length");
          let fd2 = connect port in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd2 with _ -> ())
            (fun () ->
              let ic2 = Unix.in_channel_of_descr fd2 in
              let status, headers = read_head ic2 in
              Alcotest.(check int) "over-cap conn is 503" 503 status;
              Alcotest.(check bool) "retry-after set" true
                (List.assoc_opt "retry-after" headers <> None)));
      (* fd1 is closed by the Fun.protect finaliser above; give the
         reactor a beat to cull the connection, then check the slot is
         free again. *)
      Unix.sleepf 0.5;
      let status, _, _ = post port "/solve" (job_line ~id:"after" ()) in
      Alcotest.(check int) "accepted after slot freed" 200 status)

(* /sweep: a chunked NDJSON stream, one line per grid point in grid
   order, closed by the frontier line; a second identical sweep is
   served point-for-point from the plan cache. *)
let sweep_body =
  {|{"id":"sw","estate":{"kind":"line","n_groups":12,"penalty":40},"milp":{"nodes":2,"time":20},"grid":{"radius_km":[null,50]}}|}

let test_sweep_roundtrip () =
  with_server (fun _pool server ->
      let port = Server.Daemon.port server in
      let run_sweep () =
        let status, headers, body = post port "/sweep" sweep_body in
        Alcotest.(check int) "200" 200 status;
        Alcotest.(check (option string)) "chunked" (Some "chunked")
          (List.assoc_opt "transfer-encoding" headers);
        List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' body)
      in
      let lines = run_sweep () in
      Alcotest.(check int) "2 points + frontier" 3 (List.length lines);
      let parsed =
        List.map
          (fun l ->
            match Service.Json.parse l with
            | Ok j -> j
            | Error m -> Alcotest.failf "bad sweep line %S: %s" l m)
          lines
      in
      let member k j = Option.bind (Service.Json.member k j) Service.Json.to_str in
      Alcotest.(check (list (option string))) "grid-order tags"
        [ Some "r=-;c=1;w=-;om=-;l=-"; Some "r=50;c=1;w=-;om=-;l=-"; None ]
        (List.map (member "tag") parsed);
      let last = List.nth parsed 2 in
      Alcotest.(check bool) "frontier line closes the stream" true
        (Service.Json.member "frontier" last <> None);
      (* Repeat: every point must come back as a cache hit. *)
      let again = run_sweep () in
      List.iteri
        (fun i l ->
          if i < 2 then
            Alcotest.(check bool)
              (Printf.sprintf "point %d served from cache" i)
              true
              (Astring_contains.contains l {|"cache":"hit"|}))
        again;
      (* Bad requests are shed before any stream bytes. *)
      let status, _, _ = post port "/sweep" "not json" in
      Alcotest.(check int) "malformed sweep is 400" 400 status;
      let status, _, _ =
        post port "/sweep"
          {|{"estate":{"kind":"line","n_groups":12},"grid":{"omega":"x"}}|}
      in
      Alcotest.(check int) "malformed grid is 400" 400 status;
      let status, _, _ =
        simple_request port
          "GET /sweep HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
      in
      Alcotest.(check int) "GET /sweep is 405" 405 status)

let test_sweep_backpressure_503 () =
  (* Same shedding contract as /solve: with the worker and queue both
     occupied, /sweep must answer 503 + Retry-After before any stream
     bytes rather than block the reactor. *)
  with_server ~workers:1 ~queue:1 (fun pool server ->
      let port = Server.Daemon.port server in
      let slow key =
        Service.Job.v ~milp:line_milp
          (Service.Job.Inline
             {
               key;
               build =
                 (fun () ->
                   Unix.sleepf 0.6;
                   Harness.Line_estate.make
                     { Harness.Line_estate.default with
                       Harness.Line_estate.n_groups = 12 });
             })
      in
      let t1 = Service.Pool.submit pool (slow "slow-a") in
      let t2 = Service.Pool.submit pool (slow "slow-b") in
      let status, headers, _ = post port "/sweep" sweep_body in
      Alcotest.(check int) "503 when queue full" 503 status;
      Alcotest.(check bool) "retry-after set" true
        (List.assoc_opt "retry-after" headers <> None);
      ignore (Service.Pool.await t1);
      ignore (Service.Pool.await t2);
      let status, _, _ = post port "/sweep" sweep_body in
      Alcotest.(check int) "accepted once drained" 200 status)

let suite =
  [
    Alcotest.test_case "http: request parsing" `Quick test_parse_request;
    Alcotest.test_case "http: chunked bodies" `Quick test_parse_chunked;
    Alcotest.test_case "http: keep-alive negotiation" `Quick
      test_keep_alive_negotiation;
    Alcotest.test_case "http: limits and bad requests" `Quick test_limits;
    Alcotest.test_case "server: /solve roundtrip" `Slow test_solve_roundtrip;
    Alcotest.test_case "server: /solve input validation" `Slow
      test_solve_rejects_bad_specs;
    Alcotest.test_case "server: /batch streams before request EOF" `Slow
      test_batch_streams_before_eof;
    Alcotest.test_case "server: /solve backpressure 503" `Slow
      test_solve_backpressure_503;
    Alcotest.test_case "server: keep-alive pipelined requests" `Slow
      test_keepalive_pipelined;
    Alcotest.test_case "server: idle timeout evicts slow-loris" `Slow
      test_idle_timeout_evicts;
    Alcotest.test_case "server: max-conns overflow is 503" `Slow
      test_max_conns_503;
    Alcotest.test_case "server: /sweep streams points and frontier" `Slow
      test_sweep_roundtrip;
    Alcotest.test_case "server: /sweep backpressure 503" `Slow
      test_sweep_backpressure_503;
  ]
