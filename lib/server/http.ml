type meth = GET | POST | HEAD | Other of string

type request = {
  meth : meth;
  path : string;
  query : string;
  version : string;
  headers : (string * string) list;
}

type limits = { max_request_line : int; max_headers : int; max_body : int }

let default_limits =
  { max_request_line = 8192; max_headers = 128; max_body = 8 * 1024 * 1024 }

exception Bad_request of string
exception Payload_too_large

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* ------------------------------------------------------ buffered reads *)

type conn = {
  source : Bytes.t -> int -> int -> int;  (* read bytes; 0 = EOF *)
  buf : Bytes.t;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  limits : limits;
}

let conn_of_source ?(limits = default_limits) source =
  { source; buf = Bytes.create 16384; pos = 0; len = 0; limits }

let conn_of_fd ?limits fd =
  conn_of_source ?limits (fun buf off len -> Unix.read fd buf off len)

(* Refill returns false at EOF.  A source may legitimately return short
   counts (partial TCP segments, fault-injected reads); only 0 ends the
   stream. *)
let refill c =
  if c.pos < c.len then true
  else begin
    c.pos <- 0;
    c.len <- 0;
    let n = c.source c.buf 0 (Bytes.length c.buf) in
    if n = 0 then false
    else begin
      c.len <- n;
      true
    end
  end

let read_byte c =
  if refill c then begin
    let b = Bytes.get c.buf c.pos in
    c.pos <- c.pos + 1;
    Some b
  end
  else None

(* One CRLF- (or bare-LF-) terminated protocol line, terminator dropped.
   [None] only when EOF arrives before any byte. *)
let read_crlf_line c =
  let buf = Buffer.create 64 in
  let rec go () =
    match read_byte c with
    | None -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | Some '\n' ->
        let s = Buffer.contents buf in
        let n = String.length s in
        Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | Some ch ->
        if Buffer.length buf >= c.limits.max_request_line then
          bad "header line exceeds %d bytes" c.limits.max_request_line;
        Buffer.add_char buf ch;
        go ()
  in
  go ()

(* ------------------------------------------------------ request parsing *)

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let meth_of_string = function
  | "GET" -> GET
  | "POST" -> POST
  | "HEAD" -> HEAD
  | m -> Other m

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ m; target; version ] ->
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        bad "unsupported version %S" version;
      let path, query = split_on_first '?' target in
      if path = "" || path.[0] <> '/' then bad "bad request target %S" target;
      (meth_of_string m, path, query, version)
  | _ -> bad "malformed request line %S" line

let parse_header line =
  let name, value = split_on_first ':' line in
  if name = "" || String.exists (fun ch -> ch = ' ' || ch = '\t') name then
    bad "malformed header %S" line;
  (String.lowercase_ascii name, String.trim value)

let read_request c =
  (* Tolerate one leading empty line (robustness the RFC recommends). *)
  let rec first_line tries =
    match read_crlf_line c with
    | None -> None
    | Some "" when tries > 0 -> first_line (tries - 1)
    | Some "" -> bad "empty request line"
    | Some line -> Some line
  in
  match first_line 1 with
  | None -> None
  | Some line ->
      let meth, path, query, version = parse_request_line line in
      let rec headers acc n =
        if n > c.limits.max_headers then bad "too many headers";
        match read_crlf_line c with
        | None -> bad "connection closed inside headers"
        | Some "" -> List.rev acc
        | Some line -> headers (parse_header line :: acc) (n + 1)
      in
      Some { meth; path; query; version; headers = headers [] 0 }

let header r name = List.assoc_opt (String.lowercase_ascii name) r.headers

let keep_alive r =
  let conn_tokens =
    match header r "connection" with
    | None -> []
    | Some v ->
        String.split_on_char ',' v
        |> List.map (fun t -> String.lowercase_ascii (String.trim t))
  in
  if List.mem "close" conn_tokens then false
  else if r.version = "HTTP/1.1" then true
  else List.mem "keep-alive" conn_tokens

(* --------------------------------------------------------------- bodies *)

type body_mode =
  | Fixed of int  (* bytes remaining *)
  | Chunk_header  (* chunked: expect a size line next *)
  | Chunk_data of int  (* chunked: bytes remaining in the current chunk *)
  | Done

type body = { bconn : conn; mutable mode : body_mode; mutable total : int }

let body_of_request c r =
  let te =
    Option.map String.lowercase_ascii (header r "transfer-encoding")
  in
  match te with
  | Some "chunked" -> { bconn = c; mode = Chunk_header; total = 0 }
  | Some other -> bad "unsupported transfer-encoding %S" other
  | None -> (
      match header r "content-length" with
      | None -> { bconn = c; mode = Done; total = 0 }
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 ->
              if n > c.limits.max_body then raise Payload_too_large;
              { bconn = c; mode = (if n = 0 then Done else Fixed n); total = 0 }
          | _ -> bad "bad content-length %S" v))

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Some (Char.code ch - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code ch - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code ch - Char.code 'A' + 10)
  | _ -> None

let parse_chunk_size line =
  (* Chunk extensions (";...") are allowed and ignored. *)
  let line, _ext = split_on_first ';' line in
  let line = String.trim line in
  if line = "" then bad "empty chunk size";
  let n =
    String.fold_left
      (fun acc ch ->
        match hex_digit ch with
        | Some d when acc <= 0x0FFF_FFFF -> (acc lsl 4) lor d
        | _ -> bad "bad chunk size %S" line)
      0 line
  in
  n

let rec body_byte b =
  match b.mode with
  | Done -> None
  | Fixed n -> (
      match read_byte b.bconn with
      | None -> bad "connection closed inside body"
      | Some ch ->
          b.mode <- (if n = 1 then Done else Fixed (n - 1));
          account b ch)
  | Chunk_header -> (
      match read_crlf_line b.bconn with
      | None -> bad "connection closed inside chunked body"
      | Some line ->
          let n = parse_chunk_size line in
          if n = 0 then begin
            (* Trailer section: lines until the blank terminator. *)
            let rec trailers () =
              match read_crlf_line b.bconn with
              | None -> bad "connection closed inside trailers"
              | Some "" -> ()
              | Some _ -> trailers ()
            in
            trailers ();
            b.mode <- Done;
            None
          end
          else begin
            b.mode <- Chunk_data n;
            body_byte b
          end)
  | Chunk_data n -> (
      match read_byte b.bconn with
      | None -> bad "connection closed inside chunk"
      | Some ch ->
          (if n = 1 then begin
             (* Consume the CRLF that closes every chunk. *)
             (match read_byte b.bconn with
             | Some '\r' -> (
                 match read_byte b.bconn with
                 | Some '\n' -> ()
                 | _ -> bad "missing LF after chunk")
             | Some '\n' -> ()
             | _ -> bad "missing CRLF after chunk");
             b.mode <- Chunk_header
           end
           else b.mode <- Chunk_data (n - 1));
          account b ch)

and account b ch =
  b.total <- b.total + 1;
  if b.total > b.bconn.limits.max_body then raise Payload_too_large;
  Some ch

let read_line b =
  let buf = Buffer.create 128 in
  let rec go () =
    match body_byte b with
    | None -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | Some '\n' ->
        let s = Buffer.contents buf in
        let n = String.length s in
        Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | Some ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let read_all b =
  let buf = Buffer.create 1024 in
  let rec go () =
    match body_byte b with
    | None -> Buffer.contents buf
    | Some ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let drain b =
  let rec go () = match body_byte b with None -> () | Some _ -> go () in
  go ()

(* -------------------------------------------------------------- writing *)

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | n when n >= 200 && n < 300 -> "OK"
  | n when n >= 400 && n < 500 -> "Client Error"
  | _ -> "Error"

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = Unix.write fd b off (n - off) in
      go (off + w)
  in
  go 0

let head ~status ~headers ~keep_alive extra =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    (headers @ extra);
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n" else "Connection: close\r\n");
  Buffer.add_string buf "\r\n";
  buf

let write_response fd ~status ?(headers = []) ?(keep_alive = true) body =
  let buf =
    head ~status ~headers ~keep_alive
      [ ("Content-Length", string_of_int (String.length body)) ]
  in
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

type chunked = { cfd : Unix.file_descr; mutable finished : bool }

let start_chunked fd ~status ?(headers = []) ?(keep_alive = true) () =
  let buf =
    head ~status ~headers ~keep_alive [ ("Transfer-Encoding", "chunked") ]
  in
  write_all fd (Buffer.contents buf);
  { cfd = fd; finished = false }

let write_chunk c s =
  if (not c.finished) && String.length s > 0 then
    write_all c.cfd
      (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

let finish_chunked c =
  if not c.finished then begin
    c.finished <- true;
    write_all c.cfd "0\r\n\r\n"
  end
