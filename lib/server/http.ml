type meth = GET | POST | HEAD | Other of string

type request = {
  meth : meth;
  path : string;
  query : string;
  version : string;
  headers : (string * string) list;
}

type limits = { max_request_line : int; max_headers : int; max_body : int }

let default_limits =
  { max_request_line = 8192; max_headers = 128; max_body = 8 * 1024 * 1024 }

exception Bad_request of string
exception Payload_too_large

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* ------------------------------------------------------ buffered reads *)

type conn = {
  source : Bytes.t -> int -> int -> int;  (* read bytes; 0 = EOF *)
  buf : Bytes.t;
  mutable pos : int;  (* next unread byte in [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  limits : limits;
  (* Reused across every request on the connection, so keep-alive
     traffic allocates no fresh buffers per request.  Two scratches
     because body-line accumulation ([read_line]) interleaves with
     protocol-line reads (chunk size lines) on chunked bodies. *)
  line_scratch : Buffer.t;
  body_scratch : Buffer.t;
}

let conn_of_source ?(limits = default_limits) ?buf source =
  let buf = match buf with Some b -> b | None -> Bytes.create 16384 in
  {
    source;
    buf;
    pos = 0;
    len = 0;
    limits;
    line_scratch = Buffer.create 256;
    body_scratch = Buffer.create 1024;
  }

let conn_of_fd ?limits ?buf fd =
  conn_of_source ?limits ?buf (fun buf off len -> Unix.read fd buf off len)

(* Unconsumed bytes already sitting in the connection buffer: the
   reactor's /batch loop uses this to read ahead without suspending. *)
let buffered c = c.pos < c.len

(* Refill returns false at EOF.  A source may legitimately return short
   counts (partial TCP segments, fault-injected reads); only 0 ends the
   stream. *)
let refill c =
  if c.pos < c.len then true
  else begin
    c.pos <- 0;
    c.len <- 0;
    let n = c.source c.buf 0 (Bytes.length c.buf) in
    if n = 0 then false
    else begin
      c.len <- n;
      true
    end
  end

let read_byte c =
  if refill c then begin
    let b = Bytes.get c.buf c.pos in
    c.pos <- c.pos + 1;
    Some b
  end
  else None

(* One CRLF- (or bare-LF-) terminated protocol line, terminator dropped.
   [None] only when EOF arrives before any byte. *)
let read_crlf_line c =
  let buf = c.line_scratch in
  Buffer.clear buf;
  let rec go () =
    match read_byte c with
    | None -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | Some '\n' ->
        let s = Buffer.contents buf in
        let n = String.length s in
        Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | Some ch ->
        if Buffer.length buf >= c.limits.max_request_line then
          bad "header line exceeds %d bytes" c.limits.max_request_line;
        Buffer.add_char buf ch;
        go ()
  in
  go ()

(* ------------------------------------------------------ request parsing *)

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let meth_of_string = function
  | "GET" -> GET
  | "POST" -> POST
  | "HEAD" -> HEAD
  | m -> Other m

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ m; target; version ] ->
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        bad "unsupported version %S" version;
      let path, query = split_on_first '?' target in
      if path = "" || path.[0] <> '/' then bad "bad request target %S" target;
      (meth_of_string m, path, query, version)
  | _ -> bad "malformed request line %S" line

let parse_header line =
  let name, value = split_on_first ':' line in
  if name = "" || String.exists (fun ch -> ch = ' ' || ch = '\t') name then
    bad "malformed header %S" line;
  (String.lowercase_ascii name, String.trim value)

let read_request c =
  (* Tolerate one leading empty line (robustness the RFC recommends). *)
  let rec first_line tries =
    match read_crlf_line c with
    | None -> None
    | Some "" when tries > 0 -> first_line (tries - 1)
    | Some "" -> bad "empty request line"
    | Some line -> Some line
  in
  match first_line 1 with
  | None -> None
  | Some line ->
      let meth, path, query, version = parse_request_line line in
      let rec headers acc n =
        if n > c.limits.max_headers then bad "too many headers";
        match read_crlf_line c with
        | None -> bad "connection closed inside headers"
        | Some "" -> List.rev acc
        | Some line -> headers (parse_header line :: acc) (n + 1)
      in
      Some { meth; path; query; version; headers = headers [] 0 }

let header r name = List.assoc_opt (String.lowercase_ascii name) r.headers

let keep_alive r =
  let conn_tokens =
    match header r "connection" with
    | None -> []
    | Some v ->
        String.split_on_char ',' v
        |> List.map (fun t -> String.lowercase_ascii (String.trim t))
  in
  if List.mem "close" conn_tokens then false
  else if r.version = "HTTP/1.1" then true
  else List.mem "keep-alive" conn_tokens

(* --------------------------------------------------------------- bodies *)

type body_mode =
  | Fixed of int  (* bytes remaining *)
  | Chunk_header  (* chunked: expect a size line next *)
  | Chunk_data of int  (* chunked: bytes remaining in the current chunk *)
  | Done

type body = { bconn : conn; mutable mode : body_mode; mutable total : int }

let body_of_request c r =
  let te =
    Option.map String.lowercase_ascii (header r "transfer-encoding")
  in
  match te with
  | Some "chunked" -> { bconn = c; mode = Chunk_header; total = 0 }
  | Some other -> bad "unsupported transfer-encoding %S" other
  | None -> (
      match header r "content-length" with
      | None -> { bconn = c; mode = Done; total = 0 }
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 ->
              if n > c.limits.max_body then raise Payload_too_large;
              { bconn = c; mode = (if n = 0 then Done else Fixed n); total = 0 }
          | _ -> bad "bad content-length %S" v))

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Some (Char.code ch - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code ch - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code ch - Char.code 'A' + 10)
  | _ -> None

let parse_chunk_size line =
  (* Chunk extensions (";...") are allowed and ignored. *)
  let line, _ext = split_on_first ';' line in
  let line = String.trim line in
  if line = "" then bad "empty chunk size";
  let n =
    String.fold_left
      (fun acc ch ->
        match hex_digit ch with
        | Some d when acc <= 0x0FFF_FFFF -> (acc lsl 4) lor d
        | _ -> bad "bad chunk size %S" line)
      0 line
  in
  n

let rec body_byte b =
  match b.mode with
  | Done -> None
  | Fixed n -> (
      match read_byte b.bconn with
      | None -> bad "connection closed inside body"
      | Some ch ->
          b.mode <- (if n = 1 then Done else Fixed (n - 1));
          account b ch)
  | Chunk_header -> (
      match read_crlf_line b.bconn with
      | None -> bad "connection closed inside chunked body"
      | Some line ->
          let n = parse_chunk_size line in
          if n = 0 then begin
            (* Trailer section: lines until the blank terminator. *)
            let rec trailers () =
              match read_crlf_line b.bconn with
              | None -> bad "connection closed inside trailers"
              | Some "" -> ()
              | Some _ -> trailers ()
            in
            trailers ();
            b.mode <- Done;
            None
          end
          else begin
            b.mode <- Chunk_data n;
            body_byte b
          end)
  | Chunk_data n -> (
      match read_byte b.bconn with
      | None -> bad "connection closed inside chunk"
      | Some ch ->
          (if n = 1 then begin
             (* Consume the CRLF that closes every chunk. *)
             (match read_byte b.bconn with
             | Some '\r' -> (
                 match read_byte b.bconn with
                 | Some '\n' -> ()
                 | _ -> bad "missing LF after chunk")
             | Some '\n' -> ()
             | _ -> bad "missing CRLF after chunk");
             b.mode <- Chunk_header
           end
           else b.mode <- Chunk_data (n - 1));
          account b ch)

and account b ch =
  b.total <- b.total + 1;
  if b.total > b.bconn.limits.max_body then raise Payload_too_large;
  Some ch

let read_line b =
  let buf = b.bconn.body_scratch in
  Buffer.clear buf;
  let rec go () =
    match body_byte b with
    | None -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    | Some '\n' ->
        let s = Buffer.contents buf in
        let n = String.length s in
        Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | Some ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let read_all b =
  let buf = b.bconn.body_scratch in
  Buffer.clear buf;
  let rec go () =
    match body_byte b with
    | None -> Buffer.contents buf
    | Some ch ->
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let drain b =
  let rec go () = match body_byte b with None -> () | Some _ -> go () in
  go ()

(* -------------------------------------------------------------- writing *)

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | n when n >= 200 && n < 300 -> "OK"
  | n when n >= 400 && n < 500 -> "Client Error"
  | _ -> "Error"

(* An output stream over an injectable byte sink (the write-side twin of
   [conn_of_source]): pieces accumulate in a reusable staging buffer and
   leave in one batched write per response (or per chunk), never through
   intermediate string concatenation.  Strings too big for the staging
   buffer bypass it entirely — the sink reads straight out of the
   string's own bytes (writev-style batching without the copy). *)
type out = {
  sink : Bytes.t -> int -> int -> int;  (* write some bytes; returns count *)
  ob : Bytes.t;                         (* staging buffer, typically pooled *)
  mutable olen : int;                   (* staged bytes *)
}

let out_of_sink ?buf sink =
  let ob = match buf with Some b -> b | None -> Bytes.create 4096 in
  { sink; ob; olen = 0 }

let sink_all sink b off len =
  let rec go off len =
    if len > 0 then begin
      let n = sink b off len in
      go (off + n) (len - n)
    end
  in
  go off len

let out_of_fd fd =
  out_of_sink (fun buf off len -> Unix.write fd buf off len)

let flush_out o =
  if o.olen > 0 then begin
    let n = o.olen in
    (* Reset before writing: if the sink raises (EPIPE) the stale bytes
       must not be replayed by a later best-effort error response. *)
    o.olen <- 0;
    sink_all o.sink o.ob 0 n
  end

let out_string o s =
  let n = String.length s in
  let cap = Bytes.length o.ob in
  if n >= cap / 2 then begin
    (* Large payload: drain the staging buffer, then hand the string's
       bytes to the sink directly — no copy. *)
    flush_out o;
    sink_all o.sink (Bytes.unsafe_of_string s) 0 n
  end
  else begin
    if o.olen + n > cap then flush_out o;
    Bytes.blit_string s 0 o.ob o.olen n;
    o.olen <- o.olen + n
  end

let out_char o ch =
  if o.olen >= Bytes.length o.ob then flush_out o;
  Bytes.set o.ob o.olen ch;
  o.olen <- o.olen + 1

(* Decimal / lowercase-hex integers without going through
   [string_of_int] on the hot path. *)
let out_int o n =
  if n < 10 then out_char o (Char.chr (Char.code '0' + n))
  else begin
    let digits = Bytes.create 20 in
    let rec go i n =
      if n = 0 then i
      else begin
        Bytes.set digits i (Char.chr (Char.code '0' + (n mod 10)));
        go (i - 1) (n / 10)
      end
    in
    let i = go 19 n in
    if o.olen + (19 - i) > Bytes.length o.ob then flush_out o;
    Bytes.blit digits (i + 1) o.ob o.olen (19 - i);
    o.olen <- o.olen + (19 - i)
  end

let out_hex o n =
  let hexdig d = if d < 10 then Char.chr (Char.code '0' + d)
                 else Char.chr (Char.code 'a' + d - 10) in
  if n < 16 then out_char o (hexdig n)
  else begin
    let digits = Bytes.create 16 in
    let rec go i n =
      if n = 0 then i
      else begin
        Bytes.set digits i (hexdig (n land 0xf));
        go (i - 1) (n lsr 4)
      end
    in
    let i = go 15 n in
    if o.olen + (15 - i) > Bytes.length o.ob then flush_out o;
    Bytes.blit digits (i + 1) o.ob o.olen (15 - i);
    o.olen <- o.olen + (15 - i)
  end

let out_head o ~status ~headers ~keep_alive extra =
  out_string o "HTTP/1.1 ";
  out_int o status;
  out_char o ' ';
  out_string o (status_reason status);
  out_string o "\r\n";
  let header (k, v) =
    out_string o k;
    out_string o ": ";
    out_string o v;
    out_string o "\r\n"
  in
  List.iter header headers;
  List.iter header extra;
  out_string o
    (if keep_alive then "Connection: keep-alive\r\n\r\n"
     else "Connection: close\r\n\r\n");
  ()

(* Head, Content-Length and body staged together: a small response is a
   single [write]. *)
let respond o ~status ?(headers = []) ?(keep_alive = true) body =
  out_string o "HTTP/1.1 ";
  out_int o status;
  out_char o ' ';
  out_string o (status_reason status);
  out_string o "\r\n";
  let header (k, v) =
    out_string o k;
    out_string o ": ";
    out_string o v;
    out_string o "\r\n"
  in
  List.iter header headers;
  out_string o "Content-Length: ";
  out_int o (String.length body);
  out_string o "\r\n";
  out_string o
    (if keep_alive then "Connection: keep-alive\r\n\r\n"
     else "Connection: close\r\n\r\n");
  out_string o body;
  flush_out o

type chunked = { co : out; mutable finished : bool }

let start_chunked_out o ~status ?(headers = []) ?(keep_alive = true) () =
  out_head o ~status ~headers ~keep_alive
    [ ("Transfer-Encoding", "chunked") ];
  (* The head goes out before the first chunk is produced, so clients can
     act on the status while results are still being computed. *)
  flush_out o;
  { co = o; finished = false }

let write_chunk c s =
  if (not c.finished) && String.length s > 0 then begin
    out_hex c.co (String.length s);
    out_string c.co "\r\n";
    out_string c.co s;
    out_string c.co "\r\n";
    (* One flush per chunk: size line + payload + CRLF leave batched, and
       streaming consumers see each result line promptly. *)
    flush_out c.co
  end

let finish_chunked c =
  if not c.finished then begin
    c.finished <- true;
    out_string c.co "0\r\n\r\n";
    flush_out c.co
  end

(* fd-flavoured wrappers, kept for callers without a long-lived [out]
   (tests, one-shot error responses). *)
let write_response fd ~status ?headers ?keep_alive body =
  respond (out_of_fd fd) ~status ?headers ?keep_alive body

let start_chunked fd ~status ?headers ?keep_alive () =
  start_chunked_out (out_of_fd fd) ~status ?headers ?keep_alive ()
