(** HTTP/1.1 wire protocol for the planning server: request parsing,
    streaming body readers, and response writing.  Dependency-free (Unix
    only) and deliberately small — request line + headers, fixed
    ([Content-Length]) and [chunked] bodies in both directions,
    keep-alive, and hard size limits.  No TLS, no compression, no
    multipart.

    Parsing errors raise {!Bad_request} (answer 400 and close);
    over-limit bodies raise {!Payload_too_large} (answer 413). *)

type meth = GET | POST | HEAD | Other of string

type request = {
  meth : meth;
  path : string;    (** decoded path, query string stripped *)
  query : string;   (** raw query string ([""] when absent) *)
  version : string; (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
}

type limits = {
  max_request_line : int;  (** request line and each header line *)
  max_headers : int;       (** header count *)
  max_body : int;          (** total request body bytes, fixed or chunked *)
}

(** 8 KiB lines, 128 headers, 8 MiB bodies. *)
val default_limits : limits

exception Bad_request of string
exception Payload_too_large

(** A buffered connection (one per accepted socket). *)
type conn

(** [buf] injects the connection's read buffer — the reactor passes a
    pooled one so accepting a connection allocates nothing. *)
val conn_of_fd : ?limits:limits -> ?buf:Bytes.t -> Unix.file_descr -> conn

(** [conn_of_source read] builds a connection whose bytes come from
    [read buf off len] instead of a socket ([read] returns the byte
    count delivered; [0] means EOF; short counts are fine and normal).
    This is the seam the property-testing IO oracles use to replay
    recorded requests under adversarial read boundaries — randomized
    chunking, short reads, mid-body EOF — without a socket in the
    loop; it is also how the reactor suspends a connection fiber on
    would-block reads. *)
val conn_of_source :
  ?limits:limits -> ?buf:Bytes.t -> (Bytes.t -> int -> int -> int) -> conn

(** Bytes already read from the source but not yet consumed by the
    parser — a pipelined request may be sitting there, so a readiness
    loop must not wait on the socket while [buffered] is true. *)
val buffered : conn -> bool

(** [read_request conn] parses the next request head.  [None] means the
    peer closed the connection cleanly between requests. *)
val read_request : conn -> request option

val header : request -> string -> string option

(** HTTP/1.1 defaults to persistent connections; [Connection: close] (or
    HTTP/1.0 without [Connection: keep-alive]) turns them off. *)
val keep_alive : request -> bool

(** Streaming reader over the request body ([Content-Length] or
    [Transfer-Encoding: chunked]; no body at all reads as empty). *)
type body

val body_of_request : conn -> request -> body

(** [read_line body] returns the next LF-terminated line (CR stripped,
    terminator dropped), or the final unterminated line, or [None] at end
    of body — NDJSON-shaped, mirroring [input_line]. *)
val read_line : body -> string option

(** The whole remaining body as one string (bounded by [max_body]). *)
val read_all : body -> string

(** Consume and discard the rest of the body, so the connection can be
    reused for the next request even when a handler answered early. *)
val drain : body -> unit

(** {2 Response writing}

    An output stream over an injectable byte sink — the write-side twin
    of {!conn_of_source}.  Pieces accumulate in a reusable staging
    buffer and leave in one batched write per response (or per chunk);
    payloads too large for the staging buffer are handed to the sink
    directly, without copying. *)
type out

(** [out_of_sink write] builds a stream whose bytes go to
    [write buf off len] ([write] returns the count accepted; short
    writes are fine).  [buf] injects the staging buffer (pooled by the
    reactor); default 4 KiB. *)
val out_of_sink : ?buf:Bytes.t -> (Bytes.t -> int -> int -> int) -> out

val out_of_fd : Unix.file_descr -> out

(** Force staged bytes out to the sink.  {!respond}, {!write_chunk} and
    {!finish_chunked} flush themselves; explicit flushing is only needed
    around raw {!out} reuse. *)
val flush_out : out -> unit

(** [respond o ~status body] writes a complete fixed-length response —
    head, [Content-Length] and body staged together, so a small response
    is a single write.  [keep_alive] (default [true]) controls the
    [Connection] header. *)
val respond :
  out ->
  status:int ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  string ->
  unit

(** [write_response fd ~status body] is {!respond} over a throwaway
    fd-backed stream — for tests and one-shot error paths. *)
val write_response :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  string ->
  unit

(** Chunked responses, for streams whose length is unknown up front:
    {!start_chunked_out} writes and flushes the head (clients see the
    status before the first result is computed), each {!write_chunk}
    one chunk — size line, payload and CRLF batched into one write,
    no intermediate strings (empty strings are skipped — an empty
    chunk would terminate the stream), {!finish_chunked} the final
    zero chunk. *)
type chunked

val start_chunked_out :
  out ->
  status:int ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  unit ->
  chunked

val start_chunked :
  Unix.file_descr ->
  status:int ->
  ?headers:(string * string) list ->
  ?keep_alive:bool ->
  unit ->
  chunked

val write_chunk : chunked -> string -> unit
val finish_chunked : chunked -> unit

val status_reason : int -> string
