/* poll(2) binding for the reactor's readiness loop.
 *
 * Unix.select caps out at FD_SETSIZE (1024) descriptors, which the
 * 1000-connection concurrency kernel blows through once client and
 * server fds share a process.  The interface is deliberately tiny:
 *
 *   etransform_poll fds events timeout_ms = revents
 *
 * where [events] and [revents] are bitmasks per fd: 1 = readable,
 * 2 = writable.  Error conditions (POLLERR/POLLHUP/POLLNVAL) surface
 * as "ready" on whatever was requested, so the waiting fiber resumes
 * and its next read/write reports the failure through errno — the
 * same contract select gives.  EINTR reports no fd ready (the caller
 * just loops).
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>

CAMLprim value etransform_poll(value v_fds, value v_events, value v_timeout)
{
    CAMLparam3(v_fds, v_events, v_timeout);
    CAMLlocal1(v_res);
    int n = Wosize_val(v_fds);
    int timeout = Int_val(v_timeout);
    struct pollfd *pfds = NULL;
    int rc, err, i;

    if (n > 0) {
        pfds = malloc(sizeof(struct pollfd) * (size_t)n);
        if (pfds == NULL) caml_failwith("etransform_poll: out of memory");
        for (i = 0; i < n; i++) {
            int ev = Int_val(Field(v_events, i));
            pfds[i].fd = Int_val(Field(v_fds, i));
            pfds[i].events = 0;
            if (ev & 1) pfds[i].events |= POLLIN;
            if (ev & 2) pfds[i].events |= POLLOUT;
            pfds[i].revents = 0;
        }
    }

    caml_release_runtime_system();
    rc = poll(pfds, (nfds_t)n, timeout);
    err = errno;
    caml_acquire_runtime_system();

    if (rc < 0 && err != EINTR) {
        if (pfds) free(pfds);
        caml_failwith("etransform_poll: poll failed");
    }

    v_res = caml_alloc(n, 0);
    for (i = 0; i < n; i++) {
        int r = 0;
        if (rc > 0) {
            short re = pfds[i].revents;
            int ev = Int_val(Field(v_events, i));
            if (re & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) r |= ev & 1;
            if (re & (POLLOUT | POLLERR | POLLHUP | POLLNVAL)) r |= ev & 2;
            /* An error on an fd nobody asked events for still needs a
             * wake-up bit, or the conn would never get culled. */
            if (r == 0 && (re & (POLLERR | POLLHUP | POLLNVAL))) r = 3;
        }
        Store_field(v_res, i, Val_int(r));
    }
    if (pfds) free(pfds);
    CAMLreturn(v_res);
}

/* ------------------------------------------------------------- epoll --
 *
 * Level-triggered epoll, the O(ready) upgrade over the O(registered)
 * poll scan: interest is registered once per connection and only
 * re-registered when it changes (rare — keep-alive connections wait
 * for reads essentially forever), and a wait returns just the ready
 * fds.  Event bits: 1 = readable, 2 = writable, 4 = error/hangup.
 * On platforms without epoll the create stub raises and the reactor
 * falls back to poll.
 */

#ifdef __linux__
#include <sys/epoll.h>

CAMLprim value etransform_epoll_create(value v_unit)
{
    CAMLparam1(v_unit);
    int ep = epoll_create1(0);
    if (ep < 0) caml_failwith("epoll_create1 failed");
    CAMLreturn(Val_int(ep));
}

/* op: 1 = add, 2 = mod, 3 = del; mask bits: 1 = read, 2 = write. */
CAMLprim value etransform_epoll_ctl(value v_ep, value v_op, value v_fd,
                                    value v_mask)
{
    CAMLparam4(v_ep, v_op, v_fd, v_mask);
    struct epoll_event ev;
    int op, rc, mask = Int_val(v_mask);
    ev.events = 0;
    if (mask & 1) ev.events |= EPOLLIN;
    if (mask & 2) ev.events |= EPOLLOUT;
    ev.data.fd = Int_val(v_fd);
    switch (Int_val(v_op)) {
    case 1: op = EPOLL_CTL_ADD; break;
    case 2: op = EPOLL_CTL_MOD; break;
    default: op = EPOLL_CTL_DEL; break;
    }
    rc = epoll_ctl(Int_val(v_ep), op, Int_val(v_fd), &ev);
    if (rc < 0 && !(op == EPOLL_CTL_DEL && (errno == EBADF || errno == ENOENT)))
        caml_failwith("epoll_ctl failed");
    CAMLreturn(Val_unit);
}

#define EPOLL_MAX_EVENTS 512

/* Returns a flat int array: [fd0; bits0; fd1; bits1; ...]. */
CAMLprim value etransform_epoll_wait(value v_ep, value v_timeout)
{
    CAMLparam2(v_ep, v_timeout);
    CAMLlocal1(v_res);
    struct epoll_event evs[EPOLL_MAX_EVENTS];
    int ep = Int_val(v_ep);
    int timeout = Int_val(v_timeout);
    int rc, err, i;

    caml_release_runtime_system();
    rc = epoll_wait(ep, evs, EPOLL_MAX_EVENTS, timeout);
    err = errno;
    caml_acquire_runtime_system();

    if (rc < 0) {
        if (err == EINTR) rc = 0;
        else caml_failwith("epoll_wait failed");
    }
    v_res = caml_alloc(2 * rc, 0);
    for (i = 0; i < rc; i++) {
        int bits = 0;
        if (evs[i].events & EPOLLIN) bits |= 1;
        if (evs[i].events & EPOLLOUT) bits |= 2;
        if (evs[i].events & (EPOLLERR | EPOLLHUP)) bits |= 4;
        Store_field(v_res, 2 * i, Val_int(evs[i].data.fd));
        Store_field(v_res, (2 * i) + 1, Val_int(bits));
    }
    CAMLreturn(v_res);
}

#else /* !__linux__ */

CAMLprim value etransform_epoll_create(value v_unit)
{
    CAMLparam1(v_unit);
    caml_failwith("epoll unavailable");
    CAMLreturn(Val_unit);
}

CAMLprim value etransform_epoll_ctl(value v_ep, value v_op, value v_fd,
                                    value v_mask)
{
    CAMLparam4(v_ep, v_op, v_fd, v_mask);
    caml_failwith("epoll unavailable");
    CAMLreturn(Val_unit);
}

CAMLprim value etransform_epoll_wait(value v_ep, value v_timeout)
{
    CAMLparam2(v_ep, v_timeout);
    caml_failwith("epoll unavailable");
    CAMLreturn(Val_unit);
}

#endif
