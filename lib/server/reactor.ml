(* Event-driven reactor: a readiness loop per shard driving per-connection
   fibers (OCaml 5 effects).  Connection handlers are written in plain
   blocking style — reads and writes that would block perform a [Wait]
   effect, parking the fiber's continuation until poll(2) reports the fd
   ready (or a cross-thread [notify] arrives through the shard's
   self-pipe).  One shard = one thread = one poll loop; a continuation is
   only ever resumed on the shard thread that parked it.

   Wake-ups are advisory: a fiber resumed with [Ready] re-checks its
   condition (retries the read, polls the ticket) and parks again if it
   was spurious.  That makes duplicate and stale wake-ups harmless, which
   in turn keeps the cross-thread protocol tiny: [notify] latches a
   [fired] bit and enqueues the connection; the scheduler resumes it if
   (and only if) it is parked waiting for a signal.

   Every parked continuation is resumed exactly once — [Ready], [Timeout]
   on deadline expiry, or [Stopped] during drain — so [Fun.protect]
   finalizers in fibers always run and fds never leak. *)

type wake = Ready | Stopped | Timeout

exception Aborted
exception Idle_timeout

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------ readiness *)

(* Bitmasks per fd: 1 = readable, 2 = writable (see poll_stubs.c). *)
external poll_stub :
  Unix.file_descr array -> int array -> int -> int array = "etransform_poll"

let use_select =
  (* The C stub is compiled in on every supported platform; the select
     fallback only exists for stub-less builds and dies at FD_SETSIZE. *)
  lazy (match poll_stub [||] [||] 0 with _ -> false | exception _ -> true)

let select_fallback fds events timeout_ms =
  let rds = ref [] and wrs = ref [] in
  Array.iteri
    (fun i fd ->
      if events.(i) land 1 <> 0 then rds := fd :: !rds;
      if events.(i) land 2 <> 0 then wrs := fd :: !wrs)
    fds;
  let tmo =
    if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0
  in
  match Unix.select !rds !wrs [] tmo with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      Array.make (Array.length fds) 0
  | r, w, _ ->
      Array.mapi
        (fun i fd ->
          ((if List.memq fd r then 1 else 0) lor
           (if List.memq fd w then 2 else 0))
          land events.(i))
        fds

let poll_ready fds events timeout_ms =
  if Lazy.force use_select then select_fallback fds events timeout_ms
  else poll_stub fds events timeout_ms

(* Level-triggered epoll, the O(ready) upgrade over the O(registered)
   poll scan.  Interest is registered per connection at adoption and
   re-registered only when it changes at park time (rare: keep-alive
   fibers wait for reads essentially forever), so a steady-state
   request costs one epoll_wait and no epoll_ctl.  [epoll_create]
   raises where the platform has no epoll and the shard falls back to
   the poll scan. *)
external epoll_create : unit -> Unix.file_descr = "etransform_epoll_create"

(* op: 1 = add, 2 = mod, 3 = del; mask bits as for poll. *)
external epoll_ctl :
  Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "etransform_epoll_ctl"

(* Returns [fd0; bits0; fd1; bits1; ...]; bit 4 = error/hangup. *)
external epoll_wait_stub :
  Unix.file_descr -> int -> int array = "etransform_epoll_wait"

(* Safe wherever the stubs compile: Unix file_descr is the raw int fd
   (the C side already relies on that via Int_val). *)
let fd_of_int : int -> Unix.file_descr = Obj.magic

(* ---------------------------------------------------------- buffer pool *)

(* Free list of fixed-size byte buffers.  Connections borrow a read
   buffer and a write staging buffer at accept and return them at close,
   so steady-state request handling allocates no buffers at all. *)
module Buf_pool = struct
  type t = {
    size : int;
    m : Mutex.t;
    mutable free : Bytes.t list;
    mutable free_n : int;
    mutable created : int;
  }

  let create ~size () =
    { size; m = Mutex.create (); free = []; free_n = 0; created = 0 }

  let acquire p =
    Mutex.lock p.m;
    match p.free with
    | b :: tl ->
        p.free <- tl;
        p.free_n <- p.free_n - 1;
        Mutex.unlock p.m;
        b
    | [] ->
        p.created <- p.created + 1;
        Mutex.unlock p.m;
        Bytes.create p.size

  let release p b =
    (* Foreign-sized buffers are dropped, not pooled: the pool must only
       ever hand out [size]-byte buffers. *)
    if Bytes.length b = p.size then begin
      Mutex.lock p.m;
      p.free <- b :: p.free;
      p.free_n <- p.free_n + 1;
      Mutex.unlock p.m
    end

  let stats p =
    Mutex.lock p.m;
    let r = (p.free_n, p.created) in
    Mutex.unlock p.m;
    r
end

(* ----------------------------------------------------------------- types *)

type spec = {
  s_read : bool;       (* resume when the socket is readable *)
  s_write : bool;      (* resume when the socket is writable *)
  s_signal : bool;     (* resume on notify *)
  s_deadline : float;  (* absolute; [infinity] = no timeout *)
}

type _ Effect.t += Wait : spec -> wake Effect.t

type conn = {
  fd : Unix.file_descr;
  c_in : Bytes.t;   (* pooled: Http.conn read buffer *)
  c_out : Bytes.t;  (* pooled: Http.out staging buffer *)
  sh : shard;
  mutable cont : (wake, unit) Effect.Deep.continuation option;
  mutable spec : spec;              (* meaningful while [cont <> None] *)
  mutable in_request : bool;
  mutable on_signal : (unit -> unit) option;
      (* ran from [read]'s wait loop after a signal wake — the /batch
         route uses it to flush completed results while parked on input *)
  mutable fired : bool;   (* notify latch; protected by [sh.qm] *)
  mutable queued : bool;  (* already in [sh.runq]; protected by [sh.qm] *)
  mutable dead : bool;    (* cleanup ran *)
  mutable reg : int;
      (* epoll interest currently registered for this fd: -1 = never
         registered, -2 = deregistered for good (post-hangup) *)
}

and shard = {
  sid : int;
  re : t;
  conns : (Unix.file_descr, conn) Hashtbl.t;  (* shard-thread only *)
  qm : Mutex.t;
  runq : conn Queue.t;              (* notified conns (cross-thread) *)
  inbox : Unix.file_descr Queue.t;  (* accepted fds awaiting adoption *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable wake_pending : bool;  (* byte already in the pipe; under [qm] *)
  busy : int Atomic.t;          (* conns inside a request, for metrics *)
  ep : Unix.file_descr option;  (* epoll instance; [None] = poll scan *)
  mutable next_dl : float;
      (* lower bound on the earliest parked deadline (shard thread
         only); parks lower it, the expiry scan recomputes it *)
}

and t = {
  mutable shards : shard array;  (* set once, in [create] *)
  max_conns : int;
  idle_timeout : float;  (* seconds; 0 = disabled *)
  drain_timeout : float;
  bufs : Buf_pool.t;
  stop : bool Atomic.t;
  stop_at : float Atomic.t;
  total : int Atomic.t;  (* live conns across shards *)
  accept_rr : int Atomic.t;
}

let no_spec =
  { s_read = false; s_write = false; s_signal = false; s_deadline = infinity }

(* ------------------------------------------------------------- creation *)

let create ?(shards = 1) ?(max_conns = 4096) ?(idle_timeout = 30.0)
    ?(drain_timeout = 10.0) ?(buf_size = 16384) () =
  let nshards = max 1 shards in
  let bufs = Buf_pool.create ~size:(max 1024 buf_size) () in
  let t =
    {
      shards = [||];
      max_conns = max 1 max_conns;
      idle_timeout = (if idle_timeout <= 0.0 then 0.0 else idle_timeout);
      drain_timeout = max 0.0 drain_timeout;
      bufs;
      stop = Atomic.make false;
      stop_at = Atomic.make infinity;
      total = Atomic.make 0;
      accept_rr = Atomic.make 0;
    }
  in
  let mk_shard sid =
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    let ep = try Some (epoll_create ()) with _ -> None in
    {
      sid;
      re = t;
      conns = Hashtbl.create 64;
      qm = Mutex.create ();
      runq = Queue.create ();
      inbox = Queue.create ();
      wake_r;
      wake_w;
      wake_pending = false;
      busy = Atomic.make 0;
      ep;
      next_dl = infinity;
    }
  in
  t.shards <- Array.init nshards mk_shard;
  t

let live t = Atomic.get t.total

let busy t =
  Array.fold_left (fun acc sh -> acc + Atomic.get sh.busy) 0 t.shards

let pool_stats t = Buf_pool.stats t.bufs
let idle_timeout t = t.idle_timeout
let max_conns t = t.max_conns
let shard_count t = Array.length t.shards
let stopping t = Atomic.get t.stop

(* --------------------------------------------------------- cross-thread *)

let wake_shard sh =
  let b = Bytes.make 1 '!' in
  try ignore (Unix.write sh.wake_w b 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error (Unix.EBADF, _, _) -> ()

let notify conn =
  let sh = conn.sh in
  Mutex.lock sh.qm;
  conn.fired <- true;
  let need_wake =
    if conn.queued || conn.dead then false
    else begin
      conn.queued <- true;
      Queue.push conn sh.runq;
      if sh.wake_pending then false
      else begin
        sh.wake_pending <- true;
        true
      end
    end
  in
  Mutex.unlock sh.qm;
  if need_wake then wake_shard sh

let request_stop t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop_at (now ());
    Atomic.set t.stop true;
    Array.iter wake_shard t.shards
  end

(* ------------------------------------------------------------ fiber side *)

let fd conn = conn.fd
let in_buf conn = conn.c_in
let out_buf conn = conn.c_out

let set_in_request conn b =
  if conn.in_request <> b then begin
    conn.in_request <- b;
    if b then Atomic.incr conn.sh.busy else Atomic.decr conn.sh.busy
  end

let set_on_signal conn f = conn.on_signal <- f

(* Consume the notify latch; [true] if a signal was pending. *)
let take_fired conn =
  let sh = conn.sh in
  Mutex.lock sh.qm;
  let had = conn.fired in
  if had then conn.fired <- false;
  Mutex.unlock sh.qm;
  had

let read_deadline conn =
  if conn.sh.re.idle_timeout = 0.0 then infinity
  else now () +. conn.sh.re.idle_timeout

let rec read conn buf off len =
  match Unix.read conn.fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read conn buf off len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      let want_signal = conn.on_signal <> None in
      let spec =
        { s_read = true; s_write = false; s_signal = want_signal;
          s_deadline = read_deadline conn }
      in
      (* A latched signal beats parking: run the hook now, then retry. *)
      if want_signal && take_fired conn then begin
        (match conn.on_signal with Some f -> f () | None -> ());
        read conn buf off len
      end
      else begin
        match Effect.perform (Wait spec) with
        | Stopped -> raise Aborted
        | Timeout -> raise Idle_timeout
        | Ready ->
            if want_signal && take_fired conn then
              (match conn.on_signal with Some f -> f () | None -> ());
            read conn buf off len
      end

let rec write_some conn buf off len =
  match Unix.write conn.fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_some conn buf off len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      let spec =
        { s_read = false; s_write = true; s_signal = false;
          s_deadline = read_deadline conn }
      in
      match Effect.perform (Wait spec) with
      | Stopped -> raise Aborted
      | Timeout -> raise Idle_timeout  (* write-stalled peer: same eviction *)
      | Ready -> write_some conn buf off len)

let wait_signal conn =
  if not (take_fired conn) then
    match
      Effect.perform
        (Wait { s_read = false; s_write = false; s_signal = true;
                s_deadline = infinity })
    with
    | Stopped -> raise Aborted
    | Ready | Timeout -> ()

let sleep conn d =
  if not (take_fired conn) then
    match
      Effect.perform
        (Wait { s_read = false; s_write = false; s_signal = true;
                s_deadline = now () +. max 0.0 d })
    with
    | Stopped -> raise Aborted
    | Ready | Timeout -> ()

(* --------------------------------------------------------------- fibers *)

let cleanup sh conn =
  if not conn.dead then begin
    Mutex.lock sh.qm;
    conn.dead <- true;
    Mutex.unlock sh.qm;
    Hashtbl.remove sh.conns conn.fd;
    set_in_request conn false;
    (try Unix.close conn.fd with _ -> ());
    Atomic.decr sh.re.total;
    Buf_pool.release sh.re.bufs conn.c_in;
    Buf_pool.release sh.re.bufs conn.c_out
  end

(* Park bookkeeping: re-register epoll interest when it changed since
   the last park and keep the shard's next-deadline cache a lower
   bound on every parked deadline. *)
let parked conn spec =
  (match conn.sh.ep with
  | Some ep when conn.reg >= 0 ->
      let want =
        (if spec.s_read then 1 else 0) lor if spec.s_write then 2 else 0
      in
      if want <> conn.reg then (
        try
          epoll_ctl ep 2 conn.fd want;
          conn.reg <- want
        with _ -> ())
  | _ -> ());
  if spec.s_deadline < conn.sh.next_dl then conn.sh.next_dl <- spec.s_deadline

let start_fiber sh conn handler =
  Effect.Deep.match_with
    (fun () ->
      Fun.protect
        ~finally:(fun () -> cleanup sh conn)
        (fun () ->
          try handler conn with
          | Aborted | Idle_timeout -> ()
          | _ ->
              (* Handlers answer their own protocol errors; anything that
                 still escapes must not take the shard down. *)
              ()))
    ()
    {
      Effect.Deep.retc = (fun () -> ());
      exnc = (fun exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait spec ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  conn.spec <- spec;
                  conn.cont <- Some k;
                  parked conn spec)
          | _ -> None);
    }

(* Resume a parked fiber; runs it until the next park or completion. *)
let resume conn w =
  match conn.cont with
  | None -> ()
  | Some k ->
      conn.cont <- None;
      conn.spec <- no_spec;
      Effect.Deep.continue k w

let adopt sh handler fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  (try Unix.set_nonblock fd with _ -> ());
  let conn =
    {
      fd;
      c_in = Buf_pool.acquire sh.re.bufs;
      c_out = Buf_pool.acquire sh.re.bufs;
      sh;
      cont = None;
      spec = no_spec;
      in_request = false;
      on_signal = None;
      fired = false;
      queued = false;
      dead = false;
      reg = -1;
    }
  in
  Hashtbl.replace sh.conns fd conn;
  (match sh.ep with
  | Some ep -> (
      (* Register read interest up front: the first park is almost
         always a read wait, so steady state never touches epoll_ctl. *)
      try
        epoll_ctl ep 1 fd 1;
        conn.reg <- 1
      with _ -> conn.reg <- -2)
  | None -> ());
  start_fiber sh conn handler

(* ------------------------------------------------------------ scheduler *)

let drain_pipe fd =
  let scratch = Bytes.create 64 in
  let rec go () =
    match Unix.read fd scratch 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let default_reject fd = try Unix.close fd with _ -> ()

let accept_burst sh listener handler reject =
  let re = sh.re in
  let rec go budget =
    if budget > 0 then
      match Unix.accept listener with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          go (budget - 1)
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | fd, _addr ->
          (try Unix.set_nonblock fd with _ -> ());
          if Atomic.get re.total >= re.max_conns then begin
            (* Over the connection cap: the reject hook owns the fd (the
               daemon answers 503 before closing). *)
            (try reject fd with _ -> (try Unix.close fd with _ -> ()))
          end
          else begin
            Atomic.incr re.total;
            let k =
              Atomic.fetch_and_add re.accept_rr 1
              mod Array.length re.shards
            in
            let tgt = re.shards.(k) in
            if tgt == sh then adopt sh handler fd
            else begin
              Mutex.lock tgt.qm;
              Queue.push fd tgt.inbox;
              let w =
                if tgt.wake_pending then false
                else begin
                  tgt.wake_pending <- true;
                  true
                end
              in
              Mutex.unlock tgt.qm;
              if w then wake_shard tgt
            end
          end;
          go (budget - 1)
  in
  go 64

let shard_loop sh listener handler reject =
  let re = sh.re in
  let listener_open = ref (listener <> None) in
  (match sh.ep with
  | Some ep ->
      (try epoll_ctl ep 1 sh.wake_r 1 with _ -> ());
      (match listener with
      | Some l -> ( try epoll_ctl ep 1 l 1 with _ -> ())
      | None -> ())
  | None -> ());
  let rec loop () =
    (* 1. Take the cross-thread queues. *)
    Mutex.lock sh.qm;
    sh.wake_pending <- false;
    let notified = ref [] in
    Queue.iter
      (fun c ->
        c.queued <- false;
        notified := c :: !notified)
      sh.runq;
    Queue.clear sh.runq;
    let fresh = ref [] in
    Queue.iter (fun fd -> fresh := fd :: !fresh) sh.inbox;
    Queue.clear sh.inbox;
    Mutex.unlock sh.qm;
    (* 2. Adopt freshly accepted connections (runs their fiber until the
       first park — often through a whole pipelined request). *)
    List.iter (adopt sh handler) (List.rev !fresh);
    (* 3. Resume fibers parked on a signal whose notify arrived.  Conns
       notified while parked on pure I/O keep their latch for the next
       signal-aware wait. *)
    (* The [fired] latch is NOT cleared here: the fiber consumes it via
       [take_fired] (the read path uses it to decide whether to run its
       on_signal hook).  A latch surviving a wake only costs one spurious
       re-check. *)
    List.iter
      (fun c ->
        if (not c.dead) && c.cont <> None && c.spec.s_signal then
          resume c Ready)
      (List.rev !notified);
    (* 4. Drain bookkeeping. *)
    let stopping = Atomic.get re.stop in
    if stopping then begin
      (match listener with
      | Some l when !listener_open ->
          listener_open := false;
          (try Unix.close l with _ -> ())
      | _ -> ());
      let forced =
        now () >= Atomic.get re.stop_at +. re.drain_timeout
      in
      (* Idle keep-alive conns die at stop; in-flight requests get until
         the drain deadline, then everything is force-resumed [Stopped]
         so finalizers run and fds close. *)
      let victims =
        Hashtbl.fold
          (fun _ c acc ->
            if c.cont <> None && ((not c.in_request) || forced) then c :: acc
            else acc)
          sh.conns []
      in
      List.iter
        (fun c -> if (not c.dead) && c.cont <> None then resume c Stopped)
        victims
    end;
    (* 5. Exit when draining finished. *)
    let finished =
      stopping && Hashtbl.length sh.conns = 0
      && begin
           Mutex.lock sh.qm;
           let empty = Queue.is_empty sh.inbox in
           Mutex.unlock sh.qm;
           empty
         end
    in
    if not finished then begin
      let drain_deadline =
        if stopping then Atomic.get re.stop_at +. re.drain_timeout
        else infinity
      in
      let timeout_of next =
        if next = infinity then 500
        else
          let ms = int_of_float (ceil ((next -. now ()) *. 1000.)) in
          max 0 (min 500 ms)
      in
      (match sh.ep with
      | Some ep ->
          (* 6a. epoll: interest was maintained incrementally at park
             time, so the wait is O(ready) and the common loop builds
             nothing. *)
          let timeout_ms = timeout_of (min sh.next_dl drain_deadline) in
          let evs = epoll_wait_stub ep timeout_ms in
          let n = Array.length evs lsr 1 in
          for i = 0 to n - 1 do
            let fd = fd_of_int evs.(2 * i) in
            let bits = evs.((2 * i) + 1) in
            if fd = sh.wake_r then drain_pipe sh.wake_r
            else
              match listener with
              | Some l when fd = l && !listener_open ->
                  accept_burst sh l handler reject
              | _ -> (
                  match Hashtbl.find_opt sh.conns fd with
                  | Some c when c.cont <> None ->
                      if c.spec.s_read || c.spec.s_write then resume c Ready
                      else if bits land 4 <> 0 then begin
                        (* Error/hangup while parked on a signal-only
                           wait: deregister, or level-triggered epoll
                           would report it every iteration.  After a
                           hangup reads and writes fail without
                           blocking, so this fd never needs epoll
                           again. *)
                        (try epoll_ctl ep 3 c.fd 0 with _ -> ());
                        c.reg <- -2
                      end
                  | _ -> ())
          done;
          (* Deadlines: scan only when the cached lower bound passed. *)
          let tnow = now () in
          if tnow >= sh.next_dl then begin
            let expired =
              Hashtbl.fold
                (fun _ c acc ->
                  if c.cont <> None && c.spec.s_deadline <= tnow then c :: acc
                  else acc)
                sh.conns []
            in
            List.iter
              (fun c ->
                if
                  (not c.dead) && c.cont <> None
                  && c.spec.s_deadline <= tnow
                then resume c Timeout)
              expired;
            sh.next_dl <-
              Hashtbl.fold
                (fun _ c acc ->
                  if c.cont <> None && c.spec.s_deadline < acc then
                    c.spec.s_deadline
                  else acc)
                sh.conns infinity
          end
      | None ->
          (* 6b. poll scan fallback: rebuild the interest set from the
             parked specs every iteration. *)
          let fds = ref [ (sh.wake_r, 1) ] in
          (match listener with
          | Some l when !listener_open && not stopping -> fds := (l, 1) :: !fds
          | _ -> ());
          Hashtbl.iter
            (fun _ c ->
              if c.cont <> None then begin
                let m =
                  (if c.spec.s_read then 1 else 0)
                  lor if c.spec.s_write then 2 else 0
                in
                if m <> 0 then fds := (c.fd, m) :: !fds
              end)
            sh.conns;
          let next_deadline =
            Hashtbl.fold
              (fun _ c acc ->
                if c.cont <> None && c.spec.s_deadline < acc then
                  c.spec.s_deadline
                else acc)
              sh.conns infinity
          in
          let timeout_ms = timeout_of (min next_deadline drain_deadline) in
          let fda = Array.of_list (List.map fst !fds) in
          let eva = Array.of_list (List.map snd !fds) in
          let revs = poll_ready fda eva timeout_ms in
          (* 7. Process readiness.  Spurious [Ready] wakes are safe
             (fibers re-check), so stale fd entries after a mid-round
             close/adopt cannot corrupt anything. *)
          Array.iteri
            (fun i r ->
              if r <> 0 then begin
                let fd = fda.(i) in
                if fd = sh.wake_r then drain_pipe sh.wake_r
                else
                  match listener with
                  | Some l when fd = l && !listener_open ->
                      accept_burst sh l handler reject
                  | _ -> (
                      match Hashtbl.find_opt sh.conns fd with
                      | Some c when c.cont <> None -> resume c Ready
                      | _ -> ())
              end)
            revs;
          (* 8. Expire deadlines (fresh scan: resumed fibers re-park
             with new deadlines, which must not fire). *)
          let tnow = now () in
          let expired =
            Hashtbl.fold
              (fun _ c acc ->
                if c.cont <> None && c.spec.s_deadline <= tnow then c :: acc
                else acc)
              sh.conns []
          in
          List.iter
            (fun c ->
              if (not c.dead) && c.cont <> None && c.spec.s_deadline <= tnow
              then resume c Timeout)
            expired);
      loop ()
    end
  in
  loop ();
  (* Reject any connection that slipped into the inbox after this shard
     decided it was done (accepted just before the listener closed). *)
  Mutex.lock sh.qm;
  let stragglers = ref [] in
  Queue.iter (fun fd -> stragglers := fd :: !stragglers) sh.inbox;
  Queue.clear sh.inbox;
  Mutex.unlock sh.qm;
  List.iter
    (fun fd ->
      Atomic.decr re.total;
      try Unix.close fd with _ -> ())
    !stragglers;
  (try Unix.close sh.wake_r with _ -> ());
  (try Unix.close sh.wake_w with _ -> ());
  match sh.ep with
  | Some ep -> ( try Unix.close ep with _ -> ())
  | None -> ()

let run t ~listener ?(reject = default_reject) handler =
  Unix.set_nonblock listener;
  let others =
    Array.map
      (fun sh -> Thread.create (fun () -> shard_loop sh None handler reject) ())
      (Array.sub t.shards 1 (Array.length t.shards - 1))
  in
  shard_loop t.shards.(0) (Some listener) handler reject;
  Array.iter Thread.join others
