(** The HTTP planning server: a long-lived front-end over
    {!Service.Pool}, turning the NDJSON batch engine into a network
    service.  Dependency-free — Unix sockets and threads only.

    Routes:
    - [POST /solve] — one {!Service.Job} JSON spec in the body; answers
      the same result line [etransform batch] would print (plus a
      trailing newline).  Replies [400] on a malformed spec, and [503]
      with [Retry-After] when the pool queue is full ({!Service.Pool.try_submit}
      backpressure — the accept loop never blocks on a full queue).
    - [POST /batch] — an NDJSON body streamed through
      {!Service.Batch.run_lines}; the response is chunked, one result
      line per job in input order, and lines start flowing while the
      request body is still being received.
    - [GET /healthz] — liveness plus pool shape as a JSON object.
    - [GET /metrics] — the {!Service.Metrics} registry in Prometheus
      text format: HTTP requests by route/status, job outcomes, solve
      and queue latency histograms, live queue depth, cache
      hits/misses, connection counts.

    One thread per connection (solves run on the pool's domains, so
    connection threads only block on I/O and ticket waits); HTTP/1.1
    keep-alive between requests.

    Shutdown is graceful: {!request_stop} (signal-safe) makes {!run}
    stop accepting, close the listener, wait up to [drain_timeout] for
    in-flight requests to finish, then force-close stragglers. *)

type t

(** [create ~pool ()] binds and listens ([port = 0] picks an ephemeral
    port — read it back with {!port}).  [resolve] maps NDJSON estate
    kinds beyond the bundled datasets (the binary passes
    [Harness.Line_jobs.resolve]).  [metrics] defaults to a fresh
    registry; pass your own to share it with other subsystems.  The
    pool's queue depth and cache counters are registered as gauges on
    the metrics registry here. *)
val create :
  ?addr:string ->
  ?port:int ->
  ?backlog:int ->
  ?limits:Http.limits ->
  ?drain_timeout:float ->
  ?resolve:Service.Batch.resolver ->
  ?metrics:Service.Metrics.t ->
  pool:Service.Pool.t ->
  unit ->
  t

val port : t -> int
val metrics : t -> Service.Metrics.t

(** Serve until {!request_stop}.  Returns only after the drain
    completed: listener closed, in-flight requests finished (or the
    drain deadline cut them off), every connection closed.  The pool is
    NOT shut down — it belongs to the caller. *)
val run : t -> unit

(** Ask {!run} to stop accepting and drain.  Async-signal-safe (sets a
    flag; the accept loop polls it), so it can be called from a
    [SIGINT]/[SIGTERM] handler or another thread.  Idempotent. *)
val request_stop : t -> unit

(** [true] once {!request_stop} was called. *)
val draining : t -> bool
