(** The HTTP planning server: a long-lived front-end over
    {!Service.Pool}, turning the NDJSON batch engine into a network
    service.  Dependency-free — Unix sockets, threads, and a poll(2)
    stub only.

    Routes:
    - [POST /solve] — one {!Service.Job} JSON spec in the body; answers
      the same result line [etransform batch] would print (plus a
      trailing newline).  Replies [400] on a malformed spec, and [503]
      with [Retry-After] when the pool queue is full ({!Service.Pool.try_submit}
      backpressure — the reactor never blocks on a full queue).
    - [POST /batch] — an NDJSON body streamed through the pool with a
      sliding window bounded by the queue capacity; the response is
      chunked, one result line per job in input order, and lines start
      flowing while the request body is still being received.
    - [POST /sweep] — one job spec plus a ["grid"] member
      ({!Service.Sweep}); the response is chunked NDJSON, one line per
      grid point in grid order as each completes, closed by a
      cost-vs-resilience Pareto frontier line.  Replies [400] on a
      malformed spec or oversized grid, and — before any stream bytes —
      [503] with [Retry-After] when the pool queue is full, matching
      [/solve].
    - [GET /cache/<fingerprint>] — the peer-transfer endpoint of the
      tiered plan cache: answers the {!Cluster.Codec}-encoded outcome
      from the {e local} tiers only (memory + disk, so probes never fan
      back out to peers), or 404 on a miss.
    - [POST /gossip] — one cluster digest exchange: installs the
      sender's Bloom digest and answers with this node's own
      ({!Cluster.Node.gossip_receive}).  404 unless [create] was given
      a [node].
    - [GET /healthz] — liveness plus pool shape as a JSON object.
    - [GET /metrics] — the {!Service.Metrics} registry in Prometheus
      text format: HTTP requests by route/status, job outcomes, solve
      and queue latency histograms, live queue depth, cache
      hits/misses, per-tier cache lookups
      ([etransform_cache_lookups_total{tier,result}]), disk-store
      occupancy ([etransform_cache_disk_bytes], when a disk tier is
      configured), connection counts by state, reactor buffer-pool
      occupancy.

    Connections are multiplexed by the event-driven {!Reactor}: each
    accepted socket becomes a fiber on a readiness loop, parsing
    through per-connection pooled buffers and answering through a
    batched writer; solves run on the pool's domains and wake the fiber
    through the reactor's self-pipe.  HTTP/1.1 keep-alive (including
    pipelined requests) between requests; connections idle past
    [idle_timeout] are evicted (408 when no response was in flight);
    connections beyond [max_conns] are answered [503] and closed.

    Shutdown is graceful: {!request_stop} (signal-safe) closes the
    listener and idle connections immediately, gives in-flight requests
    up to [drain_timeout] seconds, then force-closes stragglers. *)

type t

(** [create ~pool ()] binds and listens ([port = 0] picks an ephemeral
    port — read it back with {!port}).  [resolve] maps NDJSON estate
    kinds beyond the bundled datasets (the binary passes
    [Harness.Line_jobs.resolve]).  [metrics] defaults to a fresh
    registry; pass your own to share it with other subsystems.  The
    pool's queue depth and cache counters are registered as gauges on
    the metrics registry here.

    Reactor shape: [max_conns] caps live connections (default 4096,
    beyond it new connections get 503), [idle_timeout] seconds evicts
    stalled reads/writes (default 30, [0.] disables), [shards] is the
    number of readiness loops (default 1).

    [node] enables the cluster surface: [/gossip] answers exchanges,
    the node's digest provider is pointed at everything [/cache] can
    serve (LRU + disk keys), and {!run} flushes the store's index
    snapshot after the drain.  The node's lifecycle (gossip thread,
    close) stays with the caller. *)
val create :
  ?addr:string ->
  ?port:int ->
  ?backlog:int ->
  ?limits:Http.limits ->
  ?drain_timeout:float ->
  ?resolve:Service.Batch.resolver ->
  ?metrics:Service.Metrics.t ->
  ?max_conns:int ->
  ?idle_timeout:float ->
  ?shards:int ->
  ?node:Cluster.Node.t ->
  pool:Service.Pool.t ->
  unit ->
  t

val port : t -> int
val metrics : t -> Service.Metrics.t

(** Serve until {!request_stop}.  Returns only after the drain
    completed: listener closed, in-flight requests finished (or the
    drain deadline cut them off), every connection closed.  The pool is
    NOT shut down — it belongs to the caller. *)
val run : t -> unit

(** Ask {!run} to stop accepting and drain.  Async-signal-safe, so it
    can be called from a [SIGINT]/[SIGTERM] handler or another thread.
    Idempotent. *)
val request_stop : t -> unit

(** [true] once {!request_stop} was called. *)
val draining : t -> bool
