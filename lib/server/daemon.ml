open Service

type t = {
  lfd : Unix.file_descr;
  port : int;
  pool : Pool.t;
  resolve : Batch.resolver option;
  metrics : Metrics.t;
  limits : Http.limits;
  drain_timeout : float;
  stop : bool Atomic.t;
  m : Mutex.t;
  mutable busy : int;  (* requests currently being processed *)
  mutable conns : (int * Unix.file_descr) list;  (* live connections *)
  mutable next_conn : int;
}

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------- metrics *)

let requests_total = "etransform_http_requests_total"
let request_seconds = "etransform_http_request_seconds"

let count_request t ~route ~status =
  Metrics.incr t.metrics requests_total
    ~help:"HTTP requests served, by route and status"
    ~labels:[ ("route", route); ("status", string_of_int status) ]

let register_gauges t =
  let one name help f =
    Metrics.gauge t.metrics name ~help (fun () -> [ ([], f ()) ])
  in
  one "etransform_pool_queue_depth" "Jobs waiting in the pool queue"
    (fun () -> float_of_int (Pool.queue_depth t.pool));
  one "etransform_pool_workers" "Worker domains draining the queue"
    (fun () -> float_of_int (Pool.workers t.pool));
  let cache = Pool.cache t.pool in
  one "etransform_cache_hits_total" "Plan-cache hits since pool start"
    (fun () -> float_of_int (Cache.hits cache));
  one "etransform_cache_misses_total" "Plan-cache misses since pool start"
    (fun () -> float_of_int (Cache.misses cache));
  one "etransform_cache_evictions_total" "Plan-cache LRU evictions"
    (fun () -> float_of_int (Cache.evictions cache));
  one "etransform_cache_entries" "Plans currently cached"
    (fun () -> float_of_int (Cache.length cache));
  one "etransform_http_connections" "Open client connections"
    (fun () ->
      Mutex.lock t.m;
      let n = List.length t.conns in
      Mutex.unlock t.m;
      float_of_int n)

(* -------------------------------------------------------------- routes *)

let json_headers = [ ("Content-Type", "application/json") ]
let ndjson_headers = [ ("Content-Type", "application/x-ndjson") ]

let error_body code reason =
  Json.to_string
    (Json.Obj [ ("code", Json.Str code); ("reason", Json.Str reason) ])
  ^ "\n"

(* POST /solve: one job spec in, one result line out — byte-compatible
   with the line `etransform batch` prints for the same job. *)
let handle_solve t fd body ~keep =
  let text = Http.read_all body in
  match Json.parse text with
  | Error msg ->
      Http.write_response fd ~status:400 ~headers:json_headers
        ~keep_alive:keep
        (error_body "invalid" ("body is not JSON: " ^ msg));
      400
  | Ok j -> (
      match Batch.job_of_json ?resolve:t.resolve j with
      | Error msg ->
          Http.write_response fd ~status:400 ~headers:json_headers
            ~keep_alive:keep (error_body "invalid" msg);
          400
      | Ok job -> (
          match Pool.try_submit t.pool job with
          | None ->
              (* Queue full: shed load instead of stalling the connection
                 (and transitively the client) on a blocking submit. *)
              Http.write_response fd ~status:503
                ~headers:(("Retry-After", "1") :: json_headers)
                ~keep_alive:keep
                (error_body "busy" "job queue is full; retry shortly");
              503
          | Some ticket ->
              let r = Pool.await ticket in
              Http.write_response fd ~status:200 ~headers:json_headers
                ~keep_alive:keep
                (Json.to_string (Batch.result_to_json r) ^ "\n");
              200))

(* POST /batch: NDJSON request body -> chunked NDJSON response, one line
   per job in input order.  Batch.run_lines is full-duplex, so result
   chunks go out while the request body is still arriving. *)
let handle_batch t fd body ~keep =
  let ch =
    Http.start_chunked fd ~status:200 ~headers:ndjson_headers ~keep_alive:keep
      ()
  in
  let (_ : int * int * int) =
    Batch.run_lines ?resolve:t.resolve t.pool
      ~read_line:(fun () -> Http.read_line body)
      ~write:(fun line -> Http.write_chunk ch (line ^ "\n"))
  in
  Http.finish_chunked ch;
  200

let handle_healthz t fd ~keep =
  let body =
    Json.to_string
      (Json.Obj
         [
           ( "status",
             Json.Str (if Atomic.get t.stop then "draining" else "ok") );
           ("workers", Json.Num (float_of_int (Pool.workers t.pool)));
           ( "queue_depth",
             Json.Num (float_of_int (Pool.queue_depth t.pool)) );
           ( "queue_capacity",
             Json.Num (float_of_int (Pool.queue_capacity t.pool)) );
         ])
    ^ "\n"
  in
  Http.write_response fd ~status:200 ~headers:json_headers ~keep_alive:keep
    body;
  200

let handle_metrics t fd ~keep =
  Http.write_response fd ~status:200
    ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
    ~keep_alive:keep
    (Metrics.render t.metrics);
  200

(* Dispatch one parsed request.  Returns [true] to keep the connection
   open for the next request. *)
let handle_request t fd conn req =
  let body = Http.body_of_request conn req in
  let keep = Http.keep_alive req && not (Atomic.get t.stop) in
  let route, handler =
    match (req.Http.meth, req.Http.path) with
    | Http.POST, "/solve" -> ("/solve", fun () -> handle_solve t fd body ~keep)
    | Http.POST, "/batch" -> ("/batch", fun () -> handle_batch t fd body ~keep)
    | Http.GET, "/healthz" -> ("/healthz", fun () -> handle_healthz t fd ~keep)
    | Http.GET, "/metrics" -> ("/metrics", fun () -> handle_metrics t fd ~keep)
    | _, ("/solve" | "/batch" | "/healthz" | "/metrics") ->
        ( req.Http.path,
          fun () ->
            Http.write_response fd ~status:405 ~headers:json_headers
              ~keep_alive:keep
              (error_body "method_not_allowed" "unsupported method");
            405 )
    | _ ->
        ( "other",
          fun () ->
            Http.write_response fd ~status:404 ~headers:json_headers
              ~keep_alive:keep
              (error_body "not_found" "unknown route");
            404 )
  in
  let t0 = now () in
  let status, keep =
    try
      let status = handler () in
      (* Leftover body bytes would be parsed as the next request line;
         consume them so keep-alive stays aligned. *)
      Http.drain body;
      (status, keep)
    with
    | Http.Payload_too_large ->
        (try
           Http.write_response fd ~status:413 ~headers:json_headers
             ~keep_alive:false
             (error_body "too_large" "request body exceeds the limit")
         with _ -> ());
        (413, false)
    | Http.Bad_request msg ->
        (try
           Http.write_response fd ~status:400 ~headers:json_headers
             ~keep_alive:false (error_body "bad_request" msg)
         with _ -> ());
        (400, false)
  in
  count_request t ~route ~status;
  Metrics.observe t.metrics request_seconds
    ~help:"HTTP request wall time by route" ~labels:[ ("route", route) ]
    (now () -. t0);
  keep

(* --------------------------------------------------------- connections *)

let enter_request t =
  Mutex.lock t.m;
  t.busy <- t.busy + 1;
  Mutex.unlock t.m

let leave_request t =
  Mutex.lock t.m;
  t.busy <- t.busy - 1;
  Mutex.unlock t.m

let handle_connection t fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  let conn = Http.conn_of_fd ~limits:t.limits fd in
  let rec loop () =
    match Http.read_request conn with
    | None -> ()
    | Some req ->
        enter_request t;
        let keep =
          Fun.protect
            ~finally:(fun () -> leave_request t)
            (fun () -> handle_request t fd conn req)
        in
        if keep && not (Atomic.get t.stop) then loop ()
  in
  try loop () with
  | Http.Bad_request msg ->
      (* Unparseable request head: best-effort 400, then hang up. *)
      (try
         Http.write_response fd ~status:400 ~headers:json_headers
           ~keep_alive:false (error_body "bad_request" msg)
       with _ -> ())
  | Http.Payload_too_large -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
  | Sys_error _ -> ()

(* ---------------------------------------------------------- lifecycle *)

let create ?(addr = "127.0.0.1") ?(port = 0) ?(backlog = 64)
    ?(limits = Http.default_limits) ?(drain_timeout = 10.0) ?resolve
    ?(metrics = Metrics.create ()) ~pool () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  let inet =
    try Unix.inet_addr_of_string addr
    with _ -> invalid_arg (Printf.sprintf "Server.create: bad address %S" addr)
  in
  (try Unix.bind lfd (Unix.ADDR_INET (inet, port))
   with exn ->
     Unix.close lfd;
     raise exn);
  Unix.listen lfd backlog;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      lfd;
      port;
      pool;
      resolve;
      metrics;
      limits;
      drain_timeout;
      stop = Atomic.make false;
      m = Mutex.create ();
      busy = 0;
      conns = [];
      next_conn = 0;
    }
  in
  register_gauges t;
  t

let port t = t.port
let metrics t = t.metrics
let request_stop t = Atomic.set t.stop true
let draining t = Atomic.get t.stop

let register_conn t fd =
  Mutex.lock t.m;
  let id = t.next_conn in
  t.next_conn <- id + 1;
  t.conns <- (id, fd) :: t.conns;
  Mutex.unlock t.m;
  id

let unregister_conn t id =
  Mutex.lock t.m;
  t.conns <- List.filter (fun (i, _) -> i <> id) t.conns;
  Mutex.unlock t.m

let spawn_connection t fd =
  let id = register_conn t fd in
  ignore
    (Thread.create
       (fun () ->
         Fun.protect
           ~finally:(fun () ->
             unregister_conn t id;
             try Unix.close fd with _ -> ())
           (fun () -> handle_connection t fd))
       ())

let snapshot t =
  Mutex.lock t.m;
  let busy = t.busy and conns = t.conns in
  Mutex.unlock t.m;
  (busy, conns)

(* Stop accepting, then give in-flight requests up to the drain deadline
   before force-closing what remains.  Connection threads close their
   own sockets on the way out, so the force step only [shutdown]s to
   unblock reads. *)
let drain t =
  let deadline = now () +. t.drain_timeout in
  let rec wait_busy () =
    let busy, _ = snapshot t in
    if busy > 0 && now () < deadline then begin
      Thread.delay 0.02;
      wait_busy ()
    end
  in
  wait_busy ();
  let _, conns = snapshot t in
  List.iter
    (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    conns;
  (* Grace period for the connection threads to observe the shutdown and
     unwind; they own the close. *)
  let grace = now () +. 2.0 in
  let rec wait_conns () =
    let _, conns = snapshot t in
    if conns <> [] && now () < grace then begin
      Thread.delay 0.02;
      wait_conns ()
    end
  in
  wait_conns ()

let run t =
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.lfd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.lfd with
          | exception
              Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
              ()
          | fd, _addr -> spawn_connection t fd));
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close t.lfd with _ -> ());
  drain t
