open Service

type t = {
  lfd : Unix.file_descr;
  port : int;
  pool : Pool.t;
  resolve : Batch.resolver option;
  metrics : Metrics.t;
  limits : Http.limits;
  reactor : Reactor.t;
  node : Cluster.Node.t option;
  stop : bool Atomic.t;
}

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------- metrics *)

let requests_total = "etransform_http_requests_total"
let request_seconds = "etransform_http_request_seconds"

let count_request t ~route ~status =
  Metrics.incr t.metrics requests_total
    ~help:"HTTP requests served, by route and status"
    ~labels:[ ("route", route); ("status", string_of_int status) ]

let register_gauges t =
  let one name help f =
    Metrics.gauge t.metrics name ~help (fun () -> [ ([], f ()) ])
  in
  one "etransform_pool_queue_depth" "Jobs waiting in the pool queue"
    (fun () -> float_of_int (Pool.queue_depth t.pool));
  one "etransform_pool_workers" "Worker domains draining the queue"
    (fun () -> float_of_int (Pool.workers t.pool));
  let cache = Pool.cache t.pool in
  one "etransform_cache_hits_total" "Plan-cache hits since pool start"
    (fun () -> float_of_int (Cache.hits cache));
  one "etransform_cache_misses_total" "Plan-cache misses since pool start"
    (fun () -> float_of_int (Cache.misses cache));
  one "etransform_cache_evictions_total" "Plan-cache LRU evictions"
    (fun () -> float_of_int (Cache.evictions cache));
  one "etransform_cache_entries" "Plans currently cached"
    (fun () -> float_of_int (Cache.length cache));
  one "etransform_http_connections" "Open client connections"
    (fun () -> float_of_int (Reactor.live t.reactor));
  Metrics.gauge t.metrics "etransform_http_conn_state"
    ~help:"Open client connections by state"
    (fun () ->
      let busy = Reactor.busy t.reactor in
      let idle = max 0 (Reactor.live t.reactor - busy) in
      [
        ([ ("state", "busy") ], float_of_int busy);
        ([ ("state", "idle") ], float_of_int idle);
      ]);
  Metrics.gauge t.metrics "etransform_reactor_buffers"
    ~help:"Reactor buffer pool: free-listed and total created"
    (fun () ->
      let free, created = Reactor.pool_stats t.reactor in
      [
        ([ ("kind", "free") ], float_of_int free);
        ([ ("kind", "created") ], float_of_int created);
      ]);
  let tiered = Pool.tiered t.pool in
  Metrics.gauge t.metrics "etransform_cache_lookups_total"
    ~help:"Tiered cache lookups by tier (memory/disk/peer) and result"
    (fun () ->
      List.map
        (fun ((tier, result), n) ->
          ([ ("result", result); ("tier", tier) ], float_of_int n))
        (Tiered.counts tiered));
  match Tiered.disk_bytes tiered with
  | Some bytes ->
      one "etransform_cache_disk_bytes"
        "On-disk plan store segment size in bytes" bytes
  | None -> ()

(* -------------------------------------------------------------- routes *)

let json_headers = [ ("Content-Type", "application/json") ]
let ndjson_headers = [ ("Content-Type", "application/x-ndjson") ]

let error_body code reason =
  Json.to_string
    (Json.Obj [ ("code", Json.Str code); ("reason", Json.Str reason) ])
  ^ "\n"

(* POST /solve: one job spec in, one result line out — byte-compatible
   with the line `etransform batch` prints for the same job.  The body
   is fully read before submission; the fiber then parks on the pool
   ticket's completion hook instead of blocking a thread in await. *)
let handle_solve t rc out body ~keep =
  let text = Http.read_all body in
  match Json.parse text with
  | Error msg ->
      Http.respond out ~status:400 ~headers:json_headers ~keep_alive:keep
        (error_body "invalid" ("body is not JSON: " ^ msg));
      400
  | Ok j -> (
      match Batch.job_of_json ?resolve:t.resolve j with
      | Error msg ->
          Http.respond out ~status:400 ~headers:json_headers ~keep_alive:keep
            (error_body "invalid" msg);
          400
      | Ok job -> (
          match Pool.try_submit t.pool job with
          | None ->
              (* Queue full: shed load instead of stalling the connection
                 (and transitively the reactor) on a blocking submit. *)
              Http.respond out ~status:503
                ~headers:(("Retry-After", "1") :: json_headers)
                ~keep_alive:keep
                (error_body "busy" "job queue is full; retry shortly");
              503
          | Some ticket ->
              let r =
                match Pool.poll ticket with
                | Some r -> r  (* inline pool / cache hit: no parking *)
                | None ->
                    Pool.on_complete ticket (fun _ -> Reactor.notify rc);
                    let rec wait () =
                      match Pool.poll ticket with
                      | Some r -> r
                      | None ->
                          Reactor.wait_signal rc;
                          wait ()
                    in
                    wait ()
              in
              Http.respond out ~status:200 ~headers:json_headers
                ~keep_alive:keep
                (Batch.result_to_line r ^ "\n");
              200))

(* POST /batch: NDJSON request body -> chunked NDJSON response, one line
   per job in input order.  Full-duplex on a single fiber: a sliding
   window of submitted tickets (bounded by the pool queue capacity) is
   flushed head-first whenever a completion notify arrives — including
   while the fiber is parked reading the request body, via the
   [on_signal] read hook — so result chunks go out while the request is
   still arriving. *)
let handle_batch t rc out body ~keep =
  let ch =
    Http.start_chunked_out out ~status:200 ~headers:ndjson_headers
      ~keep_alive:keep ()
  in
  let window = max 1 (Pool.queue_capacity t.pool) in
  let pending : (Pool.ticket, string) result Queue.t = Queue.create () in
  let emit line = Http.write_chunk ch (line ^ "\n") in
  (* Flush everything emittable from the head of the window: invalid
     lines immediately, tickets once resolved.  In-order by
     construction — an unresolved head blocks everything behind it. *)
  let rec emit_ready () =
    match Queue.peek_opt pending with
    | Some (Error msg) ->
        ignore (Queue.pop pending);
        emit (Json.to_string (Batch.invalid_line msg));
        emit_ready ()
    | Some (Ok ticket) -> (
        match Pool.poll ticket with
        | Some r ->
            ignore (Queue.pop pending);
            emit (Batch.result_to_line r);
            emit_ready ()
        | None -> ())
    | None -> ()
  in
  Fun.protect
    ~finally:(fun () -> Reactor.set_on_signal rc None)
    (fun () ->
      Reactor.set_on_signal rc (Some emit_ready);
      let rec submit job =
        match Pool.try_submit t.pool job with
        | Some ticket ->
            Pool.on_complete ticket (fun _ -> Reactor.notify rc);
            Queue.push (Ok ticket) pending
        | None ->
            (* Pool queue full.  With tickets of our own in flight their
               completions will notify us; otherwise other connections
               own the queue — back off briefly and retry. *)
            if Queue.is_empty pending then Reactor.sleep rc 0.005
            else Reactor.wait_signal rc;
            emit_ready ();
            submit job
      in
      let rec main () =
        emit_ready ();
        if Queue.length pending >= window then begin
          (* Window full; after [emit_ready] the head is necessarily an
             unresolved ticket, so a notify is guaranteed. *)
          Reactor.wait_signal rc;
          main ()
        end
        else
          match Http.read_line body with
          | None ->
              let rec drain_window () =
                emit_ready ();
                if not (Queue.is_empty pending) then begin
                  Reactor.wait_signal rc;
                  drain_window ()
                end
              in
              drain_window ()
          | Some line ->
              if not (Batch.skippable line) then
                (match Batch.job_of_line ?resolve:t.resolve line with
                | Error msg -> Queue.push (Error msg) pending
                | Ok job -> submit job);
              main ()
      in
      main ());
  Http.finish_chunked ch;
  200

(* POST /sweep: one job spec plus a ["grid"] member -> chunked NDJSON,
   one line per grid point in grid order as each completes, then one
   terminal frontier line.  The first point is admitted with [try_submit]
   BEFORE any response bytes leave, so a saturated pool sheds the whole
   sweep as a clean 503 + Retry-After — exactly like /solve — instead of
   aborting a started stream.  Subsequent points ride the same sliding
   window discipline as /batch. *)
let handle_sweep t rc out body ~keep =
  let t0 = now () in
  let text = Http.read_all body in
  match Json.parse text with
  | Error msg ->
      Http.respond out ~status:400 ~headers:json_headers ~keep_alive:keep
        (error_body "invalid" ("body is not JSON: " ^ msg));
      400
  | Ok j -> (
      match Sweep.request_of_json ?resolve:t.resolve j with
      | Error msg ->
          Http.respond out ~status:400 ~headers:json_headers ~keep_alive:keep
            (error_body "invalid" msg);
          400
      | Ok (base, grid) -> (
          let points = Sweep.expand base grid in
          let tag0, job0 = List.hd points in
          match Pool.try_submit t.pool job0 with
          | None ->
              Http.respond out ~status:503
                ~headers:(("Retry-After", "1") :: json_headers)
                ~keep_alive:keep
                (error_body "busy" "job queue is full; retry shortly");
              503
          | Some ticket0 ->
              let ctx = Sweep.ctx base grid in
              let ch =
                Http.start_chunked_out out ~status:200 ~headers:ndjson_headers
                  ~keep_alive:keep ()
              in
              let window = max 1 (Pool.queue_capacity t.pool) in
              let pending : (string * Pool.ticket) Queue.t = Queue.create () in
              let acc = ref [] in
              let emit line = Http.write_chunk ch (line ^ "\n") in
              let rec emit_ready () =
                match Queue.peek_opt pending with
                | Some (tag, ticket) -> (
                    match Pool.poll ticket with
                    | Some r ->
                        ignore (Queue.pop pending);
                        let p = Sweep.point ctx ~tag r in
                        acc := p :: !acc;
                        emit (Sweep.point_line p);
                        emit_ready ()
                    | None -> ())
                | None -> ()
              in
              Fun.protect
                ~finally:(fun () -> Reactor.set_on_signal rc None)
                (fun () ->
                  Reactor.set_on_signal rc (Some emit_ready);
                  let watch ticket =
                    Pool.on_complete ticket (fun _ -> Reactor.notify rc)
                  in
                  watch ticket0;
                  Queue.push (tag0, ticket0) pending;
                  let rec submit tag job =
                    match Pool.try_submit t.pool job with
                    | Some ticket ->
                        watch ticket;
                        Queue.push (tag, ticket) pending
                    | None ->
                        if Queue.is_empty pending then Reactor.sleep rc 0.005
                        else Reactor.wait_signal rc;
                        emit_ready ();
                        submit tag job
                  in
                  let rec main todo =
                    emit_ready ();
                    if Queue.length pending >= window then begin
                      Reactor.wait_signal rc;
                      main todo
                    end
                    else
                      match todo with
                      | [] ->
                          let rec drain () =
                            emit_ready ();
                            if not (Queue.is_empty pending) then begin
                              Reactor.wait_signal rc;
                              drain ()
                            end
                          in
                          drain ()
                      | (tag, job) :: rest ->
                          submit tag job;
                          main rest
                  in
                  main (List.tl points));
              let s = Sweep.summarize ~wall_s:(now () -. t0) (List.rev !acc) in
              emit (Sweep.frontier_line s);
              Sweep.emit_trace t.pool s;
              Http.finish_chunked ch;
              200))

(* GET /cache/<fingerprint>: the peer-transfer endpoint.  Answers from
   local tiers only (memory + disk, via [find_local]) so a probe from a
   peer never fans back out to our own peers — lookups cannot loop.
   The body is the binary {!Cluster.Codec} payload, byte-identical to
   the disk segment entry; a miss is a plain 404. *)
let handle_cache t out fp ~keep =
  match Tiered.find_local (Pool.tiered t.pool) fp with
  | Some outcome ->
      Http.respond out ~status:200
        ~headers:[ ("Content-Type", "application/octet-stream") ]
        ~keep_alive:keep
        (Cluster.Codec.encode outcome);
      200
  | None ->
      Http.respond out ~status:404 ~headers:json_headers ~keep_alive:keep
        (error_body "miss" "fingerprint not cached on this node");
      404

(* POST /gossip: one digest exchange.  The sender's Bloom digest is
   installed (so our future probes to it are gated) and ours comes back
   in the response body. *)
let handle_gossip t out body ~keep =
  match t.node with
  | None ->
      Http.respond out ~status:404 ~headers:json_headers ~keep_alive:keep
        (error_body "not_found" "cluster gossip is not enabled");
      404
  | Some node -> (
      match Cluster.Node.gossip_receive node (Http.read_all body) with
      | Some reply ->
          Http.respond out ~status:200 ~headers:json_headers ~keep_alive:keep
            (reply ^ "\n");
          200
      | None ->
          Http.respond out ~status:400 ~headers:json_headers ~keep_alive:keep
            (error_body "invalid" "malformed gossip body");
          400)

let handle_healthz t out ~keep =
  let body =
    Json.to_string
      (Json.Obj
         [
           ( "status",
             Json.Str (if Atomic.get t.stop then "draining" else "ok") );
           ("workers", Json.Num (float_of_int (Pool.workers t.pool)));
           ( "queue_depth",
             Json.Num (float_of_int (Pool.queue_depth t.pool)) );
           ( "queue_capacity",
             Json.Num (float_of_int (Pool.queue_capacity t.pool)) );
         ])
    ^ "\n"
  in
  Http.respond out ~status:200 ~headers:json_headers ~keep_alive:keep body;
  200

let handle_metrics t out ~keep =
  Http.respond out ~status:200
    ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
    ~keep_alive:keep
    (Metrics.render t.metrics);
  200

(* Dispatch one parsed request.  Returns [true] to keep the connection
   open for the next request.  [started] records whether response bytes
   already left, so late error paths (408/413/400) know not to splice a
   second head into a stream. *)
let handle_request t rc out conn req ~started =
  let body = Http.body_of_request conn req in
  let keep = Http.keep_alive req && not (Atomic.get t.stop) in
  let route, handler =
    match (req.Http.meth, req.Http.path) with
    | Http.POST, "/solve" ->
        ("/solve", fun () -> handle_solve t rc out body ~keep)
    | Http.POST, "/batch" ->
        ("/batch", fun () -> handle_batch t rc out body ~keep)
    | Http.POST, "/sweep" ->
        ("/sweep", fun () -> handle_sweep t rc out body ~keep)
    | Http.GET, "/healthz" -> ("/healthz", fun () -> handle_healthz t out ~keep)
    | Http.GET, "/metrics" -> ("/metrics", fun () -> handle_metrics t out ~keep)
    | Http.POST, "/gossip" ->
        ("/gossip", fun () -> handle_gossip t out body ~keep)
    | Http.GET, path
      when String.length path > 7 && String.sub path 0 7 = "/cache/" ->
        let fp = String.sub path 7 (String.length path - 7) in
        ("/cache", fun () -> handle_cache t out fp ~keep)
    | _, ("/solve" | "/batch" | "/sweep" | "/healthz" | "/metrics" | "/gossip")
      ->
        ( req.Http.path,
          fun () ->
            Http.respond out ~status:405 ~headers:json_headers ~keep_alive:keep
              (error_body "method_not_allowed" "unsupported method");
            405 )
    | _ ->
        ( "other",
          fun () ->
            Http.respond out ~status:404 ~headers:json_headers ~keep_alive:keep
              (error_body "not_found" "unknown route");
            404 )
  in
  let t0 = now () in
  let status, keep =
    try
      started := true;
      let status = handler () in
      (* Leftover body bytes would be parsed as the next request line;
         consume them so keep-alive stays aligned. *)
      Http.drain body;
      (status, keep)
    with
    | Http.Payload_too_large ->
        (try
           Http.respond out ~status:413 ~headers:json_headers
             ~keep_alive:false
             (error_body "too_large" "request body exceeds the limit")
         with _ -> ());
        (413, false)
    | Http.Bad_request msg ->
        (try
           Http.respond out ~status:400 ~headers:json_headers
             ~keep_alive:false (error_body "bad_request" msg)
         with _ -> ());
        (400, false)
  in
  count_request t ~route ~status;
  Metrics.observe t.metrics request_seconds
    ~help:"HTTP request wall time by route" ~labels:[ ("route", route) ]
    (now () -. t0);
  keep

(* --------------------------------------------------------- connections *)

(* The per-connection fiber: parse requests off the reactor's byte
   source, answer through the batched writer, loop on keep-alive.  The
   HTTP conn and writer live for the whole connection, reusing the
   pooled buffers and scratch space across requests. *)
let handle_connection t rc =
  let conn =
    Http.conn_of_source ~limits:t.limits ~buf:(Reactor.in_buf rc)
      (fun b off len -> Reactor.read rc b off len)
  in
  let out =
    Http.out_of_sink ~buf:(Reactor.out_buf rc)
      (fun b off len -> Reactor.write_some rc b off len)
  in
  let started = ref false in
  let rec loop () =
    match Http.read_request conn with
    | None -> ()
    | Some req ->
        started := false;
        Reactor.set_in_request rc true;
        let keep =
          Fun.protect
            ~finally:(fun () -> Reactor.set_in_request rc false)
            (fun () -> handle_request t rc out conn req ~started)
        in
        if keep && not (Atomic.get t.stop) then loop ()
  in
  try loop () with
  | Http.Bad_request msg ->
      (* Unparseable request head: best-effort 400, then hang up. *)
      if not !started then
        (try
           Http.respond out ~status:400 ~headers:json_headers
             ~keep_alive:false (error_body "bad_request" msg)
         with _ -> ())
  | Http.Payload_too_large -> ()
  | Reactor.Idle_timeout ->
      (* Slow-loris eviction: the peer stalled past the idle limit.  If
         no response bytes are in flight, say why before closing. *)
      if not !started then
        (try
           Http.respond out ~status:408 ~headers:json_headers
             ~keep_alive:false
             (error_body "timeout" "connection idle too long")
         with _ -> ())
  | Unix.Unix_error
      ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _) ->
      ()
  | Sys_error _ -> ()

(* A connection arriving past max-conns: answer 503 and close without
   entering the reactor's accounting. *)
let reject_connection fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      try
        Http.write_response fd ~status:503
          ~headers:(("Retry-After", "1") :: json_headers) ~keep_alive:false
          (error_body "overloaded" "connection limit reached; retry shortly")
      with _ -> ())

(* ---------------------------------------------------------- lifecycle *)

let create ?(addr = "127.0.0.1") ?(port = 0) ?(backlog = 64)
    ?(limits = Http.default_limits) ?(drain_timeout = 10.0) ?resolve
    ?(metrics = Metrics.create ()) ?(max_conns = 4096) ?(idle_timeout = 30.0)
    ?(shards = 1) ?node ~pool () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  let inet =
    try Unix.inet_addr_of_string addr
    with _ -> invalid_arg (Printf.sprintf "Server.create: bad address %S" addr)
  in
  (try Unix.bind lfd (Unix.ADDR_INET (inet, port))
   with exn ->
     Unix.close lfd;
     raise exn);
  Unix.listen lfd backlog;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let reactor =
    Reactor.create ~shards ~max_conns ~idle_timeout ~drain_timeout ()
  in
  let t =
    {
      lfd;
      port;
      pool;
      resolve;
      metrics;
      limits;
      reactor;
      node;
      stop = Atomic.make false;
    }
  in
  (* The gossip digest must advertise everything /cache can serve:
     in-memory LRU entries plus the on-disk store. *)
  (match node with
  | Some node ->
      Cluster.Node.set_local_keys node (fun () ->
          let tiered = Pool.tiered pool in
          let disk =
            match Cluster.Node.store node with
            | Some s -> Cluster.Store.keys s
            | None -> []
          in
          List.sort_uniq compare (Tiered.keys tiered @ disk))
  | None -> ());
  register_gauges t;
  t

let port t = t.port
let metrics t = t.metrics

let request_stop t =
  Atomic.set t.stop true;
  Reactor.request_stop t.reactor

let draining t = Atomic.get t.stop

let run t =
  Reactor.run t.reactor ~listener:t.lfd ~reject:reject_connection
    (fun rc -> handle_connection t rc);
  (* Drain complete: make the disk tier's index snapshot current so the
     next start skips the full segment scan. *)
  Option.iter Cluster.Node.flush t.node
