(** Event-driven reactor core: N-shard readiness loops (poll(2) via a C
    stub, [Unix.select] fallback) driving per-connection fibers built on
    OCaml 5 effects.

    Handlers are written in plain blocking style against {!read} and
    {!write_some}; when a call would block, the fiber performs a [Wait]
    effect and its continuation parks until the shard's poll loop
    reports the fd ready.  One shard is one thread is one poll loop —
    continuations are only ever resumed on the thread that parked them,
    and every parked continuation is resumed exactly once ([Ready],
    [Timeout], or [Stopped] during drain), so [Fun.protect] finalizers
    in handlers always run.

    Connections borrow their read and write-staging buffers from a
    shared free-list pool at accept and return them at close: the
    steady state allocates no buffers.

    Cross-thread completions (a {!Service.Pool} worker finishing a job)
    call {!notify}; the wake-up travels through the shard's self-pipe
    and resumes the fiber if it is waiting via {!wait_signal} (or a
    {!read} with an [on_signal] hook installed).  Wake-ups are
    advisory: resumed fibers re-check their condition, so duplicate or
    stale notifies are harmless.

    Slow-loris protection: every blocking read or write carries an
    idle deadline; expiry raises {!Idle_timeout} in the fiber.  A
    listener burst over [max_conns] hands the surplus fd to the
    [reject] callback (the daemon answers 503 and closes). *)

type t

(** A connection owned by a shard.  Valid only inside its handler
    fiber, except for {!notify} which is thread-safe. *)
type conn

(** Raised in fibers interrupted by the drain. *)
exception Aborted

(** Raised when a read/write idles past the limit. *)
exception Idle_timeout

(** [create ()] builds the reactor (shard threads start in {!run}).
    [shards] readiness loops (default 1 — the sweet spot unless
    handlers burn CPU); at most [max_conns] live connections (default
    4096); [idle_timeout] seconds before a stalled read/write is
    evicted (default 30, [0.] disables); [drain_timeout] seconds
    in-flight requests get after {!request_stop} (default 10);
    [buf_size] bytes per pooled buffer (default 16 KiB). *)
val create :
  ?shards:int ->
  ?max_conns:int ->
  ?idle_timeout:float ->
  ?drain_timeout:float ->
  ?buf_size:int ->
  unit ->
  t

(** [run t ~listener handler] serves until {!request_stop}: shard 0
    accepts from [listener] (made non-blocking here) in the calling
    thread, shards 1.. run in their own threads; each accepted fd is
    adopted by a shard and [handler] runs as its fiber.  [reject]
    receives (and owns) fds accepted beyond [max_conns].  Returns after
    the drain: listener closed, every fiber finished, every connection
    closed. *)
val run :
  t ->
  listener:Unix.file_descr ->
  ?reject:(Unix.file_descr -> unit) ->
  (conn -> unit) ->
  unit

(** Stop accepting and drain.  Callable from any thread or a signal
    handler; idempotent.  Idle keep-alive connections close
    immediately; in-flight requests get [drain_timeout] seconds, then
    their fibers are resumed with [Stopped] (surfacing as {!Aborted}). *)
val request_stop : t -> unit

val stopping : t -> bool

(** {2 Fiber-side operations} — only valid inside a handler. *)

val fd : conn -> Unix.file_descr

(** The connection's pooled buffers, for [Http.conn_of_source ~buf] and
    [Http.out_of_sink ~buf]. *)
val in_buf : conn -> Bytes.t

val out_buf : conn -> Bytes.t

(** [read conn buf off len] — the byte source: reads, parking the fiber
    on would-block.  Returns 0 at EOF.  Raises {!Idle_timeout} past the
    idle deadline, {!Aborted} when stopped. *)
val read : conn -> Bytes.t -> int -> int -> int

(** [write_some conn buf off len] — the byte sink: writes some bytes,
    parking on would-block.  Same exceptions as {!read}. *)
val write_some : conn -> Bytes.t -> int -> int -> int

(** Mark the fiber as inside (outside) a request.  Idle connections
    (not in a request) are closed immediately at drain; busy ones get
    the drain window.  Feeds the busy/idle metrics. *)
val set_in_request : conn -> bool -> unit

(** [set_on_signal conn (Some f)] makes blocked {!read}s signal-aware:
    a {!notify} wakes the read, runs [f ()] in the fiber, and retries.
    The /batch route uses this to stream completed results out while
    parked on request-body input.  Reset to [None] when the request
    ends. *)
val set_on_signal : conn -> (unit -> unit) option -> unit

(** Thread-safe wake-up (e.g. from a pool worker's completion hook).
    Latches if the fiber is not currently waiting for a signal — the
    next {!wait_signal} returns immediately. *)
val notify : conn -> unit

(** Park until a {!notify} arrives (or consume a latched one).  Raises
    {!Aborted} when stopped.  May return spuriously — callers re-check
    their condition in a loop. *)
val wait_signal : conn -> unit

(** Park for [d] seconds (a {!notify} may end it early). *)
val sleep : conn -> float -> unit

(** {2 Introspection} *)

(** Open connections. *)
val live : t -> int

(** Connections currently inside a request. *)
val busy : t -> int

(** Buffer pool [(free, created)] counts. *)
val pool_stats : t -> int * int

val idle_timeout : t -> float
val max_conns : t -> int
val shard_count : t -> int
