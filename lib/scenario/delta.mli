(** Incremental re-planning against a previous plan.

    Enterprise estates drift — groups grow, shrink, retire, appear — and
    a nightly re-plan should not pay the full MILP again when 90% of the
    estate is untouched.  [replan] pins every structurally-unchanged
    group to its previous primary (via {!Etransform.Lp_builder.options}
    pins) and forces the branch-and-bound warm start, so the solver only
    re-decides the delta. *)

type change =
  | Resize of string * int        (** [Resize (name, servers)] *)
  | Scale_data of string * float  (** multiply [data_mb_month] *)
  | Retire of string              (** remove the group *)
  | Add of Etransform.App_group.t * int
      (** new group and its current-DC index *)

(** Apply changes in order, addressing groups by name.  Shared-risk
    ([colocate_avoid]) indices of surviving groups are remapped across
    retirements; references to retired groups are dropped. *)
val apply : Etransform.Asis.t -> change list -> Etransform.Asis.t

(** Content fingerprint of a plan (hex MD5 of the canonical placement
    serialization) — the handle clients pass back to name "the previous
    plan" without shipping it. *)
val fingerprint : Etransform.Placement.t -> string

(** [pins ~previous:(prev_asis, prev_plan) asis] is the (group, target)
    pin list for groups of [asis] that existed under the same name in
    [prev_asis] with identical structure.  Groups with shared-risk
    constraints are never pinned — their admissible set depends on other
    groups' placements. *)
val pins :
  previous:Etransform.Asis.t * Etransform.Placement.t ->
  Etransform.Asis.t -> (int * int) list

type replanned = {
  outcome : Etransform.Solver.outcome;
  pinned : int;                 (** groups pinned to their previous primary *)
  previous_fingerprint : string;
}

(** Warm-started incremental re-plan.  Extra [builder] pins are kept;
    [milp] is forced to [warm_start = true]. *)
val replan :
  ?builder:Etransform.Lp_builder.options ->
  ?milp:Lp.Milp.options ->
  ?local_search:bool ->
  previous:Etransform.Asis.t * Etransform.Placement.t ->
  Etransform.Asis.t -> replanned
