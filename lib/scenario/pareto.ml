type point = { cost : float; resilience : float; tag : string }

let dominates a b =
  (a.cost <= b.cost && a.resilience >= b.resilience)
  && (a.cost < b.cost || a.resilience > b.resilience)

(* Canonical order: cheaper first, then more resilient, then tag.  The
   frontier scan keeps a point only when it is strictly more resilient
   than everything cheaper — so duplicates collapse and the result is
   independent of input order, which the fuzz oracle pins down. *)
let compare_points a b =
  match Float.compare a.cost b.cost with
  | 0 -> (
      match Float.compare b.resilience a.resilience with
      | 0 -> String.compare a.tag b.tag
      | c -> c)
  | c -> c

let frontier points =
  let sorted = List.sort compare_points points in
  let rec scan best acc = function
    | [] -> List.rev acc
    | p :: rest ->
        if p.resilience > best then scan p.resilience (p :: acc) rest
        else scan best acc rest
  in
  scan neg_infinity [] sorted
