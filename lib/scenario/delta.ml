open Etransform

type change =
  | Resize of string * int
  | Scale_data of string * float
  | Retire of string
  | Add of App_group.t * int

(* Changes address groups by name; indices in [colocate_avoid] are
   remapped after retirements so surviving shared-risk pairs keep
   pointing at each other. *)
let apply asis changes =
  let items =
    ref
      (Array.to_list
         (Array.mapi
            (fun i g -> (Some i, g, asis.Asis.current_placement.(i)))
            asis.Asis.groups))
  in
  let map_named name f =
    items :=
      List.map
        (fun (o, g, cp) ->
          if g.App_group.name = name then (o, f g, cp) else (o, g, cp))
        !items
  in
  List.iter
    (function
      | Resize (name, servers) ->
          map_named name (fun g -> { g with App_group.servers })
      | Scale_data (name, k) ->
          map_named name (fun g ->
              {
                g with
                App_group.data_mb_month = g.App_group.data_mb_month *. k;
              })
      | Retire name ->
          items :=
            List.filter (fun (_, g, _) -> g.App_group.name <> name) !items
      | Add (g, cp) -> items := !items @ [ (None, g, cp) ])
    changes;
  let final = Array.of_list !items in
  let m = Array.length final in
  (* old group index -> new index, for colocate_avoid remapping *)
  let new_of_old = Hashtbl.create 16 in
  Array.iteri
    (fun i (o, _, _) ->
      match o with Some old -> Hashtbl.add new_of_old old i | None -> ())
    final;
  let groups =
    Array.map
      (fun (o, g, _) ->
        let avoid =
          match o with
          | Some _ ->
              List.filter_map
                (fun j -> Hashtbl.find_opt new_of_old j)
                g.App_group.colocate_avoid
          | None ->
              (* freshly added groups reference the new estate directly *)
              List.filter (fun j -> j >= 0 && j < m) g.App_group.colocate_avoid
        in
        { g with App_group.colocate_avoid = avoid })
      final
  in
  let current_placement = Array.map (fun (_, _, cp) -> cp) final in
  { asis with Asis.groups; current_placement }

(* ---------------------------------------------------------- fingerprint *)

let fingerprint (p : Placement.t) =
  let b = Buffer.create 128 in
  Buffer.add_string b "plan:v1";
  Array.iter
    (fun j -> Buffer.add_string b (Printf.sprintf ";%d" j))
    p.Placement.primary;
  (match p.Placement.secondary with
  | None -> Buffer.add_string b "|-"
  | Some sec ->
      Buffer.add_char b '|';
      Array.iter (fun j -> Buffer.add_string b (Printf.sprintf ";%d" j)) sec);
  Buffer.add_string b (if p.Placement.dedicated_backups then "|d" else "|s");
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ----------------------------------------------------------------- pins *)

(* A group is pinned when a group of the same name existed in the
   previous estate with identical structure (servers, data, users,
   latency, placement restrictions).  Such a group saw the same column
   costs before, so its previous primary is a sound warm start; anything
   that changed — or whose shared-risk partners changed — re-enters the
   optimization. *)
let pins ~previous:(prev_asis, (prev_place : Placement.t)) asis =
  let prev_by_name = Hashtbl.create 16 in
  Array.iteri
    (fun k (g : App_group.t) -> Hashtbl.replace prev_by_name g.App_group.name k)
    prev_asis.Asis.groups;
  let same (a : App_group.t) (b : App_group.t) =
    a.App_group.servers = b.App_group.servers
    && a.App_group.data_mb_month = b.App_group.data_mb_month
    && a.App_group.users = b.App_group.users
    && a.App_group.latency = b.App_group.latency
    && a.App_group.allowed_dcs = b.App_group.allowed_dcs
  in
  let out = ref [] in
  Array.iteri
    (fun i (g : App_group.t) ->
      match Hashtbl.find_opt prev_by_name g.App_group.name with
      | Some k
        when same g prev_asis.Asis.groups.(k)
             && g.App_group.colocate_avoid = [] ->
          out := (i, prev_place.Placement.primary.(k)) :: !out
      | _ -> ())
    asis.Asis.groups;
  List.rev !out

type replanned = {
  outcome : Solver.outcome;
  pinned : int;
  previous_fingerprint : string;
}

let replan ?(builder = Lp_builder.default_options)
    ?(milp = Solver.default_milp_options) ?(local_search = true)
    ~previous:(prev_asis, prev_place) asis =
  let pinned = pins ~previous:(prev_asis, prev_place) asis in
  let builder =
    { builder with Lp_builder.pins = pinned @ builder.Lp_builder.pins }
  in
  let milp = { milp with Lp.Milp.warm_start = true } in
  let outcome = Solver.consolidate ~builder ~milp ~local_search asis in
  {
    outcome;
    pinned = List.length pinned;
    previous_fingerprint = fingerprint prev_place;
  }
