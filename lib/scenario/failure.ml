open Etransform

type spec = {
  radius_km : float option;
  max_concurrent : int;
  warning_s : float option;
  link_mb_s : float;
}

let default =
  { radius_km = None; max_concurrent = 1; warning_s = None; link_mb_s = 1000.0 }

let is_default s = s = default

(* ------------------------------------------------------------ geography *)

(* Estates carry no coordinates, only DC names.  Geography is synthesized
   deterministically: a DC whose name mentions a gazetteer metro sits at
   that metro; anything else hashes into the gazetteer with a small
   name-derived jitter, so distinct anonymous DCs land at distinct but
   stable points.  Determinism matters twice over — job fingerprints
   assume a scenario'd solve is a pure function of the job, and the sweep
   oracles re-derive the same sites run after run. *)

let ascii_lower s = String.lowercase_ascii s

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n > 0 && go 0

let named_place name =
  let lname = ascii_lower name in
  Array.fold_left
    (fun acc (pl : Geo.Places.place) ->
      match acc with
      | Some _ -> acc
      | None ->
          if contains ~affix:(ascii_lower pl.Geo.Places.loc.Geo.Location.name) lname
          then Some pl.Geo.Places.loc
          else None)
    None Geo.Places.all

let site_of_name name =
  match named_place name with
  | Some loc -> Geo.Location.v ~name ~lat:loc.Geo.Location.lat ~lon:loc.Geo.Location.lon
  | None ->
      let h = Hashtbl.hash name in
      let h2 = Hashtbl.hash (name ^ "#lat") in
      let h3 = Hashtbl.hash (name ^ "#lon") in
      let base = Geo.Places.all.(h mod Array.length Geo.Places.all) in
      let jitter h = (float_of_int (h mod 1000) /. 1000.0 -. 0.5) *. 2.0 in
      let lat =
        Float.max (-85.0)
          (Float.min 85.0 (base.Geo.Places.loc.Geo.Location.lat +. jitter h2))
      in
      let lon = base.Geo.Places.loc.Geo.Location.lon +. jitter h3 in
      Geo.Location.v ~name ~lat ~lon

let sites asis =
  Array.map
    (fun (dc : Data_center.t) -> site_of_name dc.Data_center.name)
    asis.Asis.targets

(* --------------------------------------------------------------- events *)

(* Hard cap on the compiled event count: each event adds O(n) pool rows
   to the stage-2 MILP, and multi-failure unions grow combinatorially.
   Enumeration is breadth-first by union size, so the cap drops the
   widest (least likely) combinations first. *)
let max_events = 256

let events ?(spec = default) sites =
  let n = Array.length sites in
  let within a b =
    match spec.radius_km with
    | None -> a = b
    | Some r -> a = b || Geo.Location.distance_km sites.(a) sites.(b) <= r
  in
  (* One base event per site: its correlated-failure region. *)
  let base =
    List.init n (fun a ->
        List.init n Fun.id |> List.filter (fun b -> within a b))
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] and count = ref 0 in
  let add ev =
    let ev = List.sort_uniq compare ev in
    if (not (Hashtbl.mem seen ev)) && !count < max_events then begin
      Hashtbl.add seen ev ();
      out := ev :: !out;
      incr count
    end
  in
  (* Unions of up to [max_concurrent] base regions, smallest unions
     first so singleton regions keep their historical order. *)
  let base_arr = Array.of_list base in
  let nb = Array.length base_arr in
  let rec combos k start acc =
    if k = 0 then add acc
    else
      for i = start to nb - 1 do
        combos (k - 1) (i + 1) (List.rev_append base_arr.(i) acc)
      done
  in
  let k_max = max 1 spec.max_concurrent in
  for k = 1 to min k_max nb do
    combos k 0 []
  done;
  Array.of_list (List.rev !out)

let evac_mb spec =
  Option.map (fun w -> spec.link_mb_s *. Float.max 0.0 w) spec.warning_s

let compile spec asis =
  let sites = sites asis in
  { Dr_planner.events = events ~spec sites; evac_mb = evac_mb spec }

(* ----------------------------------------------------------- resilience *)

type scored = {
  resilience : float;
  surviving_servers : int;
  total_servers : int;
  worst_event : int list;
}

(* Server-weighted fraction of the estate that survives the worst single
   failure event: a group survives an event unless its primary is in the
   event and either it has no backup, its backup is also in the event, or
   its data could not be evacuated to the backup inside the warning
   window.  Evacuation is scored per (primary, backup) link: groups
   claim the link budget in index order, mirroring the deterministic
   order the planner's constraints see. *)
let score ?(spec = default) asis sites (placement : Placement.t) =
  let evs = events ~spec sites in
  let budget = evac_mb spec in
  let m = Asis.num_groups asis in
  let primary = placement.Placement.primary in
  let secondary = placement.Placement.secondary in
  (* Which groups are evacuable, given per-link budgets claimed in group
     index order. *)
  let evacuable =
    match (budget, secondary) with
    | None, _ -> Array.make m true
    | Some _, None -> Array.make m true
    | Some budget, Some sec ->
        let n = Asis.num_targets asis in
        let used = Array.make_matrix n n 0.0 in
        Array.init m (fun i ->
            let a = primary.(i) and b = sec.(i) in
            let d = asis.Asis.groups.(i).App_group.data_mb_month in
            if a = b then true
            else begin
              let ok = used.(a).(b) +. d <= budget +. 1e-9 in
              if ok then used.(a).(b) <- used.(a).(b) +. d;
              ok
            end)
  in
  let total = Asis.total_servers asis in
  let worst = ref [] and worst_surv = ref total in
  Array.iter
    (fun ev ->
      let surv = ref 0 in
      for i = 0 to m - 1 do
        let s = asis.Asis.groups.(i).App_group.servers in
        let survives =
          if not (List.mem primary.(i) ev) then true
          else
            match secondary with
            | None -> false
            | Some sec ->
                (not (List.mem sec.(i) ev))
                && sec.(i) <> primary.(i)
                && evacuable.(i)
        in
        if survives then surv := !surv + s
      done;
      if !surv < !worst_surv then begin
        worst_surv := !surv;
        worst := ev
      end)
    evs;
  {
    resilience =
      (if total = 0 then 1.0
       else float_of_int !worst_surv /. float_of_int total);
    surviving_servers = !worst_surv;
    total_servers = total;
    worst_event = !worst;
  }

let resilience ?spec asis sites placement =
  (score ?spec asis sites placement).resilience
