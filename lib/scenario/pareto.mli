(** Cost-vs-resilience Pareto frontiers for scenario sweeps. *)

type point = {
  cost : float;        (** total monthly cost of the plan *)
  resilience : float;  (** {!Failure.score} resilience of the plan *)
  tag : string;        (** grid-point label, used as a deterministic tiebreak *)
}

(** [dominates a b]: [a] is no worse on both axes and strictly better on
    at least one. *)
val dominates : point -> point -> bool

(** Non-dominated subset, sorted by increasing cost (and strictly
    increasing resilience).  Deterministic and insensitive to input
    order: ties on both axes collapse to the lexicographically smallest
    tag. *)
val frontier : point list -> point list
