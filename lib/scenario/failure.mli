(** Richer disaster-recovery failure models over DC geography.

    The paper's DR stage assumes exactly one site fails at a time.  This
    module compiles two generalizations from the related work down to
    the {!Etransform.Dr_planner.scenario} constraint form, so the MILP
    core is reused unchanged:

    - {b correlated-region / multi-failure events}: every target DC gets
      deterministic coordinates (see {!sites}); a failure radius turns
      each site into a correlated region (all sites within the radius
      fail together), and [max_concurrent] > 1 additionally unions up to
      that many regions into one event — shared pools must then absorb
      the joint failover of each event;
    - {b ε-time early-warning evacuation}: with a warning window of
      [warning_s] seconds and [link_mb_s] of evacuation bandwidth per
      primary→backup link, at most [link_mb_s x warning_s] MB of data is
      recoverable per link, bounding which groups a backup site can
      actually protect.

    Both compile to extra rows/exclusions in the stage-2 model;
    {!score} evaluates any plan against the same event set. *)

type spec = {
  radius_km : float option;
      (** correlated-failure radius over {!sites}; [None] = sites fail
          independently *)
  max_concurrent : int;
      (** simultaneous region failures per event (default 1) *)
  warning_s : float option;
      (** early-warning window in seconds; [None] = no evacuation bound *)
  link_mb_s : float;
      (** evacuation bandwidth per primary→backup link, MB/s (default 1000) *)
}

(** Single independent failures, no evacuation bound — the paper's model. *)
val default : spec

val is_default : spec -> bool

(** Deterministic synthetic geography for an estate's target DCs: a DC
    whose name mentions a {!Geo.Places} metro sits at that metro; others
    hash into the gazetteer with a stable name-derived jitter.  A pure
    function of the DC names — job fingerprints rely on this. *)
val sites : Etransform.Asis.t -> Geo.Location.t array

(** The synthetic site for one DC name — the per-element function behind
    {!sites}. *)
val site_of_name : string -> Geo.Location.t

(** [events ~spec sites] enumerates the compiled failure events: unions
    of up to [spec.max_concurrent] correlated regions, each event the
    sorted list of failing target indices, deduplicated, smallest unions
    first, capped at 256 events.  With the default spec this is exactly
    one singleton event per site. *)
val events : ?spec:spec -> Geo.Location.t array -> int list array

(** Per-link evacuation budget in MB ([link_mb_s x warning_s]), if any. *)
val evac_mb : spec -> float option

(** Compile a spec against an estate into the planner's constraint form. *)
val compile : spec -> Etransform.Asis.t -> Etransform.Dr_planner.scenario

type scored = {
  resilience : float;
      (** server-weighted fraction surviving the worst single event *)
  surviving_servers : int;
  total_servers : int;
  worst_event : int list;  (** the event realizing the minimum *)
}

(** [score ~spec asis sites placement] evaluates a plan against the
    spec's event set: a group survives an event unless its primary is in
    the event and its backup is missing, co-failing, or not evacuable
    within the warning window.  Deterministic in all inputs. *)
val score :
  ?spec:spec -> Etransform.Asis.t -> Geo.Location.t array ->
  Etransform.Placement.t -> scored

(** Just the [resilience] field of {!score}. *)
val resilience :
  ?spec:spec -> Etransform.Asis.t -> Geo.Location.t array ->
  Etransform.Placement.t -> float
