type t = { rows : int; cols : int; a : float array }

let create ~rows ~cols = { rows; cols; a = Array.make (rows * cols) 0.0 }
let copy t = { t with a = Array.copy t.a }
let get t i j = t.a.((i * t.cols) + j)
let set t i j v = t.a.((i * t.cols) + j) <- v

let unsafe_get t i j = Array.unsafe_get t.a ((i * t.cols) + j)

let scale_row t i f =
  let a = t.a in
  let off = i * t.cols in
  for j = off to off + t.cols - 1 do
    Array.unsafe_set a j (Array.unsafe_get a j *. f)
  done

let flip_row t i = scale_row t i (-1.0)

let sub_scaled_vec t ~src f v =
  let a = t.a in
  let off = src * t.cols in
  let n = min t.cols (Array.length v) in
  for j = 0 to n - 1 do
    Array.unsafe_set v j
      (Array.unsafe_get v j -. (f *. Array.unsafe_get a (off + j)))
  done

(* [dst -= f * src] over whole rows, both addressed by their flat offset. *)
let sub_scaled_row t ~src_off ~dst_off f =
  let a = t.a in
  for j = 0 to t.cols - 1 do
    Array.unsafe_set a (dst_off + j)
      (Array.unsafe_get a (dst_off + j)
      -. (f *. Array.unsafe_get a (src_off + j)))
  done

(* [dst -= f * src] visiting only the pivot row's nonzero columns. *)
let sub_scaled_row_nnz a ~src_off ~dst_off f idx nnz =
  for k = 0 to nnz - 1 do
    let j = Array.unsafe_get idx k in
    Array.unsafe_set a (dst_off + j)
      (Array.unsafe_get a (dst_off + j)
      -. (f *. Array.unsafe_get a (src_off + j)))
  done

let pivot ?aux t ~row ~col =
  let a = t.a in
  let cols = t.cols in
  let src_off = row * cols in
  let piv = Array.unsafe_get a (src_off + col) in
  scale_row t row (1.0 /. piv);
  Array.unsafe_set a (src_off + col) 1.0;
  (* Early pivot rows are very sparse (a handful of nonzeros out of
     hundreds of columns), so eliminations walk an index list of the pivot
     row's nonzeros; once the row densifies past half full the plain
     contiguous loop wins and we use it instead. *)
  let idx = Array.make cols 0 in
  let nnz = ref 0 in
  for j = 0 to cols - 1 do
    if Array.unsafe_get a (src_off + j) <> 0.0 then begin
      Array.unsafe_set idx !nnz j;
      incr nnz
    end
  done;
  let nnz = !nnz in
  let sparse = 2 * nnz < cols in
  for i = 0 to t.rows - 1 do
    if i <> row then begin
      let dst_off = i * cols in
      let f = Array.unsafe_get a (dst_off + col) in
      if f <> 0.0 then begin
        if sparse then sub_scaled_row_nnz a ~src_off ~dst_off f idx nnz
        else sub_scaled_row t ~src_off ~dst_off f;
        Array.unsafe_set a (dst_off + col) 0.0
      end
    end
  done;
  match aux with
  | None -> ()
  | Some v ->
      let f = Array.unsafe_get v col in
      if f <> 0.0 then begin
        let n = min cols (Array.length v) in
        if sparse then begin
          for k = 0 to nnz - 1 do
            let j = Array.unsafe_get idx k in
            if j < n then
              Array.unsafe_set v j
                (Array.unsafe_get v j
                -. (f *. Array.unsafe_get a (src_off + j)))
          done
        end
        else
          for j = 0 to n - 1 do
            Array.unsafe_set v j
              (Array.unsafe_get v j
              -. (f *. Array.unsafe_get a (src_off + j)))
          done;
        if col < n then Array.unsafe_set v col 0.0
      end
