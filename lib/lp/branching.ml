type strategy = Most_fractional | Pseudocost | Reliability

let strategy_to_string = function
  | Most_fractional -> "most-fractional"
  | Pseudocost -> "pseudocost"
  | Reliability -> "reliability"

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "most-fractional" | "most_fractional" | "mf" -> Some Most_fractional
  | "pseudocost" | "pc" -> Some Pseudocost
  | "reliability" | "rel" -> Some Reliability
  | _ -> None

type t = {
  strategy : strategy;
  sb_nvars : int;
  sb_nsteps : int;
  down : float array;  (* running mean per-unit degradation, down branch *)
  up : float array;
  ndown : int array;
  nup : int array;
  mutable nobs : int;
}

let reliability_threshold = 4
let infeasible_degradation = 1e10

let create ~nvars ~strategy ~sb_nvars ~sb_nsteps =
  {
    strategy;
    sb_nvars = max 0 sb_nvars;
    sb_nsteps = max 0 sb_nsteps;
    down = Array.make nvars 0.0;
    up = Array.make nvars 0.0;
    ndown = Array.make nvars 0;
    nup = Array.make nvars 0;
    nobs = 0;
  }

let observe t ~var ~up ~frac ~degradation =
  let dist = if up then 1.0 -. frac else frac in
  if dist > 1e-9 && Float.is_finite degradation then begin
    let per_unit =
      Float.min infeasible_degradation (Float.max 0.0 degradation /. dist)
    in
    let a, n = if up then (t.up, t.nup) else (t.down, t.ndown) in
    let k = n.(var) in
    a.(var) <- ((a.(var) *. float_of_int k) +. per_unit) /. float_of_int (k + 1);
    n.(var) <- k + 1;
    t.nobs <- t.nobs + 1
  end

let most_fractional int_ids tol x =
  let best = ref (-1) and score = ref tol in
  List.iter
    (fun j ->
      let f = x.(j) -. Float.floor x.(j) in
      let dist = Float.min f (1.0 -. f) in
      if dist > !score then begin
        score := dist;
        best := j
      end)
    int_ids;
  !best

(* Fractional candidates as (id, frac, distance-to-integer), most
   fractional first so probe budgets go to the most promising ones. *)
let candidates int_ids tol x =
  List.filter_map
    (fun j ->
      let f = x.(j) -. Float.floor x.(j) in
      let dist = Float.min f (1.0 -. f) in
      if dist > tol then Some (j, f, dist) else None)
    int_ids
  |> List.sort (fun (i, _, da) (j, _, db) ->
         match compare db da with 0 -> compare i j | c -> c)

let select t ~int_ids ~tol ~x ~nodes ~probe =
  match candidates int_ids tol x with
  | [] -> -1
  | cands -> (
      match t.strategy with
      | Most_fractional ->
          let j, _, _ = List.hd cands in
          (* candidates are sorted by distance; [most_fractional] keeps the
             first maximum, which the id tie-break above reproduces. *)
          j
      | Pseudocost | Reliability ->
          let unreliable j =
            match t.strategy with
            | Pseudocost -> nodes < t.sb_nsteps
            | Reliability ->
                min t.ndown.(j) t.nup.(j) < reliability_threshold
            | Most_fractional -> false
          in
          (* Strong-branching warmup: probe the most fractional unreliable
             candidates and fold the observed degradations in. *)
          let budget = ref t.sb_nvars in
          List.iter
            (fun (j, f, _) ->
              if !budget > 0 && unreliable j then begin
                decr budget;
                let dn, up = probe j x.(j) in
                (match dn with
                | Some d -> observe t ~var:j ~up:false ~frac:f ~degradation:d
                | None -> ());
                match up with
                | Some d -> observe t ~var:j ~up:true ~frac:f ~degradation:d
                | None -> ()
              end)
            cands;
          if t.nobs = 0 then
            let j, _, _ = List.hd cands in
            j
          else begin
            (* Global mean per-unit degradations stand in for variables
               without their own history yet. *)
            let gsum = ref 0.0 and gn = ref 0 in
            Array.iteri
              (fun j n ->
                if n > 0 then begin
                  gsum := !gsum +. t.down.(j);
                  incr gn
                end)
              t.ndown;
            Array.iteri
              (fun j n ->
                if n > 0 then begin
                  gsum := !gsum +. t.up.(j);
                  incr gn
                end)
              t.nup;
            let gmean = if !gn > 0 then !gsum /. float_of_int !gn else 1.0 in
            let eps = 1e-6 in
            let best = ref (-1) and best_score = ref neg_infinity
            and best_dist = ref 0.0 in
            List.iter
              (fun (j, f, dist) ->
                let dn = if t.ndown.(j) > 0 then t.down.(j) else gmean in
                let up = if t.nup.(j) > 0 then t.up.(j) else gmean in
                let score =
                  Float.max eps (dn *. f) *. Float.max eps (up *. (1.0 -. f))
                in
                if
                  score > !best_score +. 1e-12
                  || (score > !best_score -. 1e-12 && dist > !best_dist +. 1e-12)
                then begin
                  best := j;
                  best_score := score;
                  best_dist := dist
                end)
              cands;
            !best
          end)
