type strategy = Most_fractional | Pseudocost | Reliability

let strategy_to_string = function
  | Most_fractional -> "most-fractional"
  | Pseudocost -> "pseudocost"
  | Reliability -> "reliability"

let strategy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "most-fractional" | "most_fractional" | "mf" -> Some Most_fractional
  | "pseudocost" | "pc" -> Some Pseudocost
  | "reliability" | "rel" -> Some Reliability
  | _ -> None

(* Per-direction statistics are (sum, count) pairs of atomics rather
   than in-place running means: a lock-free mean update needs a single
   word to CAS, and a sum is monotone under concurrent adds where a
   running mean is not.  Readers divide sum by count; both are
   non-negative at every interleaving (per_unit is clamped into
   [0, infeasible_degradation] before the add), so a torn read between
   the two fetches can bias a mean but never produce NaN or a negative
   pseudocost. *)
type t = {
  strategy : strategy;
  sb_nvars : int;
  sb_nsteps : int;
  down : float Atomic.t array;  (* per-unit degradation sums, down branch *)
  up : float Atomic.t array;
  ndown : int Atomic.t array;
  nup : int Atomic.t array;
  nobs : int Atomic.t;
}

let reliability_threshold = 4
let infeasible_degradation = 1e10

let create ~nvars ~strategy ~sb_nvars ~sb_nsteps =
  {
    strategy;
    sb_nvars = max 0 sb_nvars;
    sb_nsteps = max 0 sb_nsteps;
    down = Array.init nvars (fun _ -> Atomic.make 0.0);
    up = Array.init nvars (fun _ -> Atomic.make 0.0);
    ndown = Array.init nvars (fun _ -> Atomic.make 0);
    nup = Array.init nvars (fun _ -> Atomic.make 0);
    nobs = Atomic.make 0;
  }

let atomic_add a v =
  let rec go () =
    let c = Atomic.get a in
    if not (Atomic.compare_and_set a c (c +. v)) then go ()
  in
  go ()

let observe t ~var ~up ~frac ~degradation =
  let dist = if up then 1.0 -. frac else frac in
  if dist > 1e-9 && Float.is_finite degradation then begin
    let per_unit =
      Float.min infeasible_degradation (Float.max 0.0 degradation /. dist)
    in
    let a, n = if up then (t.up, t.nup) else (t.down, t.ndown) in
    atomic_add a.(var) per_unit;
    ignore (Atomic.fetch_and_add n.(var) 1);
    ignore (Atomic.fetch_and_add t.nobs 1)
  end

let dir_stats sums counts var =
  let c = Atomic.get counts.(var) in
  (c, if c > 0 then Atomic.get sums.(var) /. float_of_int c else 0.0)

let stats t ~var = (dir_stats t.down t.ndown var, dir_stats t.up t.nup var)
let observations t = Atomic.get t.nobs

let most_fractional int_ids tol x =
  let best = ref (-1) and score = ref tol in
  List.iter
    (fun j ->
      let f = x.(j) -. Float.floor x.(j) in
      let dist = Float.min f (1.0 -. f) in
      if dist > !score then begin
        score := dist;
        best := j
      end)
    int_ids;
  !best

(* Fractional candidates as (id, frac, distance-to-integer), most
   fractional first so probe budgets go to the most promising ones. *)
let candidates int_ids tol x =
  List.filter_map
    (fun j ->
      let f = x.(j) -. Float.floor x.(j) in
      let dist = Float.min f (1.0 -. f) in
      if dist > tol then Some (j, f, dist) else None)
    int_ids
  |> List.sort (fun (i, _, da) (j, _, db) ->
         match compare db da with 0 -> compare i j | c -> c)

let select t ~int_ids ~tol ~x ~nodes ~probe =
  match candidates int_ids tol x with
  | [] -> -1
  | cands -> (
      match t.strategy with
      | Most_fractional ->
          let j, _, _ = List.hd cands in
          (* candidates are sorted by distance; [most_fractional] keeps the
             first maximum, which the id tie-break above reproduces. *)
          j
      | Pseudocost | Reliability ->
          let unreliable j =
            match t.strategy with
            | Pseudocost -> nodes < t.sb_nsteps
            | Reliability ->
                min (Atomic.get t.ndown.(j)) (Atomic.get t.nup.(j))
                < reliability_threshold
            | Most_fractional -> false
          in
          (* Strong-branching warmup: probe the most fractional unreliable
             candidates and fold the observed degradations in. *)
          let budget = ref t.sb_nvars in
          List.iter
            (fun (j, f, _) ->
              if !budget > 0 && unreliable j then begin
                decr budget;
                let dn, up = probe j x.(j) in
                (match dn with
                | Some d -> observe t ~var:j ~up:false ~frac:f ~degradation:d
                | None -> ());
                match up with
                | Some d -> observe t ~var:j ~up:true ~frac:f ~degradation:d
                | None -> ()
              end)
            cands;
          if Atomic.get t.nobs = 0 then
            let j, _, _ = List.hd cands in
            j
          else begin
            (* Global mean per-unit degradations stand in for variables
               without their own history yet. *)
            let gsum = ref 0.0 and gn = ref 0 in
            let fold sums counts =
              Array.iteri
                (fun j n ->
                  let n = Atomic.get n in
                  if n > 0 then begin
                    gsum := !gsum +. (Atomic.get sums.(j) /. float_of_int n);
                    incr gn
                  end)
                counts
            in
            fold t.down t.ndown;
            fold t.up t.nup;
            let gmean = if !gn > 0 then !gsum /. float_of_int !gn else 1.0 in
            let eps = 1e-6 in
            let best = ref (-1) and best_score = ref neg_infinity
            and best_dist = ref 0.0 in
            List.iter
              (fun (j, f, dist) ->
                let _, dmean = dir_stats t.down t.ndown j in
                let _, umean = dir_stats t.up t.nup j in
                let dn = if Atomic.get t.ndown.(j) > 0 then dmean else gmean in
                let up = if Atomic.get t.nup.(j) > 0 then umean else gmean in
                let score =
                  Float.max eps (dn *. f) *. Float.max eps (up *. (1.0 -. f))
                in
                if
                  score > !best_score +. 1e-12
                  || (score > !best_score -. 1e-12 && dist > !best_dist +. 1e-12)
                then begin
                  best := j;
                  best_score := score;
                  best_dist := dist
                end)
              cands;
            !best
          end)
