(* Root cutting planes.  See cuts.mli for the overview; the geometry
   below leans on the frame layout shared by both simplex engines:
   structural columns 0..n-1, then one slack column per inequality row
   assigned in row order (coefficient +1 for Le, -1 for Ge), then one
   pinned artificial per row. *)

type stats = { gomory : int; cover : int; rounds : int }

let total s = s.gomory + s.cover

let apply (input : Simplex.input) cuts =
  let base = Array.length input.Simplex.rows in
  let input' =
    { input with
      Simplex.rows = Array.append input.Simplex.rows (Array.of_list cuts) }
  in
  let undo (r : Simplex.result) =
    if Array.length r.Simplex.duals <= base then r
    else
      { r with
        Simplex.duals = Array.sub r.Simplex.duals 0 base;
        basis = None }
  in
  (input', undo)

(* ---------- dense LU over the basis transpose ---------- *)

(* Factor M (row-major m*m) in place with partial pivoting; returns the
   row permutation, or None when a pivot collapses (singular basis as
   seen through this dense lens: bail out of Gomory separation). *)
let lu_factor m a =
  let perm = Array.init m (fun i -> i) in
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       let piv = ref k and pmax = ref (Float.abs a.((k * m) + k)) in
       for i = k + 1 to m - 1 do
         let v = Float.abs a.((i * m) + k) in
         if v > !pmax then begin
           pmax := v;
           piv := i
         end
       done;
       if !pmax < 1e-11 then begin
         ok := false;
         raise Exit
       end;
       if !piv <> k then begin
         let tmp = perm.(k) in
         perm.(k) <- perm.(!piv);
         perm.(!piv) <- tmp;
         for j = 0 to m - 1 do
           let t = a.((k * m) + j) in
           a.((k * m) + j) <- a.((!piv * m) + j);
           a.((!piv * m) + j) <- t
         done
       end;
       let d = a.((k * m) + k) in
       for i = k + 1 to m - 1 do
         let f = a.((i * m) + k) /. d in
         if f <> 0.0 then begin
           a.((i * m) + k) <- f;
           for j = k + 1 to m - 1 do
             a.((i * m) + j) <- a.((i * m) + j) -. (f *. a.((k * m) + j))
           done
         end
         else a.((i * m) + k) <- 0.0
       done
     done
   with Exit -> ());
  if !ok then Some perm else None

(* Solve M w = e_r given the in-place LU and permutation. *)
let lu_solve_unit m a perm r =
  let w = Array.make m 0.0 in
  for i = 0 to m - 1 do
    w.(i) <- (if perm.(i) = r then 1.0 else 0.0)
  done;
  for i = 0 to m - 1 do
    let s = ref w.(i) in
    for j = 0 to i - 1 do
      s := !s -. (a.((i * m) + j) *. w.(j))
    done;
    w.(i) <- !s
  done;
  for i = m - 1 downto 0 do
    let s = ref w.(i) in
    for j = i + 1 to m - 1 do
      s := !s -. (a.((i * m) + j) *. w.(j))
    done;
    w.(i) <- !s /. a.((i * m) + i)
  done;
  w

(* ---------- Gomory mixed-integer cuts ---------- *)

let near_integral v = Float.abs (v -. Float.round v) <= 1e-9

let gomory_cuts ~integer ~int_tol (input : Simplex.input)
    (r : Simplex.result) ~max_cuts =
  match r.Simplex.basis with
  | None -> []
  | Some b ->
      let rows = input.Simplex.rows in
      let m = Array.length rows and n = input.Simplex.nvars in
      (* Mirror the frame's slack layout. *)
      let slack_col = Array.make m (-1) in
      let srow = ref [] in
      let next = ref n in
      Array.iteri
        (fun i (_, s, _) ->
          match s with
          | Model.Eq -> ()
          | Model.Le | Model.Ge ->
              slack_col.(i) <- !next;
              srow := (!next, i) :: !srow;
              incr next)
        rows;
      let art0 = !next in
      let row_of_slack = Hashtbl.create 16 in
      List.iter (fun (c, i) -> Hashtbl.add row_of_slack c i) !srow;
      let sigma i =
        match rows.(i) with _, Model.Le, _ -> 1.0 | _ -> -1.0
      in
      if
        m = 0
        || Array.length b.Simplex.vbasis <> m
        || Array.exists (fun c -> c < 0 || c >= art0) b.Simplex.vbasis
      then []
      else begin
        (* pos.(j) = basis row of structural j, or -1. *)
        let pos = Array.make n (-1) in
        Array.iteri
          (fun i c -> if c < n then pos.(c) <- i)
          b.Simplex.vbasis;
        (* M = Bᵀ: M.(i*m+k) = entry of basis column i at row k. *)
        let mt = Array.make (m * m) 0.0 in
        Array.iteri
          (fun k (terms, _, _) ->
            Array.iter
              (fun (j, c) ->
                if j < n && pos.(j) >= 0 then
                  mt.((pos.(j) * m) + k) <- mt.((pos.(j) * m) + k) +. c)
              terms)
          rows;
        Array.iteri
          (fun i c ->
            if c >= n && c < art0 then
              let k = Hashtbl.find row_of_slack c in
              mt.((i * m) + k) <- mt.((i * m) + k) +. sigma k)
          b.Simplex.vbasis;
        match lu_factor m mt with
        | None -> []
        | Some perm ->
            let rhs = Array.map (fun (_, _, v) -> v) rows in
            (* Candidate tableau rows: basic structural integer variable
               with a decently interior fractional part. *)
            let cands = ref [] in
            Array.iteri
              (fun i c ->
                if c < n && integer.(c) then begin
                  let xv = r.Simplex.x.(c) in
                  let f = xv -. Float.floor xv in
                  let dist = Float.min f (1.0 -. f) in
                  if dist > Float.max 0.005 int_tol then
                    cands := (i, c, dist) :: !cands
                end)
              b.Simplex.vbasis;
            let cands =
              List.sort
                (fun (_, a, da) (_, b, db) ->
                  match compare db da with 0 -> compare a b | c -> c)
                !cands
            in
            let cuts = ref [] and ncuts = ref 0 in
            List.iter
              (fun (ri, jb, _) ->
                if !ncuts < max_cuts then begin
                  let w = lu_solve_unit m mt perm ri in
                  (* Tableau row over all columns: abar_j = w · A_j. *)
                  let abar = Array.make art0 0.0 in
                  Array.iteri
                    (fun k (terms, _, _) ->
                      let wk = w.(k) in
                      if Float.abs wk > 1e-13 then
                        Array.iter
                          (fun (j, c) -> abar.(j) <- abar.(j) +. (wk *. c))
                          terms)
                    rows;
                  for k = 0 to m - 1 do
                    if slack_col.(k) >= 0 then
                      abar.(slack_col.(k)) <- w.(k) *. sigma k
                  done;
                  let beta = ref 0.0 in
                  for k = 0 to m - 1 do
                    beta := !beta +. (w.(k) *. rhs.(k))
                  done;
                  (* Shift nonbasics to their active bound; track the
                     resulting basic-variable value as a numeric check. *)
                  let ok = ref true in
                  let shifted = ref !beta in
                  for j = 0 to art0 - 1 do
                    match b.Simplex.vstat.(j) with
                    | Simplex.Basic -> ()
                    | Simplex.At_lower ->
                        let l =
                          if j < n then input.Simplex.lo.(j) else 0.0
                        in
                        shifted := !shifted -. (abar.(j) *. l)
                    | Simplex.At_upper ->
                        let u =
                          if j < n then input.Simplex.hi.(j) else infinity
                        in
                        if u = infinity then ok := false
                        else shifted := !shifted -. (abar.(j) *. u)
                    | Simplex.Free_nb ->
                        if Float.abs abar.(j) > 1e-7 then ok := false
                  done;
                  let xb = r.Simplex.x.(jb) in
                  if
                    !ok
                    && Float.abs (!shifted -. xb)
                       <= 1e-6 *. (1.0 +. Float.abs xb)
                  then begin
                    let f0 = !shifted -. Float.floor !shifted in
                    if f0 > 0.005 && f0 < 0.995 then begin
                      (* GMI over the shifted nonbasics t_j >= 0. *)
                      let coef = Array.make n 0.0 in
                      let cut_rhs = ref 1.0 in
                      let add_term j gamma =
                        if Float.abs gamma > 1e-12 then begin
                          match b.Simplex.vstat.(j) with
                          | Simplex.At_lower ->
                              if j < n then begin
                                coef.(j) <- coef.(j) +. gamma;
                                cut_rhs :=
                                  !cut_rhs +. (gamma *. input.Simplex.lo.(j))
                              end
                              else begin
                                (* slack at lower (0): substitute
                                   s = sigma * (rhs_k - row_k . x). *)
                                let k = Hashtbl.find row_of_slack j in
                                let sg = sigma k in
                                let terms, _, rk = rows.(k) in
                                Array.iter
                                  (fun (jj, c) ->
                                    coef.(jj) <-
                                      coef.(jj) -. (gamma *. sg *. c))
                                  terms;
                                cut_rhs := !cut_rhs -. (gamma *. sg *. rk)
                              end
                          | Simplex.At_upper ->
                              (* slacks have no finite upper bound, so
                                 only structurals land here *)
                              coef.(j) <- coef.(j) -. gamma;
                              cut_rhs :=
                                !cut_rhs -. (gamma *. input.Simplex.hi.(j))
                          | Simplex.Basic | Simplex.Free_nb -> ()
                        end
                      in
                      for j = 0 to art0 - 1 do
                        match b.Simplex.vstat.(j) with
                        | Simplex.Basic | Simplex.Free_nb -> ()
                        | Simplex.At_lower | Simplex.At_upper ->
                            let c =
                              match b.Simplex.vstat.(j) with
                              | Simplex.At_upper -> -.abar.(j)
                              | _ -> abar.(j)
                            in
                            let int_shift =
                              j < n && integer.(j)
                              &&
                              match b.Simplex.vstat.(j) with
                              | Simplex.At_lower ->
                                  near_integral input.Simplex.lo.(j)
                              | _ -> near_integral input.Simplex.hi.(j)
                            in
                            let gamma =
                              if int_shift then begin
                                let fj = c -. Float.floor c in
                                if fj <= f0 then fj /. f0
                                else (1.0 -. fj) /. (1.0 -. f0)
                              end
                              else if c >= 0.0 then c /. f0
                              else -.c /. (1.0 -. f0)
                            in
                            add_term j gamma
                      done;
                      (* Hygiene: sparsify, bound dynamism, demand real
                         violation at the current LP point. *)
                      let terms = ref [] in
                      let cmax = ref 0.0 and cmin = ref infinity in
                      Array.iteri
                        (fun j c ->
                          if Float.abs c > 1e-9 then begin
                            terms := (j, c) :: !terms;
                            cmax := Float.max !cmax (Float.abs c);
                            cmin := Float.min !cmin (Float.abs c)
                          end)
                        coef;
                      let lhs_now =
                        List.fold_left
                          (fun a (j, c) -> a +. (c *. r.Simplex.x.(j)))
                          0.0 !terms
                      in
                      let viol = !cut_rhs -. lhs_now in
                      if
                        !terms <> []
                        && !cmax <= 1e8
                        && !cmax /. !cmin <= 1e8
                        && Float.abs !cut_rhs <= 1e10
                        && viol > 1e-4
                      then begin
                        incr ncuts;
                        cuts :=
                          ( Array.of_list (List.rev !terms),
                            Model.Ge,
                            !cut_rhs )
                          :: !cuts
                      end
                    end
                  end
                end)
              cands;
            List.rev !cuts
      end

(* ---------- knapsack cover cuts ---------- *)

let cover_cuts ~integer (input : Simplex.input) x ~base_rows ~max_cuts =
  let lo = input.Simplex.lo and hi = input.Simplex.hi in
  let is_bin j = integer.(j) && lo.(j) = 0.0 && hi.(j) = 1.0 in
  let cuts = ref [] in
  (try
     Array.iteri
       (fun ri (terms, sense, b) ->
         if ri < base_rows && sense = Model.Le && List.length !cuts < max_cuts
         then begin
           (* Relax non-binary terms to their interval minimum and
              complement negative binary coefficients, leaving a pure
              0/1 knapsack  sum w_k z_k <= cap  with w_k > 0. *)
           let cap = ref b and ok = ref true in
           let items = ref [] in
           Array.iter
             (fun (j, c) ->
               if c <> 0.0 then
                 if is_bin j then
                   if c > 0.0 then items := (j, c, false, x.(j)) :: !items
                   else begin
                     (* c*x = c - c*(1-x): complement to weight -c. *)
                     cap := !cap -. c;
                     items := (j, -.c, true, 1.0 -. x.(j)) :: !items
                   end
                 else begin
                   let mn =
                     if c > 0.0 then c *. lo.(j) else c *. hi.(j)
                   in
                   if Float.is_finite mn then cap := !cap -. mn
                   else ok := false
                 end)
             terms;
           let wsum =
             List.fold_left (fun a (_, w, _, _) -> a +. w) 0.0 !items
           in
           if !ok && !cap >= 0.0 && wsum > !cap +. 1e-9 then begin
             (* Greedy cover: take literals the LP packs hardest first. *)
             let sorted =
               List.sort
                 (fun (i, _, _, za) (j, _, _, zb) ->
                   match compare zb za with 0 -> compare i j | c -> c)
                 !items
             in
             let cover = ref [] and wt = ref 0.0 in
             (try
                List.iter
                  (fun (j, w, compl, z) ->
                    cover := (j, w, compl, z) :: !cover;
                    wt := !wt +. w;
                    if !wt > !cap +. 1e-9 then raise Exit)
                  sorted
              with Exit -> ());
             if !wt > !cap +. 1e-9 then begin
               (* Minimize: drop low-z members that are not needed to
                  exceed capacity. *)
               let keep = ref [] in
               List.iter
                 (fun (j, w, compl, z) ->
                   if !wt -. w > !cap +. 1e-9 then wt := !wt -. w
                   else keep := (j, w, compl, z) :: !keep)
                 (List.sort
                    (fun (_, _, _, za) (_, _, _, zb) -> compare za zb)
                    !cover);
               let c = !keep in
               let sz = List.length c in
               let zsum =
                 List.fold_left (fun a (_, _, _, z) -> a +. z) 0.0 c
               in
               if zsum > float_of_int (sz - 1) +. 0.005 then begin
                 let rhs = ref (float_of_int (sz - 1)) in
                 let cterms =
                   List.map
                     (fun (j, _, compl, _) ->
                       if compl then begin
                         rhs := !rhs -. 1.0;
                         (j, -1.0)
                       end
                       else (j, 1.0))
                     (List.sort (fun (i, _, _, _) (j, _, _, _) -> compare i j) c)
                 in
                 cuts := (Array.of_list cterms, Model.Le, !rhs) :: !cuts
               end
             end
           end
         end)
       input.Simplex.rows
   with Exit -> ());
  List.rev !cuts

(* ---------- separation driver ---------- *)

(* Extend an optimal basis of [input_old] to the same input with [ncuts]
   inequality rows appended: each new row's slack goes basic (zero cost,
   so dual feasibility is untouched; the violated cut leaves the slack
   below its bound, which is exactly what the dual simplex repairs in a
   few pivots).  Old slack columns keep their indices — new slacks and
   the shifted artificials land after them. *)
let extend_basis (input_old : Simplex.input) (b : Simplex.basis) ncuts =
  let n = input_old.Simplex.nvars in
  let m_old = Array.length input_old.Simplex.rows in
  let ns_old =
    Array.fold_left
      (fun a (_, s, _) -> match s with Model.Eq -> a | _ -> a + 1)
      0 input_old.Simplex.rows
  in
  let art0_old = n + ns_old in
  if
    Array.length b.Simplex.vbasis <> m_old
    || Array.length b.Simplex.vstat <> art0_old + m_old
    || Array.exists (fun c -> c < 0 || c >= art0_old) b.Simplex.vbasis
  then None
  else begin
    let m_new = m_old + ncuts and ns_new = ns_old + ncuts in
    let art0_new = n + ns_new in
    let vstat = Array.make (art0_new + m_new) Simplex.At_lower in
    Array.blit b.Simplex.vstat 0 vstat 0 art0_old;
    for k = 0 to ncuts - 1 do
      vstat.(art0_old + k) <- Simplex.Basic
    done;
    Array.blit b.Simplex.vstat art0_old vstat art0_new m_old;
    let vbasis = Array.make m_new 0 in
    Array.blit b.Simplex.vbasis 0 vbasis 0 m_old;
    for k = 0 to ncuts - 1 do
      vbasis.(m_old + k) <- art0_old + k
    done;
    Some { Simplex.vbasis; vstat }
  end

let cut_key (terms, sense, rhs) =
  let b = Buffer.create 64 in
  (match sense with
  | Model.Le -> Buffer.add_char b 'L'
  | Model.Ge -> Buffer.add_char b 'G'
  | Model.Eq -> Buffer.add_char b 'E');
  Buffer.add_string b (Printf.sprintf "%.9g" rhs);
  Array.iter
    (fun (j, c) -> Buffer.add_string b (Printf.sprintf ";%d:%.9g" j c))
    terms;
  Buffer.contents b

let strengthen ~(solve : ?warm:Simplex.basis -> Simplex.input -> Simplex.result)
    ~integer ~int_tol ?root ?(max_rounds = 3)
    ?(max_per_round = 16) ?(max_dense_rows = 768) ~stop
    (input0 : Simplex.input) =
  if Array.length input0.Simplex.rows > max_dense_rows then None
  else begin
    let base_rows = Array.length input0.Simplex.rows in
    let seen = Hashtbl.create 64 in
    (* Reuse the caller's root solve when it already carries a basis: on
       wide models a cold LP is the single most expensive step of the
       whole cut pass, and the caller has usually just paid for it. *)
    let r0 =
      match root with
      | Some (r : Simplex.result)
        when r.Simplex.status = Status.Optimal && r.Simplex.basis <> None ->
          r
      | _ -> solve input0
    in
    if r0.Simplex.status <> Status.Optimal then None
    else begin
      let stats = ref { gomory = 0; cover = 0; rounds = 0 } in
      let rec loop input r round =
        if round >= max_rounds || stop () then (input, r)
        else begin
          let g =
            gomory_cuts ~integer ~int_tol input r ~max_cuts:max_per_round
          in
          let c =
            cover_cuts ~integer input r.Simplex.x ~base_rows
              ~max_cuts:max_per_round
          in
          let fresh =
            List.filter
              (fun cut ->
                let k = cut_key cut in
                if Hashtbl.mem seen k then false
                else begin
                  Hashtbl.replace seen k ();
                  true
                end)
              (g @ c)
          in
          if fresh = [] then (input, r)
          else begin
            let ng =
              List.length (List.filter (fun (_, s, _) -> s = Model.Ge) fresh)
            in
            stats :=
              { gomory = !stats.gomory + ng;
                cover = !stats.cover + (List.length fresh - ng);
                rounds = !stats.rounds + 1 };
            let input', _undo = apply input fresh in
            (* Cuts-then-dual-simplex: extend the optimal basis with the new
               slacks basic and let the dual simplex repair the violated
               rows, instead of re-solving the grown LP from scratch. *)
            let warm =
              match r.Simplex.basis with
              | Some b -> extend_basis input b (List.length fresh)
              | None -> None
            in
            let r' = solve ?warm input' in
            if r'.Simplex.status <> Status.Optimal then (input, r)
            else loop input' r' (round + 1)
          end
        end
      in
      let input, r = loop input0 r0 0 in
      if total !stats = 0 then None else Some (input, r, !stats)
    end
  end
