(** Work-stealing scheduler: per-worker best-first deques with stealing.

    Each worker owns a {!Wsdeque} (a min-max interval heap).  The owner
    pops its own best item (lowest key); a worker whose deque is empty
    sweeps the other workers in the order given by [steal_order] and
    steals from a victim's {e opposite} end (highest key), so thieves
    take the work the owner would reach last.  Owners lock their own
    deque unconditionally; thieves use [Mutex.try_lock] and simply move
    on under contention, so a steal never blocks a producer.

    Termination is tracked with a [pending] counter (items queued plus
    items popped but not yet {!done_one}): in [finite] mode a worker
    that finds no work {e and} sees [pending = 0] knows the whole
    computation is over.  Idle workers spin briefly ([Domain.cpu_relax]
    between failed steal sweeps, counted per worker), then park on a
    condition variable; pushes wake one sleeper, and the transition of
    [pending] to 0 (or {!stop}) wakes all of them — no busy spin while
    there is genuinely nothing to do.

    The [steal_order] hook exists so tests can script steal
    interleavings deterministically (chaos testing): it maps a thief and
    sweep round to a victim index and defaults to a cyclic sweep
    starting after the thief. *)

type 'a t

type 'a next =
  | Work of float * 'a
  | Done  (** finite mode: no queued work and nothing in flight *)
  | Stopped  (** {!stop} was called (after the drain, in drain mode) *)

(** [create ~workers ()] makes a scheduler with [workers] deques
    (clamped to at least 1).

    [finite] (default [true]): workers report {!Done} when the pending
    count reaches 0, as in a tree search that exhausts its frontier.
    With [~finite:false] (a long-lived job pool) workers park until
    {!stop}.

    [drain] (default [false]): when [true], {!stop} lets workers finish
    everything already queued before reporting {!Stopped}; when [false]
    they abandon the queue immediately (remaining keys stay visible to
    {!min_key}, which is how the tree search reports its open bound). *)
val create :
  workers:int ->
  ?steal_order:(thief:int -> round:int -> int) ->
  ?finite:bool ->
  ?drain:bool ->
  unit ->
  'a t

val workers : 'a t -> int

(** [push t ~who ~key v] queues [v] on worker [who]'s deque ([who] is
    taken mod [workers]) and wakes a parked worker if any.  Increments
    the pending count. *)
val push : 'a t -> who:int -> key:float -> 'a -> unit

(** Non-blocking: own deque first, then one steal sweep over the other
    workers.  Does not change the pending count (the item is now in
    flight; pair every successful pop with {!done_one}). *)
val try_pop : 'a t -> who:int -> (float * 'a) option

(** Blocking variant of {!try_pop}: spins through a few sweeps, then
    parks until woken.  Every [Work] result must be matched by a
    {!done_one} call after processing (and after pushing any children,
    so [pending] can never dip to 0 while successors exist). *)
val next : 'a t -> who:int -> 'a next

(** Declare one in-flight item finished.  The 1 -> 0 transition of the
    pending count wakes all parked workers so they can observe [Done]. *)
val done_one : 'a t -> unit

(** Request shutdown and wake everyone.  Idempotent. *)
val stop : 'a t -> unit

val stopped : 'a t -> bool

(** Items queued plus items in flight. *)
val pending : 'a t -> int

(** Items currently sitting in deques. *)
val queued : 'a t -> int

(** Number of successful steals so far (diagnostics). *)
val steals : 'a t -> int

(** Smallest key over all deques — after a stop, the best open bound of
    the abandoned frontier. *)
val min_key : 'a t -> float option
