(** Two-phase primal simplex with dual-simplex warm starts, for linear
    programs with bounded variables.

    Two interchangeable engines share the frame layout, basis format and
    tolerances.  The default {!Sparse} engine is a revised simplex: the
    matrix lives in compressed column form, the basis inverse is a
    product of eta factors with periodic refactorization, and pricing
    touches nonzeros only.  The legacy {!Dense} engine pivots a flat
    tableau ({!Tableau}).  Both support variables resting at either bound
    (so binary upper bounds cost no extra rows), equality / inequality
    rows (slacks are added internally), a slack-plus-structural crash
    basis that usually skips phase 1 outright, Dantzig pricing with a
    Bland anti-cycling fallback, and produce a dual certificate that
    {!check_certificate} can verify independently.

    A solve can export its optimal {!basis} and a later solve over the
    {e same rows} but different bounds can restart from it: the basis is
    refactorized and a bounded-variable dual simplex repairs the bound
    violations, which after a single branch-and-bound bound change is
    typically a handful of pivots instead of a full cold solve.  Warm
    solves fall back to the cold path automatically when the saved basis is
    singular or the reoptimization struggles numerically. *)

type input = {
  nvars : int;
  lo : float array;     (** length [nvars]; [neg_infinity] allowed *)
  hi : float array;     (** length [nvars]; [infinity] allowed *)
  obj : float array;    (** length [nvars] *)
  obj_const : float;
  minimize : bool;
  rows : ((int * float) array * Model.sense * float) array;
      (** sparse rows: (terms, sense, rhs) *)
}

(** Column status: a nonbasic column rests at one of its bounds (or at 0
    when free); a basic column's value lives in its row. *)
type cstat = Basic | At_lower | At_upper | Free_nb

(** A restart point.  [vbasis.(i)] is the column basic in row [i];
    [vstat.(j)] is the resting status of every column (structural, slack
    and artificial).  Only valid for inputs with the same row structure as
    the solve that produced it — bounds and objective may differ. *)
type basis = { vbasis : int array; vstat : cstat array }

type result = {
  status : Status.t;
  x : float array;           (** structural variable values, length [nvars] *)
  obj_value : float;         (** in the user's optimization direction *)
  duals : float array;       (** one multiplier per row, min convention *)
  reduced_costs : float array;  (** per structural variable, min convention *)
  iterations : int;
  basis : basis option;
      (** final basis, present when requested and [status = Optimal] *)
  warm_started : bool;
      (** whether this result came from the dual-simplex warm path (false
          when a warm attempt fell back to the cold solver) *)
}

(** [of_model m] compiles a {!Model.t}, ignoring integrality marks. *)
val of_model : Model.t -> input

(** Which pivot engine to run.  Bases are interchangeable between the
    two: both use the same column layout and basis format. *)
type core = Dense | Sparse

(** [solve input] runs the two-phase primal simplex.  With [~warm] the
    solver instead refactorizes the given basis and reoptimizes with the
    dual simplex (falling back to a cold solve on failure); warm solves
    always export their basis.  With [~want_basis:true] a cold solve skips
    fixed-column elimination and exports its final basis so children can
    warm start.  [~core] selects the engine (default {!Sparse}). *)
val solve :
  ?max_iters:int -> ?warm:basis -> ?want_basis:bool -> ?core:core ->
  input -> result

(** [check_certificate input result] re-verifies, from scratch, that
    [result] is a valid optimum of [input]: primal feasibility, the sign
    conditions on reduced costs, and the strong-duality identity.  Returns
    error strings; empty means the certificate holds.  Only meaningful when
    [result.status = Optimal]. *)
val check_certificate : ?tol:float -> input -> result -> string list

(** [feasible ?tol input x] checks bounds and rows at the point [x]. *)
val feasible : ?tol:float -> input -> float array -> bool
