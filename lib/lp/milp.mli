(** Mixed-integer linear programming by LP-based branch-and-bound.

    The solver runs best-bound branch-and-bound over the bounded-variable
    simplex of {!Simplex}.  Before the tree opens the root is worked hard:
    {!Cuts} appends Gomory mixed-integer and knapsack-cover cutting planes
    ([root_cuts]), a dive-and-fix heuristic and the {!Fpump} feasibility
    pump ([pump]) hunt for an early incumbent, and the tree then branches
    under a {!Branching} strategy (pseudocost / reliability with
    strong-branching warmup by default) instead of blind most-fractional
    selection.  A feasible plan is almost always returned together with
    the LP lower bound and the resulting optimality gap.

    With [warm_start] (the default) every branch-and-bound node carries its
    parent's optimal basis and the node LP is reoptimized by the dual
    simplex instead of solved from scratch; the solver falls back to a cold
    solve per node whenever the warm path struggles, so statuses are
    unchanged and objectives agree to solver tolerance.

    With [workers > 1] the tree search fans out over that many OCaml 5
    domains under a work-stealing scheduler ({!Wsched}): each domain
    owns a best-first deque, children go to the domain that solved the
    parent (keeping warm-start basis chains local), and an idle domain
    steals a victim's worst open node.  The incumbent is broadcast
    lock-free through an [Atomic] with a monotonic compare-and-set, so
    pruning always uses the freshest bound.  The fan-out is adaptive:
    the search starts sequential and the helper domains are spawned only
    once at least [par_threshold] nodes have been processed {e and} that
    many are simultaneously pending — so small trees (the common
    warm-started case) never pay domain spawn costs.  The returned
    solution is still optimal whenever the sequential solver's is, but
    the visit order — and therefore [nodes] and [lp_iterations] — may
    differ run to run.  [workers = 1] is exactly the deterministic
    sequential search.  Requested worker counts beyond
    [Domain.recommended_domain_count ()] are clamped; the effective
    count is reported in [result.workers]. *)

type options = {
  node_limit : int;        (** maximum branch-and-bound nodes (default 5000) *)
  time_limit : float;
      (** CPU-seconds budget ([Sys.time]), [infinity] = none.  Note that
          with [workers > 1] CPU time accumulates across domains, so the
          budget is consumed up to [workers] times faster than wall clock. *)
  gap_tol : float;         (** stop when relative gap falls below this *)
  int_tol : float;         (** integrality tolerance on LP values *)
  dive_first : bool;       (** seed the incumbent by diving at the root *)
  warm_start : bool;
      (** reoptimize node LPs from the parent basis (default [true]) *)
  workers : int;
      (** domains searching the tree (default 1 = sequential) *)
  par_threshold : int;
      (** open-node / processed-node count both required before helper
          domains actually spawn (default 64) *)
  presolve : bool;
      (** run {!Presolve} reductions on cold basis-free node LPs — the
          root and the dives — when the model is large enough (at least
          64 rows) for the reduction to pay for itself (default [true]) *)
  core : Simplex.core;
      (** simplex engine for node LPs (default {!Simplex.Sparse}) *)
  branch_strategy : Branching.strategy;
      (** branching-variable selection (default {!Branching.Reliability}) *)
  strong_branching_nvars : int;
      (** strong-branching probes per node during warmup (default 8) *)
  strong_branching_nsteps : int;
      (** warmup window in tree nodes for {!Branching.Pseudocost}
          (default 8); {!Branching.Reliability} instead re-probes any
          variable with fewer than {!Branching.reliability_threshold}
          observations, regardless of the window *)
  pump : bool;
      (** run the {!Fpump} feasibility pump at the root when diving left
          no incumbent (default [true]) *)
  root_cuts : bool;
      (** strengthen the root with {!Cuts} separation rounds before the
          tree opens (default [true]) *)
  log : bool;              (** emit progress on the [lp.milp] log source *)
}

val default_options : options

type result = {
  status : Status.t;
  x : float array;         (** best integer point found (empty if none) *)
  relax_x : float array;
  (** root LP relaxation optimum, before cuts (empty when the root LP
      did not solve to optimality) — lets callers run rounding
      heuristics against the relaxation without re-solving it *)
  obj : float;             (** its objective, user direction *)
  bound : float;           (** proven bound on the optimum, user direction *)
  gap : float;             (** relative gap between [obj] and [bound] *)
  nodes : int;             (** branch-and-bound nodes explored *)
  cuts : int;              (** cutting planes appended at the root *)
  lp_iterations : int;     (** total simplex iterations *)
  workers : int;
  (** effective worker-domain count after clamping the requested
      [options.workers] to [Domain.recommended_domain_count ()] — the
      observable form of the one-shot stderr clamp warning *)
}

(** [solve m] solves the model, honouring integrality marks on variables.

    [steal_order] is a test seam forwarded to the work-stealing
    scheduler (see {!Wsched.create}): it maps an idle worker and its
    sweep round to the victim it should try to steal from, letting the
    determinism suite script adversarial steal interleavings.  Leave it
    unset for the default cyclic sweep. *)
val solve :
  ?options:options ->
  ?steal_order:(thief:int -> round:int -> int) ->
  Model.t ->
  result

(** [relax m] solves the LP relaxation only. *)
val relax : ?max_iters:int -> ?core:Simplex.core -> Model.t -> Simplex.result

(** [integral ?tol m x] is true when all integer-marked variables of [m]
    take integer values in [x]. *)
val integral : ?tol:float -> Model.t -> float array -> bool
