(* Min-max interval heap (Atkinson et al., 1986) over a growable array.

   Even tree levels (root = level 0) are min levels, odd levels are max
   levels: every node on a min level is <= all of its descendants, every
   node on a max level is >= all of its descendants.  The global minimum
   therefore sits at index 0 and the global maximum at index 1 or 2,
   giving O(1) peeks and O(log n) pops at both ends — exactly the shape
   a work-stealing deque needs (owner pops min, thief pops max). *)

type 'a t = { mutable data : (float * 'a) array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0
let key h i = fst h.data.(i)

let swap h i j =
  let t = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- t

(* Index [i] sits on a min level iff the bit-length of [i+1] is odd
   (the root, i = 0, has bit-length 1). *)
let on_min_level i =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  bits (i + 1) 0 land 1 = 1

let rec bubble_up_min h i =
  if i >= 3 then begin
    let g = ((((i - 1) / 2) - 1) / 2) in
    if key h i < key h g then begin
      swap h i g;
      bubble_up_min h g
    end
  end

let rec bubble_up_max h i =
  if i >= 3 then begin
    let g = ((((i - 1) / 2) - 1) / 2) in
    if key h i > key h g then begin
      swap h i g;
      bubble_up_max h g
    end
  end

let bubble_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if on_min_level i then
      if key h i > key h p then begin
        swap h i p;
        bubble_up_max h p
      end
      else bubble_up_min h i
    else if key h i < key h p then begin
      swap h i p;
      bubble_up_min h p
    end
    else bubble_up_max h i
  end

let push h ~key:k v =
  let cap = Array.length h.data in
  if h.size = cap then
    if cap = 0 then h.data <- Array.make 16 (k, v)
    else begin
      let data = Array.make (2 * cap) h.data.(0) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
  h.data.(h.size) <- (k, v);
  h.size <- h.size + 1;
  bubble_up h (h.size - 1)

(* Index of the extreme element among the children and grandchildren of
   [i] under comparison [better] (strictly-better-than), or [-1] when
   [i] is a leaf. *)
let extreme_descendant h better i =
  let n = h.size in
  let c1 = (2 * i) + 1 in
  if c1 >= n then (-1, false)
  else begin
    let best = ref c1 and grand = ref false in
    let consider j g =
      if j < n && better (key h j) (key h !best) then begin
        best := j;
        grand := g
      end
    in
    consider ((2 * i) + 2) false;
    let gc = (4 * i) + 3 in
    consider gc true;
    consider (gc + 1) true;
    consider (gc + 2) true;
    consider (gc + 3) true;
    (!best, !grand)
  end

let rec trickle_down h better i =
  match extreme_descendant h better i with
  | -1, _ -> ()
  | m, grand ->
      if grand then begin
        if better (key h m) (key h i) then begin
          swap h m i;
          let p = (m - 1) / 2 in
          if better (key h p) (key h m) then swap h m p;
          trickle_down h better m
        end
      end
      else if better (key h m) (key h i) then swap h m i

let lt a b = a < b
let gt a b = a > b

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      trickle_down h lt 0
    end;
    Some top
  end

let max_index h =
  if h.size <= 1 then 0 else if h.size = 2 then 1 else if key h 1 >= key h 2 then 1 else 2

let pop_max h =
  if h.size = 0 then None
  else begin
    let i = max_index h in
    let out = h.data.(i) in
    h.size <- h.size - 1;
    if i < h.size then begin
      h.data.(i) <- h.data.(h.size);
      trickle_down h gt i
    end;
    Some out
  end

let min_key h = if h.size = 0 then None else Some (key h 0)
