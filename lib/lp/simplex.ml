type input = {
  nvars : int;
  lo : float array;
  hi : float array;
  obj : float array;
  obj_const : float;
  minimize : bool;
  rows : ((int * float) array * Model.sense * float) array;
}

(* Column status.  A nonbasic variable rests at one of its bounds (or at 0
   when free); a basic variable's value lives in [xb] of its row. *)
type cstat = Basic | At_lower | At_upper | Free_nb

(* A restart point: which column is basic in each row, and where every
   column (structural, slack and artificial alike) rests.  The layout is
   determined by the row structure of the input, so a basis saved from one
   solve can seed any later solve whose rows are identical — only the
   bounds may differ, which is exactly the branch-and-bound situation. *)
type basis = { vbasis : int array; vstat : cstat array }

type result = {
  status : Status.t;
  x : float array;
  obj_value : float;
  duals : float array;
  reduced_costs : float array;
  iterations : int;
  basis : basis option;
  warm_started : bool;
}

let of_model m =
  let vs = Model.vars m in
  let nvars = Array.length vs in
  let lo = Array.map (fun (v : Model.var) -> v.Model.lo) vs in
  let hi = Array.map (fun (v : Model.var) -> v.Model.hi) vs in
  let obj = Array.make nvars 0.0 in
  let obj_terms, obj_const = Model.objective_terms m in
  Array.iter (fun (id, c) -> obj.(id) <- obj.(id) +. c) obj_terms;
  let rows =
    Array.map
      (fun (c : Model.constr) ->
        (Model.row_terms c, c.Model.sense, c.Model.rhs))
      (Model.constrs m)
  in
  { nvars; lo; hi; obj; obj_const; minimize = Model.minimize m; rows }

let tol_piv = 1e-9
let tol_cost = 1e-7
let tol_feas = 1e-7

let feasible ?(tol = 1e-6) input x =
  let ok = ref true in
  for j = 0 to input.nvars - 1 do
    if x.(j) < input.lo.(j) -. tol || x.(j) > input.hi.(j) +. tol then ok := false
  done;
  Array.iter
    (fun (terms, sense, rhs) ->
      let v = Array.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms in
      let scale = 1.0 +. Float.abs rhs in
      (match sense with
      | Model.Le -> if v > rhs +. (tol *. scale) then ok := false
      | Model.Ge -> if v < rhs -. (tol *. scale) then ok := false
      | Model.Eq -> if Float.abs (v -. rhs) > tol *. scale then ok := false))
    input.rows;
  !ok

(* Internal mutable solver state.  The tableau holds m x (ntot+1) entries:
   B^-1 A over all columns, with the transformed right-hand side riding in
   the final column so row operations carry it automatically. *)
type state = {
  m : int;                  (* rows *)
  ntot : int;               (* structural + slack + artificial columns *)
  art0 : int;               (* first artificial column *)
  slo : float array;        (* bounds over all columns *)
  shi : float array;
  tab : Tableau.t;          (* m x (ntot + 1), equals B^-1 [A | b] *)
  xb : float array;         (* value of the basic variable of each row *)
  basis : int array;
  stat : cstat array;
  vnb : float array;        (* resting value of nonbasic columns *)
  z : float array;          (* reduced costs of the current phase *)
  sgn : float array;        (* artificial sign per row, for dual recovery *)
  mutable iters : int;
  mutable degen : int;      (* consecutive degenerate steps; drives Bland *)
}

(* Dantzig pricing; after a degeneracy streak fall back to Bland's rule,
   which guarantees termination.  Shared by the dense and sparse engines,
   which keep their column status and reduced costs in the same layout. *)
let price_gen ~bland ~ntot ~(slo : float array) ~(shi : float array)
    ~(stat : cstat array) ~(z : float array) =
  let best = ref (-1) and best_score = ref tol_cost and best_dir = ref 1.0 in
  (try
     for j = 0 to ntot - 1 do
       if slo.(j) < shi.(j) then begin
         let zj = z.(j) in
         let dir =
           match stat.(j) with
           | Basic -> 0.0
           | At_lower -> if zj < -.tol_cost then 1.0 else 0.0
           | At_upper -> if zj > tol_cost then -1.0 else 0.0
           | Free_nb ->
               if zj < -.tol_cost then 1.0
               else if zj > tol_cost then -1.0
               else 0.0
         in
         if dir <> 0.0 then
           if bland then begin
             best := j;
             best_dir := dir;
             raise Exit
           end
           else begin
             let score = Float.abs zj in
             if score > !best_score then begin
               best := j;
               best_score := score;
               best_dir := dir
             end
           end
       end
     done
   with Exit -> ());
  if !best < 0 then None else Some (!best, !best_dir)

let price st =
  price_gen ~bland:(st.degen > 60) ~ntot:st.ntot ~slo:st.slo ~shi:st.shi
    ~stat:st.stat ~z:st.z

(* Ratio test: how far can column [q] move in direction [d] before a basic
   variable hits a bound or [q] reaches its opposite bound?  Returns
   (step, blocking row or -1, whether the blocker stops at its upper bound). *)
let ratio_test st q d =
  let t_best = ref (st.shi.(q) -. st.slo.(q)) in
  (* free columns have an infinite flip distance *)
  if Float.is_nan !t_best then t_best := infinity;
  let row = ref (-1) and to_upper = ref false and piv_best = ref 0.0 in
  for i = 0 to st.m - 1 do
    let w = Tableau.unsafe_get st.tab i q in
    let rate = -.d *. w in
    if Float.abs w > tol_piv then begin
      let bi = st.basis.(i) in
      if rate < -.tol_piv && st.slo.(bi) > neg_infinity then begin
        let ti = (st.xb.(i) -. st.slo.(bi)) /. -.rate in
        let ti = if ti < 0.0 then 0.0 else ti in
        if
          ti < !t_best -. 1e-10
          || (ti < !t_best +. 1e-10 && Float.abs w > !piv_best)
        then begin
          t_best := ti;
          row := i;
          to_upper := false;
          piv_best := Float.abs w
        end
      end
      else if rate > tol_piv && st.shi.(bi) < infinity then begin
        let ti = (st.shi.(bi) -. st.xb.(i)) /. rate in
        let ti = if ti < 0.0 then 0.0 else ti in
        if
          ti < !t_best -. 1e-10
          || (ti < !t_best +. 1e-10 && Float.abs w > !piv_best)
        then begin
          t_best := ti;
          row := i;
          to_upper := true;
          piv_best := Float.abs w
        end
      end
    end
  done;
  (!t_best, !row, !to_upper)

(* Gauss-Jordan pivot on (lrow, q), keeping the reduced-cost row in sync.
   These loops carry essentially all of the solver's flops. *)
let do_pivot st lrow q = Tableau.pivot ~aux:st.z st.tab ~row:lrow ~col:q

(* One simplex step for entering column [q] moving in direction [d].
   Returns [false] when the problem is unbounded in this direction. *)
let step st q d =
  let tstep, lrow, to_upper = ratio_test st q d in
  if tstep = infinity then false
  else begin
    st.iters <- st.iters + 1;
    if tstep < 1e-9 then st.degen <- st.degen + 1 else st.degen <- 0;
    (* Move every basic variable by its rate. *)
    for i = 0 to st.m - 1 do
      st.xb.(i) <- st.xb.(i) -. (d *. Tableau.unsafe_get st.tab i q *. tstep)
    done;
    if lrow < 0 then begin
      (* Bound flip: q travels to its opposite bound, basis unchanged. *)
      st.vnb.(q) <- st.vnb.(q) +. (d *. tstep);
      st.stat.(q) <- (if d > 0.0 then At_upper else At_lower)
    end
    else begin
      let xq = st.vnb.(q) +. (d *. tstep) in
      let leaving = st.basis.(lrow) in
      if to_upper then begin
        st.vnb.(leaving) <- st.shi.(leaving);
        st.stat.(leaving) <- At_upper
      end
      else begin
        st.vnb.(leaving) <- st.slo.(leaving);
        st.stat.(leaving) <- At_lower
      end;
      st.basis.(lrow) <- q;
      st.stat.(q) <- Basic;
      st.xb.(lrow) <- xq;
      do_pivot st lrow q
    end;
    true
  end

(* Recompute the reduced-cost row for cost vector [c] (length ntot). *)
let reset_reduced_costs st c =
  for j = 0 to st.ntot - 1 do
    st.z.(j) <- c.(j)
  done;
  for i = 0 to st.m - 1 do
    let cb = c.(st.basis.(i)) in
    if cb <> 0.0 then Tableau.sub_scaled_vec st.tab ~src:i cb st.z
  done;
  for i = 0 to st.m - 1 do
    st.z.(st.basis.(i)) <- 0.0
  done

let empty_result status =
  { status; x = [||]; obj_value = nan; duals = [||]; reduced_costs = [||];
    iterations = 0; basis = None; warm_started = false }

(* Columns pinned by branching or diving ([lo = hi]) are substituted into
   the right-hand sides before the tableau is built; after a dive's first
   batch fix this shrinks the working problem by an order of magnitude. *)
let eliminate_fixed input =
  let n = input.nvars in
  let active = ref 0 in
  let fixed = Array.make n false in
  for j = 0 to n - 1 do
    if input.hi.(j) -. input.lo.(j) <= 1e-12 then fixed.(j) <- true
    else incr active
  done;
  if !active = n then None
  else begin
    let remap = Array.make n (-1) in
    let back = Array.make !active 0 in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if not fixed.(j) then begin
        remap.(j) <- !k;
        back.(!k) <- j;
        incr k
      end
    done;
    let obj_const = ref input.obj_const in
    for j = 0 to n - 1 do
      if fixed.(j) then obj_const := !obj_const +. (input.obj.(j) *. input.lo.(j))
    done;
    let rows =
      Array.map
        (fun (terms, sense, rhs) ->
          let rhs = ref rhs in
          let kept =
            Array.to_list terms
            |> List.filter_map (fun (j, c) ->
                   if fixed.(j) then begin
                     rhs := !rhs -. (c *. input.lo.(j));
                     None
                   end
                   else Some (remap.(j), c))
          in
          (Array.of_list kept, sense, !rhs))
        input.rows
    in
    let reduced =
      {
        nvars = !active;
        lo = Array.map (fun j -> input.lo.(j)) back;
        hi = Array.map (fun j -> input.hi.(j)) back;
        obj = Array.map (fun j -> input.obj.(j)) back;
        obj_const = !obj_const;
        minimize = input.minimize;
        rows;
      }
    in
    Some (reduced, back)
  end

(* Shared construction of the working frame: padded bounds, the tableau
   rows with slack columns and the rhs in the final column, and the initial
   resting point of every structural and slack column.  Artificial columns
   are declared but left zero: the cold path adds their identity entries
   only after deciding row signs, the warm path adds them immediately. *)
type frame = {
  f_m : int;
  f_n : int;
  f_art0 : int;
  f_ntot : int;
  f_slo : float array;
  f_shi : float array;
  f_tab : Tableau.t;
  f_stat : cstat array;
  f_vnb : float array;
  f_slack : int array;      (* slack column of each row, or -1 *)
}

let build_frame input =
  let m = Array.length input.rows in
  let n = input.nvars in
  let nslack =
    Array.fold_left
      (fun a (_, s, _) -> match s with Model.Eq -> a | _ -> a + 1)
      0 input.rows
  in
  let art0 = n + nslack in
  let ntot = art0 + m in
  let slo = Array.make ntot 0.0 and shi = Array.make ntot infinity in
  Array.blit input.lo 0 slo 0 n;
  Array.blit input.hi 0 shi 0 n;
  let tab = Tableau.create ~rows:m ~cols:(ntot + 1) in
  let slack = Array.make m (-1) in
  let next_slack = ref n in
  Array.iteri
    (fun i (terms, sense, r) ->
      Array.iter
        (fun (j, c) -> Tableau.set tab i j (Tableau.get tab i j +. c))
        terms;
      (match sense with
      | Model.Le ->
          Tableau.set tab i !next_slack 1.0;
          slack.(i) <- !next_slack;
          incr next_slack
      | Model.Ge ->
          Tableau.set tab i !next_slack (-1.0);
          slack.(i) <- !next_slack;
          incr next_slack
      | Model.Eq -> ());
      Tableau.set tab i ntot r)
    input.rows;
  (* Initial nonbasic point: every column at its finite bound nearest 0. *)
  let stat = Array.make ntot At_lower in
  let vnb = Array.make ntot 0.0 in
  for j = 0 to art0 - 1 do
    if slo.(j) > neg_infinity then begin
      stat.(j) <- At_lower;
      vnb.(j) <- slo.(j)
    end
    else if shi.(j) < infinity then begin
      stat.(j) <- At_upper;
      vnb.(j) <- shi.(j)
    end
    else begin
      stat.(j) <- Free_nb;
      vnb.(j) <- 0.0
    end
  done;
  { f_m = m; f_n = n; f_art0 = art0; f_ntot = ntot; f_slo = slo; f_shi = shi;
    f_tab = tab; f_stat = stat; f_vnb = vnb; f_slack = slack }

let default_iters max_iters m n =
  match max_iters with Some k -> k | None -> max 2000 (60 * (m + n))

(* Extract the user-facing result from a finished state. *)
let finish ~emit_basis ~warm_started input st status =
  let n = input.nvars in
  let x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    if st.stat.(j) <> Basic then x.(j) <- st.vnb.(j)
  done;
  for i = 0 to st.m - 1 do
    if st.basis.(i) < n then x.(st.basis.(i)) <- st.xb.(i)
  done;
  let obj_value =
    let a = ref input.obj_const in
    for j = 0 to n - 1 do
      a := !a +. (input.obj.(j) *. x.(j))
    done;
    !a
  in
  let duals = Array.make st.m 0.0 in
  let reduced = Array.make n 0.0 in
  if status = Status.Optimal then begin
    for i = 0 to st.m - 1 do
      duals.(i) <- -.st.z.(st.art0 + i) *. st.sgn.(i)
    done;
    for j = 0 to n - 1 do
      reduced.(j) <- st.z.(j)
    done
  end;
  let basis =
    if emit_basis && status = Status.Optimal then
      Some { vbasis = Array.copy st.basis; vstat = Array.copy st.stat }
    else None
  in
  { status; x; obj_value; duals; reduced_costs = reduced;
    iterations = st.iters; basis; warm_started }

let run_phase st max_iters c =
  reset_reduced_costs st c;
  let rec loop () =
    if st.iters >= max_iters then `Iters
    else
      match price st with
      | None -> `Done
      | Some (q, d) -> if step st q d then loop () else `Unbounded
  in
  loop ()

(* Phase-2 costs in the internal minimization convention. *)
let phase2_cost input ntot =
  let cost = Array.make ntot 0.0 in
  for j = 0 to input.nvars - 1 do
    cost.(j) <- (if input.minimize then input.obj.(j) else -.input.obj.(j))
  done;
  cost

(* ------------------------------------------------------------------ *)
(* Cold start: slack + greedy structural crash, then two-phase primal. *)
(* ------------------------------------------------------------------ *)

let solve_cold ?max_iters ~emit_basis input =
  let fr = build_frame input in
  let m = fr.f_m and n = fr.f_n and art0 = fr.f_art0 and ntot = fr.f_ntot in
  let slo = fr.f_slo and shi = fr.f_shi and tab = fr.f_tab in
  let stat = fr.f_stat and vnb = fr.f_vnb in
  let max_iters = default_iters max_iters m n in
  let sgn = Array.make m 1.0 in
  let xb = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let rowdone = Array.make m false in
  (* Residual of each row at the nonbasic resting point.  Until a row gets
     a basic column this is the value its artificial would take. *)
  let resid = Array.make m 0.0 in
  Array.iteri
    (fun i (terms, _, rhs) ->
      (* Slacks rest at zero, so only the sparse structural terms count. *)
      let acc = ref rhs in
      Array.iter
        (fun (j, c) ->
          let v = vnb.(j) in
          if v <> 0.0 then acc := !acc -. (c *. v))
        terms;
      resid.(i) <- !acc)
    input.rows;
  (* Slack crash: an inequality row whose slack value is feasible at the
     resting point starts with that slack basic — no artificial, no
     phase-1 work.  Ge rows are flipped so the slack coefficient is +1. *)
  Array.iteri
    (fun i (_, sense, _) ->
      match (sense, fr.f_slack.(i)) with
      | Model.Le, s when s >= 0 && resid.(i) >= 0.0 ->
          basis.(i) <- s;
          stat.(s) <- Basic;
          xb.(i) <- resid.(i);
          rowdone.(i) <- true
      | Model.Ge, s when s >= 0 && resid.(i) <= 0.0 ->
          Tableau.flip_row tab i;
          sgn.(i) <- -1.0;
          resid.(i) <- -.resid.(i);
          basis.(i) <- s;
          stat.(s) <- Basic;
          xb.(i) <- resid.(i);
          rowdone.(i) <- true
      | _ -> ())
    input.rows;
  (* Remaining rows get an artificial; flip them so its value is >= 0. *)
  for i = 0 to m - 1 do
    if not rowdone.(i) && resid.(i) < 0.0 then begin
      Tableau.flip_row tab i;
      sgn.(i) <- -1.0;
      resid.(i) <- -.resid.(i)
    end
  done;
  (* All row signs are now final: add the artificial identity columns. *)
  for i = 0 to m - 1 do
    Tableau.set tab i (art0 + i) 1.0;
    if rowdone.(i) then begin
      (* This artificial is never needed; pin it. *)
      slo.(art0 + i) <- 0.0;
      shi.(art0 + i) <- 0.0
    end
  done;
  (* Greedy structural crash: drive each leftover residual to zero with a
     single structural pivot when one exists that keeps every basic value
     (and every pending residual) feasible.  Preferring cheap columns
     starts phase 2 near the optimum; on assignment-shaped models this
     usually empties phase 1 entirely. *)
  let cmin j = if input.minimize then input.obj.(j) else -.input.obj.(j) in
  let val_of r = if rowdone.(r) then xb.(r) else resid.(r) in
  for i = 0 to m - 1 do
    if not rowdone.(i) then begin
      let maxabs = ref 0.0 in
      for j = 0 to n - 1 do
        if stat.(j) <> Basic && slo.(j) < shi.(j) then begin
          let w = Float.abs (Tableau.unsafe_get tab i j) in
          if w > !maxabs then maxabs := w
        end
      done;
      let best = ref (-1) and best_score = ref infinity in
      let best_delta = ref 0.0 and best_v = ref 0.0 in
      if !maxabs > 1e-7 then
        for j = 0 to n - 1 do
          if stat.(j) <> Basic && slo.(j) < shi.(j) then begin
            let w = Tableau.unsafe_get tab i j in
            if Float.abs w >= 0.25 *. !maxabs then begin
              let delta = resid.(i) /. w in
              let v = vnb.(j) +. delta in
              if v >= slo.(j) -. 1e-9 && v <= shi.(j) +. 1e-9 then begin
                let score = cmin j *. delta in
                if score < !best_score -. 1e-12 then begin
                  (* Would this pivot knock any other row out of bounds? *)
                  let safe = ref true in
                  for r = 0 to m - 1 do
                    if !safe && r <> i then begin
                      let wr = Tableau.unsafe_get tab r j in
                      if wr <> 0.0 then begin
                        let nv = val_of r -. (wr *. delta) in
                        if rowdone.(r) then begin
                          let b = basis.(r) in
                          if nv < slo.(b) -. 1e-9 || nv > shi.(b) +. 1e-9 then
                            safe := false
                        end
                        else if nv < -1e-9 then safe := false
                      end
                    end
                  done;
                  if !safe then begin
                    best := j;
                    best_score := score;
                    best_delta := delta;
                    best_v := v
                  end
                end
              end
            end
          end
        done;
      match !best with
      | -1 -> ()
      | q ->
          let delta = !best_delta in
          for r = 0 to m - 1 do
            if r <> i then begin
              let wr = Tableau.unsafe_get tab r q in
              if wr <> 0.0 then
                if rowdone.(r) then xb.(r) <- xb.(r) -. (wr *. delta)
                else resid.(r) <- resid.(r) -. (wr *. delta)
            end
          done;
          stat.(q) <- Basic;
          basis.(i) <- q;
          xb.(i) <- Float.max slo.(q) (Float.min shi.(q) !best_v);
          rowdone.(i) <- true;
          slo.(art0 + i) <- 0.0;
          shi.(art0 + i) <- 0.0;
          Tableau.pivot tab ~row:i ~col:q
    end
  done;
  (* Rows the crash could not cover keep their artificial basic. *)
  let any_art = ref false in
  for i = 0 to m - 1 do
    if not rowdone.(i) then begin
      basis.(i) <- art0 + i;
      stat.(art0 + i) <- Basic;
      xb.(i) <- Float.max 0.0 resid.(i);
      any_art := true
    end
  done;
  let st =
    { m; ntot; art0; slo; shi; tab; xb; basis; stat; vnb;
      z = Array.make ntot 0.0; sgn; iters = 0; degen = 0 }
  in
  let cost = phase2_cost input ntot in
  let phase1_cost = Array.make ntot 0.0 in
  for i = 0 to m - 1 do
    phase1_cost.(art0 + i) <- 1.0
  done;
  let fin = finish ~emit_basis ~warm_started:false input st in
  let phase1_outcome =
    if !any_art then run_phase st max_iters phase1_cost else `Done
  in
  match phase1_outcome with
  | `Iters -> fin Status.Iteration_limit
  | `Unbounded ->
      (* Phase-1 objective is bounded below by zero; reaching here means a
         numerical breakdown, which we surface as an iteration failure. *)
      fin Status.Iteration_limit
  | `Done ->
      let p1 = ref 0.0 in
      for i = 0 to m - 1 do
        if st.basis.(i) >= art0 then p1 := !p1 +. st.xb.(i)
      done;
      for j = art0 to ntot - 1 do
        if st.stat.(j) <> Basic then p1 := !p1 +. st.vnb.(j)
      done;
      if !p1 > tol_feas *. float_of_int (1 + m) then fin Status.Infeasible
      else begin
        (* Pivot leftover artificials out of the basis where possible; rows
           where no structural pivot exists are redundant and keep a fixed
           zero-valued artificial. *)
        for i = 0 to m - 1 do
          if st.basis.(i) >= art0 then begin
            let q = ref (-1) in
            for j = 0 to art0 - 1 do
              if !q < 0 && st.stat.(j) <> Basic
                 && Float.abs (Tableau.get st.tab i j) > 1e-7
              then q := j
            done;
            match !q with
            | -1 -> ()
            | q ->
                let leaving = st.basis.(i) in
                st.vnb.(leaving) <- 0.0;
                st.stat.(leaving) <- At_lower;
                st.basis.(i) <- q;
                st.stat.(q) <- Basic;
                st.xb.(i) <- st.vnb.(q);
                Tableau.pivot st.tab ~row:i ~col:q
          end
        done;
        (* Artificials may no longer move in phase 2. *)
        for j = art0 to ntot - 1 do
          st.slo.(j) <- 0.0;
          st.shi.(j) <- 0.0
        done;
        st.degen <- 0;
        match run_phase st max_iters cost with
        | `Done -> fin Status.Optimal
        | `Unbounded -> fin Status.Unbounded
        | `Iters -> fin Status.Iteration_limit
      end

(* ------------------------------------------------------------------ *)
(* Warm start: refactorize a saved basis, dual simplex, primal polish. *)
(* ------------------------------------------------------------------ *)

(* Bounded-variable dual simplex.  The basis is assumed (near) dual
   feasible; primal feasibility is restored one bound violation at a time.
   Returns [`Feasible] when all basic values are within bounds,
   [`Infeasible] when some violated row admits no entering column (a
   primal-infeasibility certificate independent of the reduced costs), or
   [`Iters] when the budget runs out. *)
let dual_loop st max_iters =
  let rec loop () =
    if st.iters >= max_iters then `Iters
    else begin
      (* Most violated basic variable. *)
      let row = ref (-1) and viol = ref tol_feas and below = ref false in
      for i = 0 to st.m - 1 do
        let b = st.basis.(i) in
        let lo = st.slo.(b) and hi = st.shi.(b) in
        let v_lo = (lo -. st.xb.(i)) /. (1.0 +. Float.abs lo) in
        let v_hi = (st.xb.(i) -. hi) /. (1.0 +. Float.abs hi) in
        if v_lo > !viol then begin
          viol := v_lo;
          row := i;
          below := true
        end;
        if v_hi > !viol then begin
          viol := v_hi;
          row := i;
          below := false
        end
      done;
      if !row < 0 then `Feasible
      else begin
        let r = !row in
        let b = st.basis.(r) in
        let target = if !below then st.slo.(b) else st.shi.(b) in
        (* Entering column: admissible direction that moves xb(r) toward
           [target]; min |z/w| ratio keeps the basis dual feasible. *)
        let q = ref (-1) and best_ratio = ref infinity and best_w = ref 0.0 in
        for j = 0 to st.ntot - 1 do
          if st.stat.(j) <> Basic && (st.slo.(j) < st.shi.(j)) then begin
            let w = Tableau.unsafe_get st.tab r j in
            let eligible =
              if Float.abs w <= tol_piv then false
              else
                match st.stat.(j) with
                | Free_nb -> true
                | At_lower -> if !below then w < 0.0 else w > 0.0
                | At_upper -> if !below then w > 0.0 else w < 0.0
                | Basic -> false
            in
            if eligible then begin
              let ratio =
                match st.stat.(j) with
                | Free_nb -> Float.abs (st.z.(j) /. w)
                | _ -> Float.max 0.0 (if !below then -.(st.z.(j) /. w) else st.z.(j) /. w)
              in
              if
                ratio < !best_ratio -. 1e-10
                || (ratio < !best_ratio +. 1e-10 && Float.abs w > Float.abs !best_w)
              then begin
                q := j;
                best_ratio := ratio;
                best_w := w
              end
            end
          end
        done;
        if !q < 0 then `Infeasible
        else begin
          let q = !q in
          let w = Tableau.unsafe_get st.tab r q in
          let delta = (st.xb.(r) -. target) /. w in
          st.iters <- st.iters + 1;
          for i = 0 to st.m - 1 do
            if i <> r then
              st.xb.(i) <- st.xb.(i) -. (Tableau.unsafe_get st.tab i q *. delta)
          done;
          st.vnb.(b) <- target;
          st.stat.(b) <- (if !below then At_lower else At_upper);
          st.basis.(r) <- q;
          st.stat.(q) <- Basic;
          st.xb.(r) <- st.vnb.(q) +. delta;
          do_pivot st r q;
          loop ()
        end
      end
    end
  in
  loop ()

(* Rebuild the tableau for [input] around the saved basis [w].  Returns
   [None] when the basis does not fit these rows or turns out singular —
   the caller then falls back to a cold solve. *)
let warm_state input (w : basis) =
  let fr = build_frame input in
  let m = fr.f_m and art0 = fr.f_art0 and ntot = fr.f_ntot in
  if Array.length w.vstat <> ntot || Array.length w.vbasis <> m then None
  else begin
    let slo = fr.f_slo and shi = fr.f_shi and tab = fr.f_tab in
    let stat = Array.copy w.vstat and vnb = Array.make ntot 0.0 in
    let basis = Array.copy w.vbasis in
    let ok = ref true in
    Array.iter (fun b -> if b < 0 || b >= ntot then ok := false) basis;
    if not !ok then None
    else begin
      for i = 0 to m - 1 do
        Tableau.set tab i (art0 + i) 1.0
      done;
      (* Artificials are pinned at zero in any warm solve; one that is
         basic in [w] marks a redundant row and keeps its zero value. *)
      for j = art0 to ntot - 1 do
        slo.(j) <- 0.0;
        shi.(j) <- 0.0;
        if stat.(j) <> Basic then begin
          stat.(j) <- At_lower;
          vnb.(j) <- 0.0
        end
      done;
      (* Resolve nonbasic resting points against the (possibly changed)
         bounds. *)
      for j = 0 to art0 - 1 do
        if stat.(j) <> Basic then
          if slo.(j) > neg_infinity
             && (stat.(j) = At_lower || shi.(j) = infinity
                 || slo.(j) >= shi.(j))
          then begin
            stat.(j) <- At_lower;
            vnb.(j) <- slo.(j)
          end
          else if shi.(j) < infinity then begin
            stat.(j) <- At_upper;
            vnb.(j) <- shi.(j)
          end
          else if slo.(j) > neg_infinity then begin
            stat.(j) <- At_lower;
            vnb.(j) <- slo.(j)
          end
          else begin
            stat.(j) <- Free_nb;
            vnb.(j) <- 0.0
          end
      done;
      Array.iter (fun b -> stat.(b) <- Basic) basis;
      (* Refactorize: make each basis column a unit vector, choosing the
         largest available pivot at every step for stability. *)
      let rowdone = Array.make m false in
      (try
         for _step = 0 to m - 1 do
           let r = ref (-1) and best = ref 1e-8 in
           for i = 0 to m - 1 do
             if not rowdone.(i) then begin
               let w = Float.abs (Tableau.get tab i basis.(i)) in
               if w > !best then begin
                 best := w;
                 r := i
               end
             end
           done;
           if !r < 0 then raise Exit;
           Tableau.pivot tab ~row:!r ~col:basis.(!r);
           rowdone.(!r) <- true
         done
       with Exit -> ok := false);
      if not !ok then None
      else begin
        let xb = Array.make m 0.0 in
        for i = 0 to m - 1 do
          let acc = ref (Tableau.get tab i ntot) in
          for j = 0 to art0 - 1 do
            if stat.(j) <> Basic && vnb.(j) <> 0.0 then begin
              let w = Tableau.unsafe_get tab i j in
              if w <> 0.0 then acc := !acc -. (w *. vnb.(j))
            end
          done;
          xb.(i) <- !acc
        done;
        Some
          { m; ntot; art0; slo; shi; tab; xb; basis; stat; vnb;
            z = Array.make ntot 0.0; sgn = Array.make m 1.0; iters = 0;
            degen = 0 }
      end
    end
  end

let solve_warm ?max_iters input w =
  match warm_state input w with
  | None -> None
  | Some st ->
      let max_iters = default_iters max_iters st.m input.nvars in
      let cost = phase2_cost input st.ntot in
      reset_reduced_costs st cost;
      let fin = finish ~emit_basis:true ~warm_started:true input st in
      (match dual_loop st max_iters with
      | `Iters -> None (* numerical trouble: let the cold path decide *)
      | `Infeasible -> Some (fin Status.Infeasible)
      | `Feasible -> (
          st.degen <- 0;
          match run_phase st max_iters cost with
          | `Done -> Some (fin Status.Optimal)
          | `Unbounded -> Some (fin Status.Unbounded)
          | `Iters -> None))

(* ------------------------------------------------------------------ *)
(* Sparse revised-simplex engine.                                      *)
(*                                                                     *)
(* Same frame layout, basis conventions and tolerances as the dense    *)
(* engine above, but the matrix is stored once in compressed column    *)
(* form and the basis inverse is kept as a product of eta factors that *)
(* is periodically refactorized.  No row is ever sign-flipped here:    *)
(* artificial columns are always +e_i, and rows whose residual starts  *)
(* negative get an artificial bounded in (-inf, 0] with phase-1 cost   *)
(* -1 instead — so BTRAN of the basic costs yields the duals in the    *)
(* original row orientation directly.                                  *)
(* ------------------------------------------------------------------ *)

(* Compressed-column copy of [A | slacks | artificials].  Entries within
   a column are stored in increasing row order. *)
type smat = {
  sm_m : int;
  sm_n : int;
  sm_art0 : int;
  sm_ntot : int;
  cstart : int array;        (* ntot + 1 *)
  crow : int array;
  cval : float array;
  sm_slack : int array;      (* slack column of each row, or -1 *)
}

let build_smat input =
  let m = Array.length input.rows in
  let n = input.nvars in
  let nslack =
    Array.fold_left
      (fun a (_, s, _) -> match s with Model.Eq -> a | _ -> a + 1)
      0 input.rows
  in
  let art0 = n + nslack in
  let ntot = art0 + m in
  let cstart = Array.make (ntot + 1) 0 in
  Array.iter
    (fun (terms, _, _) ->
      Array.iter (fun (j, _) -> cstart.(j + 1) <- cstart.(j + 1) + 1) terms)
    input.rows;
  for j = n to ntot - 1 do
    cstart.(j + 1) <- 1
  done;
  for j = 0 to ntot - 1 do
    cstart.(j + 1) <- cstart.(j + 1) + cstart.(j)
  done;
  let nnz = cstart.(ntot) in
  let crow = Array.make (max 1 nnz) 0 and cval = Array.make (max 1 nnz) 0.0 in
  let fill = Array.make (max 1 ntot) 0 in
  let put j i v =
    let k = cstart.(j) + fill.(j) in
    fill.(j) <- fill.(j) + 1;
    crow.(k) <- i;
    cval.(k) <- v
  in
  let slack = Array.make (max 1 m) (-1) in
  let next_slack = ref n in
  Array.iteri
    (fun i (terms, sense, _) ->
      Array.iter (fun (j, c) -> put j i c) terms;
      (match sense with
      | Model.Le ->
          put !next_slack i 1.0;
          slack.(i) <- !next_slack;
          incr next_slack
      | Model.Ge ->
          put !next_slack i (-1.0);
          slack.(i) <- !next_slack;
          incr next_slack
      | Model.Eq -> ());
      put (art0 + i) i 1.0)
    input.rows;
  { sm_m = m; sm_n = n; sm_art0 = art0; sm_ntot = ntot; cstart; crow; cval;
    sm_slack = slack }

(* One eta factor of the product-form inverse: pivoting column [d] into
   row [ep] multiplies B by the identity with column [ep] replaced by
   [d]; we store the pivot value and the off-pivot nonzeros. *)
type eta = { ep : int; erow : int array; evals : float array; epiv : float }

let dummy_eta = { ep = 0; erow = [||]; evals = [||]; epiv = 1.0 }

type sstate = {
  ss_m : int;
  ss_ntot : int;
  ss_art0 : int;
  mat : smat;
  qlo : float array;         (* bounds over all columns *)
  qhi : float array;
  srhs : float array;        (* original right-hand sides *)
  sbasis : int array;
  sstat : cstat array;
  svnb : float array;        (* resting value of nonbasic columns *)
  sxb : float array;         (* value of the basic variable of each row *)
  mutable etas : eta array;
  mutable neta : int;
  sz : float array;          (* reduced costs, refreshed per iteration *)
  sy : float array;          (* BTRAN scratch; duals at an optimum *)
  sd : float array;          (* FTRAN scratch: transformed column *)
  mutable siters : int;
  mutable sdegen : int;
  refactor_every : int;
}

let refactor_cadence m = max 64 (min 128 m)

let ensure_eta_capacity st =
  if st.neta = Array.length st.etas then begin
    let grown = Array.make (max 32 (2 * st.neta)) dummy_eta in
    Array.blit st.etas 0 grown 0 st.neta;
    st.etas <- grown
  end

let push_eta st ~p (d : float array) =
  let m = st.ss_m in
  let nz = ref 0 in
  for i = 0 to m - 1 do
    if i <> p && Float.abs (Array.unsafe_get d i) > 1e-13 then incr nz
  done;
  let erow = Array.make (max 1 !nz) 0 and evals = Array.make (max 1 !nz) 0.0 in
  let erow = if !nz = 0 then [||] else erow
  and evals = if !nz = 0 then [||] else evals in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> p && Float.abs (Array.unsafe_get d i) > 1e-13 then begin
      erow.(!k) <- i;
      evals.(!k) <- d.(i);
      incr k
    end
  done;
  ensure_eta_capacity st;
  st.etas.(st.neta) <- { ep = p; erow; evals; epiv = d.(p) };
  st.neta <- st.neta + 1

let push_unit_eta st ~p piv =
  ensure_eta_capacity st;
  st.etas.(st.neta) <- { ep = p; erow = [||]; evals = [||]; epiv = piv };
  st.neta <- st.neta + 1

(* x := B^-1 x: apply eta inverses oldest to newest. *)
let ftran st (x : float array) =
  for k = 0 to st.neta - 1 do
    let e = st.etas.(k) in
    let xp = x.(e.ep) in
    if xp <> 0.0 then begin
      let s = xp /. e.epiv in
      x.(e.ep) <- s;
      let nr = Array.length e.erow in
      for t = 0 to nr - 1 do
        let i = Array.unsafe_get e.erow t in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (Array.unsafe_get e.evals t *. s))
      done
    end
  done

(* y := B^-T y: apply eta inverses newest to oldest. *)
let btran st (y : float array) =
  for k = st.neta - 1 downto 0 do
    let e = st.etas.(k) in
    let acc = ref y.(e.ep) in
    let nr = Array.length e.erow in
    for t = 0 to nr - 1 do
      acc :=
        !acc
        -. (Array.unsafe_get e.evals t
            *. Array.unsafe_get y (Array.unsafe_get e.erow t))
    done;
    y.(e.ep) <- !acc /. e.epiv
  done

let col_dot st j (y : float array) =
  let mat = st.mat in
  let acc = ref 0.0 in
  for k = mat.cstart.(j) to mat.cstart.(j + 1) - 1 do
    acc :=
      !acc
      +. (Array.unsafe_get mat.cval k
          *. Array.unsafe_get y (Array.unsafe_get mat.crow k))
  done;
  !acc

(* sd := B^-1 A_j *)
let ftran_col st j =
  let d = st.sd in
  Array.fill d 0 st.ss_m 0.0;
  let mat = st.mat in
  for k = mat.cstart.(j) to mat.cstart.(j + 1) - 1 do
    d.(mat.crow.(k)) <- d.(mat.crow.(k)) +. mat.cval.(k)
  done;
  ftran st d

(* xb := B^-1 (b - N vnb), exact w.r.t. the current factorization; run
   after every refactorization to kill accumulated drift. *)
let recompute_xb st =
  let w = st.sd in
  Array.blit st.srhs 0 w 0 st.ss_m;
  let mat = st.mat in
  for j = 0 to st.ss_ntot - 1 do
    if st.sstat.(j) <> Basic then begin
      let v = st.svnb.(j) in
      if v <> 0.0 then
        for k = mat.cstart.(j) to mat.cstart.(j + 1) - 1 do
          w.(mat.crow.(k)) <- w.(mat.crow.(k)) -. (mat.cval.(k) *. v)
        done
    end
  done;
  ftran st w;
  Array.blit w 0 st.sxb 0 st.ss_m

(* Rebuild the eta file from scratch for the current basis: columns are
   factored sparsest-first, each claiming the unclaimed row where its
   transformed value is largest (the basis-to-row assignment is permuted
   accordingly).  Returns false when the basis is singular. *)
let refactorize st =
  let m = st.ss_m in
  st.neta <- 0;
  if m = 0 then true
  else begin
    let cols = Array.sub st.sbasis 0 m in
    let order = Array.init m (fun i -> i) in
    let colnnz i =
      let j = cols.(i) in
      st.mat.cstart.(j + 1) - st.mat.cstart.(j)
    in
    Array.sort (fun a b -> Int.compare (colnnz a) (colnnz b)) order;
    let claimed = Array.make m false in
    let newbasis = Array.make m (-1) in
    let ok = ref true in
    let d = st.sd in
    (try
       Array.iter
         (fun i0 ->
           let j = cols.(i0) in
           ftran_col st j;
           let p = ref (-1) and best = ref 1e-10 and nz = ref 0 in
           for i = 0 to m - 1 do
             let a = Float.abs (Array.unsafe_get d i) in
             if a > 1e-13 then incr nz;
             if (not claimed.(i)) && a > !best then begin
               best := a;
               p := i
             end
           done;
           if !p < 0 then raise Exit;
           let p = !p in
           claimed.(p) <- true;
           newbasis.(p) <- j;
           (* a still-unit column pivoting its own row needs no eta *)
           if not (!nz = 1 && d.(p) = 1.0) then push_eta st ~p d)
         order
     with Exit -> ok := false);
    if !ok then begin
      Array.blit newbasis 0 st.sbasis 0 m;
      recompute_xb st
    end;
    !ok
  end

let maybe_refactor st =
  if st.neta >= st.refactor_every then refactorize st else true

(* Duals y = c_B^T B^-1 and reduced costs z_j = c_j - y A_j, recomputed
   from the factorization at every pricing round, so the sparse engine
   never accumulates incremental reduced-cost drift. *)
let sreset_z st (c : float array) =
  let m = st.ss_m in
  let y = st.sy in
  for i = 0 to m - 1 do
    y.(i) <- c.(st.sbasis.(i))
  done;
  btran st y;
  (* Flat CSC sweep: this runs every pricing round over all unpinned
     columns, so the per-column [col_dot] call is inlined by hand. *)
  let mat = st.mat in
  let cstart = mat.cstart and crow = mat.crow and cval = mat.cval in
  let stat = st.sstat and qlo = st.qlo and qhi = st.qhi and z = st.sz in
  for j = 0 to st.ss_ntot - 1 do
    if stat.(j) = Basic then z.(j) <- 0.0
    else if qlo.(j) < qhi.(j) then begin
      let acc = ref 0.0 in
      for k = cstart.(j) to cstart.(j + 1) - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get cval k
              *. Array.unsafe_get y (Array.unsafe_get crow k))
      done;
      z.(j) <- c.(j) -. !acc
    end
  done

(* Ratio test over the FTRAN'd entering column in [d]; mirrors
   [ratio_test] on the dense tableau. *)
let sratio_test st q dsign (d : float array) =
  let t_best = ref (st.qhi.(q) -. st.qlo.(q)) in
  if Float.is_nan !t_best then t_best := infinity;
  let row = ref (-1) and to_upper = ref false and piv_best = ref 0.0 in
  for i = 0 to st.ss_m - 1 do
    let w = Array.unsafe_get d i in
    let rate = -.dsign *. w in
    if Float.abs w > tol_piv then begin
      let bi = st.sbasis.(i) in
      if rate < -.tol_piv && st.qlo.(bi) > neg_infinity then begin
        let ti = (st.sxb.(i) -. st.qlo.(bi)) /. -.rate in
        let ti = if ti < 0.0 then 0.0 else ti in
        if
          ti < !t_best -. 1e-10
          || (ti < !t_best +. 1e-10 && Float.abs w > !piv_best)
        then begin
          t_best := ti;
          row := i;
          to_upper := false;
          piv_best := Float.abs w
        end
      end
      else if rate > tol_piv && st.qhi.(bi) < infinity then begin
        let ti = (st.qhi.(bi) -. st.sxb.(i)) /. rate in
        let ti = if ti < 0.0 then 0.0 else ti in
        if
          ti < !t_best -. 1e-10
          || (ti < !t_best +. 1e-10 && Float.abs w > !piv_best)
        then begin
          t_best := ti;
          row := i;
          to_upper := true;
          piv_best := Float.abs w
        end
      end
    end
  done;
  (!t_best, !row, !to_upper)

(* One primal step for entering column [q] moving in direction [dsign];
   the FTRAN'd column must already be in [st.sd]. *)
let sstep st q dsign =
  let d = st.sd in
  let tstep, lrow, to_upper = sratio_test st q dsign d in
  if tstep = infinity then `Unbounded
  else begin
    st.siters <- st.siters + 1;
    if tstep < 1e-9 then st.sdegen <- st.sdegen + 1 else st.sdegen <- 0;
    for i = 0 to st.ss_m - 1 do
      let w = Array.unsafe_get d i in
      if w <> 0.0 then st.sxb.(i) <- st.sxb.(i) -. (dsign *. w *. tstep)
    done;
    if lrow < 0 then begin
      (* Bound flip: q travels to its opposite bound, basis unchanged. *)
      st.svnb.(q) <- st.svnb.(q) +. (dsign *. tstep);
      st.sstat.(q) <- (if dsign > 0.0 then At_upper else At_lower);
      `Ok
    end
    else begin
      let xq = st.svnb.(q) +. (dsign *. tstep) in
      let leaving = st.sbasis.(lrow) in
      if to_upper then begin
        st.svnb.(leaving) <- st.qhi.(leaving);
        st.sstat.(leaving) <- At_upper
      end
      else begin
        st.svnb.(leaving) <- st.qlo.(leaving);
        st.sstat.(leaving) <- At_lower
      end;
      st.sbasis.(lrow) <- q;
      st.sstat.(q) <- Basic;
      st.sxb.(lrow) <- xq;
      push_eta st ~p:lrow d;
      if maybe_refactor st then `Ok else `Fail
    end
  end

let srun_phase st max_iters (c : float array) =
  let rec loop () =
    if st.siters >= max_iters then `Iters
    else begin
      sreset_z st c;
      match
        price_gen ~bland:(st.sdegen > 60) ~ntot:st.ss_ntot ~slo:st.qlo
          ~shi:st.qhi ~stat:st.sstat ~z:st.sz
      with
      | None -> `Done
      | Some (q, dsign) -> (
          ftran_col st q;
          match sstep st q dsign with
          | `Ok -> loop ()
          | `Unbounded -> `Unbounded
          | `Fail -> `Iters)
    end
  in
  loop ()

(* Extract the user-facing result from a finished sparse state.  At an
   optimum [sy] still holds BTRAN of the phase-2 basic costs from the
   final pricing round; since the sparse engine never flips rows those
   are the duals in the original orientation. *)
let sfinish ~emit_basis ~warm_started input st status =
  let n = input.nvars in
  let x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    if st.sstat.(j) <> Basic then x.(j) <- st.svnb.(j)
  done;
  for i = 0 to st.ss_m - 1 do
    if st.sbasis.(i) < n then x.(st.sbasis.(i)) <- st.sxb.(i)
  done;
  let obj_value =
    let a = ref input.obj_const in
    for j = 0 to n - 1 do
      a := !a +. (input.obj.(j) *. x.(j))
    done;
    !a
  in
  let duals = Array.make st.ss_m 0.0 in
  let reduced = Array.make n 0.0 in
  if status = Status.Optimal then begin
    for i = 0 to st.ss_m - 1 do
      duals.(i) <- st.sy.(i)
    done;
    let cmin j = if input.minimize then input.obj.(j) else -.input.obj.(j) in
    for j = 0 to n - 1 do
      reduced.(j) <-
        (if st.sstat.(j) = Basic then 0.0 else cmin j -. col_dot st j st.sy)
    done
  end;
  let basis =
    if emit_basis && status = Status.Optimal then
      Some { vbasis = Array.copy st.sbasis; vstat = Array.copy st.sstat }
    else None
  in
  { status; x; obj_value; duals; reduced_costs = reduced;
    iterations = st.siters; basis; warm_started }

(* Cold start: slack crash, BTRAN-guided structural crash, two-phase
   primal — the sparse counterpart of [solve_cold]. *)
let ssolve_cold ?max_iters ~emit_basis input =
  let mat = build_smat input in
  let m = mat.sm_m and n = mat.sm_n in
  let art0 = mat.sm_art0 and ntot = mat.sm_ntot in
  let qlo = Array.make ntot 0.0 and qhi = Array.make ntot infinity in
  Array.blit input.lo 0 qlo 0 n;
  Array.blit input.hi 0 qhi 0 n;
  let stat = Array.make ntot At_lower in
  let vnb = Array.make ntot 0.0 in
  for j = 0 to art0 - 1 do
    if qlo.(j) > neg_infinity then begin
      stat.(j) <- At_lower;
      vnb.(j) <- qlo.(j)
    end
    else if qhi.(j) < infinity then begin
      stat.(j) <- At_upper;
      vnb.(j) <- qhi.(j)
    end
    else begin
      stat.(j) <- Free_nb;
      vnb.(j) <- 0.0
    end
  done;
  let max_iters = default_iters max_iters m n in
  let srhs = Array.map (fun (_, _, r) -> r) input.rows in
  (* Residual of each row at the nonbasic resting point. *)
  let resid = Array.make (max 1 m) 0.0 in
  Array.iteri
    (fun i (terms, _, rhs) ->
      let acc = ref rhs in
      Array.iter
        (fun (j, c) ->
          let v = vnb.(j) in
          if v <> 0.0 then acc := !acc -. (c *. v))
        terms;
      resid.(i) <- !acc)
    input.rows;
  let basis = Array.make (max 1 m) (-1) in
  let xb = Array.make (max 1 m) 0.0 in
  let st =
    { ss_m = m; ss_ntot = ntot; ss_art0 = art0; mat; qlo; qhi; srhs;
      sbasis = basis; sstat = stat; svnb = vnb; sxb = xb;
      etas = Array.make 16 dummy_eta; neta = 0;
      sz = Array.make ntot 0.0; sy = Array.make (max 1 m) 0.0;
      sd = Array.make (max 1 m) 0.0; siters = 0; sdegen = 0;
      refactor_every = refactor_cadence m }
  in
  (* Slack crash: an inequality row whose slack value is feasible at the
     resting point starts with that slack basic.  A Ge slack column is
     -e_i, which enters the factorization as a singleton eta. *)
  Array.iteri
    (fun i (_, sense, _) ->
      match (sense, mat.sm_slack.(i)) with
      | Model.Le, s when s >= 0 && resid.(i) >= 0.0 ->
          basis.(i) <- s;
          stat.(s) <- Basic;
          xb.(i) <- resid.(i)
      | Model.Ge, s when s >= 0 && resid.(i) <= 0.0 ->
          basis.(i) <- s;
          stat.(s) <- Basic;
          xb.(i) <- -.resid.(i);
          push_unit_eta st ~p:i (-1.0)
      | _ -> ())
    input.rows;
  (* Every other row starts with its artificial basic, carrying the raw
     residual (negative residuals keep their sign; bounds follow). *)
  let any_art = ref false in
  for i = 0 to m - 1 do
    if basis.(i) < 0 then begin
      basis.(i) <- art0 + i;
      stat.(art0 + i) <- Basic;
      xb.(i) <- resid.(i);
      any_art := true
    end
    else begin
      qlo.(art0 + i) <- 0.0;
      qhi.(art0 + i) <- 0.0
    end
  done;
  (* Greedy structural crash: BTRAN exposes each artificial row exactly;
     a bounded structural column that can zero the residual without
     knocking any settled row out of bounds (checked against its FTRAN'd
     column) replaces the artificial.  Candidates are filtered on pivot
     quality and ranked by objective movement, as in the dense engine. *)
  if !any_art && n > 0 then begin
    let cmin j = if input.minimize then input.obj.(j) else -.input.obj.(j) in
    for i = 0 to m - 1 do
      if basis.(i) = art0 + i then begin
        let rho = st.sy in
        Array.fill rho 0 m 0.0;
        rho.(i) <- 1.0;
        btran st rho;
        (* Candidates come from the row's own nonzeros: with the basis
           still near-triangular at crash time, columns absent from row
           [i] price to (almost) zero against rho anyway, so scanning
           the whole column set would only rediscover these. *)
        let row_terms, _, _ = input.rows.(i) in
        let maxabs = ref 0.0 in
        Array.iter
          (fun (j, _) ->
            if stat.(j) <> Basic && qlo.(j) < qhi.(j) then begin
              let a = Float.abs (col_dot st j rho) in
              if a > !maxabs then maxabs := a
            end)
          row_terms;
        if !maxabs > 1e-7 then begin
          (* The three cheapest admissible candidates, tried in order
             against the exact safety check. *)
          let c1 = ref (-1) and s1 = ref infinity in
          let c2 = ref (-1) and s2 = ref infinity in
          let c3 = ref (-1) and s3 = ref infinity in
          Array.iter
            (fun (j, _) ->
              if stat.(j) <> Basic && qlo.(j) < qhi.(j) then begin
                let w = col_dot st j rho in
                if Float.abs w >= 0.25 *. !maxabs then begin
                  let delta = xb.(i) /. w in
                  let v = vnb.(j) +. delta in
                  if v >= qlo.(j) -. 1e-9 && v <= qhi.(j) +. 1e-9 then begin
                    let score = cmin j *. delta in
                    if score < !s1 then begin
                      c3 := !c2;
                      s3 := !s2;
                      c2 := !c1;
                      s2 := !s1;
                      c1 := j;
                      s1 := score
                    end
                    else if score < !s2 then begin
                      c3 := !c2;
                      s3 := !s2;
                      c2 := j;
                      s2 := score
                    end
                    else if score < !s3 then begin
                      c3 := j;
                      s3 := score
                    end
                  end
                end
              end)
            row_terms;
          let placed = ref false in
          List.iter
            (fun q ->
              if (not !placed) && q >= 0 then begin
                ftran_col st q;
                let d = st.sd in
                let w = d.(i) in
                if Float.abs w > 1e-7 then begin
                  let delta = xb.(i) /. w in
                  let v = vnb.(q) +. delta in
                  if v >= qlo.(q) -. 1e-9 && v <= qhi.(q) +. 1e-9 then begin
                    let safe = ref true in
                    for r = 0 to m - 1 do
                      if !safe && r <> i then begin
                        let wr = d.(r) in
                        if wr <> 0.0 then begin
                          let nv = xb.(r) -. (wr *. delta) in
                          if basis.(r) = art0 + r then begin
                            (* pending artificial: its residual must not
                               grow *)
                            if Float.abs nv > Float.abs xb.(r) +. 1e-9 then
                              safe := false
                          end
                          else begin
                            let b = basis.(r) in
                            if nv < qlo.(b) -. 1e-9 || nv > qhi.(b) +. 1e-9
                            then safe := false
                          end
                        end
                      end
                    done;
                    if !safe then begin
                      for r = 0 to m - 1 do
                        if r <> i then xb.(r) <- xb.(r) -. (d.(r) *. delta)
                      done;
                      stat.(art0 + i) <- At_lower;
                      vnb.(art0 + i) <- 0.0;
                      qlo.(art0 + i) <- 0.0;
                      qhi.(art0 + i) <- 0.0;
                      basis.(i) <- q;
                      stat.(q) <- Basic;
                      xb.(i) <- Float.max qlo.(q) (Float.min qhi.(q) v);
                      push_eta st ~p:i d;
                      placed := true
                    end
                  end
                end
              end)
            [ !c1; !c2; !c3 ]
        end
      end
    done
  end;
  (* Phase-1 setup: artificials still basic take sign-dependent bounds so
     minimizing (sign-matched) unit costs drives |residual| to zero. *)
  let phase1_cost = Array.make ntot 0.0 in
  let need_p1 = ref false in
  for i = 0 to m - 1 do
    if basis.(i) = art0 + i then begin
      if xb.(i) >= 0.0 then begin
        qlo.(art0 + i) <- 0.0;
        qhi.(art0 + i) <- infinity;
        phase1_cost.(art0 + i) <- 1.0
      end
      else begin
        qlo.(art0 + i) <- neg_infinity;
        qhi.(art0 + i) <- 0.0;
        phase1_cost.(art0 + i) <- -1.0
      end;
      if Float.abs xb.(i) > tol_feas then need_p1 := true
    end
  done;
  let cost = phase2_cost input ntot in
  let fin = sfinish ~emit_basis ~warm_started:false input st in
  let phase1_outcome =
    if !need_p1 then srun_phase st max_iters phase1_cost else `Done
  in
  match phase1_outcome with
  | `Iters -> fin Status.Iteration_limit
  | `Unbounded ->
      (* Phase-1 cost is bounded below by zero; reaching here means a
         numerical breakdown, surfaced as an iteration failure. *)
      fin Status.Iteration_limit
  | `Done ->
      let p1 = ref 0.0 in
      for i = 0 to m - 1 do
        if basis.(i) >= art0 then p1 := !p1 +. Float.abs xb.(i)
      done;
      for j = art0 to ntot - 1 do
        if stat.(j) <> Basic then p1 := !p1 +. Float.abs vnb.(j)
      done;
      if !p1 > tol_feas *. float_of_int (1 + m) then fin Status.Infeasible
      else begin
        (* Artificials may no longer move in phase 2; one still basic at
           (near) zero marks a redundant row and rides along pinned. *)
        for j = art0 to ntot - 1 do
          qlo.(j) <- 0.0;
          qhi.(j) <- 0.0
        done;
        st.sdegen <- 0;
        match srun_phase st max_iters cost with
        | `Done -> fin Status.Optimal
        | `Unbounded -> fin Status.Unbounded
        | `Iters -> fin Status.Iteration_limit
      end

(* Rebuild a sparse factorization around the saved basis [w]; [None]
   when the basis does not fit these rows or is singular. *)
let swarm_state input (w : basis) =
  let mat = build_smat input in
  let m = mat.sm_m and n = mat.sm_n in
  let art0 = mat.sm_art0 and ntot = mat.sm_ntot in
  if Array.length w.vstat <> ntot || Array.length w.vbasis <> m then None
  else begin
    let ok = ref true in
    Array.iter (fun b -> if b < 0 || b >= ntot then ok := false) w.vbasis;
    if not !ok then None
    else begin
      let qlo = Array.make ntot 0.0 and qhi = Array.make ntot 0.0 in
      Array.blit input.lo 0 qlo 0 n;
      Array.blit input.hi 0 qhi 0 n;
      for j = n to art0 - 1 do
        qhi.(j) <- infinity
      done;
      (* Artificials are pinned at zero in any warm solve; one that is
         basic in [w] marks a redundant row and keeps its zero value. *)
      let stat = Array.copy w.vstat in
      let vnb = Array.make ntot 0.0 in
      let basis = Array.copy w.vbasis in
      for j = art0 to ntot - 1 do
        if stat.(j) <> Basic then begin
          stat.(j) <- At_lower;
          vnb.(j) <- 0.0
        end
      done;
      (* Resolve nonbasic resting points against the (possibly changed)
         bounds. *)
      for j = 0 to art0 - 1 do
        if stat.(j) <> Basic then
          if
            qlo.(j) > neg_infinity
            && (stat.(j) = At_lower || qhi.(j) = infinity || qlo.(j) >= qhi.(j))
          then begin
            stat.(j) <- At_lower;
            vnb.(j) <- qlo.(j)
          end
          else if qhi.(j) < infinity then begin
            stat.(j) <- At_upper;
            vnb.(j) <- qhi.(j)
          end
          else if qlo.(j) > neg_infinity then begin
            stat.(j) <- At_lower;
            vnb.(j) <- qlo.(j)
          end
          else begin
            stat.(j) <- Free_nb;
            vnb.(j) <- 0.0
          end
      done;
      Array.iter (fun b -> stat.(b) <- Basic) basis;
      let srhs = Array.map (fun (_, _, r) -> r) input.rows in
      let st =
        { ss_m = m; ss_ntot = ntot; ss_art0 = art0; mat; qlo; qhi; srhs;
          sbasis = basis; sstat = stat; svnb = vnb;
          sxb = Array.make (max 1 m) 0.0; etas = Array.make 16 dummy_eta;
          neta = 0; sz = Array.make ntot 0.0; sy = Array.make (max 1 m) 0.0;
          sd = Array.make (max 1 m) 0.0; siters = 0; sdegen = 0;
          refactor_every = refactor_cadence m }
      in
      if refactorize st then Some st else None
    end
  end

(* Bounded-variable dual simplex on the sparse state; mirrors
   [dual_loop], with the transformed leaving row obtained by BTRAN of a
   unit vector and one pass over the column nonzeros. *)
let sdual_loop st max_iters (c : float array) =
  let m = st.ss_m and ntot = st.ss_ntot in
  let rec loop () =
    if st.siters >= max_iters then `Iters
    else begin
      (* Most violated basic variable. *)
      let row = ref (-1) and viol = ref tol_feas and below = ref false in
      for i = 0 to m - 1 do
        let b = st.sbasis.(i) in
        let lo = st.qlo.(b) and hi = st.qhi.(b) in
        let v_lo = (lo -. st.sxb.(i)) /. (1.0 +. Float.abs lo) in
        let v_hi = (st.sxb.(i) -. hi) /. (1.0 +. Float.abs hi) in
        if v_lo > !viol then begin
          viol := v_lo;
          row := i;
          below := true
        end;
        if v_hi > !viol then begin
          viol := v_hi;
          row := i;
          below := false
        end
      done;
      if !row < 0 then `Feasible
      else begin
        let r = !row in
        let b = st.sbasis.(r) in
        let target = if !below then st.qlo.(b) else st.qhi.(b) in
        (* Fresh reduced costs first ([sreset_z] owns [sy]), then the
           transformed row rho = B^-T e_r. *)
        sreset_z st c;
        let rho = st.sy in
        Array.fill rho 0 m 0.0;
        rho.(r) <- 1.0;
        btran st rho;
        let q = ref (-1) and best_ratio = ref infinity and best_w = ref 0.0 in
        for j = 0 to ntot - 1 do
          if st.sstat.(j) <> Basic && st.qlo.(j) < st.qhi.(j) then begin
            let w = col_dot st j rho in
            let eligible =
              if Float.abs w <= tol_piv then false
              else
                match st.sstat.(j) with
                | Free_nb -> true
                | At_lower -> if !below then w < 0.0 else w > 0.0
                | At_upper -> if !below then w > 0.0 else w < 0.0
                | Basic -> false
            in
            if eligible then begin
              let ratio =
                match st.sstat.(j) with
                | Free_nb -> Float.abs (st.sz.(j) /. w)
                | _ ->
                    Float.max 0.0
                      (if !below then -.(st.sz.(j) /. w) else st.sz.(j) /. w)
              in
              if
                ratio < !best_ratio -. 1e-10
                || (ratio < !best_ratio +. 1e-10
                    && Float.abs w > Float.abs !best_w)
              then begin
                q := j;
                best_ratio := ratio;
                best_w := w
              end
            end
          end
        done;
        if !q < 0 then `Infeasible
        else begin
          let q = !q in
          ftran_col st q;
          let d = st.sd in
          let w = d.(r) in
          if Float.abs w <= tol_piv *. 0.01 then `Iters
          else begin
            let delta = (st.sxb.(r) -. target) /. w in
            st.siters <- st.siters + 1;
            for i = 0 to m - 1 do
              if i <> r then st.sxb.(i) <- st.sxb.(i) -. (d.(i) *. delta)
            done;
            st.svnb.(b) <- target;
            st.sstat.(b) <- (if !below then At_lower else At_upper);
            st.sbasis.(r) <- q;
            st.sstat.(q) <- Basic;
            st.sxb.(r) <- st.svnb.(q) +. delta;
            push_eta st ~p:r d;
            if maybe_refactor st then loop () else `Iters
          end
        end
      end
    end
  in
  loop ()

let ssolve_warm ?max_iters input w =
  match swarm_state input w with
  | None -> None
  | Some st ->
      let max_iters = default_iters max_iters st.ss_m input.nvars in
      let cost = phase2_cost input st.ss_ntot in
      let fin = sfinish ~emit_basis:true ~warm_started:true input st in
      (match sdual_loop st max_iters cost with
      | `Iters -> None (* numerical trouble: let the cold path decide *)
      | `Infeasible -> Some (fin Status.Infeasible)
      | `Feasible -> (
          st.sdegen <- 0;
          match srun_phase st max_iters cost with
          | `Done ->
              (* [sy]/[sz] are current from the final pricing round. *)
              Some (fin Status.Optimal)
          | `Unbounded -> Some (fin Status.Unbounded)
          | `Iters -> None))

type core = Dense | Sparse

let rec solve ?max_iters ?warm ?(want_basis = false) ?(core = Sparse) input =
  let n = input.nvars in
  (* Branching can cross bounds; such boxes are empty, not "solved". *)
  let crossed = ref false in
  for j = 0 to n - 1 do
    if input.lo.(j) > input.hi.(j) +. 1e-11 then crossed := true
  done;
  if !crossed then empty_result Status.Infeasible
  else
    let cold ~emit_basis =
      match core with
      | Sparse -> ssolve_cold ?max_iters ~emit_basis input
      | Dense -> solve_cold ?max_iters ~emit_basis input
    in
    match warm with
    | Some w -> (
        let attempt =
          match core with
          | Sparse -> ssolve_warm ?max_iters input w
          | Dense -> solve_warm ?max_iters input w
        in
        match attempt with
        | Some r -> r
        | None -> solve ?max_iters ~want_basis:true ~core input)
    | None ->
        if want_basis then cold ~emit_basis:true
        else (
          match eliminate_fixed input with
          | Some (reduced, back) ->
              let r = solve ?max_iters ~core reduced in
              let x = Array.copy input.lo in
              let reduced_costs = Array.make n 0.0 in
              if Array.length r.x > 0 then
                Array.iteri (fun k j -> x.(j) <- r.x.(k)) back;
              if r.status = Status.Optimal then begin
                (* Reduced costs of fixed columns from the duals:
                   c_j - y' A_j. *)
                let cmin j =
                  if input.minimize then input.obj.(j) else -.input.obj.(j)
                in
                for j = 0 to n - 1 do
                  reduced_costs.(j) <- cmin j
                done;
                Array.iteri
                  (fun i (terms, _, _) ->
                    let y = r.duals.(i) in
                    if y <> 0.0 then
                      Array.iter
                        (fun (j, c) ->
                          reduced_costs.(j) <- reduced_costs.(j) -. (y *. c))
                        terms)
                  input.rows;
                Array.iteri
                  (fun k j -> reduced_costs.(j) <- r.reduced_costs.(k))
                  back
              end;
              {
                r with
                x = (if r.status = Status.Optimal then x else [||]);
                reduced_costs;
                basis = None;
              }
          | None -> cold ~emit_basis:false)

let check_certificate ?(tol = 1e-5) input result =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let n = input.nvars and m = Array.length input.rows in
  let x = result.x in
  if not (feasible ~tol input x) then err "primal point infeasible";
  (* Reduced costs recomputed from scratch in the minimization convention. *)
  let cmin j = if input.minimize then input.obj.(j) else -.input.obj.(j) in
  let zhat = Array.init n cmin in
  Array.iteri
    (fun i (terms, _, _) ->
      let y = result.duals.(i) in
      if y <> 0.0 then
        Array.iter (fun (j, c) -> zhat.(j) <- zhat.(j) -. (y *. c)) terms)
    input.rows;
  let scale =
    1.0 +. Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 input.obj
  in
  let tolz = tol *. scale in
  for j = 0 to n - 1 do
    let at_lo = x.(j) <= input.lo.(j) +. tol in
    let at_hi = x.(j) >= input.hi.(j) -. tol in
    if (not at_lo) && not at_hi then begin
      if Float.abs zhat.(j) > tolz then
        err "interior variable %d has reduced cost %g" j zhat.(j)
    end
    else begin
      if at_lo && (not at_hi) && zhat.(j) < -.tolz then
        err "variable %d at lower bound has negative reduced cost %g" j zhat.(j);
      if at_hi && (not at_lo) && zhat.(j) > tolz then
        err "variable %d at upper bound has positive reduced cost %g" j zhat.(j)
    end
  done;
  (* Complementary slackness and dual sign conditions per row. *)
  for i = 0 to m - 1 do
    let terms, sense, rhs = input.rows.(i) in
    let v = Array.fold_left (fun a (j, c) -> a +. (c *. x.(j))) 0.0 terms in
    let slack = rhs -. v in
    let y = result.duals.(i) in
    let rtol = tol *. (1.0 +. Float.abs rhs) in
    (match sense with
    | Model.Le ->
        if y > tolz then err "Le row %d has dual %g > 0" i y;
        if slack > rtol && Float.abs y > tolz then
          err "slack Le row %d has nonzero dual %g" i y
    | Model.Ge ->
        if y < -.tolz then err "Ge row %d has dual %g < 0" i y;
        if slack < -.rtol && Float.abs y > tolz then
          err "slack Ge row %d has nonzero dual %g" i y
    | Model.Eq -> ())
  done;
  List.rev !errs
