type var = {
  id : int;
  name : string;
  mutable lo : float;
  mutable hi : float;
  mutable integer : bool;
}

type sense = Le | Ge | Eq

module Linexpr = struct
  (* Expressions are kept as unreduced trees while being built; [terms]
     canonicalizes on demand.  Building is O(1) per combination, which
     matters when summing tens of thousands of terms. *)
  type t =
    | Zero
    | Const of float
    | Term of float * var
    | Add of t * t
    | Scale of float * t

  let zero = Zero
  let constant c = if c = 0.0 then Zero else Const c
  let term c v = Term (c, v)
  let var v = Term (1.0, v)

  let add a b =
    match (a, b) with Zero, e | e, Zero -> e | a, b -> Add (a, b)

  let scale k e = if k = 1.0 then e else Scale (k, e)
  let sub a b = add a (scale (-1.0) b)
  let sum es = List.fold_left add Zero es

  let fold_terms e ~on_const ~on_term =
    let rec go k e =
      match e with
      | Zero -> ()
      | Const c -> on_const (k *. c)
      | Term (c, v) -> on_term (k *. c) v
      | Add (a, b) ->
          go k a;
          go k b
      | Scale (s, a) -> go (k *. s) a
    in
    go 1.0 e

  let const_part e =
    let c = ref 0.0 in
    fold_terms e ~on_const:(fun x -> c := !c +. x) ~on_term:(fun _ _ -> ());
    !c

  let terms e =
    (* Canonicalize by sort-and-merge over flat id/coefficient arrays
       rather than a hash table: builders emit terms in variable order
       almost always, so the pre-sorted check usually reduces the whole
       pass to two array fills and one merge sweep. *)
    let ids = ref (Array.make 16 0) and cs = ref (Array.make 16 0.0) in
    let k = ref 0 in
    fold_terms e
      ~on_const:(fun _ -> ())
      ~on_term:(fun c v ->
        if !k = Array.length !ids then begin
          let ids' = Array.make (2 * !k) 0 and cs' = Array.make (2 * !k) 0.0 in
          Array.blit !ids 0 ids' 0 !k;
          Array.blit !cs 0 cs' 0 !k;
          ids := ids';
          cs := cs'
        end;
        !ids.(!k) <- v.id;
        !cs.(!k) <- c;
        incr k);
    let n0 = !k in
    let ids = !ids and cs = !cs in
    let sorted = ref true in
    for i = 1 to n0 - 1 do
      if ids.(i - 1) > ids.(i) then sorted := false
    done;
    if not !sorted then begin
      let pairs = Array.init n0 (fun i -> (ids.(i), cs.(i))) in
      Array.sort (fun (a, _) (b, _) -> Stdlib.compare (a : int) b) pairs;
      Array.iteri
        (fun i (id, c) ->
          ids.(i) <- id;
          cs.(i) <- c)
        pairs
    end;
    let w = ref 0 and i = ref 0 in
    while !i < n0 do
      let id = ids.(!i) in
      let acc = ref 0.0 in
      while !i < n0 && ids.(!i) = id do
        acc := !acc +. cs.(!i);
        incr i
      done;
      if !acc <> 0.0 then begin
        ids.(!w) <- id;
        cs.(!w) <- !acc;
        incr w
      end
    done;
    Array.init !w (fun i -> (ids.(i), cs.(i)))

  let eval e x =
    let acc = ref 0.0 in
    fold_terms e
      ~on_const:(fun c -> acc := !acc +. c)
      ~on_term:(fun c v -> acc := !acc +. (c *. x.(v.id)));
    !acc

  let pp ~names ppf e =
    let ts = terms e in
    let c = const_part e in
    if Array.length ts = 0 then Fmt.pf ppf "%g" c
    else begin
      Array.iteri
        (fun i (id, coeff) ->
          if i = 0 then
            if coeff < 0.0 then Fmt.pf ppf "- %g %s" (-.coeff) (names id)
            else Fmt.pf ppf "%g %s" coeff (names id)
          else if coeff < 0.0 then Fmt.pf ppf " - %g %s" (-.coeff) (names id)
          else Fmt.pf ppf " + %g %s" coeff (names id))
        ts;
      if c <> 0.0 then Fmt.pf ppf " %s %g" (if c < 0.0 then "-" else "+") (abs_float c)
    end
end

type constr = {
  cname : string;
  expr : Linexpr.t;
  sense : sense;
  rhs : float;
  mutable tcache : (int * float) array option;
}

(* Rows are frozen once added, so their canonical term arrays can be
   computed once and reused — [Milp.solve] compiles the same rows on every
   call, which made repeated canonicalization the dominant setup cost. *)
let row_terms c =
  match c.tcache with
  | Some a -> a
  | None ->
      let a = Linexpr.terms c.expr in
      c.tcache <- Some a;
      a

type t = {
  mname : string;
  mutable nvars : int;
  mutable var_store : var array;
  mutable rows_rev : constr list;
  mutable nrows : int;
  mutable obj : Linexpr.t;
  mutable min : bool;
  mutable obj_cache : ((int * float) array * float) option;
}

let create ?(name = "model") () =
  {
    mname = name;
    nvars = 0;
    var_store = [||];
    rows_rev = [];
    nrows = 0;
    obj = Linexpr.zero;
    min = true;
    obj_cache = None;
  }

let name t = t.mname

let add_var t ?(lo = 0.0) ?(hi = infinity) ?(integer = false) ?(binary = false)
    vname =
  let lo, hi, integer = if binary then (0.0, 1.0, true) else (lo, hi, integer) in
  let v = { id = t.nvars; name = vname; lo; hi; integer } in
  let cap = Array.length t.var_store in
  if t.nvars = cap then begin
    let cap' = max 16 (2 * cap) in
    let store = Array.make cap' v in
    Array.blit t.var_store 0 store 0 cap;
    t.var_store <- store
  end;
  t.var_store.(t.nvars) <- v;
  t.nvars <- t.nvars + 1;
  v

let add_constr t cname expr sense rhs =
  (* Move any constant part of the expression to the right-hand side so the
     stored row is in canonical [terms sense rhs] form. *)
  let c = Linexpr.const_part expr in
  let expr = if c = 0.0 then expr else Linexpr.sub expr (Linexpr.constant c) in
  t.rows_rev <-
    { cname; expr; sense; rhs = rhs -. c; tcache = None } :: t.rows_rev;
  t.nrows <- t.nrows + 1

let add_le t n e rhs = add_constr t n e Le rhs
let add_ge t n e rhs = add_constr t n e Ge rhs
let add_eq t n e rhs = add_constr t n e Eq rhs
let set_objective t ?(minimize = true) e =
  t.obj <- e;
  t.min <- minimize;
  t.obj_cache <- None

let objective t = t.obj
let minimize t = t.min

let objective_terms t =
  match t.obj_cache with
  | Some (a, c) -> (a, c)
  | None ->
      let a = Linexpr.terms t.obj and c = Linexpr.const_part t.obj in
      t.obj_cache <- Some (a, c);
      (a, c)

let set_bounds _t v ~lo ~hi =
  v.lo <- lo;
  v.hi <- hi

let set_integer _t v b = v.integer <- b

let num_vars t = t.nvars
let num_constrs t = t.nrows
let vars t = Array.sub t.var_store 0 t.nvars
let constrs t = Array.of_list (List.rev t.rows_rev)

let find_var t vname =
  let rec go i =
    if i >= t.nvars then None
    else if t.var_store.(i).name = vname then Some t.var_store.(i)
    else go (i + 1)
  in
  go 0

let integer_vars t =
  let acc = ref [] in
  for i = t.nvars - 1 downto 0 do
    if t.var_store.(i).integer then acc := t.var_store.(i) :: !acc
  done;
  !acc

let validate t =
  let problems = ref [] in
  let bad fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  if t.nvars = 0 then bad "model has no variables";
  for i = 0 to t.nvars - 1 do
    let v = t.var_store.(i) in
    if v.lo > v.hi then bad "variable %s has lo %g > hi %g" v.name v.lo v.hi;
    if Float.is_nan v.lo || Float.is_nan v.hi then
      bad "variable %s has NaN bound" v.name
  done;
  List.iter
    (fun r ->
      if Float.is_nan r.rhs || Float.is_integer r.rhs && Float.abs r.rhs = infinity
      then bad "constraint %s has non-finite rhs" r.cname;
      if not (Float.is_nan r.rhs) && Float.abs r.rhs = infinity then
        bad "constraint %s has infinite rhs" r.cname;
      if Array.length (Linexpr.terms r.expr) = 0 then begin
        (* Constant row: either trivially true or witnesses infeasibility. *)
        let ok =
          match r.sense with
          | Le -> 0.0 <= r.rhs +. 1e-9
          | Ge -> 0.0 >= r.rhs -. 1e-9
          | Eq -> Float.abs r.rhs <= 1e-9
        in
        if not ok then bad "constraint %s is constant and violated" r.cname
      end)
    t.rows_rev;
  List.rev !problems

let pp_stats ppf t =
  let nint =
    let n = ref 0 in
    for i = 0 to t.nvars - 1 do
      if t.var_store.(i).integer then incr n
    done;
    !n
  in
  Fmt.pf ppf "%s: %d vars (%d integer), %d constraints" t.mname t.nvars nint
    t.nrows
