(** Branching-variable selection for the branch-and-bound tree.

    Three strategies share one selector:

    - {!Most_fractional} picks the integer variable whose LP value is
      furthest from an integer — cheap, but blind to the objective.
    - {!Pseudocost} keeps, per variable and branching direction, the
      running mean {e per-unit objective degradation} observed when that
      branch's child LP was solved, and scores candidates by the product
      of the estimated down- and up-degradations.  During a warmup window
      of the first [sb_nsteps] tree nodes the most fractional candidates
      are probed by strong branching — bounded warm-started dual-simplex
      solves of both children — and the probe results seed the
      pseudocosts.  Until a variable has any statistics it borrows the
      global mean; with no statistics at all the selector degrades to
      most-fractional.
    - {!Reliability} is pseudocost branching with a per-variable trigger
      instead of a global window: any candidate whose up or down branch
      has fewer than {!reliability_threshold} observations is considered
      unreliable and is re-probed (up to [sb_nvars] probes per node),
      regardless of how many nodes the tree has processed.

    The state is shared across worker domains and is domain-safe without
    any lock: per-direction statistics are (sum, count) pairs of
    [Atomic] cells (a CAS loop for the float sum, fetch-and-add for the
    count), and readers divide sum by count.  Both components are
    non-negative under every interleaving, so concurrent updates can
    bias a mean a reader computes mid-update but can never produce a NaN
    or negative pseudocost.  Visit-order nondeterminism with
    [workers > 1] changes the tree shape but never the optimum. *)

type strategy = Most_fractional | Pseudocost | Reliability

val strategy_to_string : strategy -> string

(** Inverse of {!strategy_to_string}; also accepts common aliases
    ("mf", "most_fractional", "pc", "rel"). *)
val strategy_of_string : string -> strategy option

type t

(** [create ~nvars ~strategy ~sb_nvars ~sb_nsteps] makes an empty
    pseudocost table over variable ids [0..nvars-1].  [sb_nvars] bounds
    strong-branching probes per node; [sb_nsteps] is the warmup-window
    length (in processed nodes) for {!Pseudocost}. *)
val create : nvars:int -> strategy:strategy -> sb_nvars:int -> sb_nsteps:int -> t

(** Observations with fewer samples than this per direction make a
    variable "unreliable" under {!Reliability} (SCIP's eta-rel idea). *)
val reliability_threshold : int

(** Degradation recorded for a branch whose child LP is infeasible: a
    large finite stand-in for "prunes immediately". *)
val infeasible_degradation : float

(** [observe t ~var ~up ~frac ~degradation] records that branching [var]
    (whose LP value had fractional part [frac]) in direction [up] degraded
    the parent objective key by [degradation >= 0].  The stored statistic
    is per unit of enforced change: [degradation / frac] for the down
    branch, [degradation / (1 - frac)] for the up branch. *)
val observe : t -> var:int -> up:bool -> frac:float -> degradation:float -> unit

(** [stats t ~var] is [((ndown, mean_down), (nup, mean_up))]: the
    observation count and mean per-unit degradation for each branching
    direction of [var].  Safe to call concurrently with {!observe}; the
    means are always finite and non-negative. *)
val stats : t -> var:int -> (int * float) * (int * float)

(** Total observations folded in so far. *)
val observations : t -> int

(** [most_fractional int_ids tol x] is the id of the integer variable
    furthest from integrality (at least [tol] away), or [-1] if all are
    integral — the strategy-independent fallback, also used by dives. *)
val most_fractional : int list -> float -> float array -> int

(** [select t ~int_ids ~tol ~x ~nodes ~probe] picks the branching
    variable for the LP solution [x], or [-1] when [x] is integral on
    [int_ids].  [nodes] is the number of tree nodes processed so far
    (drives the {!Pseudocost} warmup window).  [probe j xv] strong-branches
    candidate [j] at LP value [xv] and returns the observed objective-key
    degradations [(down, up)] — [None] when the probe hit an iteration or
    time budget; probe results are folded into the pseudocost table. *)
val select :
  t ->
  int_ids:int list ->
  tol:float ->
  x:float array ->
  nodes:int ->
  probe:(int -> float -> float option * float option) ->
  int
