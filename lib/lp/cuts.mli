(** Root-node cutting planes: Gomory mixed-integer and knapsack-cover
    cuts.

    Cuts are valid inequalities for the integer hull that the current LP
    relaxation optimum violates; appending them tightens the root bound
    and often de-fractionalizes many variables at once before the tree
    opens.  Both separators work purely from the {!Simplex} frame layout
    (structurals first, then one slack per inequality row in row order)
    and the exported optimal basis — no solver internals are touched.

    - {e Gomory mixed-integer cuts} read one simplex tableau row per
      fractional basic integer variable: the row of [B⁻¹[A|S]] is
      recovered by one dense LU solve against the basis transpose,
      nonbasic columns are shifted onto their active bounds, and the
      standard GMI formula is applied (fractional-part coefficients for
      integer nonbasics, sign-split scaling for continuous ones).  Slack
      variables are substituted back out so the cut is expressed over
      structural variables only.  Rows whose basic column is an
      artificial, or that involve a nonbasic free column, are skipped.
    - {e Knapsack-cover cuts} scan [<=] rows: binary terms with negative
      coefficients are complemented, non-binary terms are relaxed to
      their interval minimum, and a greedy cover (largest LP value
      first, then minimized) yields [sum x_j <= |C| - 1] whenever the
      relaxation packs more than capacity into the cover.

    Like the {!Presolve} passes, application is an undo-closure pair:
    {!apply} returns the augmented input together with a function that
    restores a result to the original row arity, so downstream consumers
    (dual reporting, the LP writer) never see cut rows.  Note the undo
    only truncates — a cut-strengthened bound has no certificate in the
    original LP, so truncated duals are heuristic, not a certificate. *)

type stats = { gomory : int; cover : int; rounds : int }

val total : stats -> int

(** [apply input cuts] appends the cut rows and returns the augmented
    input plus an undo that truncates a result's duals back to the
    original rows (dropping the exported basis, which is only valid for
    the augmented row structure). *)
val apply :
  Simplex.input ->
  ((int * float) array * Model.sense * float) list ->
  Simplex.input * (Simplex.result -> Simplex.result)

(** [strengthen ~solve ~integer ~int_tol ~stop input] runs separation
    rounds at the root: solve (with a basis), separate, append, repeat.
    [solve] must export a basis ([want_basis]) for Gomory separation to
    fire; [integer.(j)] marks integer structurals.  When [root] carries
    an optimal result with a basis for [input], the initial solve is
    skipped and each subsequent round is warm-started by extending the
    previous basis with the new cut slacks basic (the classic
    cuts-then-dual-simplex repair), so a round costs a handful of dual
    pivots instead of a cold solve.  Returns the augmented input, its
    relaxation optimum and cut statistics — or [None] when the first
    solve fails or no cut was ever added (callers keep their original
    root solve in that case).  Separation is skipped for models wider
    than [max_dense_rows] rows (the dense LU would dominate). *)
val strengthen :
  solve:(?warm:Simplex.basis -> Simplex.input -> Simplex.result) ->
  integer:bool array ->
  int_tol:float ->
  ?root:Simplex.result ->
  ?max_rounds:int ->
  ?max_per_round:int ->
  ?max_dense_rows:int ->
  stop:(unit -> bool) ->
  Simplex.input ->
  (Simplex.input * Simplex.result * stats) option
