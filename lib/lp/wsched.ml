type 'a next = Work of float * 'a | Done | Stopped

type 'a t = {
  workers : int;
  deques : 'a Wsdeque.t array;
  locks : Mutex.t array;
  pending : int Atomic.t;  (* queued + in flight *)
  queued : int Atomic.t;
  nsteals : int Atomic.t;
  stop_flag : bool Atomic.t;
  finite : bool;
  drain : bool;
  idle_m : Mutex.t;
  idle_c : Condition.t;
  nidlers : int Atomic.t;
  steal_order : thief:int -> round:int -> int;
}

let create ~workers ?steal_order ?(finite = true) ?(drain = false) () =
  let workers = max 1 workers in
  let steal_order =
    match steal_order with
    | Some f -> f
    | None -> fun ~thief ~round -> (thief + 1 + round) mod workers
  in
  {
    workers;
    deques = Array.init workers (fun _ -> Wsdeque.create ());
    locks = Array.init workers (fun _ -> Mutex.create ());
    pending = Atomic.make 0;
    queued = Atomic.make 0;
    nsteals = Atomic.make 0;
    stop_flag = Atomic.make false;
    finite;
    drain;
    idle_m = Mutex.create ();
    idle_c = Condition.create ();
    nidlers = Atomic.make 0;
    steal_order;
  }

let workers t = t.workers
let stopped t = Atomic.get t.stop_flag
let pending t = Atomic.get t.pending
let queued t = Atomic.get t.queued
let steals t = Atomic.get t.nsteals

(* A parked worker holds [idle_m] from registration through
   [Condition.wait], and re-checks the wake conditions in between, so a
   signal sent under [idle_m] can never be lost. *)
let wake_one t =
  if Atomic.get t.nidlers > 0 then begin
    Mutex.lock t.idle_m;
    Condition.signal t.idle_c;
    Mutex.unlock t.idle_m
  end

let wake_all t =
  Mutex.lock t.idle_m;
  Condition.broadcast t.idle_c;
  Mutex.unlock t.idle_m

let norm t who = ((who mod t.workers) + t.workers) mod t.workers

let push t ~who ~key v =
  let who = norm t who in
  Atomic.incr t.pending;
  Atomic.incr t.queued;
  Mutex.lock t.locks.(who);
  Wsdeque.push t.deques.(who) ~key v;
  Mutex.unlock t.locks.(who);
  wake_one t

let pop_own t who =
  Mutex.lock t.locks.(who);
  let r = Wsdeque.pop_min t.deques.(who) in
  Mutex.unlock t.locks.(who);
  r

let try_pop t ~who =
  let who = norm t who in
  match pop_own t who with
  | Some _ as r ->
      Atomic.decr t.queued;
      r
  | None ->
      let rec sweep round =
        if round > t.workers - 2 then None
        else begin
          let v = norm t (t.steal_order ~thief:who ~round) in
          if v = who then sweep (round + 1)
          else if Mutex.try_lock t.locks.(v) then begin
            let r = Wsdeque.pop_max t.deques.(v) in
            Mutex.unlock t.locks.(v);
            match r with
            | Some _ ->
                Atomic.decr t.queued;
                Atomic.incr t.nsteals;
                r
            | None -> sweep (round + 1)
          end
          else sweep (round + 1)
        end
      in
      sweep 0

(* Failed sweeps before parking on the condition variable. *)
let park_after = 4

let next t ~who =
  let who = norm t who in
  let rec go fails =
    if Atomic.get t.stop_flag && not t.drain then Stopped
    else
      match try_pop t ~who with
      | Some (k, v) -> Work (k, v)
      | None ->
          if Atomic.get t.stop_flag then
            (* drain mode: serve the backlog, then report the stop *)
            if Atomic.get t.queued = 0 then Stopped
            else begin
              Domain.cpu_relax ();
              go (fails + 1)
            end
          else if t.finite && Atomic.get t.pending = 0 then Done
          else if fails < park_after then begin
            Domain.cpu_relax ();
            go (fails + 1)
          end
          else begin
            Mutex.lock t.idle_m;
            Atomic.incr t.nidlers;
            let wake_now =
              Atomic.get t.queued > 0
              || Atomic.get t.stop_flag
              || (t.finite && Atomic.get t.pending = 0)
            in
            if not wake_now then Condition.wait t.idle_c t.idle_m;
            Atomic.decr t.nidlers;
            Mutex.unlock t.idle_m;
            go 0
          end
  in
  go 0

let done_one t = if Atomic.fetch_and_add t.pending (-1) = 1 then wake_all t

let stop t =
  Atomic.set t.stop_flag true;
  wake_all t

let min_key t =
  let best = ref None in
  Array.iteri
    (fun i q ->
      Mutex.lock t.locks.(i);
      (match Wsdeque.min_key q with
      | Some k -> (
          match !best with Some b when b <= k -> () | _ -> best := Some k)
      | None -> ());
      Mutex.unlock t.locks.(i))
    t.deques;
  !best
