(** Flat row-major dense tableau with the simplex pivot kernels.

    The tableau stores [rows] constraint rows of [cols] columns in a single
    [float array], so the innermost elimination loops walk one contiguous
    buffer instead of chasing a per-row pointer.  By convention the caller
    reserves the last column for the right-hand side, which lets the
    Gauss-Jordan kernels carry it through row operations for free.

    The kernels use unsafe indexing internally; all offsets are derived from
    [rows]/[cols], so they are in bounds whenever the row and column
    arguments are. *)

type t = private { rows : int; cols : int; a : float array }

val create : rows:int -> cols:int -> t

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

(** [unsafe_get t i j] reads without bounds checks; the caller guarantees
    [0 <= i < rows] and [0 <= j < cols]. *)
val unsafe_get : t -> int -> int -> float

(** [scale_row t i f] multiplies row [i] by [f] in place. *)
val scale_row : t -> int -> float -> unit

(** [flip_row t i] negates row [i] in place. *)
val flip_row : t -> int -> unit

(** [sub_scaled_vec t ~src f v] computes [v := v - f * row src] for a dense
    vector [v] of length [cols] (or shorter; its length bounds the loop). *)
val sub_scaled_vec : t -> src:int -> float -> float array -> unit

(** [pivot ?aux t ~row ~col] performs one full Gauss-Jordan pivot: row
    [row] is scaled so the pivot element becomes exactly 1, then column
    [col] is eliminated from every other row — and from the dense side row
    [aux] (the reduced-cost row) when given.  Eliminations visit only the
    pivot row's nonzero columns while it is sparse.  The pivot element must
    be nonzero.  This is the flops-dominant kernel of the solver. *)
val pivot : ?aux:float array -> t -> row:int -> col:int -> unit
