(** Feasibility pump: a primal heuristic that hunts for an integer-feasible
    point at the root of the branch-and-bound tree.

    The pump alternates between two projections: round the current LP point
    onto the integer lattice (clamped into the integral part of each
    variable's box), then solve an LP that minimizes a linear distance to
    the rounded point — [+x_j] for variables rounded to their lower
    integral bound, [-x_j] for variables rounded to their upper one — with
    a geometrically decaying tilt toward the true objective so the first
    incumbent is not gratuitously expensive.  If the distance-LP optimum is
    integral on the integer variables it is feasible for the relaxation and
    integral, i.e. a valid incumbent.

    The classic failure mode is cycling: rounding the new LP point
    reproduces an earlier rounding and the loop revisits the same pair
    forever.  Every rounding is hashed into a history set; on a repeat the
    rounding is perturbed deterministically — the [3 + 2*restarts] integer
    variables whose LP values sit furthest from their rounded values are
    flipped one unit toward the LP point — before pumping continues, and a
    round budget bounds the whole loop regardless.

    On structured models the pump frequently converges to a {e near}-fixed
    point: all but a handful of integer variables integral, with the
    distance LP returning the same vertex round after round so that even
    perturbation cannot dislodge it.  Rather than discard that progress,
    {!run} reports the best (fewest fractional integers) LP iterate seen
    as {!Near}; the caller can finish the job cheaply — fix the integral
    majority and branch or dive on the fractional remainder. *)

type outcome =
  | Integral of float array
      (** A point feasible for the relaxation and integral on the integer
          variables: a valid incumbent as-is. *)
  | Near of float array
      (** Best LP iterate seen: feasible for the relaxation, integral on
          all but a few integer variables.  Not an incumbent — a launch
          point for a fixing pass. *)
  | Failed  (** No LP iterate survived (solver failure or empty box). *)

(** [run ~solve ~input ~int_ids ~int_tol ~start ~stop ()] pumps from the
    relaxation optimum [start]; [Integral] carries a feasible integral
    point, [Near] the best near-integral iterate when the round budget,
    [stop], or a hard stall (repeated zero-pivot rounds) ends the hunt
    first.  [solve] must solve an arbitrary {!Simplex.input}; the pump
    only varies the objective, never bounds or rows. *)
val run :
  solve:(Simplex.input -> Simplex.result) ->
  input:Simplex.input ->
  int_ids:int list ->
  int_tol:float ->
  start:float array ->
  stop:(unit -> bool) ->
  ?max_rounds:int ->
  unit ->
  outcome
