(** Double-ended priority queue for work-stealing search.

    A min-max interval heap keyed by [float]: the owner of a deque pops
    its best node ({!pop_min}, lowest key = best bound for a minimizing
    branch-and-bound), while a thief steals from the other end
    ({!pop_max}, the victim's worst open node — deep subtrees the victim
    would reach last, which keeps steals cheap and non-overlapping with
    the owner's working set).

    Not thread-safe by itself: {!Wsched} wraps each deque in a per-owner
    mutex (owners block, thieves trylock). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> key:float -> 'a -> unit

(** Remove the entry with the smallest key (ties broken arbitrarily). *)
val pop_min : 'a t -> (float * 'a) option

(** Remove the entry with the largest key (ties broken arbitrarily). *)
val pop_max : 'a t -> (float * 'a) option

(** Smallest key present without removing it. *)
val min_key : 'a t -> float option
