(** Mutable builder for linear and mixed-integer programs.

    A model owns a growing set of decision variables, linear constraints and
    one linear objective.  Models are consumed by {!Milp.solve} (or compiled
    to solver input by {!Milp.relax}) and can be serialized to the CPLEX LP
    file format with {!Lp_format.write_model}. *)

type var = private {
  id : int;           (** dense index, assigned in creation order *)
  name : string;
  mutable lo : float; (** lower bound, may be [neg_infinity] *)
  mutable hi : float; (** upper bound, may be [infinity] *)
  mutable integer : bool;
}

type sense = Le | Ge | Eq

(** A linear expression: constant plus weighted variables. *)
module Linexpr : sig
  type t

  val zero : t
  val constant : float -> t
  val term : float -> var -> t
  val var : var -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : float -> t -> t
  val sum : t list -> t

  (** [terms e] returns the canonical (deduplicated, id-sorted) term list. *)
  val terms : t -> (int * float) array

  val const_part : t -> float

  (** [eval e x] evaluates [e] against the assignment [x] indexed by var id. *)
  val eval : t -> float array -> float

  val pp : names:(int -> string) -> t Fmt.t
end

type constr = private {
  cname : string;
  expr : Linexpr.t;
  sense : sense;
  rhs : float;
  mutable tcache : (int * float) array option;
      (** memoized canonical terms of [expr]; use {!row_terms} *)
}

type t

val create : ?name:string -> unit -> t

val name : t -> string

(** [add_var t name] creates a continuous variable in [\[lo, hi\]]
    (default [\[0, infinity)]).  [~integer:true] marks it integral;
    [~binary:true] is shorthand for integer in [\[0,1\]]. *)
val add_var :
  t -> ?lo:float -> ?hi:float -> ?integer:bool -> ?binary:bool -> string -> var

(** [add_constr t name expr sense rhs] adds the row [expr sense rhs].
    Any constant part of [expr] is moved to the right-hand side. *)
val add_constr : t -> string -> Linexpr.t -> sense -> float -> unit

(** Convenience wrappers around {!add_constr}. *)
val add_le : t -> string -> Linexpr.t -> float -> unit

val add_ge : t -> string -> Linexpr.t -> float -> unit
val add_eq : t -> string -> Linexpr.t -> float -> unit

(** [set_objective t ~minimize e] installs the objective.  Default sense is
    minimization; the constant part of [e] is carried into reported
    objective values. *)
val set_objective : t -> ?minimize:bool -> Linexpr.t -> unit

val objective : t -> Linexpr.t
val minimize : t -> bool

(** [row_terms c] is [Linexpr.terms c.expr], memoized — rows are immutable
    once added, so repeated compilation of the same model skips the
    canonicalization pass. *)
val row_terms : constr -> (int * float) array

(** [objective_terms t] is the memoized canonical objective: its term array
    and constant part.  Invalidated by {!set_objective}. *)
val objective_terms : t -> (int * float) array * float

val set_bounds : t -> var -> lo:float -> hi:float -> unit
val set_integer : t -> var -> bool -> unit

val num_vars : t -> int
val num_constrs : t -> int
val vars : t -> var array
val constrs : t -> constr array
val find_var : t -> string -> var option

(** Integer variables in id order. *)
val integer_vars : t -> var list

(** [validate t] checks structural sanity (bound order, finite rhs,
    at least one variable) and returns a list of human-readable problems;
    empty means well-formed. *)
val validate : t -> string list

val pp_stats : t Fmt.t
