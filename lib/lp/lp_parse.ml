exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type token =
  | Ident of string
  | Num of float
  | Plus
  | Minus
  | Rel of Model.sense
  | Colon

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '#' | '!' | '$' | '%'
  | '&' | '(' | ')' | ',' | ';' | '?' | '@' | '{' | '}' | '~' | '\'' | '"' ->
      true
  | _ -> false

let is_num_start = function '0' .. '9' | '.' -> true | _ -> false

(* A token may be a number only if it starts with a digit or dot; idents may
   contain digits and dots after the first character.  The tokenizer works
   on a [lo, hi) range of the full input string, so per-line parsing never
   allocates line substrings. *)
let tokenize_range s lo hi =
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref lo in
  while !i < hi do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\r' -> incr i
    | '+' ->
        push Plus;
        incr i
    | '-' ->
        push Minus;
        incr i
    | ':' ->
        push Colon;
        incr i
    | '<' | '>' | '=' ->
        let sense =
          match c with
          | '<' -> Model.Le
          | '>' -> Model.Ge
          | _ -> Model.Eq
        in
        incr i;
        if !i < hi && s.[!i] = '=' then incr i;
        push (Rel sense)
    | c when is_num_start c ->
        let start = !i in
        while
          !i < hi
          && (is_num_start s.[!i]
             || s.[!i] = 'e' || s.[!i] = 'E'
             || ((s.[!i] = '+' || s.[!i] = '-')
                && !i > start
                && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')))
        do
          incr i
        done;
        let sub = String.sub s start (!i - start) in
        (match float_of_string_opt sub with
        | Some f -> push (Num f)
        | None -> fail "bad number %S" sub)
    | c when is_ident_char c ->
        let start = !i in
        while !i < hi && is_ident_char s.[!i] do
          incr i
        done;
        push (Ident (String.sub s start (!i - start)))
    | c -> fail "unexpected character %C" c);
    ()
  done;
  List.rev !toks

type section = Sec_objective | Sec_constraints | Sec_bounds | Sec_binaries
             | Sec_generals | Sec_end

let section_of_line line =
  let l = String.lowercase_ascii (String.trim line) in
  match l with
  | "minimize" | "maximize" | "min" | "max" -> Some (Sec_objective, l.[1] = 'a')
  | "subject to" | "such that" | "st" | "s.t." | "st." ->
      Some (Sec_constraints, false)
  | "bounds" | "bound" -> Some (Sec_bounds, false)
  | "binaries" | "binary" | "bin" -> Some (Sec_binaries, false)
  | "generals" | "general" | "gen" | "integers" | "integer" ->
      Some (Sec_generals, false)
  | "end" -> Some (Sec_end, false)
  | _ -> None

type builder = {
  model : Model.t;
  tbl : (string, Model.var) Hashtbl.t;
}

let lookup b name =
  match Hashtbl.find_opt b.tbl name with
  | Some v -> v
  | None ->
      let v = Model.add_var b.model name in
      Hashtbl.add b.tbl name v;
      v

(* Parse a linear expression prefix of [toks]; stops at a Rel token or end.
   Returns (expr, rest). *)
let parse_expr b toks =
  let expr = ref Model.Linexpr.zero in
  let rec go sign pending toks =
    match toks with
    | Plus :: rest ->
        flush_pending sign pending;
        go 1.0 None rest
    | Minus :: rest ->
        flush_pending sign pending;
        go (-1.0) None rest
    | Num f :: rest -> (
        match pending with
        | None -> go sign (Some f) rest
        | Some c ->
            (* two numbers in a row: previous one was a constant *)
            expr := Model.Linexpr.add !expr (Model.Linexpr.constant (sign *. c));
            go sign (Some f) rest)
    | Ident name :: rest ->
        let coeff = match pending with None -> 1.0 | Some c -> c in
        let v = lookup b name in
        expr := Model.Linexpr.add !expr (Model.Linexpr.term (sign *. coeff) v);
        go 1.0 None rest
    | (Rel _ :: _ | [] | (Colon :: _)) as rest ->
        flush_pending sign pending;
        rest
  and flush_pending sign pending =
    match pending with
    | None -> ()
    | Some c -> expr := Model.Linexpr.add !expr (Model.Linexpr.constant (sign *. c))
  in
  let rest = go 1.0 None toks in
  (!expr, rest)

(* Strip an optional leading "name :" label. *)
let strip_label toks =
  match toks with
  | Ident name :: Colon :: rest -> (Some name, rest)
  | _ -> (None, toks)

let parse_constraints b toks =
  (* Rows are delimited by their relation + rhs. *)
  let rec rows toks idx =
    match toks with
    | [] -> ()
    | _ ->
        let label, toks = strip_label toks in
        let expr, rest = parse_expr b toks in
        (match rest with
        | Rel sense :: Num rhs :: rest'
        | Rel sense :: Plus :: Num rhs :: rest' ->
            let name =
              match label with Some l -> l | None -> Printf.sprintf "c%d" idx
            in
            Model.add_constr b.model name expr sense rhs;
            rows rest' (idx + 1)
        | Rel sense :: Minus :: Num rhs :: rest' ->
            let name =
              match label with Some l -> l | None -> Printf.sprintf "c%d" idx
            in
            Model.add_constr b.model name expr sense (-.rhs);
            rows rest' (idx + 1)
        | _ -> fail "constraint %d: expected relation and rhs" idx)
  in
  rows toks 0

let neg_inf_idents = [ "inf"; "infinity" ]

let parse_bounds_line b toks =
  let num_of = function
    | Num f :: rest -> Some (f, rest)
    | Plus :: Num f :: rest -> Some (f, rest)
    | Minus :: Num f :: rest -> Some (-.f, rest)
    | Ident id :: rest when List.mem (String.lowercase_ascii id) neg_inf_idents
      ->
        Some (infinity, rest)
    | Plus :: Ident id :: rest
      when List.mem (String.lowercase_ascii id) neg_inf_idents ->
        Some (infinity, rest)
    | Minus :: Ident id :: rest
      when List.mem (String.lowercase_ascii id) neg_inf_idents ->
        Some (neg_infinity, rest)
    | _ -> None
  in
  match toks with
  | [] -> ()
  | Ident name :: rest when String.lowercase_ascii name <> "inf" -> (
      let v = lookup b name in
      match rest with
      | [ Ident f ] when String.lowercase_ascii f = "free" ->
          Model.set_bounds b.model v ~lo:neg_infinity ~hi:infinity
      | Rel Model.Le :: tail -> (
          match num_of tail with
          | Some (hi, []) -> Model.set_bounds b.model v ~lo:v.Model.lo ~hi
          | _ -> fail "bad bound line for %s" name)
      | Rel Model.Ge :: tail -> (
          match num_of tail with
          | Some (lo, []) -> Model.set_bounds b.model v ~lo ~hi:v.Model.hi
          | _ -> fail "bad bound line for %s" name)
      | Rel Model.Eq :: tail -> (
          match num_of tail with
          | Some (x, []) -> Model.set_bounds b.model v ~lo:x ~hi:x
          | _ -> fail "bad bound line for %s" name)
      | _ -> fail "bad bound line for %s" name)
  | _ -> (
      (* number <= name [<= number]  (or -inf <= name) *)
      match num_of toks with
      | Some (lo, Rel Model.Le :: Ident name :: tail) -> (
          let v = lookup b name in
          match tail with
          | [] -> Model.set_bounds b.model v ~lo ~hi:v.Model.hi
          | Rel Model.Le :: tail2 -> (
              match num_of tail2 with
              | Some (hi, []) -> Model.set_bounds b.model v ~lo ~hi
              | _ -> fail "bad double bound for %s" name)
          | _ -> fail "bad bound line for %s" name)
      | _ -> fail "unparseable bounds line")

let parse_marks b toks ~binary =
  List.iter
    (function
      | Ident name ->
          let v = lookup b name in
          if binary then Model.set_bounds b.model v ~lo:0.0 ~hi:1.0;
          Model.set_integer b.model v true
      | _ -> fail "expected variable name in integrality section")
    toks

(* The driver makes a single pass over the input string: line boundaries
   and comment starts are found in place, section headers are recognized
   on a small trimmed copy, and everything else is tokenized directly from
   the full string via [tokenize_range].  Objective and constraint bodies
   span lines, so their tokens accumulate as reversed chunks that are
   concatenated once at the end — appending per line is quadratic in the
   number of rows and dominated large-model parse times. *)
let model_of_string ?(name = "parsed") s =
  let b = { model = Model.create ~name (); tbl = Hashtbl.create 64 } in
  let n = String.length s in
  let section = ref None in
  let obj_chunks = ref [] and con_chunks = ref [] in
  let maximize = ref false in
  let pos = ref 0 in
  while !pos <= n - 1 do
    let eol =
      match String.index_from_opt s !pos '\n' with Some i -> i | None -> n
    in
    let lo = !pos in
    (* Strip any comment, then trim the [lo, hi) range in place.  The
       backslash scan must stop at the line end — searching the rest of
       the string per line would be quadratic over the file. *)
    let hi = ref eol in
    (let i = ref lo in
     while !i < !hi do
       if s.[!i] = '\\' then hi := !i else incr i
     done);
    let lo = ref lo in
    while
      !lo < !hi && (s.[!lo] = ' ' || s.[!lo] = '\t' || s.[!lo] = '\r')
    do
      incr lo
    done;
    while
      !hi > !lo
      && (s.[!hi - 1] = ' ' || s.[!hi - 1] = '\t' || s.[!hi - 1] = '\r')
    do
      decr hi
    done;
    let lo = !lo and hi = !hi in
    if hi > lo then begin
      (* Section headers are at most 10 characters ("subject to"); longer
         lines cannot match, so only short ones pay the substring. *)
      let header =
        if hi - lo <= 10 then section_of_line (String.sub s lo (hi - lo))
        else None
      in
      match header with
      | Some (Sec_objective, is_max) ->
          maximize := is_max;
          section := Some Sec_objective
      | Some (sec, _) -> section := Some sec
      | None -> (
          match !section with
          | None -> fail "content before objective section"
          | Some Sec_objective ->
              obj_chunks := tokenize_range s lo hi :: !obj_chunks
          | Some Sec_constraints ->
              con_chunks := tokenize_range s lo hi :: !con_chunks
          | Some Sec_bounds -> parse_bounds_line b (tokenize_range s lo hi)
          | Some Sec_binaries ->
              parse_marks b (tokenize_range s lo hi) ~binary:true
          | Some Sec_generals ->
              parse_marks b (tokenize_range s lo hi) ~binary:false
          | Some Sec_end -> fail "content after End")
    end;
    pos := eol + 1
  done;
  let _, obj_body = strip_label (List.concat (List.rev !obj_chunks)) in
  let expr, rest = parse_expr b obj_body in
  if rest <> [] then fail "trailing tokens in objective";
  Model.set_objective b.model ~minimize:(not !maximize) expr;
  parse_constraints b (List.concat (List.rev !con_chunks));
  b.model

let read_model_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  model_of_string ~name:(Filename.remove_extension (Filename.basename path)) s
