(** Presolve for linear programs.

    Two layers live here.  The original, light passes over a {!Model.t}
    ({!tighten}, {!diagnose}) mutate bounds in place and never remove
    rows, so variable ids remain stable for callers holding {!Model.var}
    handles.

    The input-level pipeline ({!reduce} / {!postsolve} / {!solve})
    operates on {!Simplex.input} values instead: fixed-variable
    elimination, empty/singleton/redundant row removal with bound
    tightening, implied-free column-singleton substitution, and
    power-of-two equilibration scaling.  Every stage records an undo
    closure, so {!postsolve} reconstructs the full primal solution {e
    and} a valid dual certificate (duals and reduced costs) for the
    original input — {!Simplex.check_certificate} accepts the
    reconstruction. *)

(** [tighten m] derives tighter variable bounds from singleton rows
    (rows mentioning exactly one variable) and returns how many bounds
    changed.  Binary/integer variables additionally get their bounds
    rounded inward. *)
let tighten m =
  let changed = ref 0 in
  let vs = Model.vars m in
  Array.iter
    (fun (c : Model.constr) ->
      match Model.Linexpr.terms c.Model.expr with
      | [| (id, coeff) |] when coeff <> 0.0 ->
          let v = vs.(id) in
          let bound = c.Model.rhs /. coeff in
          let apply_le () =
            if bound < v.Model.hi -. 1e-12 then begin
              Model.set_bounds m v ~lo:v.Model.lo ~hi:bound;
              incr changed
            end
          and apply_ge () =
            if bound > v.Model.lo +. 1e-12 then begin
              Model.set_bounds m v ~lo:bound ~hi:v.Model.hi;
              incr changed
            end
          in
          (match (c.Model.sense, coeff > 0.0) with
          | Model.Le, true | Model.Ge, false -> apply_le ()
          | Model.Ge, true | Model.Le, false -> apply_ge ()
          | Model.Eq, _ ->
              if
                bound < v.Model.hi -. 1e-12 || bound > v.Model.lo +. 1e-12
              then begin
                Model.set_bounds m v ~lo:bound ~hi:bound;
                incr changed
              end)
      | _ -> ())
    (Model.constrs m);
  Array.iter
    (fun (v : Model.var) ->
      if v.Model.integer then begin
        let lo' = Float.ceil (v.Model.lo -. 1e-9)
        and hi' = Float.floor (v.Model.hi +. 1e-9) in
        if lo' > v.Model.lo +. 1e-12 || hi' < v.Model.hi -. 1e-12 then begin
          Model.set_bounds m v ~lo:lo' ~hi:hi';
          incr changed
        end
      end)
    vs;
  !changed

(** [diagnose m] combines {!Model.validate} with simple infeasibility
    screens (crossed bounds after integral rounding). *)
let diagnose m =
  let base = Model.validate m in
  let extra = ref [] in
  Array.iter
    (fun (v : Model.var) ->
      if v.Model.integer && Float.ceil (v.Model.lo -. 1e-9) > Float.floor (v.Model.hi +. 1e-9)
      then
        extra :=
          Fmt.str "integer variable %s has empty integral domain [%g, %g]"
            v.Model.name v.Model.lo v.Model.hi
          :: !extra)
    (Model.vars m);
  base @ List.rev !extra

(* ------------------------------------------------------------------ *)
(* Input-level presolve pipeline with postsolve.                       *)
(* ------------------------------------------------------------------ *)

exception Infeasible_input

(* Each pass maps an input to a smaller input plus an undo closure that
   lifts an [Optimal] result of the smaller problem back to one of the
   pass input (x, duals and reduced costs; [basis] is dropped at the
   end).  [None] means the pass found nothing to do.  Passes raise
   [Infeasible_input] on a proven contradiction. *)

let cmin_of (inp : Simplex.input) j =
  if inp.Simplex.minimize then inp.Simplex.obj.(j) else -.inp.Simplex.obj.(j)

(* Rows pass: drop empty rows (checking their feasibility), turn
   singleton rows into variable bounds, and drop rows that the current
   bounds already force to hold.  Dual reconstruction: a dropped
   singleton row whose implied bound is active at the optimum absorbs
   the variable's reduced cost (y = z_j / a, sign-checked against the
   row sense); every other dropped row gets a zero dual. *)
let rows_pass (inp : Simplex.input) =
  let m = Array.length inp.Simplex.rows in
  if m = 0 then None
  else begin
    let lo = Array.copy inp.Simplex.lo and hi = Array.copy inp.Simplex.hi in
    let drop = Array.make m false in
    (* dropped singleton rows: (row, var, coeff, implied bound, sense) *)
    let singles = ref [] in
    let changed = ref false in
    Array.iteri
      (fun i (terms, sense, rhs) ->
        let rtol = 1e-9 *. (1.0 +. Float.abs rhs) in
        if Array.length terms = 0 then begin
          let ok =
            match sense with
            | Model.Le -> 0.0 <= rhs +. rtol
            | Model.Ge -> 0.0 >= rhs -. rtol
            | Model.Eq -> Float.abs rhs <= rtol
          in
          if not ok then raise Infeasible_input;
          drop.(i) <- true;
          changed := true
        end
        else if Array.length terms = 1 then begin
          let j, a = terms.(0) in
          if Float.abs a > 1e-12 then begin
            let b = rhs /. a in
            let upper () = if b < hi.(j) then hi.(j) <- b
            and lower () = if b > lo.(j) then lo.(j) <- b in
            (match (sense, a > 0.0) with
            | Model.Le, true | Model.Ge, false -> upper ()
            | Model.Ge, true | Model.Le, false -> lower ()
            | Model.Eq, _ ->
                upper ();
                lower ());
            (match sense with
            | Model.Eq -> singles := (i, j, a, b, sense) :: !singles
            | _ -> singles := (i, j, a, b, sense) :: !singles);
            drop.(i) <- true;
            changed := true
          end
        end)
      inp.Simplex.rows;
    (* Crossed bounds from tightening: contradiction, or float fuzz to
       collapse. *)
    for j = 0 to inp.Simplex.nvars - 1 do
      if lo.(j) > hi.(j) then begin
        if lo.(j) -. hi.(j) > 1e-9 *. (1.0 +. Float.abs hi.(j)) then
          raise Infeasible_input;
        let mid = 0.5 *. (lo.(j) +. hi.(j)) in
        lo.(j) <- mid;
        hi.(j) <- mid
      end
    done;
    (* Redundancy screen with the tightened bounds: a row whose activity
       range cannot violate it drops with a zero dual; one that cannot
       satisfy it is a contradiction. *)
    Array.iteri
      (fun i (terms, sense, rhs) ->
        if (not drop.(i)) && Array.length terms > 1 then begin
          let amin = ref 0.0 and amax = ref 0.0 in
          Array.iter
            (fun (j, a) ->
              if a > 0.0 then begin
                amin := !amin +. (a *. lo.(j));
                amax := !amax +. (a *. hi.(j))
              end
              else if a < 0.0 then begin
                amin := !amin +. (a *. hi.(j));
                amax := !amax +. (a *. lo.(j))
              end)
            terms;
          let rtol = 1e-9 *. (1.0 +. Float.abs rhs) in
          (match sense with
          | Model.Le ->
              if !amin > rhs +. rtol then raise Infeasible_input;
              if !amax <= rhs -. rtol then begin
                drop.(i) <- true;
                changed := true
              end
          | Model.Ge ->
              if !amax < rhs -. rtol then raise Infeasible_input;
              if !amin >= rhs +. rtol then begin
                drop.(i) <- true;
                changed := true
              end
          | Model.Eq ->
              if !amin > rhs +. rtol || !amax < rhs -. rtol then
                raise Infeasible_input)
        end)
      inp.Simplex.rows;
    if not !changed then None
    else begin
      let keep = ref [] in
      for i = m - 1 downto 0 do
        if not drop.(i) then keep := i :: !keep
      done;
      let keep = Array.of_list !keep in
      let rows = Array.map (fun i -> inp.Simplex.rows.(i)) keep in
      let reduced = { inp with Simplex.lo = lo; hi; rows } in
      let singles = List.rev !singles in
      let undo (r : Simplex.result) =
        let duals = Array.make m 0.0 in
        Array.iteri (fun k i -> duals.(i) <- r.Simplex.duals.(k)) keep;
        let rc = Array.copy r.Simplex.reduced_costs in
        List.iter
          (fun (i, j, a, b, sense) ->
            let at_b =
              Float.abs (r.Simplex.x.(j) -. b) <= 1e-7 *. (1.0 +. Float.abs b)
            in
            if at_b && rc.(j) <> 0.0 then begin
              let y = rc.(j) /. a in
              let sign_ok =
                match sense with
                | Model.Eq -> true
                | Model.Le -> y <= 1e-9
                | Model.Ge -> y >= -1e-9
              in
              if sign_ok then begin
                duals.(i) <- y;
                rc.(j) <- 0.0
              end
            end)
          singles;
        { r with Simplex.duals; reduced_costs = rc }
      in
      Some (reduced, undo)
    end
  end

(* Fixed-variable elimination ([lo = hi]): substitute into every row and
   the objective.  Rows are kept (possibly emptied — the next rows pass
   feasibility-checks and drops them), so duals carry over unchanged;
   reduced costs of fixed columns are rebuilt as c_j - y A_j. *)
let fixed_pass (inp : Simplex.input) =
  let n = inp.Simplex.nvars in
  let fixed = Array.make n false in
  let nfix = ref 0 in
  for j = 0 to n - 1 do
    if inp.Simplex.lo.(j) > inp.Simplex.hi.(j) +. 1e-11 then
      raise Infeasible_input;
    if inp.Simplex.hi.(j) -. inp.Simplex.lo.(j) <= 1e-11 then begin
      fixed.(j) <- true;
      incr nfix
    end
  done;
  if !nfix = 0 then None
  else begin
    let active = n - !nfix in
    let remap = Array.make n (-1) in
    let back = Array.make (max 1 active) 0 in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if not fixed.(j) then begin
        remap.(j) <- !k;
        back.(!k) <- j;
        incr k
      end
    done;
    let back = Array.sub back 0 active in
    let obj_const = ref inp.Simplex.obj_const in
    for j = 0 to n - 1 do
      if fixed.(j) then
        obj_const := !obj_const +. (inp.Simplex.obj.(j) *. inp.Simplex.lo.(j))
    done;
    let rows =
      Array.map
        (fun (terms, sense, rhs) ->
          let rhs = ref rhs in
          let kept =
            Array.to_list terms
            |> List.filter_map (fun (j, c) ->
                   if fixed.(j) then begin
                     rhs := !rhs -. (c *. inp.Simplex.lo.(j));
                     None
                   end
                   else Some (remap.(j), c))
          in
          (Array.of_list kept, sense, !rhs))
        inp.Simplex.rows
    in
    let reduced =
      {
        inp with
        Simplex.nvars = active;
        lo = Array.map (fun j -> inp.Simplex.lo.(j)) back;
        hi = Array.map (fun j -> inp.Simplex.hi.(j)) back;
        obj = Array.map (fun j -> inp.Simplex.obj.(j)) back;
        obj_const = !obj_const;
        rows;
      }
    in
    let undo (r : Simplex.result) =
      let x = Array.make n 0.0 in
      for j = 0 to n - 1 do
        if fixed.(j) then x.(j) <- inp.Simplex.lo.(j)
      done;
      Array.iteri (fun k j -> x.(j) <- r.Simplex.x.(k)) back;
      let rc = Array.make n 0.0 in
      for j = 0 to n - 1 do
        if fixed.(j) then rc.(j) <- cmin_of inp j
      done;
      Array.iteri
        (fun i (terms, _, _) ->
          let y = r.Simplex.duals.(i) in
          if y <> 0.0 then
            Array.iter
              (fun (j, c) -> if fixed.(j) then rc.(j) <- rc.(j) -. (y *. c))
              terms)
        inp.Simplex.rows;
      Array.iteri (fun k j -> rc.(j) <- r.Simplex.reduced_costs.(k)) back;
      { r with Simplex.x; reduced_costs = rc }
    in
    Some (reduced, undo)
  end

(* Implied-free column singletons: a variable appearing in exactly one
   row, an equality whose other terms can never push it outside its own
   bounds, is solved out of that row.  The row's dual is pinned by the
   eliminated column (y = c_j / a), which leaves every other reduced
   cost unchanged. *)
let colsingle_pass (inp : Simplex.input) =
  let n = inp.Simplex.nvars in
  let m = Array.length inp.Simplex.rows in
  if n = 0 || m = 0 then None
  else begin
    let count = Array.make n 0 in
    Array.iter
      (fun (terms, _, _) ->
        Array.iter (fun (j, _) -> count.(j) <- count.(j) + 1) terms)
      inp.Simplex.rows;
    (* (row, var, coeff) eliminations, at most one per row and variable *)
    let picks = ref [] in
    let used_var = Array.make n false in
    Array.iteri
      (fun i (terms, sense, rhs) ->
        if sense = Model.Eq && Array.length terms > 1 then begin
          let pick = ref (-1) and pick_a = ref 0.0 in
          Array.iter
            (fun (j, a) ->
              if
                !pick < 0 && count.(j) = 1 && (not used_var.(j))
                && Float.abs a > 1e-9
                && inp.Simplex.hi.(j) -. inp.Simplex.lo.(j) > 1e-11
              then begin
                (* activity range of the other terms *)
                let omin = ref 0.0 and omax = ref 0.0 in
                Array.iter
                  (fun (k, c) ->
                    if k <> j then
                      if c > 0.0 then begin
                        omin := !omin +. (c *. inp.Simplex.lo.(k));
                        omax := !omax +. (c *. inp.Simplex.hi.(k))
                      end
                      else if c < 0.0 then begin
                        omin := !omin +. (c *. inp.Simplex.hi.(k));
                        omax := !omax +. (c *. inp.Simplex.lo.(k))
                      end)
                  terms;
                let v1 = (rhs -. !omin) /. a and v2 = (rhs -. !omax) /. a in
                let vmin = Float.min v1 v2 and vmax = Float.max v1 v2 in
                let tol = 1e-9 *. (1.0 +. Float.abs rhs) in
                if
                  vmin >= inp.Simplex.lo.(j) -. tol
                  && vmax <= inp.Simplex.hi.(j) +. tol
                then begin
                  pick := j;
                  pick_a := a
                end
              end)
            terms;
          if !pick >= 0 then begin
            used_var.(!pick) <- true;
            picks := (i, !pick, !pick_a) :: !picks
          end
        end)
      inp.Simplex.rows;
    if !picks = [] then None
    else begin
      let picks = List.rev !picks in
      let drop_row = Array.make m false in
      let drop_var = Array.make n false in
      List.iter
        (fun (i, j, _) ->
          drop_row.(i) <- true;
          drop_var.(j) <- true)
        picks;
      let remap = Array.make n (-1) in
      let back = ref [] in
      let k = ref 0 in
      for j = 0 to n - 1 do
        if not drop_var.(j) then begin
          remap.(j) <- !k;
          back := j :: !back;
          incr k
        end
      done;
      let back = Array.of_list (List.rev !back) in
      let active = !k in
      (* objective substitution: x_j = (rhs - sum_k a_k x_k) / a *)
      let obj = Array.copy inp.Simplex.obj in
      let obj_const = ref inp.Simplex.obj_const in
      List.iter
        (fun (i, j, a) ->
          let terms, _, rhs = inp.Simplex.rows.(i) in
          let cj = obj.(j) in
          if cj <> 0.0 then begin
            obj_const := !obj_const +. (cj *. rhs /. a);
            Array.iter
              (fun (k2, c) ->
                if k2 <> j then obj.(k2) <- obj.(k2) -. (cj *. c /. a))
              terms;
            obj.(j) <- 0.0
          end)
        picks;
      let keep = ref [] in
      for i = m - 1 downto 0 do
        if not drop_row.(i) then keep := i :: !keep
      done;
      let keep = Array.of_list !keep in
      let rows =
        Array.map
          (fun i ->
            let terms, sense, rhs = inp.Simplex.rows.(i) in
            ( Array.map (fun (j, c) -> (remap.(j), c)) terms,
              sense, rhs ))
          keep
      in
      let reduced =
        {
          inp with
          Simplex.nvars = active;
          lo = Array.map (fun j -> inp.Simplex.lo.(j)) back;
          hi = Array.map (fun j -> inp.Simplex.hi.(j)) back;
          obj = Array.map (fun j -> obj.(j)) back;
          obj_const = !obj_const;
          rows;
        }
      in
      let undo (r : Simplex.result) =
        let x = Array.make n 0.0 in
        Array.iteri (fun k j -> x.(j) <- r.Simplex.x.(k)) back;
        let duals = Array.make m 0.0 in
        Array.iteri (fun k i -> duals.(i) <- r.Simplex.duals.(k)) keep;
        let rc = Array.make n 0.0 in
        Array.iteri (fun k j -> rc.(j) <- r.Simplex.reduced_costs.(k)) back;
        List.iter
          (fun (i, j, a) ->
            let terms, _, rhs = inp.Simplex.rows.(i) in
            let acc = ref rhs in
            Array.iter
              (fun (k2, c) -> if k2 <> j then acc := !acc -. (c *. x.(k2)))
              terms;
            let v = !acc /. a in
            x.(j) <-
              Float.max inp.Simplex.lo.(j) (Float.min inp.Simplex.hi.(j) v);
            duals.(i) <- cmin_of inp j /. a;
            rc.(j) <- 0.0)
          picks;
        { r with Simplex.x; duals; reduced_costs = rc }
      in
      Some (reduced, undo)
    end
  end

(* Power-of-two equilibration: rows then columns are scaled so the
   largest magnitude lands in [1, 2).  Powers of two keep every product
   exact, so postsolve recovers bit-identical feasibility behaviour. *)
let scale_pass (inp : Simplex.input) =
  let n = inp.Simplex.nvars in
  let m = Array.length inp.Simplex.rows in
  if m = 0 then None
  else begin
    (* Equilibration only pays on badly-scaled matrices; a model whose
       coefficients already sit within a few powers of two of 1.0 gains
       nothing numerically, and rebuilding the matrix is the single most
       expensive step of the pipeline.  One cheap scan decides. *)
    let gmin = ref infinity and gmax = ref 0.0 in
    Array.iter
      (fun (terms, _, _) ->
        Array.iter
          (fun (_, a) ->
            let v = Float.abs a in
            if v > 0.0 then begin
              if v < !gmin then gmin := v;
              if v > !gmax then gmax := v
            end)
          terms)
      inp.Simplex.rows;
    if !gmax <= 16.0 && !gmin >= 0.0625 then None
    else begin
    let pow2 x =
      if x <= 0.0 || not (Float.is_finite x) then 1.0
      else begin
        let _, e = Float.frexp x in
        Float.ldexp 1.0 (1 - e)
      end
    in
    let rscale = Array.make m 1.0 in
    Array.iteri
      (fun i (terms, _, _) ->
        let mx = ref 0.0 in
        Array.iter (fun (_, a) -> if Float.abs a > !mx then mx := Float.abs a) terms;
        rscale.(i) <- pow2 !mx)
      inp.Simplex.rows;
    let cmax = Array.make n 0.0 in
    Array.iteri
      (fun i (terms, _, _) ->
        Array.iter
          (fun (j, a) ->
            let v = Float.abs (a *. rscale.(i)) in
            if v > cmax.(j) then cmax.(j) <- v)
          terms)
      inp.Simplex.rows;
    let cscale = Array.map pow2 cmax in
    let nontrivial =
      Array.exists (fun s -> s <> 1.0) rscale
      || Array.exists (fun s -> s <> 1.0) cscale
    in
    if not nontrivial then None
    else begin
      let rows =
        Array.mapi
          (fun i (terms, sense, rhs) ->
            let r = rscale.(i) in
            ( Array.map (fun (j, a) -> (j, a *. r *. cscale.(j))) terms,
              sense, rhs *. r ))
          inp.Simplex.rows
      in
      let reduced =
        {
          inp with
          Simplex.lo = Array.mapi (fun j v -> v /. cscale.(j)) inp.Simplex.lo;
          hi = Array.mapi (fun j v -> v /. cscale.(j)) inp.Simplex.hi;
          obj = Array.mapi (fun j v -> v *. cscale.(j)) inp.Simplex.obj;
          rows;
        }
      in
      let undo (r : Simplex.result) =
        let x = Array.mapi (fun j v -> v *. cscale.(j)) r.Simplex.x in
        let duals = Array.mapi (fun i v -> v *. rscale.(i)) r.Simplex.duals in
        let rc =
          Array.mapi (fun j v -> v /. cscale.(j)) r.Simplex.reduced_costs
        in
        { r with Simplex.x; duals; reduced_costs = rc }
      in
      Some (reduced, undo)
    end
    end
  end

(* A reduction: the shrunken input plus the undo stack (innermost
   first), ready for {!postsolve}. *)
type reduction = {
  reduced : Simplex.input;
  undos : (Simplex.result -> Simplex.result) list;
}

let reduced_input red = red.reduced

(** [reduce input] runs the passes to a fixpoint (each changing round
    removes at least one row or variable, so the loop terminates) and
    finishes with equilibration scaling.  [`Infeasible] reports a
    contradiction found during reduction. *)
let reduce ?(scale = true) (input : Simplex.input) =
  try
    let undos = ref [] in
    let cur = ref input in
    let changed = ref true in
    let apply pass =
      match pass !cur with
      | Some (inp', u) ->
          cur := inp';
          undos := u :: !undos;
          changed := true
      | None -> ()
    in
    let rounds = ref 0 in
    while !changed && !rounds < 50 do
      incr rounds;
      changed := false;
      apply rows_pass;
      apply fixed_pass;
      apply colsingle_pass
    done;
    if scale then begin
      changed := false;
      apply scale_pass
    end;
    `Reduced { reduced = !cur; undos = !undos }
  with Infeasible_input -> `Infeasible

(** [postsolve red r] lifts a result of [reduced_input red] back to the
    original input.  Non-optimal statuses pass through untouched (the
    reductions preserve feasibility and boundedness both ways); the
    basis never survives postsolve since the row structure changed. *)
let postsolve red (r : Simplex.result) =
  if r.Simplex.status <> Status.Optimal then { r with Simplex.basis = None }
  else
    let r = List.fold_left (fun acc u -> u acc) r red.undos in
    { r with Simplex.basis = None }

(** [solve input] = reduce, solve the rest with {!Simplex.solve}, then
    postsolve.  The result carries no basis (row structure differs). *)
let solve ?max_iters ?(scale = true) ?core (input : Simplex.input) =
  match reduce ~scale input with
  | `Infeasible ->
      {
        Simplex.status = Status.Infeasible;
        x = [||];
        obj_value = nan;
        duals = [||];
        reduced_costs = [||];
        iterations = 0;
        basis = None;
        warm_started = false;
      }
  | `Reduced red ->
      let r = Simplex.solve ?max_iters ?core red.reduced in
      postsolve red r
