(** Minimal mutable binary min-heap keyed by floats.

    Used by {!Milp} for best-bound node selection. *)

type 'a t = { mutable data : (float * 'a) array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let ensure h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let cap' = max 16 (2 * cap) in
    let data = Array.make cap' (0.0, snd h.data.(0)) in
    Array.blit h.data 0 data 0 cap;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if fst h.data.(i) < fst h.data.(p) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(p);
      h.data.(p) <- tmp;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let s = ref i in
  if l < h.size && fst h.data.(l) < fst h.data.(!s) then s := l;
  if r < h.size && fst h.data.(r) < fst h.data.(!s) then s := r;
  if !s <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!s);
    h.data.(!s) <- tmp;
    sift_down h !s
  end

let push h key v =
  if Array.length h.data = 0 then h.data <- Array.make 16 (key, v);
  ensure h;
  h.data.(h.size) <- (key, v);
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let min_key h = if h.size = 0 then None else Some (fst h.data.(0))

(* Smallest entry without removing it; lets a best-bound search test the
   frontier (e.g. for wholesale pruning) before committing to a pop. *)
let peek h = if h.size = 0 then None else Some h.data.(0)
