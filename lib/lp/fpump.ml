(* Feasibility pump (Fischetti, Glover, Lodi).  See fpump.mli for the
   loop; everything here is deterministic, including the anti-cycling
   perturbation, so pump results are reproducible run to run. *)

let hash_rounding ints target =
  let h = ref 0x811c9dc5 in
  let mix v =
    h := (!h lxor v) * 0x01000193 land 0x3FFFFFFF
  in
  Array.iteri
    (fun k j ->
      mix j;
      mix (int_of_float target.(k)))
    ints;
  !h

type outcome = Integral of float array | Near of float array | Failed

(* Consecutive zero-pivot distance solves before the pump concedes the
   vertex will not move: perturbation only changes the objective, and a
   warm solve that performs no pivot proves the optimum is unchanged. *)
let stall_limit = 8

let run ~solve ~(input : Simplex.input) ~int_ids ~int_tol ~start ~stop
    ?(max_rounds = 40) () =
  let ints = Array.of_list int_ids in
  let nint = Array.length ints in
  if nint = 0 then Failed
  else begin
    (* Integral part of each integer variable's box; empty means no
       integer point exists at all and the pump gives up immediately. *)
    let ilo = Array.map (fun j -> Float.ceil (input.Simplex.lo.(j) -. 1e-9)) ints in
    let ihi = Array.map (fun j -> Float.floor (input.Simplex.hi.(j) +. 1e-9)) ints in
    let boxes_ok = ref true in
    Array.iteri (fun k _ -> if ilo.(k) > ihi.(k) then boxes_ok := false) ints;
    if not !boxes_ok then Failed
    else begin
      let round_clamp k v =
        Float.max ilo.(k) (Float.min ihi.(k) (Float.round v))
      in
      let integral x =
        Array.for_all
          (fun j -> Float.abs (x.(j) -. Float.round x.(j)) <= int_tol)
          ints
      in
      (* Tilt direction: the true objective in min convention, sup-norm
         normalized so the decaying weight is scale-free. *)
      let n = input.Simplex.nvars in
      let cmin =
        Array.init n (fun j ->
            if input.Simplex.minimize then input.Simplex.obj.(j)
            else -.input.Simplex.obj.(j))
      in
      let cnorm = Array.fold_left (fun a c -> Float.max a (Float.abs c)) 0.0 cmin in
      let tilt = if cnorm > 0.0 then Array.map (fun c -> c /. cnorm) cmin else cmin in
      let nfrac x =
        Array.fold_left
          (fun a j ->
            if Float.abs (x.(j) -. Float.round x.(j)) > int_tol then a + 1
            else a)
          0 ints
      in
      let seen = Hashtbl.create 64 in
      let target = Array.mapi (fun k j -> round_clamp k start.(j)) ints in
      let prev_x = ref start in
      let restarts = ref 0 in
      let best = ref (nfrac start, start) in
      let stall = ref 0 in
      (* Cheap pre-check: maybe the rounded root point is already feasible
         (common for pure-integer models whose relaxation is near-integral). *)
      let composed () =
        let y = Array.copy !prev_x in
        Array.iteri (fun k j -> y.(j) <- target.(k)) ints;
        y
      in
      let alpha = ref 0.25 in
      let rec pump round =
        if round >= max_rounds || stop () then Near (snd !best)
        else begin
          let y = composed () in
          if Simplex.feasible input y then Integral y
          else begin
            (* Cycle detection on the rounding history. *)
            let h = hash_rounding ints target in
            if Hashtbl.mem seen h then begin
              (* Flip the roundings that disagree most with the LP point:
                 deterministic, and widening with each restart. *)
              let nflip = min nint (3 + (2 * !restarts)) in
              incr restarts;
              let order = Array.init nint (fun k -> k) in
              Array.sort
                (fun a b ->
                  let da = Float.abs (!prev_x.(ints.(a)) -. target.(a))
                  and db = Float.abs (!prev_x.(ints.(b)) -. target.(b)) in
                  match compare db da with 0 -> compare a b | c -> c)
                order;
              for i = 0 to nflip - 1 do
                let k = order.(i) in
                let dir =
                  if !prev_x.(ints.(k)) > target.(k) then 1.0 else -1.0
                in
                target.(k) <-
                  Float.max ilo.(k) (Float.min ihi.(k) (target.(k) +. dir))
              done
            end;
            Hashtbl.replace seen h ();
            (* Distance objective: pull integer variables toward their
               rounded values; interior roundings (rare: general-integer
               variables rounded strictly inside their box) get no pull. *)
            let dist = Array.map (fun c -> !alpha *. c) tilt in
            Array.iteri
              (fun k j ->
                if target.(k) >= ihi.(k) -. 1e-9 then
                  dist.(j) <- dist.(j) -. 1.0
                else if target.(k) <= ilo.(k) +. 1e-9 then
                  dist.(j) <- dist.(j) +. 1.0)
              ints;
            alpha := !alpha *. 0.75;
            let r =
              solve
                { input with Simplex.obj = dist; obj_const = 0.0; minimize = true }
            in
            if r.Simplex.status <> Status.Optimal then Near (snd !best)
            else if integral r.Simplex.x then Integral r.Simplex.x
            else begin
              let f = nfrac r.Simplex.x in
              if f < fst !best then best := (f, r.Simplex.x);
              (* A warm solve with zero pivots proves the vertex did not
                 move under the new distance objective; several in a row
                 means the pump is pinned and further rounds are wasted. *)
              if r.Simplex.iterations = 0 then incr stall else stall := 0;
              if !stall >= stall_limit then Near (snd !best)
              else begin
                prev_x := r.Simplex.x;
                Array.iteri
                  (fun k j -> target.(k) <- round_clamp k r.Simplex.x.(j))
                  ints;
                pump (round + 1)
              end
            end
          end
        end
      in
      pump 0
    end
  end
