let src = Logs.Src.create "lp.milp" ~doc:"branch-and-bound MILP solver"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  node_limit : int;
  time_limit : float;
  gap_tol : float;
  int_tol : float;
  dive_first : bool;
  warm_start : bool;
  workers : int;
  par_threshold : int;
  presolve : bool;
  core : Simplex.core;
  log : bool;
}

let default_options =
  {
    node_limit = 5000;
    time_limit = infinity;
    gap_tol = 1e-6;
    int_tol = 1e-6;
    dive_first = true;
    warm_start = true;
    workers = 1;
    par_threshold = 64;
    presolve = true;
    core = Simplex.Sparse;
    log = false;
  }

type result = {
  status : Status.t;
  x : float array;
  obj : float;
  bound : float;
  gap : float;
  nodes : int;
  lp_iterations : int;
}

let relax ?max_iters ?core m =
  Simplex.solve ?max_iters ?core (Simplex.of_model m)

let integral ?(tol = 1e-6) m x =
  List.for_all
    (fun (v : Model.var) ->
      let xv = x.(v.Model.id) in
      Float.abs (xv -. Float.round xv) <= tol)
    (Model.integer_vars m)

(* A node is the list of bound changes relative to the root problem, plus
   the optimal basis of the parent LP: a child differs from its parent by a
   single bound, so the dual simplex restarted from that basis usually
   repairs it in a handful of pivots. *)
type node = {
  diffs : (int * float * float) list;
  depth : int;
  warm : Simplex.basis option;
}

let most_fractional int_ids tol x =
  let best = ref (-1) and score = ref tol in
  List.iter
    (fun j ->
      let f = x.(j) -. Float.floor x.(j) in
      let dist = Float.min f (1.0 -. f) in
      if dist > !score then begin
        score := dist;
        best := j
      end)
    int_ids;
  !best

let rec mem_assoc3 j = function
  | [] -> false
  | (k, _, _) :: rest -> k = j || mem_assoc3 j rest

let round_integers int_ids x =
  let x = Array.copy x in
  List.iter (fun j -> x.(j) <- Float.round x.(j)) int_ids;
  x

let solve ?(options = default_options) m =
  let input = Simplex.of_model m in
  let minimize = input.Simplex.minimize in
  (* Internal keys are always "smaller is better". *)
  let key_of_obj o = if minimize then o else -.o in
  let obj_of_key k = if minimize then k else -.k in
  let int_ids = List.map (fun (v : Model.var) -> v.Model.id) (Model.integer_vars m) in
  let lp_iters = Atomic.make 0 in
  let solve_node ?warm ?(want_basis = false) diffs =
    let lo = Array.copy input.Simplex.lo and hi = Array.copy input.Simplex.hi in
    List.iter
      (fun (j, l, h) ->
        lo.(j) <- Float.max lo.(j) l;
        hi.(j) <- Float.min hi.(j) h)
      diffs;
    let node_input = { input with Simplex.lo = lo; hi } in
    (* Warm starts need the row structure intact, so presolve reductions
       apply only to cold basis-free solves (the root and the dives, where
       batch fixes leave plenty for presolve to strip).  Below a few dozen
       rows the reduction sweep costs more than the pivots it saves, so
       small node LPs skip straight to the simplex. *)
    let presolvable =
      options.presolve && warm = None && (not want_basis)
      && Array.length input.Simplex.rows >= 64
    in
    let r =
      if presolvable then Presolve.solve ~core:options.core node_input
      else Simplex.solve ?warm ~want_basis ~core:options.core node_input
    in
    ignore (Atomic.fetch_and_add lp_iters r.Simplex.iterations);
    r
  in
  let start = Sys.time () in
  let out_of_time () = Sys.time () -. start > options.time_limit in
  let incumbent = ref None (* (key, x) *) in
  let accept_candidate r =
    let x = round_integers int_ids r.Simplex.x in
    let objv =
      input.Simplex.obj_const
      +. Array.fold_left ( +. ) 0.0
           (Array.mapi (fun j c -> c *. x.(j)) input.Simplex.obj)
    in
    let k = key_of_obj objv in
    match !incumbent with
    | Some (k0, _) when k0 <= k +. 1e-12 -> ()
    | _ ->
        if options.log then
          Log.info (fun f -> f "new incumbent %.6g" (obj_of_key k));
        incumbent := Some (k, x)
  in
  (* Dive-and-fix.  Each round pins every integer variable already sitting
     on an integer value in the current LP solution (the "batch"), plus the
     most fractional one rounded to its nearest value, then re-solves — so a
     dive costs a handful of LP solves rather than one per integer variable.
     Batch fixes are provisional: zeros pinned early can strand a variable's
     row-mates and make later rounds infeasible, so on conflict the batch is
     dropped (the explicitly chosen single fixes are kept) and diving
     continues from a fresh LP.  Dives fix many bounds at once, which is
     outside the one-bound-change regime the dual warm start is good at, so
     they stay on the cold path. *)
  let dive diffs r0 =
    let fixed = Hashtbl.create 64 in
    List.iter (fun (j, _, _) -> Hashtbl.replace fixed j ()) diffs;
    let collect_batch r =
      List.filter_map
        (fun jj ->
          if Hashtbl.mem fixed jj then None
          else begin
            let v = r.Simplex.x.(jj) in
            let rv = Float.round v in
            if Float.abs (v -. rv) <= 1e-7 then Some (jj, rv, rv) else None
          end)
        int_ids
    in
    let try_fix extra =
      let r' = solve_node (extra @ diffs) in
      if r'.Simplex.status = Status.Optimal then Some r' else None
    in
    let rec go ~singles ~batch r fuel =
      if fuel = 0 || out_of_time () then ()
      else if r.Simplex.status <> Status.Optimal then ()
      else
        match most_fractional int_ids options.int_tol r.Simplex.x with
        | -1 -> accept_candidate r
        | j ->
            let xv = r.Simplex.x.(j) in
            let near = Float.round xv in
            let far = if near > xv then Float.floor xv else Float.ceil xv in
            let fresh =
              List.filter
                (fun (jj, _, _) -> not (mem_assoc3 jj batch))
                (collect_batch r)
            in
            let batch' = fresh @ batch in
            let keep_batch v r' =
              Hashtbl.replace fixed j ();
              go ~singles:((j, v, v) :: singles) ~batch:batch' r' (fuel - 1)
            in
            (match try_fix (((j, near, near) :: batch') @ singles) with
            | Some r' -> keep_batch near r'
            | None ->
            match try_fix (((j, far, far) :: batch') @ singles) with
            | Some r' -> keep_batch far r'
            | None -> (
                (* The batch over-committed: retry with singles only. *)
                match try_fix ((j, near, near) :: singles) with
                | Some r' ->
                    Hashtbl.replace fixed j ();
                    List.iter (fun (jj, _, _) -> Hashtbl.remove fixed jj) batch';
                    go ~singles:((j, near, near) :: singles) ~batch:[] r'
                      (fuel - 1)
                | None -> (
                    match try_fix ((j, far, far) :: singles) with
                    | Some r' ->
                        Hashtbl.replace fixed j ();
                        List.iter
                          (fun (jj, _, _) -> Hashtbl.remove fixed jj)
                          batch';
                        go ~singles:((j, far, far) :: singles) ~batch:[] r'
                          (fuel - 1)
                    | None -> ())))
    in
    go ~singles:[] ~batch:[] r0 150
  in
  (* The initial root solve stays on the plain cold path (which may shrink
     the LP via fixed-column elimination): when the relaxation is already
     integral no basis is ever needed, and when it is not, the tree loop
     below re-solves the root node with [want_basis] anyway. *)
  let root = solve_node [] in
  match root.Simplex.status with
  | Status.Infeasible ->
      { status = Status.Infeasible; x = [||]; obj = nan; bound = nan;
        gap = nan; nodes = 0; lp_iterations = Atomic.get lp_iters }
  | Status.Unbounded ->
      { status = Status.Unbounded; x = [||]; obj = nan; bound = nan;
        gap = nan; nodes = 0; lp_iterations = Atomic.get lp_iters }
  | Status.Iteration_limit | Status.Time_limit | Status.Node_limit
  | Status.Feasible ->
      { status = Status.Iteration_limit; x = [||]; obj = nan; bound = nan;
        gap = nan; nodes = 0; lp_iterations = Atomic.get lp_iters }
  | Status.Optimal ->
      let root_key = key_of_obj root.Simplex.obj_value in
      if most_fractional int_ids options.int_tol root.Simplex.x = -1 then begin
        accept_candidate root;
        let _, x = Option.get !incumbent in
        { status = Status.Optimal; x; obj = obj_of_key root_key;
          bound = obj_of_key root_key; gap = 0.0; nodes = 1;
          lp_iterations = Atomic.get lp_iters }
      end
      else begin
        if options.dive_first then dive [] root;
        let pq = Pqueue.create () in
        let child_warm r =
          if options.warm_start then r.Simplex.basis else None
        in
        Pqueue.push pq root_key { diffs = []; depth = 0; warm = None };
        let nodes = ref 0 in
        let stop_reason = ref None in
        (* The tree search below runs under one lock shared by all workers;
           LP solves happen outside it.  [in_flight] counts nodes popped but
           not yet fully processed, so an idle worker can tell "queue empty
           for now" from "tree exhausted". *)
        let lock = Mutex.create () in
        let work = Condition.create () in
        let in_flight = ref 0 in
        (* Called with [lock] held. *)
        let process_result nd r =
          match r.Simplex.status with
          | Status.Infeasible -> ()
          | Status.Optimal -> (
              let k' = key_of_obj r.Simplex.obj_value in
              let worse =
                match !incumbent with
                | Some (ki, _) -> k' >= ki -. 1e-9 *. (1.0 +. Float.abs ki)
                | None -> false
              in
              if not worse then
                match most_fractional int_ids options.int_tol r.Simplex.x with
                | -1 -> accept_candidate r
                | j ->
                    let xv = r.Simplex.x.(j) in
                    let fl = Float.floor xv and ce = Float.ceil xv in
                    let warm = child_warm r in
                    Pqueue.push pq k'
                      { diffs = (j, neg_infinity, fl) :: nd.diffs;
                        depth = nd.depth + 1; warm };
                    Pqueue.push pq k'
                      { diffs = (j, ce, infinity) :: nd.diffs;
                        depth = nd.depth + 1; warm };
                    Condition.broadcast work)
          | _ ->
              (* A node LP that fails numerically is abandoned; the
                 incumbent, if any, remains valid. *)
              ()
        in
        (* Adaptive granularity: the search starts strictly sequential and
           extra domains are spawned at most once, when the open-node queue
           shows enough work to amortize domain spawn and lock contention
           (small trees — the common warm-started case — never pay it). *)
        let extra = max 0 (min (options.workers - 1) 63) in
        let spawned = ref false in
        let doms = ref [||] in
        (* Called with [lock] held; answers whether the caller should spawn
           the helper domains after releasing it. *)
        let should_spawn () =
          extra > 0 && (not !spawned)
          && !nodes >= options.par_threshold
          && Pqueue.length pq + !in_flight >= options.par_threshold
          && (spawned := true;
              true)
        in
        (* Worker body; entered and left with [lock] held.  With one worker
           this visits nodes in exactly the sequential best-bound order. *)
        let rec worker () =
          if !stop_reason <> None then ()
          else begin
            (* Best-bound frontier check: the heap minimum prunes only if
               every open node does, so the whole tree is exhausted. *)
            let all_pruned =
              match (Pqueue.peek pq, !incumbent) with
              | Some (k, _), Some (ki, _) -> k >= ki -. 1e-12
              | _ -> false
            in
            if all_pruned then begin
              while Pqueue.pop pq <> None do () done;
              (* In-flight workers may still push fresh children; keep
                 serving the queue rather than exiting here. *)
              if !in_flight = 0 then Condition.broadcast work
              else Condition.wait work lock;
              worker ()
            end
            else
              match Pqueue.pop pq with
              | None ->
                  if !in_flight = 0 then Condition.broadcast work
                  else begin
                    Condition.wait work lock;
                    worker ()
                  end
              | Some (k, nd) ->
                  if !nodes >= options.node_limit then begin
                    Pqueue.push pq k nd;
                    stop_reason := Some Status.Node_limit;
                    Condition.broadcast work
                  end
                  else if out_of_time () then begin
                    Pqueue.push pq k nd;
                    stop_reason := Some Status.Time_limit;
                    Condition.broadcast work
                  end
                  else begin
                    incr nodes;
                    incr in_flight;
                    let spawn_now = should_spawn () in
                    Mutex.unlock lock;
                    if spawn_now then
                      doms := Array.init extra (fun _ -> Domain.spawn run_worker);
                    let r =
                      solve_node ?warm:nd.warm ~want_basis:options.warm_start
                        nd.diffs
                    in
                    Mutex.lock lock;
                    decr in_flight;
                    process_result nd r;
                    if Pqueue.is_empty pq && !in_flight = 0 then
                      Condition.broadcast work;
                    worker ()
                  end
          end
        and run_worker () =
          Mutex.lock lock;
          worker ();
          Mutex.unlock lock
        in
        run_worker ();
        Array.iter Domain.join !doms;
        let open_bound =
          match (!stop_reason, Pqueue.min_key pq) with
          | None, _ -> infinity (* tree exhausted: incumbent is optimal *)
          | Some _, Some k -> k
          | Some _, None -> infinity
        in
        match !incumbent with
        | None ->
            let status =
              match !stop_reason with None -> Status.Infeasible | Some s -> s
            in
            { status; x = [||]; obj = nan; bound = obj_of_key root_key;
              gap = nan; nodes = !nodes; lp_iterations = Atomic.get lp_iters }
        | Some (ki, x) ->
            let bound_key =
              if open_bound = infinity then ki else Float.max root_key open_bound
            in
            let bound_key = Float.min bound_key ki in
            let gap =
              Float.abs (ki -. bound_key) /. Float.max 1.0 (Float.abs ki)
            in
            let status =
              match !stop_reason with
              | None -> Status.Optimal
              | Some _ when gap <= options.gap_tol -> Status.Optimal
              | Some _ -> Status.Feasible
            in
            { status; x; obj = obj_of_key ki; bound = obj_of_key bound_key;
              gap; nodes = !nodes; lp_iterations = Atomic.get lp_iters }
      end
