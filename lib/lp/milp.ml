let src = Logs.Src.create "lp.milp" ~doc:"branch-and-bound MILP solver"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  node_limit : int;
  time_limit : float;
  gap_tol : float;
  int_tol : float;
  dive_first : bool;
  warm_start : bool;
  workers : int;
  par_threshold : int;
  presolve : bool;
  core : Simplex.core;
  branch_strategy : Branching.strategy;
  strong_branching_nvars : int;
  strong_branching_nsteps : int;
  pump : bool;
  root_cuts : bool;
  log : bool;
}

let default_options =
  {
    node_limit = 5000;
    time_limit = infinity;
    gap_tol = 1e-6;
    int_tol = 1e-6;
    dive_first = true;
    warm_start = true;
    workers = 1;
    par_threshold = 64;
    presolve = true;
    core = Simplex.Sparse;
    branch_strategy = Branching.Reliability;
    strong_branching_nvars = 8;
    strong_branching_nsteps = 8;
    pump = true;
    root_cuts = true;
    log = false;
  }

type result = {
  status : Status.t;
  x : float array;
  relax_x : float array;
  obj : float;
  bound : float;
  gap : float;
  nodes : int;
  cuts : int;
  lp_iterations : int;
  workers : int;
}

let relax ?max_iters ?core m =
  Simplex.solve ?max_iters ?core (Simplex.of_model m)

let integral ?(tol = 1e-6) m x =
  List.for_all
    (fun (v : Model.var) ->
      let xv = x.(v.Model.id) in
      Float.abs (xv -. Float.round xv) <= tol)
    (Model.integer_vars m)

(* A node is the list of bound changes relative to the root problem, plus
   the optimal basis of the parent LP: a child differs from its parent by a
   single bound, so the dual simplex restarted from that basis usually
   repairs it in a handful of pivots.  [branched] remembers which variable
   and direction created the node, the parent's objective key and the
   branching value's fractional part, so the child LP's outcome can be fed
   back into the pseudocost table. *)
type node = {
  diffs : (int * float * float) list;
  depth : int;
  warm : Simplex.basis option;
  branched : (int * bool * float * float) option;
      (* (var, up?, parent key, fractional part) *)
}

let most_fractional = Branching.most_fractional

let rec mem_assoc3 j = function
  | [] -> false
  | (k, _, _) :: rest -> k = j || mem_assoc3 j rest

let round_integers int_ids x =
  let x = Array.copy x in
  List.iter (fun j -> x.(j) <- Float.round x.(j)) int_ids;
  x

(* Iteration cap on a strong-branching probe: enough for the dual simplex
   to repair one bound change, small enough that a recalcitrant child LP
   is abandoned (the probe then reports "no information"). *)
let probe_iters = 200

(* One warning per process, not one per solve: the fuzz oracles run
   thousands of solves with deliberately oversubscribed options. *)
let clamp_warned = Atomic.make false

let solve ?(options = default_options) ?steal_order m =
  let input0 = Simplex.of_model m in
  let minimize = input0.Simplex.minimize in
  (* Internal keys are always "smaller is better". *)
  let key_of_obj o = if minimize then o else -.o in
  let obj_of_key k = if minimize then k else -.k in
  let int_ids = List.map (fun (v : Model.var) -> v.Model.id) (Model.integer_vars m) in
  let lp_iters = Atomic.make 0 in
  let count (r : Simplex.result) =
    ignore (Atomic.fetch_and_add lp_iters r.Simplex.iterations);
    r
  in
  (* Oversubscribing domains on a machine with fewer cores only adds
     scheduler thrash; clamp and say so once. *)
  let workers =
    let avail = Domain.recommended_domain_count () in
    if options.workers > avail then begin
      if not (Atomic.exchange clamp_warned true) then
        Printf.eprintf "milp: clamping workers %d -> %d (recommended domain count)\n%!"
          options.workers avail;
      avail
    end
    else options.workers
  in
  let solve_on (input : Simplex.input) ?warm ?max_iters ?(want_basis = false)
      diffs =
    let lo = Array.copy input.Simplex.lo and hi = Array.copy input.Simplex.hi in
    List.iter
      (fun (j, l, h) ->
        lo.(j) <- Float.max lo.(j) l;
        hi.(j) <- Float.min hi.(j) h)
      diffs;
    let node_input = { input with Simplex.lo = lo; hi } in
    (* Warm starts need the row structure intact, so presolve reductions
       apply only to cold basis-free solves (the root and the dives, where
       batch fixes leave plenty for presolve to strip).  Below a few dozen
       rows the reduction sweep costs more than the pivots it saves, so
       small node LPs skip straight to the simplex. *)
    let presolvable =
      options.presolve && warm = None && (not want_basis)
      && Array.length input.Simplex.rows >= 64
    in
    count
      (if presolvable then Presolve.solve ?max_iters ~core:options.core node_input
       else Simplex.solve ?warm ?max_iters ~want_basis ~core:options.core node_input)
  in
  let start = Sys.time () in
  let out_of_time () = Sys.time () -. start > options.time_limit in
  (* Root work is staged under fractions of the time budget so that on
     models where every LP solve is expensive no single stage (cuts, pump,
     dive) can starve the tree search of its share.  Slices are carved out
     of the budget *remaining after the root LP* — on wide models the root
     solve alone can cost a large fraction of the whole budget, and slicing
     the raw limit would silently zero out the early stages.  With the
     default infinite budget the slices are infinite too. *)
  let root_elapsed = ref 0.0 in
  let budget_stop frac () =
    out_of_time ()
    || Sys.time () -. start
       > !root_elapsed
         +. (frac *. Float.max 0.0 (options.time_limit -. !root_elapsed))
  in
  (* The incumbent is an atomic (key, point) pair installed by a
     monotonic compare-and-set: a candidate only replaces the current
     value if its key is strictly better, and a lost race simply
     retries against the fresher value.  Workers prune against
     [Atomic.get incumbent] with no lock, so a new incumbent is visible
     to every domain at its very next node pop. *)
  let incumbent = Atomic.make None (* (key, x) *) in
  (* Candidates are re-priced against the original objective after rounding
     the integer variables exactly, so heuristics (dive, pump) can never
     corrupt the reported optimum — at worst they fail to help. *)
  let accept_point x =
    let x = round_integers int_ids x in
    let objv =
      input0.Simplex.obj_const
      +. Array.fold_left ( +. ) 0.0
           (Array.mapi (fun j c -> c *. x.(j)) input0.Simplex.obj)
    in
    let k = key_of_obj objv in
    let rec install () =
      let cur = Atomic.get incumbent in
      match cur with
      | Some (k0, _) when k0 <= k +. 1e-12 -> ()
      | _ ->
          if Atomic.compare_and_set incumbent cur (Some (k, x)) then begin
            if options.log then
              Log.info (fun f -> f "new incumbent %.6g" (obj_of_key k))
          end
          else install ()
    in
    install ()
  in
  (* When root cuts are on, the initial root solve exports its basis so
     the cut rounds, the dive and the tree all warm-start from this one
     cold solve instead of each paying for their own.  On wide models a
     cold root LP runs tens of seconds while a warm repair is near-free,
     so the pipeline must never cold-solve the root twice.  Pure-LP calls
     (no integers) keep the plain path, which may shrink the LP via
     fixed-column elimination or presolve. *)
  let root0 =
    solve_on input0 ~want_basis:(options.root_cuts && int_ids <> []) []
  in
  root_elapsed := Sys.time () -. start;
  (
      match root0.Simplex.status with
      | Status.Infeasible ->
          { status = Status.Infeasible; x = [||]; relax_x = [||]; obj = nan; bound = nan;
            gap = nan; nodes = 0; cuts = 0; lp_iterations = Atomic.get lp_iters;
            workers }
      | Status.Unbounded ->
          { status = Status.Unbounded; x = [||]; relax_x = [||]; obj = nan; bound = nan;
            gap = nan; nodes = 0; cuts = 0; lp_iterations = Atomic.get lp_iters;
            workers }
      | Status.Iteration_limit | Status.Time_limit | Status.Node_limit
      | Status.Feasible ->
          { status = Status.Iteration_limit; x = [||]; relax_x = [||]; obj = nan; bound = nan;
            gap = nan; nodes = 0; cuts = 0; lp_iterations = Atomic.get lp_iters;
            workers }
      | Status.Optimal when most_fractional int_ids options.int_tol root0.Simplex.x = -1 ->
          accept_point root0.Simplex.x;
          let _, x = Option.get (Atomic.get incumbent) in
          let root_key = key_of_obj root0.Simplex.obj_value in
          { status = Status.Optimal; x; relax_x = root0.Simplex.x;
            obj = obj_of_key root_key;
            bound = obj_of_key root_key; gap = 0.0; nodes = 1; cuts = 0;
            lp_iterations = Atomic.get lp_iters; workers }
      | Status.Optimal ->
          (* Root strengthening: Gomory mixed-integer and cover cuts appended
             before the tree opens, so every node LP — and every warm-started
             child basis — shares one row structure. *)
          let integer = Array.make input0.Simplex.nvars false in
          List.iter (fun j -> integer.(j) <- true) int_ids;
          let input, root, ncuts =
            if options.root_cuts && not (out_of_time ()) then
              match
                Cuts.strengthen
                  ~solve:(fun ?warm inp ->
                    count
                      (Simplex.solve ?warm ~want_basis:true ~core:options.core
                         inp))
                  ~integer ~int_tol:options.int_tol ~root:root0
                  ~stop:(budget_stop 0.25) input0
              with
              | None -> (input0, root0, 0)
              | Some (inp, r, st) ->
                  if options.log then
                    Log.info (fun f ->
                        f "root cuts: %d gomory, %d cover in %d rounds"
                          st.Cuts.gomory st.Cuts.cover st.Cuts.rounds);
                  (inp, r, Cuts.total st)
            else (input0, root0, 0)
          in
          let solve_node ?warm ?max_iters ?want_basis diffs =
            solve_on input ?warm ?max_iters ?want_basis diffs
          in
          let root_key = key_of_obj root.Simplex.obj_value in
          if most_fractional int_ids options.int_tol root.Simplex.x = -1 then begin
            (* The cut rounds closed the integrality gap outright. *)
            accept_point root.Simplex.x;
            let _, x = Option.get (Atomic.get incumbent) in
            { status = Status.Optimal; x; relax_x = root0.Simplex.x;
              obj = obj_of_key root_key;
              bound = obj_of_key root_key; gap = 0.0; nodes = 1; cuts = ncuts;
              lp_iterations = Atomic.get lp_iters; workers }
          end
          else begin
            (* Dive-and-fix.  Each round pins every integer variable already
               sitting on an integer value in the current LP solution (the
               "batch"), plus the most fractional one rounded to its nearest
               value, then re-solves — so a dive costs a handful of LP solves
               rather than one per integer variable.  Batch fixes are
               provisional: zeros pinned early can strand a variable's
               row-mates and make later rounds infeasible, so on conflict the
               batch is dropped (the explicitly chosen single fixes are kept)
               and diving continues from a fresh LP.  Dives fix many bounds at
               once, which is outside the one-bound-change regime the dual
               warm start is good at, so they stay on the cold path. *)
            let dive ?(stop_frac = 0.8) diffs r0 =
              let fixed = Hashtbl.create 64 in
              List.iter (fun (j, _, _) -> Hashtbl.replace fixed j ()) diffs;
              (* Each dive round re-solves after a batch of bound fixes with
                 the same objective, which is exactly the dual-simplex warm
                 regime — just with many repairs instead of one.  The warm
                 path falls back to a cold solve when the basis struggles, so
                 this is purely a node-cost optimization.  On wide models
                 (Federal-sized: thousands of binaries) it is the difference
                 between a dive finishing and the dive eating the whole time
                 budget in cold solves. *)
              let dive_basis = ref ((r0 : Simplex.result).Simplex.basis) in
              let collect_batch (r : Simplex.result) =
                List.filter_map
                  (fun jj ->
                    if Hashtbl.mem fixed jj then None
                    else begin
                      let v = r.Simplex.x.(jj) in
                      let rv = Float.round v in
                      if Float.abs (v -. rv) <= 1e-7 then Some (jj, rv, rv)
                      else None
                    end)
                  int_ids
              in
              let try_fix extra =
                let r' =
                  solve_node ?warm:!dive_basis ~want_basis:true (extra @ diffs)
                in
                if r'.Simplex.status = Status.Optimal then begin
                  (match r'.Simplex.basis with
                  | Some _ as b -> dive_basis := b
                  | None -> ());
                  Some r'
                end
                else None
              in
              let dive_stop = budget_stop stop_frac in
              let rec go ~singles ~batch (r : Simplex.result) fuel =
                if fuel = 0 || dive_stop () then ()
                else if r.Simplex.status <> Status.Optimal then ()
                else
                  match most_fractional int_ids options.int_tol r.Simplex.x with
                  | -1 -> accept_point r.Simplex.x
                  | j ->
                      let xv = r.Simplex.x.(j) in
                      let near = Float.round xv in
                      let far =
                        if near > xv then Float.floor xv else Float.ceil xv
                      in
                      let fresh =
                        List.filter
                          (fun (jj, _, _) -> not (mem_assoc3 jj batch))
                          (collect_batch r)
                      in
                      let batch' = fresh @ batch in
                      let keep_batch v r' =
                        Hashtbl.replace fixed j ();
                        go ~singles:((j, v, v) :: singles) ~batch:batch' r'
                          (fuel - 1)
                      in
                      (match try_fix (((j, near, near) :: batch') @ singles) with
                      | Some r' -> keep_batch near r'
                      | None ->
                      match try_fix (((j, far, far) :: batch') @ singles) with
                      | Some r' -> keep_batch far r'
                      | None -> (
                          (* The batch over-committed: retry singles only. *)
                          match try_fix ((j, near, near) :: singles) with
                          | Some r' ->
                              Hashtbl.replace fixed j ();
                              List.iter
                                (fun (jj, _, _) -> Hashtbl.remove fixed jj)
                                batch';
                              go ~singles:((j, near, near) :: singles) ~batch:[]
                                r' (fuel - 1)
                          | None -> (
                              match try_fix ((j, far, far) :: singles) with
                              | Some r' ->
                                  Hashtbl.replace fixed j ();
                                  List.iter
                                    (fun (jj, _, _) -> Hashtbl.remove fixed jj)
                                    batch';
                                  go ~singles:((j, far, far) :: singles)
                                    ~batch:[] r' (fuel - 1)
                              | None -> ())))
              in
              go ~singles:[] ~batch:[] r0 150
            in
            (* Primal heuristics, pump first: its warm objective-swap rounds
               are the cheapest route to a first incumbent, and on wide
               models an early incumbent is what lets best-bound prune at
               all.  The objective-guided dive runs after, and only when the
               pump came up empty — until feasibility is in hand, dive
               rounds that chase the objective are mostly wasted solves. *)
            if options.pump && not (out_of_time ()) then begin
              (* Pump rounds keep bounds and rows fixed and only swap the
                 objective, so the previous round's basis stays primal
                 feasible: a warm solve skips straight to phase-2 primal
                 reoptimization instead of a from-scratch solve. *)
              let pump_basis = ref (root : Simplex.result).Simplex.basis in
              let pump_solve inp =
                let r =
                  count
                    (Simplex.solve ?warm:!pump_basis ~want_basis:true
                       ~core:options.core inp)
                in
                (match r.Simplex.basis with
                | Some _ as b -> pump_basis := b
                | None -> ());
                r
              in
              (match
                 Fpump.run ~solve:pump_solve ~input ~int_ids
                   ~int_tol:options.int_tol ~start:root.Simplex.x
                   ~stop:(budget_stop 0.5) ~max_rounds:100 ()
               with
              | Fpump.Integral y -> accept_point y
              | Fpump.Near y when not (out_of_time ()) ->
                  (* Pump-and-fix: the pump stalled with all but a few
                     integers integral.  Pin the integral majority at the
                     pumped values — the pump's own LP iterate certifies
                     the pinned LP is feasible — and finish with a short
                     dive over the remainder.  Equality rows need care:
                     a fractional variable in an equality row can usually
                     only round by moving its row-mates (an assignment row
                     shifts the unit onto a different column), and pinning
                     those row-mates at 0 strands it.  So every integer
                     sharing an equality row with a fractional integer
                     stays free too.  Only pure-integer equality rows
                     qualify: a mixed row has continuous columns that can
                     absorb the rounding, and freeing its whole integer
                     support would unravel most of the pinning. *)
                  let fractional = Array.make input.Simplex.nvars false in
                  List.iter
                    (fun j ->
                      if
                        Float.abs (y.(j) -. Float.round y.(j))
                        > options.int_tol
                      then fractional.(j) <- true)
                    int_ids;
                  let keep_free = Array.make input.Simplex.nvars false in
                  Array.iter
                    (fun (row, sense, _) ->
                      if
                        sense = Model.Eq
                        && Array.exists (fun (j, _) -> fractional.(j)) row
                        && Array.for_all (fun (j, _) -> integer.(j)) row
                      then
                        Array.iter (fun (j, _) -> keep_free.(j) <- true) row)
                    input0.Simplex.rows;
                  (* Implied integers — those appearing in no pure-integer
                     row — only ever gate continuous columns (piecewise
                     segment indicators); their values are forced once the
                     decision integers settle, and pinning them at the
                     pump's stall values locks the continuous rows into the
                     stall configuration.  Leave them free throughout.
                     All three passes classify over the original rows:
                     appended cut rows are dense aggregates whose signs
                     carry no structure, and reading them would flag
                     nearly every pinned integer as gate-opening. *)
                  let decision = Array.make input.Simplex.nvars false in
                  Array.iter
                    (fun (row, _, _) ->
                      if Array.for_all (fun (j, _) -> integer.(j)) row then
                        Array.iter (fun (j, _) -> decision.(j) <- true) row)
                    input0.Simplex.rows;
                  List.iter
                    (fun j -> if not decision.(j) then keep_free.(j) <- true)
                    int_ids;
                  (* Gate-opening: any inequality row touching a free
                     integer may need more room than the pinned point
                     left it, and a pinned-low integer whose coefficient
                     relaxes the row when raised (a closed big-M site
                     indicator) is the only kind of pin that can deny it.
                     Freeing those opens the gates without unravelling the
                     rest of the pinning; pinned-high slack-eaters stay
                     pinned, since their equality row-mates are pinned
                     anyway. *)
                  Array.iter
                    (fun (row, sense, _) ->
                      if
                        sense <> Model.Eq
                        && Array.exists
                             (fun (j, _) -> fractional.(j) || keep_free.(j))
                             row
                      then
                        Array.iter
                          (fun (j, c) ->
                            if
                              integer.(j)
                              && (not fractional.(j))
                              && Float.round y.(j)
                                 < input.Simplex.hi.(j) -. 0.5
                              &&
                              match sense with
                              | Model.Le -> c < 0.0
                              | Model.Ge -> c > 0.0
                              | Model.Eq -> false
                            then keep_free.(j) <- true)
                          row)
                    input0.Simplex.rows;
                  let fixes =
                    List.filter_map
                      (fun j ->
                        let v = y.(j) in
                        let rv = Float.round v in
                        if
                          Float.abs (v -. rv) <= options.int_tol
                          && not keep_free.(j)
                        then Some (j, rv, rv)
                        else None)
                      int_ids
                  in
                  let r' = solve_node ?warm:!pump_basis ~want_basis:true fixes in
                  if options.log then
                    Log.info (fun f ->
                        f "pump-fix: pinned %d ints, residual lp %s"
                          (List.length fixes)
                          (Status.to_string r'.Simplex.status));
                  if r'.Simplex.status = Status.Optimal then begin
                    (* Up-dive the residual with backtracking.  The free
                       integers are typically assignment-style binaries
                       split across a few candidates; the variable with the
                       largest fractional part is the candidate with the
                       most LP support, so try its ceiling first and only
                       zero it out when the LP proves there is no room.
                       (Round-to-nearest is exactly wrong here: it zeroes
                       the well-supported candidates and strands the
                       mass on candidates that cannot take it.) *)
                    let fuel = ref 1000 in
                    let stop = budget_stop 0.9 in
                    (* Two tiers: decision integers first, implied ones
                       last.  An implied indicator near 1 has the largest
                       fractional part at every node, but pinning it
                       before the decisions locks the continuous rows it
                       gates and surfaces the conflict only many levels
                       deeper — the dive then backtracks exponentially.
                       Once the decisions are integral the implied
                       integers resolve independently, row by row. *)
                    let pick (x : float array) =
                      let best tier =
                        List.fold_left
                          (fun (bj, bf) j ->
                            let f = x.(j) -. Float.floor x.(j) in
                            let fr = Float.min f (1.0 -. f) in
                            if fr > options.int_tol && tier j && f > bf then
                              (j, f)
                            else (bj, bf))
                          (-1, 0.0) int_ids
                      in
                      match best (fun j -> decision.(j)) with
                      | -1, _ -> best (fun j -> not decision.(j))
                      | hit -> hit
                    in
                    let rec dfs diffs (r : Simplex.result) =
                      if !fuel <= 0 || stop () then false
                      else
                        match pick r.Simplex.x with
                        | -1, _ ->
                            accept_point r.Simplex.x;
                            true
                        | j, _ ->
                            let xv = r.Simplex.x.(j) in
                            let descend v =
                              decr fuel;
                              let d = (j, v, v) :: diffs in
                              let r' =
                                solve_node ?warm:r.Simplex.basis
                                  ~want_basis:true d
                              in
                              r'.Simplex.status = Status.Optimal && dfs d r'
                            in
                            descend (Float.ceil xv)
                            || descend (Float.floor xv)
                    in
                    let found = dfs fixes r' in
                    if options.log then
                      Log.info (fun f ->
                          f "pump-fix dive: found=%b, fuel left %d" found !fuel)
                  end
              | Fpump.Near _ | Fpump.Failed -> ());
              if options.log then
                Log.info (fun f ->
                    f "pump done at %.2fs, incumbent=%b" (Sys.time () -. start)
                      (Atomic.get incumbent <> None))
            end;
            if
              options.dive_first
              && Atomic.get incumbent = None
              && not (out_of_time ())
            then begin
              dive ~stop_frac:0.8 [] root;
              if options.log then
                Log.info (fun f ->
                    f "dive done at %.2fs, incumbent=%b" (Sys.time () -. start)
                      (Atomic.get incumbent <> None))
            end;
            let bstate =
              Branching.create ~nvars:input0.Simplex.nvars
                ~strategy:options.branch_strategy
                ~sb_nvars:options.strong_branching_nvars
                ~sb_nsteps:options.strong_branching_nsteps
            in
            let child_warm (r : Simplex.result) =
              if options.warm_start then r.Simplex.basis else None
            in
            (* Work-stealing tree search.  Every worker owns a best-first
               deque in [sched]; children are pushed to the worker that
               solved the parent (so the owner dives down its own subtree
               with warm bases), and an out-of-work domain steals a
               victim's *worst* open node — a far-away subtree the victim
               would reach last, which keeps the stolen work disjoint from
               the victim's warm-start chain.  The only shared mutable
               state on the node path is atomic: the incumbent (monotonic
               CAS), the node counter, the stop reason, and the pseudocost
               accumulators inside [Branching]. *)
            let sched = Wsched.create ~workers ?steal_order () in
            (* The tree's root node is the LP we just solved: hand it the
               root basis so the first pop is a no-op repair, not a third
               cold solve of the same relaxation. *)
            Wsched.push sched ~who:0 ~key:root_key
              { diffs = []; depth = 0; warm = child_warm root;
                branched = None };
            let nodes = Atomic.make 0 in
            let stop_reason = Atomic.make None in
            let request_stop s =
              ignore (Atomic.compare_and_set stop_reason None (Some s));
              Wsched.stop sched
            in
            (* Deadline-aware per-node budget: once the solve has burned
               enough clock to estimate its pivot rate, each node LP is
               capped at the iterations the *remaining* budget can afford
               (split across workers).  A node whose LP alone would
               outlive the deadline is pushed back open and the search
               stops, instead of blowing through the limit inside one
               uninterruptible simplex call. *)
            let node_budget () =
              if not (Float.is_finite options.time_limit) then None
              else begin
                let elapsed = Sys.time () -. start in
                let iters = Atomic.get lp_iters in
                if elapsed <= 1e-3 || iters <= 0 then None
                else begin
                  let remaining =
                    Float.max 0.0 (options.time_limit -. elapsed)
                  in
                  let rate = float_of_int iters /. elapsed in
                  let cap =
                    rate *. remaining /. float_of_int (max 1 workers)
                  in
                  Some (max 500 (int_of_float (Float.min 1e8 cap)))
                end
              end
            in
            let process_result who nd (r : Simplex.result) =
              (match (nd.branched, r.Simplex.status) with
              | Some (j, up, pk, f), Status.Optimal ->
                  Branching.observe bstate ~var:j ~up ~frac:f
                    ~degradation:(key_of_obj r.Simplex.obj_value -. pk)
              | _ -> ());
              match r.Simplex.status with
              | Status.Infeasible -> ()
              | Status.Optimal -> (
                  let k' = key_of_obj r.Simplex.obj_value in
                  let worse =
                    match Atomic.get incumbent with
                    | Some (ki, _) -> k' >= ki -. 1e-9 *. (1.0 +. Float.abs ki)
                    | None -> false
                  in
                  if not worse then
                    let probe j xv =
                      if out_of_time () then (None, None)
                      else begin
                        let warm =
                          if options.warm_start then r.Simplex.basis else None
                        in
                        let dir l h =
                          let pr =
                            solve_node ?warm ~max_iters:probe_iters
                              ((j, l, h) :: nd.diffs)
                          in
                          match pr.Simplex.status with
                          | Status.Optimal ->
                              Some
                                (Float.max 0.0
                                   (key_of_obj pr.Simplex.obj_value -. k'))
                          | Status.Infeasible ->
                              Some Branching.infeasible_degradation
                          | _ -> None
                        in
                        ( dir neg_infinity (Float.floor xv),
                          dir (Float.ceil xv) infinity )
                      end
                    in
                    match
                      Branching.select bstate ~int_ids ~tol:options.int_tol
                        ~x:r.Simplex.x ~nodes:(Atomic.get nodes) ~probe
                    with
                    | -1 -> accept_point r.Simplex.x
                    | j ->
                        let xv = r.Simplex.x.(j) in
                        let f = xv -. Float.floor xv in
                        let fl = Float.floor xv and ce = Float.ceil xv in
                        let warm = child_warm r in
                        Wsched.push sched ~who ~key:k'
                          { diffs = (j, neg_infinity, fl) :: nd.diffs;
                            depth = nd.depth + 1; warm;
                            branched = Some (j, false, k', f) };
                        Wsched.push sched ~who ~key:k'
                          { diffs = (j, ce, infinity) :: nd.diffs;
                            depth = nd.depth + 1; warm;
                            branched = Some (j, true, k', f) })
              | _ ->
                  (* A node LP that fails numerically is abandoned; the
                     incumbent, if any, remains valid. *)
                  ()
            in
            (* Adaptive granularity is kept: the search starts strictly
               sequential and helper domains are spawned at most once, when
               the node count and the open frontier both show enough work
               to amortize domain spawn (small trees — the common
               warm-started case — never pay it). *)
            let extra = max 0 (min (workers - 1) 63) in
            let spawned = ref false in
            let doms = ref [||] in
            (* Worker body.  With one worker this visits nodes in exactly
               the sequential best-bound order: the single deque *is* the
               global best-bound heap. *)
            let rec worker who =
              match Wsched.next sched ~who with
              | Wsched.Done | Wsched.Stopped -> ()
              | Wsched.Work (k, nd) ->
                  let pruned =
                    match Atomic.get incumbent with
                    | Some (ki, _) -> k >= ki -. 1e-12
                    | None -> false
                  in
                  if pruned then begin
                    (* Prune at pop: stale nodes fall out lazily, one
                       wasted pop each, instead of a frontier sweep under
                       a global lock. *)
                    Wsched.done_one sched;
                    worker who
                  end
                  else if Atomic.get nodes >= options.node_limit then begin
                    Wsched.push sched ~who ~key:k nd;
                    Wsched.done_one sched;
                    request_stop Status.Node_limit
                  end
                  else if out_of_time () then begin
                    Wsched.push sched ~who ~key:k nd;
                    Wsched.done_one sched;
                    request_stop Status.Time_limit
                  end
                  else begin
                    ignore (Atomic.fetch_and_add nodes 1);
                    if
                      who = 0 && extra > 0 && (not !spawned)
                      && Atomic.get nodes >= options.par_threshold
                      && Wsched.pending sched >= options.par_threshold
                    then begin
                      spawned := true;
                      doms :=
                        Array.init extra (fun i ->
                            Domain.spawn (fun () -> worker (i + 1)))
                    end;
                    let cap = node_budget () in
                    let r =
                      solve_node ?warm:nd.warm ?max_iters:cap
                        ~want_basis:options.warm_start nd.diffs
                    in
                    (match r.Simplex.status with
                    | Status.Iteration_limit when cap <> None ->
                        (* Our own deadline cap fired: the node stays open
                           (its key keeps feeding the reported bound) and
                           the search winds down. *)
                        Wsched.push sched ~who ~key:k nd;
                        request_stop Status.Time_limit
                    | _ -> process_result who nd r);
                    (* Children are pushed before this [done_one], so
                       [pending] can never dip to 0 while successors
                       exist. *)
                    Wsched.done_one sched;
                    worker who
                  end
            in
            worker 0;
            Array.iter Domain.join !doms;
            let open_bound =
              match (Atomic.get stop_reason, Wsched.min_key sched) with
              | None, _ -> infinity (* tree exhausted: incumbent is optimal *)
              | Some _, Some k -> k
              | Some _, None -> infinity
            in
            match Atomic.get incumbent with
            | None ->
                let status =
                  match Atomic.get stop_reason with
                  | None -> Status.Infeasible
                  | Some s -> s
                in
                { status; x = [||]; relax_x = root0.Simplex.x; obj = nan;
                  bound = obj_of_key root_key;
                  gap = nan; nodes = Atomic.get nodes; cuts = ncuts;
                  lp_iterations = Atomic.get lp_iters; workers }
            | Some (ki, x) ->
                let bound_key =
                  if open_bound = infinity then ki
                  else Float.max root_key open_bound
                in
                let bound_key = Float.min bound_key ki in
                let gap =
                  Float.abs (ki -. bound_key) /. Float.max 1.0 (Float.abs ki)
                in
                let status =
                  match Atomic.get stop_reason with
                  | None -> Status.Optimal
                  | Some _ when gap <= options.gap_tol -> Status.Optimal
                  | Some _ -> Status.Feasible
                in
                { status; x; relax_x = root0.Simplex.x; obj = obj_of_key ki;
                  bound = obj_of_key bound_key;
                  gap; nodes = Atomic.get nodes; cuts = ncuts;
                  lp_iterations = Atomic.get lp_iters; workers }
          end)
