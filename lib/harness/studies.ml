open Etransform

type comparison_row = {
  algorithm : string;
  summary : Evaluate.summary;
}

let section title =
  Printf.printf "\n===== %s =====\n%!" title

(* Raised from 0.1 once the B&B core grew root cuts, the feasibility
   pump, and the pump-and-fix completion: at 0.25 the MILP now lands a
   true incumbent inside the study's 60 s budget, where the old
   most-fractional tree never found one at any scale. *)
let federal_scale_default () =
  match Sys.getenv_opt "ETRANSFORM_FEDERAL_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.25)
  | None -> 0.25

(* Case-study solver configuration: economies of scale and site opening
   charges on, budgets sized for a laptop run. *)
let case_builder =
  {
    Lp_builder.default_options with
    Lp_builder.economies_of_scale = true;
    fixed_charges = true;
  }

let case_milp =
  {
    Solver.default_milp_options with
    Lp.Milp.node_limit = 4;
    time_limit = 60.0;
  }

(* Size-aware engine selection.  The small case studies keep the pinned
   dense-core configuration (see {!Solver.default_milp_options}) for
   bit-stable tables; a large estate such as Federal at scale 0.25
   (~12k columns) would spend its whole budget factoring dense bases,
   so it switches to the sparse core and a deeper tree.  The threshold
   sits well above Enterprise1/Florida and below any Federal scale that
   needs the switch, so historical tables are unchanged. *)
let case_milp_for asis =
  if Asis.num_groups asis > 300 then
    { case_milp with Lp.Milp.core = Lp.Simplex.Sparse; node_limit = 24 }
  else case_milp

let datasets ?(federal_scale = federal_scale_default ()) () =
  [
    ("Enterprise1", Datasets.Enterprise1.asis ());
    ("Florida", Datasets.Florida.asis ());
    ( Printf.sprintf "Federal(x%.2g)" federal_scale,
      Datasets.Federal.asis ~scale:federal_scale () );
  ]

(* ------------------------------------------------------------------ E0 *)

let e0_datasets () =
  section "E0: dataset summaries (paper Figs. 2-3, Tables I-II)";
  let rows =
    [
      ("enterprise1", Datasets.Enterprise1.asis ());
      ("florida", Datasets.Florida.asis ());
      ("federal", Datasets.Federal.asis ());
    ]
    |> List.map (fun (name, asis) ->
           let sensitive =
             Array.to_list asis.Asis.groups
             |> List.filter (fun (g : App_group.t) ->
                    Latency_penalty.is_sensitive g.App_group.latency)
             |> List.length
           in
           [
             name;
             string_of_int (Asis.num_groups asis);
             string_of_int (Asis.total_servers asis);
             string_of_int (Array.length asis.Asis.current);
             string_of_int (Asis.num_targets asis);
             string_of_int (Asis.total_target_capacity asis);
             string_of_int sensitive;
           ])
  in
  print_string
    (Report.table
       ~header:
         [ "dataset"; "app-groups"; "servers"; "as-is DCs"; "target DCs";
           "capacity"; "latency-sensitive" ]
       rows)

(* ------------------------------------------------------------- E1 / E2 *)

let print_comparison title asis_total rows =
  print_string (Printf.sprintf "-- %s --\n" title);
  print_string
    (Report.table ~header:Report.comparison_header
       (Report.comparison_rows ~asis_total
          (List.map (fun r -> (r.algorithm, r.summary)) rows)))

let run_case ~dr (name, asis) =
  let entries =
    if not dr then begin
      let asis_sum = Evaluate.asis_state asis in
      let manual = Evaluate.plan asis (Manual.plan asis) in
      let greedy = Evaluate.plan asis (Greedy.plan asis) in
      let et =
        (Solver.consolidate ~builder:case_builder ~milp:(case_milp_for asis)
           asis)
          .Solver.summary
      in
      [
        { algorithm = "AS-IS"; summary = asis_sum };
        { algorithm = "MANUAL"; summary = manual };
        { algorithm = "GREEDY"; summary = greedy };
        { algorithm = "ETRANSFORM"; summary = et };
      ]
    end
    else begin
      let asis_dr = Evaluate.asis_with_basic_dr asis in
      let manual = Evaluate.plan asis (Manual.plan_dr asis) in
      let greedy = Evaluate.plan asis (Greedy.plan_dr asis) in
      let et =
        (Dr_planner.plan
           ~options:
             {
               Dr_planner.default_options with
               Dr_planner.milp = case_milp_for asis;
               economies_of_scale = true;
             }
           asis)
          .Solver.summary
      in
      [
        { algorithm = "AS-IS+DR"; summary = asis_dr };
        { algorithm = "MANUAL"; summary = manual };
        { algorithm = "GREEDY"; summary = greedy };
        { algorithm = "ETRANSFORM"; summary = et };
      ]
    end
  in
  let asis_total = Evaluate.total (List.hd entries).summary.Evaluate.cost in
  print_comparison name asis_total entries;
  (name, entries)

let e1_consolidation ?federal_scale () =
  section "E1: consolidation case studies, non-DR (paper Fig. 4 + Tables 4d/4e)";
  List.map (run_case ~dr:false) (datasets ?federal_scale ())

let e2_dr ?federal_scale () =
  section "E2: integrated consolidation + DR (paper Fig. 6 + Tables 6d/6e)";
  List.map (run_case ~dr:true) (datasets ?federal_scale ())

(* --------------------------------------------- service-routed sweeps *)

(* Every parameter study (E3-E6) solves swept line-estate scenarios, and
   all of them go through this one path: build service jobs, run them
   through a worker pool fronted by the plan cache, and hand each study
   its outcomes back in submission order.  Per-job solves are
   deterministic, so the printed tables are identical to the historical
   sequential runs for any worker count. *)

let pool_workers () =
  match Sys.getenv_opt "ETRANSFORM_POOL_WORKERS" with
  | Some s -> ( try max 0 (int_of_string s) with _ -> 2)
  | None -> 2

(* The studies' historical line-estate MILP budget. *)
let line_milp_overrides =
  {
    Service.Job.no_overrides with
    Service.Job.node_limit = Some 2;
    time_limit = Some 20.0;
  }

(* Jobs run with [degrade = false]: the sweeps must see solver failures
   (E4 probes infeasible corners and skips them), not greedy stand-ins. *)
let line_job ?dr ?omega ?reserve ?dr_server_cost ~penalty cfg =
  Service.Job.v ?dr ?omega ?reserve ?dr_server_cost
    ~milp:line_milp_overrides ~degrade:false
    (Line_jobs.estate ~penalty cfg)

(* [sweep_line_jobs jobs] returns one [Solver.outcome option] per job, in
   order; [None] marks a failed solve. *)
let sweep_line_jobs jobs =
  Service.Pool.with_pool ~workers:(pool_workers ())
    ~queue_capacity:(max 1 (List.length jobs))
    (fun pool ->
      Service.Pool.run_batch pool jobs
      |> List.map (fun r ->
             match r.Service.Pool.code with
             | Service.Pool.Solved | Service.Pool.Degraded ->
                 r.Service.Pool.outcome
             | Service.Pool.Failed -> None))

let require_outcome study = function
  | Some o -> o
  | None -> failwith (study ^ ": line-estate solve failed")

let chunk n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

(* ------------------------------------------------------------------ E3 *)

let e3_latency_penalty () =
  section "E3: influence of the latency penalty (paper Fig. 7)";
  let penalties = [ 0.0; 20.0; 40.0; 60.0; 80.0; 100.0; 120.0 ] in
  let distributions =
    [ (0.0, "all@9"); (0.25, "25%@0"); (0.5, "50/50"); (0.75, "75%@0");
      (1.0, "all@0") ]
  in
  let specs =
    List.concat_map
      (fun p -> List.map (fun (frac, _) -> (p, frac)) distributions)
      penalties
  in
  let jobs =
    List.map
      (fun (p, frac) ->
        line_job ~penalty:p
          { Line_estate.default with Line_estate.frac_at_0 = frac })
      specs
  in
  let cells =
    List.map2
      (fun (p, frac) outcome ->
        let o = require_outcome "e3" outcome in
        let cfg =
          {
            Line_estate.default with
            Line_estate.frac_at_0 = frac;
            latency_penalty = Line_estate.banded_penalty p;
          }
        in
        let asis = Line_estate.make cfg in
        let s = o.Solver.summary in
        ( p,
          frac,
          Evaluate.total s.Evaluate.cost,
          s.Evaluate.cost.Evaluate.space,
          Line_estate.mean_user_latency asis o.Solver.placement ))
      specs
      (sweep_line_jobs jobs)
    |> chunk (List.length distributions)
  in
  let header = "penalty" :: List.map snd distributions in
  let table_of f =
    List.map
      (fun row ->
        match row with
        | [] -> []
        | (p, _, _, _, _) :: _ ->
            Printf.sprintf "$%.0f" p
            :: List.map (fun cell -> f cell) row)
      cells
  in
  print_string "-- Fig 7(a): total cost --\n";
  print_string
    (Report.table ~header (table_of (fun (_, _, t, _, _) -> Report.money t)));
  print_string "-- Fig 7(b): space cost --\n";
  print_string
    (Report.table ~header (table_of (fun (_, _, _, s, _) -> Report.money s)));
  print_string "-- Fig 7(c): mean user latency (ms) --\n";
  print_string
    (Report.table ~header
       (table_of (fun (_, _, _, _, l) -> Printf.sprintf "%.1f" l)));
  cells

(* ------------------------------------------------------------------ E4 *)

(* The two-stage DR planner does not see the primary-spread/pool-size
   coupling, so sweep the business-impact knob and keep the cheapest plan —
   exactly the lever the paper's joint LP optimizes implicitly.  Spread
   points that come back infeasible are simply skipped; ties keep the
   earliest (widest) spread. *)
let spread_omegas = [ 1.0; 0.51; 0.35; 0.26; 0.15; 0.11 ]

let best_by_spread study outcomes =
  let best = ref None in
  List.iter
    (function
      | None -> ()
      | Some o -> (
          let c = Evaluate.total o.Solver.summary.Evaluate.cost in
          match !best with
          | Some (c0, _) when c0 <= c -> ()
          | _ -> best := Some (c, o)))
    outcomes;
  match !best with
  | Some (_, o) -> o
  | None -> failwith (study ^ ": no feasible plan")

let e4_dr_server_cost () =
  section "E4: influence of the DR server cost (paper Fig. 8)";
  let zetas = [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ] in
  (* Steep space costs make consolidation clearly best when backup
     servers are nearly free; expensive backups then reward spreading
     primaries so pools can shrink and be shared. *)
  let cfg =
    { Line_estate.default with Line_estate.capacity = 400; space_step = 120.0 }
  in
  let jobs =
    List.concat_map
      (fun zeta ->
        List.map
          (fun w ->
            line_job ~dr:true
              ?omega:(if w >= 1.0 then None else Some w)
              ~reserve:0.3 ~dr_server_cost:zeta ~penalty:0.0 cfg)
          spread_omegas)
      zetas
  in
  let per_zeta = chunk (List.length spread_omegas) (sweep_line_jobs jobs) in
  let results =
    List.map2
      (fun zeta outcomes ->
        let asis = Line_estate.make cfg in
        let asis =
          { asis with
            Asis.params = { asis.Asis.params with Asis.dr_server_cost = zeta } }
        in
        let o = best_by_spread "e4" outcomes in
        let primary_sites =
          Array.to_list o.Solver.placement.Placement.primary
          |> List.sort_uniq compare |> List.length
        in
        let pools =
          Array.fold_left ( +. ) 0.0
            (Placement.backup_servers asis o.Solver.placement)
        in
        (zeta, primary_sites, pools))
      zetas per_zeta
  in
  print_string
    (Report.table
       ~header:[ "DR server cost"; "DCs used (primaries)"; "DR servers" ]
       (List.map
          (fun (z, d, p) ->
            [ Printf.sprintf "$%.0f" z; string_of_int d; Printf.sprintf "%.0f" p ])
          results));
  results

(* ------------------------------------------------------------------ E5 *)

let e5_space_wan_tradeoff () =
  section "E5: space cost vs WAN cost tradeoff (paper Fig. 9)";
  (* Users at location 9; dedicated VPN links priced by distance; space
     cheapest at location 0.  Cost of hosting the whole estate at each
     candidate location exposes the tradeoff. *)
  let cfg =
    {
      Line_estate.default with
      Line_estate.frac_at_0 = 0.0;
      use_vpn = true;
      space_step = 60.0;
      vpn_per_ms = 60.0;
      data_mb_month = 2_000_000.0;
      capacity = 400;
    }
  in
  let asis = Line_estate.make cfg in
  let m = Asis.num_groups asis in
  (* The engine run goes through the service pool; the per-location rows
     are plain evaluations and stay inline. *)
  let consolidated = sweep_line_jobs [ line_job ~penalty:0.0 cfg ] in
  let rows =
    List.init (Asis.num_targets asis) (fun j ->
        let p = Placement.non_dr (Array.make m j) in
        let s = Evaluate.plan asis p in
        let c = s.Evaluate.cost in
        (j, c.Evaluate.space, c.Evaluate.wan, Evaluate.total c))
  in
  print_string
    (Report.table ~header:[ "location"; "space"; "WAN"; "total" ]
       (List.map
          (fun (j, s, w, t) ->
            [ string_of_int j; Report.money s; Report.money w; Report.money t ])
          rows));
  let totals = List.map (fun (_, _, _, t) -> t) rows in
  let ratio =
    List.fold_left Float.max neg_infinity totals
    /. List.fold_left Float.min infinity totals
  in
  let best_j, _, _, _ =
    List.fold_left
      (fun ((_, _, _, bt) as b) ((_, _, _, t) as r) -> if t < bt then r else b)
      (List.hd rows) rows
  in
  let o = require_outcome "e5" (List.hd consolidated) in
  let chosen =
    Array.to_list o.Solver.placement.Placement.primary
    |> List.sort_uniq compare
  in
  Printf.printf
    "cheapest-by-total location: %d; eTransform places groups at: %s; \
     max/min total ratio: %.1fx\n%!"
    best_j
    (String.concat "," (List.map string_of_int chosen))
    ratio;
  (rows, ratio)

(* ------------------------------------------------------------------ E6 *)

let e6_placement_growth () =
  section "E6: placement as the estate grows (paper Fig. 10)";
  let points = [ 10; 20; 30; 40; 50; 60; 70 ] in
  (* Per-DC capacity of 100 with 4-server groups: 25 groups per site,
     mirroring the paper's fill-up-then-overflow staircase. *)
  let cfg_of n_groups =
    {
      Line_estate.default with
      Line_estate.n_groups;
      capacity = 100;
      frac_at_0 = 0.0;
      use_vpn = true;
      space_step = 60.0;
      data_mb_month = 2_000_000.0;
    }
  in
  let outcomes =
    sweep_line_jobs
      (List.map (fun n -> line_job ~penalty:0.0 (cfg_of n)) points)
  in
  let results =
    List.map2
      (fun n_groups outcome ->
        let asis = Line_estate.make (cfg_of n_groups) in
        let o = require_outcome "e6" outcome in
        let counts = Array.make (Asis.num_targets asis) 0 in
        Array.iter
          (fun j -> counts.(j) <- counts.(j) + 1)
          o.Solver.placement.Placement.primary;
        let used =
          List.init (Array.length counts) Fun.id
          |> List.filter (fun j -> counts.(j) > 0)
        in
        (n_groups, List.length used, used))
      points outcomes
  in
  print_string
    (Report.table ~header:[ "app groups"; "DCs used"; "locations" ]
       (List.map
          (fun (n, k, used) ->
            [
              string_of_int n;
              string_of_int k;
              String.concat "," (List.map string_of_int used);
            ])
          results));
  results

(* ------------------------------------------------------------------ E7 *)

let e7_scenario_frontier () =
  section "E7: scenario sweeps — cost vs resilience, replan vs cold";
  (* Part A: DR sweep on Florida over early-warning window x spread ω,
     through the service pool like any client sweep.  Every point is
     scored under the strictest spec the grid reaches (here the 7200 s
     warning window), so resilience is comparable across the column. *)
  let base =
    Service.Job.v ~id:"e7-florida" ~dr:true
      ~milp:
        { Service.Job.no_overrides with
          Service.Job.node_limit = Some 2;
          time_limit = Some 10.0 }
      (Service.Job.Dataset
         { name = "florida"; scale = 0.5; seed = 0; groups = 0; targets = 0 })
  in
  let grid =
    { Service.Sweep.empty_grid with
      Service.Sweep.warning_s = [ None; Some 7200.0 ];
      omega = [ None; Some 0.5 ] }
  in
  let summary, points =
    Service.Pool.with_pool ~workers:0 ~cache_capacity:16 (fun pool ->
        let acc = ref [] in
        let s =
          Service.Sweep.run pool base grid ~f:(fun p -> acc := p :: !acc)
        in
        (s, List.rev !acc))
  in
  let on_frontier tag =
    List.exists
      (fun (p : Scenario.Pareto.point) -> p.Scenario.Pareto.tag = tag)
      summary.Service.Sweep.frontier
  in
  let num = function Some f -> Printf.sprintf "%.2f" f | None -> "-" in
  print_string
    (Report.table
       ~header:[ "grid point"; "cost/month"; "resilience"; "frontier" ]
       (List.map
          (fun (p : Service.Sweep.point) ->
            [
              p.Service.Sweep.tag;
              num p.Service.Sweep.cost;
              num p.Service.Sweep.resilience;
              (if on_frontier p.Service.Sweep.tag then "*" else "");
            ])
          points));
  Printf.printf "frontier: %d of %d points non-dominated\n%!"
    (List.length summary.Service.Sweep.frontier)
    summary.Service.Sweep.points;
  (* Part B: incremental re-plan against estate drift.  Resize one group
     and grow another's data (2 of M groups, well under 10% drift), then
     compare a cold solve of the drifted estate with Delta.replan, which
     pins every structurally-unchanged group to its previous primary and
     warm-starts the tree. *)
  let asis = Datasets.Florida.asis ~scale:0.5 () in
  let milp = case_milp_for asis in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let previous, _ = time (fun () -> Solver.consolidate ~milp asis) in
  let g0 = asis.Asis.groups.(0) and g1 = asis.Asis.groups.(1) in
  let drifted =
    Scenario.Delta.apply asis
      [
        Scenario.Delta.Resize (g0.App_group.name, g0.App_group.servers + 1);
        Scenario.Delta.Scale_data (g1.App_group.name, 1.1);
      ]
  in
  let cold, cold_s = time (fun () -> Solver.consolidate ~milp drifted) in
  let warm, warm_s =
    time (fun () ->
        Scenario.Delta.replan ~milp
          ~previous:(asis, previous.Solver.placement)
          drifted)
  in
  print_string
    (Report.table
       ~header:[ "re-plan of drifted estate"; "cost/month"; "wall s" ]
       [
         [
           "cold solve";
           Printf.sprintf "%.2f" (Evaluate.total cold.Solver.summary.Evaluate.cost);
           Printf.sprintf "%.3f" cold_s;
         ];
         [
           Printf.sprintf "warm re-plan (%d of %d groups pinned)"
             warm.Scenario.Delta.pinned (Asis.num_groups drifted);
           Printf.sprintf "%.2f"
             (Evaluate.total
                warm.Scenario.Delta.outcome.Solver.summary.Evaluate.cost);
           Printf.sprintf "%.3f" warm_s;
         ];
       ]);
  Printf.printf "replan speed-up: %.1fx (%d groups changed of %d)\n%!"
    (cold_s /. Float.max warm_s 1e-9)
    2 (Asis.num_groups asis);
  (summary, (cold_s, warm_s))

let all () =
  e0_datasets ();
  ignore (e1_consolidation ());
  ignore (e2_dr ());
  ignore (e3_latency_penalty ());
  ignore (e4_dr_server_cost ());
  ignore (e5_space_wan_tradeoff ());
  ignore (e6_placement_growth ());
  ignore (e7_scenario_frontier ())
