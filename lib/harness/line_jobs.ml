let fl f = Printf.sprintf "%h" f

let canonical_key ~penalty (cfg : Line_estate.config) =
  String.concat ","
    [
      "line";
      string_of_int cfg.Line_estate.n_dcs;
      string_of_int cfg.n_groups;
      string_of_int cfg.servers_per_group;
      string_of_int cfg.capacity;
      fl cfg.base_space;
      fl cfg.space_step;
      fl cfg.base_latency_ms;
      fl cfg.ms_per_hop;
      fl cfg.latency_exponent;
      fl cfg.users_per_group;
      fl cfg.frac_at_0;
      fl penalty;
      fl cfg.data_mb_month;
      (if cfg.use_vpn then "vpn" else "novpn");
      fl cfg.vpn_base;
      fl cfg.vpn_per_ms;
    ]

let estate ~penalty cfg =
  let cfg =
    { cfg with Line_estate.latency_penalty = Line_estate.banded_penalty penalty }
  in
  Service.Job.Inline
    {
      key = canonical_key ~penalty cfg;
      build = (fun () -> Line_estate.make cfg);
    }

let resolve j =
  match Option.bind (Service.Json.member "kind" j) Service.Json.to_str with
  | Some "line" ->
      let d = Line_estate.default in
      let num key default =
        match Option.bind (Service.Json.member key j) Service.Json.to_float with
        | Some f -> f
        | None -> default
      in
      let int key default =
        match Option.bind (Service.Json.member key j) Service.Json.to_int with
        | Some i -> i
        | None -> default
      in
      let bool key default =
        match Option.bind (Service.Json.member key j) Service.Json.to_bool with
        | Some b -> b
        | None -> default
      in
      let penalty = num "penalty" 0.0 in
      let cfg =
        {
          Line_estate.n_dcs = int "n_dcs" d.Line_estate.n_dcs;
          n_groups = int "n_groups" d.n_groups;
          servers_per_group = int "servers_per_group" d.servers_per_group;
          capacity = int "capacity" d.capacity;
          base_space = num "base_space" d.base_space;
          space_step = num "space_step" d.space_step;
          base_latency_ms = num "base_latency_ms" d.base_latency_ms;
          ms_per_hop = num "ms_per_hop" d.ms_per_hop;
          latency_exponent = num "latency_exponent" d.latency_exponent;
          users_per_group = num "users_per_group" d.users_per_group;
          frac_at_0 = num "frac_at_0" d.frac_at_0;
          latency_penalty = Line_estate.banded_penalty penalty;
          data_mb_month = num "data_mb_month" d.data_mb_month;
          use_vpn = bool "use_vpn" d.use_vpn;
          vpn_base = num "vpn_base" d.vpn_base;
          vpn_per_ms = num "vpn_per_ms" d.vpn_per_ms;
        }
      in
      (match estate ~penalty cfg with
      | Service.Job.Inline { key; build } -> Some (key, build)
      | Service.Job.Dataset _ -> None)
  | _ -> None
