(** Line-estate integration with the planning service.

    The service's job type names estates either as bundled datasets or as
    inline builders with a caller-supplied canonical key; this module
    supplies both directions for {!Line_estate}: building
    {!Service.Job.estate} values for the parameter studies, and resolving
    ["line"] estate objects in NDJSON job specs.

    The latency penalty of a line job is always the paper's banded penalty
    {!Line_estate.banded_penalty}[ p] (with [p = 0] meaning none), so a
    single scalar [penalty] captures it canonically. *)

(** [canonical_key ~penalty cfg] serializes every numeric/boolean field of
    [cfg] (ignoring [cfg.latency_penalty]; [penalty] stands in for it) in a
    fixed order — permuted job specs that denote the same estate produce
    the same key, and therefore the same job fingerprint. *)
val canonical_key : penalty:float -> Line_estate.config -> string

(** [estate ~penalty cfg] is the inline service estate for
    [Line_estate.make { cfg with latency_penalty = banded_penalty penalty }]. *)
val estate : penalty:float -> Line_estate.config -> Service.Job.estate

(** NDJSON resolver for [{"kind":"line", ...}] estate objects.  Recognized
    fields (all optional, defaulting to {!Line_estate.default} and
    [penalty = 0]): [n_dcs], [n_groups], [servers_per_group], [capacity],
    [base_space], [space_step], [base_latency_ms], [ms_per_hop],
    [latency_exponent], [users_per_group], [frac_at_0], [penalty],
    [data_mb_month], [use_vpn], [vpn_base], [vpn_per_ms]. *)
val resolve : Service.Batch.resolver
