(** Reproduction of every table and figure in the paper's evaluation
    (experiment index in DESIGN.md).  Each runner prints paper-style tables
    to [stdout] and returns its raw numbers for programmatic use. *)

(** E0 — dataset summaries (Fig. 2-3, Tables I-II). *)
val e0_datasets : unit -> unit

type comparison_row = {
  algorithm : string;
  summary : Etransform.Evaluate.summary;
}

(** E1 — Fig. 4(a-c) and Tables 4(d)/(e): as-is vs manual vs greedy vs
    eTransform on the three case studies, without DR.  [federal_scale]
    defaults to the ETRANSFORM_FEDERAL_SCALE environment variable or 0.1
    (see EXPERIMENTS.md for the scaling note). *)
val e1_consolidation :
  ?federal_scale:float -> unit -> (string * comparison_row list) list

(** E2 — Fig. 6(a-c) and Tables 6(d)/(e): the same comparison with
    integrated DR, against the as-is + strawman-DR baseline. *)
val e2_dr :
  ?federal_scale:float -> unit -> (string * comparison_row list) list

(** E3 — Fig. 7(a,b,c): influence of the latency penalty under five user
    distributions on the line estate: total cost, space cost, and mean user
    latency per (penalty, distribution) cell. *)
val e3_latency_penalty :
  unit -> (float * float * float * float * float) list list

(** E4 — Fig. 8: influence of the DR-server cost on the number of data
    centers used and the number of DR servers bought.  Returns
    [(zeta, dcs_used, dr_servers)] per sweep point. *)
val e4_dr_server_cost : unit -> (float * int * float) list

(** E5 — Fig. 9: space-vs-WAN tradeoff under dedicated VPN links.  Returns
    [(location, space, wan, total)] per candidate location plus the ratio
    between the costliest and cheapest location (the paper's "7x"). *)
val e5_space_wan_tradeoff : unit -> (int * float * float * float) list * float

(** E6 — Fig. 10: placement as the number of application groups grows;
    returns [(n_groups, dcs_used, first_locations)] per sweep point. *)
val e6_placement_growth : unit -> (int * int * int list) list

(** E7 — scenario engine: a Florida DR sweep over early-warning window x
    spread ω with its cost-vs-resilience Pareto frontier, then a
    replan-vs-cold wall-clock comparison on a 2-group drift of the same
    estate.  Returns the sweep summary and [(cold_s, warm_s)]. *)
val e7_scenario_frontier :
  unit -> Service.Sweep.summary * (float * float)

(** Run everything in order. *)
val all : unit -> unit
