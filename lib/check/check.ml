module Prng = Datasets.Prng

module Gen = struct
  type 'a t = Prng.t -> 'a

  let run g rng = g rng
  let return x _ = x
  let map f g rng = f (g rng)

  let map2 f a b rng =
    let x = a rng in
    let y = b rng in
    f x y

  let bind g f rng =
    let x = g rng in
    f x rng

  let pair a b = map2 (fun x y -> (x, y)) a b

  let triple a b c rng =
    let x = a rng in
    let y = b rng in
    let z = c rng in
    (x, y, z)

  let bool rng = Prng.int rng 2 = 0

  let int_range lo hi rng =
    if hi < lo then invalid_arg "Gen.int_range: empty range";
    lo + Prng.int rng (hi - lo + 1)

  let float_range lo hi rng = Prng.range rng lo hi

  let choose xs =
    let a = Array.of_list xs in
    fun rng -> Prng.pick rng a

  let oneof gs =
    let a = Array.of_list gs in
    fun rng -> (Prng.pick rng a) rng

  let frequency wgs =
    let total = List.fold_left (fun acc (w, _) -> acc + w) 0 wgs in
    if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
    fun rng ->
      let roll = Prng.int rng total in
      let rec pick acc = function
        | [] -> assert false
        | (w, g) :: rest ->
            if roll < acc + w then g rng else pick (acc + w) rest
      in
      pick 0 wgs

  let list ~max g rng =
    let n = Prng.int rng (max + 1) in
    List.init n (fun _ -> g rng)

  let array ~max g rng =
    let n = Prng.int rng (max + 1) in
    Array.init n (fun _ -> g rng)

  let char_range lo hi rng =
    Char.chr (int_range (Char.code lo) (Char.code hi) rng)

  let string_of ~max c rng =
    let n = Prng.int rng (max + 1) in
    String.init n (fun _ -> c rng)

  let permutation n rng =
    let a = Array.init n Fun.id in
    Prng.shuffle rng a;
    a
end

module Shrink = struct
  type 'a t = 'a -> 'a Seq.t

  let nil _ = Seq.empty

  let int n =
    if n = 0 then Seq.empty
    else
      let rec candidates cur () =
        (* 0, then halvings toward n, then the final decrement. *)
        if cur = n then Seq.Nil
        else Seq.Cons (cur, candidates (cur + ((n - cur + 1) / 2)))
      in
      candidates 0

  let float f =
    if f = 0.0 || Float.is_nan f then Seq.empty
    else
      List.to_seq
        (List.filter
           (fun c -> c <> f && Float.abs c < Float.abs f)
           [ 0.0; f /. 4.0; f /. 2.0; Float.of_int (Float.to_int f) ])

  let list ?(elt = nil) l =
    let n = List.length l in
    let remove_run start len =
      List.filteri (fun i _ -> i < start || i >= start + len) l
    in
    let halves =
      if n >= 2 then
        List.to_seq [ remove_run 0 (n / 2); remove_run (n / 2) (n - (n / 2)) ]
      else Seq.empty
    in
    let singles =
      Seq.init n (fun i -> remove_run i 1)
    in
    let pointwise =
      Seq.concat
        (Seq.init n (fun i ->
             Seq.map
               (fun x -> List.mapi (fun j y -> if j = i then x else y) l)
               (elt (List.nth l i))))
    in
    if n = 0 then Seq.empty
    else Seq.append halves (Seq.append singles pointwise)

  let array ?elt a =
    Seq.map Array.of_list (list ?elt (Array.to_list a))

  let pair sa sb (a, b) =
    Seq.append
      (Seq.map (fun a' -> (a', b)) (sa a))
      (Seq.map (fun b' -> (a, b')) (sb b))
end

type 'a arb = {
  gen : 'a Gen.t;
  shrink : 'a Shrink.t;
  pp : (Format.formatter -> 'a -> unit) option;
}

let arb ?(shrink = Shrink.nil) ?pp gen = { gen; shrink; pp }

type prop =
  | Prop : {
      name : string;
      count : int;
      smoke_count : int;
      arb : 'a arb;
      body : 'a -> (unit, string) result;
    }
      -> prop

let prop ?(count = 100) ?smoke_count name arb body =
  let smoke_count =
    match smoke_count with Some n -> n | None -> max 1 (count / 5)
  in
  Prop { name; count; smoke_count; arb; body }

let prop_name (Prop p) = p.name

type failure = {
  prop : string;
  seed : int;
  case : int;
  reason : string;
  shrink_steps : int;
  counterexample : string option;
  original : string option;
}

type outcome = {
  name : string;
  cases : int;
  stream : string;
  failure : failure option;
}

let default_seed () =
  match Sys.getenv_opt "CHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> 0xe7ca5e)
  | None -> 0xe7ca5e

(* Evaluate the body defensively: exceptions are failures, not crashes of
   the whole run. *)
let eval body x =
  match body x with
  | Ok () -> None
  | Error reason -> Some reason
  | exception e ->
      Some (Printf.sprintf "exception %s" (Printexc.to_string e))

(* Greedy descent: repeatedly replace the counterexample by its first
   still-failing shrink candidate.  The candidate-evaluation budget keeps
   adversarial shrinkers (or very slow properties) bounded. *)
let shrink_loop arb body value reason =
  let budget = ref 400 in
  let steps = ref 0 in
  let cur = ref value and cur_reason = ref reason in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    let candidates = arb.shrink !cur in
    let rec try_seq seq =
      if !budget <= 0 then ()
      else
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons (cand, rest) -> (
            decr budget;
            match eval body cand with
            | None -> try_seq rest
            | Some r ->
                cur := cand;
                cur_reason := r;
                incr steps;
                progress := true)
    in
    try_seq candidates
  done;
  (!cur, !cur_reason, !steps)

let render pp x =
  match pp with
  | None -> None
  | Some pp -> (
      match Format.asprintf "%a" pp x with
      | s -> Some s
      | exception _ -> Some "<printer raised>")

(* Case [i] of property [name] draws from a PRNG keyed only by
   (seed, name, i): independent of every other property and of the case
   count, so a printed (seed, case) pair replays exactly. *)
let case_rng ~seed ~name i =
  Prng.create (Hashtbl.hash (seed, name, i))

let run_one ?seed ?(smoke = false) ?count (Prop p) =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let cases =
    match count with
    | Some n -> n
    | None -> if smoke then p.smoke_count else p.count
  in
  let stream = ref "" in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < cases do
    let rng = case_rng ~seed ~name:p.name !i in
    match p.arb.gen rng with
    | exception e ->
        failure :=
          Some
            {
              prop = p.name;
              seed;
              case = !i;
              reason =
                Printf.sprintf "generator raised %s" (Printexc.to_string e);
              shrink_steps = 0;
              counterexample = None;
              original = None;
            }
    | x ->
        (match render p.arb.pp x with
        | Some s -> stream := Digest.string (!stream ^ s)
        | None -> ());
        (match eval p.body x with
        | None -> incr i
        | Some reason ->
            let shrunk, shrunk_reason, steps =
              shrink_loop p.arb p.body x reason
            in
            failure :=
              Some
                {
                  prop = p.name;
                  seed;
                  case = !i;
                  reason = shrunk_reason;
                  shrink_steps = steps;
                  counterexample = render p.arb.pp shrunk;
                  original = (if steps = 0 then None else render p.arb.pp x);
                })
  done;
  let stream =
    if !stream = "" then "-" else String.sub (Digest.to_hex !stream) 0 12
  in
  {
    name = p.name;
    cases = (match !failure with None -> cases | Some f -> f.case + 1);
    stream;
    failure = !failure;
  }

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>property %s FAILED (seed=%d case=%d shrink-steps=%d)@,reason: %s@]"
    f.prop f.seed f.case f.shrink_steps f.reason;
  (match f.counterexample with
  | Some s ->
      Format.fprintf ppf "@,@[<v>counterexample:@,%s@]" (String.trim s)
  | None -> ());
  (match f.original with
  | Some s ->
      Format.fprintf ppf "@,@[<v>before shrinking:@,%s@]" (String.trim s)
  | None -> ());
  Format.fprintf ppf "@,reproduce: CHECK_SEED=%d etransform_fuzz --only %s"
    f.seed f.prop

let run ?seed ?(smoke = false) ?count ?(out = stdout) props =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let ok = ref true in
  List.iter
    (fun p ->
      let o = run_one ~seed ~smoke ?count p in
      (match o.failure with
      | None ->
          Printf.fprintf out "ok   %-34s cases=%-4d stream=%s\n%!" o.name
            o.cases o.stream
      | Some f ->
          ok := false;
          Printf.fprintf out "FAIL %-34s cases=%-4d stream=%s\n%!" o.name
            o.cases o.stream;
          Printf.fprintf out "%s\n%!"
            (Format.asprintf "%a" pp_failure f)))
    props;
  !ok
