(** Seeded property-based testing, dependency-free.

    The testing substrate for the fuzz oracles ([lib/fuzz],
    [bin/etransform_fuzz]): combinator generators over the splittable
    {!Datasets.Prng}, greedy shrinking, and a runner whose output is a
    pure function of the seed — running twice with the same seed prints
    byte-identical reports, and every failure line carries the seed and
    case index needed to replay it.

    Seeds: the runner default is {!default_seed}; the [CHECK_SEED]
    environment variable overrides it (so a failure printed in CI can be
    replayed locally with [CHECK_SEED=n dune runtest]), and an explicit
    [?seed] argument overrides both.  Case [i] of a property draws from
    a PRNG derived only from [(seed, property name, i)] — adding or
    reordering other properties never disturbs an instance stream. *)

module Gen : sig
  (** A generator is a function of a PRNG stream.  Generators must
      consume randomness only from the stream they are handed — that is
      what makes instance streams reproducible from a printed seed. *)
  type 'a t = Datasets.Prng.t -> 'a

  val run : 'a t -> Datasets.Prng.t -> 'a

  val return : 'a -> 'a t
  val map : ('a -> 'b) -> 'a t -> 'b t
  val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
  val bind : 'a t -> ('a -> 'b t) -> 'b t
  val pair : 'a t -> 'b t -> ('a * 'b) t
  val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

  val bool : bool t

  (** [int_range lo hi] is uniform over the inclusive range [lo..hi]. *)
  val int_range : int -> int -> int t

  val float_range : float -> float -> float t

  (** Uniform pick from a non-empty list of constants. *)
  val choose : 'a list -> 'a t

  (** Uniform pick among sub-generators. *)
  val oneof : 'a t list -> 'a t

  (** Weighted pick among sub-generators (weights are positive ints). *)
  val frequency : (int * 'a t) list -> 'a t

  (** [list ~max g] has uniform length [0..max]. *)
  val list : max:int -> 'a t -> 'a list t

  val array : max:int -> 'a t -> 'a array t
  val char_range : char -> char -> char t
  val string_of : max:int -> char t -> string t

  (** Fisher-Yates permutation of [0..n-1]. *)
  val permutation : int -> int array t
end

module Shrink : sig
  (** Candidate replacements for a failing value, most aggressive first.
      The runner keeps the first candidate that still fails and repeats
      (greedy descent), so sequences should lead with big reductions. *)
  type 'a t = 'a -> 'a Seq.t

  val nil : 'a t

  (** Toward 0: [0], halvings, then decrement. *)
  val int : int t

  (** [0.], halvings, and the integer truncation. *)
  val float : float t

  (** Element removal (halves first, then singletons), then pointwise
      element shrinking with [elt]. *)
  val list : ?elt:'a t -> 'a list t

  val array : ?elt:'a t -> 'a array t
  val pair : 'a t -> 'b t -> ('a * 'b) t
end

(** A generator bundled with its shrinker and printer. *)
type 'a arb

val arb :
  ?shrink:'a Shrink.t ->
  ?pp:(Format.formatter -> 'a -> unit) ->
  'a Gen.t ->
  'a arb

(** A named property over some ['a arb].  The body returns [Ok ()] to
    pass and [Error reason] to fail; raising also fails the case. *)
type prop

(** [prop name arb body] with the full-run case [count] (default 100)
    and the reduced [smoke_count] (default [max 1 (count / 5)]) used by
    the [--smoke] budget of the fuzz driver and the [@fuzz-smoke]
    alias. *)
val prop :
  ?count:int ->
  ?smoke_count:int ->
  string ->
  'a arb ->
  ('a -> (unit, string) result) ->
  prop

val prop_name : prop -> string

type failure = {
  prop : string;
  seed : int;
  case : int;              (** 0-based index of the failing case *)
  reason : string;         (** failure reason of the shrunk instance *)
  shrink_steps : int;
  counterexample : string option;  (** pretty-printed shrunk instance *)
  original : string option;        (** pretty-printed pre-shrink instance *)
}

(** Per-property run summary.  [stream] is a digest of the printed form
    of every instance generated (["-"] when the arb has no printer):
    equal seeds produce equal streams, different seeds almost surely
    don't — the fuzz driver prints it so reproducibility is visible. *)
type outcome = {
  name : string;
  cases : int;
  stream : string;
  failure : failure option;
}

(** 0xe7ca5e, unless [CHECK_SEED] is set to an integer. *)
val default_seed : unit -> int

(** [run_one prop] runs the property's cases at [seed].  [smoke]
    selects the property's smoke count; [count] overrides both. *)
val run_one : ?seed:int -> ?smoke:bool -> ?count:int -> prop -> outcome

val pp_failure : Format.formatter -> failure -> unit

(** [run props] runs every property, printing one [ok]/[FAIL] line per
    property (plus failure details) to [out] (default [stdout]).
    Returns [false] iff any property failed.  Output is deterministic
    given the seed. *)
val run :
  ?seed:int -> ?smoke:bool -> ?count:int -> ?out:out_channel ->
  prop list -> bool
