(** Consistent-hash ring over the [--peers] set: maps a job fingerprint
    to the peers most likely to hold its plan.  Peer identity is its
    ["host:port"] string; each peer owns [vnodes] points so load spreads
    evenly and membership changes only remap the affected arcs. *)

type t

(** [create peers] — duplicates and empty strings are dropped; [vnodes]
    defaults to 64 points per peer. *)
val create : ?vnodes:int -> string list -> t

val peers : t -> string list
val is_empty : t -> bool

(** [lookup t key] is the first [n] (default 1) distinct peers walking
    the ring clockwise from [key]'s position — preference order for a
    remote cache probe.  [[]] when the ring is empty. *)
val lookup : ?n:int -> t -> string -> string list
