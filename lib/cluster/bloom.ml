(* Fixed-size Bloom filter over job fingerprints.  Gossip exchanges one
   of these per node: a peer lookup consults the last digest received
   from the candidate before paying for an HTTP roundtrip, so remote
   misses are mostly free.  False positives only cost a wasted fetch;
   false negatives are impossible, which is the property the peer tier
   relies on. *)

type t = {
  bits : int;
  hashes : int;
  data : Bytes.t;
  mutable count : int;
}

let default_bits = 16384
let default_hashes = 4

let create ?(bits = default_bits) ?(hashes = default_hashes) () =
  let bits = max 64 bits and hashes = max 1 (min 16 hashes) in
  { bits; hashes; data = Bytes.make ((bits + 7) / 8) '\000'; count = 0 }

let bits t = t.bits
let hashes t = t.hashes
let count t = t.count

(* Double hashing off one MD5: h_i = h1 + i*h2 (Kirsch–Mitzenmacher),
   both halves of the digest taken as non-negative 63-bit ints. *)
let hash_pair key =
  let d = Stdlib.Digest.string key in
  let word off =
    let v = ref 0 in
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code d.[off + i]
    done;
    !v land max_int
  in
  (word 0, word 8)

let set_bit t i = Bytes.set t.data (i lsr 3)
    (Char.chr (Char.code (Bytes.get t.data (i lsr 3)) lor (1 lsl (i land 7))))

let get_bit t i =
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* h1 + i*h2 can wrap past max_int; mask back to non-negative before the
   modulus or the bit index goes negative. *)
let index t h1 h2 i = ((h1 + (i * h2)) land max_int) mod t.bits

let add t key =
  let h1, h2 = hash_pair key in
  for i = 0 to t.hashes - 1 do
    set_bit t (index t h1 h2 i)
  done;
  t.count <- t.count + 1

let mem t key =
  let h1, h2 = hash_pair key in
  let rec go i = i >= t.hashes || (get_bit t (index t h1 h2 i) && go (i + 1)) in
  go 0

let of_keys ?bits ?hashes keys =
  let t = create ?bits ?hashes () in
  List.iter (add t) keys;
  t

(* Wire form: "v1:<bits>:<hashes>:<count>:<hex bytes>" — plain printable
   ASCII so it rides inside a JSON string without escaping. *)

let to_hex t =
  let n = Bytes.length t.data in
  let buf = Buffer.create ((2 * n) + 32) in
  Buffer.add_string buf
    (Printf.sprintf "v1:%d:%d:%d:" t.bits t.hashes t.count);
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%02x" (Char.code (Bytes.get t.data i)))
  done;
  Buffer.contents buf

let of_hex s =
  match String.split_on_char ':' s with
  | [ "v1"; bits; hashes; count; hex ] -> (
      match
        (int_of_string_opt bits, int_of_string_opt hashes,
         int_of_string_opt count)
      with
      | Some bits, Some hashes, Some count
        when bits >= 64 && bits <= 1 lsl 24 && hashes >= 1 && hashes <= 16
             && count >= 0
             && String.length hex = 2 * ((bits + 7) / 8) ->
          let data = Bytes.make ((bits + 7) / 8) '\000' in
          let ok = ref true in
          let nibble c =
            match c with
            | '0' .. '9' -> Char.code c - Char.code '0'
            | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
            | _ ->
                ok := false;
                0
          in
          String.iteri
            (fun i c ->
              let v = nibble c in
              if i land 1 = 0 then Bytes.set data (i / 2) (Char.chr (v lsl 4))
              else
                Bytes.set data (i / 2)
                  (Char.chr (Char.code (Bytes.get data (i / 2)) lor v)))
            hex;
          if !ok then Some { bits; hashes; data; count } else None
      | _ -> None)
  | _ -> None
