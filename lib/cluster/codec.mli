(** Binary serialization of {!Etransform.Solver.outcome} — the payload
    format shared by the on-disk plan store and the [GET /cache/<fp>]
    peer-transfer body.  Exact: floats are carried as IEEE-754 bit
    patterns, so [decode (encode o)] rebuilds [o] field-for-field. *)

val encode : Etransform.Solver.outcome -> string

(** Total function: truncated, corrupted or unknown-version payloads
    decode to [None] (a cache miss), never an exception. *)
val decode : string -> Etransform.Solver.outcome option
