(* Remote cache tier: given a job fingerprint, ask the consistent-hash
   owners among [--peers] for the encoded plan via GET /cache/<fp>.

   Probes are digest-gated: each gossip round delivers a Bloom filter of
   every peer's cached fingerprints, and a probe is skipped when the
   owner's digest says the key is definitely absent.  A peer with no
   digest yet is probed optimistically — a fresh cluster should share
   plans immediately, not after the first gossip interval.  Bloom false
   positives only cost one wasted probe; false negatives are impossible,
   so gating never hides a plan that exists.

   All socket work is blocking with hard send/receive timeouts: the tier
   runs inside solver worker domains, and a slow peer must degrade to a
   cache miss (solve locally) rather than stall the pool.  Every failure
   mode — refused connection, timeout, bad response, mid-body EOF — is a
   counted miss, never an exception. *)

type counters = {
  mutable probes : int;        (* GETs actually sent *)
  mutable hits : int;
  mutable misses : int;        (* probe answered 404 / failed *)
  mutable skips : int;         (* probes avoided by a digest *)
  mutable errors : int;        (* transport-level failures *)
  mutable gossip_rounds : int; (* successful digest exchanges we initiated *)
}

type t = {
  ring : Ring.t;
  mutable self : string option;
  timeout : float;
  digests : (string, Bloom.t) Hashtbl.t;  (* peer -> last gossiped digest *)
  c : counters;
  lock : Mutex.t;
}

let create ?(fetch_timeout = 2.0) ?self ~peers () =
  {
    ring = Ring.create peers;
    self;
    timeout = fetch_timeout;
    digests = Hashtbl.create 8;
    c =
      {
        probes = 0;
        hits = 0;
        misses = 0;
        skips = 0;
        errors = 0;
        gossip_rounds = 0;
      };
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_self t addr = with_lock t (fun () -> t.self <- Some addr)
let self t = with_lock t (fun () -> t.self)
let peers t = Ring.peers t.ring
let ring t = t.ring

let counters t =
  with_lock t (fun () ->
      ( t.c.probes,
        t.c.hits,
        t.c.misses,
        t.c.skips,
        t.c.errors,
        t.c.gossip_rounds ))

let record t f = with_lock t (fun () -> f t.c)

let update_digest t ~peer bloom =
  with_lock t (fun () -> Hashtbl.replace t.digests peer bloom)

let digest_of t peer = with_lock t (fun () -> Hashtbl.find_opt t.digests peer)

(* ------------------------------------------------------ http transport *)

let sockaddr_of addr =
  match String.rindex_opt addr ':' with
  | None -> None
  | Some i -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | None -> None
      | Some port -> (
          let host = if host = "" then "127.0.0.1" else host in
          match Unix.inet_addr_of_string host with
          | ip -> Some (Unix.ADDR_INET (ip, port))
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> None
              | { Unix.h_addr_list; _ } ->
                  Some (Unix.ADDR_INET (h_addr_list.(0), port))
              | exception Not_found -> None)))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let read_to_eof fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

(* Parse a Connection: close response: status code from the head line,
   body from after the blank line, trimmed to Content-Length when the
   header is present (guards against trailing bytes from a confused
   peer).  Returns [None] on anything malformed. *)
let parse_response raw =
  let find_sub ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i =
      if i + n > m then None
      else if String.sub s i n = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  match find_sub ~sub:"\r\n\r\n" raw with
  | None -> None
  | Some sep -> (
      let head = String.sub raw 0 sep in
      let body_off = sep + 4 in
      let body = String.sub raw body_off (String.length raw - body_off) in
      let lines = String.split_on_char '\n' head in
      match lines with
      | [] -> None
      | status_line :: headers -> (
          let status =
            match String.split_on_char ' ' (String.trim status_line) with
            | _ :: code :: _ -> int_of_string_opt code
            | _ -> None
          in
          match status with
          | None -> None
          | Some status ->
              let content_length =
                List.fold_left
                  (fun acc line ->
                    match String.index_opt line ':' with
                    | Some i
                      when String.lowercase_ascii (String.sub line 0 i)
                           = "content-length" ->
                        int_of_string_opt
                          (String.trim
                             (String.sub line (i + 1)
                                (String.length line - i - 1)))
                    | _ -> acc)
                  None headers
              in
              let body =
                match content_length with
                | Some n when n >= 0 && n <= String.length body ->
                    String.sub body 0 n
                | _ -> body
              in
              Some (status, body)))

let request t ~peer text =
  match sockaddr_of peer with
  | None -> None
  | Some sa -> (
      match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> None
      | fd -> (
          match
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout;
                Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout;
                Unix.connect fd sa;
                write_all fd text;
                read_to_eof fd)
          with
          | raw -> parse_response raw
          | exception (Unix.Unix_error _ | Sys_error _) -> None))

let get t ~peer path =
  request t ~peer
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
       path peer)

let post t ~peer path body =
  request t ~peer
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\nContent-Length: \
        %d\r\n\r\n%s"
       path peer (String.length body) body)

(* -------------------------------------------------------------- lookup *)

(* The ring owners for [key], minus ourselves, best-first. *)
let owners t key =
  let self = self t in
  List.filter
    (fun p -> Some p <> self)
    (Ring.lookup ~n:2 t.ring key)

let lookup t key =
  let rec probe = function
    | [] -> None
    | peer :: rest -> (
        let gated =
          match digest_of t peer with
          | Some bloom -> not (Bloom.mem bloom key)
          | None -> false  (* no digest yet: probe optimistically *)
        in
        if gated then begin
          record t (fun c -> c.skips <- c.skips + 1);
          probe rest
        end
        else begin
          record t (fun c -> c.probes <- c.probes + 1);
          match get t ~peer ("/cache/" ^ key) with
          | Some (200, body) when body <> "" ->
              record t (fun c -> c.hits <- c.hits + 1);
              Some body
          | Some (_, _) ->
              record t (fun c -> c.misses <- c.misses + 1);
              probe rest
          | None ->
              record t (fun c ->
                  c.errors <- c.errors + 1;
                  c.misses <- c.misses + 1);
              probe rest
        end)
  in
  if Ring.is_empty t.ring then None else probe (owners t key)

(* [gossip_with t ~peer ~body] POSTs our digest and installs the digest
   the peer answers with.  [parse] extracts (node, bloom) from a gossip
   JSON body — supplied by the caller so this module stays JSON-free. *)
let gossip_with t ~peer ~body ~parse =
  match post t ~peer "/gossip" body with
  | Some (200, reply) -> (
      match parse reply with
      | Some (node, bloom) ->
          let node = if node = "" then peer else node in
          update_digest t ~peer:node bloom;
          if node <> peer then update_digest t ~peer bloom;
          record t (fun c -> c.gossip_rounds <- c.gossip_rounds + 1);
          true
      | None -> false)
  | Some _ | None -> false
