(* Cluster node: composes the disk store and the peer client into the
   [Service.Tiered.tier] closures the pool's cache front consumes, and
   owns the background gossip loop that trades Bloom digests of cached
   fingerprints with every configured peer.

   Tier order is decided by the caller (bin/), but the intended stack is
   memory -> disk -> peer: the disk tier survives restarts, the peer
   tier turns a fleet into one warm cache.  A peer-tier hit is promoted
   into the local LRU and disk store by Tiered, so each plan crosses the
   network at most a handful of times cluster-wide. *)

open Service

type t = {
  store : Store.t option;
  peers : Peers.t;
  gossip_interval : float;
  mutable local_keys : unit -> string list;
  stop : bool Atomic.t;
  mutable gossip_thread : Thread.t option;
}

let create ?cache_dir ?(peers = []) ?self ?(gossip_interval = 5.0)
    ?(fetch_timeout = 2.0) () =
  let store = Option.map (fun dir -> Store.open_ ~dir) cache_dir in
  let t =
    {
      store;
      peers = Peers.create ~fetch_timeout ?self ~peers ();
      gossip_interval;
      local_keys =
        (match store with
        | Some s -> fun () -> Store.keys s
        | None -> fun () -> []);
      stop = Atomic.make false;
      gossip_thread = None;
    }
  in
  t

let store t = t.store
let peers t = t.peers
let set_self t addr = Peers.set_self t.peers addr

(* The digest advertises every fingerprint this node can serve from
   /cache — normally LRU keys plus disk keys, installed by the server
   once the pool exists. *)
let set_local_keys t f = t.local_keys <- f

let digest t =
  let keys = t.local_keys () in
  (Bloom.of_keys keys, List.length keys)

(* ------------------------------------------------------------- gossip *)

let digest_json t =
  let bloom, count = digest t in
  Json.to_string
    (Json.Obj
       [
         ( "node",
           Json.Str (match Peers.self t.peers with Some s -> s | None -> "") );
         ("count", Json.Num (float_of_int count));
         ("bloom", Json.Str (Bloom.to_hex bloom));
       ])

let parse_gossip body =
  match Json.parse body with
  | Error _ -> None
  | Ok j -> (
      match j with
      | Json.Obj fields -> (
          let str k =
            match List.assoc_opt k fields with
            | Some (Json.Str s) -> Some s
            | _ -> None
          in
          match str "bloom" with
          | None -> None
          | Some hex -> (
              match Bloom.of_hex hex with
              | None -> None
              | Some bloom ->
                  Some ((match str "node" with Some n -> n | None -> ""), bloom)
              ))
      | _ -> None)

(* Server side of an exchange: install the sender's digest, answer with
   our own.  [None] for a malformed body (the route answers 400). *)
let gossip_receive t body =
  match parse_gossip body with
  | None -> None
  | Some (node, bloom) ->
      if node <> "" then Peers.update_digest t.peers ~peer:node bloom;
      Some (digest_json t)

(* One initiated round: exchange digests with every peer.  Returns how
   many exchanges completed. *)
let gossip_now t =
  let self = Peers.self t.peers in
  List.fold_left
    (fun ok peer ->
      if Some peer = self then ok
      else
        let body = digest_json t in
        if Peers.gossip_with t.peers ~peer ~body ~parse:parse_gossip then
          ok + 1
        else ok)
    0 (Peers.peers t.peers)

let start t =
  if t.gossip_thread = None && Peers.peers t.peers <> [] then
    t.gossip_thread <-
      Some
        (Thread.create
           (fun () ->
             (* Sleep in short slices so stop is honored promptly. *)
             let rec sleep left =
               if left > 0.0 && not (Atomic.get t.stop) then begin
                 Unix.sleepf (Float.min 0.2 left);
                 sleep (left -. 0.2)
               end
             in
             while not (Atomic.get t.stop) do
               (try ignore (gossip_now t) with _ -> ());
               sleep t.gossip_interval
             done)
           ())

(* -------------------------------------------------------------- tiers *)

let disk_tier store =
  {
    Tiered.name = "disk";
    remote = false;
    find = (fun fp -> Option.bind (Store.find store fp) Codec.decode);
    store =
      (fun ~capped fp outcome ->
        Store.add store ~capped fp (Codec.encode outcome));
    bytes = Some (fun () -> float_of_int (Store.bytes store));
  }

let peer_tier peers =
  {
    Tiered.name = "peer";
    remote = true;
    find = (fun fp -> Option.bind (Peers.lookup peers fp) Codec.decode);
    (* Peers own their caches; we never push, promotion pulls. *)
    store = (fun ~capped:_ _ _ -> ());
    bytes = None;
  }

let tiers t =
  let disk = match t.store with Some s -> [ disk_tier s ] | None -> [] in
  let peer =
    if Ring.is_empty (Peers.ring t.peers) then [] else [ peer_tier t.peers ]
  in
  disk @ peer

(* ---------------------------------------------------------- lifecycle *)

let flush t = Option.iter Store.flush t.store

let close t =
  Atomic.set t.stop true;
  (match t.gossip_thread with
  | Some th ->
      Thread.join th;
      t.gossip_thread <- None
  | None -> ());
  Option.iter Store.close t.store
