(* Binary wire/disk form of a Solver.outcome.  One format serves both
   the on-disk segment entries and the GET /cache/<fp> response body, so
   a peer fetch is byte-identical to a local disk read.  Floats travel
   as IEEE-754 bit patterns (exact round-trip — cache identity must not
   depend on decimal printing), everything big-endian, versioned by the
   leading magic.  [decode] never raises: any malformed, truncated or
   future-versioned payload is [None], which the cache layers read as a
   miss. *)

open Etransform

let magic = "ETP1"

let status_code = function
  | Lp.Status.Optimal -> 0
  | Lp.Status.Infeasible -> 1
  | Lp.Status.Unbounded -> 2
  | Lp.Status.Iteration_limit -> 3
  | Lp.Status.Node_limit -> 4
  | Lp.Status.Time_limit -> 5
  | Lp.Status.Feasible -> 6

let status_of_code = function
  | 0 -> Some Lp.Status.Optimal
  | 1 -> Some Lp.Status.Infeasible
  | 2 -> Some Lp.Status.Unbounded
  | 3 -> Some Lp.Status.Iteration_limit
  | 4 -> Some Lp.Status.Node_limit
  | 5 -> Some Lp.Status.Time_limit
  | 6 -> Some Lp.Status.Feasible
  | _ -> None

let encode (o : Solver.outcome) =
  let buf = Buffer.create 1024 in
  let u8 v = Buffer.add_uint8 buf v in
  let i32 v = Buffer.add_int32_be buf (Int32.of_int v) in
  let i64 v = Buffer.add_int64_be buf (Int64.of_int v) in
  let f64 v = Buffer.add_int64_be buf (Int64.bits_of_float v) in
  let int_array a =
    i32 (Array.length a);
    Array.iter i32 a
  in
  let float_array a =
    i32 (Array.length a);
    Array.iter f64 a
  in
  Buffer.add_string buf magic;
  u8 (status_code o.Solver.milp_status);
  f64 o.Solver.milp_gap;
  i64 o.Solver.nodes;
  i64 o.Solver.lp_iterations;
  i64 o.Solver.local_moves;
  let p = o.Solver.placement in
  int_array p.Placement.primary;
  (match p.Placement.secondary with
  | None -> u8 0
  | Some s ->
      u8 1;
      int_array s);
  u8 (if p.Placement.dedicated_backups then 1 else 0);
  let s = o.Solver.summary in
  let c = s.Evaluate.cost in
  f64 c.Evaluate.space;
  f64 c.Evaluate.wan;
  f64 c.Evaluate.power;
  f64 c.Evaluate.labor;
  f64 c.Evaluate.fixed;
  f64 c.Evaluate.latency_penalty;
  f64 c.Evaluate.backup_capex;
  f64 c.Evaluate.backup_ops;
  i32 s.Evaluate.violations;
  i32 s.Evaluate.dcs_used;
  int_array s.Evaluate.servers;
  float_array s.Evaluate.backups;
  Buffer.contents buf

(* Array lengths are bounded before allocation so a corrupt length field
   cannot ask for gigabytes. *)
let max_array = 1 lsl 22

exception Bad

let decode s =
  let pos = ref 0 in
  let need n = if !pos + n > String.length s then raise Bad in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let i64 () =
    need 8;
    let v = String.get_int64_be s !pos in
    pos := !pos + 8;
    v
  in
  let i32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_be s !pos) in
    pos := !pos + 4;
    v
  in
  let f64 () = Int64.float_of_bits (i64 ()) in
  let len () =
    let n = i32 () in
    if n < 0 || n > max_array then raise Bad;
    n
  in
  let int_array () = Array.init (len ()) (fun _ -> i32 ()) in
  let float_array () = Array.init (len ()) (fun _ -> f64 ()) in
  try
    need 4;
    if String.sub s 0 4 <> magic then raise Bad;
    pos := 4;
    let milp_status =
      match status_of_code (u8 ()) with Some st -> st | None -> raise Bad
    in
    let milp_gap = f64 () in
    let nodes = Int64.to_int (i64 ()) in
    let lp_iterations = Int64.to_int (i64 ()) in
    let local_moves = Int64.to_int (i64 ()) in
    let primary = int_array () in
    let secondary = if u8 () = 1 then Some (int_array ()) else None in
    let dedicated_backups = u8 () = 1 in
    let space = f64 () in
    let wan = f64 () in
    let power = f64 () in
    let labor = f64 () in
    let fixed = f64 () in
    let latency_penalty = f64 () in
    let backup_capex = f64 () in
    let backup_ops = f64 () in
    let violations = i32 () in
    let dcs_used = i32 () in
    let servers = int_array () in
    let backups = float_array () in
    if !pos <> String.length s then raise Bad;
    Some
      {
        Solver.placement =
          { Placement.primary; secondary; dedicated_backups };
        summary =
          {
            Evaluate.cost =
              {
                Evaluate.space;
                wan;
                power;
                labor;
                fixed;
                latency_penalty;
                backup_capex;
                backup_ops;
              };
            violations;
            dcs_used;
            servers;
            backups;
          };
        milp_status;
        milp_gap;
        nodes;
        lp_iterations;
        local_moves;
      }
  with Bad | Invalid_argument _ -> None
