(** Bloom-filter cache digest, the unit of gossip: a compact summary of
    the fingerprints a node holds (memory + disk tiers).  Peers consult
    the last digest gossiped by a candidate node before issuing a remote
    cache fetch — a negative answer is definitive (no false negatives),
    a positive one is probably right (false positives just waste one
    HTTP roundtrip). *)

type t

(** [create ()] — [bits] (default 16384, clamped to [64 .. 2^24]) and
    [hashes] (default 4, clamped to [1 .. 16]). *)
val create : ?bits:int -> ?hashes:int -> unit -> t

val bits : t -> int
val hashes : t -> int

(** Keys inserted so far (an upper bound on distinct keys). *)
val count : t -> int

val add : t -> string -> unit
val mem : t -> string -> bool
val of_keys : ?bits:int -> ?hashes:int -> string list -> t

(** Printable wire form ["v1:<bits>:<hashes>:<count>:<hex>"], safe inside
    a JSON string.  {!of_hex} refuses malformed or oversized input with
    [None] — gossip from a confused peer must never raise. *)
val to_hex : t -> string

val of_hex : string -> t option
