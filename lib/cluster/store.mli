(** Crash-safe on-disk plan store: an append-only segment file of
    checksummed entries plus an in-memory index (snapshotted on
    {!flush} for fast clean restarts).

    Durability model — every write is a single append, so the only
    crash artifact is a torn tail, which the startup scan truncates;
    a checksum failure on read drops that entry and reports a miss.
    Corruption can lose entries, never return wrong bytes or raise.
    Superseded duplicates are reclaimed by a startup compaction once
    dead bytes outgrow the live data. *)

type t

(** Opens (creating if needed) the store rooted at [dir].  Validates
    the segment — via the index snapshot when it matches the file
    size exactly, else a full checksumming scan — truncating any torn
    tail and compacting when warranted. *)
val open_ : dir:string -> t

(** Returns the stored value, or [None] on a miss {e or} on checksum
    failure (the corrupt entry is dropped and counted). *)
val find : t -> string -> string option

(** Appends [key -> value].  [~capped:true] marks a deadline-capped
    solve and is refused outright — mirroring the service-layer rule
    that budget-capped outcomes never enter any cache tier (a capped
    plan persisted under a deadline-free fingerprint would poison
    every future full-budget job on this node and its peers). *)
val add : t -> ?capped:bool -> string -> string -> unit

val mem : t -> string -> bool
val keys : t -> string list

(** Live entry count. *)
val length : t -> int

(** Logical segment size in bytes (live + dead). *)
val bytes : t -> int

(** Bytes held by superseded or dropped entries. *)
val dead_bytes : t -> int

(** Entries rejected by a checksum since [open_]. *)
val corrupt : t -> int

val dir : t -> string

(** fsyncs the segment and atomically rewrites the index snapshot. *)
val flush : t -> unit

(** {!flush} then close; further [find]s miss, [add]s are dropped. *)
val close : t -> unit
