(* Consistent hashing over the peer set: each peer owns [vnodes] points
   on a 63-bit ring (MD5 of "peer#i"), a key maps to the first point at
   or after its own hash.  Adding or removing one peer moves only the
   keys in that peer's arcs — the reason a fleet can roll nodes without
   re-warming every cache.  Everything is immutable after [create]. *)

type t = {
  peers : string array;          (* distinct, creation order *)
  points : (int * int) array;    (* (ring position, peer index), sorted *)
}

let hash_of s =
  let d = Stdlib.Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let default_vnodes = 64

let create ?(vnodes = default_vnodes) peers =
  let vnodes = max 1 vnodes in
  let peers =
    let seen = Hashtbl.create 8 in
    Array.of_list
      (List.filter
         (fun p ->
           if p = "" || Hashtbl.mem seen p then false
           else begin
             Hashtbl.add seen p ();
             true
           end)
         peers)
  in
  let points =
    Array.init
      (Array.length peers * vnodes)
      (fun i ->
        let peer = i / vnodes and v = i mod vnodes in
        (hash_of (Printf.sprintf "%s#%d" peers.(peer) v), peer))
  in
  Array.sort compare points;
  { peers; points }

let peers t = Array.to_list t.peers
let is_empty t = Array.length t.peers = 0

(* First point with position >= h, wrapping. *)
let successor t h =
  let n = Array.length t.points in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let lookup ?(n = 1) t key =
  let np = Array.length t.peers in
  if np = 0 || n <= 0 then []
  else begin
    let want = min n np in
    let start = successor t (hash_of key) in
    let total = Array.length t.points in
    let seen = Array.make np false in
    let acc = ref [] and found = ref 0 and i = ref 0 in
    while !found < want && !i < total do
      let _, peer = t.points.((start + !i) mod total) in
      if not seen.(peer) then begin
        seen.(peer) <- true;
        acc := t.peers.(peer) :: !acc;
        incr found
      end;
      incr i
    done;
    List.rev !acc
  end
