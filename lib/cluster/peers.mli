(** Remote cache tier: probe the consistent-hash owners of a job
    fingerprint for its encoded plan ([GET /cache/<fp>]), gated by the
    Bloom digests learned through gossip.  All transport is blocking
    with hard timeouts; every failure mode degrades to a miss — a slow
    or dead peer must never stall a solver worker. *)

type t

(** [create ~peers ()] builds the ring over the [--peers] list.
    [fetch_timeout] (default 2s) bounds connect/send/receive on every
    probe; [self] is this node's own advertised ["host:port"], excluded
    from probe candidates (settable later via {!set_self} once an
    ephemeral port is known). *)
val create : ?fetch_timeout:float -> ?self:string -> peers:string list -> unit -> t

val set_self : t -> string -> unit
val self : t -> string option
val peers : t -> string list
val ring : t -> Ring.t

(** Best-first ring owners for [key], excluding self (up to 2). *)
val owners : t -> string -> string list

(** [lookup t fingerprint] probes the owners in ring order and returns
    the first 200 body (the {!Codec}-encoded plan) — [None] when every
    candidate is skipped by its digest, answers a miss, or fails. *)
val lookup : t -> string -> string option

(** Install the digest most recently gossiped by [peer]. *)
val update_digest : t -> peer:string -> Bloom.t -> unit

val digest_of : t -> string -> Bloom.t option

(** [gossip_with t ~peer ~body ~parse] POSTs [body] to the peer's
    [/gossip] endpoint and installs the digest parsed (by [parse],
    keeping this module JSON-free) from the reply.  [true] on a
    completed exchange. *)
val gossip_with :
  t ->
  peer:string ->
  body:string ->
  parse:(string -> (string * Bloom.t) option) ->
  bool

(** [(probes, hits, misses, skips, errors, gossip_rounds)] since create. *)
val counters : t -> int * int * int * int * int * int
