(** A cluster node: the disk plan store plus the peer client, packaged
    as {!Service.Tiered.tier} closures for the pool's cache front, with
    a background gossip loop trading Bloom digests of cached
    fingerprints between peers. *)

type t

(** [create ()] with neither [cache_dir] nor [peers] yields a node with
    no extra tiers (pure in-memory behavior).  [cache_dir] opens (or
    recovers) the on-disk store there; [peers] is the ["host:port"]
    list forming the consistent-hash ring; [self] is this node's own
    advertised address (excluded from probes — see {!set_self});
    [gossip_interval] (default 5s) paces the background digest
    exchange; [fetch_timeout] (default 2s) bounds every peer probe. *)
val create :
  ?cache_dir:string ->
  ?peers:string list ->
  ?self:string ->
  ?gossip_interval:float ->
  ?fetch_timeout:float ->
  unit ->
  t

(** The tiers to pass to [Service.Pool.create ~tiers]: disk first (when
    configured), then peer.  Order is lookup order after the LRU. *)
val tiers : t -> Service.Tiered.tier list

val store : t -> Store.t option
val peers : t -> Peers.t

(** Set the advertised ["host:port"] once the ephemeral port is known. *)
val set_self : t -> string -> unit

(** Install the provider of this node's cached fingerprints (typically
    LRU keys plus disk keys) used to build the gossip digest. *)
val set_local_keys : t -> (unit -> string list) -> unit

(** Current digest and key count. *)
val digest : t -> Bloom.t * int

(** The gossip body this node sends:
    [{"node":"host:port","count":N,"bloom":"v1:..."}]. *)
val digest_json : t -> string

(** Server side of an exchange: install the sender's digest and return
    our own gossip body — [None] when the request body is malformed. *)
val gossip_receive : t -> string -> string option

(** One synchronous round with every peer; returns completed exchanges. *)
val gossip_now : t -> int

(** Start the background gossip thread (no-op without peers). *)
val start : t -> unit

(** Flush the disk store (fsync + index snapshot). *)
val flush : t -> unit

(** Stop gossip, flush and close the store.  Idempotent. *)
val close : t -> unit
