(* Crash-safe on-disk plan store: one append-only segment file plus an
   in-memory index, with an index snapshot written on flush/close so a
   clean restart skips the full scan.

   Segment layout — a sequence of self-checking entries:

     "PS" | key_len u16 | val_len u32 | md5(key ^ value) 16B | key | value

   Every mutation is a single append; existing bytes are never
   rewritten, so the only possible corruption from a crash is a torn
   tail.  Recovery is therefore local: the startup scan verifies entries
   in order and truncates the file at the first bad one, and a read that
   fails its checksum (bit rot under a trusted index snapshot) simply
   drops the entry and reports a miss.  Corruption can cost entries —
   it can never produce a wrong plan or an exception.

   Duplicate keys are supersedes (last write wins — entries are
   content-addressed, so duplicates are byte-equal anyway); the dead
   bytes they leave behind are reclaimed by a startup compaction when
   they outgrow the live data.

   Deadline-capped solves are refused right here ([~capped:true]), not
   only in the service layer above: a capped Time_limit plan under a
   fingerprint that excludes the deadline would outlive the process and
   poison every future full-budget job on this node and its peers. *)

let segment_name = "plans.seg"
let index_name = "plans.idx"
let index_magic = "etransform-plans v1"

let header_len = 24
let max_key = 0xffff
let max_value = 1 lsl 26

type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  mutable size : int;                       (* logical end of valid data *)
  index : (string, int * int * int) Hashtbl.t;  (* key -> off, klen, vlen *)
  mutable dead : int;     (* bytes of superseded / dropped entries *)
  mutable corrupt : int;  (* entries rejected by a checksum since open *)
  mutable closed : bool;
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_size klen vlen = header_len + klen + vlen

(* ------------------------------------------------------------- raw io *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd b off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
    end
  in
  go off len

let pread fd ~off ~len =
  let b = Bytes.create len in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go have =
    if have < len then
      let n = Unix.read fd b have (len - have) in
      if n = 0 then raise Exit else go (have + n)
  in
  go 0;
  b

let u16_get b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let u32_get b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let render_entry key value =
  let klen = String.length key and vlen = String.length value in
  let b = Bytes.create (entry_size klen vlen) in
  Bytes.set b 0 'P';
  Bytes.set b 1 'S';
  Bytes.set b 2 (Char.chr (klen lsr 8));
  Bytes.set b 3 (Char.chr (klen land 0xff));
  Bytes.set b 4 (Char.chr ((vlen lsr 24) land 0xff));
  Bytes.set b 5 (Char.chr ((vlen lsr 16) land 0xff));
  Bytes.set b 6 (Char.chr ((vlen lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (vlen land 0xff));
  Bytes.blit_string (Stdlib.Digest.string (key ^ value)) 0 b 8 16;
  Bytes.blit_string key 0 b header_len klen;
  Bytes.blit_string value 0 b (header_len + klen) vlen;
  b

(* ------------------------------------------------------------ startup *)

(* Full scan: validate every entry in order, stop at the first torn or
   corrupt one and truncate there.  Returns the logical size. *)
let scan_segment fd file_size index =
  let dead = ref 0 in
  let buf = ref Bytes.empty in
  let off = ref 0 in
  let stop = ref false in
  while not !stop && !off + header_len <= file_size do
    match
      let head = pread fd ~off:!off ~len:header_len in
      if Bytes.get head 0 <> 'P' || Bytes.get head 1 <> 'S' then None
      else
        let klen = u16_get head 2 and vlen = u32_get head 4 in
        if
          klen = 0 || klen > max_key || vlen < 0 || vlen > max_value
          || !off + entry_size klen vlen > file_size
        then None
        else begin
          if Bytes.length !buf < klen + vlen then
            buf := Bytes.create (max 4096 (klen + vlen));
          let body = pread fd ~off:(!off + header_len) ~len:(klen + vlen) in
          let payload = Bytes.sub_string body 0 (klen + vlen) in
          if Stdlib.Digest.string payload <> Bytes.sub_string head 8 16 then
            None
          else Some (Bytes.sub_string body 0 klen, klen, vlen)
        end
    with
    | Some (key, klen, vlen) ->
        (match Hashtbl.find_opt index key with
        | Some (_, k0, v0) -> dead := !dead + entry_size k0 v0
        | None -> ());
        Hashtbl.replace index key (!off, klen, vlen);
        off := !off + entry_size klen vlen
    | None -> stop := true
    | exception Exit -> stop := true
  done;
  (!off, !dead)

let index_path dir = Filename.concat dir index_name
let segment_path dir = Filename.concat dir segment_name

let hex_of s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n land 1 = 1 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Some (Bytes.to_string b)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> None
    in
    go 0

(* Index snapshot: trusted only when its recorded segment size matches
   the file exactly — any crash after the snapshot grows or tears the
   segment, which forces the full scan instead.  A snapshot never skips
   checksum verification on reads, so trusting a stale-but-size-matching
   snapshot can only cause misses. *)
let try_load_index path file_size index =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | header -> (
              match String.split_on_char ' ' header with
              | [ m1; m2; size; entries ]
                when m1 ^ " " ^ m2 = index_magic
                     && int_of_string_opt size = Some file_size -> (
                  match int_of_string_opt entries with
                  | None -> None
                  | Some entries -> (
                      let live = ref 0 in
                      let rec go k =
                        if k = 0 then true
                        else
                          match input_line ic with
                          | exception End_of_file -> false
                          | line -> (
                              match String.split_on_char ' ' line with
                              | [ hkey; off; klen; vlen ] -> (
                                  match
                                    ( of_hex hkey,
                                      int_of_string_opt off,
                                      int_of_string_opt klen,
                                      int_of_string_opt vlen )
                                  with
                                  | Some key, Some off, Some klen, Some vlen
                                    when off >= 0 && klen > 0 && vlen >= 0
                                         && off + entry_size klen vlen
                                            <= file_size
                                         && String.length key = klen ->
                                      Hashtbl.replace index key
                                        (off, klen, vlen);
                                      live := !live + entry_size klen vlen;
                                      go (k - 1)
                                  | _ -> false)
                              | _ -> false)
                      in
                      if go entries && Hashtbl.length index = entries then
                        Some (file_size, max 0 (file_size - !live))
                      else begin
                        Hashtbl.reset index;
                        None
                      end))
              | _ -> None))

let write_index_snapshot t =
  let tmp = index_path t.dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s %d %d\n" index_magic t.size (Hashtbl.length t.index);
     Hashtbl.iter
       (fun key (off, klen, vlen) ->
         Printf.fprintf oc "%s %d %d %d\n" (hex_of key) off klen vlen)
       t.index;
     close_out oc;
     Sys.rename tmp (index_path t.dir)
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn)

(* Rewrite only the live entries into a fresh segment and swap it in
   atomically.  Runs at open time, before any reader exists. *)
let compact_segment dir fd index =
  let tmp = segment_path dir ^ ".tmp" in
  let out =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let entries =
    Hashtbl.fold (fun key loc acc -> (key, loc) :: acc) index []
  in
  (* Stable layout: live entries in their original append order. *)
  let entries =
    List.sort (fun (_, (o1, _, _)) (_, (o2, _, _)) -> compare o1 o2) entries
  in
  let size = ref 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close out with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun (key, (off, klen, vlen)) ->
          let body =
            pread fd ~off:(off + header_len) ~len:(klen + vlen)
          in
          let value = Bytes.sub_string body klen vlen in
          let entry = render_entry key value in
          write_all out entry 0 (Bytes.length entry);
          Hashtbl.replace index key (!size, klen, vlen);
          size := !size + Bytes.length entry)
        entries;
      Unix.fsync out);
  Unix.close fd;
  Sys.rename tmp (segment_path dir);
  let fd =
    Unix.openfile (segment_path dir) [ Unix.O_RDWR ] 0o644
  in
  (fd, !size)

let open_ ~dir =
  mkdir_p dir;
  let seg = segment_path dir in
  let fd = Unix.openfile seg [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let file_size = (Unix.fstat fd).Unix.st_size in
  let index = Hashtbl.create 64 in
  let size, dead =
    match try_load_index (index_path dir) file_size index with
    | Some (size, dead) -> (size, dead)
    | None ->
        let size, dead = scan_segment fd file_size index in
        if size < file_size then Unix.ftruncate fd size;
        (size, dead)
  in
  let fd, size, dead =
    if dead > 4096 && dead * 2 > size then
      let fd, size = compact_segment dir fd index in
      (fd, size, 0)
    else (fd, size, dead)
  in
  {
    dir;
    fd;
    size;
    index;
    dead;
    corrupt = 0;
    closed = false;
    lock = Mutex.create ();
  }

(* ------------------------------------------------------------- access *)

let length t = with_lock t (fun () -> Hashtbl.length t.index)
let bytes t = with_lock t (fun () -> t.size)
let dead_bytes t = with_lock t (fun () -> t.dead)
let corrupt t = with_lock t (fun () -> t.corrupt)
let dir t = t.dir

let keys t =
  with_lock t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.index [])

let mem t key = with_lock t (fun () -> Hashtbl.mem t.index key)

let find t key =
  with_lock t (fun () ->
      if t.closed then None
      else
        match Hashtbl.find_opt t.index key with
        | None -> None
        | Some (off, klen, vlen) -> (
            match pread t.fd ~off ~len:(entry_size klen vlen) with
            | exception (Exit | Unix.Unix_error _) ->
                Hashtbl.remove t.index key;
                t.corrupt <- t.corrupt + 1;
                t.dead <- t.dead + entry_size klen vlen;
                None
            | b ->
                let stored_key = Bytes.sub_string b header_len klen in
                let value = Bytes.sub_string b (header_len + klen) vlen in
                if
                  Bytes.get b 0 = 'P' && Bytes.get b 1 = 'S'
                  && u16_get b 2 = klen && u32_get b 4 = vlen
                  && stored_key = key
                  && Stdlib.Digest.string (key ^ value)
                     = Bytes.sub_string b 8 16
                then Some value
                else begin
                  (* Checksum failure: drop the entry, report a miss.  The
                     segment itself is left alone — the entry's bytes are
                     already unreachable. *)
                  Hashtbl.remove t.index key;
                  t.corrupt <- t.corrupt + 1;
                  t.dead <- t.dead + entry_size klen vlen;
                  None
                end))

let add t ?(capped = false) key value =
  if capped then ()
  else if key = "" || String.length key > max_key then
    invalid_arg "Cluster.Store.add: bad key length"
  else if String.length value > max_value then
    invalid_arg "Cluster.Store.add: value too large"
  else
    with_lock t (fun () ->
        if not t.closed then begin
          let entry = render_entry key value in
          ignore (Unix.lseek t.fd t.size Unix.SEEK_SET);
          write_all t.fd entry 0 (Bytes.length entry);
          (match Hashtbl.find_opt t.index key with
          | Some (_, k0, v0) -> t.dead <- t.dead + entry_size k0 v0
          | None -> ());
          Hashtbl.replace t.index key
            (t.size, String.length key, String.length value);
          t.size <- t.size + Bytes.length entry
        end)

let flush t =
  with_lock t (fun () ->
      if not t.closed then begin
        Unix.fsync t.fd;
        write_index_snapshot t
      end)

let close t =
  flush t;
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)
