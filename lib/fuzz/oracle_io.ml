(* IO fault injection over the HTTP stack.

   Conn-level oracles drive [Server.Http] through the injectable byte
   source ({!Server.Http.conn_of_source}), replaying recorded request
   bytes under adversarial delivery: randomized read boundaries
   (EAGAIN-style short reads), mid-stream EOF (torn writes /
   truncation), and byte-level corruption.  The laws: slicing never
   changes what is parsed; truncation yields a clean prefix plus a
   clean stop (EOF, 400 or 413 — never a hang or a stray exception);
   corruption never escapes the [Bad_request]/[Payload_too_large]
   error surface.

   The daemon-level oracle then replays mutated requests against a real
   listening [Server.Daemon] and requires an HTTP error status or a
   clean close — and that the server still answers a well-formed
   request afterwards. *)

open Check

let failf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------- request corpus *)

type body_spec =
  | No_body
  | Fixed of string
  | Chunked of {
      chunks : (string * string) list;  (* data, extension suffix *)
      trailers : string list;
    }

type req_spec = {
  meth : string;
  target : string;
  extra_headers : (string * string) list;
  body : body_spec;
}

type io_case = {
  reqs : req_spec list;  (* pipelined on one connection, keep-alive *)
  slices : int list;     (* read sizes the fault source serves *)
  cut : int;             (* 0..1000, scaled to the byte length *)
}

let render_req r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" r.meth r.target);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    r.extra_headers;
  (match r.body with
  | No_body -> Buffer.add_string buf "\r\n"
  | Fixed s ->
      Buffer.add_string buf
        (Printf.sprintf "Content-Length: %d\r\n\r\n%s" (String.length s) s)
  | Chunked { chunks; trailers } ->
      Buffer.add_string buf "Transfer-Encoding: chunked\r\n\r\n";
      List.iter
        (fun (data, ext) ->
          Buffer.add_string buf
            (Printf.sprintf "%x%s\r\n%s\r\n" (String.length data) ext data))
        chunks;
      Buffer.add_string buf "0\r\n";
      List.iter (fun t -> Buffer.add_string buf (t ^ "\r\n")) trailers;
      Buffer.add_string buf "\r\n");
  Buffer.contents buf

let render_case c = String.concat "" (List.map render_req c.reqs)

let pp_io_case ppf c =
  Format.fprintf ppf "slices=[%s] cut=%d/1000 bytes=%S"
    (String.concat ";" (List.map string_of_int c.slices))
    c.cut (render_case c)

let gen_body_text : string Gen.t =
  Gen.string_of ~max:30
    (Gen.frequency
       [ (6, Gen.char_range ' ' '~'); (1, Gen.return '\n'); (1, Gen.return '{') ])

let gen_body : body_spec Gen.t =
  Gen.frequency
    [
      (1, Gen.return No_body);
      (2, Gen.map (fun s -> Fixed s) gen_body_text);
      ( 2,
        fun rng ->
          let chunks =
            Gen.list ~max:3
              (Gen.pair gen_body_text
                 (Gen.choose [ ""; ";x=1"; ";charlie" ]))
              rng
          in
          let trailers =
            Gen.list ~max:2 (Gen.choose [ "X-Trailer: t"; "X-Sum: 0" ]) rng
          in
          Chunked { chunks; trailers } );
    ]

let gen_req : req_spec Gen.t =
 fun rng ->
  let meth = Gen.choose [ "GET"; "POST"; "HEAD"; "PUT" ] rng in
  let target = Gen.choose [ "/"; "/solve"; "/batch?limit=2"; "/a/b%20c" ] rng in
  let extra_headers =
    Gen.list ~max:3
      (Gen.choose
         [ ("Host", "h"); ("Accept", "*/*"); ("X-Pad", String.make 20 'p') ])
      rng
  in
  let body = gen_body rng in
  { meth; target; extra_headers; body }

let gen_io_case : io_case Gen.t =
 fun rng ->
  {
    reqs = (fun rng -> gen_req rng :: Gen.list ~max:1 gen_req rng) rng;
    slices = Gen.list ~max:40 (Gen.int_range 1 7) rng;
    cut = Gen.int_range 0 1000 rng;
  }

let shrink_io_case c =
  let cands = ref [] in
  (match c.reqs with
  | _ :: (_ :: _ as rest) -> cands := { c with reqs = rest } :: !cands
  | [ r ] when r.body <> No_body ->
      cands := { c with reqs = [ { r with body = No_body } ] } :: !cands
  | _ -> ());
  if c.slices <> [] then cands := { c with slices = [] } :: !cands;
  if c.cut <> 1000 then cands := { c with cut = 1000 } :: !cands;
  List.to_seq !cands

let arb_io_case = Check.arb ~pp:pp_io_case ~shrink:shrink_io_case gen_io_case

(* ------------------------------------------------ fault byte sources *)

(* Serve [s] (up to [limit] bytes) in reads whose sizes walk [slices]
   (default 4096 once the list runs dry).  Never returns more than
   asked; 0 only at the end — exactly a slow or torn socket. *)
let source_of_string ?(slices = []) ?limit s =
  let limit = match limit with None -> String.length s | Some l -> l in
  let pos = ref 0 and plan = ref slices in
  fun buf off len ->
    let want = match !plan with [] -> 4096 | w :: rest -> plan := rest; w in
    let n = min (min want len) (limit - !pos) in
    if n <= 0 then 0
    else begin
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n
    end

(* ----------------------------------------------- reference parse loop *)

type stop = Eof | Bad | Too_large

type summary = {
  s_meth : string;
  s_path : string;
  s_query : string;
  s_headers : (string * string) list;
  s_body : string;
}

exception Unexpected of string

(* Parse requests until the stream stops; never raises (anything the
   HTTP layer is allowed to throw is folded into [stop], anything else
   is an oracle failure wrapped as [Unexpected]). *)
let parse_all ?limits source =
  let conn = Server.Http.conn_of_source ?limits source in
  let acc = ref [] in
  let rec go budget =
    if budget = 0 then raise (Unexpected "parse loop did not terminate")
    else
      match Server.Http.read_request conn with
      | None -> Eof
      | Some req ->
          let body = Server.Http.body_of_request conn req in
          let data = Server.Http.read_all body in
          let meth =
            match req.Server.Http.meth with
            | Server.Http.GET -> "GET"
            | Server.Http.POST -> "POST"
            | Server.Http.HEAD -> "HEAD"
            | Server.Http.Other m -> m
          in
          acc :=
            {
              s_meth = meth;
              s_path = req.Server.Http.path;
              s_query = req.Server.Http.query;
              s_headers = req.Server.Http.headers;
              s_body = data;
            }
            :: !acc;
          go (budget - 1)
  in
  let stop =
    match go 64 with
    | stop -> stop
    | exception Server.Http.Bad_request _ -> Bad
    | exception Server.Http.Payload_too_large -> Too_large
    | exception (Unexpected _ as e) -> raise e
    | exception e -> raise (Unexpected (Printexc.to_string e))
  in
  (List.rev !acc, stop)

let pp_stop = function Eof -> "eof" | Bad -> "400" | Too_large -> "413"

(* --------------------------------------------------- slice replay law *)

let http_slice c =
  let text = render_case c in
  match
    ( parse_all (source_of_string text),
      parse_all (source_of_string ~slices:c.slices text) )
  with
  | exception Unexpected e -> failf "escaped the error surface: %s" e
  | (ref_reqs, ref_stop), (sliced_reqs, sliced_stop) ->
      if ref_stop <> sliced_stop then
        failf "stop changed under slicing: whole=%s sliced=%s"
          (pp_stop ref_stop) (pp_stop sliced_stop)
      else if ref_reqs <> sliced_reqs then
        failf "parsed %d requests whole, %d sliced (first divergence: %s)"
          (List.length ref_reqs) (List.length sliced_reqs)
          (match
             List.find_opt
               (fun (a, b) -> a <> b)
               (List.combine ref_reqs sliced_reqs)
           with
          | Some (a, b) -> Printf.sprintf "%s vs %s" a.s_body b.s_body
          | None -> "length mismatch")
      else Ok ()

(* ---------------------------------------------------- truncation law *)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _, [] -> false

let http_truncation c =
  let text = render_case c in
  let len = String.length text in
  let cut = c.cut * len / 1000 in
  match
    ( parse_all (source_of_string text),
      parse_all (source_of_string ~slices:c.slices ~limit:cut text) )
  with
  | exception Unexpected e -> failf "escaped the error surface: %s" e
  | (ref_reqs, ref_stop), (got_reqs, got_stop) ->
      if cut >= len then
        if got_reqs = ref_reqs && got_stop = ref_stop then Ok ()
        else failf "uncut replay diverged from reference"
      else if not (is_prefix got_reqs ref_reqs) then
        failf "truncated stream parsed requests the full stream does not have"
      else (
        match got_stop with
        | Eof | Bad | Too_large -> Ok ())

(* ---------------------------------------------------- corruption law *)

(* Random byte-level damage: overwrite a byte, insert garbage, or
   prepend a rogue line.  The parser owes no particular answer, only
   termination inside its declared error surface. *)
type mutation = Flip of int * char | Insert of int * string | Prepend of string

type corrupt_case = { base : io_case; mutation : mutation }

let apply_mutation text = function
  | Flip (pos, ch) ->
      let b = Bytes.of_string text in
      if Bytes.length b = 0 then text
      else begin
        Bytes.set b (pos mod Bytes.length b) ch;
        Bytes.to_string b
      end
  | Insert (pos, s) ->
      let n = String.length text in
      let i = if n = 0 then 0 else pos mod n in
      String.sub text 0 i ^ s ^ String.sub text i (n - i)
  | Prepend s -> s ^ text

let gen_mutation : mutation Gen.t =
  Gen.oneof
    [
      (fun rng ->
        Flip (Gen.int_range 0 9999 rng, Gen.char_range '\x00' '\xff' rng));
      (fun rng ->
        Insert
          ( Gen.int_range 0 9999 rng,
            Gen.choose
              [ "\r\n"; "\x00\x00"; "999999999999"; "Transfer-Encoding: x\r\n" ]
              rng ));
      Gen.map
        (fun s -> Prepend s)
        (Gen.choose
           [ "not http\r\n"; "GET\r\n"; String.make 300 'A' ^ "\r\n"; "\r\n" ]);
    ]

let gen_corrupt : corrupt_case Gen.t =
  Gen.map2 (fun base mutation -> { base; mutation }) gen_io_case gen_mutation

let pp_corrupt ppf c =
  Format.fprintf ppf "bytes=%S"
    (apply_mutation (render_case c.base) c.mutation)

let arb_corrupt =
  Check.arb ~pp:pp_corrupt
    ~shrink:(fun c ->
      Seq.map (fun base -> { c with base }) (shrink_io_case c.base))
    gen_corrupt

(* Small limits so generated damage can actually reach the limit
   paths. *)
let tight_limits =
  { Server.Http.max_request_line = 256; max_headers = 16; max_body = 4096 }

let http_corruption c =
  let text = apply_mutation (render_case c.base) c.mutation in
  match
    parse_all ~limits:tight_limits
      (source_of_string ~slices:c.base.slices text)
  with
  | exception Unexpected e -> failf "escaped the error surface: %s" e
  | _reqs, (Eof | Bad | Too_large) -> Ok ()

(* ------------------------------------------------- daemon-level oracle *)

(* One live server per case; each case fires a handful of mutated
   requests at it and finally proves a clean request still succeeds.
   Low case counts — this is end-to-end. *)

type daemon_case = { shots : (int * mutation) list }  (* base idx, damage *)

let job_line =
  {|{"id":"f","estate":{"kind":"line","n_groups":10,"penalty":0},"milp":{"nodes":2,"time":20}}|}

let daemon_bases =
  [|
    "GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n";
    Printf.sprintf
      "POST /solve HTTP/1.1\r\nHost: h\r\nContent-Length: %d\r\n\r\n%s"
      (String.length job_line) job_line;
    Printf.sprintf
      "POST /batch HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n%x\r\n%s\r\n0\r\n\r\n"
      (String.length job_line) job_line;
    "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n";
  |]

let gen_daemon_case : daemon_case Gen.t =
  Gen.map
    (fun shots -> { shots })
    (Gen.list ~max:6
       (Gen.pair (Gen.int_range 0 (Array.length daemon_bases - 1)) gen_mutation))

let pp_daemon_case ppf c =
  Format.fprintf ppf "%d shots:" (List.length c.shots);
  List.iter
    (fun (i, m) ->
      Format.fprintf ppf "@ %S" (apply_mutation daemon_bases.(i) m))
    c.shots

let arb_daemon_case =
  Check.arb ~pp:pp_daemon_case
    ~shrink:(fun c -> Shrink.list c.shots |> Seq.map (fun shots -> { shots }))
    gen_daemon_case

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  fd

(* First response status on [fd], or [None] on a clean close before any
   status line. *)
let response_status fd =
  let buf = Buffer.create 64 in
  let b = Bytes.create 256 in
  let rec line () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i -> Some (String.trim (String.sub (Buffer.contents buf) 0 i))
    | None ->
        let n = try Unix.read fd b 0 256 with Unix.Unix_error _ -> 0 in
        if n = 0 then
          if Buffer.length buf = 0 then None
          else Some (String.trim (Buffer.contents buf))
        else begin
          Buffer.add_subbytes buf b 0 n;
          line ()
        end
  in
  match line () with
  | None -> None
  | Some l -> (
      match String.split_on_char ' ' l with
      | _ :: code :: _ -> int_of_string_opt code
      | _ -> Some (-1))

let acceptable = [ 200; 400; 404; 405; 408; 413; 500; 503 ]

let fire port text =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (* The server may slam the door mid-write on garbage — EPIPE and
         ECONNRESET are clean closes, not failures. *)
      (match write_all fd text with
      | () -> ( try Unix.shutdown fd Unix.SHUTDOWN_SEND with _ -> ())
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      response_status fd)

let daemon_fault c =
  let previous = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.signal Sys.sigpipe previous))
    (fun () ->
      Service.Pool.with_pool ~workers:0 ~queue_capacity:16 (fun pool ->
          let server =
            Server.Daemon.create ~port:0 ~drain_timeout:5.0
              ~limits:tight_limits ~resolve:Harness.Line_jobs.resolve ~pool ()
          in
          let th = Thread.create Server.Daemon.run server in
          Fun.protect
            ~finally:(fun () ->
              Server.Daemon.request_stop server;
              Thread.join th)
            (fun () ->
              let port = Server.Daemon.port server in
              let rec shoot i = function
                | [] -> Ok ()
                | (base, m) :: rest -> (
                    let text = apply_mutation daemon_bases.(base) m in
                    match fire port text with
                    | None -> shoot (i + 1) rest  (* clean close *)
                    | Some st when List.mem st acceptable ->
                        shoot (i + 1) rest
                    | Some st ->
                        failf "shot %d (%S...) drew status %d" i
                          (String.sub text 0 (min 40 (String.length text)))
                          st)
              in
              match shoot 0 c.shots with
              | Error _ as e -> e
              | Ok () -> (
                  (* The server must still answer a clean request. *)
                  match fire port daemon_bases.(0) with
                  | Some 200 -> Ok ()
                  | Some st ->
                      failf "healthz after the barrage answered %d" st
                  | None ->
                      failf "server closed a clean connection after the barrage"))))

(* ---------------------------------------------------------- the suite *)

let props =
  [
    prop ~count:120 ~smoke_count:24 "http_slice" arb_io_case http_slice;
    prop ~count:120 ~smoke_count:24 "http_truncation" arb_io_case
      http_truncation;
    prop ~count:120 ~smoke_count:24 "http_corruption" arb_corrupt
      http_corruption;
    prop ~count:6 ~smoke_count:2 "daemon_fault" arb_daemon_case daemon_fault;
  ]
