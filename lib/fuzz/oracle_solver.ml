(* Differential oracles over the solver stack.

   Ground truth comes from three independent sources: exhaustive
   enumeration of small integer lattices, the self-checking dual
   certificate ([Simplex.check_certificate], strong duality +
   complementary slackness re-verified from scratch), and pairwise
   agreement between configurations that must be semantically equivalent
   (dense vs sparse core, presolve on/off, warm vs cold starts, worker
   counts). *)

open Check

let tol = 1e-6

let close a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs b)

let failf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Evaluate a spec row-by-row at an assignment (exact for the dyadic
   data the generators produce). *)
let row_value terms (x : float array) =
  Array.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0.0 terms

let point_feasible (spec : Gen_lp.spec) x =
  let ok = ref true in
  Array.iteri
    (fun j (lo, hi, _) -> if x.(j) < lo -. tol || x.(j) > hi +. tol then ok := false)
    spec.Gen_lp.vars;
  Array.iter
    (fun (terms, sense, rhs) ->
      let v = row_value terms x in
      match sense with
      | Lp.Model.Le -> if v > rhs +. tol then ok := false
      | Lp.Model.Ge -> if v < rhs -. tol then ok := false
      | Lp.Model.Eq -> if Float.abs (v -. rhs) > tol then ok := false)
    spec.Gen_lp.rows;
  !ok

let objective (spec : Gen_lp.spec) x =
  let acc = ref 0.0 in
  Array.iteri (fun j c -> acc := !acc +. (c *. x.(j))) spec.Gen_lp.obj;
  !acc

(* ---------------------------------------------------- enumeration oracle *)

(* Walk the whole integer lattice of a small all-integer box.  The
   generator caps the box at 5^5 points, so this is exact ground truth. *)
let enumerate (spec : Gen_lp.spec) =
  let n = Array.length spec.Gen_lp.vars in
  let x = Array.make n 0.0 in
  let best = ref None in
  let better obj =
    match !best with
    | None -> true
    | Some (b, _) -> if spec.Gen_lp.minimize then obj < b else obj > b
  in
  let rec go j =
    if j = n then begin
      if point_feasible spec x then begin
        let obj = objective spec x in
        if better obj then best := Some (obj, Array.copy x)
      end
    end
    else begin
      let lo, hi, _ = spec.Gen_lp.vars.(j) in
      let v = ref lo in
      while !v <= hi do
        x.(j) <- !v;
        go (j + 1);
        v := !v +. 1.0
      done
    end
  in
  go 0;
  !best

let exhaustive_options =
  { Lp.Milp.default_options with Lp.Milp.node_limit = 200_000 }

let milp_vs_enumeration spec =
  let res = Lp.Milp.solve ~options:exhaustive_options (Gen_lp.to_model spec) in
  match enumerate spec with
  | None ->
      if res.Lp.Milp.status = Lp.Status.Infeasible then Ok ()
      else
        failf "enumeration says infeasible, solver returned %s"
          (Lp.Status.to_string res.Lp.Milp.status)
  | Some (best, witness) -> (
      match res.Lp.Milp.status with
      | Lp.Status.Optimal ->
          if not (point_feasible spec res.Lp.Milp.x) then
            failf "solver point violates its own constraints (obj %g)"
              res.Lp.Milp.obj
          else if not (close (objective spec res.Lp.Milp.x) res.Lp.Milp.obj)
          then
            failf "reported objective %g but the point evaluates to %g"
              res.Lp.Milp.obj
              (objective spec res.Lp.Milp.x)
          else if not (close res.Lp.Milp.obj best) then
            failf "solver objective %g, enumeration ground truth %g (at %s)"
              res.Lp.Milp.obj best
              (String.concat ","
                 (Array.to_list (Array.map (Printf.sprintf "%g") witness)))
          else Ok ()
      | st ->
          failf "enumeration found optimum %g, solver returned %s" best
            (Lp.Status.to_string st))

(* ------------------------------------------------------ duality oracle *)

let lp_certificate spec =
  let input = Lp.Simplex.of_model (Gen_lp.to_model spec) in
  let r = Lp.Simplex.solve input in
  match r.Lp.Simplex.status with
  | Lp.Status.Optimal -> (
      if not (Lp.Simplex.feasible input r.Lp.Simplex.x) then
        failf "optimal point infeasible (obj %g)" r.Lp.Simplex.obj_value
      else
        match Lp.Simplex.check_certificate input r with
        | [] -> Ok ()
        | errs ->
            failf "certificate rejected: %s" (String.concat "; " errs))
  | Lp.Status.Infeasible -> (
      (* Cross-check the verdict with the other engine. *)
      let d = Lp.Simplex.solve ~core:Lp.Simplex.Dense input in
      match d.Lp.Simplex.status with
      | Lp.Status.Infeasible -> Ok ()
      | st ->
          failf "sparse says infeasible, dense says %s" (Lp.Status.to_string st))
  | st -> failf "unexpected status %s on a bounded LP" (Lp.Status.to_string st)

let core_equivalence spec =
  let input = Lp.Simplex.of_model (Gen_lp.to_model spec) in
  let s = Lp.Simplex.solve ~core:Lp.Simplex.Sparse input in
  let d = Lp.Simplex.solve ~core:Lp.Simplex.Dense input in
  if s.Lp.Simplex.status <> d.Lp.Simplex.status then
    failf "status disagrees: sparse %s, dense %s"
      (Lp.Status.to_string s.Lp.Simplex.status)
      (Lp.Status.to_string d.Lp.Simplex.status)
  else if
    s.Lp.Simplex.status = Lp.Status.Optimal
    && not (close s.Lp.Simplex.obj_value d.Lp.Simplex.obj_value)
  then
    failf "objective disagrees: sparse %g, dense %g" s.Lp.Simplex.obj_value
      d.Lp.Simplex.obj_value
  else Ok ()

let presolve_equivalence spec =
  let input = Lp.Simplex.of_model (Gen_lp.to_model spec) in
  let p = Lp.Presolve.solve input in
  let b = Lp.Simplex.solve input in
  if p.Lp.Simplex.status <> b.Lp.Simplex.status then
    failf "status disagrees: presolve %s, direct %s"
      (Lp.Status.to_string p.Lp.Simplex.status)
      (Lp.Status.to_string b.Lp.Simplex.status)
  else if p.Lp.Simplex.status <> Lp.Status.Optimal then Ok ()
  else if not (close p.Lp.Simplex.obj_value b.Lp.Simplex.obj_value) then
    failf "objective disagrees: presolve %g, direct %g" p.Lp.Simplex.obj_value
      b.Lp.Simplex.obj_value
  else if not (Lp.Simplex.feasible input p.Lp.Simplex.x) then
    failf "postsolved point violates the original input"
  else
    match Lp.Simplex.check_certificate input p with
    | [] -> Ok ()
    | errs ->
        failf "postsolved certificate rejected: %s" (String.concat "; " errs)

(* ------------------------------------- cross-configuration MILP oracle *)

let milp_config_equivalence spec =
  let model = Gen_lp.to_model spec in
  let base = { Lp.Milp.default_options with Lp.Milp.node_limit = 50_000 } in
  let variants =
    [
      ("warm+sparse", base);
      ("cold", { base with Lp.Milp.warm_start = false });
      ("dense", { base with Lp.Milp.core = Lp.Simplex.Dense });
      ("no-presolve", { base with Lp.Milp.presolve = false });
      ("no-dive", { base with Lp.Milp.dive_first = false });
      ("workers2", { base with Lp.Milp.workers = 2 });
      (* The work-stealing scheduler matrix: more domains, and domains
         crossed with branching strategies whose pseudocost state is the
         shared-mutable part of the search.  On few-core hosts the
         worker counts clamp down, which must also preserve results. *)
      ("workers4", { base with Lp.Milp.workers = 4 });
      ( "workers2+mf",
        { base with
          Lp.Milp.workers = 2;
          branch_strategy = Lp.Branching.Most_fractional } );
      ( "workers4+pseudo",
        { base with
          Lp.Milp.workers = 4;
          branch_strategy = Lp.Branching.Pseudocost } );
    ]
    (* Full branching matrix: every selection strategy crossed with the
       root heuristics on and off.  The optimum must not depend on how
       the tree picks variables, whether the pump seeds an incumbent, or
       whether cut rounds tighten the root — only the node counts may
       differ.  This is the oracle that catches an unsound cut (cuts off
       an integer point: some matrix cell finds a worse "optimum") or a
       pump/dive point accepted without being feasible (some cell finds
       a better one). *)
    @ List.concat_map
        (fun (bname, strat) ->
          List.concat_map
            (fun pump ->
              List.map
                (fun root_cuts ->
                  ( Printf.sprintf "%s%s%s" bname
                      (if pump then "+pump" else "-pump")
                      (if root_cuts then "+cuts" else "-cuts"),
                    { base with Lp.Milp.branch_strategy = strat; pump; root_cuts }
                  ))
                [ true; false ])
            [ true; false ])
        [
          ("mf", Lp.Branching.Most_fractional);
          ("pseudo", Lp.Branching.Pseudocost);
          ("rel", Lp.Branching.Reliability);
        ]
  in
  let results =
    List.map
      (fun (name, options) -> (name, Lp.Milp.solve ~options model))
      variants
  in
  let _, ref_r = List.hd results in
  let rec check = function
    | [] -> Ok ()
    | (name, r) :: rest ->
        if r.Lp.Milp.status <> ref_r.Lp.Milp.status then
          failf "%s status %s, warm+sparse status %s" name
            (Lp.Status.to_string r.Lp.Milp.status)
            (Lp.Status.to_string ref_r.Lp.Milp.status)
        else if
          r.Lp.Milp.status = Lp.Status.Optimal
          && not (close r.Lp.Milp.obj ref_r.Lp.Milp.obj)
        then
          failf "%s objective %g, warm+sparse objective %g" name
            r.Lp.Milp.obj ref_r.Lp.Milp.obj
        else check rest
  in
  check (List.tl results)

(* --------------------------------------------- steal-ordering chaos *)

(* Determinism under adversarial steal schedules: a random MILP plus a
   random victim script driven through [Milp.solve ~steal_order].  The
   hook fully determines which deque every idle worker raids on every
   sweep round — including pathological scripts that always send a thief
   to itself or to one fixed victim — and no script may change the
   optimal status or objective at any worker count. *)

type chaos_case = { spec : Gen_lp.spec; script : int array }

let pp_chaos ppf c =
  Format.fprintf ppf "script=[%s]@ %a"
    (String.concat ";"
       (List.map string_of_int (Array.to_list c.script)))
    Gen_lp.pp c.spec

let gen_chaos rng =
  {
    spec = Gen_lp.milp_mixed rng;
    script = Gen.array ~max:16 (Gen.int_range 0 3) rng;
  }

let arb_chaos =
  Check.arb ~pp:pp_chaos
    ~shrink:(fun c ->
      Seq.map (fun spec -> { c with spec }) (Gen_lp.shrink c.spec))
    gen_chaos

let milp_steal_chaos c =
  let model = Gen_lp.to_model c.spec in
  let base =
    { Lp.Milp.default_options with
      Lp.Milp.node_limit = 50_000;
      dive_first = false }
  in
  let seq = Lp.Milp.solve ~options:{ base with Lp.Milp.workers = 1 } model in
  let script = if Array.length c.script = 0 then [| 0 |] else c.script in
  let n = Array.length script in
  let steal_order ~thief ~round = script.((thief + round) mod n) in
  let rec check = function
    | [] -> Ok ()
    | w :: rest ->
        let par =
          Lp.Milp.solve
            ~options:{ base with Lp.Milp.workers = w }
            ~steal_order model
        in
        if par.Lp.Milp.status <> seq.Lp.Milp.status then
          failf "w%d status %s, sequential %s" w
            (Lp.Status.to_string par.Lp.Milp.status)
            (Lp.Status.to_string seq.Lp.Milp.status)
        else if
          par.Lp.Milp.status = Lp.Status.Optimal
          && not (close par.Lp.Milp.obj seq.Lp.Milp.obj)
        then
          failf "w%d objective %g, sequential %g" w par.Lp.Milp.obj
            seq.Lp.Milp.obj
        else if par.Lp.Milp.workers > w then
          failf "w%d reported effective workers %d" w par.Lp.Milp.workers
        else check rest
  in
  check [ 2; 4 ]

(* ------------------------------------------- pool worker-count oracle *)

(* Random batches of line-estate scenarios through the service pool at
   workers 0 (inline, fully deterministic) vs 2 and 4: result lines must
   be identical once delivery-only fields (timings, cache disposition)
   are stripped. *)

type pool_case = { penalties : float list; frac : float; workers : int }

let pp_pool_case ppf c =
  Format.fprintf ppf "penalties=[%s] frac_at_0=%g workers=%d"
    (String.concat ";" (List.map (Printf.sprintf "%g") c.penalties))
    c.frac c.workers

let gen_pool_case : pool_case Gen.t =
 fun rng ->
  let penalties =
    Gen.list ~max:2 (Gen.choose [ 0.0; 40.0; 80.0; 120.0 ]) rng
  in
  let penalties = if penalties = [] then [ 0.0 ] else penalties in
  {
    penalties;
    frac = Gen.choose [ 0.25; 0.5; 0.75 ] rng;
    workers = Gen.choose [ 2; 4 ] rng;
  }

let arb_pool_case =
  Check.arb ~pp:pp_pool_case
    ~shrink:(fun c ->
      match c.penalties with
      | _ :: (_ :: _ as rest) -> Seq.return { c with penalties = rest }
      | _ -> Seq.empty)
    gen_pool_case

let strip_delivery json =
  match json with
  | Service.Json.Obj fields ->
      Service.Json.Obj
        (List.filter
           (fun (k, _) ->
             k <> "queue_s" && k <> "solve_s" && k <> "cache")
           fields)
  | j -> j

let pool_lines ~workers jobs =
  Service.Pool.with_pool ~workers ~cache_capacity:16 (fun pool ->
      List.map
        (fun r ->
          Service.Json.to_string (strip_delivery (Service.Batch.result_to_json r)))
        (Service.Pool.run_batch pool jobs))

let pool_workers_equivalence c =
  let jobs =
    List.map
      (fun p ->
        Service.Job.v
          ~milp:
            {
              Service.Job.no_overrides with
              Service.Job.node_limit = Some 2;
              time_limit = Some 20.0;
            }
          (Harness.Line_jobs.estate ~penalty:p
             {
               Harness.Line_estate.default with
               Harness.Line_estate.n_groups = 10;
               frac_at_0 = c.frac;
             }))
      c.penalties
  in
  let seq = pool_lines ~workers:0 jobs in
  let par = pool_lines ~workers:c.workers jobs in
  if List.length seq <> List.length par then
    failf "line counts differ: %d sequential vs %d at workers=%d"
      (List.length seq) (List.length par) c.workers
  else
    let rec cmp i = function
      | [], [] -> Ok ()
      | a :: ra, b :: rb ->
          if a <> b then
            failf "line %d differs at workers=%d:\n  seq: %s\n  par: %s" i
              c.workers a b
          else cmp (i + 1) (ra, rb)
      | _ -> assert false
    in
    cmp 0 (seq, par)

(* ---------------------------------------------------------- the suite *)

let props =
  [
    prop ~count:60 ~smoke_count:12 "milp_vs_enumeration" Gen_lp.arb_milp_small
      milp_vs_enumeration;
    prop ~count:90 ~smoke_count:18 "lp_certificate" Gen_lp.arb_lp_bounded
      lp_certificate;
    prop ~count:70 ~smoke_count:14 "core_equivalence" Gen_lp.arb_lp_bounded
      core_equivalence;
    prop ~count:70 ~smoke_count:14 "presolve_equivalence" Gen_lp.arb_lp_bounded
      presolve_equivalence;
    prop ~count:40 ~smoke_count:8 "milp_config_equivalence"
      Gen_lp.arb_milp_mixed milp_config_equivalence;
    prop ~count:50 ~smoke_count:8 "milp_steal_chaos" arb_chaos
      milp_steal_chaos;
    prop ~count:4 ~smoke_count:1 "pool_workers_equivalence" arb_pool_case
      pool_workers_equivalence;
  ]
