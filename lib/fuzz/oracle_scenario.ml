(* Differential oracles over the scenario engine.

   Three properties anchor the new subsystem: the Pareto frontier is
   sound, complete and insensitive to grid order (checked against the
   O(n^2) dominance definition); a warm-started incremental re-plan of a
   delta'd estate matches a cold solve on separable instances (where
   pinning unchanged groups provably cannot lose optimality); and plans
   produced under a compiled failure scenario actually honor the
   scenario's exclusions and evacuation budgets. *)

open Check

let tol = 1e-6

let failf fmt = Printf.ksprintf (fun s -> Error s) fmt

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n > 0 && go 0

(* ------------------------------------------------------- pareto oracle *)

(* Costs and resilience are drawn from tiny grids so ties and duplicate
   points are common — the regime where a sort-and-scan frontier is
   easiest to get wrong. *)
type pareto_case = { pts : Scenario.Pareto.point list; perm : int array }

let pp_pareto_case ppf c =
  Format.fprintf ppf "pts=[%s]"
    (String.concat ";"
       (List.map
          (fun (p : Scenario.Pareto.point) ->
            Printf.sprintf "%g/%g" p.Scenario.Pareto.cost
              p.Scenario.Pareto.resilience)
          c.pts))

let gen_pareto_case : pareto_case Gen.t =
 fun rng ->
  let n = Gen.int_range 0 12 rng in
  let pts =
    List.init n (fun i ->
        {
          Scenario.Pareto.cost = float_of_int (Gen.int_range 1 6 rng);
          resilience = 0.25 *. float_of_int (Gen.int_range 0 4 rng);
          tag = Printf.sprintf "p%d" i;
        })
  in
  { pts; perm = Gen.permutation n rng }

let arb_pareto_case =
  Check.arb ~pp:pp_pareto_case
    ~shrink:(fun c ->
      match c.pts with
      | [] -> Seq.empty
      | _ :: rest ->
          Seq.return
            { pts = rest; perm = Array.init (List.length rest) Fun.id })
    gen_pareto_case

let pareto_frontier_sound c =
  let open Scenario.Pareto in
  let front = frontier c.pts in
  let mem p l = List.exists (fun q -> q = p) l in
  let weakly_covers f p = f.cost <= p.cost && f.resilience >= p.resilience in
  if List.exists (fun f -> not (mem f c.pts)) front then
    failf "frontier invented a point"
  else if
    List.exists (fun f -> List.exists (fun p -> dominates p f) c.pts) front
  then failf "a frontier point is dominated by an input point"
  else if
    List.exists
      (fun p -> not (List.exists (fun f -> weakly_covers f p) front))
      c.pts
  then failf "an input point escapes the frontier's coverage"
  else
    (* Grid order must not matter: same sorted output on any permutation. *)
    let arr = Array.of_list c.pts in
    let shuffled = List.map (fun i -> arr.(i)) (Array.to_list c.perm) in
    if frontier shuffled <> front then
      failf "frontier depends on input order"
    else Ok ()

(* ------------------------------------------------------- replan oracle *)

(* Separable estates: slack capacity, no economies of scale, no fixed
   charges, no spread.  The optimum then decomposes per group, so pinning
   structurally-unchanged groups to their previous primaries cannot
   exclude it — a warm incremental re-plan must match a cold solve to
   within solver tolerance. *)

type replan_change =
  | R_resize of int * int
  | R_scale of int * float
  | R_retire of int
  | R_add of int

type replan_case = {
  n_targets : int;
  spaces : float list;          (* per-target per-server space cost *)
  lats : (float * float) list;  (* per-target user latency (2 locations) *)
  groups : (int * float * float * float * float) list;
      (* servers, data, users at 0/1, latency threshold *)
  change : replan_change;
}

let pp_replan_case ppf c =
  Format.fprintf ppf "targets=%d groups=%d change=%s" c.n_targets
    (List.length c.groups)
    (match c.change with
    | R_resize (i, s) -> Printf.sprintf "resize(%d,%d)" i s
    | R_scale (i, k) -> Printf.sprintf "scale(%d,%g)" i k
    | R_retire i -> Printf.sprintf "retire(%d)" i
    | R_add s -> Printf.sprintf "add(%d)" s)

let gen_replan_case : replan_case Gen.t =
 fun rng ->
  let n_targets = Gen.int_range 2 4 rng in
  let n_groups = Gen.int_range 3 7 rng in
  let spaces =
    List.init n_targets (fun _ ->
        Gen.choose [ 50.0; 80.0; 100.0; 120.0; 150.0 ] rng)
  in
  let lats =
    List.init n_targets (fun _ ->
        ( Gen.choose [ 5.0; 10.0; 20.0; 40.0 ] rng,
          Gen.choose [ 5.0; 10.0; 20.0; 40.0 ] rng ))
  in
  let groups =
    List.init n_groups (fun _ ->
        ( Gen.int_range 1 6 rng,
          Gen.choose [ 100.0; 500.0; 1000.0 ] rng,
          Gen.choose [ 0.0; 20.0; 100.0 ] rng,
          Gen.choose [ 0.0; 20.0; 100.0 ] rng,
          Gen.choose [ 10.0; 20.0 ] rng ))
  in
  let gi = Gen.int_range 0 (n_groups - 1) rng in
  let change =
    Gen.oneof
      [
        Gen.map (fun s -> R_resize (gi, s)) (Gen.int_range 1 6);
        Gen.return (R_scale (gi, Gen.choose [ 0.5; 2.0; 4.0 ] rng));
        Gen.return (R_retire gi);
        Gen.map (fun s -> R_add s) (Gen.int_range 1 4);
      ]
      rng
  in
  { n_targets; spaces; lats; groups; change }

let arb_replan_case =
  Check.arb ~pp:pp_replan_case
    ~shrink:(fun c ->
      match c.groups with
      | _ :: (_ :: _ :: _ as rest) ->
          let n = List.length rest in
          let clamp i = min i (n - 1) in
          let change =
            match c.change with
            | R_resize (i, s) -> R_resize (clamp i, s)
            | R_scale (i, k) -> R_scale (clamp i, k)
            | R_retire i -> R_retire (clamp i)
            | R_add s -> R_add s
          in
          Seq.return { c with groups = rest; change }
      | _ -> Seq.empty)
    gen_replan_case

let build_replan_estate c =
  let open Etransform in
  let total = List.fold_left (fun a (s, _, _, _, _) -> a + s) 0 c.groups in
  let cap = max 10 (10 * (total + 6)) in
  let dc name space (l0, l1) =
    Data_center.v ~name ~capacity:cap
      ~space_segments:
        (Data_center.flat_space ~capacity:cap ~per_server:space)
      ~wan_per_mb:1e-3 ~power_per_kwh:1.0 ~admin_monthly:1300.0
      ~user_latency_ms:[| l0; l1 |] ()
  in
  let targets =
    Array.of_list
      (List.mapi
         (fun j (space, lat) -> dc (Printf.sprintf "t%d" j) space lat)
         (List.combine c.spaces c.lats))
  in
  let groups =
    Array.of_list
      (List.mapi
         (fun i (servers, data, u0, u1, thr) ->
           App_group.v
             ~latency:
               (Latency_penalty.step ~threshold_ms:thr ~penalty_per_user:2.0)
             ~name:(Printf.sprintf "g%d" i)
             ~servers ~data_mb_month:data ~users:[| u0; u1 |] ())
         c.groups)
  in
  let current = [| dc "old" 200.0 (30.0, 30.0) |] in
  Asis.v ~name:"replan-case" ~groups ~targets
    ~user_locations:[| "east"; "west" |] ~current
    ~current_placement:(Array.make (Array.length groups) 0) ()

let replan_matches_cold c =
  let open Etransform in
  let prev = build_replan_estate c in
  let builder =
    {
      Lp_builder.default_options with
      Lp_builder.economies_of_scale = false;
      fixed_charges = false;
      omega = None;
    }
  in
  let solve asis = Solver.consolidate ~builder ~local_search:false asis in
  let name i = Printf.sprintf "g%d" i in
  let change =
    match c.change with
    | R_resize (i, s) -> Scenario.Delta.Resize (name i, s)
    | R_scale (i, k) -> Scenario.Delta.Scale_data (name i, k)
    | R_retire i -> Scenario.Delta.Retire (name i)
    | R_add servers ->
        Scenario.Delta.Add
          ( App_group.v ~name:"g-new" ~servers ~data_mb_month:250.0
              ~users:[| 10.0; 10.0 |] (),
            0 )
  in
  let prev_outcome = solve prev in
  let next = Scenario.Delta.apply prev [ change ] in
  let cold = solve next in
  let warm =
    Scenario.Delta.replan ~builder ~local_search:false
      ~previous:(prev, prev_outcome.Solver.placement)
      next
  in
  let cc = Evaluate.total cold.Solver.summary.Evaluate.cost in
  let wc = Evaluate.total warm.Scenario.Delta.outcome.Solver.summary.Evaluate.cost in
  match Placement.validate next warm.Scenario.Delta.outcome.Solver.placement with
  | _ :: _ as errs -> failf "warm plan infeasible: %s" (String.concat "; " errs)
  | [] ->
      let expected_pins =
        (* every surviving structurally-unchanged group; a change that is
           a no-op (resize to the current size) leaves its group pinned *)
        let n = List.length c.groups in
        match c.change with
        | R_add _ -> n
        | R_retire _ -> n - 1
        | R_resize (i, s) ->
            let s0, _, _, _, _ = List.nth c.groups i in
            if s0 = s then n else n - 1
        | R_scale (i, k) ->
            let _, d, _, _, _ = List.nth c.groups i in
            if d *. k = d then n else n - 1
      in
      if warm.Scenario.Delta.pinned <> expected_pins then
        failf "pinned %d groups, expected %d" warm.Scenario.Delta.pinned
          expected_pins
      else if Float.abs (cc -. wc) > tol *. (1.0 +. Float.abs cc) then
        failf "warm re-plan %.9g differs from cold solve %.9g" wc cc
      else Ok ()

(* -------------------------------------------------- DR scenario oracle *)

(* Plans produced under a compiled failure scenario must honor the
   model's own constraints: a backup deterministically co-failing with
   its primary is never chosen, and per-link evacuation stays within the
   bandwidth x window budget.  Estates that genuinely cannot fit the
   richer pools raise the planner's documented capacity error, which is
   not a model violation. *)

type dr_case = {
  seed : int;
  radius : float option;
  conc : int;
  warning : float option;
}

let pp_dr_case ppf c =
  Format.fprintf ppf "seed=%d radius=%s conc=%d warning=%s" c.seed
    (match c.radius with None -> "-" | Some r -> Printf.sprintf "%g" r)
    c.conc
    (match c.warning with None -> "-" | Some w -> Printf.sprintf "%g" w)

let gen_dr_case : dr_case Gen.t =
 fun rng ->
  {
    seed = Gen.int_range 0 2000 rng;
    radius = Gen.choose [ None; Some 300.0; Some 1500.0 ] rng;
    conc = Gen.choose [ 1; 2 ] rng;
    warning = Gen.choose [ None; Some 10_000.0 ] rng;
  }

let arb_dr_case = Check.arb ~pp:pp_dr_case gen_dr_case

let dr_scenario_honored c =
  let open Etransform in
  let asis =
    Datasets.Synth.generate
      {
        Datasets.Synth.default with
        Datasets.Synth.seed = c.seed;
        n_groups = 12;
        n_targets = 4;
        n_current = 5;
        total_servers = 96;
      }
  in
  let spec =
    {
      Scenario.Failure.radius_km = c.radius;
      max_concurrent = c.conc;
      warning_s = c.warning;
      link_mb_s = 1000.0;
    }
  in
  let scenario = Scenario.Failure.compile spec asis in
  let options =
    { Dr_planner.default_options with Dr_planner.scenario = Some scenario }
  in
  match Dr_planner.plan ~options asis with
  | exception Failure msg
    when contains ~affix:"could not fit" msg
         || contains ~affix:"no candidate secondary" msg ->
      Ok () (* documented capacity limit, not a model violation *)
  | o -> (
      match Placement.validate asis o.Solver.placement with
      | _ :: _ as errs -> failf "invalid plan: %s" (String.concat "; " errs)
      | [] -> (
          match o.Solver.placement.Placement.secondary with
          | None -> failf "DR plan without secondaries"
          | Some sec ->
              let events = scenario.Dr_planner.events in
              let co_fails a b =
                (* b fails in every event that takes out a *)
                b <> a
                && Array.for_all
                     (fun ev -> (not (List.mem a ev)) || List.mem b ev)
                     events
                && Array.exists (fun ev -> List.mem a ev) events
              in
              let m = Asis.num_groups asis in
              let n = Asis.num_targets asis in
              let bad = ref None in
              for i = 0 to m - 1 do
                let a = o.Solver.placement.Placement.primary.(i) in
                if co_fails a sec.(i) then bad := Some (i, a, sec.(i))
              done;
              (match !bad with
              | Some (i, a, b) ->
                  failf "group %d backed up at %d, co-failing with primary %d"
                    i b a
              | None -> (
                  match scenario.Dr_planner.evac_mb with
                  | None -> Ok ()
                  | Some budget ->
                      let used = Array.make_matrix n n 0.0 in
                      for i = 0 to m - 1 do
                        let a = o.Solver.placement.Placement.primary.(i) in
                        let b = sec.(i) in
                        if a <> b then
                          used.(a).(b) <-
                            used.(a).(b)
                            +. asis.Asis.groups.(i).App_group.data_mb_month
                      done;
                      let over = ref None in
                      Array.iteri
                        (fun a row ->
                          Array.iteri
                            (fun b u ->
                              if u > budget +. 1e-6 then over := Some (a, b, u))
                            row)
                        used;
                      (match !over with
                      | Some (a, b, u) ->
                          failf
                            "link %d->%d evacuates %.0f MB over the %.0f \
                             budget"
                            a b u budget
                      | None -> Ok ())))))

(* ---------------------------------------------------------- the suite *)

let props =
  [
    prop ~count:200 ~smoke_count:40 "pareto_frontier_sound" arb_pareto_case
      pareto_frontier_sound;
    prop ~count:25 ~smoke_count:5 "replan_matches_cold" arb_replan_case
      replan_matches_cold;
    prop ~count:10 ~smoke_count:2 "dr_scenario_honored" arb_dr_case
      dr_scenario_honored;
  ]
