(* The full oracle suite, in the order the driver lists and runs it. *)

let props =
  Oracle_solver.props @ Oracle_serial.props @ Oracle_io.props
  @ Oracle_scenario.props @ Oracle_cluster.props

let find name =
  List.find_opt (fun p -> Check.prop_name p = name) props
