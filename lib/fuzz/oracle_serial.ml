(* Serialization oracles: round-trip laws for the service JSON codec and
   the CPLEX LP writer/parser, and order-insensitivity of the job
   fingerprint under generated field permutations. *)

open Check

let failf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------ JSON round-trip *)

(* Finite floats only: non-finite values serialize to [null] by design,
   which is a deliberate non-injectivity, not a bug. *)
let gen_num : float Gen.t =
  Gen.frequency
    [
      (3, Gen.map float_of_int (Gen.int_range (-1000) 1000));
      (2, fun rng -> float_of_int (Gen.int_range (-4000) 4000 rng) /. 4.0);
      (2, Gen.float_range (-1e6) 1e6);
      ( 1,
        Gen.choose
          [
            0.0; -0.0; 0.1; -0.1; 1e15; -1e15; 1e15 +. 1.0; 1.5e300; -1.5e300;
            4.9e-324; 1e-9; 123456789012345.0; 1234567890123456.0;
          ] );
    ]

let gen_string : string Gen.t =
  Gen.string_of ~max:12
    (Gen.frequency
       [
         (8, Gen.char_range ' ' '~');
         (1, Gen.choose [ '"'; '\\'; '\n'; '\r'; '\t'; '\x01'; '\x1f' ]);
       ])

let rec gen_json depth : Service.Json.t Gen.t =
 fun rng ->
  let leaf =
    Gen.frequency
      [
        (1, Gen.return Service.Json.Null);
        (1, Gen.map (fun b -> Service.Json.Bool b) Gen.bool);
        (3, Gen.map (fun f -> Service.Json.Num f) gen_num);
        (3, Gen.map (fun s -> Service.Json.Str s) gen_string);
      ]
  in
  if depth = 0 then leaf rng
  else
    Gen.frequency
      [
        (2, leaf);
        ( 1,
          Gen.map
            (fun l -> Service.Json.List l)
            (Gen.list ~max:4 (gen_json (depth - 1))) );
        ( 1,
          Gen.map
            (fun kvs -> Service.Json.Obj kvs)
            (Gen.list ~max:4 (Gen.pair gen_string (gen_json (depth - 1)))) );
      ]
      rng

let rec json_eq a b =
  match (a, b) with
  | Service.Json.Null, Service.Json.Null -> true
  | Service.Json.Bool x, Service.Json.Bool y -> x = y
  | Service.Json.Num x, Service.Json.Num y -> Float.compare x y = 0
  | Service.Json.Str x, Service.Json.Str y -> String.equal x y
  | Service.Json.List x, Service.Json.List y ->
      List.length x = List.length y && List.for_all2 json_eq x y
  | Service.Json.Obj x, Service.Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
           x y
  | _ -> false

let rec shrink_json (j : Service.Json.t) : Service.Json.t Seq.t =
  match j with
  | Service.Json.Null -> Seq.empty
  | Service.Json.Bool _ -> Seq.return Service.Json.Null
  | Service.Json.Num f ->
      if f = 0.0 then Seq.return Service.Json.Null
      else Seq.return (Service.Json.Num 0.0)
  | Service.Json.Str s ->
      if s = "" then Seq.return Service.Json.Null
      else
        Seq.cons Service.Json.Null
          (Seq.map
             (fun s -> Service.Json.Str s)
             (List.to_seq
                [ String.sub s 0 (String.length s / 2); String.sub s 1 (String.length s - 1) ]))
  | Service.Json.List items ->
      Seq.append (List.to_seq items)
        (Seq.map
           (fun l -> Service.Json.List l)
           (Shrink.list ~elt:shrink_json items))
  | Service.Json.Obj kvs ->
      Seq.append
        (List.to_seq (List.map snd kvs))
        (Seq.map
           (fun l -> Service.Json.Obj l)
           (Shrink.list
              ~elt:(fun (k, v) -> Seq.map (fun v -> (k, v)) (shrink_json v))
              kvs))

let arb_json =
  Check.arb ~shrink:shrink_json
    ~pp:(fun ppf j -> Format.fprintf ppf "%s" (Service.Json.to_string j))
    (gen_json 3)

let json_roundtrip j =
  let s = Service.Json.to_string j in
  match Service.Json.parse s with
  | Error e -> failf "rendered %S, reparse failed: %s" s e
  | Ok j' ->
      if json_eq j j' then Ok ()
      else failf "rendered %S, reparsed as %S" s (Service.Json.to_string j')

(* -------------------------------------------------- LP file round-trip *)

(* The writer and parser agree on the model up to representation: parsing
   reassigns variable ids in first-appearance order, and zero
   coefficients vanish (Linexpr canonicalization drops them).  So the law
   is semantic: compare by variable NAME, with zero coefficients dropped,
   and require every "visible" variable to survive — a variable with
   default bounds [0,inf), no objective weight, no row appearance and no
   integrality mark leaves no trace in the LP text, by design. *)

let canon_terms names terms =
  Array.to_list terms
  |> List.filter_map (fun (j, c) -> if c = 0.0 then None else Some (names j, c))
  |> List.sort compare

let visible (v : Lp.Model.var) ~in_obj ~in_rows =
  in_obj || in_rows || v.Lp.Model.integer
  || v.Lp.Model.lo <> 0.0
  || v.Lp.Model.hi <> infinity

let model_semantics m =
  let vars = Lp.Model.vars m in
  let names j = vars.(j).Lp.Model.name in
  let obj_terms, obj_const = Lp.Model.objective_terms m in
  let obj = canon_terms names obj_terms in
  let rows =
    Array.to_list (Lp.Model.constrs m)
    |> List.map (fun (c : Lp.Model.constr) ->
           ( c.Lp.Model.cname,
             canon_terms names (Lp.Model.row_terms c),
             c.Lp.Model.sense,
             c.Lp.Model.rhs ))
  in
  let appears = Hashtbl.create 16 in
  List.iter (fun (name, _) -> Hashtbl.replace appears name true) obj;
  List.iter
    (fun (_, terms, _, _) ->
      List.iter (fun (name, _) -> Hashtbl.replace appears name true) terms)
    rows;
  let bounds =
    Array.to_list vars
    |> List.filter_map (fun (v : Lp.Model.var) ->
           if
             visible v
               ~in_obj:(Hashtbl.mem appears v.Lp.Model.name)
               ~in_rows:false
             || Hashtbl.mem appears v.Lp.Model.name
           then Some (v.Lp.Model.name, (v.Lp.Model.lo, v.Lp.Model.hi, v.Lp.Model.integer))
           else None)
    |> List.sort compare
  in
  (Lp.Model.minimize m, obj_const, obj, rows, bounds)

let lp_model_roundtrip spec =
  let m = Gen_lp.to_model spec in
  let text = Lp.Lp_format.model_to_string m in
  match Lp.Lp_parse.model_of_string text with
  | exception Lp.Lp_parse.Parse_error e ->
      failf "reparse failed: %s\n--- written LP ---\n%s" e text
  | m' ->
      let a = model_semantics m and b = model_semantics m' in
      if a = b then Ok ()
      else
        failf "semantics changed across write/parse\n--- written LP ---\n%s\n--- rewritten ---\n%s"
          text
          (Lp.Lp_format.model_to_string m')

(* ----------------------------------------- fingerprint permutation law *)

(* A job case is a concrete job spec plus shuffle seeds.  The property
   renders the spec as NDJSON twice with independently permuted field
   orders (recursively: top level, estate object, milp object), decodes
   both through the real Batch front-end, and requires equal
   fingerprints.  Changing a delivery-only field must keep the
   fingerprint; flipping a plan-relevant field must change it. *)

type job_case = {
  estate_name : string;
  scale : float;
  seed : int;
  groups : int;
  targets : int;
  dr : bool;
  eos : bool;
  fixed_charges : bool;
  omega : float option;
  reserve : float option;
  dr_server_cost : float option;
  nodes : int option;
  time : float option;
  gap : float option;
  workers : int option;
  deadline_s : float option;
  degrade : bool option;
  shuffle_a : int;
  shuffle_b : int;
}

let opt g : 'a option Gen.t =
  Gen.frequency [ (1, Gen.return None); (2, Gen.map Option.some g) ]

let gen_job_case : job_case Gen.t =
 fun rng ->
  let estate_name =
    Gen.choose [ "enterprise1"; "florida"; "federal"; "synthetic" ] rng
  in
  {
    estate_name;
    scale = Gen.choose [ 0.5; 1.0; 2.0 ] rng;
    seed = Gen.int_range 0 99 rng;
    groups = Gen.int_range 2 12 rng;
    targets = Gen.int_range 1 4 rng;
    dr = Gen.bool rng;
    eos = Gen.bool rng;
    fixed_charges = Gen.bool rng;
    omega = opt (Gen.choose [ 0.25; 0.5; 0.75 ]) rng;
    reserve = opt (Gen.choose [ 0.1; 0.3 ]) rng;
    dr_server_cost = opt (Gen.choose [ 50.0; 100.0 ]) rng;
    nodes = opt (Gen.int_range 1 64) rng;
    time = opt (Gen.choose [ 1.0; 30.0 ]) rng;
    gap = opt (Gen.choose [ 0.001; 0.01 ]) rng;
    workers = opt (Gen.int_range 1 4) rng;
    deadline_s = opt (Gen.choose [ 5.0; 60.0 ]) rng;
    degrade = opt Gen.bool rng;
    shuffle_a = Gen.int_range 0 0x3FFF_FFFF rng;
    shuffle_b = Gen.int_range 0 0x3FFF_FFFF rng;
  }

let job_fields ?(id = "j") c =
  let num f = Service.Json.Num f in
  let optf name v fields =
    match v with Some x -> (name, num x) :: fields | None -> fields
  in
  let estate =
    [ ("kind", Service.Json.Str "dataset");
      ("name", Service.Json.Str c.estate_name);
      ("scale", num c.scale) ]
    @
    if c.estate_name = "synthetic" then
      [ ("seed", num (float_of_int c.seed));
        ("groups", num (float_of_int c.groups));
        ("targets", num (float_of_int c.targets)) ]
    else []
  in
  let milp =
    []
    |> optf "workers" (Option.map float_of_int c.workers)
    |> optf "gap" c.gap |> optf "time" c.time
    |> optf "nodes" (Option.map float_of_int c.nodes)
  in
  [ ("id", Service.Json.Str id);
    ("estate", Service.Json.Obj estate);
    ("dr", Service.Json.Bool c.dr);
    ("eos", Service.Json.Bool c.eos);
    ("fixed_charges", Service.Json.Bool c.fixed_charges) ]
  |> List.rev
  |> optf "omega" c.omega
  |> optf "reserve" c.reserve
  |> optf "dr_server_cost" c.dr_server_cost
  |> (fun fields ->
       if milp = [] then fields
       else ("milp", Service.Json.Obj milp) :: fields)
  |> optf "deadline_s" c.deadline_s
  |> (fun fields ->
       match c.degrade with
       | Some b -> ("degrade", Service.Json.Bool b) :: fields
       | None -> fields)
  |> List.rev

(* Recursively permute object field order with a PRNG derived from
   [shuffle_seed] only — deterministic per case. *)
let rec permute_json rng j =
  match j with
  | Service.Json.Obj fields ->
      let fields =
        List.map (fun (k, v) -> (k, permute_json rng v)) fields
      in
      let a = Array.of_list fields in
      Datasets.Prng.shuffle rng a;
      Service.Json.Obj (Array.to_list a)
  | Service.Json.List items ->
      Service.Json.List (List.map (permute_json rng) items)
  | j -> j

let decode_fp ?(what = "job") json =
  match Service.Batch.job_of_json json with
  | Ok job -> Ok (Service.Job.fingerprint job)
  | Error e ->
      failf "%s failed to decode: %s (%s)" what e (Service.Json.to_string json)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let fingerprint_permutation c =
  let base = Service.Json.Obj (job_fields c) in
  let perm_a =
    permute_json (Datasets.Prng.create c.shuffle_a) base
  in
  let perm_b =
    permute_json (Datasets.Prng.create c.shuffle_b) base
  in
  let* fp_a = decode_fp ~what:"permutation A" perm_a in
  let* fp_b = decode_fp ~what:"permutation B" perm_b in
  if fp_a <> fp_b then
    failf "field order changed the fingerprint:\n  A %s -> %s\n  B %s -> %s"
      (Service.Json.to_string perm_a)
      fp_a
      (Service.Json.to_string perm_b)
      fp_b
  else
    (* Delivery-only changes: new id, different deadline, flipped degrade. *)
    let delivery =
      Service.Json.Obj
        (job_fields ~id:"other-id"
           {
             c with
             deadline_s = (match c.deadline_s with None -> Some 9.0 | Some _ -> None);
             degrade =
               (match c.degrade with
               | None -> Some false
               | Some b -> Some (not b));
           })
    in
    let* fp_d = decode_fp ~what:"delivery variant" delivery in
    if fp_d <> fp_a then
      failf "delivery-only fields moved the fingerprint: %s vs %s" fp_a fp_d
    else
      (* A plan-relevant flip must move it. *)
      let flipped = Service.Json.Obj (job_fields { c with dr = not c.dr }) in
      let* fp_f = decode_fp ~what:"dr-flipped variant" flipped in
      if fp_f = fp_a then
        failf "flipping dr did not change the fingerprint (%s)" fp_a
      else Ok ()

let pp_job_case ppf c =
  Format.fprintf ppf "%s" (Service.Json.to_string (Service.Json.Obj (job_fields c)))

let arb_job_case =
  Check.arb ~pp:pp_job_case
    ~shrink:(fun c ->
      List.to_seq
        (List.filter
           (fun c' -> c' <> c)
           [
             { c with omega = None };
             { c with reserve = None };
             { c with dr_server_cost = None };
             { c with nodes = None; time = None; gap = None; workers = None };
             { c with deadline_s = None; degrade = None };
             { c with estate_name = "enterprise1" };
           ]))
    gen_job_case

(* ---------------------------------------------------------- the suite *)

let props =
  [
    prop ~count:200 ~smoke_count:40 "json_roundtrip" arb_json json_roundtrip;
    prop ~count:60 ~smoke_count:12 "lp_model_roundtrip" Gen_lp.arb_milp_mixed
      lp_model_roundtrip;
    prop ~count:100 ~smoke_count:20 "fingerprint_permutation" arb_job_case
      fingerprint_permutation;
  ]
