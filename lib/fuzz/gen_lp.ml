(* Random bounded LP/MILP instances for the differential solver oracles.

   Instances are generated as a first-class [spec] (not a [Model.t]
   directly) so counterexamples can be shrunk structurally — dropping
   rows and variables, zeroing coefficients, pulling right-hand sides
   toward 0 — and pretty-printed as the CPLEX LP text the repo already
   reads and writes.

   All numeric data is dyadic (integers and quarters), so instance
   construction itself introduces no rounding: any disagreement an
   oracle reports comes from the solver stack, not the generator. *)

open Check

type spec = {
  minimize : bool;
  vars : (float * float * bool) array;  (* lo, hi, integer *)
  obj : float array;                    (* one coefficient per var *)
  rows : ((int * float) array * Lp.Model.sense * float) array;
}

let to_model ?(name = "fuzz") spec =
  let m = Lp.Model.create ~name () in
  let vs =
    Array.mapi
      (fun j (lo, hi, integer) ->
        Lp.Model.add_var m ~lo ~hi ~integer (Printf.sprintf "v%d" j))
      spec.vars
  in
  Array.iteri
    (fun i (terms, sense, rhs) ->
      let expr =
        Lp.Model.Linexpr.sum
          (Array.to_list
             (Array.map
                (fun (j, c) -> Lp.Model.Linexpr.term c vs.(j))
                terms))
      in
      Lp.Model.add_constr m (Printf.sprintf "r%d" i) expr sense rhs)
    spec.rows;
  Lp.Model.set_objective m ~minimize:spec.minimize
    (Lp.Model.Linexpr.sum
       (Array.to_list
          (Array.mapi (fun j c -> Lp.Model.Linexpr.term c vs.(j)) spec.obj)));
  m

let pp ppf spec =
  Format.fprintf ppf "%s" (Lp.Lp_format.model_to_string (to_model spec))

(* ----------------------------------------------------------- generators *)

let sense : Lp.Model.sense Gen.t =
  Gen.choose [ Lp.Model.Le; Lp.Model.Ge; Lp.Model.Eq ]

let int_coeff rng = float_of_int (Gen.int_range (-5) 5 rng)

let quarter lo hi rng =
  (* Dyadic values in [lo, hi] with step 1/4: exact in binary floats. *)
  float_of_int (Gen.int_range (lo * 4) (hi * 4) rng) /. 4.0

let row ~nvars ~coeff rng =
  let terms = ref [] in
  Array.iter
    (fun j ->
      if Datasets.Prng.float rng < 0.7 then
        let c = coeff rng in
        if c <> 0.0 then terms := (j, c) :: !terms)
    (Array.init nvars Fun.id);
  (match !terms with
  | [] ->
      (* Keep at least one term so most rows actually constrain. *)
      let j = Gen.int_range 0 (nvars - 1) rng in
      let c = coeff rng in
      terms := [ (j, if c = 0.0 then 1.0 else c) ]
  | _ -> ());
  Array.of_list (List.rev !terms)

(* All-integer instances with small finite boxes: the whole feasible
   lattice can be enumerated (at most 5^5 points), so branch-and-bound
   answers are checked against ground truth. *)
let milp_small : spec Gen.t =
 fun rng ->
  let nvars = Gen.int_range 1 5 rng in
  let vars =
    Array.init nvars (fun _ ->
        let lo = float_of_int (Gen.int_range (-3) 1 rng) in
        let hi = lo +. float_of_int (Gen.int_range 0 4 rng) in
        (lo, hi, true))
  in
  let obj = Array.init nvars (fun _ -> float_of_int (Gen.int_range (-9) 9 rng)) in
  let nrows = Gen.int_range 0 5 rng in
  let rows =
    Array.init nrows (fun _ ->
        let terms = row ~nvars ~coeff:int_coeff rng in
        let s = sense rng in
        let rhs = float_of_int (Gen.int_range (-12) 12 rng) in
        (terms, s, rhs))
  in
  { minimize = Gen.bool rng; vars; obj; rows }

(* Continuous LPs with finite dyadic boxes: bounded by construction, so
   every solve terminates Optimal or Infeasible and the dual certificate
   is checkable. *)
let lp_bounded : spec Gen.t =
 fun rng ->
  let nvars = Gen.int_range 1 7 rng in
  let vars =
    Array.init nvars (fun _ ->
        let lo = quarter (-5) 1 rng in
        let hi = lo +. quarter 0 8 rng in
        (lo, hi, false))
  in
  let obj = Array.init nvars (fun _ -> quarter (-8) 8 rng) in
  let nrows = Gen.int_range 0 6 rng in
  let rows =
    Array.init nrows (fun _ ->
        let terms = row ~nvars ~coeff:(quarter (-4) 4) rng in
        let s = sense rng in
        let rhs = quarter (-10) 10 rng in
        (terms, s, rhs))
  in
  { minimize = Gen.bool rng; vars; obj; rows }

(* Mixed instances for cross-configuration MILP equivalence: some
   continuous columns, some integer, still bounded and small. *)
let milp_mixed : spec Gen.t =
 fun rng ->
  let nvars = Gen.int_range 1 6 rng in
  let vars =
    Array.init nvars (fun _ ->
        let integer = Datasets.Prng.float rng < 0.6 in
        if integer then
          let lo = float_of_int (Gen.int_range (-2) 1 rng) in
          (lo, lo +. float_of_int (Gen.int_range 0 3 rng), true)
        else
          let lo = quarter (-4) 1 rng in
          (lo, lo +. quarter 0 6 rng, false))
  in
  let obj = Array.init nvars (fun _ -> quarter (-6) 6 rng) in
  let nrows = Gen.int_range 0 5 rng in
  let rows =
    Array.init nrows (fun _ ->
        let terms = row ~nvars ~coeff:int_coeff rng in
        let s = sense rng in
        let rhs = float_of_int (Gen.int_range (-10) 10 rng) in
        (terms, s, rhs))
  in
  { minimize = Gen.bool rng; vars; obj; rows }

(* ------------------------------------------------------------- shrinking *)

let remove_row spec i =
  {
    spec with
    rows = Array.of_list (List.filteri (fun k _ -> k <> i) (Array.to_list spec.rows));
  }

let remove_var spec j =
  let remap (terms, s, rhs) =
    let terms =
      Array.to_list terms
      |> List.filter_map (fun (k, c) ->
             if k = j then None else Some ((if k > j then k - 1 else k), c))
      |> Array.of_list
    in
    (terms, s, rhs)
  in
  {
    spec with
    vars = Array.of_list (List.filteri (fun k _ -> k <> j) (Array.to_list spec.vars));
    obj = Array.of_list (List.filteri (fun k _ -> k <> j) (Array.to_list spec.obj));
    rows = Array.map remap spec.rows;
  }

let shrink spec =
  let nrows = Array.length spec.rows and nvars = Array.length spec.vars in
  let candidates = ref [] in
  let push c = candidates := c :: !candidates in
  (* Pointwise numeric simplifications (emitted first into the list, so
     after the final reversal structural deletions lead). *)
  Array.iteri
    (fun j c -> if c <> 0.0 then push { spec with obj = (let o = Array.copy spec.obj in o.(j) <- 0.0; o) })
    spec.obj;
  Array.iteri
    (fun i (terms, s, rhs) ->
      if rhs <> 0.0 then
        push { spec with rows = (let r = Array.copy spec.rows in r.(i) <- (terms, s, 0.0); r) };
      Array.iteri
        (fun k _ ->
          let terms' =
            Array.of_list (List.filteri (fun k' _ -> k' <> k) (Array.to_list terms))
          in
          push { spec with rows = (let r = Array.copy spec.rows in r.(i) <- (terms', s, rhs); r) })
        terms)
    spec.rows;
  (* Structural deletions: rows first, then variables. *)
  if nvars > 1 then
    for j = nvars - 1 downto 0 do
      push (remove_var spec j)
    done;
  for i = nrows - 1 downto 0 do
    push (remove_row spec i)
  done;
  List.to_seq !candidates

let arb_of gen = Check.arb ~shrink ~pp gen
let arb_milp_small = arb_of milp_small
let arb_lp_bounded = arb_of lp_bounded
let arb_milp_mixed = arb_of milp_mixed
