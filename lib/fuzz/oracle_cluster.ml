(* Model-based fuzz of the on-disk plan store.

   [store_roundtrip_sound]: a random program of puts, gets, flushes and
   restarts runs against both [Cluster.Store] and a plain in-memory map.
   After every get the two must agree; a restart (close + reopen from
   the same directory) must preserve exactly the model's contents —
   flushed or not, since the segment itself is the source of truth and
   the index snapshot only an accelerator.  Capped puts go to neither
   (the store refuses them at its boundary, mirroring the service-layer
   poisoning rule), so a capped entry resurfacing after any sequence of
   restarts is a failure. *)

open Check

let failf fmt = Printf.ksprintf (fun s -> Error s) fmt

(* A small key space so puts collide (exercising supersede + dead-byte
   accounting) and gets hit. *)
let key_of i = Printf.sprintf "fp%02d" (i mod 12)

type op =
  | Put of int * string * bool  (* key, value, capped *)
  | Get of int
  | Flush
  | Reopen

let pp_op ppf = function
  | Put (k, v, capped) ->
      Format.fprintf ppf "put %s %S%s" (key_of k) v
        (if capped then " (capped)" else "")
  | Get k -> Format.fprintf ppf "get %s" (key_of k)
  | Flush -> Format.fprintf ppf "flush"
  | Reopen -> Format.fprintf ppf "reopen"

let pp_case ppf ops =
  Format.fprintf ppf "%d ops:" (List.length ops);
  List.iter (fun op -> Format.fprintf ppf "@ %a;" pp_op op) ops

let gen_value : string Gen.t =
  Gen.string_of ~max:48 (Gen.char_range '\x00' '\xff')

let gen_op : op Gen.t =
  Gen.frequency
    [
      ( 5,
        fun rng ->
          Put
            ( Gen.int_range 0 11 rng,
              gen_value rng,
              Gen.int_range 0 9 rng = 0 ) );
      (4, Gen.map (fun k -> Get k) (Gen.int_range 0 11));
      (1, Gen.return Flush);
      (1, Gen.return Reopen);
    ]

let gen_case : op list Gen.t = Gen.list ~max:48 gen_op

let arb_case = Check.arb ~pp:pp_case ~shrink:Shrink.list gen_case

let temp_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "etransform_fuzz_store_%d_%x" (Unix.getpid ())
         (Hashtbl.hash (Unix.gettimeofday ())))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let store_roundtrip_sound ops =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Unix.Unix_error _ -> ())
    (fun () ->
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      let store = ref (Cluster.Store.open_ ~dir) in
      let check_key i =
        let key = key_of i in
        let want = Hashtbl.find_opt model key in
        let got = Cluster.Store.find !store key in
        if got <> want then
          failf "get %s: store %s, model %s" key
            (match got with Some v -> Printf.sprintf "%S" v | None -> "miss")
            (match want with Some v -> Printf.sprintf "%S" v | None -> "miss")
        else Ok ()
      in
      let rec run = function
        | [] -> Ok ()
        | op :: rest -> (
            match op with
            | Put (k, v, capped) ->
                Cluster.Store.add !store ~capped (key_of k) v;
                if not capped then Hashtbl.replace model (key_of k) v;
                run rest
            | Get k -> (
                match check_key k with Ok () -> run rest | e -> e)
            | Flush ->
                Cluster.Store.flush !store;
                run rest
            | Reopen -> (
                Cluster.Store.close !store;
                store := Cluster.Store.open_ ~dir;
                (* A restart must preserve exactly the model: every key
                   readable, nothing (capped puts!) resurrected. *)
                let rec all i =
                  if i >= 12 then Ok ()
                  else match check_key i with Ok () -> all (i + 1) | e -> e
                in
                match all 0 with
                | Ok () ->
                    if
                      Cluster.Store.length !store <> Hashtbl.length model
                    then
                      failf "after reopen: %d entries on disk, model has %d"
                        (Cluster.Store.length !store)
                        (Hashtbl.length model)
                    else run rest
                | e -> e))
      in
      let verdict = run ops in
      Cluster.Store.close !store;
      verdict)

let props =
  [
    prop ~count:60 ~smoke_count:10 "store_roundtrip_sound" arb_case
      store_roundtrip_sound;
  ]
