(** Thread-safe metrics registry for the planning service, rendered in
    Prometheus text exposition format by the HTTP server's [/metrics]
    route.

    Three metric kinds, all label-aware:

    - {b counters} ({!incr}): monotonically increasing totals — requests
      by route/status, jobs by outcome, cache hits/misses;
    - {b gauges} ({!set}, {!gauge}): point-in-time values — queue depth,
      in-flight connections.  Callback gauges ({!gauge}) are sampled at
      {!render} time, so live pool state needs no polling thread;
    - {b histograms} ({!observe}): fixed cumulative buckets plus sum and
      count — solve wall time, HTTP request latency.

    Metric names are used as given (callers pick the [etransform_] prefix);
    help text is attached on first registration and label sets may vary
    per observation.  Every operation takes the registry lock, so worker
    domains and connection threads share one registry safely. *)

type t

val create : unit -> t

(** Latency buckets used when {!observe} is not given explicit ones:
    100µs .. 60s in roughly 1-2.5-5 steps. *)
val default_buckets : float array

(** [incr t name ~labels ()] adds [by] (default [1.0]) to the counter
    cell for this label set, creating it at zero first. *)
val incr :
  t -> ?help:string -> ?labels:(string * string) list -> ?by:float ->
  string -> unit

(** [set t name ~labels v] sets a gauge cell. *)
val set :
  t -> ?help:string -> ?labels:(string * string) list -> string -> float ->
  unit

(** [gauge t name f] registers a callback gauge: [f ()] is sampled at
    {!render} time and may return several label sets.  Re-registering a
    name replaces the callback. *)
val gauge :
  t -> ?help:string -> string ->
  (unit -> ((string * string) list * float) list) -> unit

(** [observe t name v] records [v] into the histogram for this label set.
    [buckets] (upper bounds, ascending; [+Inf] is implicit) is fixed on
    first observation of the name; later values are ignored. *)
val observe :
  t -> ?help:string -> ?labels:(string * string) list ->
  ?buckets:float array -> string -> float -> unit

(** [value t name ~labels] is the current counter/gauge cell value, for
    tests.  Histograms report their observation count. *)
val value : t -> ?labels:(string * string) list -> string -> float option

(** Prometheus text format: [# HELP] / [# TYPE] preamble per metric,
    cells sorted by name then serialized labels, histograms as
    [_bucket{le=...}] / [_sum] / [_count].  Callback gauges are sampled
    here. *)
val render : t -> string

(** [observe_trace t fields] folds one {!Trace} event into the registry:
    ["job"] events increment [etransform_jobs_total{code,cache}] and feed
    the [etransform_job_queue_seconds] / [etransform_job_solve_seconds]
    histograms; ["batch"] events increment [etransform_batches_total].
    Install with [Trace.tee yours (Trace.observer (observe_trace t))] to
    meter a pool without touching its trace stream. *)
val observe_trace : t -> (string * Json.t) list -> unit
