type hist = {
  buckets : float array;  (* ascending upper bounds, +Inf implicit *)
  counts : float array;   (* per-bucket, cumulated only at render time *)
  mutable overflow : float;
  mutable sum : float;
  mutable count : float;
}

type cells =
  | Scalar of (string, float ref) Hashtbl.t
  | Hist of (string, hist) Hashtbl.t

type metric = { kind : string; help : string; cells : cells }

type t = {
  lock : Mutex.t;
  metrics : (string, metric) Hashtbl.t;
  sampled : (string, string * (unit -> ((string * string) list * float) list))
      Hashtbl.t;  (* callback gauges, sampled at render *)
}

let create () =
  {
    lock = Mutex.create ();
    metrics = Hashtbl.create 16;
    sampled = Hashtbl.create 4;
  }

let default_buckets =
  [|
    1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 0.01; 0.025; 0.05; 0.1; 0.25;
    0.5; 1.0; 2.5; 5.0; 10.0; 30.0; 60.0;
  |]

(* Canonical label rendering: sorted by name so permuted label lists land
   in the same cell, values escaped per the exposition format. *)
let label_key labels =
  match labels with
  | [] -> ""
  | _ ->
      let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      let buf = Buffer.create 32 in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          String.iter
            (function
              | '\\' -> Buffer.add_string buf "\\\\"
              | '"' -> Buffer.add_string buf "\\\""
              | '\n' -> Buffer.add_string buf "\\n"
              | c -> Buffer.add_char buf c)
            v;
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_metric t ~kind ~help ~hist name =
  match Hashtbl.find_opt t.metrics name with
  | Some m -> m
  | None ->
      let cells =
        if hist then Hist (Hashtbl.create 4) else Scalar (Hashtbl.create 4)
      in
      let m = { kind; help; cells } in
      Hashtbl.replace t.metrics name m;
      m

let scalar_cell m key =
  match m.cells with
  | Scalar tbl -> (
      match Hashtbl.find_opt tbl key with
      | Some r -> r
      | None ->
          let r = ref 0.0 in
          Hashtbl.replace tbl key r;
          r)
  | Hist _ -> invalid_arg "Metrics: scalar operation on a histogram"

let incr t ?(help = "") ?(labels = []) ?(by = 1.0) name =
  locked t (fun () ->
      let m = get_metric t ~kind:"counter" ~help ~hist:false name in
      let r = scalar_cell m (label_key labels) in
      r := !r +. by)

let set t ?(help = "") ?(labels = []) name v =
  locked t (fun () ->
      let m = get_metric t ~kind:"gauge" ~help ~hist:false name in
      scalar_cell m (label_key labels) := v)

let gauge t ?(help = "") name f =
  locked t (fun () -> Hashtbl.replace t.sampled name (help, f))

let observe t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name v =
  locked t (fun () ->
      let m = get_metric t ~kind:"histogram" ~help ~hist:true name in
      match m.cells with
      | Scalar _ -> invalid_arg "Metrics: observe on a counter/gauge"
      | Hist tbl ->
          let key = label_key labels in
          let h =
            match Hashtbl.find_opt tbl key with
            | Some h -> h
            | None ->
                let h =
                  {
                    buckets;
                    counts = Array.make (Array.length buckets) 0.0;
                    overflow = 0.0;
                    sum = 0.0;
                    count = 0.0;
                  }
                in
                Hashtbl.replace tbl key h;
                h
          in
          let rec place i =
            if i >= Array.length h.buckets then h.overflow <- h.overflow +. 1.0
            else if v <= h.buckets.(i) then h.counts.(i) <- h.counts.(i) +. 1.0
            else place (i + 1)
          in
          place 0;
          h.sum <- h.sum +. v;
          h.count <- h.count +. 1.0)

let value t ?(labels = []) name =
  locked t (fun () ->
      match Hashtbl.find_opt t.metrics name with
      | None -> None
      | Some m -> (
          let key = label_key labels in
          match m.cells with
          | Scalar tbl -> Option.map ( ! ) (Hashtbl.find_opt tbl key)
          | Hist tbl ->
              Option.map (fun h -> h.count) (Hashtbl.find_opt tbl key)))

(* ----------------------------------------------------------- rendering *)

let float_text v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let render t =
  let buf = Buffer.create 1024 in
  let preamble name help kind =
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  (* Sample the callback gauges outside the registry lock: a callback that
     queries the pool (which logs to a trace teed into this registry) must
     not deadlock against our own mutex. *)
  let sampled =
    locked t (fun () -> sorted_bindings t.sampled)
    |> List.map (fun (name, (help, f)) ->
           (name, help, (try f () with _ -> [])))
  in
  let stored = locked t (fun () -> sorted_bindings t.metrics) in
  List.iter
    (fun (name, m) ->
      preamble name m.help m.kind;
      match m.cells with
      | Scalar tbl ->
          List.iter
            (fun (key, r) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name key (float_text !r)))
            (sorted_bindings tbl)
      | Hist tbl ->
          List.iter
            (fun (key, h) ->
              (* The bucket label joins any user labels inside one brace
                 group. *)
              let with_le le =
                if key = "" then Printf.sprintf "{le=\"%s\"}" le
                else
                  Printf.sprintf "%s,le=\"%s\"}"
                    (String.sub key 0 (String.length key - 1))
                    le
              in
              let cum = ref 0.0 in
              Array.iteri
                (fun i b ->
                  cum := !cum +. h.counts.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %s\n" name (with_le (float_text b))
                       (float_text !cum)))
                h.buckets;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %s\n" name (with_le "+Inf")
                   (float_text (!cum +. h.overflow)));
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" name key (float_text h.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %s\n" name key (float_text h.count)))
            (sorted_bindings tbl))
    stored;
  List.iter
    (fun (name, help, samples) ->
      preamble name help "gauge";
      List.iter
        (fun (labels, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (label_key labels) (float_text v)))
        samples)
    sampled;
  Buffer.contents buf

(* ------------------------------------------------------ trace plumbing *)

let observe_trace t fields =
  let str k = Option.bind (List.assoc_opt k fields) Json.to_str in
  let num k = Option.bind (List.assoc_opt k fields) Json.to_float in
  match str "event" with
  | Some "job" ->
      let code = Option.value ~default:"unknown" (str "code") in
      let cache = Option.value ~default:"miss" (str "cache") in
      incr t "etransform_jobs_total"
        ~help:"Planning jobs completed, by outcome and cache disposition"
        ~labels:[ ("code", code); ("cache", cache) ];
      Option.iter
        (fun s ->
          observe t "etransform_job_queue_seconds"
            ~help:"Time from submission to start of execution" s)
        (num "queue_s");
      Option.iter
        (fun s ->
          observe t "etransform_job_solve_seconds"
            ~help:"Engine wall time per job (0 on cache hits)" s)
        (num "solve_s")
  | Some "batch" ->
      incr t "etransform_batches_total" ~help:"Batches completed"
  | Some "sweep" ->
      incr t "etransform_sweeps_total" ~help:"Parameter sweeps completed";
      let points = Option.value ~default:0.0 (num "points") in
      let hits = Option.value ~default:0.0 (num "cache_hits") in
      let points_help =
        "Sweep grid points solved, by plan-cache disposition"
      in
      if hits > 0.0 then
        incr t "etransform_sweep_points_total" ~help:points_help
          ~labels:[ ("cache", "hit") ] ~by:hits;
      if points -. hits > 0.0 then
        incr t "etransform_sweep_points_total" ~help:points_help
          ~labels:[ ("cache", "miss") ]
          ~by:(points -. hits);
      Option.iter
        (fun n ->
          set t "etransform_sweep_frontier_size"
            ~help:"Non-dominated points on the last sweep's frontier" n)
        (num "frontier")
  | _ -> ()
