(** Content-addressed LRU plan cache.

    Keys are job fingerprints ({!Job.fingerprint}); values are whatever the
    pool stores — in practice {!Etransform.Solver.outcome}s of successful,
    non-degraded solves.  The cache is bounded: inserting beyond [capacity]
    evicts the least-recently-used entry.  All operations are thread-safe
    (the pool's worker domains share one cache). *)

type 'a t

(** [create ~capacity ()] — [capacity <= 0] disables caching (every lookup
    misses, every insert is dropped). *)
val create : capacity:int -> unit -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [find t key] returns the cached value and marks it most recently
    used. *)
val find : 'a t -> string -> 'a option

(** [add t key v] inserts or refreshes [key], evicting the LRU entry when
    over capacity. *)
val add : 'a t -> string -> 'a -> unit

(** Every cached key, in no particular order — the cluster layer folds
    these into the gossip digest of locally-held plans. *)
val keys : 'a t -> string list

(** Monotonic counters since [create]. *)
val hits : 'a t -> int

val misses : 'a t -> int
val evictions : 'a t -> int
