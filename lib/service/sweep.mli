(** Streaming parameter sweeps with cost-vs-resilience Pareto frontiers.

    A sweep fans one base job across a parameter grid — failure radius,
    concurrent failures, early-warning window, business-impact spread ω,
    latency budget — through the {!Pool} as ordinary fingerprinted jobs:
    repeated and overlapping sweeps hit the plan cache point by point,
    and a sweep point whose knobs coincide with the plain model shares
    the plain job's fingerprint outright.

    Results stream to the caller in grid order as each point (and its
    predecessors) completes; the non-dominated cost-vs-resilience
    frontier is computed at the end, with every point scored under the
    single strictest spec the grid reaches so resilience values are
    comparable across the sweep. *)

type grid = {
  radius_km : float option list;
  max_concurrent : int list;
  warning_s : float option list;
  omega : float option list;
  max_latency_ms : float option list;
}
(** One list per swept axis; an empty list keeps the base job's value. *)

val empty_grid : grid

(** Expansion cap enforced by {!request_of_json}. *)
val max_points : int

val grid_points : grid -> Job.t -> int

(** Decode the ["grid"] member: each axis an array of numbers (or [null]
    for "unconstrained").  Missing axes keep the base job's value. *)
val grid_of_json : Json.t -> (grid, string) result

(** Decode a sweep request: a {!Batch} job spec plus a ["grid"] member.
    Rejects grids beyond {!max_points}. *)
val request_of_json :
  ?resolve:Batch.resolver -> Json.t -> (Job.t * grid, string) result

(** [expand base grid] is the grid's cartesian product in one fixed axis
    order: [(tag, job)] per point, the tag naming the axis values
    (["r=400;c=2;w=-;om=0.5;l=-"]).  Axis values matching the plain
    model normalize to "absent" so those points fingerprint like plain
    jobs. *)
val expand : Job.t -> grid -> (string * Job.t) list

(** The strictest failure spec the grid reaches — the common yardstick
    every point's resilience is scored under. *)
val scoring_spec : Job.t -> grid -> Scenario.Failure.spec

type ctx
(** Per-sweep scoring context: the estate, its synthetic geography, and
    the scoring spec, built lazily once per sweep. *)

val ctx : Job.t -> grid -> ctx

type point = {
  tag : string;
  result : Pool.result;
  cost : float option;        (** total monthly cost, when a plan exists *)
  resilience : float option;  (** {!Scenario.Failure.score} under the ctx spec *)
}

val point : ctx -> tag:string -> Pool.result -> point

(** One NDJSON line per point: the {!Batch.result_to_line} fields plus
    ["tag"] and ["resilience"]. *)
val point_line : point -> string

type summary = {
  points : int;
  cache_hits : int;
  frontier : Scenario.Pareto.point list;
  wall_s : float;
}

val summarize : ?wall_s:float -> point list -> summary

(** Terminal NDJSON line: the frontier plus sweep totals. *)
val frontier_line : summary -> string

(** Emit the ["sweep"] trace event ({!Metrics.observe_trace} listens). *)
val emit_trace : Pool.t -> summary -> unit

(** [run pool base grid ~f] submits every point, calls [f] per point in
    grid order as results complete, and returns the summary (also traced
    via {!emit_trace}). *)
val run : Pool.t -> Job.t -> grid -> f:(point -> unit) -> summary
