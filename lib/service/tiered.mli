(** Tiered plan-cache front: the in-process LRU ({!Cache}) backed by an
    ordered list of named fallback tiers — in production the cluster
    layer's on-disk store and consistent-hash peer lookup.

    Lookup walks memory → tier 1 → tier 2 …; the first hit is promoted
    into every cheaper tier (a peer-fetched plan lands in the LRU {e and}
    the local disk store), so repeated traffic converges onto the fastest
    tier that survives.  Every (tier, hit/miss) lookup outcome is counted,
    feeding the [etransform_cache_lookups_total{tier,result}] metric.

    Entries are immutable and content-addressed by job fingerprint, so
    cross-tier consistency is trivial: any copy under a fingerprint equals
    every other copy, last-write-wins is safe, and nothing needs
    invalidation.  The one poisoning hazard — deadline-capped solves whose
    fingerprint excludes the deadline — is refused at insert time
    ([~capped:true]), both here and again inside the disk store. *)

type tier = {
  name : string;  (** metric label: ["disk"], ["peer"], … *)
  remote : bool;
      (** remote tiers are skipped by {!find_local} so a peer serving
          [GET /cache/<fp>] never fans the lookup back out to its own
          peers (no forwarding loops) *)
  find : string -> Etransform.Solver.outcome option;
  store : capped:bool -> string -> Etransform.Solver.outcome -> unit;
  bytes : (unit -> float) option;
      (** occupancy gauge, when the tier is backed by real storage *)
}

type t

(** [create ~cache_capacity ()] — the LRU front plus [tiers] in lookup
    order (cheapest first). *)
val create : ?tiers:tier list -> cache_capacity:int -> unit -> t

(** The in-memory LRU tier, for existing metrics and tests. *)
val lru : t -> Etransform.Solver.outcome Cache.t

(** ["memory"] followed by the backing tiers' names, lookup order. *)
val tier_names : t -> string list

(** [find t fp] walks every tier; [Some (outcome, tier_name)] on the
    first hit (after promoting it into the cheaper tiers). *)
val find : t -> string -> (Etransform.Solver.outcome * string) option

(** [find_local t fp] is {!find} restricted to local tiers (memory and
    disk) — what a node answers to a peer's [GET /cache/<fp>]. *)
val find_local : t -> string -> Etransform.Solver.outcome option

(** [add t ~capped fp outcome] inserts into the LRU and offers the entry
    to every tier.  [capped:true] (a deadline-capped solve) is refused
    everywhere — see the poisoning note above. *)
val add : t -> capped:bool -> string -> Etransform.Solver.outcome -> unit

(** Fingerprints currently held in the memory tier (the disk store owns
    its own key list) — the cluster layer's gossip digest input. *)
val keys : t -> string list

(** Lookup counters since creation: [((tier, result), n)] sorted, where
    result is ["hit"] or ["miss"]. *)
val counts : t -> ((string * string) * int) list

(** The occupancy gauge of the first tier that has one (the disk store),
    if any. *)
val disk_bytes : t -> (unit -> float) option
