type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of string

(* ------------------------------------------------------------- parsing *)

type state = { s : string; mutable pos : int }

let fail st msg = raise (Fail (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* UTF-8 encode one scalar value (for \uXXXX escapes). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

(* Strict 4-hex-digit parse: [int_of_string_opt "0x..."] would also accept
   underscores inside the digits, which JSON forbids. *)
let parse_hex4 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape"
  in
  let u =
    (digit st.s.[st.pos] lsl 12)
    lor (digit st.s.[st.pos + 1] lsl 8)
    lor (digit st.s.[st.pos + 2] lsl 4)
    lor digit st.s.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  u

let is_high_surrogate u = u >= 0xD800 && u <= 0xDBFF
let is_low_surrogate u = u >= 0xDC00 && u <= 0xDFFF

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = parse_hex4 st in
                if is_low_surrogate u then
                  fail st "unpaired low surrogate in \\u escape"
                else if is_high_surrogate u then begin
                  (* A high surrogate is only half a scalar: it must be
                     followed by \uDC00-\uDFFF, and the pair combines into
                     one supplementary-plane code point. *)
                  if
                    st.pos + 2 > String.length st.s
                    || st.s.[st.pos] <> '\\'
                    || st.s.[st.pos + 1] <> 'u'
                  then fail st "unpaired high surrogate in \\u escape";
                  st.pos <- st.pos + 2;
                  let lo = parse_hex4 st in
                  if not (is_low_surrogate lo) then
                    fail st "unpaired high surrogate in \\u escape";
                  add_utf8 buf
                    (0x10000
                    + ((u - 0xD800) lsl 10)
                    + (lo - 0xDC00))
                end
                else add_utf8 buf u
            | _ -> fail st "unknown escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek st with Some c when is_num_char c -> true | _ -> false
  do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected , or } in object"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected , or ] in array"
        in
        List (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------ printing *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  (* JSON has no NaN/Infinity; emit null for any non-finite value. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string j =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          items;
        Buffer.add_char buf ']'
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go v)
          members;
        Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* ----------------------------------------------------------- accessors *)

let member k = function Obj ms -> List.assoc_opt k ms | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function Str s -> Some s | _ -> None
