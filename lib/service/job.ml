type estate =
  | Dataset of {
      name : string;
      scale : float;
      seed : int;
      groups : int;
      targets : int;
    }
  | Inline of { key : string; build : unit -> Etransform.Asis.t }

type milp_overrides = {
  node_limit : int option;
  time_limit : float option;
  gap_tol : float option;
  workers : int option;
  branching : Lp.Branching.strategy option;
  pump : bool option;
  cuts : bool option;
}

let no_overrides =
  {
    node_limit = None;
    time_limit = None;
    gap_tol = None;
    workers = None;
    branching = None;
    pump = None;
    cuts = None;
  }

type scenario_overrides = {
  radius_km : float option;
  max_concurrent : int option;
  warning_s : float option;
  link_mb_s : float option;
  max_latency_ms : float option;
}

let no_scenario =
  {
    radius_km = None;
    max_concurrent = None;
    warning_s = None;
    link_mb_s = None;
    max_latency_ms = None;
  }

type t = {
  id : string;
  estate : estate;
  dr : bool;
  economies_of_scale : bool;
  fixed_charges : bool;
  omega : float option;
  reserve : float option;
  dr_server_cost : float option;
  milp : milp_overrides;
  scenario : scenario_overrides;
  deadline_s : float option;
  degrade : bool;
}

let v ?(id = "") ?(dr = false) ?(economies_of_scale = false)
    ?(fixed_charges = false) ?omega ?reserve ?dr_server_cost
    ?(milp = no_overrides) ?(scenario = no_scenario) ?deadline_s
    ?(degrade = true) estate =
  {
    id;
    estate;
    dr;
    economies_of_scale;
    fixed_charges;
    omega;
    reserve;
    dr_server_cost;
    milp;
    scenario;
    deadline_s;
    degrade;
  }

(* Hex floats round-trip exactly, so two jobs fingerprint equal iff their
   numeric fields are bit-identical. *)
let fl f = Printf.sprintf "%h" f

let opt f = function None -> "~" | Some v -> f v

let estate_key = function
  | Dataset { name; scale; seed; groups; targets } ->
      Printf.sprintf "dataset:%s:%s:%d:%d:%d" name (fl scale) seed groups
        targets
  | Inline { key; _ } -> "inline:" ^ key

(* One fixed field order; delivery-only fields (id, deadline_s, degrade)
   are deliberately absent so retries and tighter deadlines still hit.
   Scenario fields join the serialization only when set at all, so every
   fingerprint minted before the scenario engine existed — including the
   sweep grid's plain points — is unchanged. *)
let canonical job =
  let base =
    [
      "v2";
      estate_key job.estate;
      (if job.dr then "dr" else "nodr");
      (if job.economies_of_scale then "eos" else "noeos");
      (if job.fixed_charges then "fixed" else "nofixed");
      "omega=" ^ opt fl job.omega;
      "reserve=" ^ opt fl job.reserve;
      "zeta=" ^ opt fl job.dr_server_cost;
      "nodes=" ^ opt string_of_int job.milp.node_limit;
      "time=" ^ opt fl job.milp.time_limit;
      "gap=" ^ opt fl job.milp.gap_tol;
      "workers=" ^ opt string_of_int job.milp.workers;
      "branch=" ^ opt Lp.Branching.strategy_to_string job.milp.branching;
      "pump=" ^ opt string_of_bool job.milp.pump;
      "cuts=" ^ opt string_of_bool job.milp.cuts;
    ]
  in
  let scen =
    if job.scenario = no_scenario then []
    else
      [
        "radius=" ^ opt fl job.scenario.radius_km;
        "conc=" ^ opt string_of_int job.scenario.max_concurrent;
        "warn=" ^ opt fl job.scenario.warning_s;
        "link=" ^ opt fl job.scenario.link_mb_s;
        "maxlat=" ^ opt fl job.scenario.max_latency_ms;
      ]
  in
  String.concat "|" (base @ scen)

let fingerprint job = Digest.to_hex (Digest.string (canonical job))

let build_estate job =
  let asis =
    match job.estate with
    | Inline { build; _ } -> build ()
    | Dataset { name; scale; seed; groups; targets } -> (
        match name with
        | "enterprise1" -> Datasets.Enterprise1.asis ~scale ()
        | "florida" -> Datasets.Florida.asis ~scale ()
        | "federal" -> Datasets.Federal.asis ~scale ()
        | "synthetic" ->
            Datasets.Synth.generate
              {
                Datasets.Synth.default with
                Datasets.Synth.seed;
                n_groups = groups;
                n_targets = targets;
                total_servers = groups * 8;
              }
        | other -> invalid_arg (Printf.sprintf "unknown dataset %S" other))
  in
  match job.dr_server_cost with
  | None -> asis
  | Some zeta ->
      {
        asis with
        Etransform.Asis.params =
          { asis.Etransform.Asis.params with Etransform.Asis.dr_server_cost = zeta };
      }

let failure_spec job =
  let d = Scenario.Failure.default in
  {
    Scenario.Failure.radius_km = job.scenario.radius_km;
    max_concurrent =
      Option.value job.scenario.max_concurrent
        ~default:d.Scenario.Failure.max_concurrent;
    warning_s = job.scenario.warning_s;
    link_mb_s =
      Option.value job.scenario.link_mb_s ~default:d.Scenario.Failure.link_mb_s;
  }

let milp_options job =
  let base = Etransform.Solver.default_milp_options in
  {
    base with
    Lp.Milp.node_limit =
      Option.value job.milp.node_limit ~default:base.Lp.Milp.node_limit;
    time_limit =
      Option.value job.milp.time_limit ~default:base.Lp.Milp.time_limit;
    gap_tol = Option.value job.milp.gap_tol ~default:base.Lp.Milp.gap_tol;
    workers = Option.value job.milp.workers ~default:base.Lp.Milp.workers;
    branch_strategy =
      Option.value job.milp.branching ~default:base.Lp.Milp.branch_strategy;
    pump = Option.value job.milp.pump ~default:base.Lp.Milp.pump;
    root_cuts = Option.value job.milp.cuts ~default:base.Lp.Milp.root_cuts;
  }
