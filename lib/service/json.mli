(** Minimal JSON support for the planning service: NDJSON job specs,
    result lines, and the trace sink.  Hand-rolled because the image ships
    no JSON library; covers the full value grammar but none of the
    extensions (comments, NaN, trailing commas). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] parses one JSON document.  [Error msg] carries a position. *)
val parse : string -> (t, string) result

(** Compact single-line rendering (safe for NDJSON / JSONL streams). *)
val to_string : t -> string

(** [member k j] is the value under key [k] when [j] is an object. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
