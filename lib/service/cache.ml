(* Classic hash-map + intrusive doubly-linked recency list: O(1) find,
   add, and eviction.  [head] is most recently used, [tail] least. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity () =
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  if t.tail = None then t.tail <- Some node

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some node ->
          t.hits <- t.hits + 1;
          unlink t node;
          push_front t node;
          Some node.value)

let add t key value =
  if t.capacity > 0 then
    with_lock t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some node ->
            node.value <- value;
            unlink t node;
            push_front t node
        | None ->
            let node = { key; value; prev = None; next = None } in
            Hashtbl.replace t.table key node;
            push_front t node);
        if Hashtbl.length t.table > t.capacity then
          match t.tail with
          | None -> ()
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key;
              t.evictions <- t.evictions + 1)

let keys t =
  with_lock t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
