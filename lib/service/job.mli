(** Planning jobs: one consolidation (or DR) scenario to solve, plus the
    solver knobs and service policies that govern the solve.

    A job is the unit of work of the {!Pool}: it names an estate (a bundled
    dataset or an inline builder registered by the caller), whether DR is
    planned, the model options, MILP budget overrides, and the service
    policies — per-job deadline and the degradation switch.

    Jobs carry a canonical {!fingerprint} so the {!Cache} can serve repeated
    and swept scenarios from memory: the fingerprint covers every field that
    changes the resulting plan (estate key, DR flag, model options, MILP
    budgets) and excludes fields that only affect delivery ([id],
    [deadline_s], [degrade]).  It is order-insensitive by construction —
    fields are serialized in one fixed order regardless of how the job was
    specified — so permuted NDJSON keys hash identically. *)

type estate =
  | Dataset of {
      name : string;          (** enterprise1 | florida | federal | synthetic *)
      scale : float;
      seed : int;             (** synthetic only *)
      groups : int;           (** synthetic only *)
      targets : int;          (** synthetic only *)
    }
  | Inline of {
      key : string;
          (** canonical description of the estate; the cache trusts it to
              fully determine [build]'s result *)
      build : unit -> Etransform.Asis.t;
    }

(** MILP budget and strategy overrides; [None] keeps
    {!Etransform.Solver.default_milp_options}. *)
type milp_overrides = {
  node_limit : int option;
  time_limit : float option;
  gap_tol : float option;
  workers : int option;
  branching : Lp.Branching.strategy option;  (** branch-variable selection *)
  pump : bool option;      (** feasibility pump at the root *)
  cuts : bool option;      (** Gomory / cover cuts at the root *)
}

val no_overrides : milp_overrides

(** Failure-scenario overrides mapped onto {!Scenario.Failure.default};
    [None] keeps the default.  [max_latency_ms] is the stage-1 latency
    budget ({!Etransform.Lp_builder.options}).  All-[None]
    ({!no_scenario}) means the paper's model, and — unlike the MILP
    overrides — contributes nothing to the fingerprint, so legacy job
    fingerprints are unchanged. *)
type scenario_overrides = {
  radius_km : float option;
  max_concurrent : int option;
  warning_s : float option;
  link_mb_s : float option;
  max_latency_ms : float option;
}

val no_scenario : scenario_overrides

type t = {
  id : string;                    (** client tag echoed in results *)
  estate : estate;
  dr : bool;                      (** plan disaster recovery too *)
  economies_of_scale : bool;
  fixed_charges : bool;
  omega : float option;           (** business-impact spread *)
  reserve : float option;         (** DR stage-1 capacity reservation *)
  dr_server_cost : float option;  (** override ζ on the built estate *)
  milp : milp_overrides;
  scenario : scenario_overrides;  (** richer DR failure model / latency budget *)
  deadline_s : float option;
      (** wall-clock budget from submission; an expired deadline degrades
          (or fails) the job instead of starting the MILP *)
  degrade : bool;
      (** on MILP failure or expired deadline, fall back to the greedy
          planner and tag the result degraded instead of failing *)
}

(** [v estate] builds a job with library defaults: non-DR, plain §III model
    (no economies of scale, no fixed charges, no spread), default MILP
    budgets, no deadline, degradation on. *)
val v :
  ?id:string ->
  ?dr:bool ->
  ?economies_of_scale:bool ->
  ?fixed_charges:bool ->
  ?omega:float ->
  ?reserve:float ->
  ?dr_server_cost:float ->
  ?milp:milp_overrides ->
  ?scenario:scenario_overrides ->
  ?deadline_s:float ->
  ?degrade:bool ->
  estate -> t

(** Canonical key of the estate alone (the [Dataset] fields or the
    [Inline] key). *)
val estate_key : estate -> string

(** Content address of the job: hex digest of the canonical serialization.
    Equal fingerprints mean "same plan, safe to serve from cache". *)
val fingerprint : t -> string

(** Materialize the estate, applying [dr_server_cost] when set. *)
val build_estate : t -> Etransform.Asis.t

(** The job's {!Scenario.Failure.spec}: defaults plus the scenario
    overrides (ignoring [max_latency_ms], which lives in the stage-1
    builder). *)
val failure_spec : t -> Scenario.Failure.spec

(** Solver budgets: {!Etransform.Solver.default_milp_options} plus the
    job's overrides. *)
val milp_options : t -> Lp.Milp.options
