open Etransform

type code = Solved | Degraded | Failed

type result = {
  job : Job.t;
  fingerprint : string;
  outcome : Solver.outcome option;
  code : code;
  reason : string option;
  cache_hit : bool;
  cache_tier : string option;
  queue_s : float;
  build_s : float;
  solve_s : float;
}

type ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable res : result option;
  mutable hooks : (result -> unit) list;
}

type task = { tjob : Job.t; submitted : float; ticket : ticket }

(* Tasks live in the same work-stealing scheduler the MILP tree search
   runs on ([Lp.Wsched], [finite:false] so idle workers park until
   shutdown, [drain:true] so shutdown serves the backlog).  Submission
   order is the priority key and jobs are dealt round-robin across the
   per-worker deques, so each worker owns a disjoint slice of the queue
   (no shared-queue convoy) and an idle worker steals the *latest*
   submission from a loaded neighbour — the job whose owner would reach
   it last. *)
type t = {
  workers : int;
  sched : task Lp.Wsched.t;
  seq : int Atomic.t;
  queue_capacity : int;
  m : Mutex.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  tiered : Tiered.t;
  trace : Trace.t;
}

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------- job execution *)

let solve job asis ~milp =
  let max_latency_ms = job.Job.scenario.Job.max_latency_ms in
  if job.Job.dr then
    (* A spec that is still the paper's model (only a latency budget set,
       say) compiles to no scenario at all, keeping the byte-identical
       default stage-2 path and its local-search polish. *)
    let scenario =
      let spec = Job.failure_spec job in
      if Scenario.Failure.is_default spec then None
      else Some (Scenario.Failure.compile spec asis)
    in
    let options =
      {
        Dr_planner.default_options with
        Dr_planner.milp;
        omega = job.Job.omega;
        economies_of_scale = job.Job.economies_of_scale;
        reserve =
          Option.value job.Job.reserve
            ~default:Dr_planner.default_options.Dr_planner.reserve;
        scenario;
        max_latency_ms;
      }
    in
    Dr_planner.plan ~options asis
  else
    let builder =
      {
        Lp_builder.default_options with
        Lp_builder.economies_of_scale = job.Job.economies_of_scale;
        fixed_charges = job.Job.fixed_charges;
        omega = job.Job.omega;
        max_latency_ms;
      }
    in
    Solver.consolidate ~builder ~milp asis

(* The degradation path: the greedy planner is the same stage-2 fallback
   the DR planner leans on when the MILP surrenders; it is fast and always
   feasible on well-formed estates. *)
let greedy_outcome job asis =
  let placement =
    if job.Job.dr then Greedy.plan_dr asis else Greedy.plan asis
  in
  {
    Solver.placement;
    summary = Evaluate.plan asis placement;
    milp_status = Lp.Status.Time_limit;
    milp_gap = 1.0;
    nodes = 0;
    lp_iterations = 0;
    local_moves = 0;
  }

let code_string = function
  | Solved -> "solved"
  | Degraded -> "degraded"
  | Failed -> "failed"

let trace_job trace r =
  let base =
    [
      ("event", Json.Str "job");
      ("id", Json.Str r.job.Job.id);
      ("fp", Json.Str r.fingerprint);
      ("code", Json.Str (code_string r.code));
      ("cache", Json.Str (if r.cache_hit then "hit" else "miss"));
      ("queue_s", Json.Num r.queue_s);
      ("build_s", Json.Num r.build_s);
      ("solve_s", Json.Num r.solve_s);
    ]
  in
  let tier =
    match r.cache_tier with None -> [] | Some t -> [ ("tier", Json.Str t) ]
  in
  let solver =
    match r.outcome with
    | None -> []
    | Some o ->
        [
          ("status", Json.Str (Lp.Status.to_string o.Solver.milp_status));
          ("gap", Json.Num o.Solver.milp_gap);
          ("nodes", Json.Num (float_of_int o.Solver.nodes));
          ("lp_iterations", Json.Num (float_of_int o.Solver.lp_iterations));
        ]
  in
  let reason =
    match r.reason with None -> [] | Some m -> [ ("reason", Json.Str m) ]
  in
  Trace.emit trace (base @ tier @ solver @ reason)

let run_task ~tiered ~trace task =
  let job = task.tjob in
  let started = now () in
  let queue_s = started -. task.submitted in
  let fingerprint = Job.fingerprint job in
  let finish ?outcome ?reason ?tier ~code ~cache_hit ~build_s ~solve_s () =
    let r =
      {
        job;
        fingerprint;
        outcome;
        code;
        reason;
        cache_hit;
        cache_tier = tier;
        queue_s;
        build_s;
        solve_s;
      }
    in
    trace_job trace r;
    r
  in
  let failed reason =
    finish ~reason ~code:Failed ~cache_hit:false ~build_s:0.0 ~solve_s:0.0 ()
  in
  let degrade_or_fail reason =
    if not job.Job.degrade then failed reason
    else
      match
        let tb = now () in
        let asis = Job.build_estate job in
        let build_s = now () -. tb in
        (greedy_outcome job asis, build_s)
      with
      | outcome, build_s ->
          finish ~outcome ~reason ~code:Degraded ~cache_hit:false ~build_s
            ~solve_s:0.0 ()
      | exception exn ->
          failed
            (Printf.sprintf "%s; greedy fallback also failed: %s" reason
               (Printexc.to_string exn))
  in
  match Tiered.find tiered fingerprint with
  | Some (outcome, tier) ->
      finish ~outcome ~tier ~code:Solved ~cache_hit:true ~build_s:0.0
        ~solve_s:0.0 ()
  | None -> (
      let time_remaining =
        Option.map (fun d -> d -. (now () -. task.submitted)) job.Job.deadline_s
      in
      match time_remaining with
      | Some r when r <= 0.0 -> degrade_or_fail "deadline expired before solve"
      | _ -> (
          let milp = Job.milp_options job in
          (* The MILP budget is CPU seconds; capping it at the wall-clock
             time remaining keeps a queued-late job from blowing its
             deadline by the full configured budget. *)
          let budget_capped, milp =
            match time_remaining with
            | Some r when r < milp.Lp.Milp.time_limit ->
                (true, { milp with Lp.Milp.time_limit = r })
            | _ -> (false, milp)
          in
          match
            let tb = now () in
            let asis = Job.build_estate job in
            let build_s = now () -. tb in
            let ts = now () in
            let outcome = solve job asis ~milp in
            let solve_s = now () -. ts in
            (outcome, build_s, solve_s)
          with
          | outcome, build_s, solve_s ->
              (* A deadline-starved budget can return a greedy/LP-rounded
                 plan tagged Time_limit; caching it under a fingerprint that
                 excludes deadline_s would serve that degraded plan to later
                 full-budget jobs.  Only full-budget solves are cacheable:
                 they alone are deterministic given the job spec.  The
                 capped bit travels down to every tier — the disk store
                 re-refuses it at its own boundary. *)
              Tiered.add tiered ~capped:budget_capped fingerprint outcome;
              finish ~outcome ~code:Solved ~cache_hit:false ~build_s ~solve_s
                ()
          | exception exn ->
              degrade_or_fail
                (Printf.sprintf "solver failed: %s" (Printexc.to_string exn))))

(* ---------------------------------------------------------------- pool *)

let resolve ticket r =
  Mutex.lock ticket.tm;
  ticket.res <- Some r;
  let hooks = ticket.hooks in
  ticket.hooks <- [];
  Condition.broadcast ticket.tc;
  Mutex.unlock ticket.tm;
  (* Hooks run outside the ticket lock, on the resolving thread (a worker
     domain, or the submitter for inline pools).  A hook that raises must
     not kill the worker. *)
  List.iter (fun f -> try f r with _ -> ()) (List.rev hooks)

let on_complete ticket f =
  Mutex.lock ticket.tm;
  match ticket.res with
  | Some r ->
      Mutex.unlock ticket.tm;
      (try f r with _ -> ())
  | None ->
      ticket.hooks <- f :: ticket.hooks;
      Mutex.unlock ticket.tm

let worker_loop t who () =
  let rec loop () =
    match Lp.Wsched.next t.sched ~who with
    | Lp.Wsched.Done | Lp.Wsched.Stopped -> ()
    | Lp.Wsched.Work (_, task) ->
        (* The task left the deques: free a capacity slot. *)
        Mutex.lock t.m;
        Condition.signal t.not_full;
        Mutex.unlock t.m;
        let r =
          try run_task ~tiered:t.tiered ~trace:t.trace task
          with exn ->
            (* Last-resort guard: a worker must always fill its ticket. *)
            {
              job = task.tjob;
              fingerprint = Job.fingerprint task.tjob;
              outcome = None;
              code = Failed;
              reason = Some (Printexc.to_string exn);
              cache_hit = false;
              cache_tier = None;
              queue_s = 0.0;
              build_s = 0.0;
              solve_s = 0.0;
            }
        in
        resolve task.ticket r;
        Lp.Wsched.done_one t.sched;
        loop ()
  in
  loop ()

let clamp_workers ~what n =
  let avail = Domain.recommended_domain_count () in
  if n > avail then begin
    Printf.eprintf "%s: clamping --workers %d to %d (recommended domain count)\n%!"
      what n avail;
    avail
  end
  else n

let create ?(workers = 2) ?(queue_capacity = 64) ?(cache_capacity = 256)
    ?(tiers = []) ?(trace = Trace.null) () =
  let workers = max 0 workers in
  let t =
    {
      workers;
      sched =
        Lp.Wsched.create ~workers:(max 1 workers) ~finite:false ~drain:true ();
      seq = Atomic.make 0;
      queue_capacity = max 1 queue_capacity;
      m = Mutex.create ();
      not_full = Condition.create ();
      closed = false;
      domains = [||];
      tiered = Tiered.create ~tiers ~cache_capacity:(max 0 cache_capacity) ();
      trace;
    }
  in
  if t.workers > 0 then
    t.domains <-
      Array.init t.workers (fun i -> Domain.spawn (worker_loop t i));
  t

let workers t = t.workers
let queue_capacity t = t.queue_capacity
let cache t = Tiered.lru t.tiered
let tiered t = t.tiered
let trace t = t.trace

let queue_depth t = Lp.Wsched.queued t.sched

let fresh_task job =
  let ticket =
    { tm = Mutex.create (); tc = Condition.create (); res = None; hooks = [] }
  in
  { tjob = job; submitted = now (); ticket }

let submit t job =
  let task = fresh_task job in
  if t.workers = 0 then begin
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    resolve task.ticket (run_task ~tiered:t.tiered ~trace:t.trace task)
  end
  else begin
    Mutex.lock t.m;
    while Lp.Wsched.queued t.sched >= t.queue_capacity && not t.closed do
      Condition.wait t.not_full t.m
    done;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    (* The submission sequence number doubles as the best-first key, so
       owners serve their slices in submission order, and as the deal:
       job [k] lands on worker [k mod workers]. *)
    let k = Atomic.fetch_and_add t.seq 1 in
    Lp.Wsched.push t.sched ~who:(k mod t.workers) ~key:(float_of_int k) task;
    Mutex.unlock t.m
  end;
  task.ticket

let try_submit t job =
  if t.workers = 0 then Some (submit t job)
  else begin
    let task = fresh_task job in
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.try_submit: pool is shut down"
    end;
    if Lp.Wsched.queued t.sched >= t.queue_capacity then begin
      Mutex.unlock t.m;
      None
    end
    else begin
      let k = Atomic.fetch_and_add t.seq 1 in
      Lp.Wsched.push t.sched ~who:(k mod t.workers) ~key:(float_of_int k)
        task;
      Mutex.unlock t.m;
      Some task.ticket
    end
  end

let await ticket =
  Mutex.lock ticket.tm;
  while ticket.res = None do
    Condition.wait ticket.tc ticket.tm
  done;
  let r = Option.get ticket.res in
  Mutex.unlock ticket.tm;
  r

let poll ticket =
  Mutex.lock ticket.tm;
  let r = ticket.res in
  Mutex.unlock ticket.tm;
  r

let stream_batch t jobs ~f =
  let t0 = now () in
  let tickets = List.map (submit t) jobs in
  let solved = ref 0 and degraded = ref 0 and failed = ref 0 in
  let cache_hits = ref 0 in
  List.iter
    (fun ticket ->
      let r = await ticket in
      (match r.code with
      | Solved -> incr solved
      | Degraded -> incr degraded
      | Failed -> incr failed);
      if r.cache_hit then incr cache_hits;
      f r)
    tickets;
  Trace.emit t.trace
    [
      ("event", Json.Str "batch");
      ("jobs", Json.Num (float_of_int (List.length jobs)));
      ("solved", Json.Num (float_of_int !solved));
      ("degraded", Json.Num (float_of_int !degraded));
      ("failed", Json.Num (float_of_int !failed));
      ("cache_hits", Json.Num (float_of_int !cache_hits));
      ("wall_s", Json.Num (now () -. t0));
    ]

let run_batch t jobs =
  let acc = ref [] in
  stream_batch t jobs ~f:(fun r -> acc := r :: !acc);
  List.rev !acc

let shutdown t =
  Mutex.lock t.m;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m;
  if not was_closed then begin
    (* Drain-mode stop: workers finish everything already queued (every
       accepted ticket resolves), then observe Stopped and exit. *)
    Lp.Wsched.stop t.sched;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ?workers ?queue_capacity ?cache_capacity ?tiers ?trace f =
  let t = create ?workers ?queue_capacity ?cache_capacity ?tiers ?trace () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
