(** Concurrent planning pool: a bounded job queue drained by OCaml 5
    domains, fronted by the content-addressed {!Cache} and instrumented
    through {!Trace}.

    Submitting a {!Job.t} yields a ticket; {!await} blocks until the job
    ran.  Each job is checked against the cache first (hits skip the MILP
    entirely), then solved with {!Etransform.Solver.consolidate} or
    {!Etransform.Dr_planner.plan}.  Per-job deadlines bound the wall clock
    spent from submission: an expired deadline skips the MILP, and a
    deadline that arrives mid-queue caps the solver's time budget to the
    time remaining.

    Degradation: with [job.degrade] (the default), an expired deadline or a
    solver exception falls back to the greedy planner
    ({!Etransform.Greedy.plan} / [plan_dr], the same stage-2 path
    {!Etransform.Dr_planner} uses when the MILP finds no incumbent) and the
    result is tagged [Degraded] rather than failing the batch.  Only clean
    [Solved] outcomes from a full (deadline-uncapped) solver budget enter
    the cache, so a degraded or budget-starved plan is never served to a
    later identical job.

    Every job is deterministic given its spec, so a pool with any worker
    count returns results identical to a sequential run; only completion
    order (and hence trace interleaving) differs. *)

type code =
  | Solved           (** full engine result (fresh or cached) *)
  | Degraded         (** greedy fallback after deadline/solver failure *)
  | Failed           (** no plan: [degrade] off, or the fallback failed too *)

type result = {
  job : Job.t;
  fingerprint : string;
  outcome : Etransform.Solver.outcome option;  (** [None] iff [Failed] *)
  code : code;
  reason : string option;  (** why the job degraded or failed *)
  cache_hit : bool;
  cache_tier : string option;
      (** which tier answered a hit: ["memory"], ["disk"] or ["peer"];
          [None] on misses *)
  queue_s : float;         (** submission → start of execution *)
  build_s : float;         (** estate + model construction *)
  solve_s : float;         (** engine time (0 on cache hits) *)
}

type t

type ticket

(** [create ()] spawns [workers] domains ([0] = run jobs inline in the
    submitting thread — fully sequential and deterministic in submission
    order).  [queue_capacity] bounds the backlog; submission blocks when
    full.  [cache_capacity] sizes the in-memory plan cache; [tiers] adds
    backing cache tiers behind it (disk store, peer lookup — see
    {!Tiered}). *)
val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?tiers:Tiered.tier list ->
  ?trace:Trace.t ->
  unit -> t

val workers : t -> int
val queue_capacity : t -> int
val cache : t -> Etransform.Solver.outcome Cache.t

(** The full tiered cache front ({!cache} is just its memory tier). *)
val tiered : t -> Tiered.t

(** The trace sink the pool was created with ({!Trace.null} by default) —
    lets layered drivers (sweeps above all) emit their own summary events
    into the same stream. *)
val trace : t -> Trace.t

(** Jobs currently waiting in the queue (excludes the ones workers are
    executing).  Always [0] on inline ([workers = 0]) pools. *)
val queue_depth : t -> int

(** [submit t job] enqueues the job (blocking while the queue is full).
    Raises [Invalid_argument] after {!shutdown}. *)
val submit : t -> Job.t -> ticket

(** [try_submit t job] is [submit] without the blocking: [None] when the
    queue is full right now — the HTTP front-end turns that into a [503]
    instead of stalling its accept loop.  Inline pools always accept. *)
val try_submit : t -> Job.t -> ticket option

(** [await ticket] blocks until the job completed. *)
val await : ticket -> result

(** [poll ticket] is [Some result] iff the job already completed; never
    blocks. *)
val poll : ticket -> result option

(** [on_complete ticket f] runs [f result] once the job completes:
    immediately (in the calling thread) when it already has, otherwise
    from the thread that resolves the ticket — a worker domain, so [f]
    must be quick and thread-safe.  This is the completion hook the
    event-driven HTTP reactor uses to get woken through its self-pipe
    instead of parking a thread in {!await}.  Hooks run outside the
    ticket lock, in registration order; exceptions are swallowed. *)
val on_complete : ticket -> (result -> unit) -> unit

(** [run_batch t jobs] submits every job and returns results in submission
    order; also emits a ["batch"] trace summary. *)
val run_batch : t -> Job.t list -> result list

(** [stream_batch t jobs ~f] is {!run_batch} but delivers each result to
    [f] as soon as it (and all its predecessors) completed, preserving
    submission order. *)
val stream_batch : t -> Job.t list -> f:(result -> unit) -> unit

(** Drain the queue and join the worker domains.  Idempotent. *)
val shutdown : t -> unit

(** [clamp_workers ~what n] caps a worker-count flag at
    [Domain.recommended_domain_count ()], printing a one-line [what]-tagged
    warning on stderr when it clamps.  Oversubscribing domains on a
    machine with fewer cores only adds scheduler thrash — front-end flags
    ([--workers]) should pass through here before reaching a pool or
    {!Lp.Milp.options}. *)
val clamp_workers : what:string -> int -> int

(** [with_pool f] runs [f] over a fresh pool and always shuts it down. *)
val with_pool :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?tiers:Tiered.tier list ->
  ?trace:Trace.t ->
  (t -> 'a) -> 'a
