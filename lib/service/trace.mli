(** Structured JSONL trace sink for the planning service.

    Every event is one JSON object on one line, so both shell pipelines and
    the test suite can consume the stream.  The pool emits one ["job"]
    event per completed job (spans: queue wait, estate/model build, solve;
    counters: B&B nodes, LP iterations; cache hit/miss; degradation) and
    one ["batch"] summary per batch.  Emission is thread-safe — worker
    domains share one sink. *)

type t

(** Drops every event. *)
val null : t

(** Writes (and flushes) one line per event to the channel. *)
val to_channel : out_channel -> t

(** Accumulates lines in memory, for tests. *)
val memory : unit -> t

(** [observer f] calls [f fields] synchronously on every event instead of
    serializing it — the hook {!Metrics.observe_trace} plugs into.  [f]
    runs on the emitting worker's domain and must be thread-safe. *)
val observer : ((string * Json.t) list -> unit) -> t

(** [tee a b] emits every event to both sinks ([null] operands collapse
    away).  Lets a pool keep its JSONL trace while a metrics registry
    listens in. *)
val tee : t -> t -> t

(** The accumulated JSONL text of a {!memory} sink ("" otherwise). *)
val contents : t -> string

(** [emit t fields] writes [fields] as one JSON object line, prefixed with
    a monotonically increasing ["seq"] number. *)
val emit : t -> (string * Json.t) list -> unit
