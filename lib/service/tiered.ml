type tier = {
  name : string;
  remote : bool;
  find : string -> Etransform.Solver.outcome option;
  store : capped:bool -> string -> Etransform.Solver.outcome -> unit;
  bytes : (unit -> float) option;
}

type t = {
  lru : Etransform.Solver.outcome Cache.t;
  tiers : tier list;
  counts : (string * string, int ref) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(tiers = []) ~cache_capacity () =
  {
    lru = Cache.create ~capacity:(max 0 cache_capacity) ();
    tiers;
    counts = Hashtbl.create 8;
    lock = Mutex.create ();
  }

let lru t = t.lru
let tier_names t = "memory" :: List.map (fun tr -> tr.name) t.tiers

let count t tier result =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.counts (tier, result) with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counts (tier, result) (ref 1));
  Mutex.unlock t.lock

let counts t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counts [] in
  Mutex.unlock t.lock;
  List.sort compare l

(* Promotion: a hit at tier [i] back-fills every cheaper tier, so the
   next identical lookup stops earlier — a peer-fetched plan lands in
   both the LRU and the local disk store.  Promotions are never capped
   by construction (capped solves are refused at insert time and so are
   never found in any tier). *)
let promote t missed fingerprint outcome =
  Cache.add t.lru fingerprint outcome;
  List.iter (fun tr -> tr.store ~capped:false fingerprint outcome) missed

let find t fingerprint =
  match Cache.find t.lru fingerprint with
  | Some outcome ->
      count t "memory" "hit";
      Some (outcome, "memory")
  | None ->
      count t "memory" "miss";
      let rec descend missed = function
        | [] -> None
        | tr :: rest -> (
            match tr.find fingerprint with
            | Some outcome ->
                count t tr.name "hit";
                promote t (List.rev missed) fingerprint outcome;
                Some (outcome, tr.name)
            | None ->
                count t tr.name "miss";
                descend (tr :: missed) rest)
      in
      descend [] t.tiers

let find_local t fingerprint =
  match Cache.find t.lru fingerprint with
  | Some outcome ->
      count t "memory" "hit";
      Some outcome
  | None ->
      count t "memory" "miss";
      let rec descend = function
        | [] -> None
        | { remote = true; _ } :: rest -> descend rest
        | tr :: rest -> (
            match tr.find fingerprint with
            | Some outcome ->
                count t tr.name "hit";
                Cache.add t.lru fingerprint outcome;
                Some outcome
            | None ->
                count t tr.name "miss";
                descend rest)
      in
      descend t.tiers

let add t ~capped fingerprint outcome =
  if not capped then Cache.add t.lru fingerprint outcome;
  (* Tiers see the capped bit themselves: the disk store re-checks it at
     its own boundary (defense in depth against future callers that skip
     this front). *)
  List.iter (fun tr -> tr.store ~capped fingerprint outcome) t.tiers

let keys t =
  List.sort_uniq compare (Cache.keys t.lru)

let disk_bytes t =
  let rec first = function
    | [] -> None
    | { bytes = Some f; _ } :: _ -> Some f
    | _ :: rest -> first rest
  in
  first t.tiers
