(** NDJSON front-end: one job spec per input line, one result per output
    line, in input order.

    Job spec schema (all fields except ["estate"] optional):
    {v
    {"id":"j1",
     "estate":{"kind":"dataset","name":"enterprise1","scale":1.0},
     "dr":false, "eos":false, "fixed_charges":false,
     "omega":0.5, "reserve":0.3, "dr_server_cost":100.0,
     "milp":{"nodes":24,"time":60.0,"gap":0.005,"workers":1},
     "deadline_s":10.0, "degrade":true}
    v}

    Estate kinds ["dataset"] (fields [name], [scale], and for
    [name = "synthetic"] also [seed], [groups], [targets]) are resolved
    here; any other kind is offered to the [resolve] hook, which maps the
    estate object to a canonical key plus a builder — this is how the
    harness plugs line estates in without the service depending on it.

    Blank lines and lines starting with [#] are skipped. *)

type resolver = Json.t -> (string * (unit -> Etransform.Asis.t)) option

(** [job_of_json ?resolve j] decodes one job spec.  Unknown estate kinds
    without a resolver (or resolver miss) are errors, as are missing or
    ill-typed fields. *)
val job_of_json : ?resolve:resolver -> Json.t -> (Job.t, string) result

(** [job_of_line ?resolve line] parses then decodes. *)
val job_of_line : ?resolve:resolver -> string -> (Job.t, string) result

(** One NDJSON result line: id, fingerprint, code, cache hit/miss, spans,
    cost summary, solver status, and the placement vector. *)
val result_to_json : Pool.result -> Json.t

(** [result_to_line r] is [Json.to_string (result_to_json r)] byte for
    byte, but memoizes the rendered outcome details (the placement
    vector above all) per physically-shared outcome, so cache-hit
    responses skip re-serializing the plan.  This is the serializer the
    server and {!run_lines} use on their hot paths. *)
val result_to_line : Pool.result -> string

(** The result line for an unparseable input line, exactly as
    {!run_lines} emits it — the HTTP /batch route reuses it so its
    streams stay byte-compatible with the CLI. *)
val invalid_line : string -> Json.t

(** [true] for blank lines and [#] comments, which consume no output
    line. *)
val skippable : string -> bool

(** [run_lines pool ~read_line ~write] streams a batch through the pool
    in full duplex: a producer thread pulls lines from [read_line]
    ([None] = end of input) and submits jobs, while the calling thread
    awaits results in input order and hands each completed line (without
    trailing newline) to [write].  At most the pool's queue capacity is
    outstanding at once, so memory is bounded by the window, and results
    for completed predecessors are written even while [read_line] blocks
    — this is what lets the HTTP [/batch] route answer before the
    request body is fully consumed.  Lines that fail to parse produce an
    ["invalid"] result line (the batch keeps going).  If [write] raises
    (e.g. [EPIPE] on a closed pipe) the stream shuts down cleanly — the
    producer stops, every submitted ticket is drained — and the first
    write exception is re-raised.  Returns [(ok, degraded, failed)]
    counts, where [failed] includes invalid lines. *)
val run_lines :
  ?resolve:resolver ->
  Pool.t ->
  read_line:(unit -> string option) ->
  write:(string -> unit) ->
  int * int * int

(** [run pool ic oc] is {!run_lines} over channels: one result line per
    job is written (and flushed) to [oc] in input order as each
    completes, so long-lived pipes see output before [ic] reaches
    EOF. *)
val run : ?resolve:resolver -> Pool.t -> in_channel -> out_channel -> int * int * int
