open Etransform

type grid = {
  radius_km : float option list;
  max_concurrent : int list;
  warning_s : float option list;
  omega : float option list;
  max_latency_ms : float option list;
}

let empty_grid =
  {
    radius_km = [];
    max_concurrent = [];
    warning_s = [];
    omega = [];
    max_latency_ms = [];
  }

let max_points = 512

let axis xs base = if xs = [] then [ base ] else xs

let grid_points g (base : Job.t) =
  List.length (axis g.radius_km base.Job.scenario.Job.radius_km)
  * List.length
      (axis g.max_concurrent
         (Option.value base.Job.scenario.Job.max_concurrent ~default:1))
  * List.length (axis g.warning_s base.Job.scenario.Job.warning_s)
  * List.length (axis g.omega base.Job.omega)
  * List.length (axis g.max_latency_ms base.Job.scenario.Job.max_latency_ms)

(* ------------------------------------------------------------- parsing *)

let ( let* ) = Result.bind

(* Axis syntax: a JSON array mixing numbers and [null] ("no constraint"),
   e.g. ["radius_km":[null,50,400]].  A missing axis keeps the base
   job's value. *)
let float_axis sj key =
  match Json.member key sj with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Null :: rest -> go (None :: acc) rest
        | (Json.Num f) :: rest -> go (Some f :: acc) rest
        | _ ->
            Error
              (Printf.sprintf "grid axis %S must list numbers or null" key)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "grid axis %S must be an array" key)

let int_axis sj key =
  match Json.member key sj with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (Json.Num f) :: rest when Float.is_integer f ->
            go (int_of_float f :: acc) rest
        | _ -> Error (Printf.sprintf "grid axis %S must list integers" key)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "grid axis %S must be an array" key)

let grid_of_json j =
  match Json.member "grid" j with
  | None -> Ok empty_grid
  | Some sj ->
      let* radius_km = float_axis sj "radius_km" in
      let* max_concurrent = int_axis sj "max_concurrent" in
      let* warning_s = float_axis sj "warning_s" in
      let* omega = float_axis sj "omega" in
      let* max_latency_ms = float_axis sj "max_latency_ms" in
      Ok { radius_km; max_concurrent; warning_s; omega; max_latency_ms }

let request_of_json ?resolve j =
  let* job = Batch.job_of_json ?resolve j in
  let* grid = grid_of_json j in
  let n = grid_points grid job in
  if n > max_points then
    Error (Printf.sprintf "grid expands to %d points (max %d)" n max_points)
  else Ok (job, grid)

(* ----------------------------------------------------------- expansion *)

let fl_tag = function None -> "-" | Some f -> Printf.sprintf "%g" f

(* Cartesian product in one fixed axis order, so a given (job, grid) pair
   always yields the same point sequence.  [max_concurrent = 1] and
   friends normalize back to "absent" so a sweep point that happens to
   coincide with the plain model shares the plain job's fingerprint —
   the cache serves it to /solve clients and vice versa. *)
let expand (base : Job.t) g =
  let scen = base.Job.scenario in
  let radii = axis g.radius_km scen.Job.radius_km in
  let concs = axis g.max_concurrent (Option.value scen.Job.max_concurrent ~default:1) in
  let warns = axis g.warning_s scen.Job.warning_s in
  let omegas = axis g.omega base.Job.omega in
  let lats = axis g.max_latency_ms scen.Job.max_latency_ms in
  List.concat_map
    (fun r ->
      List.concat_map
        (fun c ->
          List.concat_map
            (fun w ->
              List.concat_map
                (fun om ->
                  List.map
                    (fun l ->
                      let tag =
                        Printf.sprintf "r=%s;c=%d;w=%s;om=%s;l=%s" (fl_tag r)
                          c (fl_tag w) (fl_tag om) (fl_tag l)
                      in
                      let scenario =
                        {
                          scen with
                          Job.radius_km = r;
                          max_concurrent = (if c <= 1 then None else Some c);
                          warning_s = w;
                          max_latency_ms = l;
                        }
                      in
                      let id =
                        if base.Job.id = "" then tag
                        else base.Job.id ^ ":" ^ tag
                      in
                      (tag, { base with Job.id; omega = om; scenario }))
                    lats)
                omegas)
            warns)
        concs)
    radii

(* ------------------------------------------------------------- scoring *)

(* Every point is scored under ONE spec — the strictest the grid reaches
   (largest radius, highest concurrency, tightest warning window) — so
   resilience values are comparable across the sweep and the frontier
   actually trades cost against robustness rather than against the
   yardstick. *)
let scoring_spec (base : Job.t) g =
  let scen = base.Job.scenario in
  let radii = axis g.radius_km scen.Job.radius_km in
  let concs = axis g.max_concurrent (Option.value scen.Job.max_concurrent ~default:1) in
  let warns = axis g.warning_s scen.Job.warning_s in
  let max_opt a b =
    match (a, b) with
    | Some a, Some b -> Some (Float.max a b)
    | None, x | x, None -> x
  in
  let min_opt a b =
    match (a, b) with
    | Some a, Some b -> Some (Float.min a b)
    | None, x | x, None -> x
  in
  {
    Scenario.Failure.radius_km = List.fold_left max_opt None radii;
    max_concurrent = List.fold_left max 1 concs;
    warning_s = List.fold_left min_opt None warns;
    link_mb_s =
      Option.value scen.Job.link_mb_s
        ~default:Scenario.Failure.default.Scenario.Failure.link_mb_s;
  }

type ctx = {
  base : Job.t;
  grid : grid;
  spec : Scenario.Failure.spec;
  estate : Asis.t Lazy.t;
  sites : Geo.Location.t array Lazy.t;
}

let ctx base grid =
  let estate = lazy (Job.build_estate base) in
  {
    base;
    grid;
    spec = scoring_spec base grid;
    estate;
    sites = lazy (Scenario.Failure.sites (Lazy.force estate));
  }

type point = {
  tag : string;
  result : Pool.result;
  cost : float option;
  resilience : float option;
}

let point ctx ~tag (r : Pool.result) =
  let cost, resilience =
    match r.Pool.outcome with
    | None -> (None, None)
    | Some o ->
        ( Some (Evaluate.total o.Solver.summary.Evaluate.cost),
          Some
            (Scenario.Failure.resilience ~spec:ctx.spec (Lazy.force ctx.estate)
               (Lazy.force ctx.sites) o.Solver.placement) )
  in
  { tag; result = r; cost; resilience }

(* ----------------------------------------------------------- rendering *)

(* "{...}" -> splice extra fields before the closing brace, keeping
   Batch.result_to_line's memoized rendering of the plan. *)
let point_line p =
  let base = Batch.result_to_line p.result in
  let extra =
    ("tag", Json.Str p.tag)
    ::
    (match p.resilience with
    | None -> []
    | Some r -> [ ("resilience", Json.Num r) ])
  in
  let extra = Json.to_string (Json.Obj extra) in
  String.sub base 0 (String.length base - 1)
  ^ ","
  ^ String.sub extra 1 (String.length extra - 1)

type summary = {
  points : int;
  cache_hits : int;
  frontier : Scenario.Pareto.point list;
  wall_s : float;
}

let summarize ?(wall_s = 0.0) pts =
  let frontier =
    Scenario.Pareto.frontier
      (List.filter_map
         (fun p ->
           match (p.cost, p.resilience) with
           | Some cost, Some resilience ->
               Some { Scenario.Pareto.cost; resilience; tag = p.tag }
           | _ -> None)
         pts)
  in
  {
    points = List.length pts;
    cache_hits =
      List.length (List.filter (fun p -> p.result.Pool.cache_hit) pts);
    frontier;
    wall_s;
  }

let frontier_line s =
  Json.to_string
    (Json.Obj
       [
         ( "frontier",
           Json.List
             (List.map
                (fun (p : Scenario.Pareto.point) ->
                  Json.Obj
                    [
                      ("tag", Json.Str p.Scenario.Pareto.tag);
                      ("cost", Json.Num p.Scenario.Pareto.cost);
                      ("resilience", Json.Num p.Scenario.Pareto.resilience);
                    ])
                s.frontier) );
         ("points", Json.Num (float_of_int s.points));
         ("cache_hits", Json.Num (float_of_int s.cache_hits));
         ("wall_s", Json.Num s.wall_s);
       ])

let emit_trace pool s =
  Trace.emit (Pool.trace pool)
    [
      ("event", Json.Str "sweep");
      ("points", Json.Num (float_of_int s.points));
      ("cache_hits", Json.Num (float_of_int s.cache_hits));
      ("frontier", Json.Num (float_of_int (List.length s.frontier)));
      ("wall_s", Json.Num s.wall_s);
    ]

(* ----------------------------------------------------------------- run *)

let run pool base grid ~f =
  let t0 = Unix.gettimeofday () in
  let c = ctx base grid in
  let tagged = expand base grid in
  (* Submit everything up front: workers drain the queue independently of
     the await loop below, so ordering the awaits by submission keeps the
     stream deterministic without idling the pool. *)
  let tickets = List.map (fun (tag, job) -> (tag, Pool.submit pool job)) tagged in
  let pts =
    List.map
      (fun (tag, ticket) ->
        let p = point c ~tag (Pool.await ticket) in
        f p;
        p)
      tickets
  in
  let s = summarize ~wall_s:(Unix.gettimeofday () -. t0) pts in
  emit_trace pool s;
  s
