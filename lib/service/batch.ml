open Etransform

type resolver = Json.t -> (string * (unit -> Asis.t)) option

let ( let* ) = Result.bind

let field_float j key default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S must be a number" key))

let field_int j key default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S must be an integer" key))

let field_bool j key default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S must be a boolean" key))

let field_str j key default =
  match Json.member key j with
  | None -> Ok default
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S must be a string" key))

let opt_field f j key =
  match Json.member key j with
  | None | Some Json.Null -> Ok None
  | Some _ -> Result.map Option.some (f j key 0.0)

let estate_of_json ?resolve j =
  match Json.member "estate" j with
  | None -> Error "missing \"estate\""
  | Some ej -> (
      match Option.bind (Json.member "kind" ej) Json.to_str with
      | Some "dataset" ->
          let* name = field_str ej "name" "" in
          if name = "" then Error "dataset estate needs a \"name\""
          else
            let* scale = field_float ej "scale" 1.0 in
            let* seed = field_int ej "seed" 42 in
            let* groups = field_int ej "groups" 50 in
            let* targets = field_int ej "targets" 6 in
            Ok (Job.Dataset { name; scale; seed; groups; targets })
      | Some kind -> (
          match resolve with
          | None ->
              Error (Printf.sprintf "no resolver for estate kind %S" kind)
          | Some resolve -> (
              match resolve ej with
              | Some (key, build) -> Ok (Job.Inline { key; build })
              | None ->
                  Error (Printf.sprintf "unresolved estate kind %S" kind)))
      | None -> Error "estate needs a string \"kind\"")

let milp_of_json j =
  match Json.member "milp" j with
  | None -> Ok Job.no_overrides
  | Some mj ->
      let int_opt key =
        match Json.member key mj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_int v with
            | Some i -> Ok (Some i)
            | None -> Error (Printf.sprintf "milp field %S must be an integer" key))
      in
      let float_opt key =
        match Json.member key mj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_float v with
            | Some f -> Ok (Some f)
            | None -> Error (Printf.sprintf "milp field %S must be a number" key))
      in
      let bool_opt key =
        match Json.member key mj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_bool v with
            | Some b -> Ok (Some b)
            | None -> Error (Printf.sprintf "milp field %S must be a boolean" key))
      in
      let* node_limit = int_opt "nodes" in
      let* time_limit = float_opt "time" in
      let* gap_tol = float_opt "gap" in
      let* workers = int_opt "workers" in
      let* branching =
        match Json.member "branching" mj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Option.bind (Json.to_str v) Lp.Branching.strategy_of_string with
            | Some s -> Ok (Some s)
            | None ->
                Error
                  "milp field \"branching\" must be \"most-fractional\", \
                   \"pseudocost\" or \"reliability\"")
      in
      let* pump = bool_opt "pump" in
      let* cuts = bool_opt "cuts" in
      Ok { Job.node_limit; time_limit; gap_tol; workers; branching; pump; cuts }

let scenario_of_json j =
  match Json.member "scenario" j with
  | None -> Ok Job.no_scenario
  | Some sj ->
      let float_opt key =
        match Json.member key sj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_float v with
            | Some f -> Ok (Some f)
            | None ->
                Error (Printf.sprintf "scenario field %S must be a number" key))
      in
      let int_opt key =
        match Json.member key sj with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_int v with
            | Some i -> Ok (Some i)
            | None ->
                Error
                  (Printf.sprintf "scenario field %S must be an integer" key))
      in
      let* radius_km = float_opt "radius_km" in
      let* max_concurrent = int_opt "max_concurrent" in
      let* warning_s = float_opt "warning_s" in
      let* link_mb_s = float_opt "link_mb_s" in
      let* max_latency_ms = float_opt "max_latency_ms" in
      Ok
        { Job.radius_km; max_concurrent; warning_s; link_mb_s; max_latency_ms }

let job_of_json ?resolve j =
  match j with
  | Json.Obj _ ->
      let* estate = estate_of_json ?resolve j in
      let* id = field_str j "id" "" in
      let* dr = field_bool j "dr" false in
      let* economies_of_scale = field_bool j "eos" false in
      let* fixed_charges = field_bool j "fixed_charges" false in
      let* omega = opt_field field_float j "omega" in
      let* reserve = opt_field field_float j "reserve" in
      let* dr_server_cost = opt_field field_float j "dr_server_cost" in
      let* milp = milp_of_json j in
      let* scenario = scenario_of_json j in
      let* deadline_s = opt_field field_float j "deadline_s" in
      let* degrade = field_bool j "degrade" true in
      Ok
        {
          Job.id;
          estate;
          dr;
          economies_of_scale;
          fixed_charges;
          omega;
          reserve;
          dr_server_cost;
          milp;
          scenario;
          deadline_s;
          degrade;
        }
  | _ -> Error "job spec must be a JSON object"

let job_of_line ?resolve line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok j -> job_of_json ?resolve j

let result_base_fields (r : Pool.result) =
  let code =
    match r.Pool.code with
    | Pool.Solved -> "ok"
    | Pool.Degraded -> "degraded"
    | Pool.Failed -> "failed"
  in
  [
    ("id", Json.Str r.Pool.job.Job.id);
    ("fp", Json.Str r.Pool.fingerprint);
    ("code", Json.Str code);
    ("cache", Json.Str (if r.Pool.cache_hit then "hit" else "miss"));
    ("queue_s", Json.Num r.Pool.queue_s);
    ("solve_s", Json.Num r.Pool.solve_s);
  ]

let result_details_fields (o : Etransform.Solver.outcome) =
  let s = o.Solver.summary in
  [
    ("total", Json.Num (Evaluate.total s.Evaluate.cost));
    ("operational", Json.Num (Evaluate.operational s.Evaluate.cost));
    ("dcs_used", Json.Num (float_of_int s.Evaluate.dcs_used));
    ("violations", Json.Num (float_of_int s.Evaluate.violations));
    ("status", Json.Str (Lp.Status.to_string o.Solver.milp_status));
    ("gap", Json.Num o.Solver.milp_gap);
    ("nodes", Json.Num (float_of_int o.Solver.nodes));
    ( "placement",
      Json.List
        (Array.to_list
           (Array.map
              (fun j -> Json.Num (float_of_int j))
              o.Solver.placement.Placement.primary)) );
  ]

let result_reason_fields (r : Pool.result) =
  match r.Pool.reason with
  | None -> []
  | Some m -> [ ("reason", Json.Str m) ]

let result_to_json (r : Pool.result) =
  let details =
    match r.Pool.outcome with
    | None -> []
    | Some o -> result_details_fields o
  in
  Json.Obj (result_base_fields r @ details @ result_reason_fields r)

(* Serialized result line, the hot path for /solve and /batch answers.
   Rendering the outcome details — the placement array above all —
   dominates serialization cost and is byte-identical for every cache
   hit of the same plan (the plan cache shares outcome values
   physically), so the rendered fragment is memoized per outcome.  The
   per-request fields (id, timings, cache bit, reason) are rendered
   fresh each time.  Output is byte-equal to
   [Json.to_string (result_to_json r)]. *)
let details_memo : (Etransform.Solver.outcome * string) option Atomic.t =
  Atomic.make None

(* "{...}" -> the fields between the braces *)
let strip_obj s = String.sub s 1 (String.length s - 2)

let details_fragment o =
  match Atomic.get details_memo with
  | Some (o', s) when o' == o -> s
  | _ ->
      let s =
        "," ^ strip_obj (Json.to_string (Json.Obj (result_details_fields o)))
      in
      Atomic.set details_memo (Some (o, s));
      s

let result_to_line (r : Pool.result) =
  let details =
    match r.Pool.outcome with None -> "" | Some o -> details_fragment o
  in
  let reason =
    match result_reason_fields r with
    | [] -> ""
    | l -> "," ^ strip_obj (Json.to_string (Json.Obj l))
  in
  "{" ^ strip_obj (Json.to_string (Json.Obj (result_base_fields r)))
  ^ details ^ reason ^ "}"

let skippable line =
  let line = String.trim line in
  line = "" || line.[0] = '#'

let invalid_line msg =
  Json.Obj
    [
      ("id", Json.Str "");
      ("code", Json.Str "invalid");
      ("reason", Json.Str msg);
    ]

(* Parse failures must not shift the one-line-in/one-line-out alignment:
   every kept input line yields exactly one output line.

   The stream is full-duplex: a producer thread reads lines and submits
   jobs while the calling thread awaits tickets in input order and writes
   result lines.  Reading and writing never wait on each other, so a
   client that pauses mid-input (an HTTP request trickling its chunked
   body, an operator typing specs interactively) still sees every
   completed predecessor's result immediately — and a sliding window of
   at most the pool's queue capacity bounds memory by the window, not
   the input size. *)
let run_lines ?resolve pool ~read_line ~write =
  let ok = ref 0 and degraded = ref 0 and failed = ref 0 in
  let window = max 1 (Pool.queue_capacity pool) in
  let m = Mutex.create () in
  let not_full = Condition.create () and not_empty = Condition.create () in
  let pending : (Pool.ticket, string) result Queue.t = Queue.create () in
  let done_reading = ref false in
  (* Set when the writer dies (e.g. EPIPE on a closed pipe): the producer
     stops reading and the consumer keeps draining tickets without
     writing, so neither side can strand the other. *)
  let aborted = ref false in
  let push item =
    Mutex.lock m;
    while Queue.length pending >= window && not !aborted do
      Condition.wait not_full m
    done;
    if not !aborted then begin
      Queue.push item pending;
      Condition.signal not_empty
    end;
    Mutex.unlock m
  in
  let producer () =
    (try
       let rec loop () =
         if !aborted then ()
         else
           match read_line () with
           | None -> ()
           | Some line ->
               if not (skippable line) then
                 push
                   (match job_of_line ?resolve line with
                   | Error msg -> Error msg
                   | Ok job -> Ok (Pool.submit pool job));
               loop ()
       in
       loop ()
     with exn ->
       push (Error ("input error: " ^ Printexc.to_string exn)));
    Mutex.lock m;
    done_reading := true;
    Condition.broadcast not_empty;
    Mutex.unlock m
  in
  let emit item =
    let line =
      match item with
      | Error msg ->
          incr failed;
          Json.to_string (invalid_line msg)
      | Ok ticket ->
          let r = Pool.await ticket in
          (match r.Pool.code with
          | Pool.Solved -> incr ok
          | Pool.Degraded -> incr degraded
          | Pool.Failed -> incr failed);
          result_to_line r
    in
    if not !aborted then write line
  in
  let producer_thread = Thread.create producer () in
  let write_error = ref None in
  let rec consume () =
    Mutex.lock m;
    while Queue.is_empty pending && not !done_reading do
      Condition.wait not_empty m
    done;
    match Queue.take_opt pending with
    | None -> Mutex.unlock m
    | Some item ->
        Condition.signal not_full;
        Mutex.unlock m;
        (try emit item
         with exn ->
           (* Remember the first writer failure; keep draining so the
              producer's window pushes unblock and every ticket resolves. *)
           if !write_error = None then write_error := Some exn;
           Mutex.lock m;
           aborted := true;
           Condition.broadcast not_full;
           Mutex.unlock m);
        consume ()
  in
  consume ();
  Thread.join producer_thread;
  (match !write_error with Some exn -> raise exn | None -> ());
  (!ok, !degraded, !failed)

let run ?resolve pool ic oc =
  run_lines ?resolve pool
    ~read_line:(fun () ->
      match input_line ic with
      | line -> Some line
      | exception End_of_file -> None)
    ~write:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)
