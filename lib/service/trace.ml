type sink = Null | Channel of out_channel | Memory of Buffer.t

type t = { sink : sink; lock : Mutex.t; mutable seq : int }

let make sink = { sink; lock = Mutex.create (); seq = 0 }
let null = make Null
let to_channel oc = make (Channel oc)
let memory () = make (Memory (Buffer.create 256))

let contents t =
  match t.sink with
  | Memory buf ->
      Mutex.lock t.lock;
      let s = Buffer.contents buf in
      Mutex.unlock t.lock;
      s
  | Null | Channel _ -> ""

let emit t fields =
  match t.sink with
  | Null -> ()
  | _ ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          let line =
            Json.to_string
              (Json.Obj (("seq", Json.Num (float_of_int t.seq)) :: fields))
          in
          t.seq <- t.seq + 1;
          match t.sink with
          | Null -> ()
          | Channel oc ->
              output_string oc line;
              output_char oc '\n';
              flush oc
          | Memory buf ->
              Buffer.add_string buf line;
              Buffer.add_char buf '\n')
