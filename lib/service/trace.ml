type sink =
  | Null
  | Channel of out_channel
  | Memory of Buffer.t
  | Observer of ((string * Json.t) list -> unit)
  | Tee of t * t

and t = { sink : sink; lock : Mutex.t; mutable seq : int }

let make sink = { sink; lock = Mutex.create (); seq = 0 }
let null = make Null
let to_channel oc = make (Channel oc)
let memory () = make (Memory (Buffer.create 256))
let observer f = make (Observer f)

let tee a b =
  match (a.sink, b.sink) with
  | Null, _ -> b
  | _, Null -> a
  | _ -> make (Tee (a, b))

let contents t =
  match t.sink with
  | Memory buf ->
      Mutex.lock t.lock;
      let s = Buffer.contents buf in
      Mutex.unlock t.lock;
      s
  | Null | Channel _ | Observer _ | Tee _ -> ""

let rec emit t fields =
  match t.sink with
  | Null -> ()
  | Observer f -> f fields
  | Tee (a, b) ->
      emit a fields;
      emit b fields
  | Channel _ | Memory _ ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          let line =
            Json.to_string
              (Json.Obj (("seq", Json.Num (float_of_int t.seq)) :: fields))
          in
          t.seq <- t.seq + 1;
          match t.sink with
          | Channel oc ->
              output_string oc line;
              output_char oc '\n';
              flush oc
          | Memory buf ->
              Buffer.add_string buf line;
              Buffer.add_char buf '\n'
          | Null | Observer _ | Tee _ -> ())
