(** Scalable integrated consolidation + DR planning.

    The faithful joint MILP of {!Dr_builder} carries O(M N^2) linearization
    variables, which outgrows a dense-tableau simplex quickly.  This planner
    decomposes the problem:

    + stage 1 places primaries with the §III model, a business-impact
      spread, and a configurable capacity reservation for future backup
      pools;
    + stage 2 optimally chooses secondaries given the primaries — with
      primaries fixed, shared pools linearize exactly as
      G_b >= sum over groups with primary a of S_i Y_ib, an O(M N) MILP;
    + a joint local search then polishes both decisions against the exact
      evaluator.

    If stage 2 is infeasible the reservation is raised and both stages
    rerun.  On small instances the result is checked against the joint
    model in the test suite. *)

(** A failure scenario compiled down to target indices.  [events] lists
    the failure events the plan must survive: each event is the set of
    target DCs that fail together (a correlated region, or several
    uncorrelated sites under multi-failure planning).  Pools are sized
    per event — every group whose primary is inside an event fails over
    at once — and a backup site that fails in {e every} event taking out
    the group's primary (i.e. inside the primary's correlated region) is
    excluded outright.  [evac_mb] bounds the data each primary->backup link can
    evacuate inside an early-warning window (bandwidth x window, in MB);
    [None] drops the evacuation rows.  An empty [events] array (or an
    absent scenario) means each site fails alone — the paper's model.

    Scenarios are typically produced by the [scenario] library's
    [Failure.compile], which derives events from DC geography. *)
type scenario = {
  events : int list array;
  evac_mb : float option;
}

type options = {
  omega : float option;          (** business-impact spread for primaries *)
  economies_of_scale : bool;     (** stage-1 space on the discount curve *)
  reserve : float;               (** initial capacity fraction kept for pools *)
  milp : Lp.Milp.options;
  local_search : bool;
      (** polish with the joint local search (skipped when a scenario is
          set: the search cannot see event or evacuation constraints) *)
  secondary_candidates : int option;
      (** keep only this many cheapest pool sites per group in stage 2 *)
  scenario : scenario option;    (** richer failure model for stage 2 *)
  max_latency_ms : float option;
      (** stage-1 latency budget (see {!Lp_builder.options}) *)
}

val default_options : options

val plan : ?options:options -> Asis.t -> Solver.outcome

(** [joint_plan asis] solves the faithful §IV MILP directly (small
    instances only). *)
val joint_plan :
  ?omega:float -> ?milp:Lp.Milp.options -> Asis.t -> Solver.outcome
