type options = {
  economies_of_scale : bool;
  fixed_charges : bool;
  omega : float option;
  pins : (int * int) list;
  forbids : (int * int) list;
  candidate_limit : int option;
  max_latency_ms : float option;
}

let default_options =
  {
    economies_of_scale = false;
    fixed_charges = false;
    omega = None;
    pins = [];
    forbids = [];
    candidate_limit = None;
    max_latency_ms = None;
  }

(* User-weighted mean latency of hosting group [i] at target [j]; the
   admissibility measure behind [max_latency_ms]. *)
let mean_latency asis i j =
  let g = asis.Asis.groups.(i) in
  let dc = asis.Asis.targets.(j) in
  let total = App_group.total_users g in
  if total <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun u w -> acc := !acc +. (w *. dc.Data_center.user_latency_ms.(u)))
      g.App_group.users;
    !acc /. total
  end

type built = {
  model : Lp.Model.t;
  x : Lp.Model.var option array array;
  asis : Asis.t;
  options : options;
}

let build ?(options = default_options) asis =
  let open Lp in
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let model = Model.create ~name:(asis.Asis.name ^ "_consolidation") () in
  let forbidden = Hashtbl.create 16 in
  List.iter (fun (i, j) -> Hashtbl.replace forbidden (i, j) ()) options.forbids;
  let pinned = Hashtbl.create 16 in
  List.iter (fun (i, j) -> Hashtbl.replace pinned (i, j) ()) options.pins;
  let base_admissible i j =
    App_group.allowed asis.Asis.groups.(i) j
    && not (Hashtbl.mem forbidden (i, j))
  in
  (* Latency budget: drop candidates whose user-weighted mean latency
     exceeds the budget.  A group whose every candidate violates the
     budget keeps its fastest one — sweeps over tight budgets degrade
     gracefully instead of going infeasible — and pinned pairs always
     survive (the re-planner pins prior assignments it already vetted). *)
  let latency_ok =
    match options.max_latency_ms with
    | None -> fun _ _ -> true
    | Some budget ->
        let within = Hashtbl.create (m * 2) in
        for i = 0 to m - 1 do
          let best = ref (-1) and best_lat = ref infinity in
          for j = 0 to n - 1 do
            if base_admissible i j then begin
              let l = mean_latency asis i j in
              if l < !best_lat then begin
                best_lat := l;
                best := j
              end;
              if l <= budget then Hashtbl.replace within (i, j) ()
            end
          done;
          if !best >= 0 && not (Hashtbl.mem within (i, !best)) then
            Hashtbl.replace within (i, !best) ()
        done;
        fun i j -> Hashtbl.mem within (i, j) || Hashtbl.mem pinned (i, j)
  in
  let admissible i j = base_admissible i j && latency_ok i j in
  (* Column pruning for large estates: per group, keep only the cheapest
     candidate targets (pins always survive). *)
  let keep =
    match options.candidate_limit with
    | None -> fun _ _ -> true
    | Some k ->
        let kept = Hashtbl.create (m * k) in
        for i = 0 to m - 1 do
          let candidates =
            List.init n Fun.id
            |> List.filter (admissible i)
            |> List.map (fun j ->
                   (Cost_model.assign_cost asis ~group:i asis.Asis.targets.(j), j))
            |> List.sort compare
          in
          List.iteri
            (fun rank (_, j) ->
              if rank < k || Hashtbl.mem pinned (i, j) then
                Hashtbl.replace kept (i, j) ())
            candidates
        done;
        fun i j -> Hashtbl.mem kept (i, j)
  in
  let x =
    Array.init m (fun i ->
        Array.init n (fun j ->
            if admissible i j && keep i j then
              Some (Model.add_var model ~binary:true (Printf.sprintf "X_%d_%d" i j))
            else None))
  in
  List.iter
    (fun (i, j) ->
      match x.(i).(j) with
      | Some v -> Model.set_bounds model v ~lo:1.0 ~hi:1.0
      | None -> invalid_arg "Lp_builder.build: pin targets a forbidden pair")
    options.pins;
  (* Assignment rows: a home for every group. *)
  for i = 0 to m - 1 do
    let terms =
      Array.to_list x.(i)
      |> List.filter_map (Option.map Model.Linexpr.var)
    in
    Model.add_eq model (Printf.sprintf "assign_%d" i) (Model.Linexpr.sum terms)
      1.0
  done;
  (* Capacity rows and per-DC load expressions. *)
  let load j =
    Model.Linexpr.sum
      (List.filter_map
         (fun i ->
           Option.map
             (Model.Linexpr.term
                (float_of_int asis.Asis.groups.(i).App_group.servers))
             x.(i).(j))
         (List.init m Fun.id))
  in
  let cost_terms = ref [] in
  for j = 0 to n - 1 do
    let dc = asis.Asis.targets.(j) in
    let lj = load j in
    Model.add_le model
      (Printf.sprintf "cap_%d" j)
      lj
      (float_of_int dc.Data_center.capacity);
    if options.economies_of_scale then begin
      let space =
        Piecewise.concave_cost model
          ~name:(Printf.sprintf "space_%d" j)
          ~quantity:lj dc.Data_center.rates.Data_center.space_segments
      in
      cost_terms := space :: !cost_terms
    end;
    if options.fixed_charges
       && dc.Data_center.rates.Data_center.fixed_monthly > 0.0
    then begin
      let fixed, _open_var =
        Piecewise.fixed_charge model
          ~name:(Printf.sprintf "site_%d" j)
          ~quantity:lj
          ~capacity:(float_of_int dc.Data_center.capacity)
          ~fixed_cost:dc.Data_center.rates.Data_center.fixed_monthly
      in
      cost_terms := fixed :: !cost_terms
    end;
    (match options.omega with
    | None -> ()
    | Some w ->
        let count =
          Model.Linexpr.sum
            (List.filter_map
               (fun i -> Option.map Model.Linexpr.var x.(i).(j))
               (List.init m Fun.id))
        in
        Model.add_le model
          (Printf.sprintf "impact_%d" j)
          count
          (w *. float_of_int m))
  done;
  (* Shared-risk separation. *)
  Array.iteri
    (fun i (g : App_group.t) ->
      List.iter
        (fun k ->
          if k > i && k < m then
            for j = 0 to n - 1 do
              match (x.(i).(j), x.(k).(j)) with
              | Some a, Some b ->
                  Model.add_le model
                    (Printf.sprintf "risk_%d_%d_%d" i k j)
                    Model.Linexpr.(add (var a) (var b))
                    1.0
              | _ -> ()
            done)
        g.App_group.colocate_avoid)
    asis.Asis.groups;
  (* Linear assignment costs. *)
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      match x.(i).(j) with
      | None -> ()
      | Some v ->
          let c =
            Cost_model.assign_cost
              ~include_first_tier_space:(not options.economies_of_scale) asis
              ~group:i asis.Asis.targets.(j)
          in
          cost_terms := Model.Linexpr.term c v :: !cost_terms
    done
  done;
  Model.set_objective model (Model.Linexpr.sum !cost_terms);
  { model; x; asis; options }

let decode built solution =
  let m = Array.length built.x in
  let primary =
    Array.init m (fun i ->
        let best = ref (-1) and best_v = ref neg_infinity in
        Array.iteri
          (fun j v ->
            match v with
            | None -> ()
            | Some var ->
                let value = solution.(var.Lp.Model.id) in
                if value > !best_v then begin
                  best_v := value;
                  best := j
                end)
          built.x.(i);
        if !best < 0 then
          invalid_arg
            (Printf.sprintf "Lp_builder.decode: group %d has no candidate" i);
        !best)
  in
  Placement.non_dr primary
