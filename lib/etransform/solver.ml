let src = Logs.Src.create "etransform.solver" ~doc:"consolidation engine"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = {
  placement : Placement.t;
  summary : Evaluate.summary;
  milp_status : Lp.Status.t;
  milp_gap : float;
  nodes : int;
  lp_iterations : int;
  local_moves : int;
}

(* The dive heuristic plus local search does nearly all the work on
   consolidation models; the LP bound stays loose under volume discounts,
   so a deep best-bound search rarely improves the incumbent.  Keep the
   default tree small and let callers raise it for certified optima.

   The reference configuration pins the dense simplex core and disables
   presolve: with truncated trees the reported plan is the dive (or
   LP-rounding) incumbent, and a different — equally optimal — degenerate
   LP vertex steers those heuristics to a different, equally heuristic
   plan.  Pinning the historical engine keeps the paper reproductions
   (experiments E1–E3) bit-stable as the solver pipeline evolves; callers
   chasing speed over reproducibility can flip [core]/[presolve] back to
   the {!Lp.Milp.default_options} values. *)
let default_milp_options =
  {
    Lp.Milp.default_options with
    Lp.Milp.node_limit = 24;
    time_limit = 60.0;
    gap_tol = 5e-3;
    core = Lp.Simplex.Dense;
    presolve = false;
  }

(* Fallback when branch-and-bound surrenders without an incumbent: round
   the LP relaxation.  Groups (largest first) go to their highest-valued
   candidate with room, breaking ties toward cheaper assignments — the
   classic generalized-assignment rounding, which keeps the LP's global
   view of latency and capacity trade-offs. *)
let lp_round ?(relax_x = [||]) ~core asis (built : Lp_builder.built) =
  let relax_x =
    (* The MILP already solved the root relaxation; only re-solve when the
       caller has no point to hand over (e.g. the root LP never finished). *)
    if Array.length relax_x > 0 then Some relax_x
    else
      let relax = Lp.Milp.relax ~core built.Lp_builder.model in
      if relax.Lp.Simplex.status <> Lp.Status.Optimal then None
      else Some relax.Lp.Simplex.x
  in
  match relax_x with
  | None -> None
  | Some relax_x ->
    let m = Asis.num_groups asis and n = Asis.num_targets asis in
    let order = Array.init m Fun.id in
    Array.sort
      (fun a b ->
        compare asis.Asis.groups.(b).App_group.servers
          asis.Asis.groups.(a).App_group.servers)
      order;
    let load = Array.make n 0.0 in
    let primary = Array.make m (-1) in
    let ok = ref true in
    Array.iter
      (fun i ->
        let s = float_of_int asis.Asis.groups.(i).App_group.servers in
        let candidates =
          List.init n Fun.id
          |> List.filter_map (fun j ->
                 match built.Lp_builder.x.(i).(j) with
                 | None -> None
                 | Some v ->
                     let value = relax_x.(v.Lp.Model.id) in
                     let cost =
                       Cost_model.assign_cost asis ~group:i asis.Asis.targets.(j)
                     in
                     Some ((-.value, cost), j))
          |> List.sort compare
        in
        let placed =
          List.find_opt
            (fun (_, j) ->
              load.(j) +. s
              <= float_of_int asis.Asis.targets.(j).Data_center.capacity)
            candidates
        in
        match placed with
        | Some (_, j) ->
            primary.(i) <- j;
            load.(j) <- load.(j) +. s
        | None -> ok := false)
      order;
    if !ok then Some (Placement.non_dr primary) else None

let consolidate ?(builder = Lp_builder.default_options)
    ?(milp = default_milp_options) ?(local_search = true) asis =
  (match Asis.validate asis with
  | [] -> ()
  | problems ->
      invalid_arg
        ("Solver.consolidate: invalid as-is state: "
        ^ String.concat "; " problems));
  let built = Lp_builder.build ~options:builder asis in
  Log.info (fun f -> f "model: %a" Lp.Model.pp_stats built.Lp_builder.model);
  let r = Lp.Milp.solve ~options:milp built.Lp_builder.model in
  let placement =
    if Array.length r.Lp.Milp.x > 0 then Lp_builder.decode built r.Lp.Milp.x
    else begin
      Log.warn (fun f ->
          f "MILP returned %s with no incumbent; rounding the LP relaxation"
            (Lp.Status.to_string r.Lp.Milp.status));
      match
        lp_round ~relax_x:r.Lp.Milp.relax_x ~core:milp.Lp.Milp.core asis built
      with
      | Some p -> p
      | None -> Greedy.plan asis
    end
  in
  (* Local search must not undo pins or revisit forbidden pairs. *)
  let may_place =
    let pinned = Hashtbl.create 8 and banned = Hashtbl.create 8 in
    List.iter (fun (i, j) -> Hashtbl.replace pinned i j) builder.Lp_builder.pins;
    List.iter (fun ij -> Hashtbl.replace banned ij ()) builder.Lp_builder.forbids;
    fun i j ->
      (not (Hashtbl.mem banned (i, j)))
      && match Hashtbl.find_opt pinned i with None -> true | Some j' -> j = j'
  in
  let polish placement =
    if local_search then begin
      (* Swap moves are quadratic in groups; keep them for small estates. *)
      let swaps = Asis.num_groups asis <= 220 in
      Local_search.improve ~swaps ~may_place ?omega:builder.Lp_builder.omega
        asis placement
    end
    else (placement, 0)
  in
  let cost p = Evaluate.total (Evaluate.plan asis p).Evaluate.cost in
  let placement, moves = polish placement in
  (* An early heuristic incumbent is progress for the gap report, but a
     budget-starved tree can stop at one the old no-incumbent rounding
     fallback would have beaten.  While the proven gap stays loose, polish
     the rounded relaxation as a full peer candidate and keep the cheaper
     plan — the incumbent may add information, never cost plan quality. *)
  let placement, moves =
    if
      Array.length r.Lp.Milp.x > 0
      && (Float.is_nan r.Lp.Milp.gap || r.Lp.Milp.gap > 0.05)
    then
      match
        lp_round ~relax_x:r.Lp.Milp.relax_x ~core:milp.Lp.Milp.core asis built
      with
      | Some rounded when Placement.validate asis rounded = [] ->
          let rounded, rmoves = polish rounded in
          if cost rounded < cost placement then (rounded, rmoves)
          else (placement, moves)
      | _ -> (placement, moves)
    else (placement, moves)
  in
  (* When no side constraints restrict the plan, keep the better of the
     engine's plan and the polished greedy plan — a cheap insurance against
     budget-starved MILP runs. *)
  let placement =
    if
      builder.Lp_builder.pins = []
      && builder.Lp_builder.forbids = []
      && builder.Lp_builder.omega = None
    then
      match Greedy.plan asis with
      | g ->
          let g, _ =
            if local_search then
              Local_search.improve ~swaps:false ~max_rounds:2 asis g
            else (g, 0)
          in
          if Placement.validate asis g = [] && cost g < cost placement then g
          else placement
      | exception Failure _ -> placement
    else placement
  in
  {
    placement;
    summary = Evaluate.plan asis placement;
    milp_status = r.Lp.Milp.status;
    milp_gap = (if Float.is_nan r.Lp.Milp.gap then 1.0 else r.Lp.Milp.gap);
    nodes = r.Lp.Milp.nodes;
    lp_iterations = r.Lp.Milp.lp_iterations;
    local_moves = moves;
  }

let solve_to_placement ?builder asis = (consolidate ?builder asis).placement
