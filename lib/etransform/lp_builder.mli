(** Construction of the consolidation MILP (paper §III-B).

    Minimize  sum_ij X_ij ( S_i (Q_j + alpha E_j + T_j / beta) + D_i W_j + L_ij )
    s.t.      sum_j X_ij = 1           (every group placed)
              sum_i S_i X_ij <= O_j    (capacity)
              X_ij in {0,1}

    Options add the paper's refinements: economies of scale (space priced on
    the volume-discount curve via {!Lp.Piecewise.concave_cost}), fixed site
    opening charges, the business-impact spread constraint
    [sum_i X_ij <= omega * M], shared-risk separation rows, and pin/forbid
    rows from the iterative-modification interface. *)

type options = {
  economies_of_scale : bool;
  fixed_charges : bool;
  omega : float option;
  pins : (int * int) list;     (** (group, target): force placement *)
  forbids : (int * int) list;  (** (group, target): exclude placement *)
  candidate_limit : int option;
      (** keep only this many cheapest targets per group (a standard
          column-pruning presolve for large estates); pinned targets are
          always kept *)
  max_latency_ms : float option;
      (** latency budget: exclude targets whose user-weighted mean
          latency for the group exceeds this.  A group with no candidate
          inside the budget keeps its fastest admissible target, and
          pinned pairs always survive the filter. *)
}

val default_options : options

type built = {
  model : Lp.Model.t;
  x : Lp.Model.var option array array;
      (** [x.(i).(j)]: assignment variable, [None] when i may not go to j *)
  asis : Asis.t;
  options : options;
}

val build : ?options:options -> Asis.t -> built

(** [decode built solution] reads the X variables back into a plan (argmax
    per group, robust to mild fractionality). *)
val decode : built -> float array -> Placement.t
