let src = Logs.Src.create "etransform.dr" ~doc:"disaster-recovery planner"

module Log = (val Logs.src_log src : Logs.LOG)

(* A failure scenario, already compiled down to target indices: which
   sites fail together, and how much data a primary->backup link can
   evacuate inside the early-warning window.  [lib/scenario] derives
   these from DC geography; this planner only consumes them. *)
type scenario = {
  events : int list array;
  evac_mb : float option;
}

type options = {
  omega : float option;
  economies_of_scale : bool;
  reserve : float;
  milp : Lp.Milp.options;
  local_search : bool;
  secondary_candidates : int option;
  scenario : scenario option;
  max_latency_ms : float option;
}

let default_options =
  {
    omega = Some 0.6;
    economies_of_scale = false;
    reserve = 0.15;
    milp = Solver.default_milp_options;
    local_search = true;
    secondary_candidates = None;
    scenario = None;
    max_latency_ms = None;
  }

(* The scenario in effect: absent one, each site fails alone — exactly
   the paper's single-failure sharing, so the generalized stage-2 model
   below reduces to the historical one row for row. *)
let effective_events scenario n =
  match scenario with
  | Some s when Array.length s.events > 0 -> s.events
  | _ -> Array.init n (fun a -> [ a ])

let effective_evac scenario =
  match scenario with None -> None | Some s -> s.evac_mb

(* co_fail.(a).(b): site [b] fails in EVERY event that takes out site
   [a], so [b] is useless as a backup for a group whose primary is [a] —
   the pairing would survive no failure of [a].  This is deliberately
   NOT "a and b share some event": under multi-failure planning the
   events include unions of independent regions, where every site pair
   co-occurs somewhere yet most pairings still protect most events —
   those are capacity-sizing events, not exclusions.  Only deterministic
   co-failure (b inside a's correlated region, under every union) kills
   the pairing.  With singleton events this reduces to [a = b]. *)
let co_fail_matrix events n =
  let co = Array.make_matrix n n true in
  let appears = Array.make n false in
  Array.iter
    (fun ev ->
      List.iter
        (fun a ->
          if a >= 0 && a < n then begin
            appears.(a) <- true;
            for b = 0 to n - 1 do
              if not (List.mem b ev) then co.(a).(b) <- false
            done
          end)
        ev)
    events;
  (* A site no event touches never fails; nothing is excluded for it. *)
  for a = 0 to n - 1 do
    if not appears.(a) then
      for b = 0 to n - 1 do
        co.(a).(b) <- false
      done
  done;
  co

(* Stage 1 runs against a shrunk estate so stage 2 has room for pools. *)
let with_reserved_capacity asis reserve =
  let targets =
    Array.map
      (fun (dc : Data_center.t) ->
        let cap =
          max 1 (int_of_float (float_of_int dc.Data_center.capacity *. (1.0 -. reserve)))
        in
        { dc with Data_center.capacity = cap })
      asis.Asis.targets
  in
  { asis with Asis.targets }

(* Stage 2: given primaries, choose each group's secondary and size the
   shared pools exactly.  With a scenario the pools are sized per failure
   event (every site of an event fails at once, so one pool must absorb
   all their failovers together), co-failing sites are excluded as
   backups, and early-warning evacuation rows bound the data each
   primary->backup link must move inside the warning window. *)
let secondary_model ?candidates ?scenario asis (primary : int array) =
  let open Lp in
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let events = effective_events scenario n in
  let evac_mb = effective_evac scenario in
  let co_fail = co_fail_matrix events n in
  let model = Model.create ~name:(asis.Asis.name ^ "_dr_stage2") () in
  (* Pool sites concentrate on the cheapest hosts, so pruning candidate
     secondaries loses essentially nothing at scale. *)
  let per_backup_price b =
    let dc = asis.Asis.targets.(b) in
    asis.Asis.params.Asis.dr_server_cost
    +. Cost_model.power_labor_per_server asis dc
    +. Data_center.first_tier_space dc
  in
  let keep =
    match candidates with
    | None -> fun _ _ -> true
    | Some k ->
        let order =
          List.init n Fun.id
          |> List.map (fun b -> (per_backup_price b, b))
          |> List.sort compare
          |> List.map snd
        in
        fun i b ->
          let rec rank acc = function
            | [] -> max_int
            | x :: rest -> if x = b then acc else rank (acc + 1) rest
          in
          (* The primary is excluded elsewhere; count cheap sites that are
             admissible for this group. *)
          ignore i;
          rank 0 order < k
  in
  let y =
    Array.init m (fun i ->
        Array.init n (fun b ->
            if
              b <> primary.(i)
              && App_group.allowed asis.Asis.groups.(i) b
              && (not co_fail.(primary.(i)).(b))
              && (keep i b || n <= 2)
            then
              Some (Model.add_var model ~binary:true (Printf.sprintf "Y_%d_%d" i b))
            else None))
  in
  let g =
    Array.init n (fun b -> Model.add_var model (Printf.sprintf "G_%d" b))
  in
  for i = 0 to m - 1 do
    let terms =
      Array.to_list y.(i) |> List.filter_map (Option.map Model.Linexpr.var)
    in
    if terms = [] then
      failwith
        (Printf.sprintf "Dr_planner: group %d has no candidate secondary" i);
    Model.add_eq model (Printf.sprintf "backup_%d" i) (Model.Linexpr.sum terms)
      1.0
  done;
  (* Pool sizing per (failure event e, pool site b): when event [e]
     strikes, every group whose primary is inside it fails over at once,
     so the pool at [b] must cover their joint demand.  With the default
     singleton events this is exactly the historical one row per
     (primary site, pool site). *)
  Array.iteri
    (fun e ev ->
      for b = 0 to n - 1 do
        if not (List.mem b ev) then begin
          let demand =
            Model.Linexpr.sum
              (List.filter_map
                 (fun i ->
                   if List.mem primary.(i) ev then
                     Option.map
                       (Model.Linexpr.term
                          (float_of_int asis.Asis.groups.(i).App_group.servers))
                       y.(i).(b)
                   else None)
                 (List.init m Fun.id))
          in
          Model.add_ge model
            (Printf.sprintf "pool_%d_%d" e b)
            (Model.Linexpr.sub (Model.Linexpr.var g.(b)) demand)
            0.0
        end
      done)
    events;
  (* Early-warning evacuation: the data of the groups failing over from
     primary [a] to backup [b] must fit through that link inside the
     warning window (bandwidth x window, precompiled into [evac_mb]). *)
  (match evac_mb with
  | None -> ()
  | Some budget ->
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then begin
            let terms =
              List.filter_map
                (fun i ->
                  let d = asis.Asis.groups.(i).App_group.data_mb_month in
                  if primary.(i) = a && d > 0.0 then
                    Option.map (Model.Linexpr.term d) y.(i).(b)
                  else None)
                (List.init m Fun.id)
            in
            if terms <> [] then
              Model.add_le model
                (Printf.sprintf "evac_%d_%d" a b)
                (Model.Linexpr.sum terms) budget
          end
        done
      done);
  (* Full capacity minus the primary load already committed. *)
  let load = Array.make n 0 in
  Array.iteri
    (fun i a -> load.(a) <- load.(a) + asis.Asis.groups.(i).App_group.servers)
    primary;
  for b = 0 to n - 1 do
    Model.add_le model
      (Printf.sprintf "cap_%d" b)
      (Model.Linexpr.var g.(b))
      (float_of_int (asis.Asis.targets.(b).Data_center.capacity - load.(b)))
  done;
  let terms = ref [] in
  for b = 0 to n - 1 do
    let dc = asis.Asis.targets.(b) in
    let per_backup =
      asis.Asis.params.Asis.dr_server_cost
      +. Cost_model.power_labor_per_server asis dc
      +. Data_center.first_tier_space dc
    in
    terms := Model.Linexpr.term per_backup g.(b) :: !terms
  done;
  Model.set_objective model (Model.Linexpr.sum !terms);
  (model, y)

(* Deterministic fallback when the stage-2 MILP yields no integer point
   within its budget: assign secondaries greedily, largest groups first,
   maintaining the same pool semantics as the MILP — site [b]'s pool must
   cover the worst single-site failover, i.e. the max over primary sites
   [a] of the servers of groups with primary [a] backed up at [b], and
   primary load plus pool must fit [b]'s full capacity.  Each group takes
   the site with the cheapest incremental pool cost.  Returns [None] when
   some group fits nowhere. *)
let greedy_secondary ?scenario asis (primary : int array) =
  let m = Asis.num_groups asis and n = Asis.num_targets asis in
  let events = effective_events scenario n in
  let evac_mb = effective_evac scenario in
  let co_fail = co_fail_matrix events n in
  (* Failure events whose site set contains [a]: the pools that must
     absorb a group with primary [a]. *)
  let events_of = Array.make n [] in
  Array.iteri
    (fun e ev ->
      List.iter
        (fun a -> if a >= 0 && a < n then events_of.(a) <- e :: events_of.(a))
        ev)
    events;
  let price b =
    let dc = asis.Asis.targets.(b) in
    asis.Asis.params.Asis.dr_server_cost
    +. Cost_model.power_labor_per_server asis dc
    +. Data_center.first_tier_space dc
  in
  let load = Array.make n 0 in
  Array.iteri
    (fun i a -> load.(a) <- load.(a) + asis.Asis.groups.(i).App_group.servers)
    primary;
  (* demand.(e).(b): failover servers landing at [b] when event [e]
     strikes; the pool at [b] is the worst event's demand. *)
  let demand = Array.make_matrix (Array.length events) n 0 in
  let evac_used = Array.make_matrix n n 0.0 in
  let pool = Array.make n 0 in
  let secondary = Array.make m (-1) in
  let order =
    List.init m Fun.id
    |> List.sort (fun i j ->
           compare
             (asis.Asis.groups.(j).App_group.servers, i)
             (asis.Asis.groups.(i).App_group.servers, j))
  in
  let place i =
    let a = primary.(i) in
    let s = asis.Asis.groups.(i).App_group.servers in
    let d = asis.Asis.groups.(i).App_group.data_mb_month in
    let pool_with b =
      List.fold_left
        (fun acc e -> max acc (demand.(e).(b) + s))
        pool.(b) events_of.(a)
    in
    let evac_ok b =
      match evac_mb with
      | None -> true
      | Some budget -> evac_used.(a).(b) +. d <= budget +. 1e-9
    in
    let best = ref (-1) and best_cost = ref infinity in
    for b = 0 to n - 1 do
      if
        b <> a
        && App_group.allowed asis.Asis.groups.(i) b
        && (not co_fail.(a).(b))
        && evac_ok b
      then begin
        let new_pool = pool_with b in
        if load.(b) + new_pool <= asis.Asis.targets.(b).Data_center.capacity
        then begin
          let cost = float_of_int (new_pool - pool.(b)) *. price b in
          if cost < !best_cost -. 1e-9 then begin
            best_cost := cost;
            best := b
          end
        end
      end
    done;
    if !best < 0 then false
    else begin
      let b = !best in
      List.iter
        (fun e ->
          demand.(e).(b) <- demand.(e).(b) + s;
          pool.(b) <- max pool.(b) demand.(e).(b))
        events_of.(a);
      evac_used.(a).(b) <- evac_used.(a).(b) +. d;
      secondary.(i) <- b;
      true
    end
  in
  if List.for_all place order then Some secondary else None

let decode_secondary asis primary y solution =
  let n = Asis.num_targets asis in
  Array.init (Array.length primary) (fun i ->
      let best = ref (-1) and best_v = ref neg_infinity in
      Array.iteri
        (fun b v ->
          match v with
          | None -> ()
          | Some var ->
              let value = solution.(var.Lp.Model.id) in
              if value > !best_v then begin
                best_v := value;
                best := b
              end)
        y.(i);
      if !best >= 0 then !best else (primary.(i) + 1) mod n)

let plan ?(options = default_options) asis =
  (* Reserving more capacity than the estate can spare would make stage 1
     unsolvable outright. *)
  let max_reserve =
    let cap = float_of_int (Asis.total_target_capacity asis) in
    let servers = float_of_int (Asis.total_servers asis) in
    Float.max 0.0 (1.0 -. (servers /. cap) -. 0.02)
  in
  let rec attempt ~candidates reserve tries =
    let reserve = Float.min reserve max_reserve in
    let stage1_asis = with_reserved_capacity asis reserve in
    let builder =
      {
        Lp_builder.default_options with
        Lp_builder.economies_of_scale = options.economies_of_scale;
        omega = options.omega;
        max_latency_ms = options.max_latency_ms;
      }
    in
    let stage1 =
      Solver.consolidate ~builder ~milp:options.milp ~local_search:false
        stage1_asis
    in
    let primary = stage1.Solver.placement.Placement.primary in
    let model, y =
      secondary_model ?candidates ?scenario:options.scenario asis primary
    in
    let r = Lp.Milp.solve ~options:options.milp model in
    let finish ~secondary ~status ~gap =
      let placement = Placement.with_dr ~primary ~secondary () in
      let placement, moves =
        (* The local search polishes against the exact evaluator, which
           does not see failure events or evacuation budgets; a move
           could silently re-pair a group with a co-failing backup, so
           scenario'd plans skip the polish. *)
        if options.local_search && options.scenario = None then
          Local_search.improve ~swaps:(Asis.num_groups asis <= 120) asis
            placement
        else (placement, 0)
      in
      {
        Solver.placement;
        summary = Evaluate.plan asis placement;
        milp_status = status;
        milp_gap = gap;
        nodes = stage1.Solver.nodes + r.Lp.Milp.nodes;
        lp_iterations = stage1.Solver.lp_iterations + r.Lp.Milp.lp_iterations;
        local_moves = moves;
      }
    in
    if Array.length r.Lp.Milp.x = 0 then begin
      (* A node or time budget can run out before branch-and-bound (or its
         dive heuristic) finds any integer point; that is not evidence of
         infeasibility.  A greedy secondary assignment over the same pool
         constraints recovers a feasible plan directly in that case. *)
      match
        if r.Lp.Milp.status = Lp.Status.Infeasible then None
        else greedy_secondary ?scenario:options.scenario asis primary
      with
      | Some secondary ->
          Log.info (fun f ->
              f "stage 2 MILP found no incumbent (%a); using greedy secondaries"
                Lp.Status.pp r.Lp.Milp.status);
          finish ~secondary ~status:Lp.Status.Feasible ~gap:1.0
      | None ->
          if tries > 0 then begin
            Log.info (fun f ->
                f "stage 2 infeasible at reserve %.2f; retrying" reserve);
            (* Widen the pool-site candidate set before reserving more. *)
            match candidates with
            | Some _ -> attempt ~candidates:None reserve (tries - 1)
            | None -> attempt ~candidates:None (reserve +. 0.1) (tries - 1)
          end
          else
            failwith
              "Dr_planner.plan: could not fit backup pools; raise capacity"
    end
    else begin
      let gap = if Float.is_nan r.Lp.Milp.gap then 1.0 else r.Lp.Milp.gap in
      let milp_out =
        finish
          ~secondary:(decode_secondary asis primary y r.Lp.Milp.x)
          ~status:r.Lp.Milp.status ~gap
      in
      (* Same insurance as Solver.consolidate: a heuristic incumbent the
         tree never had time to improve can lose to the greedy secondary
         assignment that no-incumbent runs would have used.  While the gap
         is loose, finish both and keep the cheaper plan. *)
      if gap <= 0.05 then milp_out
      else
        match greedy_secondary ?scenario:options.scenario asis primary with
        | Some secondary ->
            let greedy_out =
              finish ~secondary ~status:r.Lp.Milp.status ~gap
            in
            let total out =
              Evaluate.total out.Solver.summary.Evaluate.cost
            in
            if total greedy_out < total milp_out then greedy_out else milp_out
        | None -> milp_out
    end
  in
  attempt ~candidates:options.secondary_candidates options.reserve 3

let joint_plan ?omega ?(milp = Solver.default_milp_options) asis =
  let built =
    Dr_builder.build ~options:{ Dr_builder.default_options with Dr_builder.omega } asis
  in
  let r = Lp.Milp.solve ~options:milp built.Dr_builder.model in
  if Array.length r.Lp.Milp.x = 0 then
    failwith
      (Printf.sprintf "Dr_planner.joint_plan: %s"
         (Lp.Status.to_string r.Lp.Milp.status));
  let placement = Dr_builder.decode built r.Lp.Milp.x in
  {
    Solver.placement;
    summary = Evaluate.plan asis placement;
    milp_status = r.Lp.Milp.status;
    milp_gap = (if Float.is_nan r.Lp.Milp.gap then 1.0 else r.Lp.Milp.gap);
    nodes = r.Lp.Milp.nodes;
    lp_iterations = r.Lp.Milp.lp_iterations;
    local_moves = 0;
  }
