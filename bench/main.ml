(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (experiments E0-E7, see DESIGN.md) and measures the solver
   kernels with Bechamel.

   Usage: main.exe [--json] [--check BASELINE.json] [--tolerance PCT]
                   [e0|e1|e2|e3|e4|e5|e6|e7|kernels|smoke|all]   (default: all)

   [smoke] runs every kernel thunk exactly once (no timing) so the test
   suite can exercise the bench harness cheaply; [--check] compares the
   measured kernels against a committed baseline and fails the run on a
   >25% regression. *)

open Bechamel

(* Read one keep-alive HTTP response off [fd]: head until the blank
   line, then exactly Content-Length body bytes.  Shared by the warm
   roundtrip kernel and the concurrency measurement, both of which
   reuse persistent connections.  Scans [buf] in place — the reader
   itself must not allocate, or client-side GC noise leaks into the
   latency it is measuring. *)
let read_keepalive_response buf fd =
  let lower c =
    if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c
  in
  let marker = "content-length:" in
  let content_length head_end =
    let ml = String.length marker in
    let rec go i =
      if i + ml > head_end then 0
      else
        let rec m k =
          k = ml || (lower (Bytes.get buf (i + k)) = marker.[k] && m (k + 1))
        in
        if m 0 then
          let rec skip i =
            if i < head_end && Bytes.get buf i = ' ' then skip (i + 1) else i
          in
          let rec num i acc =
            if i < head_end then
              let c = Bytes.get buf i in
              if c >= '0' && c <= '9' then
                num (i + 1) ((acc * 10) + (Char.code c - 48))
              else acc
            else acc
          in
          num (skip (i + ml)) 0
        else go (i + 1)
    in
    go 0
  in
  let rec fill len =
    let got = Unix.read fd buf len (Bytes.length buf - len) in
    if got = 0 then failwith "connection closed mid-response";
    let len = len + got in
    let rec find i =
      if i + 3 >= len then -1
      else if
        Bytes.get buf i = '\r'
        && Bytes.get buf (i + 1) = '\n'
        && Bytes.get buf (i + 2) = '\r'
        && Bytes.get buf (i + 3) = '\n'
      then i + 4
      else find (i + 1)
    in
    match find 0 with
    | -1 -> fill len
    | body_off ->
        let cl = content_length body_off in
        let rec drain have =
          if have < cl then begin
            let got = Unix.read fd buf 0 (Bytes.length buf) in
            if got = 0 then failwith "connection closed mid-body";
            drain (have + got)
          end
        in
        drain (len - body_off)
  in
  fill 0

(* Last-seen node counts for the branch-and-bound kernels, keyed by
   kernel name.  Refreshed on every run of the thunk, so after a timing
   window the table holds the tree size of the final iteration — tree
   searches here are deterministic, so that is THE tree size.  The JSON
   writer emits it next to ns_per_run: a branching regression that
   doubles the tree but hides inside wall-clock noise still shows up in
   the recorded node counts. *)
let tree_nodes : (string, int) Hashtbl.t = Hashtbl.create 8

(* One entry per experiment family, over the kernels each experiment
   leans on.  Returned as named thunks so the same list backs both the
   Bechamel timing run and the single-shot smoke mode. *)
let kernel_thunks () =
  let small_lp () =
    let m = Lp.Model.create ~name:"bench_lp" () in
    let xs =
      Array.init 12 (fun i -> Lp.Model.add_var m ~hi:10.0 (Printf.sprintf "x%d" i))
    in
    for r = 0 to 7 do
      let e =
        Lp.Model.Linexpr.sum
          (List.init 12 (fun j ->
               Lp.Model.Linexpr.term
                 (float_of_int (((r * 12) + j) mod 7) +. 1.0)
                 xs.(j)))
      in
      Lp.Model.add_le m (Printf.sprintf "r%d" r) e (30.0 +. float_of_int r)
    done;
    Lp.Model.set_objective m ~minimize:false
      (Lp.Model.Linexpr.sum
         (List.init 12 (fun j ->
              Lp.Model.Linexpr.term (float_of_int ((j mod 5) + 1)) xs.(j))));
    m
  in
  let fixture =
    Datasets.Synth.generate
      { Datasets.Synth.default with
        Datasets.Synth.n_groups = 24; n_targets = 5; total_servers = 200 }
  in
  let built = Etransform.Lp_builder.build fixture in
  let greedy_plan = Etransform.Greedy.plan fixture in
  (* A generalized-assignment model with tight bin capacities: unlike the
     consolidation fixture (which solves at the root) its relaxation is
     fractional, so the branch-and-bound variants exercise a real tree. *)
  let gap_model =
    let nitems = 14 and nbins = 4 in
    let rng = Datasets.Prng.create 7 in
    let m = Lp.Model.create ~name:"bench_gap" () in
    let x =
      Array.init nitems (fun i ->
          Array.init nbins (fun b ->
              Lp.Model.add_var m ~binary:true (Printf.sprintf "x_%d_%d" i b)))
    in
    let weight =
      Array.init nitems (fun _ -> 2.0 +. Datasets.Prng.range rng 0.0 8.0)
    in
    let cost =
      Array.init nitems (fun _ ->
          Array.init nbins (fun _ -> 1.0 +. Datasets.Prng.range rng 0.0 9.0))
    in
    for i = 0 to nitems - 1 do
      Lp.Model.add_eq m (Printf.sprintf "assign_%d" i)
        (Lp.Model.Linexpr.sum
           (List.init nbins (fun b -> Lp.Model.Linexpr.var x.(i).(b))))
        1.0
    done;
    let total_w = Array.fold_left ( +. ) 0.0 weight in
    (* 2 % slack: at 12 % the root dive already lands on the optimum and
       every strategy closes the tree in 3 nodes, which measures nothing.
       Near-tight capacities force a real search (thousands of nodes under
       most-fractional branching) — the regime where branching-rule and
       node-LP costs actually show up. *)
    let cap = 1.02 *. total_w /. float_of_int nbins in
    for b = 0 to nbins - 1 do
      Lp.Model.add_le m (Printf.sprintf "cap_%d" b)
        (Lp.Model.Linexpr.sum
           (List.init nitems (fun i ->
                Lp.Model.Linexpr.term weight.(i) x.(i).(b))))
        cap
    done;
    Lp.Model.set_objective m ~minimize:true
      (Lp.Model.Linexpr.sum
         (List.concat
            (List.init nitems (fun i ->
                 List.init nbins (fun b ->
                     Lp.Model.Linexpr.term cost.(i).(b) x.(i).(b))))));
    m
  in
  (* Planning-service throughput: one batch of eight distinct line-estate
     scenarios (the E3 sweep's shape) through the worker pool.  The w1/w2/w4
     kernels build a fresh pool per run, so every solve is a cache miss and
     the scaling is pure parallelism (including domain spawn/join costs) —
     meaningful only on multi-core hosts: a single-core container
     serializes the domains and oversubscription can only add overhead.
     The warm kernel reuses a pre-warmed pool, so every job is a cache
     hit. *)
  let service_jobs =
    List.concat_map
      (fun p ->
        List.map
          (fun frac ->
            Service.Job.v
              ~milp:
                { Service.Job.no_overrides with
                  Service.Job.node_limit = Some 2;
                  time_limit = Some 20.0 }
              (Harness.Line_jobs.estate ~penalty:p
                 { Harness.Line_estate.default with
                   Harness.Line_estate.n_groups = 24;
                   frac_at_0 = frac }))
          [ 0.25; 0.75 ])
      [ 0.0; 40.0; 80.0; 120.0 ]
  in
  let service_batch workers () =
    Service.Pool.with_pool ~workers ~cache_capacity:64 (fun pool ->
        ignore (Service.Pool.run_batch pool service_jobs))
  in
  (* Lazy and worker-less: forcing it earlier would leave idle domains
     alive through every other kernel's measurement window, and on OCaml 5
     each extra domain taxes the stop-the-world minor collections that the
     allocation-heavy solver kernels trigger constantly. *)
  let warm_pool =
    lazy
      (let pool = Service.Pool.create ~workers:0 ~cache_capacity:64 () in
       ignore (Service.Pool.run_batch pool service_jobs);
       pool)
  in
  (* Scenario-sweep machinery over a warm cache: a 6-point grid (failure
     radius x early-warning window) fanned through its own worker-less
     pool, pre-swept once when the lazy forces.  Every timed run is then
     all cache hits, so the kernel isolates the sweep engine's own costs
     — grid expansion, per-point fingerprinting, resilience scoring
     under the strictest spec, and the Pareto frontier fold — from MILP
     time. *)
  let sweep_job =
    Service.Job.v
      ~milp:
        { Service.Job.no_overrides with
          Service.Job.node_limit = Some 2;
          time_limit = Some 20.0 }
      (Harness.Line_jobs.estate ~penalty:40.0
         { Harness.Line_estate.default with Harness.Line_estate.n_groups = 12 })
  in
  let sweep_grid =
    { Service.Sweep.empty_grid with
      Service.Sweep.radius_km = [ None; Some 50.0; Some 100.0 ];
      warning_s = [ None; Some 600.0 ] }
  in
  let sweep_pool =
    lazy
      (let pool = Service.Pool.create ~workers:0 ~cache_capacity:64 () in
       ignore (Service.Sweep.run pool sweep_job sweep_grid ~f:(fun _ -> ()));
       pool)
  in
  (* Whole-stack HTTP latency, split along the reactor's design axis.
     The cold kernel opens a fresh loopback connection per request
     against a cache-less server: it pays connect/teardown (~43us of
     raw socket churn on a single-core host, measured with a blocking
     echo floor) plus a full solve.  The warm kernel measures the
     steady-state path instead — one request/response roundtrip on an
     established keep-alive connection with a hot plan cache, which is
     what a long-lived planning service actually serves.  Worker-less
     pools keep extra domains out of the other kernels' measurement
     windows (fibers solve inline), and the lazy servers only start
     when their kernel first runs. *)
  let http_job_line =
    {|{"id":"bench","estate":{"kind":"line","n_groups":12},"milp":{"nodes":2,"time":20}}|}
  in
  let start_server ~cache_capacity () =
    let pool = Service.Pool.create ~workers:0 ~cache_capacity () in
    let server =
      Server.Daemon.create ~port:0 ~resolve:Harness.Line_jobs.resolve ~pool ()
    in
    ignore (Thread.create Server.Daemon.run server);
    Server.Daemon.port server
  in
  let http_roundtrip port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf
            "POST /solve HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s"
            (String.length http_job_line) http_job_line
        in
        let b = Bytes.of_string req in
        let n = Bytes.length b in
        let rec send off =
          if off < n then send (off + Unix.write fd b off (n - off))
        in
        send 0;
        let buf = Bytes.create 4096 in
        let rec drain () = if Unix.read fd buf 0 4096 > 0 then drain () in
        drain ())
  in
  let cold_server = lazy (start_server ~cache_capacity:0 ()) in
  let ka_buf = Bytes.create 65536 in
  let ka_req =
    Bytes.unsafe_of_string
      (Printf.sprintf
         "POST /solve HTTP/1.1\r\nHost: bench\r\nContent-Length: %d\r\n\r\n%s"
         (String.length http_job_line) http_job_line)
  in
  let ka_roundtrip fd =
    let n = Bytes.length ka_req in
    let rec send off =
      if off < n then send (off + Unix.write fd ka_req off (n - off))
    in
    send 0;
    read_keepalive_response ka_buf fd
  in
  let warm_conn =
    lazy
      (let port = start_server ~cache_capacity:64 () in
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.setsockopt fd Unix.TCP_NODELAY true;
       (* First roundtrip populates the plan cache, so measured
          iterations answer warm. *)
       ka_roundtrip fd;
       fd)
  in
  (* Tiered-cache hit paths in isolation.  Both kernels push one job
     through a pool whose in-process LRU is disabled (capacity 0), so
     every timed lookup falls through to the backing tier.  The disk
     kernel times a warm segment read — fingerprint, index lookup,
     pread, checksum verify, binary decode — against a store populated
     when the lazy forces.  The peer kernel times a full loopback HTTP
     probe (GET /cache/<fp>) against a sibling daemon whose LRU already
     holds the plan, bounding what a cross-node hit costs between the
     keep-alive floor and a cold solve. *)
  let disk_pool =
    lazy
      (let dir =
         Filename.concat
           (Filename.get_temp_dir_name ())
           (Printf.sprintf "etransform_bench_disk_%d" (Unix.getpid ()))
       in
       (try Unix.mkdir dir 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
       let node = Cluster.Node.create ~cache_dir:dir () in
       let pool =
         Service.Pool.create ~workers:0 ~cache_capacity:0
           ~tiers:(Cluster.Node.tiers node) ()
       in
       (* First run solves and persists; measured runs hit the disk. *)
       ignore (Service.Pool.run_batch pool [ sweep_job ]);
       pool)
  in
  let peer_pool =
    lazy
      (let remote_pool = Service.Pool.create ~workers:0 ~cache_capacity:64 () in
       let remote =
         Server.Daemon.create ~port:0 ~resolve:Harness.Line_jobs.resolve
           ~pool:remote_pool ()
       in
       ignore (Thread.create Server.Daemon.run remote);
       (* Warm the remote's LRU directly so the first measured probe
          already hits; with no digest gossiped yet the local peer tier
          probes optimistically. *)
       ignore (Service.Pool.run_batch remote_pool [ sweep_job ]);
       let node =
         Cluster.Node.create
           ~peers:
             [ Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port remote) ]
           ()
       in
       Service.Pool.create ~workers:0 ~cache_capacity:0
         ~tiers:(Cluster.Node.tiers node) ())
  in
  let milp_opts ?(warm_start = true) ?(workers = 1) () =
    { Lp.Milp.default_options with
      Lp.Milp.node_limit = 50; warm_start; workers }
  in
  (* The gap-tree kernels time the branch-and-bound tree in isolation:
     root heuristics are disabled (the pump and cut machinery has its own
     kernel, federal_milp_root) so a regression here means the tree — the
     selector, the node LPs, the queue — got slower, not that root-stage
     policy changed. *)
  let gap_opts ?warm_start ?workers () =
    { (milp_opts ?warm_start ?workers ()) with
      Lp.Milp.node_limit = 5000; dive_first = false; pump = false;
      root_cuts = false }
  in
  let tree name options model () =
    let r = Lp.Milp.solve ~options model in
    Hashtbl.replace tree_nodes name r.Lp.Milp.nodes
  in
  (* Root-node work on the real Federal estate at a bench-sized scale:
     LP relaxation plus cut separation and the feasibility pump, no
     tree.  This is the fixed cost every Federal study pays before
     branching starts, and the piece whose regressions the synthetic
     fixtures cannot see (piecewise segment binaries, big-M site
     indicators). *)
  let federal_root =
    lazy
      (let asis = Datasets.Federal.asis ~scale:0.05 () in
       let built =
         Etransform.Lp_builder.build
           ~options:
             { Etransform.Lp_builder.default_options with
               Etransform.Lp_builder.economies_of_scale = true;
               fixed_charges = true }
           asis
       in
       built.Etransform.Lp_builder.model)
  in
  let federal_root_opts =
    { Lp.Milp.default_options with
      Lp.Milp.node_limit = 1;
      time_limit = 30.0;
      core = Lp.Simplex.Sparse }
  in
  [
    ( "e1_simplex_solve",
      fun () -> ignore (Lp.Simplex.solve (Lp.Simplex.of_model (small_lp ()))) );
    ( "e1_milp_assignment",
      fun () ->
        ignore
          (Lp.Milp.solve ~options:(milp_opts ())
             built.Etransform.Lp_builder.model) );
    ( "e1_milp_assignment_cold",
      fun () ->
        ignore
          (Lp.Milp.solve
             ~options:(milp_opts ~warm_start:false ())
             built.Etransform.Lp_builder.model) );
    ( "e1_milp_assignment_par4",
      fun () ->
        ignore
          (Lp.Milp.solve ~options:(milp_opts ~workers:4 ())
             built.Etransform.Lp_builder.model) );
    ( "e1_milp_gap_tree_cold",
      tree "e1_milp_gap_tree_cold" (gap_opts ~warm_start:false ()) gap_model );
    ("e1_milp_gap_tree_warm", tree "e1_milp_gap_tree_warm" (gap_opts ()) gap_model);
    ( "e1_milp_gap_tree_par4",
      tree "e1_milp_gap_tree_par4" (gap_opts ~workers:4 ()) gap_model );
    ( "e1_milp_pseudocost",
      tree "e1_milp_pseudocost"
        { (gap_opts ()) with
          Lp.Milp.branch_strategy = Lp.Branching.Pseudocost }
        gap_model );
    (* Uninformed reference point for the tree kernels above: same model,
       same budget, most-fractional selection.  The nodes field in the
       JSON makes the pseudocost/reliability node reduction auditable
       from a single run. *)
    ( "e1_milp_mf_tree",
      tree "e1_milp_mf_tree"
        { (gap_opts ()) with
          Lp.Milp.branch_strategy = Lp.Branching.Most_fractional }
        gap_model );
    (* Work-stealing scaling ladder: the same gap tree at 1, 2 and 4
       workers.  w1 always runs (it is the sequential reference); w2/w4
       are in [multi_worker_kernels], so on hosts with fewer cores they
       are skip-tagged instead of timing oversubscription thrash.  On a
       multicore host `kernels --check` compares them against baseline:
       the w2 entry is the speed-up gate (w2 should beat 0.75x w1). *)
    ( "milp_scale_w1",
      tree "milp_scale_w1" (gap_opts ~workers:1 ()) gap_model );
    ( "milp_scale_w2",
      tree "milp_scale_w2" (gap_opts ~workers:2 ()) gap_model );
    ( "milp_scale_w4",
      tree "milp_scale_w4" (gap_opts ~workers:4 ()) gap_model );
    ( "federal_milp_root",
      fun () ->
        tree "federal_milp_root" federal_root_opts (Lazy.force federal_root) ()
    );
    ("e1_greedy_baseline", fun () -> ignore (Etransform.Greedy.plan fixture));
    ( "e2_backup_pools",
      fun () ->
        ignore
          (Etransform.Placement.backup_servers fixture
             (Etransform.Greedy.plan_dr fixture)) );
    ( "e3_exact_evaluation",
      fun () -> ignore (Etransform.Evaluate.plan fixture greedy_plan) );
    ( "e5_lp_file_roundtrip",
      fun () ->
        ignore
          (Lp.Lp_parse.model_of_string
             (Lp.Lp_format.model_to_string built.Etransform.Lp_builder.model))
    );
    ( "e6_dataset_synthesis",
      fun () -> ignore (Datasets.Synth.generate Datasets.Synth.default) );
    ("service_batch_line_w1", service_batch 1);
    ("service_batch_line_w2", service_batch 2);
    ("service_batch_line_w4", service_batch 4);
    ( "service_batch_line_warm",
      fun () ->
        ignore (Service.Pool.run_batch (Lazy.force warm_pool) service_jobs) );
    ( "scenario_sweep_grid",
      fun () ->
        ignore
          (Service.Sweep.run (Lazy.force sweep_pool) sweep_job sweep_grid
             ~f:(fun _ -> ())) );
    ( "service_http_roundtrip_cold",
      fun () -> http_roundtrip (Lazy.force cold_server) );
    ( "service_http_roundtrip_warm",
      fun () -> ka_roundtrip (Lazy.force warm_conn) );
    ( "service_cache_disk_warm",
      fun () ->
        ignore (Service.Pool.run_batch (Lazy.force disk_pool) [ sweep_job ]) );
    ( "service_cache_peer_warm",
      fun () ->
        ignore (Service.Pool.run_batch (Lazy.force peer_pool) [ sweep_job ]) );
  ]

(* The multi-worker pool kernels measure parallel speed-up: on a host
   with fewer cores than workers they can only measure oversubscription
   overhead (w1 25ms -> w2 48ms -> w4 95ms on a 1-CPU container), and a
   baseline captured there would enshrine the slowdown.  Kernels whose
   worker count exceeds [Domain.recommended_domain_count] are skipped
   and tagged ["skipped_oversubscribed"] in the JSON instead of being
   timed. *)
let multi_worker_kernels =
  [
    ("service_batch_line_w2", 2);
    ("service_batch_line_w4", 4);
    ("milp_scale_w2", 2);
    ("milp_scale_w4", 4);
  ]

let oversubscribed name =
  match List.assoc_opt name multi_worker_kernels with
  | Some workers -> workers > Domain.recommended_domain_count ()
  | None -> false

(* BENCH_KERNELS=sub1,sub2 limits the timed kernels to names containing
   one of the substrings — an escape hatch for iterating on a single
   kernel without paying for the whole suite.  Filtered-out kernels are
   absent from the run (not "skipped"), so a partial run never
   overwrites their baseline with nulls; don't regenerate the committed
   JSON under a filter. *)
let kernel_selected =
  match Sys.getenv_opt "BENCH_KERNELS" with
  | None | Some "" -> fun _ -> true
  | Some spec ->
      let pats =
        List.filter (fun p -> p <> "") (String.split_on_char ',' spec)
      in
      fun name ->
        List.exists
          (fun p ->
            let n = String.length name and m = String.length p in
            let rec go i = i + m <= n && (String.sub name i m = p || go (i + 1)) in
            go 0)
          pats

let partition_kernels () =
  List.partition
    (fun (name, _) -> not (oversubscribed name))
    (List.filter (fun (name, _) -> kernel_selected name) (kernel_thunks ()))

let kernel_tests active =
  List.map (fun (name, thunk) -> Test.make ~name (Staged.stage thunk)) active

(* Each kernel once, untimed: correctness smoke for `dune runtest`. *)
let run_smoke () =
  let active, skipped = partition_kernels () in
  List.iter
    (fun (name, thunk) ->
      thunk ();
      Printf.printf "smoke %-28s ok\n%!" name)
    active;
  List.iter
    (fun (name, _) ->
      Printf.printf "smoke %-28s skipped (workers > %d cores)\n%!" name
        (Domain.recommended_domain_count ()))
    skipped

(* ------------------------------------------------- concurrency kernel *)

(* Latency under load: hold [conns] concurrent keep-alive connections
   open against a warm server and measure /solve roundtrips cycling
   over them, so every request is served with the full connection set
   in the reactor's poll set.  Reported as p50/p99 over [samples]
   roundtrips; the JSON's [ns_per_run] is the p50 (the regression gate
   then compares medians, so tail noise does not flap the check). *)
let run_concurrency ~conns ~samples () =
  let job_line =
    {|{"id":"bench","estate":{"kind":"line","n_groups":12},"milp":{"nodes":2,"time":20}}|}
  in
  let pool = Service.Pool.create ~workers:0 ~cache_capacity:64 () in
  let server =
    Server.Daemon.create ~port:0 ~resolve:Harness.Line_jobs.resolve
      ~max_conns:(conns + 64) ~idle_timeout:120.0 ~pool ()
  in
  let th = Thread.create Server.Daemon.run server in
  let port = Server.Daemon.port server in
  Fun.protect
    ~finally:(fun () ->
      Server.Daemon.request_stop server;
      Thread.join th;
      Service.Pool.shutdown pool)
  @@ fun () ->
  let req =
    Printf.sprintf
      "POST /solve HTTP/1.1\r\nHost: bench\r\nContent-Length: %d\r\n\r\n%s"
      (String.length job_line) job_line
  in
  let reqb = Bytes.unsafe_of_string req in
  let reqn = Bytes.length reqb in
  let buf = Bytes.create 65536 in
  let read_response fd = read_keepalive_response buf fd in
  let roundtrip fd =
    let rec send off =
      if off < reqn then send (off + Unix.write fd reqb off (reqn - off))
    in
    send 0;
    read_response fd
  in
  let fds =
    Array.init conns (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        fd)
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun fd -> try Unix.close fd with _ -> ()) fds)
  @@ fun () ->
  (* Warm the plan cache and the connection path. *)
  for i = 0 to min 32 (conns - 1) do
    roundtrip fds.(i)
  done;
  let lat = Array.make samples 0.0 in
  for i = 0 to samples - 1 do
    let fd = fds.(i mod conns) in
    let t0 = Unix.gettimeofday () in
    roundtrip fd;
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e9
  done;
  Array.sort compare lat;
  let pct p = lat.(min (samples - 1) (int_of_float (float_of_int samples *. p))) in
  (pct 0.50, pct 0.99)

(* Minimal reader for the committed BENCH_kernels.json: one
   {"kernel": ..., "ns_per_run": ...} object per line, as written below.
   Skip-tagged entries ("ns_per_run": null) map to [None] so the check
   can tell "baselined as skipped" from "absent".  Returns an empty
   table on malformed input rather than failing the bench run. *)
let baseline_of_file path =
  let tbl : (string, float option) Hashtbl.t = Hashtbl.create 16 in
  (try
     let ic = open_in path in
     let len = in_channel_length ic in
     let s = really_input_string ic len in
     close_in ic;
     let find_sub line marker =
       let n = String.length line and ml = String.length marker in
       let rec go i =
         if i + ml > n then None
         else if String.sub line i ml = marker then Some (i + ml)
         else go (i + 1)
       in
       go 0
     in
     String.split_on_char '\n' s
     |> List.iter (fun line ->
            match find_sub line "\"kernel\": \"" with
            | None -> ()
            | Some i -> (
                match String.index_from_opt line i '"' with
                | None -> ()
                | Some j -> (
                    let name = String.sub line i (j - i) in
                    match find_sub line "\"ns_per_run\": " with
                    | None -> ()
                    | Some k ->
                        if
                          String.length line >= k + 4
                          && String.sub line k 4 = "null"
                        then Hashtbl.replace tbl name None
                        else begin
                          let buf = Buffer.create 24 in
                          (try
                             String.iter
                               (function
                                 | ('0' .. '9' | '.' | '-' | '+' | 'e' | 'E')
                                   as c ->
                                     Buffer.add_char buf c
                                 | _ -> raise Exit)
                               (String.sub line k (String.length line - k))
                           with Exit -> ());
                          match float_of_string_opt (Buffer.contents buf) with
                          | Some v -> Hashtbl.replace tbl name (Some v)
                          | None -> ()
                        end)))
   with Sys_error _ -> ());
  tbl

(* Compare fresh results against the committed baseline; more than
   [tolerance] percent slower (default 25) on any kernel fails the run.
   New kernels (no baseline entry) are reported but do not fail, so the
   guard stays usable while kernels are added.  The reverse is a hard
   failure: a baselined kernel that the run never measured — deleted,
   renamed, or crashed out of the thunk list — would otherwise rot the
   baseline silently.  Skip-tagged entries pass on both sides: a null
   baseline gates nothing, and a kernel skipped this run (oversubscribed
   workers) is exempt from the missing-kernel check. *)
let check_regressions ?(tolerance = 25.0) ~path ~skipped results =
  let baseline = baseline_of_file path in
  if Hashtbl.length baseline = 0 then begin
    Printf.printf "check: no baseline entries in %s; skipping\n%!" path;
    true
  end
  else begin
    let ok = ref true in
    List.iter
      (fun (name, t) ->
        match Hashtbl.find_opt baseline name with
        | None -> Printf.printf "check: %s has no baseline entry\n%!" name
        | Some (Some b) when b > 0.0 && not (Float.is_nan t) ->
            if t > (1.0 +. (tolerance /. 100.0)) *. b then begin
              ok := false;
              Printf.printf "check: REGRESSION %s: %.2f -> %.2f ns (%+.0f%%)\n%!"
                name b t (100.0 *. ((t /. b) -. 1.0))
            end
        | Some _ -> ())
      results;
    Hashtbl.iter
      (fun name baseline_ns ->
        let measured = List.mem_assoc name results in
        let skipped_now =
          List.exists (fun s -> "kernels/" ^ s = name) skipped
        in
        (* Under a BENCH_KERNELS filter deselected kernels are knowingly
           absent; only a selected kernel can go missing by accident. *)
        let deselected =
          match String.index_opt name '/' with
          | Some i ->
              not
                (kernel_selected
                   (String.sub name (i + 1) (String.length name - i - 1)))
          | None -> false
        in
        if
          baseline_ns <> None && (not measured) && (not skipped_now)
          && not deselected
        then begin
          ok := false;
          Printf.printf "check: MISSING %s: in baseline but not measured\n%!"
            name
        end)
      baseline;
    if !ok then
      Printf.printf "check: all kernels within %g%% of %s\n%!" tolerance path;
    !ok
  end

let concurrency_conns = 1000
let concurrency_samples = 2000

let run_kernels ?(json = false) ?check ?tolerance () =
  Printf.printf "\n===== Kernels (Bechamel, one Test.make per family) =====\n%!";
  let active, skipped = partition_kernels () in
  List.iter
    (fun (name, _) ->
      Printf.printf "kernels/%s: skipped (workers > %d cores)\n%!" name
        (Domain.recommended_domain_count ()))
    skipped;
  let cfg = Benchmark.cfg ~limit:150 ~quota:(Time.second 0.6) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raws =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"kernels" (kernel_tests active))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = ref [] in
  Hashtbl.iter
    (fun name bench ->
      let est = Analyze.one ols instance bench in
      let time_ns =
        match Analyze.OLS.estimates est with
        | Some (t :: _) -> t
        | _ -> nan
      in
      results := (name, time_ns) :: !results)
    raws;
  (* Latency-under-load, measured outside Bechamel: its per-sample
     latencies are a distribution, and ns_per_run deliberately carries
     the p50 so --check compares medians for this kernel. *)
  let conc =
    if not (kernel_selected "service_http_concurrency") then None
    else begin
      Printf.printf
        "measuring kernels/service_http_concurrency (%d conns)...\n%!"
        concurrency_conns;
      Some
        (run_concurrency ~conns:concurrency_conns
           ~samples:concurrency_samples ())
    end
  in
  (match conc with
  | Some (p50, _) ->
      results := ("kernels/service_http_concurrency", p50) :: !results
  | None -> ());
  let results = List.sort compare !results in
  let rows =
    List.map
      (fun (name, time_ns) ->
        let pretty =
          if Float.is_nan time_ns then "n/a"
          else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
          else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
          else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
          else Printf.sprintf "%.0f ns" time_ns
        in
        [ name; pretty ])
      results
  in
  print_string (Etransform.Report.table ~header:[ "kernel"; "time/run" ] rows);
  (match conc with
  | Some (p50, p99) ->
      Printf.printf
        "kernels/service_http_concurrency: %d keep-alive conns, p50 %.2f us, p99 %.2f us\n%!"
        concurrency_conns (p50 /. 1e3) (p99 /. 1e3)
  | None -> ());
  (* The baseline must be read (and compared) before --json overwrites it. *)
  let passed =
    match check with
    | None -> true
    | Some path ->
        check_regressions ?tolerance ~path
          ~skipped:(List.map fst skipped)
          results
  in
  if json then begin
    (* Machine-readable mirror of the table, so the perf trajectory can be
       tracked across commits.  Skipped kernels keep a line with a null
       time and a tag, so the baseline never records an oversubscribed
       slowdown but readers still see they exist. *)
    let path = "BENCH_kernels.json" in
    let extras name =
      let conc_extra =
        match (name, conc) with
        | "kernels/service_http_concurrency", Some (_, p99) ->
            Printf.sprintf ", \"p99_ns\": %.2f, \"connections\": %d" p99
              concurrency_conns
        | _ -> ""
      in
      let nodes_extra =
        match String.index_opt name '/' with
        | Some i -> (
            match
              Hashtbl.find_opt tree_nodes
                (String.sub name (i + 1) (String.length name - i - 1))
            with
            | Some n -> Printf.sprintf ", \"nodes\": %d" n
            | None -> "")
        | None -> ""
      in
      conc_extra ^ nodes_extra
    in
    let entries =
      List.map
        (fun (name, time_ns) ->
          ( name,
            (if Float.is_nan time_ns then "null"
             else Printf.sprintf "%.2f" time_ns)
            ^ extras name ))
        results
      @ List.map
          (fun (name, _) ->
            ("kernels/" ^ name, "null, \"skipped_oversubscribed\": true"))
          skipped
    in
    let entries = List.sort compare entries in
    let oc = open_out path in
    output_string oc "[\n";
    List.iteri
      (fun i (name, rest) ->
        Printf.fprintf oc "  {\"kernel\": %S, \"ns_per_run\": %s}%s\n" name rest
          (if i < List.length entries - 1 then "," else ""))
      entries;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end;
  passed

let () =
  let rec parse_args args (mode, json, check, tol) =
    match args with
    | [] -> (mode, json, check, tol)
    | "--json" :: rest -> parse_args rest (mode, true, check, tol)
    | "--check" :: path :: rest -> parse_args rest (mode, json, Some path, tol)
    | "--check" :: [] ->
        Printf.eprintf "--check needs a baseline path\n";
        exit 2
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p > 0.0 -> parse_args rest (mode, json, check, Some p)
        | _ ->
            Printf.eprintf "--tolerance needs a positive percentage\n";
            exit 2)
    | "--tolerance" :: [] ->
        Printf.eprintf "--tolerance needs a positive percentage\n";
        exit 2
    | m :: rest -> parse_args rest (Some m, json, check, tol)
  in
  let mode, json, check, tolerance =
    parse_args (List.tl (Array.to_list Sys.argv)) (None, false, None, None)
  in
  let mode = Option.value mode ~default:"all" in
  let passed = ref true in
  (match mode with
  | "e0" -> Harness.Studies.e0_datasets ()
  | "e1" -> ignore (Harness.Studies.e1_consolidation ())
  | "e2" -> ignore (Harness.Studies.e2_dr ())
  | "e3" -> ignore (Harness.Studies.e3_latency_penalty ())
  | "e4" -> ignore (Harness.Studies.e4_dr_server_cost ())
  | "e5" -> ignore (Harness.Studies.e5_space_wan_tradeoff ())
  | "e6" -> ignore (Harness.Studies.e6_placement_growth ())
  | "e7" -> ignore (Harness.Studies.e7_scenario_frontier ())
  | "kernels" -> passed := run_kernels ~json ?check ?tolerance ()
  | "smoke" -> run_smoke ()
  | "all" ->
      Harness.Studies.all ();
      passed := run_kernels ~json ?check ?tolerance ()
  | other ->
      Printf.eprintf "unknown experiment %S (want e0..e7, kernels, smoke, all)\n"
        other;
      exit 2);
  Printf.printf "\nDone.\n%!";
  if not !passed then exit 1
