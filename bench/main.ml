(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (experiments E0-E6, see DESIGN.md) and measures the solver
   kernels with Bechamel.

   Usage: main.exe [--json] [--check BASELINE.json] [--tolerance PCT]
                   [e0|e1|e2|e3|e4|e5|e6|kernels|smoke|all]   (default: all)

   [smoke] runs every kernel thunk exactly once (no timing) so the test
   suite can exercise the bench harness cheaply; [--check] compares the
   measured kernels against a committed baseline and fails the run on a
   >25% regression. *)

open Bechamel

(* One entry per experiment family, over the kernels each experiment
   leans on.  Returned as named thunks so the same list backs both the
   Bechamel timing run and the single-shot smoke mode. *)
let kernel_thunks () =
  let small_lp () =
    let m = Lp.Model.create ~name:"bench_lp" () in
    let xs =
      Array.init 12 (fun i -> Lp.Model.add_var m ~hi:10.0 (Printf.sprintf "x%d" i))
    in
    for r = 0 to 7 do
      let e =
        Lp.Model.Linexpr.sum
          (List.init 12 (fun j ->
               Lp.Model.Linexpr.term
                 (float_of_int (((r * 12) + j) mod 7) +. 1.0)
                 xs.(j)))
      in
      Lp.Model.add_le m (Printf.sprintf "r%d" r) e (30.0 +. float_of_int r)
    done;
    Lp.Model.set_objective m ~minimize:false
      (Lp.Model.Linexpr.sum
         (List.init 12 (fun j ->
              Lp.Model.Linexpr.term (float_of_int ((j mod 5) + 1)) xs.(j))));
    m
  in
  let fixture =
    Datasets.Synth.generate
      { Datasets.Synth.default with
        Datasets.Synth.n_groups = 24; n_targets = 5; total_servers = 200 }
  in
  let built = Etransform.Lp_builder.build fixture in
  let greedy_plan = Etransform.Greedy.plan fixture in
  (* A generalized-assignment model with tight bin capacities: unlike the
     consolidation fixture (which solves at the root) its relaxation is
     fractional, so the branch-and-bound variants exercise a real tree. *)
  let gap_model =
    let nitems = 14 and nbins = 4 in
    let rng = Datasets.Prng.create 7 in
    let m = Lp.Model.create ~name:"bench_gap" () in
    let x =
      Array.init nitems (fun i ->
          Array.init nbins (fun b ->
              Lp.Model.add_var m ~binary:true (Printf.sprintf "x_%d_%d" i b)))
    in
    let weight =
      Array.init nitems (fun _ -> 2.0 +. Datasets.Prng.range rng 0.0 8.0)
    in
    let cost =
      Array.init nitems (fun _ ->
          Array.init nbins (fun _ -> 1.0 +. Datasets.Prng.range rng 0.0 9.0))
    in
    for i = 0 to nitems - 1 do
      Lp.Model.add_eq m (Printf.sprintf "assign_%d" i)
        (Lp.Model.Linexpr.sum
           (List.init nbins (fun b -> Lp.Model.Linexpr.var x.(i).(b))))
        1.0
    done;
    let total_w = Array.fold_left ( +. ) 0.0 weight in
    let cap = 1.12 *. total_w /. float_of_int nbins in
    for b = 0 to nbins - 1 do
      Lp.Model.add_le m (Printf.sprintf "cap_%d" b)
        (Lp.Model.Linexpr.sum
           (List.init nitems (fun i ->
                Lp.Model.Linexpr.term weight.(i) x.(i).(b))))
        cap
    done;
    Lp.Model.set_objective m ~minimize:true
      (Lp.Model.Linexpr.sum
         (List.concat
            (List.init nitems (fun i ->
                 List.init nbins (fun b ->
                     Lp.Model.Linexpr.term cost.(i).(b) x.(i).(b))))));
    m
  in
  (* Planning-service throughput: one batch of eight distinct line-estate
     scenarios (the E3 sweep's shape) through the worker pool.  The w1/w2/w4
     kernels build a fresh pool per run, so every solve is a cache miss and
     the scaling is pure parallelism (including domain spawn/join costs) —
     meaningful only on multi-core hosts: a single-core container
     serializes the domains and oversubscription can only add overhead.
     The warm kernel reuses a pre-warmed pool, so every job is a cache
     hit. *)
  let service_jobs =
    List.concat_map
      (fun p ->
        List.map
          (fun frac ->
            Service.Job.v
              ~milp:
                { Service.Job.no_overrides with
                  Service.Job.node_limit = Some 2;
                  time_limit = Some 20.0 }
              (Harness.Line_jobs.estate ~penalty:p
                 { Harness.Line_estate.default with
                   Harness.Line_estate.n_groups = 24;
                   frac_at_0 = frac }))
          [ 0.25; 0.75 ])
      [ 0.0; 40.0; 80.0; 120.0 ]
  in
  let service_batch workers () =
    Service.Pool.with_pool ~workers ~cache_capacity:64 (fun pool ->
        ignore (Service.Pool.run_batch pool service_jobs))
  in
  (* Lazy and worker-less: forcing it earlier would leave idle domains
     alive through every other kernel's measurement window, and on OCaml 5
     each extra domain taxes the stop-the-world minor collections that the
     allocation-heavy solver kernels trigger constantly. *)
  let warm_pool =
    lazy
      (let pool = Service.Pool.create ~workers:0 ~cache_capacity:64 () in
       ignore (Service.Pool.run_batch pool service_jobs);
       pool)
  in
  (* Whole-stack HTTP latency: a fresh loopback connection, one POST
     /solve, response read to EOF.  The cold server runs without a plan
     cache (every request pays a full solve); the warm server answers
     from a pre-populated cache, so the kernel isolates the HTTP + pool
     overhead.  Worker-less pools keep extra domains out of the other
     kernels' measurement windows (connection threads solve inline), and
     the lazy servers only start when their kernel first runs. *)
  let http_job_line =
    {|{"id":"bench","estate":{"kind":"line","n_groups":12},"milp":{"nodes":2,"time":20}}|}
  in
  let start_server ~cache_capacity () =
    let pool = Service.Pool.create ~workers:0 ~cache_capacity () in
    let server =
      Server.Daemon.create ~port:0 ~resolve:Harness.Line_jobs.resolve ~pool ()
    in
    ignore (Thread.create Server.Daemon.run server);
    Server.Daemon.port server
  in
  let http_roundtrip port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf
            "POST /solve HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s"
            (String.length http_job_line) http_job_line
        in
        let b = Bytes.of_string req in
        let n = Bytes.length b in
        let rec send off =
          if off < n then send (off + Unix.write fd b off (n - off))
        in
        send 0;
        let buf = Bytes.create 4096 in
        let rec drain () = if Unix.read fd buf 0 4096 > 0 then drain () in
        drain ())
  in
  let cold_server = lazy (start_server ~cache_capacity:0 ()) in
  let warm_server =
    lazy
      (let port = start_server ~cache_capacity:64 () in
       http_roundtrip port;
       port)
  in
  let milp_opts ?(warm_start = true) ?(workers = 1) () =
    { Lp.Milp.default_options with
      Lp.Milp.node_limit = 50; warm_start; workers }
  in
  let gap_opts ?warm_start ?workers () =
    { (milp_opts ?warm_start ?workers ()) with
      Lp.Milp.node_limit = 5000; dive_first = false }
  in
  [
    ( "e1_simplex_solve",
      fun () -> ignore (Lp.Simplex.solve (Lp.Simplex.of_model (small_lp ()))) );
    ( "e1_milp_assignment",
      fun () ->
        ignore
          (Lp.Milp.solve ~options:(milp_opts ())
             built.Etransform.Lp_builder.model) );
    ( "e1_milp_assignment_cold",
      fun () ->
        ignore
          (Lp.Milp.solve
             ~options:(milp_opts ~warm_start:false ())
             built.Etransform.Lp_builder.model) );
    ( "e1_milp_assignment_par4",
      fun () ->
        ignore
          (Lp.Milp.solve ~options:(milp_opts ~workers:4 ())
             built.Etransform.Lp_builder.model) );
    ( "e1_milp_gap_tree_cold",
      fun () ->
        ignore (Lp.Milp.solve ~options:(gap_opts ~warm_start:false ()) gap_model)
    );
    ( "e1_milp_gap_tree_warm",
      fun () -> ignore (Lp.Milp.solve ~options:(gap_opts ()) gap_model) );
    ( "e1_milp_gap_tree_par4",
      fun () ->
        ignore (Lp.Milp.solve ~options:(gap_opts ~workers:4 ()) gap_model) );
    ("e1_greedy_baseline", fun () -> ignore (Etransform.Greedy.plan fixture));
    ( "e2_backup_pools",
      fun () ->
        ignore
          (Etransform.Placement.backup_servers fixture
             (Etransform.Greedy.plan_dr fixture)) );
    ( "e3_exact_evaluation",
      fun () -> ignore (Etransform.Evaluate.plan fixture greedy_plan) );
    ( "e5_lp_file_roundtrip",
      fun () ->
        ignore
          (Lp.Lp_parse.model_of_string
             (Lp.Lp_format.model_to_string built.Etransform.Lp_builder.model))
    );
    ( "e6_dataset_synthesis",
      fun () -> ignore (Datasets.Synth.generate Datasets.Synth.default) );
    ("service_batch_line_w1", service_batch 1);
    ("service_batch_line_w2", service_batch 2);
    ("service_batch_line_w4", service_batch 4);
    ( "service_batch_line_warm",
      fun () ->
        ignore (Service.Pool.run_batch (Lazy.force warm_pool) service_jobs) );
    ( "service_http_roundtrip_cold",
      fun () -> http_roundtrip (Lazy.force cold_server) );
    ( "service_http_roundtrip_warm",
      fun () -> http_roundtrip (Lazy.force warm_server) );
  ]

let kernel_tests () =
  List.map
    (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
    (kernel_thunks ())

(* Each kernel once, untimed: correctness smoke for `dune runtest`. *)
let run_smoke () =
  List.iter
    (fun (name, thunk) ->
      thunk ();
      Printf.printf "smoke %-28s ok\n%!" name)
    (kernel_thunks ())

(* Minimal reader for the committed BENCH_kernels.json: one
   {"kernel": ..., "ns_per_run": ...} object per line, as written below.
   Returns an empty table on malformed input rather than failing the
   bench run. *)
let baseline_of_file path =
  let tbl = Hashtbl.create 16 in
  (try
     let ic = open_in path in
     let len = in_channel_length ic in
     let s = really_input_string ic len in
     close_in ic;
     let find_sub line marker =
       let n = String.length line and ml = String.length marker in
       let rec go i =
         if i + ml > n then None
         else if String.sub line i ml = marker then Some (i + ml)
         else go (i + 1)
       in
       go 0
     in
     String.split_on_char '\n' s
     |> List.iter (fun line ->
            match find_sub line "\"kernel\": \"" with
            | None -> ()
            | Some i -> (
                match String.index_from_opt line i '"' with
                | None -> ()
                | Some j -> (
                    let name = String.sub line i (j - i) in
                    match find_sub line "\"ns_per_run\": " with
                    | None -> ()
                    | Some k ->
                        let buf = Buffer.create 24 in
                        (try
                           String.iter
                             (function
                               | ('0' .. '9' | '.' | '-' | '+' | 'e' | 'E') as c
                                 ->
                                   Buffer.add_char buf c
                               | _ -> raise Exit)
                             (String.sub line k (String.length line - k))
                         with Exit -> ());
                        (match float_of_string_opt (Buffer.contents buf) with
                        | Some v -> Hashtbl.replace tbl name v
                        | None -> ()))))
   with Sys_error _ -> ());
  tbl

(* Compare fresh results against the committed baseline; more than
   [tolerance] percent slower (default 25) on any kernel fails the run.
   Missing or new kernels are reported but do not fail, so the guard
   stays usable while kernels are added. *)
let check_regressions ?(tolerance = 25.0) ~path results =
  let baseline = baseline_of_file path in
  if Hashtbl.length baseline = 0 then begin
    Printf.printf "check: no baseline entries in %s; skipping\n%!" path;
    true
  end
  else begin
    let ok = ref true in
    List.iter
      (fun (name, t) ->
        match Hashtbl.find_opt baseline name with
        | None -> Printf.printf "check: %s has no baseline entry\n%!" name
        | Some b when b > 0.0 && not (Float.is_nan t) ->
            if t > (1.0 +. (tolerance /. 100.0)) *. b then begin
              ok := false;
              Printf.printf "check: REGRESSION %s: %.2f -> %.2f ns (%+.0f%%)\n%!"
                name b t (100.0 *. ((t /. b) -. 1.0))
            end
        | Some _ -> ())
      results;
    if !ok then
      Printf.printf "check: all kernels within %g%% of %s\n%!" tolerance path;
    !ok
  end

let run_kernels ?(json = false) ?check ?tolerance () =
  Printf.printf "\n===== Kernels (Bechamel, one Test.make per family) =====\n%!";
  let cfg = Benchmark.cfg ~limit:150 ~quota:(Time.second 0.6) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raws =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"kernels" (kernel_tests ()))
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = ref [] in
  Hashtbl.iter
    (fun name bench ->
      let est = Analyze.one ols instance bench in
      let time_ns =
        match Analyze.OLS.estimates est with
        | Some (t :: _) -> t
        | _ -> nan
      in
      results := (name, time_ns) :: !results)
    raws;
  let results = List.sort compare !results in
  let rows =
    List.map
      (fun (name, time_ns) ->
        let pretty =
          if Float.is_nan time_ns then "n/a"
          else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
          else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
          else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
          else Printf.sprintf "%.0f ns" time_ns
        in
        [ name; pretty ])
      results
  in
  print_string (Etransform.Report.table ~header:[ "kernel"; "time/run" ] rows);
  (* The baseline must be read (and compared) before --json overwrites it. *)
  let passed =
    match check with
    | None -> true
    | Some path -> check_regressions ?tolerance ~path results
  in
  if json then begin
    (* Machine-readable mirror of the table, so the perf trajectory can be
       tracked across commits. *)
    let path = "BENCH_kernels.json" in
    let oc = open_out path in
    output_string oc "[\n";
    List.iteri
      (fun i (name, time_ns) ->
        Printf.fprintf oc "  {\"kernel\": %S, \"ns_per_run\": %s}%s\n" name
          (if Float.is_nan time_ns then "null"
           else Printf.sprintf "%.2f" time_ns)
          (if i < List.length results - 1 then "," else ""))
      results;
    output_string oc "]\n";
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end;
  passed

let () =
  let rec parse_args args (mode, json, check, tol) =
    match args with
    | [] -> (mode, json, check, tol)
    | "--json" :: rest -> parse_args rest (mode, true, check, tol)
    | "--check" :: path :: rest -> parse_args rest (mode, json, Some path, tol)
    | "--check" :: [] ->
        Printf.eprintf "--check needs a baseline path\n";
        exit 2
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p > 0.0 -> parse_args rest (mode, json, check, Some p)
        | _ ->
            Printf.eprintf "--tolerance needs a positive percentage\n";
            exit 2)
    | "--tolerance" :: [] ->
        Printf.eprintf "--tolerance needs a positive percentage\n";
        exit 2
    | m :: rest -> parse_args rest (Some m, json, check, tol)
  in
  let mode, json, check, tolerance =
    parse_args (List.tl (Array.to_list Sys.argv)) (None, false, None, None)
  in
  let mode = Option.value mode ~default:"all" in
  let passed = ref true in
  (match mode with
  | "e0" -> Harness.Studies.e0_datasets ()
  | "e1" -> ignore (Harness.Studies.e1_consolidation ())
  | "e2" -> ignore (Harness.Studies.e2_dr ())
  | "e3" -> ignore (Harness.Studies.e3_latency_penalty ())
  | "e4" -> ignore (Harness.Studies.e4_dr_server_cost ())
  | "e5" -> ignore (Harness.Studies.e5_space_wan_tradeoff ())
  | "e6" -> ignore (Harness.Studies.e6_placement_growth ())
  | "kernels" -> passed := run_kernels ~json ?check ?tolerance ()
  | "smoke" -> run_smoke ()
  | "all" ->
      Harness.Studies.all ();
      passed := run_kernels ~json ?check ?tolerance ()
  | other ->
      Printf.eprintf "unknown experiment %S (want e0..e6, kernels, smoke, all)\n"
        other;
      exit 2);
  Printf.printf "\nDone.\n%!";
  if not !passed then exit 1
