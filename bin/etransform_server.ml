(* The eTransform planning server: a long-lived HTTP/1.1 front-end over
   the concurrent worker pool.

   Try:
     etransform_server --port 8080 --workers 4
     curl -s localhost:8080/healthz
     curl -s -XPOST localhost:8080/solve -d \
       '{"id":"j1","estate":{"kind":"dataset","name":"enterprise1"}}'
     curl -sN -XPOST localhost:8080/batch --data-binary @examples/batch_jobs.ndjson
     curl -s localhost:8080/metrics

   Tiered plan cache: --cache-dir adds a crash-safe on-disk tier that
   survives restarts; --peers joins a cluster where nodes answer each
   other's GET /cache/<fingerprint> probes and gossip Bloom digests of
   what they hold, so any plan solved anywhere in the fleet is a warm
   hit everywhere.

   SIGINT/SIGTERM drain gracefully: the listener closes immediately,
   in-flight jobs get up to --drain-timeout seconds to finish, then the
   process exits. *)

open Cmdliner

let serve port addr workers queue cache_size trace_file drain_timeout
    max_conns idle_timeout shards cache_dir peers advertise gossip_interval
    fetch_timeout =
  (* A client hanging up mid-stream must end that connection quietly
     (EPIPE on its socket), not kill the whole server with SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let workers = Service.Pool.clamp_workers ~what:"etransform_server" workers in
  let trace_out, close_trace =
    match trace_file with
    | None -> (Service.Trace.null, fun () -> ())
    | Some "-" -> (Service.Trace.to_channel stderr, fun () -> ())
    | Some path ->
        let oc = open_out path in
        (Service.Trace.to_channel oc, fun () -> close_out oc)
  in
  let metrics = Service.Metrics.create () in
  (* Tee the pool's trace into the metrics registry: every job span both
     reaches the JSONL sink and updates the counters/histograms that
     /metrics exposes. *)
  let trace =
    Service.Trace.tee trace_out
      (Service.Trace.observer (Service.Metrics.observe_trace metrics))
  in
  let peer_list =
    List.filter
      (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' peers))
  in
  let node =
    Cluster.Node.create ?cache_dir ~peers:peer_list ~gossip_interval
      ~fetch_timeout ()
  in
  Service.Pool.with_pool ~workers ~queue_capacity:queue
    ~cache_capacity:cache_size ~tiers:(Cluster.Node.tiers node) ~trace
    (fun pool ->
      let server =
        Server.Daemon.create ~addr ~port ~drain_timeout ~max_conns
          ~idle_timeout ~shards ~resolve:Harness.Line_jobs.resolve ~metrics
          ~node ~pool ()
      in
      let self =
        match advertise with
        | Some a -> a
        | None -> Printf.sprintf "%s:%d" addr (Server.Daemon.port server)
      in
      Cluster.Node.set_self node self;
      Cluster.Node.start node;
      let stop _ = Server.Daemon.request_stop server in
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Printf.eprintf
        "etransform_server: listening on %s:%d (%d workers, queue %d%s%s)\n%!"
        addr
        (Server.Daemon.port server)
        workers queue
        (match cache_dir with
        | Some d -> Printf.sprintf ", disk cache %s" d
        | None -> "")
        (match peer_list with
        | [] -> ""
        | ps -> Printf.sprintf ", %d peers" (List.length ps));
      Server.Daemon.run server;
      Cluster.Node.close node;
      Printf.eprintf "etransform_server: drained, shutting down\n%!");
  close_trace ()

let port =
  Arg.(value & opt int 8080
       & info [ "port" ] ~doc:"Listen port (0 picks an ephemeral port).")

let addr =
  Arg.(value & opt string "127.0.0.1"
       & info [ "addr" ] ~doc:"Listen address.")

let workers =
  Arg.(value & opt int 2
       & info [ "workers" ] ~doc:"Worker domains (0 = solve inline).")

let queue =
  Arg.(value & opt int 64
       & info [ "queue" ]
           ~doc:"Bounded job-queue capacity; a full queue answers 503.")

let cache_size =
  Arg.(value & opt int 256
       & info [ "cache" ] ~doc:"Plan-cache capacity (0 disables).")

let trace_file =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write JSONL per-job trace spans here (- for stderr).")

let drain_timeout =
  Arg.(value & opt float 10.0
       & info [ "drain-timeout" ]
           ~doc:"Seconds to let in-flight requests finish on shutdown.")

let max_conns =
  Arg.(value & opt int 4096
       & info [ "max-conns" ]
           ~doc:"Live-connection cap; connections beyond it answer 503.")

let idle_timeout =
  Arg.(value & opt float 30.0
       & info [ "idle-timeout" ]
           ~doc:"Seconds before an idle/stalled connection is evicted \
                 (408 if no response started; 0 disables).")

let shards =
  Arg.(value & opt int 1
       & info [ "reactor-shards" ]
           ~doc:"Reactor readiness loops; accepted connections are \
                 spread round-robin across them.")

let cache_dir =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist solved plans to a crash-safe store in $(docv); \
                 on restart previously solved fingerprints answer from \
                 disk instead of re-solving.")

let peers =
  Arg.(value & opt string ""
       & info [ "peers" ] ~docv:"HOST:PORT,..."
           ~doc:"Comma-separated sibling servers forming a \
                 consistent-hash cache ring; plans solved by a peer are \
                 fetched instead of re-solved.")

let advertise =
  Arg.(value & opt (some string) None
       & info [ "advertise" ] ~docv:"HOST:PORT"
           ~doc:"Own address as peers see it (default --addr:--port); \
                 excluded from probes and announced in gossip.")

let gossip_interval =
  Arg.(value & opt float 5.0
       & info [ "gossip-interval" ]
           ~doc:"Seconds between Bloom-digest gossip rounds with peers.")

let fetch_timeout =
  Arg.(value & opt float 2.0
       & info [ "fetch-timeout" ]
           ~doc:"Seconds before a peer cache probe gives up (a slow peer \
                 degrades to a local solve, never a stall).")

let () =
  let cmd =
    Cmd.v
      (Cmd.info "etransform_server" ~version:"1.0.0"
         ~doc:"serve planning jobs over HTTP (POST /solve, POST /batch)")
      Term.(const serve $ port $ addr $ workers $ queue $ cache_size
            $ trace_file $ drain_timeout $ max_conns $ idle_timeout $ shards
            $ cache_dir $ peers $ advertise $ gossip_interval $ fetch_timeout)
  in
  exit (Cmd.eval cmd)
