(* Seeded fuzz driver over the oracle suite (lib/fuzz).

   Output is a pure function of the seed and the selection flags: one
   line per property with its case count and instance-stream digest, so
   two runs with the same --seed print byte-identical reports and any
   divergence is itself a reproducibility bug.  Exit status 1 when any
   property fails; the failure report names the seed, case index and
   shrunk counterexample needed to replay it. *)

let usage () =
  prerr_endline
    "usage: etransform_fuzz [--seed N] [--smoke] [--count N] [--only NAME] \
     [--list]";
  prerr_endline "";
  prerr_endline
    "  --seed N    PRNG seed (default: CHECK_SEED env var, else 0xe7ca5e)";
  prerr_endline "  --smoke     reduced per-property case counts (~5s total)";
  prerr_endline "  --count N   override the case count of every property";
  prerr_endline "  --only NAME run one property (repeatable)";
  prerr_endline "  --list      print property names and exit";
  exit 2

let () =
  let seed = ref None
  and smoke = ref false
  and count = ref None
  and only = ref []
  and list = ref false in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n ->
            seed := Some n;
            parse rest
        | None -> usage ())
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--count" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 ->
            count := Some n;
            parse rest
        | _ -> usage ())
    | "--only" :: v :: rest ->
        only := v :: !only;
        parse rest
    | "--list" :: rest ->
        list := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list then begin
    List.iter (fun p -> print_endline (Check.prop_name p)) Fuzz.Suite.props;
    exit 0
  end;
  let props =
    match !only with
    | [] -> Fuzz.Suite.props
    | names ->
        List.map
          (fun n ->
            match Fuzz.Suite.find n with
            | Some p -> p
            | None ->
                Printf.eprintf "unknown property %S (try --list)\n" n;
                exit 2)
          (List.rev names)
  in
  let ok =
    Check.run ?seed:!seed ~smoke:!smoke ?count:!count props
  in
  exit (if ok then 0 else 1)
