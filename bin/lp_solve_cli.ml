(* Standalone optimization engine: solve a CPLEX-format .lp file and write
   a solution file — the role CPLEX plays in the paper's Fig. 5.

   Usage: lp_solve_cli FILE.lp [-o FILE.sol] [--relax] [--nodes N]
          [--time S] [--mps FILE.mps]

   The model path - reads the .lp from stdin, so trace replays and shell
   pipelines (e.g. the planning service's artifacts) need no temp files. *)

open Cmdliner

let read_stdin () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let solve_file path output relax nodes time mps =
  let model =
    try
      if path = "-" then Lp.Lp_parse.model_of_string ~name:"stdin" (read_stdin ())
      else Lp.Lp_parse.read_model_file path
    with
    | Lp.Lp_parse.Parse_error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
    | Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
  in
  Printf.printf "%s\n" (Fmt.str "%a" Lp.Model.pp_stats model);
  (match Lp.Presolve.diagnose model with
  | [] -> ()
  | issues ->
      List.iter (Printf.eprintf "warning: %s\n") issues);
  (match mps with
  | None -> ()
  | Some mps_path ->
      Lp.Mps_format.write_model_file mps_path model;
      Printf.printf "wrote %s\n" mps_path);
  let status, obj, x =
    if relax then begin
      let r = Lp.Milp.relax model in
      (r.Lp.Simplex.status, r.Lp.Simplex.obj_value, r.Lp.Simplex.x)
    end
    else begin
      let options =
        { Lp.Milp.default_options with
          Lp.Milp.node_limit = nodes; time_limit = time }
      in
      let r = Lp.Milp.solve ~options model in
      (r.Lp.Milp.status, r.Lp.Milp.obj, r.Lp.Milp.x)
    end
  in
  Printf.printf "status: %s\n" (Lp.Status.to_string status);
  if Array.length x > 0 then Printf.printf "objective: %.10g\n" obj;
  let text = Lp.Lp_format.solution_to_string model ~status ~obj x in
  match output with
  | None -> print_string text
  | Some out ->
      let oc = open_out out in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" out;
      if not (Lp.Status.is_ok status) then exit 3

let path_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE.lp" ~doc:"Model file; - reads stdin.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.sol"
         ~doc:"Write the solution file here instead of stdout.")

let relax_arg =
  Arg.(value & flag & info [ "relax" ] ~doc:"Solve the LP relaxation only.")

let nodes_arg =
  Arg.(value & opt int 5000 & info [ "nodes" ] ~doc:"Branch-and-bound node budget.")

let time_arg =
  Arg.(value & opt float infinity & info [ "time" ] ~doc:"CPU-seconds budget.")

let mps_arg =
  Arg.(value & opt (some string) None & info [ "mps" ] ~docv:"FILE.mps"
         ~doc:"Also export the model in MPS format.")

let cmd =
  let doc = "solve a CPLEX-format LP/MILP file" in
  Cmd.v
    (Cmd.info "lp_solve" ~doc)
    Term.(const solve_file $ path_arg $ output_arg $ relax_arg $ nodes_arg
          $ time_arg $ mps_arg)

let () = exit (Cmd.eval cmd)
