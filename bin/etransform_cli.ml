(* The eTransform command line: plan consolidations (with or without DR)
   for the bundled case-study datasets or synthetic estates, export the LP
   artifacts of the Fig. 5 pipeline, and run the paper's experiments.

   Try:
     etransform_cli plan --dataset enterprise1
     etransform_cli plan --dataset florida --dr --workdir /tmp/florida
     etransform_cli plan --dataset synthetic --groups 60 --targets 8 --seed 7
     etransform_cli compare --dataset enterprise1
     etransform_cli experiment e3
     etransform_cli datasets *)

open Cmdliner
open Etransform

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let load_dataset name scale seed groups targets =
  match name with
  | "enterprise1" -> Datasets.Enterprise1.asis ~scale ()
  | "florida" -> Datasets.Florida.asis ~scale ()
  | "federal" -> Datasets.Federal.asis ~scale ()
  | "synthetic" ->
      Datasets.Synth.generate
        {
          Datasets.Synth.default with
          Datasets.Synth.seed;
          n_groups = groups;
          n_targets = targets;
          total_servers = groups * 8;
        }
  | other ->
      Printf.eprintf
        "unknown dataset %S (want enterprise1|florida|federal|synthetic)\n"
        other;
      exit 2

let builder_options eos fixed omega =
  {
    Lp_builder.default_options with
    Lp_builder.economies_of_scale = eos;
    fixed_charges = fixed;
    omega;
  }

(* plan: produce and print a to-be state. *)
let plan_cmd_run verbose dataset scale seed groups targets dr eos fixed omega
    workdir =
  setup_logs verbose;
  let asis = load_dataset dataset scale seed groups targets in
  Fmt.pr "%a@.@." Asis.pp_summary asis;
  let builder = builder_options eos fixed omega in
  let artifacts = Pipeline.run ~builder ~dr ?workdir asis in
  let o = artifacts.Pipeline.outcome in
  Fmt.pr "as-is: %a@." Evaluate.pp_summary (Evaluate.asis_state asis);
  Fmt.pr "to-be: %a@.@." Evaluate.pp_summary o.Solver.summary;
  let counts = Placement.servers_per_dc asis o.Solver.placement in
  let backups = o.Solver.summary.Evaluate.backups in
  Array.iteri
    (fun j n ->
      if n > 0 || backups.(j) > 0.0 then
        Fmt.pr "  %-30s %5d servers%s@."
          asis.Asis.targets.(j).Data_center.name n
          (if backups.(j) > 0.0 then
             Printf.sprintf " + %.0f backups" backups.(j)
           else ""))
    counts;
  (match artifacts.Pipeline.lp_file with
  | Some f -> Fmt.pr "@.LP file:       %s@." f
  | None -> ());
  (match artifacts.Pipeline.solution_file with
  | Some f -> Fmt.pr "solution file: %s@." f
  | None -> ());
  Fmt.pr "solver: %s, gap %.1f%%@."
    (Lp.Status.to_string o.Solver.milp_status)
    (100.0 *. o.Solver.milp_gap)

(* compare: the paper's algorithm comparison on one dataset. *)
let compare_cmd_run verbose dataset scale seed groups targets dr =
  setup_logs verbose;
  let asis = load_dataset dataset scale seed groups targets in
  Fmt.pr "%a@.@." Asis.pp_summary asis;
  let entries =
    if dr then
      [
        ("AS-IS+DR", Evaluate.asis_with_basic_dr asis);
        ("MANUAL", Evaluate.plan asis (Manual.plan_dr asis));
        ("GREEDY", Evaluate.plan asis (Greedy.plan_dr asis));
        ( "ETRANSFORM",
          (Dr_planner.plan
             ~options:
               { Dr_planner.default_options with
                 Dr_planner.economies_of_scale = true }
             asis)
            .Solver.summary );
      ]
    else
      [
        ("AS-IS", Evaluate.asis_state asis);
        ("MANUAL", Evaluate.plan asis (Manual.plan asis));
        ("GREEDY", Evaluate.plan asis (Greedy.plan asis));
        ( "ETRANSFORM",
          (Solver.consolidate ~builder:(builder_options true true None) asis)
            .Solver.summary );
      ]
  in
  let asis_total = Evaluate.total (snd (List.hd entries)).Evaluate.cost in
  print_string
    (Report.table ~header:Report.comparison_header
       (Report.comparison_rows ~asis_total entries))

(* experiment: the benchmark harness from the CLI. *)
let experiment_cmd_run verbose which =
  setup_logs verbose;
  match which with
  | "e0" -> Harness.Studies.e0_datasets ()
  | "e1" -> ignore (Harness.Studies.e1_consolidation ())
  | "e2" -> ignore (Harness.Studies.e2_dr ())
  | "e3" -> ignore (Harness.Studies.e3_latency_penalty ())
  | "e4" -> ignore (Harness.Studies.e4_dr_server_cost ())
  | "e5" -> ignore (Harness.Studies.e5_space_wan_tradeoff ())
  | "e6" -> ignore (Harness.Studies.e6_placement_growth ())
  | "e7" -> ignore (Harness.Studies.e7_scenario_frontier ())
  | "all" -> Harness.Studies.all ()
  | other ->
      Printf.eprintf "unknown experiment %S\n" other;
      exit 2

let datasets_cmd_run verbose =
  setup_logs verbose;
  Harness.Studies.e0_datasets ()

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let broken_pipe = function
  | Sys_error msg -> contains ~affix:"roken pipe" msg
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | _ -> false

let trace_sink trace_file =
  match trace_file with
  | None -> (Service.Trace.null, fun () -> ())
  | Some path ->
      let oc = open_out path in
      (Service.Trace.to_channel oc, fun () -> close_out oc)

(* batch: the planning service's NDJSON front-end.  One job spec per input
   line, one result line per job on stdout, in input order. *)
let batch_cmd_run verbose input workers queue cache_size trace_file =
  setup_logs verbose;
  let workers = Service.Pool.clamp_workers ~what:"etransform batch" workers in
  (* `etransform batch ... | head` must end the stream cleanly when the
     consumer hangs up: ignore SIGPIPE so the write fails with EPIPE
     (surfaced as Sys_error "Broken pipe"), which Batch.run re-raises
     after winding the stream down — treated below as a normal end. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let trace, close_trace = trace_sink trace_file in
  let ic, close_in_ =
    if input = "-" then (stdin, fun () -> ())
    else
      let ic = open_in input in
      (ic, fun () -> close_in ic)
  in
  let _ok, _degraded, failed =
    Fun.protect
      ~finally:(fun () ->
        close_in_ ();
        close_trace ())
      (fun () ->
        try
          Service.Pool.with_pool ~workers ~queue_capacity:queue
            ~cache_capacity:cache_size ~trace (fun pool ->
              Service.Batch.run ~resolve:Harness.Line_jobs.resolve pool ic
                stdout)
        with exn when broken_pipe exn ->
          (* Downstream closed the pipe (e.g. `| head`): the stream ended
             where the consumer stopped listening — that is success. *)
          (0, 0, 0))
  in
  if failed > 0 then exit 1

(* sweep: fan one request across a parameter grid, streaming one NDJSON
   line per grid point (in grid order, as each completes) and a terminal
   cost-vs-resilience Pareto frontier line. *)
let sweep_cmd_run verbose input workers queue cache_size trace_file =
  setup_logs verbose;
  let workers = Service.Pool.clamp_workers ~what:"etransform sweep" workers in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let text =
    if input = "-" then In_channel.input_all stdin
    else In_channel.with_open_text input In_channel.input_all
  in
  let request =
    match Service.Json.parse text with
    | Error msg -> Error ("body is not JSON: " ^ msg)
    | Ok j ->
        Service.Sweep.request_of_json ~resolve:Harness.Line_jobs.resolve j
  in
  match request with
  | Error msg ->
      Printf.eprintf "invalid sweep request: %s\n" msg;
      exit 2
  | Ok (base, grid) ->
      let trace, close_trace = trace_sink trace_file in
      let failed = ref 0 in
      Fun.protect ~finally:close_trace (fun () ->
          try
            Service.Pool.with_pool ~workers ~queue_capacity:queue
              ~cache_capacity:cache_size ~trace (fun pool ->
                let s =
                  Service.Sweep.run pool base grid ~f:(fun p ->
                      (match p.Service.Sweep.result.Service.Pool.code with
                      | Service.Pool.Failed -> incr failed
                      | _ -> ());
                      print_string (Service.Sweep.point_line p);
                      print_newline ();
                      flush stdout)
                in
                print_string (Service.Sweep.frontier_line s);
                print_newline ();
                flush stdout)
          with exn when broken_pipe exn -> ());
      if !failed > 0 then exit 1

(* Shared arguments. *)
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty logs.")

let dataset =
  Arg.(value & opt string "enterprise1"
       & info [ "dataset" ] ~docv:"NAME"
           ~doc:"enterprise1, florida, federal or synthetic.")

let scale =
  Arg.(value & opt float 1.0
       & info [ "scale" ] ~doc:"Shrink factor for the named dataset.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Synthetic seed.")

let groups =
  Arg.(value & opt int 50 & info [ "groups" ] ~doc:"Synthetic app groups.")

let targets =
  Arg.(value & opt int 6 & info [ "targets" ] ~doc:"Synthetic target DCs.")

let dr = Arg.(value & flag & info [ "dr" ] ~doc:"Plan disaster recovery too.")

let eos =
  Arg.(value & opt bool true
       & info [ "economies-of-scale" ] ~doc:"Price volume discounts in the LP.")

let fixed =
  Arg.(value & opt bool true
       & info [ "fixed-charges" ] ~doc:"Price site opening charges in the LP.")

let omega =
  Arg.(value & opt (some float) None
       & info [ "omega" ] ~doc:"Business-impact spread (fraction per site).")

let workdir =
  Arg.(value & opt (some string) None
       & info [ "workdir" ] ~docv:"DIR"
           ~doc:"Materialize the LP file and solution file here (Fig. 5).")

let which_exp =
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT")

let batch_input =
  Arg.(value & pos 0 string "-"
       & info [] ~docv:"JOBS.ndjson"
           ~doc:"Newline-delimited job specs; - reads stdin.")

let batch_workers =
  Arg.(value & opt int 2
       & info [ "workers" ] ~doc:"Worker domains (0 = solve inline).")

let batch_queue =
  Arg.(value & opt int 64
       & info [ "queue" ] ~doc:"Bounded job-queue capacity.")

let batch_cache =
  Arg.(value & opt int 256
       & info [ "cache" ] ~doc:"Plan-cache capacity (0 disables).")

let batch_trace =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write JSONL per-job trace spans here.")

let plan_cmd =
  Cmd.v
    (Cmd.info "plan" ~doc:"compute a consolidation (and optionally DR) plan")
    Term.(const plan_cmd_run $ verbose $ dataset $ scale $ seed $ groups
          $ targets $ dr $ eos $ fixed $ omega $ workdir)

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"compare as-is / manual / greedy / eTransform")
    Term.(const compare_cmd_run $ verbose $ dataset $ scale $ seed $ groups
          $ targets $ dr)

let experiment_cmd =
  Cmd.v
    (Cmd.info "experiment" ~doc:"run a paper experiment (e0..e7, all)")
    Term.(const experiment_cmd_run $ verbose $ which_exp)

let datasets_cmd =
  Cmd.v
    (Cmd.info "datasets" ~doc:"summarize the bundled case-study datasets")
    Term.(const datasets_cmd_run $ verbose)

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:"serve a stream of NDJSON planning jobs through the worker pool")
    Term.(const batch_cmd_run $ verbose $ batch_input $ batch_workers
          $ batch_queue $ batch_cache $ batch_trace)

let sweep_input =
  Arg.(value & pos 0 string "-"
       & info [] ~docv:"REQUEST.json"
           ~doc:"A job spec with a \"grid\" member; - reads stdin.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"stream a parameter sweep and its cost-vs-resilience frontier")
    Term.(const sweep_cmd_run $ verbose $ sweep_input $ batch_workers
          $ batch_queue $ batch_cache $ batch_trace)

let () =
  let doc = "enterprise data-center transformation and consolidation planner" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "etransform" ~doc ~version:"1.0.0")
          [
            plan_cmd;
            compare_cmd;
            experiment_cmd;
            datasets_cmd;
            batch_cmd;
            sweep_cmd;
          ]))
