(* The admin loop (paper Fig. 5): review the plan, add constraints in plain
   terms — pin this group, retire that site, cap the blast radius — and
   re-solve until the plan is acceptable.

   Run with:  dune exec examples/iterative_planning.exe *)

open Etransform

(* A compact synthetic estate for the walkthrough. *)
let make_estate () =
  Datasets.Synth.generate
    {
      Datasets.Synth.default with
      Datasets.Synth.name = "iterative-demo";
      seed = 2024;
      n_groups = 30;
      n_targets = 6;
      n_current = 8;
      total_servers = 260;
    }

let show asis title (o : Solver.outcome) =
  Fmt.pr "%s: %a@." title Evaluate.pp_summary o.Solver.summary;
  let counts = Placement.servers_per_dc asis o.Solver.placement in
  Array.iteri
    (fun j n ->
      if n > 0 then
        Fmt.pr "   %-24s %4d servers@." asis.Asis.targets.(j).Data_center.name n)
    counts

let () =
  let asis = make_estate () in
  Fmt.pr "%a@.@." Asis.pp_summary asis;

  (* Round 1: the unconstrained optimum. *)
  let base = Iterate.replan asis [] in
  show asis "round 1 (unconstrained)" base;

  (* Round 2: the security team won't allow the payroll group (index 0) in
     the first site, and site 1 is being decommissioned. *)
  let adjustments = [ Iterate.Forbid (0, 0); Iterate.Close_dc 1 ] in
  List.iter (fun a -> Fmt.pr "  + %a@." Iterate.pp_adjustment a) adjustments;
  let round2 = Iterate.replan asis adjustments in
  show asis "round 2" round2;

  (* Round 3: additionally cap the blast radius at 40% of groups per site. *)
  let adjustments = Iterate.Spread 0.4 :: adjustments in
  List.iter (fun a -> Fmt.pr "  + %a@." Iterate.pp_adjustment a) adjustments;
  let round3 = Iterate.replan asis adjustments in
  show asis "round 3" round3;

  let cost o = Evaluate.total o.Solver.summary.Evaluate.cost in
  Fmt.pr
    "@.each constraint costs money: $%.0f -> $%.0f -> $%.0f per month — the \
     tool quantifies the price of policy.@."
    (cost base) (cost round2) (cost round3)
