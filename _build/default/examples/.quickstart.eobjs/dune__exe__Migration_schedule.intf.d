examples/migration_schedule.mli:
