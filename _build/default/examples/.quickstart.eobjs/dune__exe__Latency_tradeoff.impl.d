examples/latency_tradeoff.ml: Etransform Evaluate Fmt Harness List Printf Report Solver
