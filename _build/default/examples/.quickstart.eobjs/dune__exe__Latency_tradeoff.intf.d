examples/latency_tradeoff.mli:
