examples/quickstart.mli:
