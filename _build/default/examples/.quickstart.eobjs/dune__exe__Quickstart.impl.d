examples/quickstart.ml: App_group Array Asis Data_center Etransform Evaluate Fmt Latency_penalty Placement Solver
