examples/dr_planning.mli:
