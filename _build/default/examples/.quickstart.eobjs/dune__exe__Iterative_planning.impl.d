examples/iterative_planning.ml: Array Asis Data_center Datasets Etransform Evaluate Fmt Iterate List Placement Solver
