examples/consolidation_case_study.ml: Array Asis Data_center Datasets Etransform Evaluate Fmt Greedy Lp Lp_builder Manual Placement Report Solver
