examples/iterative_planning.mli:
