examples/migration_schedule.ml: Array Asis Data_center Datasets Etransform Float Fmt Insights List Migration Report Solver
