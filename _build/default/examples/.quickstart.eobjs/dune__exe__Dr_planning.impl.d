examples/dr_planning.ml: Array Asis Data_center Datasets Dr_planner Etransform Evaluate Fmt Placement Solver
