(* Latency-vs-cost tradeoff (paper §VI-D): on a line of ten locations with
   space prices rising away from the users, sweep the latency penalty and
   watch eTransform migrate the placement toward the users.

   Run with:  dune exec examples/latency_tradeoff.exe *)

open Etransform

let () =
  let penalties = [ 0.0; 30.0; 60.0; 120.0 ] in
  Fmt.pr "users split 50/50 across the two ends of a 10-location line@.@.";
  Fmt.pr "%8s  %12s  %12s  %14s@." "penalty" "total cost" "space cost"
    "mean latency";
  List.iter
    (fun p ->
      let cfg =
        {
          Harness.Line_estate.default with
          Harness.Line_estate.frac_at_0 = 0.5;
          latency_penalty = Harness.Line_estate.banded_penalty p;
        }
      in
      let asis = Harness.Line_estate.make cfg in
      let o = Solver.consolidate asis in
      let s = o.Solver.summary in
      Fmt.pr "%8s  %12s  %12s  %11.1f ms@."
        (Printf.sprintf "$%.0f" p)
        (Report.money (Evaluate.total s.Evaluate.cost))
        (Report.money s.Evaluate.cost.Evaluate.space)
        (Harness.Line_estate.mean_user_latency asis o.Solver.placement))
    penalties;
  Fmt.pr
    "@.low penalties optimize cost; high penalties buy latency with pricier \
     space — the paper's Fig. 7 in miniature.@."
