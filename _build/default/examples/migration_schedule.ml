(* From plan to program: schedule the move waves that take the estate from
   its as-is state to the to-be plan, with a bounded move rate, and watch
   the monthly bill fall as legacy sites empty.

   Run with:  dune exec examples/migration_schedule.exe *)

open Etransform

let () =
  let asis = Datasets.Enterprise1.asis ~scale:0.5 () in
  Fmt.pr "%a@.@." Asis.pp_summary asis;

  let plan = Solver.solve_to_placement asis in
  let schedule = Migration.plan ~servers_per_wave:60 asis plan in

  Fmt.pr "migration in %d waves (max 60 servers per wave):@."
    (List.length schedule.Migration.waves);
  List.iteri
    (fun k w ->
      Fmt.pr "  wave %2d: %2d groups, %3d servers -> monthly bill %s@." (k + 1)
        (List.length w.Migration.moves)
        w.Migration.servers_moved
        (Report.money schedule.Migration.cost_timeline.(k + 1)))
    schedule.Migration.waves;

  let t = schedule.Migration.cost_timeline in
  Fmt.pr "@.monthly bill: %s before, %s after — and capacity to negotiate:@."
    (Report.money t.(0))
    (Report.money t.(Array.length t - 1));

  (* Which target sites would justify buying more capacity? *)
  List.iter
    (fun (j, price) ->
      Fmt.pr "  one extra server slot at %-28s is worth %s/month@."
        asis.Asis.targets.(j).Data_center.name
        (Report.money (Float.abs price)))
    (Insights.most_constrained asis)
