(* Integrated consolidation + disaster recovery (paper §IV): every
   application group gets a primary and a secondary site; backup servers
   are shared across groups because only one site fails at a time.

   Run with:  dune exec examples/dr_planning.exe *)

open Etransform

let () =
  let asis = Datasets.Florida.asis () in
  Fmt.pr "%a@.@." Asis.pp_summary asis;

  (* The strawman the paper compares against: keep the estate as-is and
     bolt on one giant backup site. *)
  let strawman = Evaluate.asis_with_basic_dr asis in
  Fmt.pr "as-is + bolt-on DR:  %a@." Evaluate.pp_summary strawman;

  let outcome =
    Dr_planner.plan
      ~options:
        { Dr_planner.default_options with Dr_planner.economies_of_scale = true }
      asis
  in
  Fmt.pr "integrated DR plan:  %a@.@." Evaluate.pp_summary outcome.Solver.summary;

  let s = outcome.Solver.summary in
  Fmt.pr "backup pools (shared, single-failure):@.";
  Array.iteri
    (fun b pool ->
      if pool > 0.0 then
        Fmt.pr "  %-28s %4.0f backup servers@."
          asis.Asis.targets.(b).Data_center.name pool)
    s.Evaluate.backups;
  let dedicated =
    match outcome.Solver.placement.Placement.secondary with
    | None -> 0.0
    | Some sec ->
        let p =
          Placement.with_dr ~dedicated_backups:true
            ~primary:outcome.Solver.placement.Placement.primary ~secondary:sec ()
        in
        Array.fold_left ( +. ) 0.0 (Placement.backup_servers asis p)
  in
  let shared = Array.fold_left ( +. ) 0.0 s.Evaluate.backups in
  Fmt.pr "@.sharing buys %.0f backup servers instead of %.0f dedicated ones@."
    shared dedicated;
  let saved =
    100.0
    *. (1.0 -. Evaluate.total s.Evaluate.cost /. Evaluate.total strawman.Evaluate.cost)
  in
  Fmt.pr "integrated plan is %.0f%% cheaper than the bolt-on strawman@." saved
