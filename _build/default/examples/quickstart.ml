(* Quickstart: describe a tiny enterprise by hand, plan its consolidation,
   and print the to-be state.

   Run with:  dune exec examples/quickstart.exe *)

open Etransform

let () =
  (* Two user populations: a US-east office and a EU office. *)
  let user_locations = [| "us-east"; "eu" |] in

  (* Three candidate target data centers with their price books. *)
  let target name ~space ~power ~admin ~latency =
    Data_center.v ~name ~capacity:60
      ~space_segments:(Data_center.flat_space ~capacity:60 ~per_server:space)
      ~wan_per_mb:2e-4 ~power_per_kwh:power ~admin_monthly:admin
      ~user_latency_ms:latency ()
  in
  let targets =
    [|
      target "ashburn" ~space:220.0 ~power:0.09 ~admin:7800.0
        ~latency:[| 6.0; 80.0 |];
      target "dallas" ~space:170.0 ~power:0.09 ~admin:7000.0
        ~latency:[| 35.0; 110.0 |];
      target "frankfurt" ~space:260.0 ~power:0.17 ~admin:7300.0
        ~latency:[| 85.0; 8.0 |];
    |]
  in

  (* Application groups: servers, monthly traffic, users per location, and
     a latency requirement where it matters. *)
  let groups =
    [|
      App_group.v ~name:"erp" ~servers:18 ~data_mb_month:800_000.0
        ~users:[| 300.0; 100.0 |] ();
      App_group.v ~name:"trading"
        ~latency:(Latency_penalty.step ~threshold_ms:10.0 ~penalty_per_user:100.0)
        ~servers:8 ~data_mb_month:500_000.0 ~users:[| 150.0; 0.0 |] ();
      App_group.v ~name:"eu-portal"
        ~latency:(Latency_penalty.step ~threshold_ms:15.0 ~penalty_per_user:40.0)
        ~servers:10 ~data_mb_month:400_000.0 ~users:[| 0.0; 400.0 |] ();
      App_group.v ~name:"batch-analytics" ~servers:20
        ~data_mb_month:1_500_000.0 ~users:[| 50.0; 50.0 |] ();
    |]
  in

  (* The current estate: two aging server rooms. *)
  let legacy name ~space ~latency =
    Data_center.v ~name ~capacity:40
      ~space_segments:(Data_center.flat_space ~capacity:40 ~per_server:space)
      ~wan_per_mb:4e-4 ~power_per_kwh:0.15 ~admin_monthly:9000.0
      ~user_latency_ms:latency ()
  in
  let asis =
    Asis.v ~name:"quickstart"
      ~groups ~targets ~user_locations
      ~current:
        [| legacy "hq-basement" ~space:350.0 ~latency:[| 12.0; 95.0 |];
           legacy "eu-closet" ~space:380.0 ~latency:[| 90.0; 14.0 |] |]
      ~current_placement:[| 0; 0; 1; 0 |] ()
  in

  let as_is = Evaluate.asis_state asis in
  Fmt.pr "as-is:   %a@." Evaluate.pp_summary as_is;

  (* Plan the consolidation and show where everything lands. *)
  let outcome = Solver.consolidate asis in
  Fmt.pr "to-be:   %a@." Evaluate.pp_summary outcome.Solver.summary;
  Array.iteri
    (fun i j ->
      Fmt.pr "  %-16s -> %s@." asis.Asis.groups.(i).App_group.name
        asis.Asis.targets.(j).Data_center.name)
    outcome.Solver.placement.Placement.primary;
  let saved =
    100.0
    *. (1.0
       -. Evaluate.total outcome.Solver.summary.Evaluate.cost
          /. Evaluate.total as_is.Evaluate.cost)
  in
  Fmt.pr "monthly cost reduction: %.0f%%@." saved
