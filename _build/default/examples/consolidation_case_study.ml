(* Case study: plan the consolidation of the Enterprise1 estate (the
   paper's multinational: 67 data centers, 1070 servers, ~190 application
   groups) into 10 world-market target sites, and compare against the
   manual and greedy baselines.

   Run with:  dune exec examples/consolidation_case_study.exe *)

open Etransform

let () =
  let asis = Datasets.Enterprise1.asis () in
  Fmt.pr "%a@.@." Asis.pp_summary asis;

  let as_is = Evaluate.asis_state asis in
  let manual = Evaluate.plan asis (Manual.plan asis) in
  let greedy = Evaluate.plan asis (Greedy.plan asis) in
  (* The full eTransform configuration: volume discounts and site opening
     charges in the objective. *)
  let builder =
    {
      Lp_builder.default_options with
      Lp_builder.economies_of_scale = true;
      fixed_charges = true;
    }
  in
  let outcome = Solver.consolidate ~builder asis in

  let asis_total = Evaluate.total as_is.Evaluate.cost in
  print_string
    (Report.table ~header:Report.comparison_header
       (Report.comparison_rows ~asis_total
          [
            ("AS-IS", as_is);
            ("MANUAL", manual);
            ("GREEDY", greedy);
            ("ETRANSFORM", outcome.Solver.summary);
          ]));

  (* Where did everything go? *)
  Fmt.pr "@.to-be footprint:@.";
  let counts = Placement.servers_per_dc asis outcome.Solver.placement in
  Array.iteri
    (fun j n ->
      if n > 0 then
        Fmt.pr "  %-28s %4d servers (capacity %d)@."
          asis.Asis.targets.(j).Data_center.name n
          asis.Asis.targets.(j).Data_center.capacity)
    counts;
  Fmt.pr "@.solver: %s, gap %.1f%%, %d simplex iterations, %d local moves@."
    (Lp.Status.to_string outcome.Solver.milp_status)
    (100.0 *. outcome.Solver.milp_gap)
    outcome.Solver.lp_iterations outcome.Solver.local_moves
