test/test_dr.ml: Alcotest Array Asis Data_center Dr_builder Dr_planner Etransform Evaluate Fixtures Lp Placement Printf QCheck2 QCheck_alcotest Solver
