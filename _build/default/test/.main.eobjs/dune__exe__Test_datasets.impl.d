test/test_datasets.ml: Alcotest Array Datasets Etransform Fun List Lp QCheck2 QCheck_alcotest
