test/fixtures.ml: App_group Asis Data_center Datasets Etransform Latency_penalty
