test/test_domain.ml: Alcotest App_group Asis Data_center Etransform Fixtures Latency_penalty Placement
