test/test_milp.ml: Alcotest Array Float Fun List Lp Milp Model Printf QCheck2 QCheck_alcotest Simplex Status
