test/test_evaluate.ml: Alcotest Array Asis Cost_model Data_center Etransform Evaluate Fixtures Float Greedy Placement QCheck2 QCheck_alcotest
