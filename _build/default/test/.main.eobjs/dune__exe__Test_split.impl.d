test/test_split.ml: Alcotest App_group Array Asis Etransform Fixtures List Placement QCheck2 QCheck_alcotest Solver Split String
