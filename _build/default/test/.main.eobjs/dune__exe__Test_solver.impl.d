test/test_solver.ml: Alcotest App_group Array Asis Etransform Evaluate Fixtures Greedy Local_search Lp Manual Placement QCheck2 QCheck_alcotest Solver
