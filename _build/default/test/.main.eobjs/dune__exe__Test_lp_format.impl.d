test/test_lp_format.ml: Alcotest Array Astring_contains Float List Lp Lp_format Lp_parse Milp Model Mps_format Printf QCheck2 QCheck_alcotest Status
