test/test_piecewise.ml: Alcotest Float List Lp Milp Model Piecewise QCheck2 QCheck_alcotest Simplex Status
