test/test_geo.ml: Alcotest Array Float Fun Geo List QCheck2 QCheck_alcotest
