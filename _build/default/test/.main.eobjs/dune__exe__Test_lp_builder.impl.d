test/test_lp_builder.ml: Alcotest App_group Array Asis Astring_contains Cost_model Data_center Etransform Fixtures Float List Lp Lp_builder Placement QCheck2 QCheck_alcotest
