test/test_pqueue.ml: Alcotest List Lp Pqueue QCheck2 QCheck_alcotest
