test/test_baselines.ml: Alcotest App_group Array Asis Data_center Datasets Etransform Evaluate Fixtures Greedy List Manual Placement QCheck2 QCheck_alcotest
