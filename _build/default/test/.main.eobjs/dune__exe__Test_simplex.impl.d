test/test_simplex.ml: Alcotest Array List Lp Model Printf QCheck2 QCheck_alcotest Simplex Status String
