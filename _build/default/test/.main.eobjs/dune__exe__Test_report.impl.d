test/test_report.ml: Alcotest Astring_contains Etransform Evaluate Filename Fixtures List Lp Pipeline Placement Report Solver String Sys
