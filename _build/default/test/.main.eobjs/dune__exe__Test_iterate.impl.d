test/test_iterate.ml: Alcotest Array Etransform Evaluate Fixtures Fmt Iterate Placement Solver
