test/test_harness.ml: Alcotest App_group Array Asis Data_center Dr_planner Etransform Harness Latency_penalty Placement Printf Solver
