test/test_presolve.ml: Alcotest Array Astring_contains List Lp Milp Model Presolve
