test/test_migration.ml: Alcotest Array Asis Etransform Evaluate Fixtures Float Insights List Lp Migration Solver
