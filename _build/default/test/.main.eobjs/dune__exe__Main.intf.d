test/main.mli:
