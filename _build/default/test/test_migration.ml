(* Migration wave scheduling and dual-based insights. *)

open Etransform

let setup () =
  let asis = Fixtures.synthetic ~seed:51 ~groups:20 ~targets:4 () in
  let plan = Solver.solve_to_placement asis in
  (asis, plan)

let test_schedule_validates () =
  let asis, plan = setup () in
  let s = Migration.plan ~servers_per_wave:30 asis plan in
  Alcotest.(check (list string)) "well-formed" []
    (Migration.validate ~servers_per_wave:30 asis plan s)

let test_every_group_moves_once () =
  let asis, plan = setup () in
  let s = Migration.plan asis plan in
  let moved =
    List.concat_map (fun w -> List.map (fun mv -> mv.Migration.group) w.Migration.moves)
      s.Migration.waves
  in
  Alcotest.(check int) "all groups" (Asis.num_groups asis) (List.length moved);
  Alcotest.(check int) "no duplicates" (Asis.num_groups asis)
    (List.length (List.sort_uniq compare moved))

let test_wave_budget () =
  let asis, plan = setup () in
  let budget = 25 in
  let s = Migration.plan ~servers_per_wave:budget asis plan in
  List.iter
    (fun w ->
      if List.length w.Migration.moves > 1 then
        Alcotest.(check bool) "budget respected" true
          (w.Migration.servers_moved <= budget))
    s.Migration.waves

let test_timeline_starts_and_ends_right () =
  let asis, plan = setup () in
  let s = Migration.plan asis plan in
  let as_is = Evaluate.total (Evaluate.asis_state asis).Evaluate.cost in
  let to_be = Evaluate.total (Evaluate.plan asis plan).Evaluate.cost in
  let t = s.Migration.cost_timeline in
  Alcotest.(check (float 1.0)) "starts at as-is" as_is t.(0);
  Alcotest.(check (float 1.0)) "ends at to-be" to_be t.(Array.length t - 1)

let test_timeline_eventually_saves () =
  let asis, plan = setup () in
  let s = Migration.plan asis plan in
  let t = s.Migration.cost_timeline in
  Alcotest.(check bool) "final below initial" true (t.(Array.length t - 1) < t.(0))

let test_oversized_group_own_wave () =
  let asis, plan = setup () in
  (* Budget of one server: every group gets its own wave. *)
  let s = Migration.plan ~servers_per_wave:1 asis plan in
  Alcotest.(check int) "one wave per group" (Asis.num_groups asis)
    (List.length s.Migration.waves);
  Alcotest.(check (list string)) "still valid" []
    (Migration.validate ~servers_per_wave:1 asis plan s)

(* Sensitivity: in a knapsack-style LP the capacity row's shadow price is
   the marginal value density. *)
let test_shadow_price_knapsack () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~hi:10.0 "x" and y = Lp.Model.add_var m ~hi:10.0 "y" in
  (* max 3x + y s.t. x + y <= 4: optimum x=4; one more unit of rhs is
     worth 3. *)
  Lp.Model.add_le m "cap" Lp.Model.Linexpr.(add (var x) (var y)) 4.0;
  Lp.Model.set_objective m ~minimize:false
    Lp.Model.Linexpr.(add (term 3.0 x) (var y));
  let input = Lp.Simplex.of_model m in
  let r = Lp.Simplex.solve input in
  let binding = Lp.Sensitivity.binding_rows input r in
  Alcotest.(check (list int)) "capacity binds" [ 0 ] binding;
  let improving = Lp.Sensitivity.improving_rhs input r in
  Alcotest.(check int) "one priced row" 1 (List.length improving);
  (* Internal duals are in min convention: -3 for this max problem. *)
  let _, price = List.hd improving in
  Alcotest.(check (float 1e-6)) "marginal value" 3.0 (Float.abs price);
  ignore y

let test_capacity_shadow_prices () =
  let asis = Fixtures.asis () in
  let prices = Insights.capacity_shadow_prices asis in
  Alcotest.(check int) "one per target" 3 (Array.length prices);
  (* Minimization duals on <= rows are non-positive. *)
  Array.iter
    (fun (_, y) -> Alcotest.(check bool) "non-positive" true (y <= 1e-9))
    prices

let test_most_constrained_ordering () =
  let asis = Fixtures.synthetic ~seed:61 ~groups:30 ~targets:4 () in
  let ranked = Insights.most_constrained asis in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by value" true (monotone ranked)

let suite =
  [
    Alcotest.test_case "schedule validates" `Quick test_schedule_validates;
    Alcotest.test_case "each group moves once" `Quick test_every_group_moves_once;
    Alcotest.test_case "wave budget" `Quick test_wave_budget;
    Alcotest.test_case "timeline endpoints" `Quick test_timeline_starts_and_ends_right;
    Alcotest.test_case "migration saves money" `Quick test_timeline_eventually_saves;
    Alcotest.test_case "tiny budget one wave per group" `Quick test_oversized_group_own_wave;
    Alcotest.test_case "knapsack shadow price" `Quick test_shadow_price_knapsack;
    Alcotest.test_case "capacity shadow prices" `Quick test_capacity_shadow_prices;
    Alcotest.test_case "most constrained ordering" `Quick test_most_constrained_ordering;
  ]
