(* Geography substrate: distances, latency model, synthetic topologies. *)

let test_haversine_known () =
  let ny = Geo.Location.v ~name:"NY" ~lat:40.71 ~lon:(-74.01) in
  let london = Geo.Location.v ~name:"LDN" ~lat:51.51 ~lon:(-0.13) in
  let d = Geo.Location.distance_km ny london in
  (* Great-circle NY-London is about 5570 km. *)
  Alcotest.(check bool) "transatlantic distance" true (d > 5400.0 && d < 5750.0)

let test_haversine_zero () =
  let p = Geo.Location.v ~name:"p" ~lat:10.0 ~lon:20.0 in
  Alcotest.(check (float 1e-9)) "self distance" 0.0 (Geo.Location.distance_km p p)

let test_haversine_symmetric () =
  let a = Geo.Location.v ~name:"a" ~lat:48.86 ~lon:2.35 in
  let b = Geo.Location.v ~name:"b" ~lat:35.68 ~lon:139.65 in
  Alcotest.(check (float 1e-6))
    "symmetry"
    (Geo.Location.distance_km a b)
    (Geo.Location.distance_km b a)

let test_rtt () =
  Alcotest.(check (float 1e-9)) "base only" 1.0 (Geo.Latency_model.rtt_ms 0.0);
  Alcotest.(check (float 1e-9)) "1000km" 11.0 (Geo.Latency_model.rtt_ms 1000.0);
  Alcotest.(check (float 1e-9))
    "custom base" 25.0
    (Geo.Latency_model.rtt_ms ~base_ms:5.0 2000.0)

let test_average_weighted () =
  let row = [| 10.0; 20.0; 30.0 |] in
  Alcotest.(check (float 1e-9))
    "uniform" 20.0
    (Geo.Latency_model.average ~weights:[| 1.0; 1.0; 1.0 |] row);
  Alcotest.(check (float 1e-9))
    "concentrated" 10.0
    (Geo.Latency_model.average ~weights:[| 5.0; 0.0; 0.0 |] row);
  Alcotest.(check (float 1e-9))
    "zero mass" 0.0
    (Geo.Latency_model.average ~weights:[| 0.0; 0.0; 0.0 |] row)

let test_average_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Latency_model.average: length mismatch") (fun () ->
      ignore (Geo.Latency_model.average ~weights:[| 1.0 |] [| 1.0; 2.0 |]))

let test_paper_classes () =
  let lat, classes = Geo.Topology.paper_classes ~n_dcs:10 ~n_users:4 () in
  Alcotest.(check int) "rows" 10 (Array.length lat);
  (* Class 0 DC: 5ms to location 0, 20ms elsewhere. *)
  Alcotest.(check (float 1e-9)) "near" 5.0 lat.(0).(0);
  Alcotest.(check (float 1e-9)) "far" 20.0 lat.(0).(1);
  (* Class 4 (balanced) DC: 10ms everywhere. *)
  Alcotest.(check int) "balanced class" 4 classes.(4);
  Array.iter (fun l -> Alcotest.(check (float 1e-9)) "balanced" 10.0 l) lat.(4);
  (* All five classes appear among ten DCs. *)
  let seen = Array.make 5 false in
  Array.iter (fun c -> seen.(c) <- true) classes;
  Alcotest.(check bool) "all classes present" true (Array.for_all Fun.id seen)

let test_line_topology () =
  let lat =
    Geo.Topology.line ~n:10 ~base_ms:2.0 ~ms_per_hop:3.0
      ~user_positions:[| 0; 9 |] ()
  in
  let quad =
    Geo.Topology.line ~exponent:2.0 ~n:10 ~base_ms:2.0 ~ms_per_hop:2.0
      ~user_positions:[| 0; 9 |] ()
  in
  Alcotest.(check (float 1e-9)) "quadratic growth" (2.0 +. 2.0 *. 81.0) quad.(9).(0);
  Alcotest.(check (float 1e-9)) "dc0 to loc0" 2.0 lat.(0).(0);
  Alcotest.(check (float 1e-9)) "dc0 to loc9" 29.0 lat.(0).(1);
  Alcotest.(check (float 1e-9)) "dc9 to loc9" 2.0 lat.(9).(1);
  Alcotest.(check (float 1e-9)) "dc5 to loc0" 17.0 lat.(5).(0)

let test_places_regions () =
  Alcotest.(check bool) "gazetteer nonempty" true (Array.length Geo.Places.all > 20);
  Alcotest.(check bool) "finds London" true (Geo.Places.find "London" <> None);
  Alcotest.(check bool) "misses nowhere" true (Geo.Places.find "Nowhere" = None);
  Alcotest.(check bool) "europe populated" true
    (List.length (Geo.Places.in_region Geo.Places.Europe) >= 5)

let prop_rtt_monotone =
  QCheck2.Test.make ~name:"rtt grows with distance" ~count:100
    QCheck2.Gen.(pair (float_bound_inclusive 20000.0) (float_bound_inclusive 20000.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Geo.Latency_model.rtt_ms lo <= Geo.Latency_model.rtt_ms hi +. 1e-9)

let prop_triangle_inequality =
  let gen_loc =
    QCheck2.Gen.(
      let* lat = float_range (-80.0) 80.0 in
      let* lon = float_range (-180.0) 180.0 in
      return (Geo.Location.v ~name:"x" ~lat ~lon))
  in
  QCheck2.Test.make ~name:"haversine triangle inequality" ~count:100
    QCheck2.Gen.(triple gen_loc gen_loc gen_loc)
    (fun (a, b, c) ->
      Geo.Location.distance_km a c
      <= Geo.Location.distance_km a b +. Geo.Location.distance_km b c +. 1e-6)

let suite =
  [
    Alcotest.test_case "known transatlantic distance" `Quick test_haversine_known;
    Alcotest.test_case "zero self-distance" `Quick test_haversine_zero;
    Alcotest.test_case "distance symmetry" `Quick test_haversine_symmetric;
    Alcotest.test_case "rtt model" `Quick test_rtt;
    Alcotest.test_case "weighted average latency" `Quick test_average_weighted;
    Alcotest.test_case "average length mismatch" `Quick test_average_mismatch;
    Alcotest.test_case "paper latency classes" `Quick test_paper_classes;
    Alcotest.test_case "line topology" `Quick test_line_topology;
    Alcotest.test_case "gazetteer" `Quick test_places_regions;
    QCheck_alcotest.to_alcotest prop_rtt_monotone;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
  ]
