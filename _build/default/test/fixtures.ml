(* A hand-computable estate shared across the etransform test suites.

   Parameters are chosen so per-server cost components are round numbers:
   power = 0.1 kW * 100 h * E, labor = admin/130.

   Per-server monthly cost (space + power + labor):
     target A: 100 + 10 + 10 = 120     latency [5; 20]
     target B:  80 + 20 + 20 = 120     latency [20; 5]
     target C: 120 + 10 + 10 = 140     latency [10; 10]  (capacity 20) *)

open Etransform

let params =
  {
    Asis.default_params with
    Asis.server_power_kw = 0.1;
    hours_per_month = 100.0;
    servers_per_admin = 130.0;
    dr_server_cost = 1000.0;
  }

let dc ?(fixed = 0.0) ?vpn name cap space wan power admin lat =
  Data_center.v ~fixed_monthly:fixed ?vpn_monthly:vpn ~name ~capacity:cap
    ~space_segments:(Data_center.flat_space ~capacity:cap ~per_server:space)
    ~wan_per_mb:wan ~power_per_kwh:power ~admin_monthly:admin
    ~user_latency_ms:lat ()

let target_a () = dc "A" 10 100.0 1e-3 1.0 1300.0 [| 5.0; 20.0 |]
let target_b () = dc "B" 10 80.0 2e-3 2.0 2600.0 [| 20.0; 5.0 |]
let target_c () = dc "C" 20 120.0 1e-3 1.0 1300.0 [| 10.0; 10.0 |]

let group_0 () =
  App_group.v
    ~latency:(Latency_penalty.step ~threshold_ms:10.0 ~penalty_per_user:1.0)
    ~name:"g0" ~servers:4 ~data_mb_month:1000.0 ~users:[| 100.0; 0.0 |] ()

let group_1 () =
  App_group.v
    ~latency:(Latency_penalty.step ~threshold_ms:10.0 ~penalty_per_user:2.0)
    ~name:"g1" ~servers:3 ~data_mb_month:2000.0 ~users:[| 0.0; 50.0 |] ()

let group_2 () =
  App_group.v ~name:"g2" ~servers:5 ~data_mb_month:500.0
    ~users:[| 20.0; 20.0 |] ()

let group_3 () =
  App_group.v ~name:"g3" ~servers:2 ~data_mb_month:100.0
    ~users:[| 10.0; 0.0 |] ()

let asis () =
  let current =
    [|
      dc "cur0" 7 150.0 2e-3 1.0 1300.0 [| 15.0; 25.0 |];
      dc "cur1" 7 160.0 2e-3 2.0 2600.0 [| 25.0; 15.0 |];
    |]
  in
  Asis.v ~params ~name:"fixture"
    ~groups:[| group_0 (); group_1 (); group_2 (); group_3 () |]
    ~targets:[| target_a (); target_b (); target_c () |]
    ~user_locations:[| "east"; "west" |]
    ~current ~current_placement:[| 0; 0; 1; 1 |] ()

(* A slightly larger random-but-deterministic estate for solver tests. *)
let synthetic ?(seed = 42) ?(groups = 24) ?(targets = 5) () =
  Datasets.Synth.generate
    {
      Datasets.Synth.default with
      Datasets.Synth.seed;
      n_groups = groups;
      n_targets = targets;
      n_current = 6;
      total_servers = groups * 8;
    }
