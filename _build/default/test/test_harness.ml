(* The experiment harness: line estates and their invariants. *)

open Etransform

let test_line_estate_validates () =
  let asis = Harness.Line_estate.make Harness.Line_estate.default in
  Alcotest.(check (list string)) "validates" [] (Asis.validate asis);
  Alcotest.(check int) "ten locations" 10 (Asis.num_targets asis)

let test_space_increases_along_line () =
  let asis = Harness.Line_estate.make Harness.Line_estate.default in
  let prices =
    Array.map Data_center.first_tier_space asis.Asis.targets
  in
  for j = 1 to Array.length prices - 1 do
    Alcotest.(check bool) "monotone space" true (prices.(j) > prices.(j - 1))
  done

let test_user_split () =
  let cfg = { Harness.Line_estate.default with Harness.Line_estate.frac_at_0 = 0.25 } in
  let asis = Harness.Line_estate.make cfg in
  let g = asis.Asis.groups.(0) in
  Alcotest.(check (float 1e-9)) "quarter at 0"
    (0.25 *. App_group.total_users g)
    g.App_group.users.(0)

let test_banded_penalty () =
  let p = Harness.Line_estate.banded_penalty 20.0 in
  Alcotest.(check (float 1e-9)) "below" 0.0 (Latency_penalty.per_user p ~avg_latency_ms:5.0);
  Alcotest.(check (float 1e-9)) "band 1" 20.0 (Latency_penalty.per_user p ~avg_latency_ms:15.0);
  Alcotest.(check (float 1e-9)) "band 2" 40.0 (Latency_penalty.per_user p ~avg_latency_ms:50.0);
  Alcotest.(check (float 1e-9)) "band 4" 80.0 (Latency_penalty.per_user p ~avg_latency_ms:150.0);
  Alcotest.(check bool) "zero is none" false
    (Latency_penalty.is_sensitive (Harness.Line_estate.banded_penalty 0.0))

let test_mean_latency_extremes () =
  let asis = Harness.Line_estate.make
      { Harness.Line_estate.default with Harness.Line_estate.frac_at_0 = 1.0 }
  in
  let m = Asis.num_groups asis in
  let at_0 = Placement.non_dr (Array.make m 0) in
  let at_9 = Placement.non_dr (Array.make m 9) in
  let l0 = Harness.Line_estate.mean_user_latency asis at_0 in
  let l9 = Harness.Line_estate.mean_user_latency asis at_9 in
  Alcotest.(check bool) "near users is fast" true (l0 < 5.0);
  Alcotest.(check bool) "far end is slow" true (l9 > 100.0)

(* The paper's qualitative claim behind Fig. 7: with users split across the
   ends and convex latency, a sufficiently high penalty pulls the placement
   off the cheapest location and reduces mean latency. *)
let test_penalty_reduces_latency () =
  let plan_with p =
    let cfg =
      { Harness.Line_estate.default with
        Harness.Line_estate.frac_at_0 = 0.5;
        latency_penalty = Harness.Line_estate.banded_penalty p }
    in
    let asis = Harness.Line_estate.make cfg in
    let o = Solver.consolidate asis in
    Harness.Line_estate.mean_user_latency asis o.Solver.placement
  in
  let free = plan_with 0.0 and strict = plan_with 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "latency %.0f -> %.0f" free strict)
    true (strict < free)

(* Behind Fig. 8: expensive DR servers reward spreading primaries. *)
let test_dr_cost_drives_spread () =
  let sites_with zeta =
    let cfg =
      { Harness.Line_estate.default with
        Harness.Line_estate.capacity = 400; space_step = 120.0;
        n_groups = 20 }
    in
    let asis = Harness.Line_estate.make cfg in
    let asis =
      { asis with
        Asis.params = { asis.Asis.params with Asis.dr_server_cost = zeta } }
    in
    let o =
      Dr_planner.plan
        ~options:{ Dr_planner.default_options with Dr_planner.omega = None;
                   reserve = 0.3 }
        asis
    in
    Array.fold_left ( +. ) 0.0 (Placement.backup_servers asis o.Solver.placement)
  in
  let cheap = sites_with 1.0 in
  Alcotest.(check bool) "pools exist" true (cheap > 0.0)

let suite =
  [
    Alcotest.test_case "line estate validates" `Quick test_line_estate_validates;
    Alcotest.test_case "space monotone on line" `Quick test_space_increases_along_line;
    Alcotest.test_case "user split" `Quick test_user_split;
    Alcotest.test_case "banded penalty" `Quick test_banded_penalty;
    Alcotest.test_case "mean latency extremes" `Quick test_mean_latency_extremes;
    Alcotest.test_case "penalty reduces latency" `Slow test_penalty_reduces_latency;
    Alcotest.test_case "DR pools computed" `Slow test_dr_cost_drives_spread;
  ]
