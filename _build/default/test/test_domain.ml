(* Domain types: latency penalties, app groups, data centers, as-is state,
   placements. *)

open Etransform

let test_penalty_none () =
  Alcotest.(check (float 1e-9)) "no penalty" 0.0
    (Latency_penalty.per_user Latency_penalty.none ~avg_latency_ms:1000.0);
  Alcotest.(check bool) "not sensitive" false
    (Latency_penalty.is_sensitive Latency_penalty.none)

let test_penalty_step () =
  let p = Latency_penalty.step ~threshold_ms:10.0 ~penalty_per_user:100.0 in
  Alcotest.(check (float 1e-9)) "below" 0.0 (Latency_penalty.per_user p ~avg_latency_ms:9.9);
  Alcotest.(check (float 1e-9)) "at threshold" 0.0 (Latency_penalty.per_user p ~avg_latency_ms:10.0);
  Alcotest.(check (float 1e-9)) "above" 100.0 (Latency_penalty.per_user p ~avg_latency_ms:10.1);
  Alcotest.(check (float 1e-9)) "total" 5000.0
    (Latency_penalty.total p ~avg_latency_ms:50.0 ~users:50.0);
  Alcotest.(check bool) "violated" true (Latency_penalty.violated p ~avg_latency_ms:11.0);
  Alcotest.(check (option (float 1e-9))) "first threshold" (Some 10.0)
    (Latency_penalty.first_threshold p)

let test_penalty_bands () =
  let p = Latency_penalty.bands [ (40.0, 30.0); (10.0, 10.0); (20.0, 20.0) ] in
  Alcotest.(check (float 1e-9)) "band 1" 10.0 (Latency_penalty.per_user p ~avg_latency_ms:15.0);
  Alcotest.(check (float 1e-9)) "band 2" 20.0 (Latency_penalty.per_user p ~avg_latency_ms:25.0);
  Alcotest.(check (float 1e-9)) "band 3" 30.0 (Latency_penalty.per_user p ~avg_latency_ms:99.0);
  Alcotest.(check (float 1e-9)) "below all" 0.0 (Latency_penalty.per_user p ~avg_latency_ms:5.0)

let test_penalty_bands_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Latency_penalty.bands: negative threshold or penalty")
    (fun () -> ignore (Latency_penalty.bands [ (-1.0, 5.0) ]))

let test_app_group_invariants () =
  Alcotest.check_raises "zero servers"
    (Invalid_argument "App_group.v: servers must be positive") (fun () ->
      ignore
        (App_group.v ~name:"bad" ~servers:0 ~data_mb_month:1.0 ~users:[| 1.0 |] ()));
  Alcotest.check_raises "negative users"
    (Invalid_argument "App_group.v: negative user count") (fun () ->
      ignore
        (App_group.v ~name:"bad" ~servers:1 ~data_mb_month:1.0 ~users:[| -1.0 |] ()))

let test_app_group_allowed () =
  let g =
    App_group.v ~allowed_dcs:[| 0; 2 |] ~name:"g" ~servers:1 ~data_mb_month:0.0
      ~users:[| 1.0 |] ()
  in
  Alcotest.(check bool) "allowed 0" true (App_group.allowed g 0);
  Alcotest.(check bool) "blocked 1" false (App_group.allowed g 1);
  Alcotest.(check bool) "allowed 2" true (App_group.allowed g 2);
  let open_group = Fixtures.group_0 () in
  Alcotest.(check bool) "unrestricted" true (App_group.allowed open_group 7)

let test_data_center_invariants () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Data_center.v: capacity must be positive") (fun () ->
      ignore
        (Data_center.v ~name:"bad" ~capacity:0
           ~space_segments:(Data_center.flat_space ~capacity:1 ~per_server:1.0)
           ~wan_per_mb:0.0 ~power_per_kwh:0.0 ~admin_monthly:0.0
           ~user_latency_ms:[| 1.0 |] ()));
  Alcotest.check_raises "segments short"
    (Invalid_argument "Data_center.v: space segments do not cover capacity")
    (fun () ->
      ignore
        (Data_center.v ~name:"bad" ~capacity:100
           ~space_segments:(Data_center.flat_space ~capacity:10 ~per_server:1.0)
           ~wan_per_mb:0.0 ~power_per_kwh:0.0 ~admin_monthly:0.0
           ~user_latency_ms:[| 1.0 |] ()))

let test_space_cost_curve () =
  let dc = Fixtures.target_a () in
  Alcotest.(check (float 1e-9)) "flat pricing" 500.0 (Data_center.space_cost dc 5.0);
  Alcotest.(check (float 1e-9)) "first tier" 100.0 (Data_center.first_tier_space dc)

let test_asis_validate_ok () =
  Alcotest.(check (list string)) "fixture validates" [] (Asis.validate (Fixtures.asis ()))

let test_asis_validate_catches () =
  let asis = Fixtures.asis () in
  let broken =
    { asis with Asis.current_placement = [| 0; 0; 9; 1 |] }
  in
  Alcotest.(check bool) "unknown current DC flagged" true
    (Asis.validate broken <> []);
  let too_small =
    { asis with
      Asis.targets = [| Fixtures.target_a () |] }
  in
  Alcotest.(check bool) "capacity shortfall flagged" true
    (Asis.validate too_small <> [])

let test_asis_counters () =
  let asis = Fixtures.asis () in
  Alcotest.(check int) "groups" 4 (Asis.num_groups asis);
  Alcotest.(check int) "targets" 3 (Asis.num_targets asis);
  Alcotest.(check int) "servers" 14 (Asis.total_servers asis);
  Alcotest.(check int) "capacity" 40 (Asis.total_target_capacity asis)

let test_placement_servers_per_dc () =
  let asis = Fixtures.asis () in
  let p = Placement.non_dr [| 0; 1; 2; 0 |] in
  Alcotest.(check (array int)) "loads" [| 6; 3; 5 |] (Placement.servers_per_dc asis p)

let test_backup_sharing () =
  let asis = Fixtures.asis () in
  (* Primaries split across A and B; all backups pool at C.  Shared pool
     covers the worst failing site: max(4+3, 5+2) = 7. *)
  let p = Placement.with_dr ~primary:[| 0; 0; 1; 1 |] ~secondary:[| 2; 2; 2; 2 |] () in
  Alcotest.(check (array (float 1e-9))) "shared" [| 0.0; 0.0; 7.0 |]
    (Placement.backup_servers asis p);
  let d =
    Placement.with_dr ~dedicated_backups:true ~primary:[| 0; 0; 1; 1 |]
      ~secondary:[| 2; 2; 2; 2 |] ()
  in
  Alcotest.(check (array (float 1e-9))) "dedicated" [| 0.0; 0.0; 14.0 |]
    (Placement.backup_servers asis d)

let test_placement_validate () =
  let asis = Fixtures.asis () in
  Alcotest.(check (list string)) "feasible plan" []
    (Placement.validate asis (Placement.non_dr [| 0; 1; 2; 2 |]));
  (* Capacity 10 at A cannot hold groups 0 and 2 plus 3 (4+5+2=11). *)
  Alcotest.(check bool) "over capacity" true
    (Placement.validate asis (Placement.non_dr [| 0; 1; 0; 0 |]) <> []);
  Alcotest.(check bool) "unknown target" true
    (Placement.validate asis (Placement.non_dr [| 0; 1; 2; 9 |]) <> []);
  let same =
    Placement.with_dr ~primary:[| 0; 1; 2; 2 |] ~secondary:[| 0; 2; 0; 0 |] ()
  in
  Alcotest.(check bool) "secondary equals primary" true
    (Placement.validate asis same <> [])

let test_shared_risk () =
  let asis = Fixtures.asis () in
  let g0 = { (Fixtures.group_0 ()) with App_group.colocate_avoid = [ 1 ] } in
  let asis = { asis with Asis.groups = [| g0; Fixtures.group_1 (); Fixtures.group_2 (); Fixtures.group_3 () |] } in
  Alcotest.(check bool) "violating plan flagged" true
    (Placement.validate asis (Placement.non_dr [| 0; 0; 1; 2 |]) <> []);
  Alcotest.(check (list string)) "separated plan fine" []
    (Placement.validate asis (Placement.non_dr [| 0; 1; 2; 2 |]))

let test_dcs_used () =
  let asis = Fixtures.asis () in
  Alcotest.(check int) "primaries only" 2
    (Placement.dcs_used asis (Placement.non_dr [| 0; 0; 1; 1 |]));
  Alcotest.(check int) "backup site counts" 3
    (Placement.dcs_used asis
       (Placement.with_dr ~primary:[| 0; 0; 1; 1 |] ~secondary:[| 2; 2; 2; 2 |] ()))

let suite =
  [
    Alcotest.test_case "penalty: none" `Quick test_penalty_none;
    Alcotest.test_case "penalty: single step" `Quick test_penalty_step;
    Alcotest.test_case "penalty: bands" `Quick test_penalty_bands;
    Alcotest.test_case "penalty: invalid bands" `Quick test_penalty_bands_invalid;
    Alcotest.test_case "app group invariants" `Quick test_app_group_invariants;
    Alcotest.test_case "app group allowed DCs" `Quick test_app_group_allowed;
    Alcotest.test_case "data center invariants" `Quick test_data_center_invariants;
    Alcotest.test_case "space cost curve" `Quick test_space_cost_curve;
    Alcotest.test_case "as-is validates" `Quick test_asis_validate_ok;
    Alcotest.test_case "as-is validation catches faults" `Quick test_asis_validate_catches;
    Alcotest.test_case "as-is counters" `Quick test_asis_counters;
    Alcotest.test_case "servers per DC" `Quick test_placement_servers_per_dc;
    Alcotest.test_case "backup pool sharing" `Quick test_backup_sharing;
    Alcotest.test_case "placement validation" `Quick test_placement_validate;
    Alcotest.test_case "shared-risk separation" `Quick test_shared_risk;
    Alcotest.test_case "DCs used" `Quick test_dcs_used;
  ]
